//! Layout explorer: measures, on one graph, everything §II of the paper
//! analyses — replication factor, storage size per layout, and the actual
//! runtime of each forced layout — so you can see the trade-offs the
//! composite store resolves.
//!
//! ```text
//! cargo run --release --example layout_explorer
//! ```

use graphgrind::algorithms;
use graphgrind::core::{Config, ForcedKernel, GraphGrind2};
use graphgrind::graph::generators::{self, RmatParams};
use graphgrind::graph::{replication, storage};

fn main() {
    let el = generators::rmat(15, 600_000, RmatParams::skewed(), 5);
    let (n, m) = (el.num_vertices(), el.num_edges());
    println!("graph: {n} vertices, {m} edges\n");

    // §II.D: replication factor growth.
    println!(
        "replication factor r(p) (worst case {:.1}):",
        replication::worst_case_replication_factor(&el)
    );
    let parts = [4usize, 16, 64, 256];
    for (p, r) in replication::replication_sweep(&el, &parts) {
        println!("  P = {p:>3}: r = {r:.2}");
    }

    // §II.E: storage model.
    println!("\nstorage model [MiB]:");
    println!(
        "  {:<12}{:>10}{:>12}{:>10}{:>10}",
        "partitions", "CSR", "CSR-pruned", "COO", "CSC"
    );
    for row in storage::storage_sweep(&el, &parts) {
        let mib = |b: f64| b / (1024.0 * 1024.0);
        println!(
            "  {:<12}{:>10.1}{:>12.1}{:>10.1}{:>10.1}",
            row.partitions,
            mib(row.csr_unpruned),
            mib(row.csr_pruned),
            mib(row.coo),
            mib(row.csc)
        );
    }

    // §IV.A: actual PageRank time under each forced layout.
    println!("\nPageRank (10 iters) per forced layout at P = 64:");
    for (label, force) in [
        ("CSR + atomics     ", ForcedKernel::CsrAtomic),
        ("CSC no atomics    ", ForcedKernel::CscNoAtomic),
        ("COO no atomics    ", ForcedKernel::CooNoAtomic),
        ("COO + atomics     ", ForcedKernel::CooAtomic),
    ] {
        let cfg = Config::default().with_partitions(64).with_forced(force);
        let engine = GraphGrind2::new(&el, cfg);
        let t0 = std::time::Instant::now();
        let _ = algorithms::pagerank(&engine, 10);
        println!("  {label}: {:.3}s", t0.elapsed().as_secs_f64());
    }

    // The adaptive engine for comparison.
    let engine = GraphGrind2::new(&el, Config::default().with_partitions(256));
    let t0 = std::time::Instant::now();
    let _ = algorithms::pagerank(&engine, 10);
    println!("  adaptive (GG-v2)  : {:.3}s", t0.elapsed().as_secs_f64());
    let (s, md, d) = engine.kernel_counts().snapshot();
    println!("\nadaptive decisions: {s} sparse / {md} medium / {d} dense");
}
