//! Scheduling-determinism stress: the same query, repeated on a
//! machine-sized pool, must reproduce the *entire execution trace* — every
//! intermediate frontier, the per-partition kernel selections, and the
//! final values — not just the answer. This is the test that catches
//! unordered-merge races: a nondeterministic merge shows up as a frontier
//! whose vertex list differs between runs long before it corrupts a final
//! result.

use std::sync::atomic::{AtomicU32, Ordering};

use graphgrind::core::config::{chunk_edges_from_env, ChunkCap, Config, ExecutorKind, OutputMode};
use graphgrind::core::edge_map::EdgeOp;
use graphgrind::core::engine::{EdgeMapSpec, Engine, GraphGrind2};
use graphgrind::graph::generators::{self, RmatParams};
use graphgrind::runtime::numa::NumaTopology;
use graphgrind::runtime::pool::Pool;

const RUNS: usize = 10;

/// One engine sized like `Pool::machine_sized()` so the stress actually
/// exercises the full parallelism of the host.
fn machine_engine() -> GraphGrind2 {
    let el = generators::rmat(9, 8000, RmatParams::skewed(), 5);
    let threads = Pool::machine_sized().threads();
    let cfg = Config {
        threads,
        num_partitions: 16,
        numa: NumaTopology::new(2),
        executor: ExecutorKind::Partitioned,
        // CI runs this suite under GG_OUTPUT=sparse and GG_OUTPUT=dense,
        // and under GG_CHUNK=1 and GG_CHUNK=max: the trace must reproduce
        // under either output representation and any chunk granularity
        // (including per-vertex chunks — and hub-split sub-chunks —
        // stolen across a machine-sized pool).
        output_mode: OutputMode::from_env(),
        chunk_edges: chunk_edges_from_env().unwrap_or(ChunkCap::Auto),
        ..Config::default()
    };
    GraphGrind2::new(&el, cfg)
}

/// BFS-style claim-once operator: reads and writes destination state only,
/// so the partitioned executor guarantees a fully deterministic trace.
struct ClaimOnce {
    parent: Vec<AtomicU32>,
}

impl ClaimOnce {
    fn new(n: usize) -> Self {
        ClaimOnce {
            parent: graphgrind::runtime::atomics::atomic_u32_vec(n, u32::MAX),
        }
    }
}

impl EdgeOp for ClaimOnce {
    fn update(&self, s: u32, d: u32, _w: f32) -> bool {
        if self.parent[d as usize].load(Ordering::Relaxed) == u32::MAX {
            self.parent[d as usize].store(s, Ordering::Relaxed);
            true
        } else {
            false
        }
    }
    fn update_atomic(&self, s: u32, d: u32, _w: f32) -> bool {
        self.parent[d as usize]
            .compare_exchange(u32::MAX, s, Ordering::Relaxed, Ordering::Relaxed)
            .is_ok()
    }
    fn cond(&self, d: u32) -> bool {
        self.parent[d as usize].load(Ordering::Relaxed) == u32::MAX
    }
}

/// Per-round frontier vertex lists, the kernel selections, and the final
/// parent array of one traced run.
type Trace = (Vec<Vec<u32>>, (u64, u64, u64), Vec<u32>);

/// One traced BFS-like run.
fn traced_run(engine: &GraphGrind2, source: u32) -> Trace {
    engine.kernel_counts().reset();
    let op = ClaimOnce::new(engine.num_vertices());
    op.parent[source as usize].store(source, Ordering::Relaxed);
    let mut frontier = engine.frontier_single(source);
    let mut trace = vec![frontier.to_vertex_list()];
    while !frontier.is_empty() {
        frontier = engine.edge_map(&frontier, &op, EdgeMapSpec::vertex_oriented());
        trace.push(frontier.to_vertex_list());
    }
    let parents = graphgrind::runtime::atomics::snapshot_u32(&op.parent);
    (trace, engine.kernel_counts().partition_snapshot(), parents)
}

#[test]
fn repeated_bfs_reproduces_frontiers_and_kernel_counts() {
    let engine = machine_engine();
    let (trace0, counts0, parents0) = traced_run(&engine, 0);
    assert!(trace0.len() > 2, "traversal must run several rounds");
    assert!(counts0.0 + counts0.1 > 0, "kernels must have been selected");
    for run in 1..RUNS {
        let (trace, counts, parents) = traced_run(&engine, 0);
        assert_eq!(trace.len(), trace0.len(), "round count drifted, run {run}");
        for (round, (got, want)) in trace.iter().zip(&trace0).enumerate() {
            assert_eq!(got, want, "frontier diverged: run {run}, round {round}");
        }
        assert_eq!(counts, counts0, "kernel selections diverged, run {run}");
        assert_eq!(parents, parents0, "parents diverged, run {run}");
    }
}

#[test]
fn repeated_pagerank_is_bitwise_stable() {
    let engine = machine_engine();
    let first = graphgrind::algorithms::pagerank(&engine, 10);
    for run in 1..RUNS {
        let again = graphgrind::algorithms::pagerank(&engine, 10);
        // Exact f64 equality: accumulation order per destination is fixed
        // by the CSC layout, independent of scheduling.
        assert_eq!(again, first, "rank bits diverged, run {run}");
    }
}
