//! Multi-source frontier fusion: K-lane batched traversals.
//!
//! A fused traversal co-runs up to 64 point queries ("lanes") over one
//! graph. Per-vertex frontier state is a single `u64` lane word
//! ([`LaneBitmap`] / sparse `(vertex, mask)` pairs), and the per-edge
//! operator ([`MultiSourceOp`]) advances every lane at once:
//! `new_lanes = src_lanes & !dst_lanes`. One edge scan therefore serves
//! all K queries — the batching lever that amortises CSR/CSC edge reads
//! across concurrent requests, exactly as an inference server batches
//! requests to amortise weight reads.
//!
//! ## Executor reuse, not a second executor
//!
//! A fused edge map reuses the scalar partitioned machinery end to end:
//!
//! * **Planning** runs on the **union frontier** (bit `v` set iff any lane
//!   has `v` active). A partition is dense exactly when the union frontier
//!   is dense there — the planner's sparse/dense kernel selection and
//!   per-partition output-representation choice extend to lane-mask
//!   frontiers without modification.
//! * **Chunking, hub splitting and work stealing** are byte-for-byte the
//!   scalar paths ([`PartitionedExec::prepare`](crate::partitioned)): the
//!   fused kernels plug into the same `(step, chunk)` task list, so fused
//!   rounds stay bit-identical across partition counts, thread counts and
//!   chunk caps for the same reasons the scalar rounds do.
//! * **Outputs** are the fused analogues of the scalar typed buffers:
//!   sparse `(vertex, mask)` lists or range-aligned [`LaneSegment`]s,
//!   merged in `(partition, chunk)` order. A split mega-hub collects its
//!   slice's active `(source, weight, src_lanes)` contributions and the
//!   dispatcher replays them sequentially in CSC scan order — one writer
//!   per destination, bit-identical to the unsplit scan.
//!
//! ## Operator variants
//!
//! [`MultiSourceOp`] is the exclusive-update path (the fused [`EdgeOp`]):
//! `update` returns the lanes newly activated by one edge and may mutate
//! destination-indexed state under the single-writer guarantee.
//! [`MultiSourceReduce`] is the fused [`EdgeMapReduce`]: destination scans
//! fold per fixed [`REDUCE_QUANTUM`]-edge run into a per-lane accumulator,
//! so f64 grouping is a property of the destination alone — identical
//! across caps, threads, partitions and steal schedules.
//!
//! ## Deliverable-lane prefilter
//!
//! A naive fused pull keeps every destination's scan open until **all**
//! lanes reach it, so a vertex whose lanes arrive over a window of W
//! rounds pays W full in-edge scans — the dominant cost when sources are
//! spread (their BFS waves hit each vertex at different depths). Each
//! fused round therefore first derives per-destination **deliverable
//! masks** ([`PossibleMasks`]): the OR of frontier lane words over each
//! destination's in-neighbours, computed from the same out-vertex index
//! that sparse candidate discovery walks (and, like discovery, counted as
//! frontier preprocessing, not edge traversal). The kernels then skip any
//! destination none of whose open lanes are deliverable this round, and
//! stop a scan as soon as every deliverable lane has activated — the
//! fused analogue of the scalar pull's first-claim early exit. The masks
//! depend only on the frontier, never on the schedule, so every
//! configuration makes identical skip decisions and fused rounds stay
//! bit-identical.
//!
//! [`EdgeOp`]: crate::edge_map::EdgeOp
//! [`EdgeMapReduce`]: crate::edge_map::EdgeMapReduce

use std::sync::atomic::{AtomicU64, Ordering};

use gg_graph::csc::Csc;
use gg_graph::csr::{Csr, PartitionedCsr};
use gg_graph::lanes::{LaneBitmap, LaneSegment};
use gg_graph::types::VertexId;
use gg_runtime::counters::{LocalTally, WorkCounters};
use gg_runtime::pool::Pool;

use crate::edge_map::REDUCE_QUANTUM;
use crate::frontier::Frontier;
use crate::plan::{self, OutputRepr};

/// A user-supplied fused edge operator: the K-lane analogue of
/// [`EdgeOp`](crate::edge_map::EdgeOp).
///
/// `update` applies the edge `(src, dst)` for every lane set in
/// `src_lanes` and returns the lanes in which `dst` was **newly**
/// activated (for a visited-set traversal, `src_lanes & !dst_lanes`). The
/// engine guarantees a single writer per `dst` (partitioning by
/// destination), so implementations may mutate destination-indexed state
/// with plain relaxed stores.
///
/// # Exclusive-update contract
///
/// The deliverable-lane prefilter (module docs) is sound only for
/// operators with exclusive-update semantics, which every
/// `MultiSourceOp` must honour:
///
/// * `update` returns a subset of `src_lanes`;
/// * once a lane is active at `dst`, further `update` calls carrying that
///   lane neither re-activate it nor observably change state for it (the
///   engine may skip such calls entirely);
/// * `cond(dst)` covers every lane `update` could still activate at
///   `dst`: lanes outside `cond` are never activated nor mutated.
///
/// Operators that accumulate per-edge state (where a skipped edge would
/// change the result) belong on the [`MultiSourceReduce`] path, whose
/// scans are never truncated.
pub trait MultiSourceOp: Sync {
    /// Applies edge `(src, dst)` with weight `w` for the lanes in
    /// `src_lanes`; returns the newly-activated lanes of `dst`.
    /// Single-writer guarantee on `dst`.
    fn update(&self, src: VertexId, dst: VertexId, w: f32, src_lanes: u64) -> u64;

    /// The lanes in which `dst` still wants updates. A zero mask skips
    /// (pre-check) or stops (mid-scan early exit) the destination's scan —
    /// the fused form of [`EdgeOp::cond`](crate::edge_map::EdgeOp::cond):
    /// fused BFS returns the not-yet-visited lanes, so a destination
    /// claimed in all lanes costs no further edge reads.
    #[inline]
    fn cond(&self, _dst: VertexId) -> u64 {
        u64::MAX
    }
}

/// The associative fused variant: the K-lane analogue of
/// [`EdgeMapReduce`](crate::edge_map::EdgeMapReduce).
///
/// Destination scans fold in fixed [`REDUCE_QUANTUM`]-edge runs with
/// boundaries at absolute quantum multiples within the scan, exactly like
/// the scalar reduce path, so the per-lane f64 grouping is fixed by the
/// destination alone. `apply` runs under the single-writer guarantee and
/// returns the lanes newly activated by the folded quantum.
///
/// Reduce scans accumulate per-edge state, so the engine never truncates
/// them mid-scan: the deliverable-lane prefilter skips a reduce
/// destination only when **no** in-neighbour is active in any lane — a
/// scan that would have folded nothing. The inherited
/// [`MultiSourceOp::update`] is the operator's single-edge specification,
/// exempt from the skip clause because the reduce kernels never call it.
pub trait MultiSourceReduce: MultiSourceOp {
    /// The per-quantum accumulator (per-lane state; e.g. `[f64; 64]` plus
    /// a touched-lane mask).
    type Acc;

    /// The unit accumulator.
    fn identity(&self) -> Self::Acc;

    /// Folds one in-edge `(src, w)` carrying `src_lanes` into `acc`.
    fn accumulate(&self, acc: &mut Self::Acc, src: VertexId, w: f32, src_lanes: u64);

    /// Applies a folded quantum to `dst` (single-writer guarantee);
    /// returns the newly-activated lanes.
    fn apply(&self, dst: VertexId, acc: &Self::Acc) -> u64;
}

/// The storage behind a [`FusedFrontier`]: parallel sparse
/// `(vertex, mask)` lists, or one lane word per vertex.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FusedData {
    /// Ascending active vertices and their (parallel) non-zero lane masks.
    Sparse {
        /// Active vertices, ascending.
        verts: Vec<VertexId>,
        /// `masks[i]` is the lane word of `verts[i]` (never zero).
        masks: Vec<u64>,
    },
    /// One lane word per vertex.
    Dense(LaneBitmap),
}

/// A borrowed view of a fused frontier, cheap to copy into kernels.
#[derive(Clone, Copy, Debug)]
pub enum FusedView<'a> {
    /// Sorted active vertices plus parallel lane masks.
    Sparse {
        /// Active vertices, ascending.
        verts: &'a [VertexId],
        /// Parallel lane masks.
        masks: &'a [u64],
    },
    /// One lane word per vertex.
    Dense(&'a LaneBitmap),
}

impl FusedView<'_> {
    /// The lane word of `v` (zero when `v` is inactive in every lane).
    #[inline]
    pub fn lanes_of(&self, v: VertexId) -> u64 {
        match self {
            FusedView::Sparse { verts, masks } => match verts.binary_search(&v) {
                Ok(i) => masks[i],
                Err(_) => 0,
            },
            FusedView::Dense(lanes) => lanes.get(v as usize),
        }
    }
}

/// The lane-mask frontier of a fused K-query traversal: per-vertex `u64`
/// lane words in a sparse or dense representation, chosen by the planner
/// exactly as for scalar frontiers (on the **union** frontier's density).
#[derive(Clone, Debug)]
pub struct FusedFrontier {
    n: usize,
    k: u32,
    data: FusedData,
    /// Vertices active in at least one lane (the union count).
    count: usize,
    /// Total set lane bits (Σ popcount) — the fused work volume.
    lane_bits: u64,
}

impl FusedFrontier {
    /// An empty fused frontier over `n` vertices with `k` lanes.
    pub fn empty(n: usize, k: u32) -> Self {
        FusedFrontier {
            n,
            k,
            data: FusedData::Sparse {
                verts: Vec::new(),
                masks: Vec::new(),
            },
            count: 0,
            lane_bits: 0,
        }
    }

    /// The initial frontier of a K-query batch: lane `i` holds
    /// `seeds[i]` (duplicate seeds OR into one vertex's mask).
    ///
    /// # Panics
    /// Panics if more than 64 seeds are given or a seed is out of range.
    pub fn from_seeds(seeds: &[VertexId], n: usize) -> Self {
        assert!(seeds.len() <= 64, "at most 64 fused lanes");
        let k = seeds.len() as u32;
        let mut pairs: Vec<(VertexId, u64)> = Vec::with_capacity(seeds.len());
        for (i, &s) in seeds.iter().enumerate() {
            assert!((s as usize) < n, "seed {s} out of range");
            pairs.push((s, 1u64 << i));
        }
        pairs.sort_unstable_by_key(|&(v, _)| v);
        let mut verts: Vec<VertexId> = Vec::with_capacity(pairs.len());
        let mut masks: Vec<u64> = Vec::with_capacity(pairs.len());
        for (v, m) in pairs {
            if verts.last() == Some(&v) {
                *masks.last_mut().unwrap() |= m;
            } else {
                verts.push(v);
                masks.push(m);
            }
        }
        let count = verts.len();
        let lane_bits = masks.iter().map(|m| m.count_ones() as u64).sum();
        FusedFrontier {
            n,
            k,
            data: FusedData::Sparse { verts, masks },
            count,
            lane_bits,
        }
    }

    /// Merges per-chunk fused outputs (in task order) into the next fused
    /// frontier — the K-lane analogue of
    /// [`Frontier::from_partition_outputs`]. Outputs sort by range start
    /// (chunk ranges are disjoint), all-sparse rounds concatenate in
    /// ascending order with no `O(|V|)` work, and any dense output routes
    /// the merge through a whole-graph [`LaneBitmap`] splice whose word
    /// cost lands in [`WorkCounters::lane_union_words`]. The newly set
    /// lane bits of the round land in [`WorkCounters::fused_lanes`].
    pub fn from_outputs(
        mut outputs: Vec<FusedOutput>,
        n: usize,
        k: u32,
        counters: &WorkCounters,
    ) -> Self {
        debug_assert!(
            !outputs.iter().any(FusedOutput::is_partial),
            "hub partials must be reduced before the merge"
        );
        outputs.sort_by_key(|o| o.range.start);
        let any_dense = outputs
            .iter()
            .any(|o| matches!(o.data, FusedOutputData::Dense(_)));
        let next = if !any_dense {
            let mut verts: Vec<VertexId> = Vec::new();
            let mut masks: Vec<u64> = Vec::new();
            for o in outputs {
                if let FusedOutputData::Sparse { verts: v, masks: m } = o.data {
                    // Resolved hub chunks that activated nothing are empty.
                    if v.is_empty() {
                        continue;
                    }
                    debug_assert!(verts.last().is_none_or(|&last| v.first() > Some(&last)));
                    verts.extend_from_slice(&v);
                    masks.extend_from_slice(&m);
                }
            }
            let count = verts.len();
            let lane_bits = masks.iter().map(|m| m.count_ones() as u64).sum();
            FusedFrontier {
                n,
                k,
                data: FusedData::Sparse { verts, masks },
                count,
                lane_bits,
            }
        } else {
            let mut lanes = LaneBitmap::new(n);
            let mut union_words = 0u64;
            for o in outputs {
                match o.data {
                    FusedOutputData::Sparse { verts, masks } => {
                        for (v, m) in verts.iter().zip(&masks) {
                            lanes.or(*v as usize, *m);
                        }
                    }
                    FusedOutputData::Dense(segment) => {
                        union_words += segment.num_words() as u64;
                        segment.splice_into(&mut lanes);
                    }
                    FusedOutputData::Partial(_) | FusedOutputData::ReducePartial(_) => {
                        unreachable!("partials reduced before merge")
                    }
                }
            }
            counters.add_lane_union_words(union_words);
            let count = lanes.count_nonzero();
            let lane_bits = lanes.lane_bits();
            FusedFrontier {
                n,
                k,
                data: FusedData::Dense(lanes),
                count,
                lane_bits,
            }
        };
        counters.add_fused_lanes(next.lane_bits);
        next
    }

    /// Number of vertices in the frontier's universe.
    pub fn universe(&self) -> usize {
        self.n
    }

    /// Number of lanes (concurrent queries) in the batch.
    pub fn num_lanes(&self) -> u32 {
        self.k
    }

    /// The mask covering every lane of the batch.
    pub fn lane_mask(&self) -> u64 {
        lane_mask(self.k)
    }

    /// Vertices active in at least one lane (the union frontier size).
    pub fn len(&self) -> usize {
        self.count
    }

    /// True when no lane has any active vertex.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Total set lane bits (Σ popcount over active vertices).
    pub fn lane_bits(&self) -> u64 {
        self.lane_bits
    }

    /// The underlying representation.
    pub fn data(&self) -> &FusedData {
        &self.data
    }

    /// A borrowed view for kernels.
    pub fn view(&self) -> FusedView<'_> {
        match &self.data {
            FusedData::Sparse { verts, masks } => FusedView::Sparse { verts, masks },
            FusedData::Dense(lanes) => FusedView::Dense(lanes),
        }
    }

    /// The lane word of `v`.
    pub fn lanes_of(&self, v: VertexId) -> u64 {
        self.view().lanes_of(v)
    }

    /// Calls `f(v, mask)` for every active vertex, ascending.
    pub fn for_each<F: FnMut(VertexId, u64)>(&self, mut f: F) {
        match &self.data {
            FusedData::Sparse { verts, masks } => {
                for (v, m) in verts.iter().zip(masks) {
                    f(*v, *m);
                }
            }
            FusedData::Dense(lanes) => lanes.for_each_nonzero(|v, m| f(v as VertexId, m)),
        }
    }

    /// Densifies the lane state into one word per vertex (used when the
    /// scalar path densifies the union view, so probe costs stay in
    /// lockstep).
    pub fn to_lane_bitmap(&self) -> LaneBitmap {
        match &self.data {
            FusedData::Sparse { verts, masks } => {
                let mut lanes = LaneBitmap::new(self.n);
                for (v, m) in verts.iter().zip(masks) {
                    lanes.set(*v as usize, *m);
                }
                lanes
            }
            FusedData::Dense(lanes) => lanes.clone(),
        }
    }

    /// OR of every active vertex's lane word: bit `k` set iff lane `k`
    /// still has at least one active vertex. A pure function of the
    /// frontier (never of the schedule), so retirement decisions driven
    /// by it are identical across partitions, threads and chunk caps.
    pub fn live_lanes(&self) -> u64 {
        match &self.data {
            FusedData::Sparse { masks, .. } => masks.iter().fold(0, |acc, &m| acc | m),
            FusedData::Dense(lanes) => lanes.live_lanes(),
        }
    }

    /// A copy of this frontier with only the lanes in `keep` retained —
    /// how a batch frees the bits of retired lanes while it keeps
    /// running. Vertices whose masks become zero drop out of the sparse
    /// list (order preserved), so for lanes that are already empty this
    /// is structurally a no-op and results cannot change; for lanes
    /// dropped while still live it is the capped-rounds escape's
    /// hand-off point.
    pub fn retain_lanes(&self, keep: u64) -> FusedFrontier {
        match &self.data {
            FusedData::Sparse { verts, masks } => {
                let mut kept_verts: Vec<VertexId> = Vec::with_capacity(verts.len());
                let mut kept_masks: Vec<u64> = Vec::with_capacity(masks.len());
                for (&v, &m) in verts.iter().zip(masks) {
                    let m = m & keep;
                    if m != 0 {
                        kept_verts.push(v);
                        kept_masks.push(m);
                    }
                }
                let count = kept_verts.len();
                let lane_bits = kept_masks.iter().map(|m| m.count_ones() as u64).sum();
                FusedFrontier {
                    n: self.n,
                    k: self.k,
                    data: FusedData::Sparse {
                        verts: kept_verts,
                        masks: kept_masks,
                    },
                    count,
                    lane_bits,
                }
            }
            FusedData::Dense(lanes) => {
                let mut lanes = lanes.clone();
                lanes.retain_lanes(keep);
                let count = lanes.count_nonzero();
                let lane_bits = lanes.lane_bits();
                FusedFrontier {
                    n: self.n,
                    k: self.k,
                    data: FusedData::Dense(lanes),
                    count,
                    lane_bits,
                }
            }
        }
    }

    /// The union frontier (bit `v` set iff any lane has `v` active), in
    /// the representation matching this fused frontier's — what the
    /// traversal planner classifies. Fusing changes *state width*, not
    /// the planner: a partition is dense exactly when the union frontier
    /// is dense there.
    pub fn union_frontier(&self, out_degrees: &[u32], pool: &Pool) -> Frontier {
        match &self.data {
            FusedData::Sparse { verts, .. } => {
                Frontier::from_sorted(verts.clone(), self.n, out_degrees)
            }
            FusedData::Dense(lanes) => {
                Frontier::from_dense(lanes.union_bitmap(), out_degrees, pool)
            }
        }
    }
}

/// The mask covering lanes `0..k`.
#[inline]
pub fn lane_mask(k: u32) -> u64 {
    if k >= 64 {
        u64::MAX
    } else {
        (1u64 << k) - 1
    }
}

/// Per-lane early-retirement bookkeeping for one fused batch: which lanes
/// are still running and the round at which each retired lane quiesced.
///
/// Driven exclusively by [`FusedFrontier::live_lanes`] — a pure function
/// of the per-round frontier — so the retirement round of every lane is
/// identical across partition counts, thread counts, chunk caps and steal
/// schedules whenever the rounds themselves are bit-identical (which the
/// fused differential suite pins).
#[derive(Clone, Debug)]
pub struct LaneRetirement {
    active: u64,
    retired_round: [u32; 64],
}

impl LaneRetirement {
    /// Starts tracking the lanes in `initial`.
    pub fn new(initial: u64) -> Self {
        LaneRetirement {
            active: initial,
            retired_round: [u32::MAX; 64],
        }
    }

    /// Records the post-round live mask: lanes active before but absent
    /// from `live` retire at `round`. Returns the newly retired lanes.
    pub fn observe(&mut self, round: u32, live: u64) -> u64 {
        let newly = self.active & !live;
        if newly != 0 {
            let mut m = newly;
            while m != 0 {
                let k = m.trailing_zeros() as usize;
                self.retired_round[k] = round;
                m &= m - 1;
            }
            self.active &= live;
        }
        newly
    }

    /// Force-retires every still-active lane at `round` (batch end).
    pub fn finish(&mut self, round: u32) -> u64 {
        let remaining = self.active;
        self.observe(round, 0);
        remaining
    }

    /// The lanes still running.
    #[inline]
    pub fn active(&self) -> u64 {
        self.active
    }

    /// The round at which lane `k` retired, if it has.
    pub fn retired_round(&self, k: u32) -> Option<u32> {
        let r = self.retired_round[k as usize];
        (r != u32::MAX).then_some(r)
    }
}

/// One fused chunk task's typed output buffer, merged in task order.
#[derive(Debug)]
pub struct FusedOutput {
    /// The destination sub-range this output covers.
    pub range: std::ops::Range<VertexId>,
    /// The payload.
    pub data: FusedOutputData,
}

impl FusedOutput {
    /// True for unreduced mega-hub partials.
    pub fn is_partial(&self) -> bool {
        matches!(
            self.data,
            FusedOutputData::Partial(_) | FusedOutputData::ReducePartial(_)
        )
    }
}

/// The payload variants of a fused chunk output.
#[derive(Debug)]
pub enum FusedOutputData {
    /// Ascending activated vertices plus parallel newly-set lane masks.
    Sparse {
        /// Activated vertices, ascending.
        verts: Vec<VertexId>,
        /// Parallel newly-set lane masks.
        masks: Vec<u64>,
    },
    /// Range-aligned dense lane segment.
    Dense(LaneSegment),
    /// One mega-hub sub-chunk's collected (unapplied) contributions.
    Partial(FusedHubPartial),
    /// One mega-hub sub-chunk's raw reduce-path fragments.
    ReducePartial(FusedHubReducePartial),
}

/// The frontier-active in-edge contributions of one slice of a split
/// mega-hub destination's scan, collected without applying the operator
/// (the fused analogue of [`HubPartial`](crate::frontier::HubPartial)).
#[derive(Debug)]
pub struct FusedHubPartial {
    /// The slice's first in-edge position within the destination's scan —
    /// orders sibling partials for the sequential replay.
    pub edge_offset: u64,
    /// Active `(source, weight, src_lanes)` contributions, in scan order.
    pub actives: Vec<(VertexId, f32, u64)>,
}

/// The reduce-path analogue of [`FusedHubPartial`]: raw
/// `(quantum, source, weight, src_lanes)` fragments of one slice, in scan
/// order. The dispatcher re-folds each quantum edge-wise from the
/// identity, so the per-lane f64 grouping matches an unsplit scan exactly.
/// (Unlike the scalar path, fused sub-chunks do not pre-fold covered
/// quanta locally — the accumulator type is operator-defined and would
/// have to cross the output enum; shipping fragments keeps the enum
/// type-erased at the cost of `O(active slice edges)` dispatcher folds,
/// the same order as the exclusive replay path.)
#[derive(Debug)]
pub struct FusedHubReducePartial {
    /// The slice's first in-edge position (ordering key).
    pub edge_offset: u64,
    /// Active `(quantum, source, weight, src_lanes)` fragments, in scan
    /// order (quantum indices ascending).
    pub fragments: Vec<(u64, VertexId, f32, u64)>,
}

/// Where fused kernels record activated destinations and their
/// newly-set lane masks (at most one call per destination).
pub trait FusedSink {
    /// Records that `v` joins the next fused frontier in `lanes`.
    fn activate(&mut self, v: VertexId, lanes: u64);
}

/// The typed fused output sink matching the planner's per-partition
/// output choice — sparse `(vertex, mask)` lists or a range-aligned
/// [`LaneSegment`]. Owned by exactly one pool task: plain stores.
#[derive(Debug)]
pub enum FusedPartSink {
    /// Sorted parallel lists (destinations are pulled ascending).
    Sparse {
        /// The emitting chunk's destination range.
        range: std::ops::Range<VertexId>,
        /// Activated destinations, ascending.
        verts: Vec<VertexId>,
        /// Parallel newly-set lane masks.
        masks: Vec<u64>,
    },
    /// Range-aligned dense lane segment.
    Dense {
        /// The segment, covering exactly the chunk's range.
        segment: LaneSegment,
    },
}

impl FusedPartSink {
    /// An empty sink of the planned representation over `range`.
    pub fn new(repr: OutputRepr, range: std::ops::Range<VertexId>) -> Self {
        match repr {
            OutputRepr::Sparse => FusedPartSink::Sparse {
                range,
                verts: Vec::new(),
                masks: Vec::new(),
            },
            OutputRepr::Dense => FusedPartSink::Dense {
                segment: LaneSegment::new(range.start as usize..range.end as usize),
            },
        }
    }

    /// Finishes the task, yielding the typed output buffer for the merge.
    pub fn into_output(self) -> FusedOutput {
        match self {
            FusedPartSink::Sparse {
                range,
                verts,
                masks,
            } => FusedOutput {
                range,
                data: FusedOutputData::Sparse { verts, masks },
            },
            FusedPartSink::Dense { segment } => {
                let r = segment.range();
                FusedOutput {
                    range: r.start as VertexId..r.end as VertexId,
                    data: FusedOutputData::Dense(segment),
                }
            }
        }
    }
}

impl FusedSink for FusedPartSink {
    #[inline]
    fn activate(&mut self, v: VertexId, lanes: u64) {
        debug_assert!(lanes != 0);
        match self {
            FusedPartSink::Sparse {
                range,
                verts,
                masks,
            } => {
                debug_assert!(range.contains(&v));
                debug_assert!(verts.last().is_none_or(|&last| last < v));
                verts.push(v);
                masks.push(lanes);
            }
            FusedPartSink::Dense { segment } => {
                segment.or(v as usize, lanes);
            }
        }
    }
}

/// Per-destination **deliverable-lane masks** for one fused round: entry
/// `v` is the OR of the frontier lane words over `v`'s in-neighbours —
/// exactly the lanes one more pull of `v` could activate.
///
/// Built from the out-vertex indexes (the full [`Csr`] or the
/// per-partition pruned CSRs) by ORing each active vertex's lane word
/// into its out-neighbours, the same index walk as sparse candidate
/// discovery ([`discover_candidates`]) and, like it, frontier
/// preprocessing rather than edge traversal — no
/// [`WorkCounters::add_edges`] tally. The masks are a pure function of
/// the frontier, so every schedule derives the same filter and the skip
/// decisions cannot break cross-configuration bit-identity. Entries are
/// atomics only so partitions (and, within the full-CSR build, frontier
/// chunks) can OR concurrently; `fetch_or` commutes, so the result is
/// deterministic.
///
/// [`discover_candidates`]: crate::partitioned::discover_candidates
/// [`WorkCounters::add_edges`]: gg_runtime::counters::WorkCounters
pub struct PossibleMasks {
    masks: Vec<AtomicU64>,
}

impl PossibleMasks {
    fn zeroed(n: usize) -> Self {
        PossibleMasks {
            masks: (0..n).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Builds the masks from the whole-graph out-index (the monolithic
    /// fused fallback).
    pub fn build(csr: &Csr, fused: &FusedFrontier) -> Self {
        let pm = Self::zeroed(csr.num_vertices());
        fused.for_each(|u, m| {
            for &v in csr.neighbors(u) {
                pm.masks[v as usize].fetch_or(m, Ordering::Relaxed);
            }
        });
        pm
    }

    /// Builds the masks partition-parallel from the pruned per-partition
    /// out-indexes: partition `p` contributes exactly the edges whose
    /// destinations it owns, so tasks write disjoint entries. Mirrors
    /// [`discover_candidates`]'s dual strategy — probe the stored-source
    /// index per active vertex when the frontier list is short, scan the
    /// stored sources against the lane view otherwise.
    ///
    /// [`discover_candidates`]: crate::partitioned::discover_candidates
    pub fn build_partitioned(
        pcsr: &PartitionedCsr,
        fused: &FusedFrontier,
        pool: &Pool,
        n: usize,
    ) -> Self {
        let pm = Self::zeroed(n);
        let active = match fused.data() {
            FusedData::Sparse { verts, masks } => Some((verts.as_slice(), masks.as_slice())),
            FusedData::Dense(_) => None,
        };
        let view = fused.view();
        let parts = pcsr.partition_set().num_partitions();
        pool.for_each_index(parts, |p| {
            let part = pcsr.part(p);
            let stored = part.num_stored_vertices();
            match active {
                Some((verts, masks)) if verts.len() < stored => {
                    for (i, &u) in verts.iter().enumerate() {
                        if let Ok(j) = part.vertex_ids().binary_search(&u) {
                            for &v in part.neighbors_at(j) {
                                pm.masks[v as usize].fetch_or(masks[i], Ordering::Relaxed);
                            }
                        }
                    }
                }
                _ => {
                    for j in 0..stored {
                        let m = view.lanes_of(part.vertex_ids()[j]);
                        if m != 0 {
                            for &v in part.neighbors_at(j) {
                                pm.masks[v as usize].fetch_or(m, Ordering::Relaxed);
                            }
                        }
                    }
                }
            }
        });
        pm
    }

    /// The deliverable mask of destination `v`.
    #[inline]
    pub fn get(&self, v: VertexId) -> u64 {
        self.masks[v as usize].load(Ordering::Relaxed)
    }
}

/// Applies the in-edges of destination `v` (CSC adjacency order) for every
/// source active in any lane — the fused [`pull_vertex`]. `possible` is
/// `v`'s [`PossibleMasks`] entry: a destination none of whose open lanes
/// are deliverable is skipped without touching an edge, and the scan stops
/// as soon as every deliverable open lane has activated (the fused
/// analogue of the scalar pull's claim early-exit; sound by the
/// [`MultiSourceOp`] exclusive-update contract). Newly-activated lanes are
/// masked by the scan-start open set and the destination activates at most
/// once.
///
/// [`pull_vertex`]: crate::partitioned
#[inline]
pub fn pull_vertex_fused<O: MultiSourceOp, S: FusedSink>(
    csc: &Csc,
    lanes: FusedView<'_>,
    op: &O,
    v: VertexId,
    possible: u64,
    sink: &mut S,
    tally: &mut LocalTally,
) {
    tally.vertex();
    let deliverable = possible & op.cond(v);
    if deliverable == 0 {
        return;
    }
    let mut new = 0u64;
    for e in csc.edge_range(v) {
        tally.edge();
        let u = csc.sources()[e];
        let src_lanes = lanes.lanes_of(u);
        if src_lanes != 0 {
            new |= op.update(u, v, csc.weight_at(e), src_lanes) & deliverable;
            if deliverable & !new == 0 {
                break;
            }
        }
    }
    if new != 0 {
        sink.activate(v, new);
    }
}

/// The fused reduce kernel: fold destination `v`'s frontier-active
/// in-edge contributions in fixed [`REDUCE_QUANTUM`]-edge runs (absolute
/// quantum boundaries within the scan) and apply one accumulator per
/// non-empty quantum, ascending — the K-lane [`pull_vertex_reduce`].
/// `cond` is checked once per destination. A zero `possible` mask (no
/// in-neighbour active in any lane) skips the scan outright — it would
/// have folded nothing; scans are never truncated mid-run, so per-edge
/// accumulation stays complete.
///
/// [`pull_vertex_reduce`]: crate::partitioned
#[inline]
pub fn pull_vertex_fused_reduce<O: MultiSourceReduce, S: FusedSink>(
    csc: &Csc,
    lanes: FusedView<'_>,
    op: &O,
    v: VertexId,
    possible: u64,
    sink: &mut S,
    tally: &mut LocalTally,
) {
    tally.vertex();
    let open = op.cond(v);
    if open == 0 || possible == 0 {
        return;
    }
    let base = csc.offsets()[v as usize];
    let deg = csc.offsets()[v as usize + 1] - base;
    let mut new = 0u64;
    let mut lo = 0usize;
    while lo < deg {
        let hi = (lo + REDUCE_QUANTUM).min(deg);
        let mut acc = op.identity();
        let mut any = false;
        for r in lo..hi {
            tally.edge();
            let e = base + r;
            let u = csc.sources()[e];
            let src_lanes = lanes.lanes_of(u);
            if src_lanes != 0 {
                op.accumulate(&mut acc, u, csc.weight_at(e), src_lanes);
                any = true;
            }
        }
        if any {
            new |= op.apply(v, &acc) & open;
        }
        lo = hi;
    }
    if new != 0 {
        sink.activate(v, new);
    }
}

/// Executes one fused mega-hub sub-chunk: scan the slice `sub` of
/// destination `v`'s in-edge list and **collect** the lane-active
/// contributions without applying. [`reduce_fused_hub_partials`] replays
/// them sequentially in scan order, so a split destination keeps one
/// writer and the CSC update order.
pub fn collect_fused_hub_partial<O: MultiSourceOp>(
    csc: &Csc,
    lanes: FusedView<'_>,
    op: &O,
    v: VertexId,
    possible: u64,
    sub: &plan::SubSpan,
    tally: &mut LocalTally,
) -> FusedOutput {
    // Count the destination visit once, on its first slice.
    if sub.lo == 0 {
        tally.vertex();
    }
    let mut actives: Vec<(VertexId, f32, u64)> = Vec::new();
    // The deliverable gate is frontier-derived, so every sub-chunk of a
    // split hub skips in lockstep with the unsplit kernel.
    if possible & op.cond(v) != 0 {
        let base = csc.offsets()[v as usize];
        for e in base + sub.lo as usize..base + sub.hi as usize {
            tally.edge();
            let u = csc.sources()[e];
            let src_lanes = lanes.lanes_of(u);
            if src_lanes != 0 {
                actives.push((u, csc.weight_at(e), src_lanes));
            }
        }
    }
    FusedOutput {
        range: v..v + 1,
        data: FusedOutputData::Partial(FusedHubPartial {
            edge_offset: sub.lo,
            actives,
        }),
    }
}

/// The reduce-path fused hub sub-chunk: collect raw
/// `(quantum, source, weight, src_lanes)` fragments of the slice (quantum
/// indices from absolute scan positions). [`reduce_fused_hub_quanta`]
/// re-folds them per quantum in scan order, matching the unsplit
/// [`pull_vertex_fused_reduce`] grouping bit for bit.
pub fn collect_fused_hub_reduce_partial<O: MultiSourceReduce>(
    csc: &Csc,
    lanes: FusedView<'_>,
    op: &O,
    v: VertexId,
    possible: u64,
    sub: &plan::SubSpan,
    tally: &mut LocalTally,
) -> FusedOutput {
    if sub.lo == 0 {
        tally.vertex();
    }
    let mut fragments: Vec<(u64, VertexId, f32, u64)> = Vec::new();
    // Reduce scans are all-or-nothing: skip only when no in-neighbour is
    // active at all (`possible == 0`), matching the unsplit kernel.
    if possible != 0 && op.cond(v) != 0 {
        let base = csc.offsets()[v as usize];
        for r in sub.lo as usize..sub.hi as usize {
            tally.edge();
            let e = base + r;
            let u = csc.sources()[e];
            let src_lanes = lanes.lanes_of(u);
            if src_lanes != 0 {
                fragments.push(((r / REDUCE_QUANTUM) as u64, u, csc.weight_at(e), src_lanes));
            }
        }
    }
    FusedOutput {
        range: v..v + 1,
        data: FusedOutputData::ReducePartial(FusedHubReducePartial {
            edge_offset: sub.lo,
            fragments,
        }),
    }
}

/// Reduces fused mega-hub partials into resolved outputs, in ascending
/// `(partition, chunk, sub-chunk)` order — the fused
/// [`reduce_hub_partials`](crate::partitioned::reduce_hub_partials):
/// sequential replay through the exclusive `update` path with the
/// lane-mask `cond` pre-check and early exit, bit-identical to never
/// having split the hub. Non-partial outputs pass through untouched.
pub fn reduce_fused_hub_partials<O: MultiSourceOp>(
    outputs: Vec<FusedOutput>,
    op: &O,
) -> Vec<FusedOutput> {
    if !outputs.iter().any(FusedOutput::is_partial) {
        return outputs;
    }
    let mut reduced = Vec::with_capacity(outputs.len());
    let mut it = outputs.into_iter().peekable();
    while let Some(o) = it.next() {
        let v = o.range.start;
        match o.data {
            FusedOutputData::Partial(first) => {
                let mut parts = vec![first];
                while let Some(next) = it.peek() {
                    if next.range.start == v && next.is_partial() {
                        if let FusedOutputData::Partial(p) = it.next().unwrap().data {
                            parts.push(p);
                        }
                    } else {
                        break;
                    }
                }
                debug_assert!(
                    parts
                        .windows(2)
                        .all(|w| w[0].edge_offset < w[1].edge_offset),
                    "sub-chunk partials must arrive in ascending slice order"
                );
                let mut new = 0u64;
                let open = op.cond(v);
                if open != 0 {
                    'replay: for p in &parts {
                        for &(u, w, src_lanes) in &p.actives {
                            new |= op.update(u, v, w, src_lanes) & open;
                            if op.cond(v) == 0 {
                                break 'replay;
                            }
                        }
                    }
                }
                reduced.push(resolved_hub_output(v, new));
            }
            data => reduced.push(FusedOutput {
                range: o.range,
                data,
            }),
        }
    }
    reduced
}

/// Reduces fused reduce-path hub fragments into resolved outputs: merge
/// each split destination's fragments in ascending slice (= scan) order,
/// re-fold per quantum from the identity, and apply one accumulator per
/// non-empty quantum through the exclusive [`MultiSourceReduce::apply`]
/// path. Non-partial outputs pass through untouched.
pub fn reduce_fused_hub_quanta<O: MultiSourceReduce>(
    outputs: Vec<FusedOutput>,
    op: &O,
) -> Vec<FusedOutput> {
    if !outputs.iter().any(FusedOutput::is_partial) {
        return outputs;
    }
    let mut reduced = Vec::with_capacity(outputs.len());
    let mut it = outputs.into_iter().peekable();
    while let Some(o) = it.next() {
        let v = o.range.start;
        match o.data {
            FusedOutputData::ReducePartial(first) => {
                let mut parts = vec![first];
                while let Some(next) = it.peek() {
                    if next.range.start == v && next.is_partial() {
                        if let FusedOutputData::ReducePartial(p) = it.next().unwrap().data {
                            parts.push(p);
                        }
                    } else {
                        break;
                    }
                }
                debug_assert!(
                    parts
                        .windows(2)
                        .all(|w| w[0].edge_offset < w[1].edge_offset),
                    "sub-chunk partials must arrive in ascending slice order"
                );
                let mut new = 0u64;
                let open = op.cond(v);
                if open != 0 {
                    // Fragments arrive in scan order (ascending quantum);
                    // a quantum may straddle two sub-chunks, so the fold
                    // carries across part boundaries.
                    let mut pending: Option<(u64, O::Acc)> = None;
                    for p in &parts {
                        for &(q, u, w, src_lanes) in &p.fragments {
                            match &mut pending {
                                Some((fq, acc)) if *fq == q => {
                                    op.accumulate(acc, u, w, src_lanes);
                                }
                                other => {
                                    if let Some((_, acc)) = other.take() {
                                        new |= op.apply(v, &acc) & open;
                                    }
                                    let mut acc = op.identity();
                                    op.accumulate(&mut acc, u, w, src_lanes);
                                    *other = Some((q, acc));
                                }
                            }
                        }
                    }
                    if let Some((_, acc)) = pending.take() {
                        new |= op.apply(v, &acc) & open;
                    }
                }
                reduced.push(resolved_hub_output(v, new));
            }
            data => reduced.push(FusedOutput {
                range: o.range,
                data,
            }),
        }
    }
    reduced
}

/// A resolved (post-replay) hub destination's output.
fn resolved_hub_output(v: VertexId, new: u64) -> FusedOutput {
    let (verts, masks) = if new != 0 {
        (vec![v], vec![new])
    } else {
        (Vec::new(), Vec::new())
    };
    FusedOutput {
        range: v..v + 1,
        data: FusedOutputData::Sparse { verts, masks },
    }
}

/// The monolithic fused fallback used when the engine runs without the
/// partitioned executor: pull every destination range in partition order
/// through the fused kernel, one pool task per range, sparse outputs
/// merged in range order. Deterministic (exclusive per range, CSC scan
/// order per destination) but unplanned — the deliverable prefilter
/// ([`PossibleMasks`]) is the only thing standing between every round and
/// a full `|V|` destination scan. The partitioned executor is the
/// production fused path.
#[allow(clippy::too_many_arguments)]
pub(crate) fn monolithic_fused_edge_map<O: MultiSourceOp>(
    csc: &Csc,
    csr: &Csr,
    fused: &FusedFrontier,
    op: &O,
    ranges: &[std::ops::Range<VertexId>],
    pool: &Pool,
    counters: &WorkCounters,
    n: usize,
    k: u32,
) -> FusedFrontier {
    let lanes = fused.view();
    let possible = PossibleMasks::build(csr, fused);
    let outputs = pool.map_indices(ranges.len(), |i| {
        let mut tally = LocalTally::new(counters);
        let range = ranges[i].clone();
        let mut sink = FusedPartSink::new(OutputRepr::Sparse, range.clone());
        for v in range {
            pull_vertex_fused(csc, lanes, op, v, possible.get(v), &mut sink, &mut tally);
        }
        sink.into_output()
    });
    FusedFrontier::from_outputs(outputs, n, k, counters)
}

/// The reduce-path monolithic fallback (see [`monolithic_fused_edge_map`]).
#[allow(clippy::too_many_arguments)]
pub(crate) fn monolithic_fused_edge_map_reduce<O: MultiSourceReduce>(
    csc: &Csc,
    csr: &Csr,
    fused: &FusedFrontier,
    op: &O,
    ranges: &[std::ops::Range<VertexId>],
    pool: &Pool,
    counters: &WorkCounters,
    n: usize,
    k: u32,
) -> FusedFrontier {
    let lanes = fused.view();
    let possible = PossibleMasks::build(csr, fused);
    let outputs = pool.map_indices(ranges.len(), |i| {
        let mut tally = LocalTally::new(counters);
        let range = ranges[i].clone();
        let mut sink = FusedPartSink::new(OutputRepr::Sparse, range.clone());
        for v in range {
            pull_vertex_fused_reduce(csc, lanes, op, v, possible.get(v), &mut sink, &mut tally);
        }
        sink.into_output()
    });
    FusedFrontier::from_outputs(outputs, n, k, counters)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeds_build_a_sorted_deduped_sparse_frontier() {
        let f = FusedFrontier::from_seeds(&[9, 2, 9, 5], 12);
        assert_eq!(f.num_lanes(), 4);
        assert_eq!(f.lane_mask(), 0b1111);
        assert_eq!(f.len(), 3);
        assert_eq!(f.lane_bits(), 4);
        let mut seen = Vec::new();
        f.for_each(|v, m| seen.push((v, m)));
        // Lane 0 and 2 share vertex 9.
        assert_eq!(seen, vec![(2, 0b0010), (5, 0b1000), (9, 0b0101)]);
        assert_eq!(f.lanes_of(9), 0b0101);
        assert_eq!(f.lanes_of(0), 0);
    }

    #[test]
    fn lane_mask_covers_full_width() {
        assert_eq!(lane_mask(0), 0);
        assert_eq!(lane_mask(1), 1);
        assert_eq!(lane_mask(63), u64::MAX >> 1);
        assert_eq!(lane_mask(64), u64::MAX);
    }

    #[test]
    fn sparse_outputs_concatenate_without_dense_work() {
        let counters = WorkCounters::new();
        let outputs = vec![
            FusedOutput {
                range: 8..16,
                data: FusedOutputData::Sparse {
                    verts: vec![9, 15],
                    masks: vec![0b10, 0b1],
                },
            },
            FusedOutput {
                range: 0..8,
                data: FusedOutputData::Sparse {
                    verts: vec![3],
                    masks: vec![0b11],
                },
            },
        ];
        let f = FusedFrontier::from_outputs(outputs, 16, 2, &counters);
        assert!(matches!(f.data(), FusedData::Sparse { .. }));
        let mut seen = Vec::new();
        f.for_each(|v, m| seen.push((v, m)));
        assert_eq!(seen, vec![(3, 0b11), (9, 0b10), (15, 0b1)]);
        assert_eq!(counters.fused_lanes(), 4);
        assert_eq!(counters.lane_union_words(), 0);
    }

    #[test]
    fn dense_outputs_splice_and_count_union_words() {
        let counters = WorkCounters::new();
        let mut seg = LaneSegment::new(4..10);
        seg.or(5, 0b100);
        let outputs = vec![
            FusedOutput {
                range: 4..10,
                data: FusedOutputData::Dense(seg),
            },
            FusedOutput {
                range: 0..4,
                data: FusedOutputData::Sparse {
                    verts: vec![1],
                    masks: vec![0b1],
                },
            },
        ];
        let f = FusedFrontier::from_outputs(outputs, 10, 3, &counters);
        assert!(matches!(f.data(), FusedData::Dense(_)));
        assert_eq!(f.len(), 2);
        assert_eq!(f.lanes_of(5), 0b100);
        assert_eq!(f.lanes_of(1), 0b1);
        assert_eq!(counters.lane_union_words(), 6);
        assert_eq!(counters.fused_lanes(), 2);
    }

    #[test]
    fn hub_replay_matches_inline_updates_and_respects_early_exit() {
        use std::sync::atomic::{AtomicU64, Ordering};
        // A claim-once op: each lane claims dst at most once.
        struct Claim {
            visited: Vec<AtomicU64>,
        }
        impl MultiSourceOp for Claim {
            fn update(&self, _s: VertexId, d: VertexId, _w: f32, src_lanes: u64) -> u64 {
                let prev = self.visited[d as usize].fetch_or(src_lanes, Ordering::Relaxed);
                src_lanes & !prev
            }
            fn cond(&self, d: VertexId) -> u64 {
                lane_mask(2) & !self.visited[d as usize].load(Ordering::Relaxed)
            }
        }
        let op = Claim {
            visited: (0..4).map(|_| AtomicU64::new(0)).collect(),
        };
        let outputs = vec![
            FusedOutput {
                range: 2..3,
                data: FusedOutputData::Partial(FusedHubPartial {
                    edge_offset: 0,
                    actives: vec![(0, 1.0, 0b01), (1, 1.0, 0b11)],
                }),
            },
            FusedOutput {
                range: 2..3,
                data: FusedOutputData::Partial(FusedHubPartial {
                    edge_offset: 2,
                    actives: vec![(3, 1.0, 0b11)],
                }),
            },
        ];
        let reduced = reduce_fused_hub_partials(outputs, &op);
        assert_eq!(reduced.len(), 1);
        match &reduced[0].data {
            FusedOutputData::Sparse { verts, masks } => {
                assert_eq!(verts, &vec![2]);
                // Lane 0 claimed by src 0, lane 1 by src 1; src 3 adds
                // nothing (early exit already fired: both lanes closed).
                assert_eq!(masks, &vec![0b11]);
            }
            other => panic!("expected sparse, got {other:?}"),
        }
        assert_eq!(op.visited[2].load(Ordering::Relaxed), 0b11);
    }

    /// A claim-once visit op over `k` lanes, the BFS update shape.
    struct Visit {
        visited: Vec<std::sync::atomic::AtomicU64>,
        k: u32,
    }
    impl Visit {
        fn new(n: usize, k: u32) -> Self {
            Visit {
                visited: (0..n).map(|_| AtomicU64::new(0)).collect(),
                k,
            }
        }
    }
    impl MultiSourceOp for Visit {
        fn update(&self, _s: VertexId, d: VertexId, _w: f32, src_lanes: u64) -> u64 {
            let prev = self.visited[d as usize].fetch_or(src_lanes, Ordering::Relaxed);
            src_lanes & !prev
        }
        fn cond(&self, d: VertexId) -> u64 {
            lane_mask(self.k) & !self.visited[d as usize].load(Ordering::Relaxed)
        }
    }

    struct VecSink(Vec<(VertexId, u64)>);
    impl FusedSink for VecSink {
        fn activate(&mut self, v: VertexId, lanes: u64) {
            self.0.push((v, lanes));
        }
    }

    #[test]
    fn zero_deliverable_mask_skips_the_scan_without_touching_an_edge() {
        use gg_graph::edge_list::EdgeList;
        let el = EdgeList::from_edges(6, &[(0, 5), (1, 5), (2, 5), (3, 5), (4, 5)]);
        let csc = gg_graph::csc::Csc::from_edge_list(&el);
        let fused = FusedFrontier::from_seeds(&[1], 6);
        let op = Visit::new(6, 1);
        let counters = WorkCounters::new();
        let mut sink = VecSink(Vec::new());
        {
            let mut tally = LocalTally::new(&counters);
            // `possible == 0`: no in-neighbour can deliver a lane.
            pull_vertex_fused(&csc, fused.view(), &op, 5, 0, &mut sink, &mut tally);
        }
        assert_eq!(counters.edges(), 0, "skipped destination must not scan");
        assert!(sink.0.is_empty());
    }

    #[test]
    fn scan_breaks_once_every_deliverable_lane_is_claimed() {
        use gg_graph::edge_list::EdgeList;
        // Destination 5's in-list is [0, 1, 2, 3, 4] in CSC order; only
        // source 1 is active (lane 0), so the scan must stop right after
        // edge (1, 5) claims the lone deliverable lane.
        let el = EdgeList::from_edges(6, &[(0, 5), (1, 5), (2, 5), (3, 5), (4, 5)]);
        let csc = gg_graph::csc::Csc::from_edge_list(&el);
        let fused = FusedFrontier::from_seeds(&[1], 6);
        let op = Visit::new(6, 1);
        let csr = gg_graph::csr::Csr::from_edge_list(&el);
        let possible = PossibleMasks::build(&csr, &fused);
        let counters = WorkCounters::new();
        let mut sink = VecSink(Vec::new());
        {
            let mut tally = LocalTally::new(&counters);
            pull_vertex_fused(
                &csc,
                fused.view(),
                &op,
                5,
                possible.get(5),
                &mut sink,
                &mut tally,
            );
        }
        assert_eq!(counters.edges(), 2, "scan stops at the claiming edge");
        assert_eq!(sink.0, vec![(5, 0b1)]);
    }

    #[test]
    fn live_lanes_and_retain_track_sparse_and_dense_alike() {
        let sparse = FusedFrontier::from_seeds(&[9, 2, 9, 5], 12);
        assert_eq!(sparse.live_lanes(), 0b1111);
        // Retire lanes 0 and 3; vertex 5 (lane 3 only) drops out.
        let kept = sparse.retain_lanes(0b0110);
        assert_eq!(kept.live_lanes(), 0b0110);
        assert_eq!(kept.len(), 2);
        assert_eq!(kept.lane_bits(), 2);
        let mut seen = Vec::new();
        kept.for_each(|v, m| seen.push((v, m)));
        assert_eq!(seen, vec![(2, 0b0010), (9, 0b0100)]);
        assert_eq!(kept.num_lanes(), sparse.num_lanes());

        // Dense path: same result through a LaneBitmap.
        let counters = WorkCounters::new();
        let mut seg = LaneSegment::new(0..12);
        sparse.for_each(|v, m| {
            seg.or(v as usize, m);
        });
        let dense = FusedFrontier::from_outputs(
            vec![FusedOutput {
                range: 0..12,
                data: FusedOutputData::Dense(seg),
            }],
            12,
            4,
            &counters,
        );
        assert_eq!(dense.live_lanes(), 0b1111);
        let dkept = dense.retain_lanes(0b0110);
        assert!(matches!(dkept.data(), FusedData::Dense(_)));
        let mut dseen = Vec::new();
        dkept.for_each(|v, m| dseen.push((v, m)));
        assert_eq!(dseen, seen);
        assert_eq!(dkept.len(), 2);
        assert_eq!(dkept.lane_bits(), 2);

        // Retaining every live lane is a structural no-op.
        let all = sparse.retain_lanes(u64::MAX);
        let mut aseen = Vec::new();
        all.for_each(|v, m| aseen.push((v, m)));
        let mut oseen = Vec::new();
        sparse.for_each(|v, m| oseen.push((v, m)));
        assert_eq!(aseen, oseen);
    }

    #[test]
    fn lane_retirement_records_rounds_and_force_finishes() {
        let mut r = LaneRetirement::new(0b1011);
        assert_eq!(r.active(), 0b1011);
        assert_eq!(r.retired_round(0), None);
        // Round 2: lane 0 quiesces.
        assert_eq!(r.observe(2, 0b1010), 0b0001);
        assert_eq!(r.active(), 0b1010);
        assert_eq!(r.retired_round(0), Some(2));
        // Re-observing a dead lane changes nothing.
        assert_eq!(r.observe(3, 0b1010), 0);
        assert_eq!(r.retired_round(0), Some(2));
        // Round 5: lanes 1 and 3 quiesce together.
        assert_eq!(r.observe(5, 0), 0b1010);
        assert_eq!(r.active(), 0);
        assert_eq!(r.retired_round(1), Some(5));
        assert_eq!(r.retired_round(3), Some(5));
        // Lane 2 was never in the batch.
        assert_eq!(r.retired_round(2), None);

        let mut f = LaneRetirement::new(0b11);
        f.observe(1, 0b10);
        assert_eq!(f.finish(7), 0b10);
        assert_eq!(f.retired_round(0), Some(1));
        assert_eq!(f.retired_round(1), Some(7));
        assert_eq!(f.active(), 0);
    }

    #[test]
    fn possible_masks_union_frontier_lanes_over_out_neighbors() {
        use gg_graph::edge_list::EdgeList;
        let el = EdgeList::from_edges(5, &[(0, 2), (1, 2), (1, 3), (4, 3)]);
        let csr = gg_graph::csr::Csr::from_edge_list(&el);
        // Lane 0 seeds at 0, lane 1 at 1; vertex 4 inactive.
        let fused = FusedFrontier::from_seeds(&[0, 1], 5);
        let pm = PossibleMasks::build(&csr, &fused);
        assert_eq!(pm.get(2), 0b11);
        assert_eq!(pm.get(3), 0b10);
        assert_eq!(pm.get(4), 0);
        assert_eq!(pm.get(0), 0);
    }
}
