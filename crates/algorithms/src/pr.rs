//! PageRank by the power method (edge-oriented; baselines prefer backward
//! dense traversal). 10 iterations by default, matching Table II.
//!
//! Every iteration is a dense edge map: contributions
//! `rank[u] / deg_out(u)` flow along out-edges into an accumulator; a
//! vertex map then applies damping. On GraphGrind-v2 every iteration takes
//! the partitioned-COO path, which is exactly the configuration Figure 5c
//! and Figure 8 study.

use gg_core::edge_map::{EdgeMapReduce, EdgeOp};
use gg_core::engine::Engine;
use gg_graph::types::VertexId;
use gg_runtime::atomics::{atomic_f64_vec, snapshot_f64, AtomicF64};

use crate::Algorithm;

/// Damping factor used throughout (the paper's algorithms inherit Ligra's
/// 0.85).
pub const DAMPING: f64 = 0.85;

struct PrOp<'a> {
    contrib: &'a [AtomicF64],
    acc: &'a [AtomicF64],
}

impl EdgeOp for PrOp<'_> {
    #[inline]
    fn update(&self, src: VertexId, dst: VertexId, _w: f32) -> bool {
        self.acc[dst as usize].add_exclusive(self.contrib[src as usize].load());
        true
    }

    #[inline]
    fn update_atomic(&self, src: VertexId, dst: VertexId, _w: f32) -> bool {
        self.acc[dst as usize].fetch_add(self.contrib[src as usize].load());
        true
    }
}

/// The rank accumulation is an associative sum of frozen per-source
/// contributions, so hub sub-chunks can pre-reduce locally.
impl EdgeMapReduce for PrOp<'_> {
    #[inline]
    fn identity(&self) -> f64 {
        0.0
    }

    #[inline]
    fn accumulate(&self, acc: f64, src: VertexId, _w: f32) -> f64 {
        acc + self.contrib[src as usize].load()
    }

    #[inline]
    fn combine(&self, a: f64, b: f64) -> f64 {
        a + b
    }

    #[inline]
    fn apply(&self, dst: VertexId, acc: f64) -> bool {
        self.acc[dst as usize].add_exclusive(acc);
        true
    }
}

/// Runs `iters` power-method iterations; returns the rank vector.
pub fn pagerank<E: Engine>(engine: &E, iters: usize) -> Vec<f64> {
    let n = engine.num_vertices();
    if n == 0 {
        return Vec::new();
    }
    let rank = atomic_f64_vec(n, 1.0 / n as f64);
    let contrib = atomic_f64_vec(n, 0.0);
    let acc = atomic_f64_vec(n, 0.0);
    let degrees = engine.out_degrees();
    let spec = Algorithm::Pr.spec();

    for _ in 0..iters {
        engine.vertex_map_all(|v| {
            let d = degrees[v as usize].max(1) as f64;
            contrib[v as usize].store(rank[v as usize].load() / d);
            acc[v as usize].store(0.0);
        });
        let op = PrOp {
            contrib: &contrib,
            acc: &acc,
        };
        let frontier = engine.frontier_all();
        let _ = engine.edge_map_reduce(&frontier, &op, spec);
        engine.vertex_map_all(|v| {
            rank[v as usize].store(0.15 / n as f64 + DAMPING * acc[v as usize].load());
        });
    }
    snapshot_f64(&rank)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;
    use crate::validate::assert_close_f64;
    use gg_core::config::Config;
    use gg_core::engine::GraphGrind2;
    use gg_graph::generators;

    #[test]
    fn matches_reference_on_cycle() {
        let el = generators::cycle(16);
        let engine = GraphGrind2::new(&el, Config::for_tests());
        let got = pagerank(&engine, 10);
        assert_close_f64(&got, &reference::pagerank(&el, 10), 1e-9, 1e-15);
    }

    #[test]
    fn matches_reference_on_rmat() {
        let el = generators::rmat(9, 6000, generators::RmatParams::skewed(), 31);
        let engine = GraphGrind2::new(&el, Config::for_tests());
        let got = pagerank(&engine, 10);
        assert_close_f64(&got, &reference::pagerank(&el, 10), 1e-9, 1e-15);
    }

    #[test]
    fn star_center_ranks_highest() {
        let el = generators::star(50);
        let engine = GraphGrind2::new(&el, Config::for_tests());
        let r = pagerank(&engine, 10);
        let max = r.iter().cloned().fold(f64::MIN, f64::max);
        assert_eq!(r[0], max);
        assert!(r[0] > 10.0 * r[1]);
    }

    #[test]
    fn zero_iterations_returns_uniform() {
        let el = generators::cycle(4);
        let engine = GraphGrind2::new(&el, Config::for_tests());
        assert_eq!(pagerank(&engine, 0), vec![0.25; 4]);
    }
}
