//! Sparse matrix-vector multiplication, one iteration (edge-oriented,
//! forward): `y[v] = Σ_{(u,v) ∈ E} w(u,v) · x[u]`, interpreting the graph
//! as its (transposed-indexed) adjacency matrix.

use gg_core::edge_map::{EdgeMapReduce, EdgeOp};
use gg_core::engine::Engine;
use gg_graph::types::VertexId;
use gg_runtime::atomics::{atomic_f64_vec, snapshot_f64, AtomicF64};

use crate::Algorithm;

struct SpmvOp<'a> {
    x: &'a [f64],
    y: &'a [AtomicF64],
}

impl EdgeOp for SpmvOp<'_> {
    #[inline]
    fn update(&self, src: VertexId, dst: VertexId, w: f32) -> bool {
        self.y[dst as usize].add_exclusive(w as f64 * self.x[src as usize]);
        true
    }

    #[inline]
    fn update_atomic(&self, src: VertexId, dst: VertexId, w: f32) -> bool {
        self.y[dst as usize].fetch_add(w as f64 * self.x[src as usize]);
        true
    }
}

/// The row dot-product is an associative sum over the frozen input
/// vector, so hub sub-chunks can pre-reduce locally.
impl EdgeMapReduce for SpmvOp<'_> {
    #[inline]
    fn identity(&self) -> f64 {
        0.0
    }

    #[inline]
    fn accumulate(&self, acc: f64, src: VertexId, w: f32) -> f64 {
        acc + w as f64 * self.x[src as usize]
    }

    #[inline]
    fn combine(&self, a: f64, b: f64) -> f64 {
        a + b
    }

    #[inline]
    fn apply(&self, dst: VertexId, acc: f64) -> bool {
        self.y[dst as usize].add_exclusive(acc);
        true
    }
}

/// Computes `y = A^T x` (contributions flow along edge direction).
///
/// # Panics
/// Panics if `x.len() != engine.num_vertices()`.
pub fn spmv<E: Engine>(engine: &E, x: &[f64]) -> Vec<f64> {
    let n = engine.num_vertices();
    assert_eq!(x.len(), n, "input vector length mismatch");
    let y = atomic_f64_vec(n, 0.0);
    let op = SpmvOp { x, y: &y };
    let frontier = engine.frontier_all();
    let _ = engine.edge_map_reduce(&frontier, &op, Algorithm::Spmv.spec());
    snapshot_f64(&y)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;
    use crate::validate::assert_close_f64;
    use gg_core::config::Config;
    use gg_core::engine::GraphGrind2;
    use gg_graph::generators;

    #[test]
    fn matches_reference_weighted() {
        let mut el = generators::erdos_renyi(100, 1200, 6);
        gg_graph::weights::attach_uniform(&mut el, 0.1, 2.0, 7);
        let engine = GraphGrind2::new(&el, Config::for_tests());
        let x: Vec<f64> = (0..100).map(|i| 1.0 / (i + 1) as f64).collect();
        let got = spmv(&engine, &x);
        assert_close_f64(&got, &reference::spmv(&el, &x), 1e-9, 1e-15);
    }

    #[test]
    fn unweighted_counts_in_neighbors() {
        let el = generators::complete(6);
        let engine = GraphGrind2::new(&el, Config::for_tests());
        let got = spmv(&engine, &[1.0; 6]);
        // Each vertex has 5 in-edges with weight 1.
        assert_eq!(got, vec![5.0; 6]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn rejects_wrong_length() {
        let el = generators::cycle(4);
        let engine = GraphGrind2::new(&el, Config::for_tests());
        let _ = spmv(&engine, &[1.0; 3]);
    }
}
