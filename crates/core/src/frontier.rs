//! Frontier representations and density classification.
//!
//! A frontier is the set of active vertices of one iteration (§II.A). It
//! caches two quantities consulted by the Algorithm 2 decision: the active
//! vertex count `|F|` and the active out-degree sum `Σ_{v∈F} deg_out(v)`,
//! so classification is O(1) at edge-map time.
//!
//! Sparse frontiers store a sorted vertex list; dense frontiers store a
//! bitmap. Either representation can be materialised from the other; the
//! cached counts are representation-independent.
//!
//! The partitioned executor additionally produces frontiers from **typed
//! per-partition output buffers** ([`PartitionOutput`]): each partition
//! task returns either a sorted vertex list or a range-aligned
//! [`BitmapSegment`], and [`Frontier::from_partition_outputs`] merges them
//! in partition (= ascending vertex) order. When every buffer is sparse the
//! merge is a pure concatenation — `O(Σ outputs)`, no `|V|`-proportional
//! work — which is what removes the dense-merge floor on high-diameter
//! traversals.

use std::sync::Arc;

use gg_graph::bitmap::{AtomicBitmap, Bitmap, BitmapSegment, Ones};
use gg_graph::types::VertexId;
use gg_runtime::buffer::BufferPool;
use gg_runtime::counters::WorkCounters;
use gg_runtime::pool::Pool;

/// Physical representation of the active set.
#[derive(Clone, Debug)]
pub enum FrontierData {
    /// Sorted list of active vertex ids.
    Sparse(Vec<VertexId>),
    /// One bit per vertex.
    Dense(Bitmap),
}

/// A borrowed, read-only view of a frontier's membership, passed to
/// traversal kernels so a sparse-representation frontier never has to be
/// densified just to answer `contains` probes.
#[derive(Clone, Copy, Debug)]
pub enum FrontierView<'a> {
    /// Sorted active list; membership by binary search (`O(log |F|)`).
    Sparse(&'a [VertexId]),
    /// Bitmap; membership by bit test (`O(1)`).
    Dense(&'a Bitmap),
}

impl FrontierView<'_> {
    /// True if `v` is active.
    #[inline]
    pub fn contains(&self, v: VertexId) -> bool {
        match self {
            FrontierView::Sparse(list) => list.binary_search(&v).is_ok(),
            FrontierView::Dense(b) => b.get(v as usize),
        }
    }

    /// The sorted active list, when this view is sparse.
    #[inline]
    pub fn as_list(&self) -> Option<&[VertexId]> {
        match self {
            FrontierView::Sparse(list) => Some(list),
            FrontierView::Dense(_) => None,
        }
    }
}

/// One partition task's typed next-frontier output buffer: the partition's
/// destination range plus either a sorted vertex list or a range-aligned
/// dense bitmap segment. Produced by the pool tasks of the partitioned
/// executor, merged by [`Frontier::from_partition_outputs`].
#[derive(Clone, Debug)]
pub struct PartitionOutput {
    /// The destination range the emitting partition owns.
    pub range: std::ops::Range<VertexId>,
    /// The activated destinations, in the planned representation.
    pub data: PartitionOutputData,
}

/// The payload of a [`PartitionOutput`].
#[derive(Clone, Debug)]
pub enum PartitionOutputData {
    /// Sorted, deduplicated vertex ids inside the partition's range.
    Sparse(Vec<VertexId>),
    /// Range-aligned bitmap covering exactly the partition's range.
    Dense(BitmapSegment),
    /// A mega-hub sub-chunk's **partial accumulator**: one slice of a
    /// single destination's in-edge scan, not yet applied. The executor
    /// reduces consecutive partials of one destination in ascending
    /// `(partition, chunk, sub-chunk)` order
    /// ([`reduce_hub_partials`](crate::partitioned::reduce_hub_partials))
    /// before the frontier merge; [`Frontier::from_partition_outputs`]
    /// refuses unreduced partials.
    Partial(HubPartial),
    /// A mega-hub sub-chunk's **pre-reduced accumulator** for an
    /// [`EdgeMapReduce`](crate::edge_map::EdgeMapReduce) operator: folded
    /// per-quantum values plus raw fragments for quanta the sub-chunk only
    /// partially covers. The executor merges these by quantum index and
    /// applies them in ascending order
    /// ([`reduce_hub_quanta`](crate::partitioned::reduce_hub_quanta));
    /// [`Frontier::from_partition_outputs`] refuses unreduced partials.
    ReducePartial(HubReducePartial),
}

/// The partial accumulator a mega-hub sub-chunk emits: the frontier-active
/// in-edge contributions of one slice of a destination's CSC adjacency,
/// collected **without** applying the edge operator. Applying is deferred
/// to the deterministic sequential reduction so the destination keeps a
/// single writer and the update order stays the CSC scan order — which is
/// what makes hub splitting invisible in results.
#[derive(Clone, Debug)]
pub struct HubPartial {
    /// Offset of this slice within the destination's in-edge list — the
    /// ascending sub-chunk merge key.
    pub edge_offset: u64,
    /// Active `(source, weight)` contributions of the slice, in CSC scan
    /// order.
    pub actives: Vec<(VertexId, f32)>,
}

/// The pre-reduced accumulator a mega-hub sub-chunk emits for a
/// reduce-capable operator. The destination's in-edge scan is folded in
/// fixed runs of [`REDUCE_QUANTUM`](crate::edge_map::REDUCE_QUANTUM)
/// consecutive slots with boundaries at absolute multiples of the quantum:
/// quanta fully inside the sub-chunk arrive as **folded** `(quantum, acc)`
/// values, while quanta straddling a sub-chunk boundary arrive as raw
/// `(quantum, source, weight)` **fragments** so the reducer can re-fold
/// the whole quantum edge-wise — keeping the f64 grouping identical to an
/// unsplit scan of the destination. Quanta with no frontier-active edges
/// are omitted entirely.
#[derive(Clone, Debug)]
pub struct HubReducePartial {
    /// Folded `(quantum index, accumulator)` values for fully-covered,
    /// non-empty quanta, in ascending quantum order.
    pub folded: Vec<(u64, f64)>,
    /// Raw `(quantum index, source, weight)` contributions of straddled
    /// quanta, in CSC scan order.
    pub fragments: Vec<(u64, VertexId, f32)>,
}

impl PartitionOutput {
    /// Number of activated destinations in this buffer. A partial
    /// accumulator has not activated anything yet.
    pub fn count(&self) -> usize {
        match &self.data {
            PartitionOutputData::Sparse(list) => list.len(),
            PartitionOutputData::Dense(seg) => seg.count_ones(),
            PartitionOutputData::Partial(_) | PartitionOutputData::ReducePartial(_) => 0,
        }
    }

    /// True when the buffer is a sorted vertex list.
    pub fn is_sparse(&self) -> bool {
        matches!(self.data, PartitionOutputData::Sparse(_))
    }

    /// True when the buffer is an unreduced mega-hub partial accumulator
    /// (either flavour: replay or pre-reduced).
    pub fn is_partial(&self) -> bool {
        matches!(
            self.data,
            PartitionOutputData::Partial(_) | PartitionOutputData::ReducePartial(_)
        )
    }
}

/// A set of active vertices with cached density statistics.
///
/// ```
/// use gg_core::frontier::Frontier;
///
/// let out_degrees = [2u32, 0, 5, 1];
/// let f = Frontier::from_sparse(vec![2, 0], 4, &out_degrees);
/// assert_eq!(f.len(), 2);
/// assert_eq!(f.degree_sum(), 7);
/// assert_eq!(f.density_metric(), 9); // |F| + Σ deg_out(F), Algorithm 2
/// assert!(f.contains(2) && !f.contains(1));
/// ```
#[derive(Debug)]
pub struct Frontier {
    n: usize,
    data: FrontierData,
    count: usize,
    degree_sum: u64,
    /// When the dense storage came out of a [`BufferPool`], how to give it
    /// back on drop: the pool plus the word indices the merge touched
    /// (`None` = untracked, the next taker zeroes the whole buffer).
    recycle: Option<Recycle>,
}

#[derive(Debug)]
struct Recycle {
    pool: Arc<BufferPool>,
    touched: Option<Vec<u32>>,
}

impl Clone for Frontier {
    fn clone(&self) -> Self {
        // The clone owns a plain allocation: recycling stays with the
        // original so the buffer is returned exactly once.
        Frontier {
            n: self.n,
            data: self.data.clone(),
            count: self.count,
            degree_sum: self.degree_sum,
            recycle: None,
        }
    }
}

impl Drop for Frontier {
    fn drop(&mut self) {
        if let Some(r) = self.recycle.take() {
            if let FrontierData::Dense(b) = &mut self.data {
                r.pool.put(b.take_words(), r.touched);
            }
        }
    }
}

impl Frontier {
    /// The empty frontier over `n` vertices.
    pub fn empty(n: usize) -> Self {
        Frontier {
            n,
            data: FrontierData::Sparse(Vec::new()),
            count: 0,
            degree_sum: 0,
            recycle: None,
        }
    }

    /// A single-vertex frontier (the classic BFS/BC/BF starting point).
    pub fn single(v: VertexId, n: usize, out_degrees: &[u32]) -> Self {
        Frontier {
            n,
            data: FrontierData::Sparse(vec![v]),
            count: 1,
            degree_sum: out_degrees[v as usize] as u64,
            recycle: None,
        }
    }

    /// The all-vertices frontier (`m` = total edge count, so the cached
    /// degree sum needs no scan).
    pub fn all(n: usize, m: u64) -> Self {
        Frontier {
            n,
            data: FrontierData::Dense(Bitmap::full(n)),
            count: n,
            degree_sum: m,
            recycle: None,
        }
    }

    /// Builds a sparse frontier from a vertex list (sorted and deduped for
    /// deterministic iteration order).
    pub fn from_sparse(mut vertices: Vec<VertexId>, n: usize, out_degrees: &[u32]) -> Self {
        vertices.sort_unstable();
        vertices.dedup();
        let count = vertices.len();
        let degree_sum = vertices
            .iter()
            .map(|&v| out_degrees[v as usize] as u64)
            .sum();
        Frontier {
            n,
            data: FrontierData::Sparse(vertices),
            count,
            degree_sum,
            recycle: None,
        }
    }

    /// Builds a dense frontier from a bitmap, computing the statistics in
    /// parallel on `pool`.
    pub fn from_dense(bitmap: Bitmap, out_degrees: &[u32], pool: &Pool) -> Self {
        let n = bitmap.len();
        let words = bitmap.words();
        let tasks = (pool.threads() * 4).min(words.len().max(1));
        let partials: Vec<(usize, u64)> = pool.map_indices(tasks, |t| {
            let lo = words.len() * t / tasks;
            let hi = words.len() * (t + 1) / tasks;
            let mut count = 0usize;
            let mut sum = 0u64;
            for (wi, &w) in words[lo..hi].iter().enumerate() {
                let mut bits = w;
                count += w.count_ones() as usize;
                while bits != 0 {
                    let b = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    sum += out_degrees[(lo + wi) * 64 + b] as u64;
                }
            }
            (count, sum)
        });
        let (count, degree_sum) = partials
            .into_iter()
            .fold((0, 0), |(c, s), (pc, ps)| (c + pc, s + ps));
        Frontier {
            n,
            data: FrontierData::Dense(bitmap),
            count,
            degree_sum,
            recycle: None,
        }
    }

    /// Builds a dense frontier from an atomic bitmap produced by a
    /// traversal kernel.
    pub fn from_atomic(bitmap: AtomicBitmap, out_degrees: &[u32], pool: &Pool) -> Self {
        Self::from_dense(bitmap.into_bitmap(), out_degrees, pool)
    }

    /// Builds a sparse frontier from an **already sorted, deduplicated**
    /// vertex list — the no-scan constructor used by the partition-order
    /// merge, where sortedness is structural (partitions own disjoint
    /// ascending ranges).
    pub fn from_sorted(vertices: Vec<VertexId>, n: usize, out_degrees: &[u32]) -> Self {
        debug_assert!(vertices.windows(2).all(|w| w[0] < w[1]), "must be sorted");
        let count = vertices.len();
        let degree_sum = vertices
            .iter()
            .map(|&v| out_degrees[v as usize] as u64)
            .sum();
        Frontier {
            n,
            data: FrontierData::Sparse(vertices),
            count,
            degree_sum,
            recycle: None,
        }
    }

    /// Merges typed per-chunk output buffers into the next frontier,
    /// concatenating in `(partition, chunk)` — i.e. ascending range —
    /// order. Because chunks own disjoint ascending destination ranges,
    /// that *is* ascending vertex order, so the merge is deterministic for
    /// any submission order, partition count, chunk size, thread count,
    /// steal schedule, kernel mix and output-representation mix.
    ///
    /// * Every buffer sparse → a sparse frontier by pure concatenation:
    ///   `O(Σ outputs)` work, **no `O(|V| / 64)` dense floor**.
    /// * Any buffer dense → a dense frontier: segments splice with
    ///   word-level ORs, sparse lists set bits individually. The
    ///   `|V|`-proportional allocation plus all spliced words are recorded
    ///   in `counters.merge_words()` so tests (and the sparse-output
    ///   bench) can pin exactly when the floor is paid. When `scratch` is
    ///   given, the backing words come out of the [`BufferPool`] instead
    ///   of a fresh allocation, the touched words are tracked, and the
    ///   frontier hands the buffer back on drop — so steady-state dense
    ///   rounds recycle one buffer instead of allocating per round.
    ///
    /// `outputs` may arrive in any order (the pool schedules chunks by
    /// stealing); they are keyed by their disjoint ranges. Mega-hub
    /// partial accumulators ([`PartitionOutputData::Partial`]) must have
    /// been reduced in ascending `(partition, chunk, sub-chunk)` order
    /// first ([`reduce_hub_partials`](crate::partitioned::reduce_hub_partials)
    /// does exactly that); the merge refuses unreduced partials loudly
    /// rather than silently dropping their contributions.
    pub fn from_partition_outputs(
        mut outputs: Vec<PartitionOutput>,
        n: usize,
        out_degrees: &[u32],
        counters: &WorkCounters,
        scratch: Option<&Arc<BufferPool>>,
    ) -> Self {
        assert!(
            outputs.iter().all(|o| !o.is_partial()),
            "mega-hub partials must be reduced before the frontier merge"
        );
        outputs.sort_unstable_by_key(|o| o.range.start);
        debug_assert!(outputs
            .windows(2)
            .all(|w| w[0].range.end <= w[1].range.start));
        let total: usize = outputs.iter().map(|o| o.count()).sum();
        if total == 0 {
            return Frontier::empty(n);
        }
        if outputs.iter().all(|o| o.is_sparse()) {
            let mut vertices = Vec::with_capacity(total);
            for o in &outputs {
                if let PartitionOutputData::Sparse(list) = &o.data {
                    vertices.extend_from_slice(list);
                }
            }
            return Frontier::from_sorted(vertices, n, out_degrees);
        }
        // At least one dense buffer: pay the dense merge, and say so.
        let (mut bitmap, mut touched) = match scratch {
            Some(pool) => {
                let (words, touched) = pool.take(n.div_ceil(64));
                (Bitmap::from_zeroed_words(words, n), Some(touched))
            }
            None => (Bitmap::new(n), None),
        };
        // Stop tracking once the touched list approaches the word count:
        // a full-buffer zero on the next take is then the cheaper cleanup.
        let track_limit = bitmap.words().len() / 2;
        let mut merge_words = bitmap.words().len() as u64;
        let mut degree_sum = 0u64;
        for o in &outputs {
            match &o.data {
                PartitionOutputData::Sparse(list) => {
                    for &v in list {
                        bitmap.set(v as usize);
                        degree_sum += out_degrees[v as usize] as u64;
                    }
                    if let Some(t) = &mut touched {
                        t.extend(list.iter().map(|&v| v / 64));
                    }
                }
                PartitionOutputData::Dense(seg) => {
                    seg.splice_into(&mut bitmap);
                    merge_words += seg.num_words() as u64;
                    seg.for_each_one(|v| degree_sum += out_degrees[v] as u64);
                    if let Some(t) = &mut touched {
                        // A shifted splice can spill into one extra word.
                        let r = seg.range();
                        let lo = (r.start / 64) as u32;
                        let hi = (r.end.div_ceil(64) as u32).max(lo + 1);
                        t.extend(lo..hi);
                    }
                }
                PartitionOutputData::Partial(_) | PartitionOutputData::ReducePartial(_) => {
                    unreachable!("asserted above")
                }
            }
            if let Some(t) = &touched {
                if t.len() > track_limit {
                    touched = None;
                }
            }
        }
        counters.add_merge_words(merge_words);
        let recycle = scratch.map(|pool| Recycle {
            pool: Arc::clone(pool),
            touched,
        });
        Frontier {
            n,
            data: FrontierData::Dense(bitmap),
            count: total,
            degree_sum,
            recycle,
        }
    }

    /// Number of vertices in the graph (`n`), not the active count.
    #[inline]
    pub fn universe(&self) -> usize {
        self.n
    }

    /// Number of active vertices `|F|`.
    #[inline]
    pub fn len(&self) -> usize {
        self.count
    }

    /// True when no vertex is active (the usual termination condition).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Cached `Σ_{v∈F} deg_out(v)`.
    #[inline]
    pub fn degree_sum(&self) -> u64 {
        self.degree_sum
    }

    /// The Algorithm 2 density metric `|F| + Σ deg_out(F)`.
    #[inline]
    pub fn density_metric(&self) -> u64 {
        self.count as u64 + self.degree_sum
    }

    /// The underlying representation.
    #[inline]
    pub fn data(&self) -> &FrontierData {
        &self.data
    }

    /// True if `v` is active (O(1) dense, O(log |F|) sparse).
    pub fn contains(&self, v: VertexId) -> bool {
        match &self.data {
            FrontierData::Sparse(list) => list.binary_search(&v).is_ok(),
            FrontierData::Dense(b) => b.get(v as usize),
        }
    }

    /// Active count and out-degree sum restricted to `range` — the
    /// per-partition analogue of ([`len`](Self::len),
    /// [`degree_sum`](Self::degree_sum)), consulted by the partitioned
    /// executor's per-partition kernel decision. O(|F ∩ range|) for sparse
    /// frontiers (after an O(log |F|) bound search), O(|range| / 64) words
    /// scanned for dense ones.
    pub fn range_stats(
        &self,
        range: std::ops::Range<VertexId>,
        out_degrees: &[u32],
    ) -> (usize, u64) {
        match &self.data {
            FrontierData::Sparse(list) => {
                let lo = list.partition_point(|&v| v < range.start);
                let hi = list.partition_point(|&v| v < range.end);
                let sum = list[lo..hi]
                    .iter()
                    .map(|&v| out_degrees[v as usize] as u64)
                    .sum();
                (hi - lo, sum)
            }
            FrontierData::Dense(b) => {
                let mut count = 0usize;
                let mut sum = 0u64;
                b.for_each_one_in_range(range.start as usize..range.end as usize, |v| {
                    count += 1;
                    sum += out_degrees[v] as u64;
                });
                (count, sum)
            }
        }
    }

    /// Active vertices as a sorted list (materialises for dense input).
    pub fn to_vertex_list(&self) -> Vec<VertexId> {
        match &self.data {
            FrontierData::Sparse(list) => list.clone(),
            FrontierData::Dense(b) => b.iter_ones().map(|i| i as VertexId).collect(),
        }
    }

    /// Active vertices as a bitmap (materialises for sparse input).
    pub fn to_bitmap(&self) -> Bitmap {
        match &self.data {
            FrontierData::Sparse(list) => Bitmap::from_indices(self.n, list),
            FrontierData::Dense(b) => b.clone(),
        }
    }

    /// Iterates active vertices in ascending order.
    ///
    /// Returns the concrete [`FrontierIter`] enum — no boxing, no dynamic
    /// dispatch in per-round loops like BFS level assignment.
    pub fn iter(&self) -> FrontierIter<'_> {
        match &self.data {
            FrontierData::Sparse(list) => FrontierIter::Sparse(list.iter()),
            FrontierData::Dense(b) => FrontierIter::Dense(b.iter_ones()),
        }
    }

    /// A borrowed membership view for traversal kernels (no
    /// materialisation in either direction).
    #[inline]
    pub fn view(&self) -> FrontierView<'_> {
        match &self.data {
            FrontierData::Sparse(list) => FrontierView::Sparse(list),
            FrontierData::Dense(b) => FrontierView::Dense(b),
        }
    }

    /// True when physically sparse (vertex list).
    pub fn is_sparse_repr(&self) -> bool {
        matches!(self.data, FrontierData::Sparse(_))
    }
}

/// Concrete iterator over a [`Frontier`]'s active vertices in ascending
/// order — the allocation-free replacement for the former
/// `Box<dyn Iterator>` return of [`Frontier::iter`].
#[derive(Clone, Debug)]
pub enum FrontierIter<'a> {
    /// Walking a sorted vertex list.
    Sparse(std::slice::Iter<'a, VertexId>),
    /// Walking a bitmap's set bits.
    Dense(Ones<'a>),
}

impl Iterator for FrontierIter<'_> {
    type Item = VertexId;

    #[inline]
    fn next(&mut self) -> Option<VertexId> {
        match self {
            FrontierIter::Sparse(it) => it.next().copied(),
            FrontierIter::Dense(it) => it.next().map(|i| i as VertexId),
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        match self {
            FrontierIter::Sparse(it) => it.size_hint(),
            FrontierIter::Dense(_) => (0, None),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool() -> Pool {
        Pool::new(2)
    }

    #[test]
    fn empty_and_all() {
        let f = Frontier::empty(10);
        assert!(f.is_empty());
        assert_eq!(f.density_metric(), 0);

        let f = Frontier::all(10, 55);
        assert_eq!(f.len(), 10);
        assert_eq!(f.degree_sum(), 55);
        assert_eq!(f.density_metric(), 65);
        assert!(f.contains(9));
    }

    #[test]
    fn sparse_sorts_and_dedups() {
        let deg = vec![1u32, 2, 3, 4, 5];
        let f = Frontier::from_sparse(vec![3, 1, 3, 0], 5, &deg);
        assert_eq!(f.len(), 3);
        assert_eq!(f.to_vertex_list(), vec![0, 1, 3]);
        assert_eq!(f.degree_sum(), 1 + 2 + 4);
    }

    #[test]
    fn dense_statistics_match_sparse() {
        let deg: Vec<u32> = (0..200).map(|i| i % 7).collect();
        let actives: Vec<u32> = (0..200).step_by(3).collect();
        let sparse = Frontier::from_sparse(actives.clone(), 200, &deg);
        let dense = Frontier::from_dense(Bitmap::from_indices(200, &actives), &deg, &pool());
        assert_eq!(sparse.len(), dense.len());
        assert_eq!(sparse.degree_sum(), dense.degree_sum());
        assert_eq!(sparse.to_vertex_list(), dense.to_vertex_list());
    }

    #[test]
    fn conversions_roundtrip() {
        let deg = vec![1u32; 70];
        let f = Frontier::from_sparse(vec![0, 64, 69], 70, &deg);
        let b = f.to_bitmap();
        assert!(b.get(64));
        let back = Frontier::from_dense(b, &deg, &pool());
        assert_eq!(back.to_vertex_list(), vec![0, 64, 69]);
        assert!(back.contains(69));
        assert!(!back.contains(1));
    }

    #[test]
    fn single_vertex() {
        let deg = vec![4u32, 7, 9];
        let f = Frontier::single(1, 3, &deg);
        assert_eq!(f.len(), 1);
        assert_eq!(f.degree_sum(), 7);
        assert!(f.contains(1));
        assert!(!f.contains(0));
    }

    #[test]
    fn range_stats_agree_between_representations() {
        let deg: Vec<u32> = (0..300).map(|i| (i % 11) as u32).collect();
        let actives: Vec<u32> = (0..300).step_by(3).collect();
        let sparse = Frontier::from_sparse(actives.clone(), 300, &deg);
        let dense = Frontier::from_dense(Bitmap::from_indices(300, &actives), &deg, &pool());
        for range in [0u32..300, 0..64, 63..65, 64..128, 17..211, 299..300, 5..5] {
            let s = sparse.range_stats(range.clone(), &deg);
            let d = dense.range_stats(range.clone(), &deg);
            assert_eq!(s, d, "range {range:?}");
            // Brute-force check.
            let want_count = actives.iter().filter(|&&v| range.contains(&v)).count();
            let want_sum: u64 = actives
                .iter()
                .filter(|&&v| range.contains(&v))
                .map(|&v| deg[v as usize] as u64)
                .sum();
            assert_eq!(s, (want_count, want_sum), "range {range:?}");
        }
        // Whole-range stats match the cached totals.
        assert_eq!(
            sparse.range_stats(0..300, &deg),
            (sparse.len(), sparse.degree_sum())
        );
    }

    #[test]
    fn all_sparse_outputs_concatenate_without_dense_merge() {
        let deg: Vec<u32> = (0..200).map(|i| (i % 5) as u32).collect();
        let counters = WorkCounters::new();
        let outputs = vec![
            PartitionOutput {
                range: 70..200,
                data: PartitionOutputData::Sparse(vec![71, 199]),
            },
            PartitionOutput {
                range: 0..70,
                data: PartitionOutputData::Sparse(vec![3, 64]),
            },
        ];
        let f = Frontier::from_partition_outputs(outputs, 200, &deg, &counters, None);
        assert!(f.is_sparse_repr());
        assert_eq!(f.to_vertex_list(), vec![3, 64, 71, 199]);
        let want: u64 = [3u32, 64, 71, 199]
            .iter()
            .map(|&v| deg[v as usize] as u64)
            .sum();
        assert_eq!(f.degree_sum(), want);
        assert_eq!(counters.merge_words(), 0, "no dense merge may be paid");
    }

    #[test]
    fn mixed_outputs_merge_densely_and_record_the_cost() {
        let deg = vec![1u32; 200];
        let counters = WorkCounters::new();
        let seg = BitmapSegment::from_indices(70..200, &[70, 130, 199]);
        let outputs = vec![
            PartitionOutput {
                range: 0..70,
                data: PartitionOutputData::Sparse(vec![0, 69]),
            },
            PartitionOutput {
                range: 70..200,
                data: PartitionOutputData::Dense(seg),
            },
        ];
        let f = Frontier::from_partition_outputs(outputs, 200, &deg, &counters, None);
        assert!(!f.is_sparse_repr());
        assert_eq!(f.to_vertex_list(), vec![0, 69, 70, 130, 199]);
        assert_eq!(f.len(), 5);
        assert_eq!(f.degree_sum(), 5);
        assert!(counters.merge_words() > 0, "dense merge must be recorded");
    }

    #[test]
    fn empty_outputs_merge_to_the_empty_frontier() {
        let deg = vec![1u32; 64];
        let counters = WorkCounters::new();
        let outputs = vec![
            PartitionOutput {
                range: 0..32,
                data: PartitionOutputData::Sparse(Vec::new()),
            },
            PartitionOutput {
                range: 32..64,
                data: PartitionOutputData::Dense(BitmapSegment::new(32..64)),
            },
        ];
        let f = Frontier::from_partition_outputs(outputs, 64, &deg, &counters, None);
        assert!(f.is_empty());
        assert_eq!(counters.merge_words(), 0);
    }

    #[test]
    fn merging_no_outputs_yields_the_empty_frontier() {
        // The all-empty round: every planned partition produced zero
        // chunks (e.g. sparse kernels with no candidates).
        let deg = vec![1u32; 50];
        let counters = WorkCounters::new();
        let f = Frontier::from_partition_outputs(Vec::new(), 50, &deg, &counters, None);
        assert!(f.is_empty());
        assert_eq!(f.universe(), 50);
        assert_eq!(counters.merge_words(), 0);
    }

    /// Chunk-grained outputs (several disjoint sub-range buffers per
    /// partition) merge to exactly the frontier their single-chunk
    /// equivalents produce, for sparse, dense and mixed buffers.
    #[test]
    fn chunk_grained_outputs_merge_like_partition_grained() {
        let deg: Vec<u32> = (0..200).map(|i| (i % 9) as u32).collect();
        let counters = WorkCounters::new();
        // Partition [0, 128) as one sparse buffer…
        let whole = vec![
            PartitionOutput {
                range: 0..128,
                data: PartitionOutputData::Sparse(vec![3, 64, 100, 127]),
            },
            PartitionOutput {
                range: 128..200,
                data: PartitionOutputData::Dense(BitmapSegment::from_indices(
                    128..200,
                    &[130, 199],
                )),
            },
        ];
        // …vs the same sets split into chunk-sized buffers.
        let chunked = vec![
            PartitionOutput {
                range: 0..50,
                data: PartitionOutputData::Sparse(vec![3]),
            },
            PartitionOutput {
                range: 50..90,
                data: PartitionOutputData::Sparse(vec![64]),
            },
            PartitionOutput {
                range: 90..128,
                data: PartitionOutputData::Sparse(vec![100, 127]),
            },
            PartitionOutput {
                range: 128..150,
                data: PartitionOutputData::Dense(BitmapSegment::from_indices(128..150, &[130])),
            },
            PartitionOutput {
                range: 150..200,
                data: PartitionOutputData::Dense(BitmapSegment::from_indices(150..200, &[199])),
            },
        ];
        let a = Frontier::from_partition_outputs(whole, 200, &deg, &counters, None);
        let b = Frontier::from_partition_outputs(chunked, 200, &deg, &counters, None);
        assert_eq!(a.to_vertex_list(), b.to_vertex_list());
        assert_eq!(a.len(), b.len());
        assert_eq!(a.degree_sum(), b.degree_sum());
    }

    /// A pooled dense merge is indistinguishable from an unpooled one, and
    /// the dying frontier's buffer is recycled by the next merge.
    #[test]
    fn pooled_merge_matches_unpooled_and_recycles() {
        let deg = vec![2u32; 300];
        let counters = WorkCounters::new();
        let pool = Arc::new(BufferPool::new());
        let outputs = || {
            vec![
                PartitionOutput {
                    range: 0..100,
                    data: PartitionOutputData::Sparse(vec![1, 64, 99]),
                },
                PartitionOutput {
                    range: 100..300,
                    data: PartitionOutputData::Dense(BitmapSegment::from_indices(
                        100..300,
                        &[100, 250, 299],
                    )),
                },
            ]
        };
        let plain = Frontier::from_partition_outputs(outputs(), 300, &deg, &counters, None);
        let pooled = Frontier::from_partition_outputs(outputs(), 300, &deg, &counters, Some(&pool));
        assert_eq!(pooled.to_vertex_list(), plain.to_vertex_list());
        assert_eq!(pooled.len(), plain.len());
        assert_eq!(pooled.degree_sum(), plain.degree_sum());
        assert_eq!(pool.allocated(), 1);

        // Cloning must not double-return the buffer; the drop does.
        let clone = pooled.clone();
        drop(pooled);
        assert_eq!(pool.idle_buffers(), 1);
        assert_eq!(clone.to_vertex_list(), plain.to_vertex_list());
        drop(clone);
        assert_eq!(pool.idle_buffers(), 1, "clones are not pooled");

        // The next pooled merge recycles the returned words.
        let again = Frontier::from_partition_outputs(outputs(), 300, &deg, &counters, Some(&pool));
        assert_eq!(again.to_vertex_list(), plain.to_vertex_list());
        assert_eq!(pool.recycled(), 1);
        assert_eq!(pool.allocated(), 1);
    }

    #[test]
    fn views_answer_membership_without_materialising() {
        let deg = vec![1u32; 100];
        let sparse = Frontier::from_sparse(vec![5, 50, 99], 100, &deg);
        let view = sparse.view();
        assert!(view.contains(50) && !view.contains(51));
        assert_eq!(view.as_list(), Some(&[5u32, 50, 99][..]));
        let dense = Frontier::from_dense(Bitmap::from_indices(100, &[5, 50]), &deg, &pool());
        let view = dense.view();
        assert!(view.contains(5) && !view.contains(6));
        assert!(view.as_list().is_none());
    }

    #[test]
    fn from_sorted_matches_from_sparse() {
        let deg: Vec<u32> = (0..50).collect();
        let sorted = Frontier::from_sorted(vec![1, 7, 30], 50, &deg);
        let general = Frontier::from_sparse(vec![30, 1, 7], 50, &deg);
        assert_eq!(sorted.to_vertex_list(), general.to_vertex_list());
        assert_eq!(sorted.degree_sum(), general.degree_sum());
        assert_eq!(sorted.len(), general.len());
    }

    #[test]
    fn iter_matches_list() {
        let deg = vec![0u32; 100];
        let f = Frontier::from_sparse(vec![5, 50, 99], 100, &deg);
        assert_eq!(f.iter().collect::<Vec<_>>(), vec![5, 50, 99]);
        let d = Frontier::from_dense(Bitmap::from_indices(100, &[5, 50, 99]), &deg, &pool());
        assert_eq!(d.iter().collect::<Vec<_>>(), vec![5, 50, 99]);
    }
}
