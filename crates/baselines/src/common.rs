//! Shared plumbing for the baseline engines.

use gg_graph::bitmap::AtomicBitmap;
use gg_graph::types::VertexId;
use gg_runtime::counters::WorkCounters;
use gg_runtime::pool::Pool;

/// State common to every baseline engine: pool, counters, degree arrays
/// and the sparse-dedup scratch bitmap.
#[derive(Debug)]
pub struct EngineBase {
    pub(crate) pool: Pool,
    pub(crate) counters: WorkCounters,
    pub(crate) scratch: AtomicBitmap,
    pub(crate) out_degrees: Vec<u32>,
    pub(crate) n: usize,
    pub(crate) m: usize,
}

impl EngineBase {
    /// Builds the shared state for a graph with the given degrees.
    pub fn new(out_degrees: Vec<u32>, m: usize, threads: usize) -> Self {
        let n = out_degrees.len();
        EngineBase {
            pool: Pool::new(threads),
            counters: WorkCounters::new(),
            scratch: AtomicBitmap::new(n),
            out_degrees,
            n,
            m,
        }
    }
}

/// Splits `0..n` into `chunks` equal vertex ranges (Ligra's dense-traversal
/// work division — balanced by vertex count, not edges).
pub fn even_vertex_ranges(n: usize, chunks: usize) -> Vec<std::ops::Range<VertexId>> {
    let chunks = chunks.max(1).min(n.max(1));
    (0..chunks)
        .map(|c| {
            let lo = (n * c / chunks) as VertexId;
            let hi = (n * (c + 1) / chunks) as VertexId;
            lo..hi
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_cover_without_overlap() {
        let ranges = even_vertex_ranges(103, 8);
        assert_eq!(ranges.len(), 8);
        let total: usize = ranges.iter().map(|r| r.len()).sum();
        assert_eq!(total, 103);
        for w in ranges.windows(2) {
            assert_eq!(w[0].end, w[1].start);
        }
    }

    #[test]
    fn degenerate_ranges() {
        assert_eq!(even_vertex_ranges(2, 10).len(), 2);
        let r = even_vertex_ranges(0, 4);
        assert_eq!(r.iter().map(|r| r.len()).sum::<usize>(), 0);
    }
}
