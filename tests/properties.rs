//! Property-based tests (proptest) over random graphs: the structural
//! invariants of partitioning and the layouts, and end-to-end algorithm
//! agreement between GraphGrind-v2 and the sequential oracles.

use proptest::prelude::*;

use graphgrind::algorithms::{self, reference, validate};
use graphgrind::core::{Config, GraphGrind2};
use graphgrind::graph::coo::PartitionedCoo;
use graphgrind::graph::csc::Csc;
use graphgrind::graph::csr::{Csr, PartitionedCsr};
use graphgrind::graph::edge_list::EdgeList;
use graphgrind::graph::ops::symmetrize;
use graphgrind::graph::partition::{PartitionBy, PartitionSet};
use graphgrind::graph::reorder::EdgeOrder;
use graphgrind::graph::replication;
use graphgrind::runtime::numa::NumaTopology;

/// Strategy: a random directed graph with 1..=60 vertices and 0..200 edges.
fn arb_graph() -> impl Strategy<Value = EdgeList> {
    (1usize..=60).prop_flat_map(|n| {
        proptest::collection::vec((0..n as u32, 0..n as u32), 0..200)
            .prop_map(move |edges| EdgeList::from_edges(n, &edges))
    })
}

fn small_config() -> Config {
    Config {
        threads: 2,
        num_partitions: 4,
        numa: NumaTopology::new(2),
        ..Config::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Partition sets cover 0..n disjointly and route each edge to its
    /// destination's home.
    #[test]
    fn partition_set_invariants(el in arb_graph(), p in 1usize..12) {
        let set = PartitionSet::edge_balanced(&el.in_degrees(), p, PartitionBy::Destination);
        set.validate().unwrap();
        prop_assert_eq!(set.num_partitions(), p);
        let covered: usize = (0..p).map(|i| set.range(i).len()).sum();
        prop_assert_eq!(covered, el.num_vertices());
        for (u, v) in el.iter() {
            prop_assert_eq!(set.edge_home(u, v), set.home(v));
        }
    }

    /// Every layout conserves the edge multiset.
    #[test]
    fn layouts_conserve_edges(el in arb_graph(), p in 1usize..8) {
        let mut want: Vec<(u32, u32)> = el.iter().collect();
        want.sort_unstable();

        let csr = Csr::from_edge_list(&el);
        let mut got: Vec<(u32, u32)> = (0..el.num_vertices() as u32)
            .flat_map(|u| csr.neighbors(u).iter().map(move |&v| (u, v)))
            .collect();
        got.sort_unstable();
        prop_assert_eq!(&got, &want, "CSR");

        let csc = Csc::from_edge_list(&el);
        let mut got: Vec<(u32, u32)> = (0..el.num_vertices() as u32)
            .flat_map(|v| csc.in_neighbors(v).iter().map(move |&u| (u, v)))
            .collect();
        got.sort_unstable();
        prop_assert_eq!(&got, &want, "CSC");

        let set = PartitionSet::edge_balanced(&el.in_degrees(), p, PartitionBy::Destination);
        let coo = PartitionedCoo::new(&el, &set, EdgeOrder::Hilbert);
        coo.validate().unwrap();
        let mut got: Vec<(u32, u32)> = (0..p)
            .flat_map(|part| {
                coo.part_srcs(part)
                    .iter()
                    .zip(coo.part_dsts(part))
                    .map(|(&u, &v)| (u, v))
                    .collect::<Vec<_>>()
            })
            .collect();
        got.sort_unstable();
        prop_assert_eq!(&got, &want, "COO");

        let pcsr = PartitionedCsr::new(&el, &set);
        prop_assert_eq!(pcsr.num_edges(), el.num_edges());
    }

    /// The analytic replication factor matches the built partitioned CSR,
    /// and stays within [min(1, has-edges), |E|/|V|].
    #[test]
    fn replication_factor_bounds(el in arb_graph(), p in 1usize..8) {
        let set = PartitionSet::edge_balanced(&el.in_degrees(), p, PartitionBy::Destination);
        let r = replication::replication_factor(&el, &set);
        let built = PartitionedCsr::new(&el, &set);
        let expected = built.total_stored_vertices() as f64 / el.num_vertices() as f64;
        prop_assert!((r - expected).abs() < 1e-12);
        prop_assert!(r <= replication::worst_case_replication_factor(&el) + 1e-12);
    }

    /// GG-v2 BFS levels match the sequential oracle on random graphs.
    #[test]
    fn bfs_matches_reference(el in arb_graph()) {
        let engine = GraphGrind2::new(&el, small_config());
        let got = algorithms::bfs(&engine, 0);
        prop_assert_eq!(got.level, reference::bfs_levels(&el, 0));
    }

    /// GG-v2 CC matches union-find on symmetrized random graphs.
    #[test]
    fn cc_matches_reference(el in arb_graph()) {
        let el = symmetrize(&el);
        let engine = GraphGrind2::new(&el, small_config());
        let got = algorithms::cc(&engine);
        prop_assert_eq!(got.label, reference::cc_labels(&el));
    }

    /// GG-v2 PageRank matches the sequential power method.
    #[test]
    fn pagerank_matches_reference(el in arb_graph()) {
        let engine = GraphGrind2::new(&el, small_config());
        let got = algorithms::pagerank(&engine, 5);
        let want = reference::pagerank(&el, 5);
        validate::assert_close_f64(&got, &want, 1e-9, 1e-14);
    }

    /// Frontier statistics are consistent between representations.
    #[test]
    fn frontier_statistics_consistent(el in arb_graph(), seed in 0u64..1000) {
        use graphgrind::core::Frontier;
        let n = el.num_vertices();
        let deg = el.out_degrees();
        // Pseudo-random vertex subset.
        let actives: Vec<u32> = (0..n as u32)
            .filter(|v| (v.wrapping_mul(2654435761).wrapping_add(seed as u32)) % 3 == 0)
            .collect();
        let sparse = Frontier::from_sparse(actives.clone(), n, &deg);
        let pool = graphgrind::runtime::pool::Pool::new(2);
        let dense = Frontier::from_dense(sparse.to_bitmap(), &deg, &pool);
        prop_assert_eq!(sparse.len(), dense.len());
        prop_assert_eq!(sparse.degree_sum(), dense.degree_sum());
        prop_assert_eq!(sparse.density_metric(), dense.density_metric());
        prop_assert_eq!(sparse.to_vertex_list(), dense.to_vertex_list());
    }
}
