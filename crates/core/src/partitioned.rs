//! The partition-parallel execution path.
//!
//! [`GraphGrind2`](crate::engine::GraphGrind2) with
//! [`ExecutorKind::Partitioned`](crate::config::ExecutorKind) routes every
//! edge map through this module instead of picking one global kernel:
//!
//! ```text
//!            frontier F
//!                │
//!   ┌────────────┼──────────────────────────────┐  per-partition stats
//!   ▼            ▼                              ▼  |F ∩ R_p| + Σdeg(F ∩ R_p)
//! ┌──────┐   ┌──────┐          ┌──────┐    ┌──────┐
//! │ P0   │   │ P1   │          │ P_k  │    │ P_e  │  (empty: skipped,
//! │sparse│   │dense │   ...    │sparse│    │ ∅    │   never reaches pool)
//! └──┬───┘   └──┬───┘          └──┬───┘    └──────┘
//!    │ CSR-indexed │ CSC range     │
//!    │ candidates  │ scan          │      one pool task per partition,
//!    ▼            ▼               ▼      NUMA-domain-major order
//!  ┌─────────────────────────────────┐
//!  │ next frontier bitmap (disjoint  │   deterministic merge: partitions
//!  │ destination ranges, no races)   │   own disjoint destination ranges
//!  └─────────────────────────────────┘
//! ```
//!
//! * **Views** — `Engine::new` materialises one [`PartitionView`] per
//!   partition of the edge-balanced destination [`PartitionSet`]
//!   (Equation 1): the destination range, the in-edge count, and the
//!   owning NUMA domain from the [`PartitionSchedule`]. Partitions with no
//!   edges (including the empty trailing ranges
//!   `PartitionSet::edge_balanced` produces when partitions outnumber
//!   vertices) are excluded from the task list up front, so they never
//!   touch the pool.
//! * **Per-partition kernel selection** — each partition classifies the
//!   frontier *locally*: Algorithm 2's `decide` runs on
//!   `|F ∩ R_p| + Σ deg_out(F ∩ R_p)` against the partition's own edge
//!   count, so a single iteration can run the sparse kernel on quiet
//!   partitions and the dense kernel on saturated ones — the paper's
//!   mixed-kernel iterations. Selections are recorded in
//!   [`KernelCounts`](crate::engine::KernelCounts) per class, plus a
//!   counter of iterations that mixed classes.
//! * **Kernels** — both kernels apply updates destination-major in CSC
//!   adjacency order and only to destinations inside the partition's
//!   range, so each destination has exactly one writer (the exclusive
//!   `update` path, no atomics) **and the applied update sequence is
//!   independent of the kernel chosen, the partition count, and the
//!   thread count**:
//!   * [`pull_range`] (dense): scan every destination of the range over
//!     the shared whole-graph CSC, early-exiting on `cond`;
//!   * [`pull_candidates`] (sparse): use the partition's pruned-CSR
//!     source index to find the destinations reachable from the frontier,
//!     then pull exactly those — work proportional to the frontier's
//!     footprint in the partition, not the partition size.
//! * **Deterministic merge** — partition tasks set bits of the shared
//!   next-frontier bitmap in disjoint destination ranges; the merged
//!   frontier (and every operator value) is bit-identical at any thread
//!   count. Operators whose `update` reads only destination-local state or
//!   state frozen during the edge map (BFS, PR, SPMV, BC) therefore
//!   produce bit-identical results across *all* partitioned
//!   configurations; operators that read concurrently-updated
//!   source-side state (CC's label reads) still converge to the same
//!   fixpoint but may take different round counts under concurrency.
//!
//! **Known trade-off:** the merge is always a dense bitmap, so every
//! round pays an O(|V| / 64) floor for the frontier densify / merge /
//! stats scans even when only a handful of vertices are active. That
//! keeps the merge trivially deterministic; a sparse-output fast path
//! (per-partition sorted lists concatenated in partition order, which is
//! equally deterministic) is the obvious next optimisation for
//! high-diameter graphs and is tracked in ROADMAP.md.

use gg_graph::bitmap::{AtomicBitmap, Bitmap};
use gg_graph::csc::Csc;
use gg_graph::csr::PrunedCsr;
use gg_graph::types::VertexId;
use gg_runtime::counters::{LocalTally, WorkCounters};
use gg_runtime::pool::Pool;
use gg_runtime::schedule::PartitionSchedule;

use crate::config::Thresholds;
use crate::edge_map::{decide, EdgeKind, EdgeOp};
use crate::engine::KernelCounts;
use crate::frontier::{Frontier, FrontierData};
use crate::store::GraphStore;

/// Which per-partition kernel a partition selected for one edge map.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PartKernel {
    /// CSR-indexed candidate discovery + CSC-ordered pull of candidates.
    Sparse,
    /// Full CSC-ordered pull of the partition's destination range.
    Dense,
}

/// A materialised per-partition subgraph view: the partition's destination
/// range plus the metadata the executor consults per iteration. The edge
/// storage itself is shared (whole-graph CSC) or owned by the store's
/// partitioned CSR; views add no per-partition edge copies.
#[derive(Clone, Debug)]
pub struct PartitionView {
    /// Partition index in the engine's `PartitionSet`.
    pub index: usize,
    /// Destinations owned by this partition (Equation 1).
    pub dst_range: std::ops::Range<VertexId>,
    /// In-edges homed to this partition.
    pub num_edges: u64,
    /// Simulated NUMA domain owning the partition.
    pub domain: usize,
}

/// The partition-parallel executor: per-partition views plus the pool
/// submission order (domain-major, empty partitions dropped).
#[derive(Debug)]
pub(crate) struct PartitionedExec {
    views: Vec<PartitionView>,
    /// Partitions with at least one edge, in NUMA-domain-major order.
    edge_order: Vec<usize>,
    /// Partitions with a non-empty vertex range, in NUMA-domain-major
    /// order (vertex maps have work even in edge-free partitions).
    vertex_order: Vec<usize>,
}

impl PartitionedExec {
    /// Builds the views from the store's edge-balanced destination
    /// partitions and the NUMA schedule.
    pub fn new(store: &GraphStore, schedule: &PartitionSchedule) -> Self {
        let parts = store.edge_parts();
        let per_part = parts.edges_per_partition(store.in_degrees());
        let views: Vec<PartitionView> = (0..parts.num_partitions())
            .map(|p| PartitionView {
                index: p,
                dst_range: parts.range(p),
                num_edges: per_part[p],
                domain: schedule.domain_of(p),
            })
            .collect();
        let edge_order = schedule.order_filtered(|p| views[p].num_edges > 0);
        let vertex_order = schedule.order_filtered(|p| !views[p].dst_range.is_empty());
        PartitionedExec {
            views,
            edge_order,
            vertex_order,
        }
    }

    /// All per-partition views, indexed by partition.
    pub fn views(&self) -> &[PartitionView] {
        &self.views
    }

    /// One partition-parallel edge map: decide a kernel per partition,
    /// fan the non-empty partitions out over the pool in NUMA order, and
    /// merge the disjoint per-partition next frontiers.
    #[allow(clippy::too_many_arguments)]
    pub fn edge_map<O: EdgeOp>(
        &self,
        store: &GraphStore,
        pool: &Pool,
        thresholds: &Thresholds,
        counters: &WorkCounters,
        kernel_counts: &KernelCounts,
        frontier: &Frontier,
        op: &O,
    ) -> Frontier {
        let n = store.num_vertices();
        if self.edge_order.is_empty() {
            // No partition has edges: nothing to traverse, pool untouched.
            return Frontier::empty(n);
        }

        // Per-partition kernel decisions (cheap, deterministic, pool-free).
        let mut sparse_parts = 0u64;
        let mut dense_parts = 0u64;
        let tasks: Vec<(usize, PartKernel)> = self
            .edge_order
            .iter()
            .map(|&p| {
                let view = &self.views[p];
                let (count, degree_sum) =
                    frontier.range_stats(view.dst_range.clone(), store.out_degrees());
                let metric = count as u64 + degree_sum;
                let kernel = match decide(metric, view.num_edges, thresholds) {
                    EdgeKind::Sparse => PartKernel::Sparse,
                    EdgeKind::Medium | EdgeKind::Dense => PartKernel::Dense,
                };
                match kernel {
                    PartKernel::Sparse => sparse_parts += 1,
                    PartKernel::Dense => dense_parts += 1,
                }
                (p, kernel)
            })
            .collect();
        kernel_counts.record_partitioned(sparse_parts, dense_parts);

        let current = frontier.to_bitmap();
        let active_list = match frontier.data() {
            FrontierData::Sparse(list) => Some(list.as_slice()),
            FrontierData::Dense(_) => None,
        };
        let next = AtomicBitmap::new(n);
        let pcsr = store
            .partitioned_csr()
            .expect("partitioned executor requires the partitioned CSR layout");

        // `tasks` is already domain-major, so index order is NUMA order.
        pool.for_each_index(tasks.len(), |t| {
            let (p, kernel) = tasks[t];
            let view = &self.views[p];
            let mut tally = LocalTally::new(counters);
            match kernel {
                PartKernel::Dense => pull_range(
                    store.csc(),
                    &current,
                    op,
                    view.dst_range.clone(),
                    &next,
                    &mut tally,
                ),
                PartKernel::Sparse => pull_candidates(
                    store.csc(),
                    pcsr.part(p),
                    active_list,
                    &current,
                    op,
                    &next,
                    &mut tally,
                ),
            }
        });

        Frontier::from_atomic(next, store.out_degrees(), pool)
    }

    /// Partition-parallel `vertex_map_all`: every vertex range fans out as
    /// one pool task, in NUMA-domain-major order.
    pub fn vertex_map_all<F: Fn(VertexId) + Sync>(&self, pool: &Pool, f: F) {
        pool.for_each_in_order(&self.vertex_order, |p| {
            for v in self.views[p].dst_range.clone() {
                f(v);
            }
        });
    }

    /// Partition-parallel `vertex_map`: each partition visits the active
    /// vertices inside its range, in ascending order.
    pub fn vertex_map<F: Fn(VertexId) + Sync>(&self, pool: &Pool, frontier: &Frontier, f: F) {
        if frontier.is_empty() {
            return;
        }
        match frontier.data() {
            FrontierData::Sparse(list) => {
                pool.for_each_in_order(&self.vertex_order, |p| {
                    let range = &self.views[p].dst_range;
                    let lo = list.partition_point(|&v| v < range.start);
                    let hi = list.partition_point(|&v| v < range.end);
                    for &v in &list[lo..hi] {
                        f(v);
                    }
                });
            }
            FrontierData::Dense(bitmap) => {
                pool.for_each_in_order(&self.vertex_order, |p| {
                    let range = self.views[p].dst_range.clone();
                    bitmap.for_each_one_in_range(range.start as usize..range.end as usize, |v| {
                        f(v as VertexId)
                    });
                });
            }
        }
    }
}

/// Applies the in-edges of destination `v` (CSC adjacency order) for every
/// active source, honouring `cond` pre-check and early exit. This inner
/// loop is shared by both partition kernels, which is what makes kernel
/// selection invisible in the computed values.
#[inline]
fn pull_vertex<O: EdgeOp>(
    csc: &Csc,
    current: &Bitmap,
    op: &O,
    v: VertexId,
    next: &AtomicBitmap,
    tally: &mut LocalTally,
) {
    tally.vertex();
    if !op.cond(v) {
        return;
    }
    for e in csc.edge_range(v) {
        tally.edge();
        let u = csc.sources()[e];
        if current.get(u as usize) {
            if op.update(u, v, csc.weight_at(e)) {
                next.set(v as usize);
            }
            if !op.cond(v) {
                break;
            }
        }
    }
}

/// Dense partition kernel: pull every destination of `range` over the
/// shared whole-graph CSC. Exclusive updates — the caller guarantees one
/// task per destination range.
pub fn pull_range<O: EdgeOp>(
    csc: &Csc,
    current: &Bitmap,
    op: &O,
    range: std::ops::Range<VertexId>,
    next: &AtomicBitmap,
    tally: &mut LocalTally,
) {
    for v in range {
        pull_vertex(csc, current, op, v, next, tally);
    }
}

/// Sparse partition kernel: discover the destinations reachable from the
/// frontier through the partition's pruned-CSR source index, then pull
/// exactly those destinations in ascending order.
///
/// Candidate discovery probes the stored-source index per active vertex
/// when the frontier is a short list, and scans the (typically small)
/// stored-source index against the frontier bitmap otherwise. Both
/// strategies produce the same candidate set, so the choice never shows in
/// results.
pub fn pull_candidates<O: EdgeOp>(
    csc: &Csc,
    part: &PrunedCsr,
    active: Option<&[VertexId]>,
    current: &Bitmap,
    op: &O,
    next: &AtomicBitmap,
    tally: &mut LocalTally,
) {
    let stored = part.num_stored_vertices();
    let mut candidates: Vec<VertexId> = Vec::new();
    match active {
        Some(list) if list.len() < stored => {
            for &u in list {
                if let Ok(i) = part.vertex_ids().binary_search(&u) {
                    candidates.extend_from_slice(part.neighbors_at(i));
                }
            }
        }
        _ => {
            for i in 0..stored {
                if current.get(part.vertex_ids()[i] as usize) {
                    candidates.extend_from_slice(part.neighbors_at(i));
                }
            }
        }
    }
    candidates.sort_unstable();
    candidates.dedup();
    for v in candidates {
        pull_vertex(csc, current, op, v, next, tally);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Config;
    use gg_graph::edge_list::EdgeList;
    use gg_runtime::numa::NumaTopology;
    use std::sync::atomic::{AtomicU32, Ordering};

    struct TouchCount {
        hits: Vec<AtomicU32>,
    }

    impl TouchCount {
        fn new(n: usize) -> Self {
            TouchCount {
                hits: gg_runtime::atomics::atomic_u32_vec(n, 0),
            }
        }
        fn total(&self) -> u32 {
            self.hits.iter().map(|h| h.load(Ordering::Relaxed)).sum()
        }
    }

    impl EdgeOp for TouchCount {
        fn update(&self, _s: u32, d: u32, _w: f32) -> bool {
            self.hits[d as usize].fetch_add(1, Ordering::Relaxed);
            true
        }
        fn update_atomic(&self, s: u32, d: u32, w: f32) -> bool {
            self.update(s, d, w)
        }
    }

    fn build(el: &EdgeList, partitions: usize) -> (GraphStore, PartitionedExec) {
        let config = Config {
            num_partitions: partitions,
            numa: NumaTopology::new(1),
            build_partitioned_csr: true,
            ..Config::for_tests()
        };
        let store = GraphStore::build(el, &config);
        let schedule = PartitionSchedule::new(store.num_partitions(), config.numa);
        let exec = PartitionedExec::new(&store, &schedule);
        (store, exec)
    }

    #[test]
    fn views_cover_all_partitions_and_edges() {
        let el = gg_graph::generators::rmat(7, 900, gg_graph::generators::RmatParams::skewed(), 3);
        let (store, exec) = build(&el, 6);
        assert_eq!(exec.views().len(), store.num_partitions());
        let total: u64 = exec.views().iter().map(|v| v.num_edges).sum();
        assert_eq!(total, 900);
        // Edge order only lists partitions with edges, domain-major.
        for &p in exec.edge_order.as_slice() {
            assert!(exec.views()[p].num_edges > 0);
        }
    }

    #[test]
    fn empty_partitions_never_enter_the_order() {
        // 3 vertices spread over 10 partitions: 7+ empty trailing views.
        let el = EdgeList::from_edges(3, &[(0, 1), (1, 2), (2, 0)]);
        let (store, exec) = build(&el, 10);
        assert_eq!(store.num_partitions(), 10);
        assert!(exec.edge_order.as_slice().len() <= 3);
        let empties = store.edge_parts().empty_partitions();
        assert!(!empties.is_empty());
        for p in empties {
            assert!(!exec.edge_order.as_slice().contains(&p));
        }
    }

    #[test]
    fn both_kernels_apply_identical_updates() {
        let el = gg_graph::generators::rmat(7, 700, gg_graph::generators::RmatParams::skewed(), 8);
        let n = el.num_vertices();
        let (store, exec) = build(&el, 4);
        let pcsr = store.partitioned_csr().unwrap();
        let actives: Vec<u32> = (0..n as u32).step_by(5).collect();
        let current = Bitmap::from_indices(n, &actives);
        let counters = WorkCounters::new();

        for &p in exec.edge_order.as_slice() {
            let view = &exec.views()[p];
            let op_dense = TouchCount::new(n);
            let next_dense = AtomicBitmap::new(n);
            let mut tally = LocalTally::new(&counters);
            pull_range(
                store.csc(),
                &current,
                &op_dense,
                view.dst_range.clone(),
                &next_dense,
                &mut tally,
            );
            drop(tally);

            let op_sparse = TouchCount::new(n);
            let next_sparse = AtomicBitmap::new(n);
            let mut tally = LocalTally::new(&counters);
            pull_candidates(
                store.csc(),
                pcsr.part(p),
                Some(&actives),
                &current,
                &op_sparse,
                &next_sparse,
                &mut tally,
            );
            drop(tally);

            assert_eq!(op_dense.total(), op_sparse.total(), "partition {p}");
            assert_eq!(
                next_dense.into_bitmap(),
                next_sparse.into_bitmap(),
                "partition {p}"
            );
        }
    }
}
