//! Fused multi-source queries: K concurrent traversals (K ≤ 64) advanced
//! by **one** edge-map pass per round.
//!
//! Each query owns a lane of the
//! [`FusedFrontier`](gg_core::fused::FusedFrontier); one CSC scan serves
//! every lane whose source set touches the scanned edge, so K queries that
//! would each traverse the same hub edges sequentially traverse them once.
//! All three algorithms here are **lane-wise bit-identical** to running the
//! same query alone in lane 0: per-lane state never reads another lane, and
//! the executor replays hub splits and folds reduce quanta in a
//! configuration-independent order.
//!
//! * [`fused_bfs`] — per-lane BFS distance = the round at which the lane
//!   bit first reaches the vertex;
//! * [`fused_reachability`] — per-vertex bitmask of the seeds that reach
//!   it;
//! * [`fused_ppr`] — K personalized-PageRank queries sharing one residual
//!   sweep per round ([`MultiSourceReduce`] with quantum-folded f64
//!   accumulation).

use std::sync::atomic::{AtomicU64, Ordering};

use gg_core::engine::GraphGrind2;
use gg_core::fused::{lane_mask, MultiSourceOp, MultiSourceReduce};
use gg_core::Engine;
use gg_graph::types::VertexId;
use gg_runtime::atomics::AtomicF64;

/// Result of a fused K-source BFS.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FusedBfsResult {
    /// `dist[k][v]` = BFS distance from `sources[k]` to `v`
    /// (`u32::MAX` = unreached).
    pub dist: Vec<Vec<u32>>,
    /// Number of fused edge-map rounds executed.
    pub rounds: usize,
}

/// Claim-once visitation over all lanes: one `fetch_or` both tests and
/// sets, so the exclusive (single-writer) path never double-activates.
struct FusedVisitOp {
    visited: Vec<AtomicU64>,
    mask: u64,
}

impl FusedVisitOp {
    fn new(n: usize, seeds: &[VertexId]) -> Self {
        let visited: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
        for (k, &s) in seeds.iter().enumerate() {
            visited[s as usize].fetch_or(1u64 << k, Ordering::Relaxed);
        }
        FusedVisitOp {
            visited,
            mask: lane_mask(seeds.len() as u32),
        }
    }
}

impl MultiSourceOp for FusedVisitOp {
    #[inline]
    fn update(&self, _src: VertexId, dst: VertexId, _w: f32, src_lanes: u64) -> u64 {
        let prev = self.visited[dst as usize].fetch_or(src_lanes, Ordering::Relaxed);
        src_lanes & !prev
    }

    #[inline]
    fn cond(&self, dst: VertexId) -> u64 {
        self.mask & !self.visited[dst as usize].load(Ordering::Relaxed)
    }
}

/// Runs K fused BFS traversals, one per entry of `sources` (K ≤ 64).
///
/// Lane `k` of the result is bit-identical to `bfs(engine, sources[k])`
/// levels: the fused rounds advance every lane in lockstep and a lane's
/// distance is the round at which its bit first reaches the vertex.
pub fn fused_bfs(engine: &GraphGrind2, sources: &[VertexId]) -> FusedBfsResult {
    let n = engine.num_vertices();
    let kk = sources.len();
    let op = FusedVisitOp::new(n, sources);

    let mut dist = vec![vec![u32::MAX; n]; kk];
    for (k, &s) in sources.iter().enumerate() {
        dist[k][s as usize] = 0;
    }

    let mut frontier = engine.fused_frontier(sources);
    let mut depth = 0u32;
    let mut rounds = 0usize;
    while !frontier.is_empty() {
        frontier = engine.fused_edge_map(&frontier, &op);
        depth += 1;
        rounds += 1;
        frontier.for_each(|v, m| {
            let mut lanes = m;
            while lanes != 0 {
                let k = lanes.trailing_zeros() as usize;
                lanes &= lanes - 1;
                dist[k][v as usize] = depth;
            }
        });
    }
    FusedBfsResult { dist, rounds }
}

/// Runs K fused reachability queries; returns one mask per vertex whose
/// bit `k` is set iff `sources[k]` reaches the vertex (seeds reach
/// themselves).
pub fn fused_reachability(engine: &GraphGrind2, sources: &[VertexId]) -> Vec<u64> {
    let n = engine.num_vertices();
    let op = FusedVisitOp::new(n, sources);
    let mut frontier = engine.fused_frontier(sources);
    while !frontier.is_empty() {
        frontier = engine.fused_edge_map(&frontier, &op);
    }
    op.visited
        .iter()
        .map(|w| w.load(Ordering::Relaxed))
        .collect()
}

/// Result of a fused K-seed personalized PageRank.
#[derive(Clone, Debug, PartialEq)]
pub struct FusedPprResult {
    /// `p[k][v]` = PPR mass of `v` for seed `sources[k]`.
    pub p: Vec<Vec<f64>>,
    /// Fused residual-sweep rounds executed (bounded by `max_rounds`).
    pub rounds: usize,
}

/// One fused residual sweep: the active vertices' residuals are frozen
/// into a sorted sparse table before the edge map, so `accumulate` is a
/// read-only lookup and the per-quantum f64 folds are bit-identical
/// across partitions/threads/chunk caps (and across K: lane `k` folds the
/// same add sequence whether or not other lanes ride along).
struct FusedPprOp<'a> {
    /// Active vertices this round, ascending (the frontier's vertex set).
    push_verts: &'a [VertexId],
    /// `(1 - alpha) * r / deg_out`, lane-major per active vertex.
    push_scaled: &'a [f64],
    /// Residuals, lane-major per vertex (`r[v * kk + k]`); single-writer
    /// per destination within a round.
    r: &'a [AtomicF64],
    kk: usize,
    eps: f64,
}

/// Per-quantum accumulator: one f64 per lane plus the touched-lane mask.
struct PprAcc {
    vals: [f64; 64],
    touched: u64,
}

impl FusedPprOp<'_> {
    #[inline]
    fn scaled_of(&self, src: VertexId) -> Option<&[f64]> {
        let i = self.push_verts.binary_search(&src).ok()?;
        Some(&self.push_scaled[i * self.kk..(i + 1) * self.kk])
    }

    /// Adds `add` to lane `k` of `dst`'s residual; reports a threshold
    /// crossing. Exclusive: the executor guarantees one writer per `dst`.
    #[inline]
    fn deposit(&self, dst: VertexId, k: usize, add: f64) -> bool {
        let slot = &self.r[dst as usize * self.kk + k];
        let prev = slot.load();
        slot.store(prev + add);
        prev <= self.eps && prev + add > self.eps
    }
}

impl MultiSourceOp for FusedPprOp<'_> {
    /// Single-edge equivalent of one accumulate+apply; only exercised if
    /// a non-reduce path runs this op (the fused engine folds by quanta).
    fn update(&self, src: VertexId, dst: VertexId, _w: f32, src_lanes: u64) -> u64 {
        let Some(scaled) = self.scaled_of(src) else {
            return 0;
        };
        let mut new = 0u64;
        let mut lanes = src_lanes;
        while lanes != 0 {
            let k = lanes.trailing_zeros() as usize;
            lanes &= lanes - 1;
            if self.deposit(dst, k, scaled[k]) {
                new |= 1u64 << k;
            }
        }
        new
    }
}

impl MultiSourceReduce for FusedPprOp<'_> {
    type Acc = PprAcc;

    #[inline]
    fn identity(&self) -> PprAcc {
        PprAcc {
            vals: [0.0; 64],
            touched: 0,
        }
    }

    #[inline]
    fn accumulate(&self, acc: &mut PprAcc, src: VertexId, _w: f32, src_lanes: u64) {
        let Some(scaled) = self.scaled_of(src) else {
            return;
        };
        let mut lanes = src_lanes;
        while lanes != 0 {
            let k = lanes.trailing_zeros() as usize;
            lanes &= lanes - 1;
            acc.vals[k] += scaled[k];
            acc.touched |= 1u64 << k;
        }
    }

    #[inline]
    fn apply(&self, dst: VertexId, acc: &PprAcc) -> u64 {
        let mut new = 0u64;
        let mut lanes = acc.touched;
        while lanes != 0 {
            let k = lanes.trailing_zeros() as usize;
            lanes &= lanes - 1;
            if self.deposit(dst, k, acc.vals[k]) {
                new |= 1u64 << k;
            }
        }
        new
    }
}

/// Runs K fused personalized-PageRank queries sharing one residual sweep
/// per round (forward-push with teleport `alpha`, residual threshold
/// `eps`, at most `max_rounds` sweeps).
///
/// Each round freezes the active residuals, settles `alpha · r` into `p`,
/// and pushes `(1 - alpha) · r / deg_out` along out-edges in one fused
/// [`MultiSourceReduce`] pass; a lane re-activates a vertex when its
/// residual crosses `eps`. Mass at zero-out-degree vertices settles
/// entirely into `p` (no dangling redistribution). Lane `k` is bit-identical
/// to running the same seed alone: residual folds group by fixed quanta in
/// CSC scan order regardless of which other lanes are live.
pub fn fused_ppr(
    engine: &GraphGrind2,
    sources: &[VertexId],
    alpha: f64,
    eps: f64,
    max_rounds: usize,
) -> FusedPprResult {
    let n = engine.num_vertices();
    let kk = sources.len();
    assert!(kk <= 64, "at most 64 fused lanes");
    let degrees = engine.store().out_degrees();

    let mut p = vec![vec![0.0f64; n]; kk];
    let r: Vec<AtomicF64> = (0..n * kk).map(|_| AtomicF64::new(0.0)).collect();
    for (k, &s) in sources.iter().enumerate() {
        r[s as usize * kk + k].store(1.0);
    }

    let mut frontier = engine.fused_frontier(sources);
    let mut rounds = 0usize;
    let mut push_verts: Vec<VertexId> = Vec::new();
    let mut push_scaled: Vec<f64> = Vec::new();
    while !frontier.is_empty() && rounds < max_rounds {
        // Freeze: settle alpha·r into p, scale the remainder for pushing,
        // and zero the residuals of every active vertex so deposits made
        // this round start from a clean slate.
        push_verts.clear();
        push_scaled.clear();
        frontier.for_each(|v, m| {
            push_verts.push(v);
            let deg = degrees[v as usize] as f64;
            let base = push_scaled.len();
            push_scaled.resize(base + kk, 0.0);
            let mut lanes = m;
            while lanes != 0 {
                let k = lanes.trailing_zeros() as usize;
                lanes &= lanes - 1;
                let slot = &r[v as usize * kk + k];
                let res = slot.load();
                slot.store(0.0);
                if deg > 0.0 {
                    p[k][v as usize] += alpha * res;
                    push_scaled[base + k] = (1.0 - alpha) * res / deg;
                } else {
                    p[k][v as usize] += res;
                }
            }
        });
        let op = FusedPprOp {
            push_verts: &push_verts,
            push_scaled: &push_scaled,
            r: &r,
            kk,
            eps,
        };
        frontier = engine.fused_edge_map_reduce(&frontier, &op);
        rounds += 1;
    }
    FusedPprResult { p, rounds }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bfs::bfs;
    use gg_core::config::Config;
    use gg_graph::generators;

    fn engine_for(el: &gg_graph::edge_list::EdgeList) -> GraphGrind2 {
        GraphGrind2::new(el, Config::partitioned_for_tests())
    }

    #[test]
    fn fused_bfs_lanes_match_single_source_runs() {
        let el = generators::rmat(9, 4000, generators::RmatParams::skewed(), 8);
        let engine = engine_for(&el);
        let sources = [0u32, 7, 99, 311];
        let fused = fused_bfs(&engine, &sources);
        for (k, &s) in sources.iter().enumerate() {
            let solo = bfs(&engine, s);
            assert_eq!(fused.dist[k], solo.level, "lane {k} (source {s})");
        }
    }

    #[test]
    fn fused_reachability_matches_bfs_reachability() {
        let el = gg_graph::edge_list::EdgeList::from_edges(7, &[(0, 1), (1, 2), (4, 5), (5, 6)]);
        let engine = engine_for(&el);
        let reach = fused_reachability(&engine, &[0, 4]);
        assert_eq!(reach[2], 0b01); // reached by seed 0 only
        assert_eq!(reach[6], 0b10); // reached by seed 4 only
        assert_eq!(reach[3], 0); // isolated
        assert_eq!(reach[0], 0b01); // seeds reach themselves
    }

    #[test]
    fn fused_ppr_lanes_match_single_seed_runs() {
        let el = generators::rmat(8, 2500, generators::RmatParams::skewed(), 3);
        let engine = engine_for(&el);
        let sources = [3u32, 42, 100];
        let fused = fused_ppr(&engine, &sources, 0.15, 1e-4, 50);
        for (k, &s) in sources.iter().enumerate() {
            let solo = fused_ppr(&engine, &[s], 0.15, 1e-4, 50);
            assert_eq!(fused.p[k], solo.p[0], "lane {k} (seed {s})");
        }
    }

    #[test]
    fn fused_ppr_conserves_mass_on_a_cycle() {
        // On a cycle every vertex has out-degree 1, so no mass is lost:
        // settled p plus outstanding residual sums to 1 per lane.
        let n = 12usize;
        let edges: Vec<(u32, u32)> = (0..n as u32).map(|v| (v, (v + 1) % n as u32)).collect();
        let el = gg_graph::edge_list::EdgeList::from_edges(n, &edges);
        let engine = engine_for(&el);
        let res = fused_ppr(&engine, &[0, 5], 0.2, 1e-12, 200);
        for lane in &res.p {
            let settled: f64 = lane.iter().sum();
            assert!(settled > 0.999, "settled mass {settled}");
            assert!(settled <= 1.0 + 1e-9, "settled mass {settled}");
        }
    }
}
