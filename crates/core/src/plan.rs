//! The traversal planner: one place that turns frontier statistics into
//! (kernel, output-representation) decisions and splits the planned work
//! into edge-balanced, schedulable chunks.
//!
//! Before this module existed, Algorithm 2's `decide` was invoked from
//! three scattered call sites — the kernel table in [`edge_map`], the
//! monolithic dispatch in [`engine`](crate::engine), and the per-partition
//! loop in [`partitioned`](crate::partitioned) — and the *output*
//! representation was hard-coded dense everywhere a bitmap merge was
//! convenient. The planner consolidates both choices:
//!
//! * [`classify`] is the single Algorithm 2 classifier (`|F| + Σ deg_out(F)`
//!   against `|E| / 2` and `|E| / 20`); `edge_map::decide` now delegates
//!   here.
//! * [`plan_edge_map`] is the monolithic planning entry point: one
//!   [`EdgeKind`] per edge map from the global frontier metric.
//! * [`plan_partitions`] is the partitioned planning entry point: for every
//!   non-empty partition, a [`PartStep`] pairing the locally decided kernel
//!   with the locally decided **output representation** — a sorted sparse
//!   vertex list for sparse-kernel partitions, a range-aligned dense bitmap
//!   segment for dense-kernel partitions (overridable by
//!   [`OutputMode`]). Under [`OutputMode::Auto`] a dense-kernel partition
//!   with a *provably small* output — bounded by its pruned-CSR candidate
//!   count, [`PartitionView::distinct_dsts`] — still emits a sorted list
//!   (see [`output_for`]). A whole round of sparse steps therefore merges
//!   in `O(output)` with no `O(|V| / 64)` dense-bitmap floor.
//! * [`resolve_cap`] turns the configured
//!   [`ChunkCap`](crate::config::ChunkCap) policy into a concrete
//!   per-partition edge cap: `Fixed(n)` passes through, `Auto` derives
//!   `max(MIN_CHUNK_EDGES, |E_partition| / (CHUNK_OVERSUBSCRIPTION ·
//!   threads))` clamped to the partition's own edge count, so every heavy
//!   partition splits into roughly `CHUNK_OVERSUBSCRIPTION × threads`
//!   steal-able chunks regardless of graph scale while near-empty
//!   partitions plan a single chunk.
//! * [`chunk_dense_range`] / [`chunk_candidates`] split one planned
//!   partition's work into **edge-balanced chunks** capped by the resolved
//!   cap: a dense kernel's destination range splits at CSC-offset
//!   boundaries, a sparse kernel's candidate list splits into slices, both
//!   greedily closing a chunk as soon as it reaches the cap. A
//!   **mega-hub** destination whose in-degree alone exceeds the cap may be
//!   split further: its in-edge scan becomes several *sub-chunks*
//!   ([`Chunk::sub`]), each scanning a slice of the hub's CSC adjacency
//!   and emitting a partial accumulator that the executor reduces in
//!   ascending `(partition, chunk, sub-chunk)` order (see
//!   [`partitioned`](crate::partitioned)). Whether a hub splits is the
//!   [`HubSplit`] policy's call: `Fixed` caps split every over-cap hub
//!   unconditionally (every chunk then carries fewer than
//!   `cap + min(max_degree, cap)` edges), while the `Auto` cap uses a
//!   **cost model** — split only when the predicted imbalance (in-degree
//!   minus cap) exceeds the per-chunk scheduling overhead
//!   [`HUB_SPLIT_OVERHEAD_EDGES`], so balanced graphs are not shredded
//!   into overhead-dominated sub-chunks for a balance win that cannot pay
//!   for itself.
//!
//! The planner is deterministic and pool-free: decisions (and chunk
//! boundaries) depend only on the frontier statistics and the static
//! partition metadata, never on scheduling, so the executor's bit-identity
//! contract extends to the plan itself (the `determinism_stress` suite pins
//! the recorded plans).

use gg_graph::reorder::EdgeOrder;
use gg_graph::types::{EdgeId, VertexId};

use crate::config::{ChunkCap, OutputMode, Thresholds};
use crate::edge_map::EdgeKind;
use crate::frontier::Frontier;
use crate::partitioned::{PartKernel, PartitionView};

/// Physical representation a partition's next-frontier output buffer uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum OutputRepr {
    /// Sorted vertex list, merged by partition-order concatenation.
    Sparse,
    /// Range-aligned dense bitmap segment, merged by word-level splicing.
    Dense,
}

impl OutputRepr {
    /// Stable wire label used by the record/replay trace format.
    pub fn label(self) -> &'static str {
        match self {
            OutputRepr::Sparse => "sparse",
            OutputRepr::Dense => "dense",
        }
    }

    /// Inverse of [`label`](Self::label); `None` for unknown labels (a
    /// trace written by a future format revision).
    pub fn from_label(s: &str) -> Option<Self> {
        match s {
            "sparse" => Some(OutputRepr::Sparse),
            "dense" => Some(OutputRepr::Dense),
            _ => None,
        }
    }
}

/// Stable wire label of a per-partition kernel choice, used by the
/// record/replay trace format alongside [`OutputRepr::label`].
pub fn kernel_label(k: PartKernel) -> &'static str {
    match k {
        PartKernel::Sparse => "sparse",
        PartKernel::Dense => "dense",
    }
}

/// Inverse of [`kernel_label`]; `None` for unknown labels.
pub fn kernel_from_label(s: &str) -> Option<PartKernel> {
    match s {
        "sparse" => Some(PartKernel::Sparse),
        "dense" => Some(PartKernel::Dense),
        _ => None,
    }
}

/// One partition's planned work for one edge map.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PartStep {
    /// Partition index in the engine's `PartitionSet`.
    pub partition: usize,
    /// Locally selected traversal kernel.
    pub kernel: PartKernel,
    /// Locally selected output representation.
    pub output: OutputRepr,
    /// The partition's effective edge layout (fixed globally or chosen by
    /// the memsim layout advisor); recorded so replay traces pin the
    /// layout decision alongside the kernel and output ones.
    pub layout: EdgeOrder,
}

/// The planner's product for one partitioned edge map: per-partition steps
/// in pool submission (NUMA-domain-major) order, plus the selection tallies
/// recorded into `KernelCounts`.
#[derive(Clone, Debug, Default)]
pub struct TraversalPlan {
    /// Steps in submission order (empty partitions never appear).
    pub steps: Vec<PartStep>,
}

impl TraversalPlan {
    /// `(sparse, dense)` kernel selections in this plan.
    pub fn kernel_tally(&self) -> (u64, u64) {
        let sparse = self
            .steps
            .iter()
            .filter(|s| s.kernel == PartKernel::Sparse)
            .count() as u64;
        (sparse, self.steps.len() as u64 - sparse)
    }

    /// `(sparse, dense)` output-representation selections in this plan.
    pub fn output_tally(&self) -> (u64, u64) {
        let sparse = self
            .steps
            .iter()
            .filter(|s| s.output == OutputRepr::Sparse)
            .count() as u64;
        (sparse, self.steps.len() as u64 - sparse)
    }
}

/// Algorithm 2's classification: compares `metric = |F| + Σ deg_out(F)`
/// against `|E| / dense_divisor` and `|E| / sparse_divisor`. The single
/// classifier behind every decision in the engine.
pub fn classify(metric: u64, num_edges: u64, th: &Thresholds) -> EdgeKind {
    if metric > num_edges / th.dense_divisor {
        EdgeKind::Dense
    } else if metric > num_edges / th.sparse_divisor {
        EdgeKind::Medium
    } else {
        EdgeKind::Sparse
    }
}

/// Monolithic planning: one kernel per edge map from the global frontier
/// density (Algorithm 2 as published).
pub fn plan_edge_map(frontier: &Frontier, num_edges: u64, th: &Thresholds) -> EdgeKind {
    classify(frontier.density_metric(), num_edges, th)
}

/// The output representation for a partition that selected `kernel`, under
/// `mode`, given a proof that the partition can activate at most
/// `est_outputs` destinations out of a range of `range_len`.
///
/// The `Auto` rule follows the kernel — a sparse-kernel partition's output
/// is bounded by the frontier's footprint in the partition, so a sorted
/// list keeps the merge output-proportional; a dense-kernel partition
/// already scans its whole range, so a range-aligned segment adds only
/// `O(range / 64)` to work that is `O(range)` anyway — **except** when the
/// output is provably small: `est_outputs` (the pruned-CSR candidate
/// count, i.e. the number of range destinations with any in-edge in the
/// partition) bounds the output for *every* frontier, so when the sorted
/// list cannot outgrow the segment's word count
/// (`est_outputs ≤ range_len / 64`, division so huge estimates cannot
/// saturate into looking small) even a dense-kernel partition emits a
/// list and keeps the merge off the dense floor.
pub fn output_for(
    kernel: PartKernel,
    mode: OutputMode,
    est_outputs: u64,
    range_len: u64,
) -> OutputRepr {
    match mode {
        OutputMode::ForceSparse => OutputRepr::Sparse,
        OutputMode::ForceDense => OutputRepr::Dense,
        OutputMode::Auto => match kernel {
            PartKernel::Sparse => OutputRepr::Sparse,
            PartKernel::Dense if est_outputs <= range_len / 64 => OutputRepr::Sparse,
            PartKernel::Dense => OutputRepr::Dense,
        },
    }
}

/// Partitioned planning: classify the frontier *locally* per partition
/// (`|F ∩ R_p| + Σ deg_out(F ∩ R_p)` against the partition's own edge
/// count) and pair each kernel with an output representation. `order` is
/// the NUMA-domain-major submission order restricted to non-empty
/// partitions; the returned steps preserve it.
pub fn plan_partitions(
    frontier: &Frontier,
    views: &[PartitionView],
    order: &[usize],
    out_degrees: &[u32],
    th: &Thresholds,
    mode: OutputMode,
) -> TraversalPlan {
    let steps = order
        .iter()
        .map(|&p| {
            let view = &views[p];
            let (count, degree_sum) = frontier.range_stats(view.dst_range.clone(), out_degrees);
            let metric = count as u64 + degree_sum;
            let kernel = match classify(metric, view.num_edges, th) {
                EdgeKind::Sparse => PartKernel::Sparse,
                EdgeKind::Medium | EdgeKind::Dense => PartKernel::Dense,
            };
            PartStep {
                partition: p,
                kernel,
                output: output_for(
                    kernel,
                    mode,
                    view.distinct_dsts,
                    view.dst_range.len() as u64,
                ),
                layout: view.layout,
            }
        })
        .collect();
    TraversalPlan { steps }
}

/// Minimum adaptive chunk cap: below this, per-chunk scheduling overhead
/// dominates the work the chunk carries.
pub const MIN_CHUNK_EDGES: usize = 64;

/// How many chunks per thread the adaptive cap aims for within one planned
/// partition: enough slack that stealing can rebalance a skewed plan, few
/// enough that per-chunk overhead stays noise. Two per thread rather than
/// the classic 4–8× oversubscription because mega-hub splitting — not
/// fine chunking — is what rebalances skew here: on the `repro
/// load_balance` powerlaw scenario the 8× schedule's extra chunks cost
/// wall-clock without improving balance beyond what the hub split (and
/// its cost model) already bought.
pub const CHUNK_OVERSUBSCRIPTION: usize = 2;

/// Per-chunk scheduling overhead expressed in edge-scan-equivalents: the
/// cost of enqueueing, stealing and merging one extra chunk is roughly
/// what scanning this many CSC edges costs. Calibrated with the
/// `repro chunk_overhead` micro-bench (see `gg-bench`): on the reference
/// host one chunk dispatch amortises against ~4k scanned edges.
///
/// The [`HubSplit::CostModel`] policy splits a hub only when the
/// *imbalance* it causes — its in-degree above the cap, i.e. how far the
/// top chunk would sit above the per-chunk mean — exceeds this constant.
/// Splitting a hub that is barely over the cap buys balance worth less
/// than the sub-chunk scheduling it costs.
pub const HUB_SPLIT_OVERHEAD_EDGES: u64 = 4096;

/// When to split a mega-hub destination (in-degree > cap) into sub-chunks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HubSplit {
    /// Split every over-cap hub unconditionally — the policy for
    /// [`ChunkCap::Fixed`], where the cap is an explicit bound the caller
    /// asked the schedule to respect.
    Always,
    /// Split only when the predicted imbalance (hub in-degree minus the
    /// cap) exceeds [`HUB_SPLIT_OVERHEAD_EDGES`] — the policy for
    /// [`ChunkCap::Auto`], where the cap is a balance heuristic and
    /// over-splitting costs wall-clock. An unsplit hub still gets a chunk
    /// of its own.
    CostModel,
}

impl HubSplit {
    /// The policy a [`ChunkCap`] implies.
    pub fn for_cap(cap: ChunkCap) -> Self {
        match cap {
            ChunkCap::Fixed(_) => HubSplit::Always,
            ChunkCap::Auto => HubSplit::CostModel,
        }
    }

    /// Whether a destination of weight `w` should split under cap `cap`.
    #[inline]
    fn splits(self, w: u64, cap: u64) -> bool {
        w > cap
            && match self {
                HubSplit::Always => true,
                HubSplit::CostModel => w - cap > HUB_SPLIT_OVERHEAD_EDGES,
            }
    }
}

/// Resolves the configured [`ChunkCap`] policy into a concrete edge cap
/// for one planned partition: `Fixed(n)` passes through, `Auto` derives
/// `max(MIN_CHUNK_EDGES, partition_edges / (CHUNK_OVERSUBSCRIPTION ·
/// threads))`, clamped to the partition's own edge count so a near-empty
/// partition plans a single chunk instead of inheriting the global floor.
/// The result depends only on static partition metadata and the
/// configured thread count, so the plan stays deterministic.
pub fn resolve_cap(cap: ChunkCap, partition_edges: u64, threads: usize) -> usize {
    match cap {
        ChunkCap::Fixed(n) => n.max(1),
        ChunkCap::Auto => {
            let denom = (CHUNK_OVERSUBSCRIPTION * threads.max(1)) as u64;
            let derived = (partition_edges / denom)
                .max(MIN_CHUNK_EDGES as u64)
                .min(partition_edges.max(1));
            usize::try_from(derived).unwrap_or(usize::MAX)
        }
    }
}

/// The sub-chunk descriptor of a mega-hub split: which slice of the single
/// destination's CSC in-edge scan this chunk covers, as offsets **within**
/// that destination's adjacency list (`0..in_degree`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SubSpan {
    /// First in-edge offset (inclusive) of the slice.
    pub lo: u64,
    /// One past the last in-edge offset of the slice.
    pub hi: u64,
}

/// One edge-balanced schedulable unit of a planned partition: either a
/// contiguous destination sub-range (dense kernel) or a slice of the
/// partition's sorted candidate list (sparse kernel), plus its planned CSC
/// edge count. A mega-hub sub-chunk covers a *single* destination
/// (`span.len() == 1`) with [`sub`](Self::sub) naming the slice of that
/// destination's in-edge scan it owns.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Chunk {
    /// Dense kernel: the destination sub-range. Sparse kernel: the
    /// candidate-list index span (`candidates[span]` are the destinations).
    pub span: std::ops::Range<usize>,
    /// Planned CSC edge count of the chunk (sum of in-degrees of its
    /// destinations; for a sub-chunk, the slice length).
    pub edges: u64,
    /// `Some` when this chunk is one slice of a mega-hub destination's
    /// in-edge scan. Sub-chunks of one destination are emitted
    /// consecutively in ascending slice order and tile `0..in_degree`
    /// exactly.
    pub sub: Option<SubSpan>,
}

/// Greedy edge-balanced splitter shared by both chunk shapes: walk `items`,
/// accumulating `weight(item)`, and close a chunk as soon as the
/// accumulated weight reaches `cap`. An item whose weight *alone* exceeds
/// the cap (a mega-hub destination) is split into sub-chunks of at most
/// `cap` edges each ([`Chunk::sub`]), emitted in ascending slice order —
/// when the `hub_split` policy says splitting pays; otherwise the hub
/// becomes a single over-cap chunk of its own. Under [`HubSplit::Always`]
/// every chunk carries fewer than `cap + min(max_degree, cap)` edges; under
/// [`HubSplit::CostModel`] an unsplit hub may carry up to
/// `cap + HUB_SPLIT_OVERHEAD_EDGES`. Either way the chunks (with their
/// sub-slices) tile `items` exactly, so chunking can never change which
/// destinations run or which edges are scanned — only how the scans are
/// scheduled.
fn chunk_by_weight(
    len: usize,
    cap: usize,
    hub_split: HubSplit,
    weight: impl Fn(usize) -> u64,
) -> Vec<Chunk> {
    let cap = cap.max(1) as u64;
    let mut chunks = Vec::new();
    let mut start = 0usize;
    let mut acc = 0u64;
    for i in 0..len {
        let w = weight(i);
        if w > cap {
            // Mega-hub: close the open chunk, then slice this item's scan
            // (or, when the cost model says splitting doesn't pay, give the
            // hub one over-cap chunk of its own).
            if start < i {
                chunks.push(Chunk {
                    span: start..i,
                    edges: acc,
                    sub: None,
                });
            }
            if hub_split.splits(w, cap) {
                let mut lo = 0u64;
                while lo < w {
                    let hi = (lo + cap).min(w);
                    chunks.push(Chunk {
                        span: i..i + 1,
                        edges: hi - lo,
                        sub: Some(SubSpan { lo, hi }),
                    });
                    lo = hi;
                }
            } else {
                chunks.push(Chunk {
                    span: i..i + 1,
                    edges: w,
                    sub: None,
                });
            }
            start = i + 1;
            acc = 0;
            continue;
        }
        acc += w;
        if acc >= cap {
            chunks.push(Chunk {
                span: start..i + 1,
                edges: acc,
                sub: None,
            });
            start = i + 1;
            acc = 0;
        }
    }
    if start < len {
        chunks.push(Chunk {
            span: start..len,
            edges: acc,
            sub: None,
        });
    }
    chunks
}

/// Splits a dense kernel's destination range into CSC-offset-balanced
/// sub-ranges of fewer than `cap + min(max_degree, cap)` edges each
/// (mega-hub destinations split into per-scan sub-chunks, see
/// [`Chunk::sub`], subject to the `hub_split` policy). `offsets` is the
/// whole-graph CSC offset array; the returned spans are **global vertex
/// ranges** tiling `range` exactly. With `cap == usize::MAX` the whole
/// range is one chunk.
pub fn chunk_dense_range(
    offsets: &[EdgeId],
    range: std::ops::Range<VertexId>,
    cap: usize,
    hub_split: HubSplit,
) -> Vec<Chunk> {
    let (start, end) = (range.start as usize, range.end as usize);
    if start >= end {
        return Vec::new();
    }
    if cap == usize::MAX {
        return vec![Chunk {
            span: start..end,
            edges: (offsets[end] - offsets[start]) as u64,
            sub: None,
        }];
    }
    let mut chunks = chunk_by_weight(end - start, cap, hub_split, |i| {
        (offsets[start + i + 1] - offsets[start + i]) as u64
    });
    for c in &mut chunks {
        c.span = c.span.start + start..c.span.end + start;
    }
    chunks
}

/// Splits a sparse kernel's sorted candidate list into edge-balanced
/// slices of fewer than `cap + min(max_degree, cap)` edges each (mega-hub
/// candidates split into per-scan sub-chunks, see [`Chunk::sub`], subject
/// to the `hub_split` policy), weighting every candidate by its
/// whole-graph CSC in-degree (the pull kernel scans the full in-adjacency
/// of each candidate). The returned spans are **index ranges into
/// `candidates`** tiling the list exactly.
pub fn chunk_candidates(
    candidates: &[VertexId],
    offsets: &[EdgeId],
    cap: usize,
    hub_split: HubSplit,
) -> Vec<Chunk> {
    if candidates.is_empty() {
        return Vec::new();
    }
    if cap == usize::MAX {
        let edges = candidates
            .iter()
            .map(|&v| (offsets[v as usize + 1] - offsets[v as usize]) as u64)
            .sum();
        return vec![Chunk {
            span: 0..candidates.len(),
            edges,
            sub: None,
        }];
    }
    chunk_by_weight(candidates.len(), cap, hub_split, |i| {
        let v = candidates[i] as usize;
        (offsets[v + 1] - offsets[v]) as u64
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Config;
    use crate::store::GraphStore;
    use gg_runtime::numa::NumaTopology;
    use gg_runtime::schedule::PartitionSchedule;

    #[test]
    fn classify_uses_paper_thresholds() {
        let th = Thresholds::default();
        assert_eq!(classify(5, 100, &th), EdgeKind::Sparse);
        assert_eq!(classify(6, 100, &th), EdgeKind::Medium);
        assert_eq!(classify(50, 100, &th), EdgeKind::Medium);
        assert_eq!(classify(51, 100, &th), EdgeKind::Dense);
    }

    #[test]
    fn output_follows_kernel_under_auto_and_obeys_forces() {
        // A large estimate relative to the range: the pre-estimate rules.
        let (est, len) = (100, 100);
        for kernel in [PartKernel::Sparse, PartKernel::Dense] {
            assert_eq!(
                output_for(kernel, OutputMode::ForceSparse, est, len),
                OutputRepr::Sparse
            );
            assert_eq!(
                output_for(kernel, OutputMode::ForceDense, est, len),
                OutputRepr::Dense
            );
        }
        assert_eq!(
            output_for(PartKernel::Sparse, OutputMode::Auto, est, len),
            OutputRepr::Sparse
        );
        assert_eq!(
            output_for(PartKernel::Dense, OutputMode::Auto, est, len),
            OutputRepr::Dense
        );
    }

    /// The pruned-CSR candidate estimate: a dense-kernel partition whose
    /// provable output bound is tiny relative to its range emits a sorted
    /// list under `Auto` — but forces still win, and a large estimate
    /// leaves the kernel-following rule intact.
    #[test]
    fn provably_small_outputs_go_sparse_under_auto() {
        // 2 candidate destinations over a 1000-vertex range: 2*64 ≤ 1000.
        assert_eq!(
            output_for(PartKernel::Dense, OutputMode::Auto, 2, 1000),
            OutputRepr::Sparse
        );
        // Boundary: est * 64 == range_len still counts as provably small.
        assert_eq!(
            output_for(PartKernel::Dense, OutputMode::Auto, 2, 128),
            OutputRepr::Sparse
        );
        assert_eq!(
            output_for(PartKernel::Dense, OutputMode::Auto, 2, 127),
            OutputRepr::Dense
        );
        // Forces override the estimate.
        assert_eq!(
            output_for(PartKernel::Dense, OutputMode::ForceDense, 2, 1000),
            OutputRepr::Dense
        );
        // No overflow on huge estimates.
        assert_eq!(
            output_for(PartKernel::Dense, OutputMode::Auto, u64::MAX, u64::MAX),
            OutputRepr::Dense
        );
    }

    #[test]
    fn dense_chunks_tile_the_range_and_respect_the_cap() {
        // Degrees: vertex i has in-degree i % 5 over 40 vertices.
        let mut offsets = vec![0usize];
        for i in 0..40usize {
            offsets.push(offsets[i] + i % 5);
        }
        let total = (offsets[35] - offsets[3]) as u64;
        let chunks = chunk_dense_range(&offsets, 3..35, 6, HubSplit::Always);
        assert!(chunks.len() > 1, "the cap must split this range");
        // Tile exactly.
        assert_eq!(chunks[0].span.start, 3);
        assert_eq!(chunks.last().unwrap().span.end, 35);
        for w in chunks.windows(2) {
            assert_eq!(w[0].span.end, w[1].span.start);
        }
        assert_eq!(chunks.iter().map(|c| c.edges).sum::<u64>(), total);
        // Edge counts match the offsets, and the cap + max-degree bound
        // holds (max in-degree here is 4).
        for c in &chunks {
            assert_eq!(
                c.edges,
                (offsets[c.span.end] - offsets[c.span.start]) as u64
            );
            assert!(c.edges <= 6 + 4, "chunk {c:?} exceeds cap + max degree");
        }
        // Unbounded: one chunk, whole range.
        let whole = chunk_dense_range(&offsets, 3..35, usize::MAX, HubSplit::Always);
        assert_eq!(whole.len(), 1);
        assert_eq!(whole[0].span, 3..35);
        assert_eq!(whole[0].edges, total);
        // Empty range: no chunks.
        assert!(chunk_dense_range(&offsets, 7..7, 6, HubSplit::Always).is_empty());
        // Cap 1: degrees > 1 become mega-hub sub-chunks of exactly 1 edge.
        for c in chunk_dense_range(&offsets, 3..35, 1, HubSplit::Always) {
            assert!(c.edges <= 1);
            if c.sub.is_some() {
                assert_eq!(c.span.len(), 1);
            }
        }
    }

    /// The adaptive cap: fixed passes through, auto derives
    /// `|E_p| / (k · threads)` floored at `MIN_CHUNK_EDGES` and clamped to
    /// the partition's own edge count.
    #[test]
    fn resolve_cap_derives_from_partition_edges_and_threads() {
        assert_eq!(resolve_cap(ChunkCap::Fixed(7), 1_000_000, 4), 7);
        assert_eq!(resolve_cap(ChunkCap::Fixed(usize::MAX), 10, 4), usize::MAX);
        // 1M edges / (2 · 4 threads) = 125000.
        assert_eq!(resolve_cap(ChunkCap::Auto, 1_000_000, 4), 125_000);
        // Small partitions floor at the minimum cap — up to their own
        // edge count, so one chunk covers the whole partition.
        assert_eq!(
            resolve_cap(ChunkCap::Auto, 100, 4),
            MIN_CHUNK_EDGES,
            "tiny partitions must not produce overhead-dominated chunks"
        );
        // The floor is clamped to the partition's edge count: a partition
        // below MIN_CHUNK_EDGES plans exactly one chunk, never several.
        assert_eq!(
            resolve_cap(ChunkCap::Auto, 63, 1),
            63,
            "the floor must not exceed the partition's own edges"
        );
        assert_eq!(resolve_cap(ChunkCap::Auto, 64, 1), 64);
        assert_eq!(resolve_cap(ChunkCap::Auto, 1, 4), 1);
        // Empty partitions still get a non-zero cap.
        assert_eq!(resolve_cap(ChunkCap::Auto, 0, 1), 1);
        // Degenerate thread counts are clamped to 1: 640 / (2 · 1) = 320.
        assert_eq!(resolve_cap(ChunkCap::Auto, 640, 0), 320);
        assert_eq!(resolve_cap(ChunkCap::Fixed(0), 640, 1), 1);
    }

    /// The hub-split cost model: `Fixed` caps split every over-cap hub;
    /// the `Auto` policy splits only hubs whose imbalance over the cap
    /// exceeds the per-chunk overhead constant — a hub barely above the
    /// cap stays whole, in a chunk of its own.
    #[test]
    fn cost_model_leaves_marginal_hubs_unsplit() {
        assert_eq!(HubSplit::for_cap(ChunkCap::Fixed(64)), HubSplit::Always);
        assert_eq!(HubSplit::for_cap(ChunkCap::Auto), HubSplit::CostModel);

        // Degree-100 hub at vertex 2, cap 64: over the cap by 36, far
        // below HUB_SPLIT_OVERHEAD_EDGES.
        let mut offsets = vec![0usize];
        for i in 0..6usize {
            let d = if i == 2 { 100 } else { 8 };
            offsets.push(offsets[i] + d);
        }
        let split = chunk_dense_range(&offsets, 0..6, 64, HubSplit::Always);
        assert!(
            split.iter().any(|c| c.sub.is_some()),
            "fixed caps must keep unconditional splitting"
        );
        let unsplit = chunk_dense_range(&offsets, 0..6, 64, HubSplit::CostModel);
        assert!(
            unsplit.iter().all(|c| c.sub.is_none()),
            "a marginal hub must not split under the cost model"
        );
        // The unsplit hub is isolated in its own chunk, so it can still be
        // stolen independently of its neighbours.
        let hub = unsplit.iter().find(|c| c.span.contains(&2)).unwrap();
        assert_eq!(hub.span, 2..3);
        assert_eq!(hub.edges, 100);
        // Coverage is unchanged either way.
        let total = offsets[6] as u64;
        assert_eq!(split.iter().map(|c| c.edges).sum::<u64>(), total);
        assert_eq!(unsplit.iter().map(|c| c.edges).sum::<u64>(), total);

        // A hub whose excess clears the overhead constant splits even
        // under the cost model.
        let mut big = vec![0usize];
        let hub_deg = 64 + HUB_SPLIT_OVERHEAD_EDGES as usize + 1;
        for i in 0..3usize {
            let d = if i == 1 { hub_deg } else { 8 };
            big.push(big[i] + d);
        }
        assert!(
            chunk_dense_range(&big, 0..3, 64, HubSplit::CostModel)
                .iter()
                .any(|c| c.sub.is_some()),
            "an imbalance above the overhead constant must split"
        );
        // Candidate-list chunking obeys the same policy.
        let cands: Vec<VertexId> = vec![0, 2, 4];
        assert!(chunk_candidates(&cands, &offsets, 64, HubSplit::CostModel)
            .iter()
            .all(|c| c.sub.is_none()));
    }

    /// A mega-hub destination (in-degree ≫ cap) splits into sub-chunks of
    /// at most `cap` edges that tile its in-edge scan exactly, emitted in
    /// ascending slice order between the ordinary chunks around it.
    #[test]
    fn mega_hub_destination_splits_into_subchunks() {
        // Vertices 0..10 with degree 2 each, vertex 10 a hub of degree
        // 100, vertices 11..20 with degree 2 again.
        let mut offsets = vec![0usize];
        for i in 0..20usize {
            let d = if i == 10 { 100 } else { 2 };
            offsets.push(offsets[i] + d);
        }
        let cap = 8usize;
        let chunks = chunk_dense_range(&offsets, 0..20, cap, HubSplit::Always);
        let total = offsets[20] as u64;
        assert_eq!(chunks.iter().map(|c| c.edges).sum::<u64>(), total);
        // Every chunk respects the hub-split bound (< 2 · cap).
        for c in &chunks {
            assert!(c.edges < 2 * cap as u64, "chunk {c:?} exceeds 2 x cap");
        }
        // The hub produced ceil(100 / 8) = 13 consecutive sub-chunks
        // tiling 0..100.
        let subs: Vec<&Chunk> = chunks.iter().filter(|c| c.sub.is_some()).collect();
        assert_eq!(subs.len(), 13);
        let mut cursor = 0u64;
        for s in &subs {
            assert_eq!(s.span, 10..11, "sub-chunks cover only the hub");
            let sub = s.sub.as_ref().unwrap();
            assert_eq!(sub.lo, cursor, "sub-chunks must tile the scan");
            assert!(sub.hi > sub.lo && sub.hi - sub.lo <= cap as u64);
            assert_eq!(s.edges, sub.hi - sub.lo);
            cursor = sub.hi;
        }
        assert_eq!(cursor, 100);
        // Non-hub chunks still tile the remaining destinations.
        let spans: Vec<_> = chunks
            .iter()
            .filter(|c| c.sub.is_none())
            .map(|c| c.span.clone())
            .collect();
        assert!(spans.iter().all(|s| !s.contains(&10)));
        // max chunk edges dropped below the hub's degree — the
        // load-balance acceptance criterion in miniature.
        let max = chunks.iter().map(|c| c.edges).max().unwrap();
        assert!(max < 100, "hub splitting must beat the hub degree: {max}");
    }

    /// Candidate-list chunking splits hub candidates the same way.
    #[test]
    fn mega_hub_candidate_splits_into_subchunks() {
        let mut offsets = vec![0usize];
        for i in 0..12usize {
            let d = if i == 5 { 40 } else { 3 };
            offsets.push(offsets[i] + d);
        }
        let candidates: Vec<VertexId> = vec![1, 5, 9];
        let chunks = chunk_candidates(&candidates, &offsets, 10, HubSplit::Always);
        assert_eq!(chunks.iter().map(|c| c.edges).sum::<u64>(), 3 + 40 + 3);
        let subs: Vec<&Chunk> = chunks.iter().filter(|c| c.sub.is_some()).collect();
        assert_eq!(subs.len(), 4, "40-edge hub at cap 10 → 4 sub-chunks");
        for s in &subs {
            assert_eq!(s.span, 1..2, "the hub is candidate index 1");
        }
        // Unbounded cap never splits.
        assert!(
            chunk_candidates(&candidates, &offsets, usize::MAX, HubSplit::Always)
                .iter()
                .all(|c| c.sub.is_none())
        );
    }

    #[test]
    fn candidate_chunks_tile_the_list_and_respect_the_cap() {
        let mut offsets = vec![0usize];
        for i in 0..50usize {
            offsets.push(offsets[i] + (i % 7));
        }
        let candidates: Vec<VertexId> = (0..50).step_by(3).collect();
        let deg = |v: VertexId| (offsets[v as usize + 1] - offsets[v as usize]) as u64;
        let total: u64 = candidates.iter().map(|&v| deg(v)).sum();
        let chunks = chunk_candidates(&candidates, &offsets, 8, HubSplit::Always);
        assert!(chunks.len() > 1);
        assert_eq!(chunks[0].span.start, 0);
        assert_eq!(chunks.last().unwrap().span.end, candidates.len());
        for w in chunks.windows(2) {
            assert_eq!(w[0].span.end, w[1].span.start);
        }
        assert_eq!(chunks.iter().map(|c| c.edges).sum::<u64>(), total);
        for c in &chunks {
            let want: u64 = candidates[c.span.clone()].iter().map(|&v| deg(v)).sum();
            assert_eq!(c.edges, want);
            assert!(c.edges <= 8 + 6, "chunk {c:?} exceeds cap + max degree");
        }
        // Unbounded and empty cases.
        let whole = chunk_candidates(&candidates, &offsets, usize::MAX, HubSplit::Always);
        assert_eq!(whole.len(), 1);
        assert_eq!(whole[0].span, 0..candidates.len());
        assert_eq!(whole[0].edges, total);
        assert!(chunk_candidates(&[], &offsets, 8, HubSplit::Always).is_empty());
    }

    /// A dense block plus a sparse tail: with the block active, the plan
    /// must mix kernels *and* output representations in one edge map.
    #[test]
    fn skewed_frontier_produces_a_mixed_plan() {
        let mut el = gg_graph::edge_list::EdgeList::new(64);
        for i in 0..16u32 {
            for j in 0..16u32 {
                if i != j {
                    el.push(i, j);
                }
            }
        }
        for i in 16..63u32 {
            el.push(i, i + 1);
        }
        let config = Config {
            num_partitions: 4,
            numa: NumaTopology::new(1),
            build_partitioned_csr: true,
            ..Config::for_tests()
        };
        let store = GraphStore::build(&el, &config);
        let schedule = PartitionSchedule::new(store.num_partitions(), config.numa);
        let parts = store.edge_parts();
        let views: Vec<PartitionView> = (0..parts.num_partitions())
            .map(|p| {
                let dst_range = parts.range(p);
                let distinct_dsts = store.in_degrees()[dst_range.start as usize..]
                    [..dst_range.len()]
                    .iter()
                    .filter(|&&d| d > 0)
                    .count() as u64;
                PartitionView {
                    index: p,
                    dst_range,
                    num_edges: parts.edges_per_partition(store.in_degrees())[p],
                    domain: schedule.domain_of(p),
                    distinct_dsts,
                    layout: store.coo().part_order(p),
                }
            })
            .collect();
        let order = schedule.order_filtered(|p| views[p].num_edges > 0);
        let frontier = Frontier::from_sparse((0..8).collect(), 64, store.out_degrees());
        let plan = plan_partitions(
            &frontier,
            &views,
            &order,
            store.out_degrees(),
            &config.thresholds,
            OutputMode::Auto,
        );
        let (ks, kd) = plan.kernel_tally();
        let (os, od) = plan.output_tally();
        assert!(ks >= 1 && kd >= 1, "kernels must mix: {ks}/{kd}");
        assert!(os >= 1 && od >= 1, "outputs must mix: {os}/{od}");
        assert_eq!(ks + kd, plan.steps.len() as u64);
        // Deterministic: planning twice yields the same steps.
        let again = plan_partitions(
            &frontier,
            &views,
            &order,
            store.out_degrees(),
            &config.thresholds,
            OutputMode::Auto,
        );
        assert_eq!(plan.steps, again.steps);
    }
}
