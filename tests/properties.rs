//! Property-based tests (proptest) over random graphs: the structural
//! invariants of partitioning and the layouts, and end-to-end algorithm
//! agreement between GraphGrind-v2 and the sequential oracles.

use proptest::prelude::*;

use graphgrind::algorithms::{self, reference, validate};
use graphgrind::core::{Config, GraphGrind2};
use graphgrind::graph::coo::PartitionedCoo;
use graphgrind::graph::csc::Csc;
use graphgrind::graph::csr::{Csr, PartitionedCsr};
use graphgrind::graph::edge_list::EdgeList;
use graphgrind::graph::ops::symmetrize;
use graphgrind::graph::partition::{PartitionBy, PartitionSet};
use graphgrind::graph::reorder::EdgeOrder;
use graphgrind::graph::replication;
use graphgrind::runtime::numa::NumaTopology;

/// Strategy: a random directed graph with 1..=60 vertices and 0..200 edges.
fn arb_graph() -> impl Strategy<Value = EdgeList> {
    (1usize..=60).prop_flat_map(|n| {
        proptest::collection::vec((0..n as u32, 0..n as u32), 0..200)
            .prop_map(move |edges| EdgeList::from_edges(n, &edges))
    })
}

fn small_config() -> Config {
    Config {
        threads: 2,
        num_partitions: 4,
        numa: NumaTopology::new(2),
        ..Config::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Partition sets cover 0..n disjointly and route each edge to its
    /// destination's home.
    #[test]
    fn partition_set_invariants(el in arb_graph(), p in 1usize..12) {
        let set = PartitionSet::edge_balanced(&el.in_degrees(), p, PartitionBy::Destination);
        set.validate().unwrap();
        prop_assert_eq!(set.num_partitions(), p);
        let covered: usize = (0..p).map(|i| set.range(i).len()).sum();
        prop_assert_eq!(covered, el.num_vertices());
        for (u, v) in el.iter() {
            prop_assert_eq!(set.edge_home(u, v), set.home(v));
        }
    }

    /// The ranges partition `0..n` *exactly once*: contiguous, in order,
    /// starting at 0 and ending at n — not merely summing to n.
    #[test]
    fn partition_ranges_tile_the_vertex_space(el in arb_graph(), p in 1usize..12) {
        let set = PartitionSet::edge_balanced(&el.in_degrees(), p, PartitionBy::Destination);
        let mut cursor = 0u32;
        for i in 0..p {
            let r = set.range(i);
            prop_assert_eq!(r.start, cursor, "gap or overlap before partition {}", i);
            prop_assert!(r.start <= r.end);
            cursor = r.end;
        }
        prop_assert_eq!(cursor as usize, el.num_vertices());
        // Every empty partition is reported, and reported partitions are
        // genuinely empty.
        let empties = set.empty_partitions();
        for i in 0..p {
            prop_assert_eq!(set.range(i).is_empty(), empties.contains(&i), "partition {}", i);
        }
    }

    /// The remaining-aware greedy cut bounds every partition — including
    /// the last — by `|E| / P + max(degree)`.
    #[test]
    fn edge_balanced_never_exceeds_avg_plus_max_degree(el in arb_graph(), p in 1usize..12) {
        let deg = el.in_degrees();
        let set = PartitionSet::edge_balanced(&deg, p, PartitionBy::Destination);
        let total: u64 = deg.iter().map(|&d| d as u64).sum();
        let max_degree = deg.iter().copied().max().unwrap_or(0) as u64;
        let bound = total / p as u64 + max_degree;
        for (i, e) in set.edges_per_partition(&deg).into_iter().enumerate() {
            prop_assert!(e <= bound, "partition {} holds {} > {} edges", i, e, bound);
        }
    }

    /// `whole()` round-trips through `range()`: one partition owning
    /// exactly `0..n`, with every vertex homed to it.
    #[test]
    fn whole_roundtrips_through_range(n in 0usize..400) {
        let set = PartitionSet::whole(n, PartitionBy::Destination);
        prop_assert_eq!(set.num_partitions(), 1);
        prop_assert_eq!(set.range(0), 0..n as u32);
        prop_assert_eq!(set.num_vertices(), n);
        prop_assert!(set.empty_partitions().is_empty() || n == 0);
        for v in (0..n as u32).step_by(7) {
            prop_assert_eq!(set.home(v), 0);
        }
    }

    /// Every layout conserves the edge multiset.
    #[test]
    fn layouts_conserve_edges(el in arb_graph(), p in 1usize..8) {
        let mut want: Vec<(u32, u32)> = el.iter().collect();
        want.sort_unstable();

        let csr = Csr::from_edge_list(&el);
        let mut got: Vec<(u32, u32)> = (0..el.num_vertices() as u32)
            .flat_map(|u| csr.neighbors(u).iter().map(move |&v| (u, v)))
            .collect();
        got.sort_unstable();
        prop_assert_eq!(&got, &want, "CSR");

        let csc = Csc::from_edge_list(&el);
        let mut got: Vec<(u32, u32)> = (0..el.num_vertices() as u32)
            .flat_map(|v| csc.in_neighbors(v).iter().map(move |&u| (u, v)))
            .collect();
        got.sort_unstable();
        prop_assert_eq!(&got, &want, "CSC");

        let set = PartitionSet::edge_balanced(&el.in_degrees(), p, PartitionBy::Destination);
        let coo = PartitionedCoo::new(&el, &set, EdgeOrder::Hilbert);
        coo.validate().unwrap();
        let mut got: Vec<(u32, u32)> = (0..p)
            .flat_map(|part| {
                coo.part_srcs(part)
                    .iter()
                    .zip(coo.part_dsts(part))
                    .map(|(&u, &v)| (u, v))
                    .collect::<Vec<_>>()
            })
            .collect();
        got.sort_unstable();
        prop_assert_eq!(&got, &want, "COO");

        let pcsr = PartitionedCsr::new(&el, &set);
        prop_assert_eq!(pcsr.num_edges(), el.num_edges());
    }

    /// The analytic replication factor matches the built partitioned CSR,
    /// and stays within [min(1, has-edges), |E|/|V|].
    #[test]
    fn replication_factor_bounds(el in arb_graph(), p in 1usize..8) {
        let set = PartitionSet::edge_balanced(&el.in_degrees(), p, PartitionBy::Destination);
        let r = replication::replication_factor(&el, &set);
        let built = PartitionedCsr::new(&el, &set);
        let expected = built.total_stored_vertices() as f64 / el.num_vertices() as f64;
        prop_assert!((r - expected).abs() < 1e-12);
        prop_assert!(r <= replication::worst_case_replication_factor(&el) + 1e-12);
    }

    /// GG-v2 BFS levels match the sequential oracle on random graphs.
    #[test]
    fn bfs_matches_reference(el in arb_graph()) {
        let engine = GraphGrind2::new(&el, small_config());
        let got = algorithms::bfs(&engine, 0);
        prop_assert_eq!(got.level, reference::bfs_levels(&el, 0));
    }

    /// The partition-parallel executor matches the oracle on random graphs
    /// (BFS levels exactly, CC labels exactly).
    #[test]
    fn partitioned_executor_matches_reference(el in arb_graph()) {
        use graphgrind::core::config::ExecutorKind;
        let cfg = Config {
            executor: ExecutorKind::Partitioned,
            ..small_config()
        };
        let engine = GraphGrind2::new(&el, cfg.clone());
        prop_assert_eq!(
            algorithms::bfs(&engine, 0).level,
            reference::bfs_levels(&el, 0)
        );
        let sym = symmetrize(&el);
        let engine = GraphGrind2::new(&sym, cfg);
        prop_assert_eq!(algorithms::cc(&engine).label, reference::cc_labels(&sym));
    }

    /// Chunk granularity is invisible in results: per-vertex chunks
    /// (cap 1, maximal chunking — every multi-edge destination becomes
    /// hub-split sub-chunks) and one-chunk-per-partition (cap unbounded)
    /// produce identical frontiers round by round on random graphs — BFS
    /// levels, parents and round counts, plus PageRank bits.
    #[test]
    fn chunk_cap_one_matches_unbounded(el in arb_graph(), p in 1usize..8) {
        use graphgrind::core::config::ExecutorKind;
        use graphgrind::core::Engine;
        let cfg = |chunk_edges: usize| Config {
            executor: ExecutorKind::Partitioned,
            num_partitions: p,
            numa: NumaTopology::new(1),
            chunk_edges: chunk_edges.into(),
            ..small_config()
        };
        let tiny = GraphGrind2::new(&el, cfg(1));
        let unbounded = GraphGrind2::new(&el, cfg(usize::MAX));
        let a = algorithms::bfs(&tiny, 0);
        let b = algorithms::bfs(&unbounded, 0);
        prop_assert_eq!(a.level, b.level);
        prop_assert_eq!(a.parent, b.parent);
        prop_assert_eq!(a.rounds, b.rounds);
        prop_assert_eq!(
            algorithms::pagerank(&tiny, 5),
            algorithms::pagerank(&unbounded, 5)
        );
        // Maximal chunking can only spawn more chunks, never fewer.
        prop_assert!(
            tiny.work_counters().chunks() >= unbounded.work_counters().chunks()
        );
    }

    /// The adaptive cap (`ChunkCap::Auto`) is bit-identical to every fixed
    /// cap in {1, 64, unbounded} on random graphs and random partition /
    /// thread shapes: BFS levels, parents and round counts, plus PageRank
    /// bits.
    #[test]
    fn adaptive_cap_matches_every_fixed_cap(
        el in arb_graph(),
        p in 1usize..8,
        threads in 1usize..4,
    ) {
        use graphgrind::core::config::{ChunkCap, ExecutorKind};
        let cfg = |cap: ChunkCap| Config {
            executor: ExecutorKind::Partitioned,
            num_partitions: p,
            numa: NumaTopology::new(1),
            chunk_edges: cap,
            threads,
            ..small_config()
        };
        let auto = GraphGrind2::new(&el, cfg(ChunkCap::Auto));
        let bfs_auto = algorithms::bfs(&auto, 0);
        let pr_auto = algorithms::pagerank(&auto, 5);
        for fixed in [1usize, 64, usize::MAX] {
            let engine = GraphGrind2::new(&el, cfg(ChunkCap::Fixed(fixed)));
            let bfs = algorithms::bfs(&engine, 0);
            prop_assert_eq!(&bfs.level, &bfs_auto.level, "cap {}", fixed);
            prop_assert_eq!(&bfs.parent, &bfs_auto.parent, "cap {}", fixed);
            prop_assert_eq!(bfs.rounds, bfs_auto.rounds, "cap {}", fixed);
            prop_assert_eq!(
                algorithms::pagerank(&engine, 5),
                pr_auto.clone(),
                "cap {}", fixed
            );
        }
    }

    /// Mega-hub splitting is invisible in results: a random graph with an
    /// injected star hub (in-degree far above the cap, so its in-edge scan
    /// splits into partial-accumulator sub-chunks) matches the unsplit
    /// (unbounded-cap) run bit for bit on BFS, PageRank and Bellman-Ford.
    #[test]
    fn hub_split_partial_reduction_matches_unsplit_scan(
        el in arb_graph(),
        p in 1usize..6,
        hub_seed in 0u32..1000,
    ) {
        use graphgrind::core::config::{ChunkCap, ExecutorKind};
        use graphgrind::core::Engine;
        use graphgrind::graph::weights::attach_integer;

        // Inject a star: every vertex points at one hub destination, so
        // the hub's in-degree ≈ n dwarfs the tiny fixed cap below.
        let n = el.num_vertices();
        let hub = hub_seed % n as u32;
        let mut edges: Vec<(u32, u32)> = el.iter().collect();
        for s in 0..n as u32 {
            edges.push((s, hub));
        }
        let mut el = EdgeList::from_edges(n, &edges);
        attach_integer(&mut el, 12, 0xB0F ^ hub_seed as u64);

        let cfg = |cap: ChunkCap| Config {
            executor: ExecutorKind::Partitioned,
            num_partitions: p,
            numa: NumaTopology::new(1),
            chunk_edges: cap,
            ..small_config()
        };
        // Cap 4: the injected hub always splits (in-degree ≥ n ≥ 1 · · ·
        // sub-chunks engage whenever n > 4).
        let split = GraphGrind2::new(&el, cfg(ChunkCap::Fixed(4)));
        let unsplit = GraphGrind2::new(&el, cfg(ChunkCap::Fixed(usize::MAX)));

        let a = algorithms::bfs(&split, 0);
        let b = algorithms::bfs(&unsplit, 0);
        prop_assert_eq!(a.level, b.level);
        prop_assert_eq!(a.parent, b.parent);

        prop_assert_eq!(
            algorithms::pagerank(&split, 5),
            algorithms::pagerank(&unsplit, 5)
        );

        let bf_a = algorithms::bellman_ford(&split, 0);
        let bf_b = algorithms::bellman_ford(&unsplit, 0);
        prop_assert_eq!(bf_a.dist, bf_b.dist);

        if n > 4 {
            prop_assert!(
                split.work_counters().hub_subchunks() > 0,
                "the injected hub must have been split"
            );
        }
    }

    /// The associative pre-reduction path (`EdgeMapReduce`): PR, SpMV and
    /// Bellman-Ford on an injected star-hub graph are bit-identical across
    /// caps {1, 64, unbounded, Auto} and 1–4 threads — the per-quantum
    /// fold has absolute boundaries, so neither hub sub-chunk tiling nor
    /// the steal schedule can change a single f64 grouping.
    #[test]
    fn edge_map_reduce_bit_identical_across_caps_and_threads(
        el in arb_graph(),
        p in 1usize..6,
        threads in 1usize..=4,
        hub_seed in 0u32..1000,
    ) {
        use graphgrind::core::config::{ChunkCap, ExecutorKind};
        use graphgrind::graph::weights::attach_integer;

        // Inject a star: every vertex points at one hub destination, so
        // sub-chunk pre-reduction engages under the small fixed caps.
        let n = el.num_vertices();
        let hub = hub_seed % n as u32;
        let mut edges: Vec<(u32, u32)> = el.iter().collect();
        for s in 0..n as u32 {
            edges.push((s, hub));
        }
        let mut el = EdgeList::from_edges(n, &edges);
        attach_integer(&mut el, 12, 0x5EED ^ hub_seed as u64);
        let x: Vec<f64> = (0..n).map(|i| 1.0 / (i + 1) as f64).collect();

        let cfg = |cap: ChunkCap, threads: usize| Config {
            executor: ExecutorKind::Partitioned,
            num_partitions: p,
            numa: NumaTopology::new(1),
            chunk_edges: cap,
            threads,
            ..small_config()
        };
        // The unsplit reference scan: one chunk per partition, one thread.
        let reference = GraphGrind2::new(&el, cfg(ChunkCap::Fixed(usize::MAX), 1));
        let pr_ref = algorithms::pagerank(&reference, 5);
        let bf_ref = algorithms::bellman_ford(&reference, 0).dist;
        let spmv_ref = algorithms::spmv(&reference, &x);
        for cap in [
            ChunkCap::Fixed(1),
            ChunkCap::Fixed(64),
            ChunkCap::Fixed(usize::MAX),
            ChunkCap::Auto,
        ] {
            let engine = GraphGrind2::new(&el, cfg(cap, threads));
            prop_assert_eq!(
                algorithms::pagerank(&engine, 5),
                pr_ref.clone(),
                "PR {:?} x{}", cap, threads
            );
            prop_assert_eq!(
                algorithms::bellman_ford(&engine, 0).dist,
                bf_ref.clone(),
                "BF {:?} x{}", cap, threads
            );
            prop_assert_eq!(
                algorithms::spmv(&engine, &x),
                spmv_ref.clone(),
                "SpMV {:?} x{}", cap, threads
            );
        }
    }

    /// GG-v2 CC matches union-find on symmetrized random graphs.
    #[test]
    fn cc_matches_reference(el in arb_graph()) {
        let el = symmetrize(&el);
        let engine = GraphGrind2::new(&el, small_config());
        let got = algorithms::cc(&engine);
        prop_assert_eq!(got.label, reference::cc_labels(&el));
    }

    /// GG-v2 PageRank matches the sequential power method.
    #[test]
    fn pagerank_matches_reference(el in arb_graph()) {
        let engine = GraphGrind2::new(&el, small_config());
        let got = algorithms::pagerank(&engine, 5);
        let want = reference::pagerank(&el, 5);
        validate::assert_close_f64(&got, &want, 1e-9, 1e-14);
    }

    /// Frontier representations round-trip: sparse ↔ dense ↔ per-partition
    /// segments all describe the same active set with the same statistics.
    #[test]
    fn frontier_representations_roundtrip_through_segments(
        n in 1usize..400,
        seed in 0u64..1000,
        p in 1usize..9,
    ) {
        use graphgrind::core::Frontier;
        use graphgrind::core::frontier::{PartitionOutput, PartitionOutputData};
        use graphgrind::graph::bitmap::BitmapSegment;
        use graphgrind::graph::partition::{PartitionBy, PartitionSet};
        use graphgrind::runtime::counters::WorkCounters;

        let deg: Vec<u32> = (0..n as u32).map(|v| (v ^ seed as u32) % 7).collect();
        let actives: Vec<u32> = (0..n as u32)
            .filter(|v| (v.wrapping_mul(2654435761).wrapping_add(seed as u32)) % 3 == 0)
            .collect();
        let pool = graphgrind::runtime::pool::Pool::new(2);

        // sparse → dense → sparse.
        let sparse = Frontier::from_sparse(actives.clone(), n, &deg);
        let dense = Frontier::from_dense(sparse.to_bitmap(), &deg, &pool);
        prop_assert_eq!(dense.to_vertex_list(), actives.clone());

        // dense bitmap → per-partition segments → merged frontier.
        let set = PartitionSet::vertex_balanced(n, p, PartitionBy::Destination);
        let counters = WorkCounters::new();
        let seg_outputs: Vec<PartitionOutput> = (0..p)
            .map(|i| {
                let r = set.range(i);
                let local: Vec<u32> = actives
                    .iter()
                    .copied()
                    .filter(|&v| r.contains(&v))
                    .collect();
                PartitionOutput {
                    range: r.clone(),
                    data: PartitionOutputData::Dense(BitmapSegment::from_indices(
                        r.start as usize..r.end as usize,
                        &local,
                    )),
                }
            })
            .collect();
        let merged = Frontier::from_partition_outputs(seg_outputs, n, &deg, &counters, None);
        prop_assert_eq!(merged.to_vertex_list(), actives.clone());
        prop_assert_eq!(merged.len(), sparse.len());
        prop_assert_eq!(merged.degree_sum(), sparse.degree_sum());
        // segments → bitmap equals the direct densification.
        prop_assert_eq!(merged.to_bitmap(), sparse.to_bitmap());

        // per-partition sorted lists → merged frontier (the sparse-output
        // fast path): identical active set, zero dense-merge work.
        let counters = WorkCounters::new();
        let list_outputs: Vec<PartitionOutput> = (0..p)
            .map(|i| {
                let r = set.range(i);
                PartitionOutput {
                    range: r.clone(),
                    data: PartitionOutputData::Sparse(
                        actives.iter().copied().filter(|&v| r.contains(&v)).collect(),
                    ),
                }
            })
            .collect();
        let concat = Frontier::from_partition_outputs(list_outputs, n, &deg, &counters, None);
        prop_assert_eq!(concat.to_vertex_list(), actives.clone());
        prop_assert_eq!(concat.degree_sum(), sparse.degree_sum());
        prop_assert_eq!(counters.merge_words(), 0);
        prop_assert!(concat.is_sparse_repr() || actives.is_empty());

        // Mixed lists + segments still merge to the same set.
        let counters = WorkCounters::new();
        let mixed_outputs: Vec<PartitionOutput> = (0..p)
            .map(|i| {
                let r = set.range(i);
                let local: Vec<u32> = actives
                    .iter()
                    .copied()
                    .filter(|&v| r.contains(&v))
                    .collect();
                let data = if i % 2 == 0 {
                    PartitionOutputData::Sparse(local)
                } else {
                    PartitionOutputData::Dense(BitmapSegment::from_indices(
                        r.start as usize..r.end as usize,
                        &local,
                    ))
                };
                PartitionOutput { range: r, data }
            })
            .collect();
        let mixed = Frontier::from_partition_outputs(mixed_outputs, n, &deg, &counters, None);
        prop_assert_eq!(mixed.to_vertex_list(), actives);
    }

    /// Frontier statistics are consistent between representations.
    #[test]
    fn frontier_statistics_consistent(el in arb_graph(), seed in 0u64..1000) {
        use graphgrind::core::Frontier;
        let n = el.num_vertices();
        let deg = el.out_degrees();
        // Pseudo-random vertex subset.
        let actives: Vec<u32> = (0..n as u32)
            .filter(|v| (v.wrapping_mul(2654435761).wrapping_add(seed as u32)) % 3 == 0)
            .collect();
        let sparse = Frontier::from_sparse(actives.clone(), n, &deg);
        let pool = graphgrind::runtime::pool::Pool::new(2);
        let dense = Frontier::from_dense(sparse.to_bitmap(), &deg, &pool);
        prop_assert_eq!(sparse.len(), dense.len());
        prop_assert_eq!(sparse.degree_sum(), dense.degree_sum());
        prop_assert_eq!(sparse.density_metric(), dense.density_metric());
        prop_assert_eq!(sparse.to_vertex_list(), dense.to_vertex_list());
    }
}
