//! Partition-to-domain scheduling.
//!
//! Produces the order in which partitions are submitted to the pool so that
//! partitions belonging to the same (simulated) NUMA domain are processed
//! together — the portable analogue of §III.D's "edge traversal using the
//! dense operators are performed exclusively by CPU cores attached to the
//! NUMA domain that stores the graph partition".

use crate::numa::NumaTopology;

/// A static schedule of `num_partitions` partitions over a topology.
#[derive(Clone, Debug)]
pub struct PartitionSchedule {
    /// Partitions in submission order (domain-major).
    order: Vec<usize>,
    /// `domain_of[p]` = domain owning partition `p`.
    domain_of: Vec<usize>,
    domains: usize,
}

impl PartitionSchedule {
    /// Builds the domain-major schedule: domain 0's partitions first (in
    /// index order), then domain 1's, etc. With block assignment this is
    /// the identity permutation, but the schedule also carries the
    /// ownership map used for placement assertions.
    pub fn new(num_partitions: usize, numa: NumaTopology) -> Self {
        let domain_of: Vec<usize> = (0..num_partitions)
            .map(|p| numa.domain_of_partition(p, num_partitions))
            .collect();
        let mut order: Vec<usize> = (0..num_partitions).collect();
        order.sort_by_key(|&p| (domain_of[p], p));
        PartitionSchedule {
            order,
            domain_of,
            domains: numa.domains(),
        }
    }

    /// Partitions in submission order.
    #[inline]
    pub fn order(&self) -> &[usize] {
        &self.order
    }

    /// Domain owning partition `p`.
    #[inline]
    pub fn domain_of(&self, p: usize) -> usize {
        self.domain_of[p]
    }

    /// Number of partitions scheduled.
    #[inline]
    pub fn num_partitions(&self) -> usize {
        self.order.len()
    }

    /// Number of domains in the topology.
    #[inline]
    pub fn domains(&self) -> usize {
        self.domains
    }

    /// The partitions owned by `domain`, in index order.
    pub fn partitions_of_domain(&self, domain: usize) -> Vec<usize> {
        (0..self.domain_of.len())
            .filter(|&p| self.domain_of[p] == domain)
            .collect()
    }

    /// The submission order restricted to the partitions `keep` accepts,
    /// preserving domain-major order. The partitioned executor uses this to
    /// drop empty partitions before any work reaches the pool.
    pub fn order_filtered(&self, keep: impl Fn(usize) -> bool) -> Vec<usize> {
        self.order.iter().copied().filter(|&p| keep(p)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_covers_all_partitions_once() {
        let s = PartitionSchedule::new(13, NumaTopology::new(4));
        let mut sorted = s.order().to_vec();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..13).collect::<Vec<_>>());
    }

    #[test]
    fn domain_major_order() {
        let s = PartitionSchedule::new(8, NumaTopology::new(4));
        let domains: Vec<usize> = s.order().iter().map(|&p| s.domain_of(p)).collect();
        assert!(domains.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn per_domain_lists_are_disjoint_and_cover() {
        let s = PartitionSchedule::new(10, NumaTopology::new(3));
        let mut all: Vec<usize> = (0..3).flat_map(|d| s.partitions_of_domain(d)).collect();
        all.sort_unstable();
        assert_eq!(all, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn filtered_order_preserves_domain_majority() {
        let s = PartitionSchedule::new(8, NumaTopology::new(4));
        let kept = s.order_filtered(|p| p % 2 == 0);
        assert_eq!(kept, vec![0, 2, 4, 6]);
        let domains: Vec<usize> = kept.iter().map(|&p| s.domain_of(p)).collect();
        assert!(domains.windows(2).all(|w| w[0] <= w[1]));
        assert!(s.order_filtered(|_| false).is_empty());
    }

    #[test]
    fn single_domain_is_identity() {
        let s = PartitionSchedule::new(5, NumaTopology::new(1));
        assert_eq!(s.order(), &[0, 1, 2, 3, 4]);
        assert!((0..5).all(|p| s.domain_of(p) == 0));
    }
}
