//! Edge orderings for the COO layout (§IV.C).
//!
//! Within each COO partition the paper evaluates three sort orders:
//! by **source** (the order a CSR traversal visits edges), by
//! **destination** (CSC order) and by **Hilbert** space-filling-curve index.
//! Hilbert order is consistently fastest (up to 16.2 %) because it bounds
//! the working set of both endpoint arrays at every scale.

use crate::hilbert;
use crate::types::VertexId;

/// Sort order of edges inside a COO partition.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum EdgeOrder {
    /// Sorted by `(src, dst)` — the CSR traversal order.
    Source,
    /// Sorted by `(dst, src)` — the CSC traversal order.
    Destination,
    /// Sorted along the Hilbert curve of the adjacency matrix (the paper's
    /// preferred order for high partition counts).
    #[default]
    Hilbert,
}

impl EdgeOrder {
    /// Short label used in benchmark output ("Source" / "Destination" /
    /// "Hilbert", matching Figure 7's legend).
    pub fn label(self) -> &'static str {
        match self {
            EdgeOrder::Source => "Source",
            EdgeOrder::Destination => "Destination",
            EdgeOrder::Hilbert => "Hilbert",
        }
    }

    /// All orders, in Figure 7's presentation order.
    pub fn all() -> [EdgeOrder; 3] {
        [
            EdgeOrder::Source,
            EdgeOrder::Hilbert,
            EdgeOrder::Destination,
        ]
    }

    /// Parses a label back into an order. Accepts the exact [`label`]
    /// strings (trace round-trip) plus the lowercase CLI spellings
    /// `source` / `dest` / `destination` / `hilbert`.
    ///
    /// [`label`]: EdgeOrder::label
    pub fn from_label(s: &str) -> Option<EdgeOrder> {
        match s {
            "Source" | "source" => Some(EdgeOrder::Source),
            "Destination" | "destination" | "dest" => Some(EdgeOrder::Destination),
            "Hilbert" | "hilbert" => Some(EdgeOrder::Hilbert),
            _ => None,
        }
    }
}

/// Sorts edge *indices* `idx` (pointing into parallel `srcs`/`dsts` arrays)
/// according to `order`. The vertex-count parameter sizes the Hilbert grid.
pub fn sort_indices(
    idx: &mut [usize],
    srcs: &[VertexId],
    dsts: &[VertexId],
    num_vertices: usize,
    order: EdgeOrder,
) {
    match order {
        EdgeOrder::Source => idx.sort_unstable_by_key(|&e| (srcs[e], dsts[e])),
        EdgeOrder::Destination => idx.sort_unstable_by_key(|&e| (dsts[e], srcs[e])),
        EdgeOrder::Hilbert => {
            let k = hilbert::order_for(num_vertices);
            idx.sort_unstable_by_key(|&e| hilbert::edge_key(k, srcs[e], dsts[e]));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn source_order_sorts_by_src_then_dst() {
        let srcs = vec![2, 0, 2, 1];
        let dsts = vec![1, 3, 0, 2];
        let mut idx = vec![0, 1, 2, 3];
        sort_indices(&mut idx, &srcs, &dsts, 4, EdgeOrder::Source);
        let sorted: Vec<(u32, u32)> = idx.iter().map(|&e| (srcs[e], dsts[e])).collect();
        assert_eq!(sorted, vec![(0, 3), (1, 2), (2, 0), (2, 1)]);
    }

    #[test]
    fn destination_order_sorts_by_dst_then_src() {
        let srcs = vec![2, 0, 2, 1];
        let dsts = vec![1, 3, 0, 2];
        let mut idx = vec![0, 1, 2, 3];
        sort_indices(&mut idx, &srcs, &dsts, 4, EdgeOrder::Destination);
        let sorted: Vec<(u32, u32)> = idx.iter().map(|&e| (srcs[e], dsts[e])).collect();
        assert_eq!(sorted, vec![(2, 0), (2, 1), (1, 2), (0, 3)]);
    }

    #[test]
    fn hilbert_order_is_a_permutation() {
        let srcs: Vec<u32> = (0..50).map(|i| (i * 7) % 20).collect();
        let dsts: Vec<u32> = (0..50).map(|i| (i * 13) % 20).collect();
        let mut idx: Vec<usize> = (0..50).collect();
        sort_indices(&mut idx, &srcs, &dsts, 20, EdgeOrder::Hilbert);
        let mut check = idx.clone();
        check.sort_unstable();
        assert_eq!(check, (0..50).collect::<Vec<_>>());
        // Keys are non-decreasing along the sorted sequence.
        let k = crate::hilbert::order_for(20);
        let keys: Vec<u64> = idx
            .iter()
            .map(|&e| crate::hilbert::edge_key(k, srcs[e], dsts[e]))
            .collect();
        assert!(keys.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn labels_match_figure7_legend() {
        assert_eq!(
            EdgeOrder::all().map(|o| o.label()),
            ["Source", "Hilbert", "Destination"]
        );
    }

    #[test]
    fn labels_round_trip() {
        for o in EdgeOrder::all() {
            assert_eq!(EdgeOrder::from_label(o.label()), Some(o));
        }
        assert_eq!(EdgeOrder::from_label("dest"), Some(EdgeOrder::Destination));
        assert_eq!(EdgeOrder::from_label("hilbert"), Some(EdgeOrder::Hilbert));
        assert_eq!(EdgeOrder::from_label("source"), Some(EdgeOrder::Source));
        assert_eq!(EdgeOrder::from_label("zorder"), None);
    }
}
