//! Differential harness for the representation-polymorphic frontier
//! outputs.
//!
//! The traversal planner (`gg_core::plan`) pairs every partition's kernel
//! with an output representation — a sorted sparse vertex list or a
//! range-aligned dense bitmap segment — and the partition-order merge in
//! `Frontier::from_partition_outputs` promises the choice is invisible in
//! results. These tests pin that promise three ways:
//!
//! 1. **Bit-identity across representations**: BFS and Bellman-Ford with
//!    the sparse-output path forced on must match the dense-merge path
//!    byte for byte, over 1/2/7 partitions × 1–4 threads.
//! 2. **The merge floor is gone**: a traversal whose frontiers stay tiny
//!    (`≤ √|V|` active vertices every round) performs **zero** dense-merge
//!    work under the sparse-output path — asserted through the
//!    `WorkCounters::merge_words()` counter, which counts every
//!    `|V|`-proportional merge allocation and spliced segment word.
//! 3. **Mixed-representation iterations are observable**: on the
//!    density-skewed graph, `kernel_counts().output_snapshot()` records
//!    iterations in which some partitions emitted lists while others
//!    emitted segments.

use graphgrind::algorithms;
use graphgrind::core::config::{chunk_edges_from_env, ChunkCap, Config, ExecutorKind, OutputMode};
use graphgrind::core::engine::{Engine, GraphGrind2};
use graphgrind::graph::edge_list::EdgeList;
use graphgrind::graph::generators::{self, RmatParams};
use graphgrind::runtime::numa::NumaTopology;

const PARTITIONS: [usize; 3] = [1, 2, 7];
const THREADS: [usize; 3] = [1, 2, 4];

fn config(partitions: usize, threads: usize, output: OutputMode) -> Config {
    Config {
        threads,
        num_partitions: partitions,
        numa: NumaTopology::new(1),
        executor: ExecutorKind::Partitioned,
        output_mode: output,
        chunk_edges: chunk_edges_from_env().unwrap_or(ChunkCap::Auto),
        ..Config::default()
    }
}

/// Deterministic graphs covering the regimes the planner must handle:
/// skewed (dense rounds), high-diameter road grid (sparse rounds), and a
/// tree (pure frontier expansion).
fn graphs() -> Vec<(&'static str, EdgeList)> {
    vec![
        (
            "rmat-skewed",
            generators::rmat(8, 3000, RmatParams::skewed(), 7),
        ),
        ("grid-road", generators::grid_road(12, 12, 0.1, 9)),
        ("small-world", generators::small_world(300, 4, 0.1, 3)),
        ("binary-tree", generators::binary_tree(127)),
    ]
}

#[test]
fn bfs_bit_identical_between_output_representations() {
    for (name, el) in graphs() {
        let reference = algorithms::bfs(
            &GraphGrind2::new(&el, config(1, 1, OutputMode::ForceDense)),
            0,
        );
        for p in PARTITIONS {
            for t in THREADS {
                for mode in [
                    OutputMode::ForceSparse,
                    OutputMode::ForceDense,
                    OutputMode::Auto,
                ] {
                    let got = algorithms::bfs(&GraphGrind2::new(&el, config(p, t, mode)), 0);
                    assert_eq!(got.level, reference.level, "{name} P={p} T={t} {mode:?}");
                    assert_eq!(got.parent, reference.parent, "{name} P={p} T={t} {mode:?}");
                    assert_eq!(got.rounds, reference.rounds, "{name} P={p} T={t} {mode:?}");
                }
            }
        }
    }
}

#[test]
fn bellman_ford_bit_identical_between_output_representations() {
    for (name, el) in graphs() {
        let mut el = el;
        graphgrind::graph::weights::attach_integer(&mut el, 12, 0xBF);
        let reference = algorithms::bellman_ford(
            &GraphGrind2::new(&el, config(1, 1, OutputMode::ForceDense)),
            0,
        );
        for p in PARTITIONS {
            for t in THREADS {
                let sparse = algorithms::bellman_ford(
                    &GraphGrind2::new(&el, config(p, t, OutputMode::ForceSparse)),
                    0,
                );
                let dense = algorithms::bellman_ford(
                    &GraphGrind2::new(&el, config(p, t, OutputMode::ForceDense)),
                    0,
                );
                // f32 distances compare bitwise: every candidate is a
                // path-prefix sum (fixed accumulation order), and the
                // converged minimum is representation-independent.
                assert_eq!(sparse.dist, dense.dist, "{name} P={p} T={t}");
                assert_eq!(sparse.dist, reference.dist, "{name} P={p} T={t} vs seq");
                // Bellman-Ford's update reads source distances another
                // partition may be rewriting mid-round, so the *round
                // count* is schedule-dependent under concurrency (like
                // CC's); it is pinned only where the schedule is serial.
                if t == 1 {
                    assert_eq!(sparse.rounds, dense.rounds, "{name} P={p} T=1");
                }
            }
        }
    }
}

/// Acceptance criterion: a round whose next frontier has `≤ √|V|` active
/// vertices performs no `O(|V|)`-proportional merge work. On a path graph
/// every BFS frontier is a single vertex, so under the sparse-output path
/// (forced *or* auto-planned) the entire traversal must record **zero**
/// dense-merge words, while the forced dense path pays the floor every
/// round.
#[test]
fn sparse_rounds_pay_no_dense_merge_work() {
    let el = generators::path(400);
    for mode in [OutputMode::ForceSparse, OutputMode::Auto] {
        let engine = GraphGrind2::new(&el, config(7, 2, mode));
        let r = algorithms::bfs(&engine, 0);
        assert_eq!(r.rounds, 400, "{mode:?}: path BFS runs |V| rounds");
        // Every frontier of the run had exactly 1 ≤ √400 active vertices.
        assert_eq!(
            engine.work_counters().merge_words(),
            0,
            "{mode:?}: tiny frontiers must never pay a dense merge"
        );
        let (out_sparse, out_dense, _) = engine.kernel_counts().output_snapshot();
        assert!(out_sparse > 0, "{mode:?}: sparse outputs must be planned");
        assert_eq!(out_dense, 0, "{mode:?}: no partition may emit a segment");
    }

    // The forced dense path pays the |V|-proportional floor every round —
    // the behaviour PR 2 hard-coded, kept reachable for comparison.
    let engine = GraphGrind2::new(&el, config(7, 2, OutputMode::ForceDense));
    let r = algorithms::bfs(&engine, 0);
    let words_per_round = 400u64.div_ceil(64);
    assert!(
        engine.work_counters().merge_words() >= (r.rounds as u64 - 1) * words_per_round,
        "forced dense merge must pay the floor: {} words over {} rounds",
        engine.work_counters().merge_words(),
        r.rounds
    );
}

/// On the density-skewed graph one edge map plans sparse outputs for the
/// quiet tail partitions and dense segments for the saturated block
/// partitions — a mixed-representation iteration, observable through
/// `output_snapshot`, with results still bit-identical to the sequential
/// engine.
#[test]
fn skewed_graph_mixes_output_representations_and_stays_bit_identical() {
    let mut el = EdgeList::new(64);
    for i in 0..16u32 {
        for j in 0..16u32 {
            if i != j {
                el.push(i, j);
            }
        }
    }
    el.push(8, 16);
    for i in 16..63u32 {
        el.push(i, i + 1);
    }

    let seq = algorithms::bfs(
        &GraphGrind2::new(&el, config(1, 1, OutputMode::ForceDense)),
        0,
    );
    let engine = GraphGrind2::new(&el, config(7, 2, OutputMode::Auto));
    let got = algorithms::bfs(&engine, 0);
    assert_eq!(got.level, seq.level);
    assert_eq!(got.parent, seq.parent);

    let (out_sparse, out_dense, mixed) = engine.kernel_counts().output_snapshot();
    assert!(
        out_sparse > 0 && out_dense > 0,
        "both representations must appear: sparse={out_sparse} dense={out_dense}"
    );
    assert!(
        mixed >= 1,
        "at least one iteration must mix representations, got {mixed}"
    );
    // Output selections mirror kernel selections under Auto.
    let (k_sparse, k_dense, _) = engine.kernel_counts().partition_snapshot();
    assert_eq!((out_sparse, out_dense), (k_sparse, k_dense));
}

/// The planner's output-size estimate (ROADMAP follow-up): every vertex
/// points at one hub destination, so the all-active frontier classifies
/// the hub partition *dense* — but the pruned CSR stores exactly one
/// distinct destination, a provable output bound, so under
/// `OutputMode::Auto` the partition emits a sorted list anyway and the
/// whole run stays off the dense-merge floor.
#[test]
fn provably_small_outputs_emit_sparse_lists_under_auto() {
    let mut el = EdgeList::new(512);
    for i in 0..512u32 {
        if i != 300 {
            el.push(i, 300);
        }
    }
    let seq = algorithms::pagerank(
        &GraphGrind2::new(&el, config(1, 1, OutputMode::ForceDense)),
        10,
    );
    let engine = GraphGrind2::new(&el, config(2, 2, OutputMode::Auto));
    let got = algorithms::pagerank(&engine, 10);
    assert_eq!(
        got, seq,
        "estimate-driven sparse lists must not change results"
    );

    let (_, k_dense, _) = engine.kernel_counts().partition_snapshot();
    assert!(k_dense > 0, "the hub partition must classify dense");
    let (out_sparse, out_dense, _) = engine.kernel_counts().output_snapshot();
    assert!(
        out_sparse > 0 && out_dense == 0,
        "the candidate-count estimate must emit lists: sparse={out_sparse} dense={out_dense}"
    );
    assert_eq!(
        engine.work_counters().merge_words(),
        0,
        "all-sparse rounds must never pay the dense-merge floor"
    );
}

/// Forced modes plan every partition onto one representation, whatever
/// the kernels decide.
#[test]
fn forced_modes_pin_every_partition() {
    let el = generators::rmat(8, 3000, RmatParams::skewed(), 7);
    for (mode, expect_sparse) in [
        (OutputMode::ForceSparse, true),
        (OutputMode::ForceDense, false),
    ] {
        let engine = GraphGrind2::new(&el, config(7, 2, mode));
        let _ = algorithms::bfs(&engine, 0);
        let (out_sparse, out_dense, mixed) = engine.kernel_counts().output_snapshot();
        assert_eq!(mixed, 0, "{mode:?} must never mix");
        if expect_sparse {
            assert!(out_sparse > 0 && out_dense == 0, "{mode:?}");
        } else {
            assert!(out_dense > 0 && out_sparse == 0, "{mode:?}");
        }
    }
}
