//! Mutable edge-list representation used as the construction front-end for
//! every other layout.
//!
//! An [`EdgeList`] is the neutral interchange format: generators produce it,
//! I/O reads and writes it, and [`Csr`](crate::csr::Csr) /
//! [`Csc`](crate::csc::Csc) / [`Coo`](crate::coo::Coo) are built from it.
//! Edges may carry optional `f32` weights (needed by Bellman–Ford, SPMV and
//! belief propagation).

use crate::types::{Edge, VertexId};

/// A growable list of directed edges over a fixed vertex set `0..n`.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct EdgeList {
    num_vertices: usize,
    srcs: Vec<VertexId>,
    dsts: Vec<VertexId>,
    weights: Option<Vec<f32>>,
}

impl EdgeList {
    /// Creates an empty edge list over `num_vertices` vertices.
    pub fn new(num_vertices: usize) -> Self {
        EdgeList {
            num_vertices,
            ..Default::default()
        }
    }

    /// Creates an empty edge list with capacity for `cap` edges.
    pub fn with_capacity(num_vertices: usize, cap: usize) -> Self {
        EdgeList {
            num_vertices,
            srcs: Vec::with_capacity(cap),
            dsts: Vec::with_capacity(cap),
            weights: None,
        }
    }

    /// Builds an edge list from `(src, dst)` pairs.
    ///
    /// # Panics
    /// Panics if any endpoint is `>= num_vertices`.
    pub fn from_edges(num_vertices: usize, edges: &[Edge]) -> Self {
        let mut el = EdgeList::with_capacity(num_vertices, edges.len());
        for &(u, v) in edges {
            el.push(u, v);
        }
        el
    }

    /// Builds a weighted edge list from `(src, dst, w)` triples.
    pub fn from_weighted_edges(num_vertices: usize, edges: &[(VertexId, VertexId, f32)]) -> Self {
        let mut el = EdgeList::with_capacity(num_vertices, edges.len());
        for &(u, v, w) in edges {
            el.push_weighted(u, v, w);
        }
        el
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Number of edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.srcs.len()
    }

    /// True when there are no edges.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.srcs.is_empty()
    }

    /// True when edges carry weights.
    #[inline]
    pub fn is_weighted(&self) -> bool {
        self.weights.is_some()
    }

    /// Appends an unweighted edge.
    ///
    /// # Panics
    /// Panics if an endpoint is out of range, or if the list already carries
    /// weights (mixing weighted and unweighted pushes is a logic error).
    #[inline]
    pub fn push(&mut self, src: VertexId, dst: VertexId) {
        assert!((src as usize) < self.num_vertices, "src out of range");
        assert!((dst as usize) < self.num_vertices, "dst out of range");
        assert!(self.weights.is_none(), "push on weighted edge list");
        self.srcs.push(src);
        self.dsts.push(dst);
    }

    /// Appends a weighted edge.
    #[inline]
    pub fn push_weighted(&mut self, src: VertexId, dst: VertexId, w: f32) {
        assert!((src as usize) < self.num_vertices, "src out of range");
        assert!((dst as usize) < self.num_vertices, "dst out of range");
        if self.weights.is_none() {
            assert!(
                self.srcs.is_empty(),
                "push_weighted on unweighted edge list"
            );
            self.weights = Some(Vec::new());
        }
        self.srcs.push(src);
        self.dsts.push(dst);
        self.weights.as_mut().unwrap().push(w);
    }

    /// Source endpoints, aligned with [`dsts`](Self::dsts).
    #[inline]
    pub fn srcs(&self) -> &[VertexId] {
        &self.srcs
    }

    /// Destination endpoints, aligned with [`srcs`](Self::srcs).
    #[inline]
    pub fn dsts(&self) -> &[VertexId] {
        &self.dsts
    }

    /// Edge weights if present, aligned with the endpoint arrays.
    #[inline]
    pub fn weights(&self) -> Option<&[f32]> {
        self.weights.as_deref()
    }

    /// The `i`-th edge.
    #[inline]
    pub fn edge(&self, i: usize) -> Edge {
        (self.srcs[i], self.dsts[i])
    }

    /// Weight of the `i`-th edge (1.0 when unweighted).
    #[inline]
    pub fn weight(&self, i: usize) -> f32 {
        self.weights.as_ref().map_or(1.0, |w| w[i])
    }

    /// Iterates `(src, dst)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = Edge> + '_ {
        self.srcs.iter().copied().zip(self.dsts.iter().copied())
    }

    /// Iterates `(src, dst, weight)` triples (weight 1.0 when unweighted).
    pub fn iter_weighted(&self) -> impl Iterator<Item = (VertexId, VertexId, f32)> + '_ {
        (0..self.num_edges()).map(move |i| (self.srcs[i], self.dsts[i], self.weight(i)))
    }

    /// Out-degree of every vertex.
    pub fn out_degrees(&self) -> Vec<u32> {
        let mut deg = vec![0u32; self.num_vertices];
        for &u in &self.srcs {
            deg[u as usize] += 1;
        }
        deg
    }

    /// In-degree of every vertex.
    pub fn in_degrees(&self) -> Vec<u32> {
        let mut deg = vec![0u32; self.num_vertices];
        for &v in &self.dsts {
            deg[v as usize] += 1;
        }
        deg
    }

    /// Attaches uniform random weights in `[lo, hi)`, replacing any existing
    /// weights. See [`crate::weights`] for generators.
    pub fn set_weights(&mut self, weights: Vec<f32>) {
        assert_eq!(weights.len(), self.num_edges());
        self.weights = Some(weights);
    }

    /// Drops weights, making the list unweighted.
    pub fn clear_weights(&mut self) {
        self.weights = None;
    }

    /// Gathers edges by index: the edge at old position `perm[i]` moves to
    /// position `i`. `perm` may select a subset (used by dedup and
    /// self-loop removal) but every index must be in range.
    pub fn permute(&mut self, perm: &[usize]) {
        self.srcs = perm.iter().map(|&i| self.srcs[i]).collect();
        self.dsts = perm.iter().map(|&i| self.dsts[i]).collect();
        if let Some(w) = &self.weights {
            self.weights = Some(perm.iter().map(|&i| w[i]).collect());
        }
    }

    /// Sorts edges by `(src, dst)` and removes exact duplicates (keeping the
    /// first-inserted weight of each duplicate group). Self-loops are
    /// retained.
    pub fn sort_and_dedup(&mut self) {
        let m = self.num_edges();
        let mut idx: Vec<usize> = (0..m).collect();
        // Stable sort so the earliest-inserted duplicate survives dedup.
        idx.sort_by_key(|&i| (self.srcs[i], self.dsts[i]));
        idx.dedup_by_key(|i| (self.srcs[*i], self.dsts[*i]));
        self.permute(&idx);
    }

    /// Removes self-loops in place, preserving edge order.
    pub fn remove_self_loops(&mut self) {
        let keep: Vec<usize> = (0..self.num_edges())
            .filter(|&i| self.srcs[i] != self.dsts[i])
            .collect();
        self.permute(&keep);
    }

    /// Validates internal invariants; returns a human-readable error.
    pub fn validate(&self) -> Result<(), String> {
        if self.srcs.len() != self.dsts.len() {
            return Err("src/dst length mismatch".into());
        }
        if let Some(w) = &self.weights {
            if w.len() != self.srcs.len() {
                return Err("weight length mismatch".into());
            }
        }
        for i in 0..self.num_edges() {
            let (u, v) = self.edge(i);
            if u as usize >= self.num_vertices || v as usize >= self.num_vertices {
                return Err(format!("edge {i} = ({u},{v}) out of range"));
            }
        }
        Ok(())
    }
}

impl FromIterator<Edge> for EdgeList {
    /// Collects edges, inferring the vertex count from the maximum endpoint.
    fn from_iter<I: IntoIterator<Item = Edge>>(iter: I) -> Self {
        let edges: Vec<Edge> = iter.into_iter().collect();
        let n = crate::types::implied_vertex_count(edges.iter().copied());
        EdgeList::from_edges(n, &edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> EdgeList {
        EdgeList::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)])
    }

    #[test]
    fn basic_accessors() {
        let el = sample();
        assert_eq!(el.num_vertices(), 4);
        assert_eq!(el.num_edges(), 5);
        assert_eq!(el.edge(4), (0, 2));
        assert_eq!(el.weight(4), 1.0);
        assert!(!el.is_weighted());
        el.validate().unwrap();
    }

    #[test]
    fn degrees() {
        let el = sample();
        assert_eq!(el.out_degrees(), vec![2, 1, 1, 1]);
        assert_eq!(el.in_degrees(), vec![1, 1, 2, 1]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn push_out_of_range_panics() {
        let mut el = EdgeList::new(2);
        el.push(0, 2);
    }

    #[test]
    fn weighted_roundtrip() {
        let el = EdgeList::from_weighted_edges(3, &[(0, 1, 0.5), (1, 2, 2.0)]);
        assert!(el.is_weighted());
        assert_eq!(el.weight(0), 0.5);
        assert_eq!(el.weight(1), 2.0);
        let triples: Vec<_> = el.iter_weighted().collect();
        assert_eq!(triples, vec![(0, 1, 0.5), (1, 2, 2.0)]);
    }

    #[test]
    #[should_panic(expected = "weighted")]
    fn mixing_weighted_unweighted_panics() {
        let mut el = EdgeList::new(3);
        el.push(0, 1);
        el.push_weighted(1, 2, 1.0);
    }

    #[test]
    fn sort_and_dedup_removes_duplicates() {
        let mut el = EdgeList::from_edges(3, &[(1, 2), (0, 1), (1, 2), (0, 1), (2, 0)]);
        el.sort_and_dedup();
        let edges: Vec<_> = el.iter().collect();
        assert_eq!(edges, vec![(0, 1), (1, 2), (2, 0)]);
    }

    #[test]
    fn dedup_keeps_first_weight() {
        let mut el = EdgeList::from_weighted_edges(3, &[(1, 2, 9.0), (0, 1, 1.0), (1, 2, 7.0)]);
        el.sort_and_dedup();
        assert_eq!(el.num_edges(), 2);
        assert_eq!(el.edge(1), (1, 2));
        assert_eq!(el.weight(1), 9.0);
    }

    #[test]
    fn remove_self_loops_preserves_order() {
        let mut el = EdgeList::from_edges(3, &[(0, 0), (0, 1), (1, 1), (1, 2)]);
        el.remove_self_loops();
        let edges: Vec<_> = el.iter().collect();
        assert_eq!(edges, vec![(0, 1), (1, 2)]);
    }

    #[test]
    fn permute_reorders_weights() {
        let mut el = EdgeList::from_weighted_edges(3, &[(0, 1, 1.0), (1, 2, 2.0), (2, 0, 3.0)]);
        el.permute(&[2, 0, 1]);
        assert_eq!(el.edge(0), (2, 0));
        assert_eq!(el.weight(0), 3.0);
        assert_eq!(el.weight(1), 1.0);
    }

    #[test]
    fn from_iterator_infers_n() {
        let el: EdgeList = vec![(0u32, 5u32), (3, 2)].into_iter().collect();
        assert_eq!(el.num_vertices(), 6);
        assert_eq!(el.num_edges(), 2);
    }
}
