//! Watts–Strogatz small-world generator: a ring lattice with random
//! rewiring. Useful for locality experiments because the unrewired graph
//! has perfect spatial locality and the rewiring probability dials in
//! controlled amounts of irregularity.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::edge_list::EdgeList;

/// Generates a directed small-world graph: each vertex connects to its `k`
/// clockwise ring successors, and each such edge is rewired to a uniformly
/// random destination with probability `beta`.
pub fn small_world(n: usize, k: usize, beta: f64, seed: u64) -> EdgeList {
    assert!(n > 1, "need at least two vertices");
    assert!(k >= 1 && k < n, "k out of range");
    assert!((0.0..=1.0).contains(&beta));
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut el = EdgeList::with_capacity(n, n * k);
    for u in 0..n {
        for j in 1..=k {
            let v = if rng.gen::<f64>() < beta {
                // Rewire anywhere except the source itself.
                let mut t = rng.gen_range(0..n - 1);
                if t >= u {
                    t += 1;
                }
                t
            } else {
                (u + j) % n
            };
            el.push(u as u32, v as u32);
        }
    }
    el
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_when_beta_zero() {
        let el = small_world(10, 2, 0.0, 0);
        assert_eq!(el.num_edges(), 20);
        for (u, v) in el.iter() {
            let diff = (v as i64 - u as i64).rem_euclid(10);
            assert!(diff == 1 || diff == 2, "({u},{v})");
        }
    }

    #[test]
    fn full_rewiring_spreads_edges() {
        let el = small_world(100, 4, 1.0, 3);
        // Some edge should land far from the ring neighbourhood.
        let far = el
            .iter()
            .any(|(u, v)| (v as i64 - u as i64).rem_euclid(100) > 10);
        assert!(far);
        // No self-loops by construction.
        assert!(el.iter().all(|(u, v)| u != v));
    }

    #[test]
    fn deterministic() {
        assert_eq!(small_world(50, 3, 0.2, 4), small_world(50, 3, 0.2, 4));
    }
}
