//! Engine construction and algorithm dispatch for the experiments.

use gg_algorithms::{Algorithm, BpParams, PrDeltaParams};
use gg_baselines::{GraphGrind1, Ligra, Polymer};
use gg_core::config::{ChunkCap, Config, ExecutorKind, ForcedKernel, LayoutPolicy, OutputMode};
use gg_core::engine::{Engine, GraphGrind2};
use gg_graph::edge_list::EdgeList;
use gg_graph::ops::{symmetrize, transpose};
use gg_graph::properties::GraphStats;
use gg_runtime::numa::NumaTopology;

/// The four systems of Figure 9/10.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum EngineKind {
    /// Ligra (L).
    Ligra,
    /// Polymer (P).
    Polymer,
    /// GraphGrind-v1 (GG-v1).
    Gg1,
    /// GraphGrind-v2 (GG-v2) — this paper.
    Gg2,
}

impl EngineKind {
    /// All engines in the paper's legend order (L, P, GG-v1, GG-v2).
    pub fn all() -> [EngineKind; 4] {
        [
            EngineKind::Ligra,
            EngineKind::Polymer,
            EngineKind::Gg1,
            EngineKind::Gg2,
        ]
    }

    /// Legend label.
    pub fn label(self) -> &'static str {
        match self {
            EngineKind::Ligra => "L",
            EngineKind::Polymer => "P",
            EngineKind::Gg1 => "GG-v1",
            EngineKind::Gg2 => "GG-v2",
        }
    }
}

/// Per-run knobs.
#[derive(Clone, Debug)]
pub struct RunConfig {
    /// Worker threads.
    pub threads: usize,
    /// GG-v2 partition count (the paper's default sweet spot is 384).
    pub partitions: usize,
    /// GG-v2 COO layout policy: a fixed edge order (`repro --order
    /// source|dest|hilbert`) or the memsim layout advisor.
    pub layout: LayoutPolicy,
    /// GG-v2 forced kernel (Figure 5/6 ablations; monolithic path only).
    pub force: Option<ForcedKernel>,
    /// GG-v2 "+a" dense path.
    pub use_atomics: bool,
    /// GG-v2 execution path (`repro --executor partitioned` routes edge
    /// maps through the partition-parallel executor).
    pub executor: ExecutorKind,
    /// GG-v2 output-representation policy (`repro --output sparse|dense`
    /// forces the planner's per-partition output buffers).
    pub output: OutputMode,
    /// GG-v2 work-stealing chunk-cap policy (`repro --chunk N|max|auto`;
    /// `Fixed(usize::MAX)` = one chunk per partition, `Auto` = adaptive
    /// per-partition cap).
    pub chunk_edges: ChunkCap,
}

impl RunConfig {
    /// Default configuration at `threads` threads.
    pub fn new(threads: usize) -> Self {
        RunConfig {
            threads,
            partitions: 384,
            layout: LayoutPolicy::default(),
            force: None,
            use_atomics: false,
            executor: ExecutorKind::Monolithic,
            output: OutputMode::Auto,
            chunk_edges: ChunkCap::Auto,
        }
    }

    fn gg2_config(&self) -> Config {
        let mut cfg = Config {
            threads: self.threads,
            num_partitions: self.partitions,
            numa: NumaTopology::paper_machine(),
            layout: self.layout,
            use_atomics_dense: self.use_atomics,
            executor: self.executor,
            output_mode: self.output,
            chunk_edges: self.chunk_edges,
            ..Config::default()
        };
        if let Some(f) = self.force {
            cfg = cfg.with_forced(f);
        }
        cfg
    }
}

/// A fully prepared input for one (graph, algorithm) cell: weights,
/// auxiliary vectors and the transpose where needed.
pub struct Workload {
    /// The (possibly weighted / symmetrized) edge list the engine runs on.
    pub el: EdgeList,
    /// Transposed edge list (BC only).
    pub el_t: Option<EdgeList>,
    /// BP priors.
    pub priors: Vec<f64>,
    /// SPMV input vector.
    pub x: Vec<f64>,
    /// Traversal source (max-out-degree vertex, so BFS/BC/BF reach a large
    /// fraction of skewed graphs).
    pub source: u32,
    /// The algorithm this workload was prepared for.
    pub algo: Algorithm,
}

impl Workload {
    /// Prepares the input for `algo`: attaches weights for BF/SPMV,
    /// symmetrizes for CC, transposes for BC, and derives priors / vectors
    /// deterministically.
    pub fn prepare(base: &EdgeList, algo: Algorithm) -> Workload {
        let mut el = match algo {
            Algorithm::Cc => {
                if GraphStats::compute(base).symmetric {
                    base.clone()
                } else {
                    symmetrize(base)
                }
            }
            _ => base.clone(),
        };
        match algo {
            Algorithm::Bf => gg_graph::weights::attach_integer(&mut el, 16, 0xB0F),
            Algorithm::Spmv => gg_graph::weights::attach_uniform(&mut el, 0.1, 1.0, 0x57),
            _ => {}
        }
        let el_t = matches!(algo, Algorithm::Bc).then(|| transpose(&el));
        let n = el.num_vertices();
        let deg = el.out_degrees();
        let source = (0..n as u32).max_by_key(|&v| deg[v as usize]).unwrap_or(0);
        Workload {
            priors: gg_algorithms::bp::random_priors(n, 0xBE11EF),
            x: (0..n).map(|i| 1.0 / (i + 1) as f64).collect(),
            el,
            el_t,
            source,
            algo,
        }
    }
}

/// Canonical result vectors of one algorithm run, used by the smoke
/// differential (`repro smoke`) to compare executors and output
/// representations.
///
/// `ints` holds order-independent integer outputs (BFS/BC levels, CC
/// labels) that must agree **exactly** across every configuration;
/// `floats` holds floating-point outputs whose accumulation order differs
/// between the monolithic kernels (COO/CSR order) and the partitioned
/// kernels (CSC order), so cross-*executor* agreement is to tolerance —
/// but cross-*representation* agreement (sparse vs dense output buffers
/// on the same executor) is bitwise.
#[derive(Clone, Debug, PartialEq)]
pub struct AlgoOutput {
    /// Exactly comparable integer outputs.
    pub ints: Vec<u64>,
    /// Floating-point outputs (compared bitwise or to tolerance, per the
    /// caller's contract).
    pub floats: Vec<f64>,
}

impl AlgoOutput {
    /// Maximum relative error between the float vectors (0.0 when both are
    /// empty; infinite on length mismatch).
    pub fn max_rel_error(&self, other: &AlgoOutput) -> f64 {
        if self.floats.len() != other.floats.len() {
            return f64::INFINITY;
        }
        self.floats
            .iter()
            .zip(&other.floats)
            .map(|(a, b)| {
                let scale = a.abs().max(b.abs()).max(1e-30);
                (a - b).abs() / scale
            })
            .fold(0.0, f64::max)
    }
}

/// Runs one (already-built) engine on the workload once and returns the
/// canonical output vectors. `bwd` must be an engine over the transpose
/// for BC (ignored otherwise).
pub fn run_algorithm_output<E: Engine>(fwd: &E, bwd: Option<&E>, w: &Workload) -> AlgoOutput {
    match w.algo {
        Algorithm::Bfs => {
            let r = gg_algorithms::bfs(fwd, w.source);
            AlgoOutput {
                ints: r.level.iter().map(|&l| l as u64).collect(),
                floats: Vec::new(),
            }
        }
        Algorithm::Bc => {
            let bwd = bwd.expect("BC needs a transpose engine");
            let r = gg_algorithms::bc(fwd, bwd, w.source);
            AlgoOutput {
                ints: r.level.iter().map(|&l| l as u64).collect(),
                floats: r.sigma.iter().chain(&r.dependency).copied().collect(),
            }
        }
        Algorithm::Cc => {
            let r = gg_algorithms::cc(fwd);
            AlgoOutput {
                ints: r.label.iter().map(|&l| l as u64).collect(),
                floats: Vec::new(),
            }
        }
        Algorithm::Pr => AlgoOutput {
            ints: Vec::new(),
            floats: gg_algorithms::pagerank(fwd, 10),
        },
        Algorithm::PrDelta => AlgoOutput {
            ints: Vec::new(),
            floats: gg_algorithms::pagerank_delta(fwd, PrDeltaParams::default()).rank,
        },
        Algorithm::Spmv => AlgoOutput {
            ints: Vec::new(),
            floats: gg_algorithms::spmv(fwd, &w.x),
        },
        Algorithm::Bf => {
            let r = gg_algorithms::bellman_ford(fwd, w.source);
            AlgoOutput {
                ints: Vec::new(),
                floats: r.dist.iter().map(|&d| d as f64).collect(),
            }
        }
        Algorithm::Bp => AlgoOutput {
            ints: Vec::new(),
            floats: gg_algorithms::bp(fwd, &w.priors, BpParams::default()),
        },
    }
}

/// Builds a GG-v2 engine pair (forward + BC transpose) for `rc` and runs
/// the workload once, returning the canonical outputs.
pub fn gg2_output(w: &Workload, rc: &RunConfig) -> AlgoOutput {
    let cfg = rc.gg2_config();
    let fwd = GraphGrind2::new(&w.el, cfg.clone());
    let bwd = w.el_t.as_ref().map(|t| GraphGrind2::new(t, cfg.clone()));
    run_algorithm_output(&fwd, bwd.as_ref(), w)
}

/// Runs one (already-built) engine on the workload once. `bwd` must be an
/// engine over the transpose for BC (ignored otherwise).
pub fn run_algorithm<E: Engine>(fwd: &E, bwd: Option<&E>, w: &Workload) {
    match w.algo {
        Algorithm::Bfs => {
            let _ = gg_algorithms::bfs(fwd, w.source);
        }
        Algorithm::Bc => {
            let bwd = bwd.expect("BC needs a transpose engine");
            let _ = gg_algorithms::bc(fwd, bwd, w.source);
        }
        Algorithm::Cc => {
            let _ = gg_algorithms::cc(fwd);
        }
        Algorithm::Pr => {
            let _ = gg_algorithms::pagerank(fwd, 10);
        }
        Algorithm::PrDelta => {
            let _ = gg_algorithms::pagerank_delta(fwd, PrDeltaParams::default());
        }
        Algorithm::Spmv => {
            let _ = gg_algorithms::spmv(fwd, &w.x);
        }
        Algorithm::Bf => {
            let _ = gg_algorithms::bellman_ford(fwd, w.source);
        }
        Algorithm::Bp => {
            let _ = gg_algorithms::bp(fwd, &w.priors, BpParams::default());
        }
    }
}

/// Builds the requested engine (and transpose engine when BC requires it)
/// and returns the median wall-clock seconds of `reps` algorithm runs.
/// Engine construction is not timed, matching the paper's methodology.
pub fn measure(kind: EngineKind, w: &Workload, rc: &RunConfig, reps: usize) -> f64 {
    match kind {
        EngineKind::Ligra => {
            let fwd = Ligra::new(&w.el, rc.threads);
            let bwd = w.el_t.as_ref().map(|t| Ligra::new(t, rc.threads));
            crate::time_median(reps, || run_algorithm(&fwd, bwd.as_ref(), w))
        }
        EngineKind::Polymer => {
            let fwd = Polymer::paper_default(&w.el, rc.threads);
            let bwd = w
                .el_t
                .as_ref()
                .map(|t| Polymer::paper_default(t, rc.threads));
            crate::time_median(reps, || run_algorithm(&fwd, bwd.as_ref(), w))
        }
        EngineKind::Gg1 => {
            let fwd = GraphGrind1::paper_default(&w.el, rc.threads);
            let bwd = w
                .el_t
                .as_ref()
                .map(|t| GraphGrind1::paper_default(t, rc.threads));
            crate::time_median(reps, || run_algorithm(&fwd, bwd.as_ref(), w))
        }
        EngineKind::Gg2 => {
            let cfg = rc.gg2_config();
            let fwd = GraphGrind2::new(&w.el, cfg.clone());
            let bwd = w.el_t.as_ref().map(|t| GraphGrind2::new(t, cfg.clone()));
            crate::time_median(reps, || run_algorithm(&fwd, bwd.as_ref(), w))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gg_graph::generators;

    fn tiny_graph() -> EdgeList {
        generators::rmat(8, 2000, generators::RmatParams::skewed(), 99)
    }

    #[test]
    fn workload_prepares_per_algorithm() {
        let base = tiny_graph();
        let bf = Workload::prepare(&base, Algorithm::Bf);
        assert!(bf.el.is_weighted());
        let cc = Workload::prepare(&base, Algorithm::Cc);
        assert!(GraphStats::compute(&cc.el).symmetric);
        let bc = Workload::prepare(&base, Algorithm::Bc);
        assert!(bc.el_t.is_some());
        let pr = Workload::prepare(&base, Algorithm::Pr);
        assert!(pr.el_t.is_none());
        assert!(!pr.el.is_weighted());
        // Source is the max-out-degree vertex.
        let deg = pr.el.out_degrees();
        assert_eq!(deg[pr.source as usize], *deg.iter().max().unwrap());
    }

    #[test]
    fn measure_runs_every_engine_algorithm_pair() {
        let base = tiny_graph();
        let rc = RunConfig {
            partitions: 8,
            ..RunConfig::new(2)
        };
        for algo in Algorithm::all() {
            let w = Workload::prepare(&base, algo);
            for kind in EngineKind::all() {
                let t = measure(kind, &w, &rc, 1);
                assert!(t >= 0.0, "{kind:?} {algo:?}");
            }
        }
    }

    #[test]
    fn partitioned_executor_runs_every_algorithm() {
        let base = tiny_graph();
        let rc = RunConfig {
            partitions: 8,
            executor: ExecutorKind::Partitioned,
            ..RunConfig::new(2)
        };
        for algo in Algorithm::all() {
            let w = Workload::prepare(&base, algo);
            let t = measure(EngineKind::Gg2, &w, &rc, 1);
            assert!(t >= 0.0, "{algo:?}");
        }
    }

    #[test]
    fn forced_kernels_run() {
        let base = tiny_graph();
        for force in [
            ForcedKernel::CsrAtomic,
            ForcedKernel::CscNoAtomic,
            ForcedKernel::CooAtomic,
            ForcedKernel::CooNoAtomic,
        ] {
            let rc = RunConfig {
                partitions: 8,
                force: Some(force),
                ..RunConfig::new(2)
            };
            let w = Workload::prepare(&base, Algorithm::Pr);
            let t = measure(EngineKind::Gg2, &w, &rc, 1);
            assert!(t >= 0.0, "{force:?}");
        }
    }
}
