//! Automatic partition-count selection — the paper's open question.
//!
//! §IV.G: *"Our framework has a hidden parameter that determines how many
//! partitions are employed for the COO layout. … it would be convenient to
//! determine them heuristically. Our results show that graph partitioning
//! scales to about 384 partitions for all graphs and algorithms. Further
//! investigation is required…"*
//!
//! This module implements that missing heuristic from the paper's own
//! observations:
//!
//! 1. **Locality** (§II.C): the benefit comes from confining the next-array
//!    working set of one partition; choose `P` so a partition's share of
//!    per-vertex data fits comfortably inside the LLC share of one thread.
//! 2. **Atomics** (§III.C): `P >= threads` is required to drop atomics.
//! 3. **NUMA** (§III.D): `P` must be a multiple of the domain count.
//! 4. **Scheduling overhead** (§IV.A): execution time rises again around
//!    480 partitions; cap the answer at 512.

use gg_runtime::numa::NumaTopology;

/// Inputs to the partition-count heuristic.
#[derive(Clone, Copy, Debug)]
pub struct HeuristicInputs {
    /// Number of vertices.
    pub num_vertices: usize,
    /// Number of edges.
    pub num_edges: usize,
    /// Worker threads.
    pub threads: usize,
    /// Simulated NUMA topology.
    pub numa: NumaTopology,
    /// Last-level-cache capacity in bytes (per socket on the paper's
    /// machine; 30 MiB there, 32 MiB in our simulator default).
    pub llc_bytes: usize,
    /// Bytes of per-vertex algorithm state touched randomly during a dense
    /// traversal (e.g. 8 for a PageRank accumulator, plus the next-frontier
    /// bitmap's 1/8).
    pub bytes_per_vertex: usize,
}

impl HeuristicInputs {
    /// Reasonable defaults for a graph on the current configuration:
    /// 8-byte vertex state, the simulator's LLC size.
    pub fn new(num_vertices: usize, num_edges: usize, threads: usize, numa: NumaTopology) -> Self {
        HeuristicInputs {
            num_vertices,
            num_edges,
            threads,
            numa,
            llc_bytes: 32 * 1024 * 1024,
            bytes_per_vertex: 8,
        }
    }
}

/// Hard cap reflecting the §IV.A observation that scheduling overhead
/// degrades performance beyond ~480 partitions.
pub const MAX_PARTITIONS: usize = 512;

/// Suggests a COO partition count per the rules above.
pub fn suggest_partitions(inputs: &HeuristicInputs) -> usize {
    let HeuristicInputs {
        num_vertices,
        num_edges,
        threads,
        numa,
        llc_bytes,
        bytes_per_vertex,
    } = *inputs;

    // Locality target: a partition's random-access footprint should fit in
    // a quarter of one thread's LLC share (headroom for the streaming edge
    // arrays and the source-side data).
    let per_thread_cache = (llc_bytes / threads.max(1)).max(1);
    let target_footprint = (per_thread_cache / 4).max(1);
    let vertex_bytes = num_vertices.saturating_mul(bytes_per_vertex).max(1);
    let locality_p = vertex_bytes.div_ceil(target_footprint);

    // Atomics removal requires at least one partition per thread; beyond
    // that, extra partitions also smooth load imbalance, so ask for a few
    // per thread.
    let parallelism_p = threads * 4;

    // No point exceeding one partition per ~1024 edges — partitions
    // cheaper than that are pure scheduling overhead.
    let edge_cap = (num_edges / 1024).max(1);

    let p = locality_p
        .max(parallelism_p)
        .min(edge_cap.max(parallelism_p))
        .min(MAX_PARTITIONS);
    numa.round_partitions(p)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base(n: usize, m: usize) -> HeuristicInputs {
        HeuristicInputs::new(n, m, 48, NumaTopology::paper_machine())
    }

    #[test]
    fn large_graph_lands_near_the_paper_sweet_spot() {
        // Twitter: 41.7M vertices, 1.47B edges, 48 threads, 32 MiB LLC.
        // Footprint 8*41.7M = 333 MiB; per-thread quarter-share = 170 KiB;
        // locality wants ~2000 partitions, capped to 512 — the same order
        // as the paper's empirical 384.
        let p = suggest_partitions(&base(41_700_000, 1_467_000_000));
        assert_eq!(p, MAX_PARTITIONS);
    }

    #[test]
    fn small_graph_stays_parallelism_bound() {
        // A graph whose state fits in cache: only the threads rule binds.
        let p = suggest_partitions(&base(10_000, 500_000));
        assert!(p >= 48, "must allow atomic-free execution: {p}");
        assert!(p <= 256, "no reason to over-partition: {p}");
    }

    #[test]
    fn respects_numa_multiples() {
        let inputs = HeuristicInputs::new(1_000_000, 10_000_000, 6, NumaTopology::new(4));
        let p = suggest_partitions(&inputs);
        assert_eq!(p % 4, 0);
    }

    #[test]
    fn tiny_graph_does_not_explode() {
        let inputs = HeuristicInputs::new(100, 1000, 2, NumaTopology::new(2));
        let p = suggest_partitions(&inputs);
        assert!((2..=64).contains(&p), "{p}");
    }

    #[test]
    fn monotone_in_vertex_count() {
        let small = suggest_partitions(&base(1 << 18, 1 << 24));
        let large = suggest_partitions(&base(1 << 24, 1 << 27));
        assert!(large >= small, "{small} -> {large}");
    }
}
