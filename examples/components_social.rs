//! Social-network community sizing: connected components on a
//! heavy-tailed friendship graph, plus betweenness centrality to find the
//! "bridge" accounts inside the giant component.
//!
//! ```text
//! cargo run --release --example components_social
//! ```

use graphgrind::algorithms;
use graphgrind::core::{Config, GraphGrind2};
use graphgrind::graph::generators::{self, RmatParams};
use graphgrind::graph::ops::{symmetrize, transpose};

fn main() {
    // An Orkut-shaped friendship graph: symmetric, heavy-tailed.
    let directed = generators::rmat(15, 400_000, RmatParams::skewed(), 21);
    let el = symmetrize(&directed);
    println!(
        "friendship graph: {} users, {} friendships (directed edge count {})",
        el.num_vertices(),
        el.num_edges() / 2,
        el.num_edges()
    );

    let engine = GraphGrind2::new(&el, Config::default().with_partitions(128));

    // 1. Community structure.
    let t0 = std::time::Instant::now();
    let comps = algorithms::cc(&engine);
    println!(
        "\nconnected components: {} components in {} rounds ({:.3}s)",
        comps.num_components(),
        comps.rounds,
        t0.elapsed().as_secs_f64()
    );

    // Component size distribution.
    let mut sizes = std::collections::HashMap::new();
    for &l in &comps.label {
        *sizes.entry(l).or_insert(0usize) += 1;
    }
    let mut sizes: Vec<usize> = sizes.into_values().collect();
    sizes.sort_unstable_by(|a, b| b.cmp(a));
    println!("largest components: {:?}", &sizes[..sizes.len().min(5)]);
    let giant = 100.0 * sizes[0] as f64 / el.num_vertices() as f64;
    println!("giant component holds {giant:.1}% of users");

    // 2. Bridge accounts: single-source betweenness from the best-connected
    //    user (BC needs a transpose engine for its backward sweep).
    let deg = el.out_degrees();
    let hub = (0..el.num_vertices() as u32)
        .max_by_key(|&v| deg[v as usize])
        .unwrap();
    let engine_t = GraphGrind2::new(&transpose(&el), Config::default().with_partitions(128));
    let t1 = std::time::Instant::now();
    let bc = algorithms::bc(&engine, &engine_t, hub);
    println!(
        "\nbetweenness (source = hub {hub}, degree {}): {:.3}s, {} BFS levels",
        deg[hub as usize],
        t1.elapsed().as_secs_f64(),
        bc.rounds
    );
    let mut top: Vec<(usize, f64)> = bc.dependency.iter().copied().enumerate().collect();
    top.sort_by(|a, b| b.1.total_cmp(&a.1));
    println!("top bridge accounts (dependency score):");
    for (v, score) in top.iter().take(5) {
        println!("  user {v:>6}  score {score:.1}  degree {}", deg[*v]);
    }
}
