//! # gg-bench — the experiment harness
//!
//! Regenerates every table and figure of the paper's evaluation (§IV).
//! The `repro` binary prints paper-style rows:
//!
//! ```text
//! cargo run --release -p gg-bench --bin repro -- all
//! cargo run --release -p gg-bench --bin repro -- fig5 --scale 0.5
//! ```
//!
//! Criterion micro-benchmarks (`cargo bench -p gg-bench`) cover the same
//! experiments at reduced scale for regression tracking.
//!
//! Graph sizes default to laptop-scale stand-ins (DESIGN.md §2); `--scale`
//! multiplies them. Timings are wall-clock medians over `--reps` runs.

pub mod datasets;
pub mod replay;
pub mod runner;
pub mod serve;

use std::time::Instant;

/// Times `f` once, returning seconds.
pub fn time_once<F: FnOnce()>(f: F) -> f64 {
    let start = Instant::now();
    f();
    start.elapsed().as_secs_f64()
}

/// Runs `f` `reps` times and returns the median duration in seconds.
/// (The paper reports averages over 20 executions; the median is more
/// robust at the small rep counts used here.)
pub fn time_median<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    assert!(reps > 0);
    let mut samples: Vec<f64> = (0..reps).map(|_| time_once(&mut f)).collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

/// Per-rep timing statistics: every sample plus min/mean/median summaries.
///
/// At laptop-scale rounds of a few milliseconds, a single cold rep (page
/// faults, frequency ramp) dominates the mean; the min is the cleanest
/// estimate of the steady-state cost, and the raw samples let offline
/// readers compute whatever summary they trust.
#[derive(Clone, Debug, PartialEq)]
pub struct TimeStats {
    /// Seconds per rep, in execution order (warmup excluded).
    pub samples: Vec<f64>,
    /// Fastest rep.
    pub min: f64,
    /// Arithmetic mean over reps.
    pub mean: f64,
    /// Median over reps.
    pub median: f64,
}

impl TimeStats {
    /// Summarises raw per-rep samples (seconds, execution order).
    pub fn from_samples(samples: Vec<f64>) -> Self {
        assert!(!samples.is_empty());
        let mut sorted = samples.clone();
        sorted.sort_by(f64::total_cmp);
        TimeStats {
            min: sorted[0],
            mean: samples.iter().sum::<f64>() / samples.len() as f64,
            median: sorted[sorted.len() / 2],
            samples,
        }
    }
}

/// Runs `f` once as an untimed warmup, then `reps` timed times, returning
/// the per-rep samples with min/mean/median. The warmup rep pays the
/// one-off costs (lazy pool spawn, cold caches, page faults) so the timed
/// reps measure the steady state the experiments are about.
pub fn time_stats<F: FnMut()>(reps: usize, mut f: F) -> TimeStats {
    assert!(reps > 0);
    f(); // warmup, untimed
    let samples: Vec<f64> = (0..reps).map(|_| time_once(&mut f)).collect();
    TimeStats::from_samples(samples)
}

/// Times several configurations of the same workload with their reps
/// round-robin interleaved: warmup each runner once, then rep 1 of every
/// runner, rep 2 of every runner, and so on. Back-to-back per-mode blocks
/// hand whatever slow period the host is in (cgroup CPU throttling,
/// frequency drift, a noisy neighbour) to whichever mode happens to run
/// last; interleaving exposes every mode to the same conditions, so the
/// min-of-reps comparison measures the modes, not their run order.
pub fn time_stats_interleaved<F: FnMut()>(reps: usize, runners: &mut [F]) -> Vec<TimeStats> {
    assert!(reps > 0);
    for f in runners.iter_mut() {
        f(); // warmup, untimed
    }
    let mut samples: Vec<Vec<f64>> = vec![Vec::with_capacity(reps); runners.len()];
    for _ in 0..reps {
        for (i, f) in runners.iter_mut().enumerate() {
            samples[i].push(time_once(f));
        }
    }
    samples.into_iter().map(TimeStats::from_samples).collect()
}

/// A minimal fixed-width table printer for paper-style output.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header count).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "column count mismatch");
        self.rows.push(cells);
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for i in 0..cols {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:<width$}", cells[i], width = widths[i]));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Prints the table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Formats seconds with 4 significant digits.
pub fn fmt_secs(s: f64) -> String {
    format!("{s:.4}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_of_odd_reps() {
        let mut calls = 0;
        let t = time_median(3, || {
            calls += 1;
        });
        assert_eq!(calls, 3);
        assert!(t >= 0.0);
    }

    #[test]
    fn stats_run_warmup_plus_reps_and_summarise() {
        let mut calls = 0;
        let stats = time_stats(4, || {
            calls += 1;
        });
        assert_eq!(calls, 5, "one warmup rep plus 4 timed reps");
        assert_eq!(stats.samples.len(), 4);
        assert!(stats.min <= stats.median && stats.min <= stats.mean);
        assert!(stats.samples.iter().all(|&s| s >= stats.min && s >= 0.0));
    }

    #[test]
    fn interleaved_stats_round_robin_every_runner() {
        // Two runners record the global call order; interleaving must
        // alternate them (a b a b ...) rather than run per-mode blocks.
        let order = std::cell::RefCell::new(Vec::new());
        let mut runners: Vec<Box<dyn FnMut()>> = vec![
            Box::new(|| order.borrow_mut().push('a')),
            Box::new(|| order.borrow_mut().push('b')),
        ];
        let stats = time_stats_interleaved(3, &mut runners);
        assert_eq!(stats.len(), 2);
        assert!(stats.iter().all(|s| s.samples.len() == 3));
        assert_eq!(
            *order.borrow(),
            vec!['a', 'b', 'a', 'b', 'a', 'b', 'a', 'b'],
            "warmup pair then 3 interleaved rep pairs"
        );
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["name", "value"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["long-name".into(), "2.5".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[2].starts_with("a"));
        assert!(lines[3].starts_with("long-name"));
    }

    #[test]
    #[should_panic(expected = "column count mismatch")]
    fn table_rejects_ragged_rows() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["only-one".into()]);
    }
}
