//! Exact-count and degree-invariant tests for the graph transformations
//! and the deterministic generators. Every integration suite builds on
//! these primitives, so failures here must localize to one operation.

use gg_graph::edge_list::EdgeList;
use gg_graph::generators;
use gg_graph::ops::{symmetrize, transpose};
use gg_graph::properties::GraphStats;

fn sorted_edges(el: &EdgeList) -> Vec<(u32, u32)> {
    let mut v: Vec<(u32, u32)> = el.iter().collect();
    v.sort_unstable();
    v
}

// ---- transpose ----------------------------------------------------------

#[test]
fn transpose_preserves_counts() {
    let el = EdgeList::from_edges(6, &[(0, 1), (0, 2), (3, 4), (5, 5), (2, 0)]);
    let t = transpose(&el);
    assert_eq!(t.num_vertices(), 6);
    assert_eq!(t.num_edges(), 5);
}

#[test]
fn transpose_reverses_every_edge() {
    let el = EdgeList::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 0), (4, 4)]);
    let t = transpose(&el);
    let want: Vec<(u32, u32)> = {
        let mut w: Vec<(u32, u32)> = el.iter().map(|(u, v)| (v, u)).collect();
        w.sort_unstable();
        w
    };
    assert_eq!(sorted_edges(&t), want);
}

#[test]
fn transpose_swaps_degree_arrays() {
    let el = generators::binary_tree(15);
    let t = transpose(&el);
    assert_eq!(t.out_degrees(), el.in_degrees());
    assert_eq!(t.in_degrees(), el.out_degrees());
}

#[test]
fn transpose_is_an_involution() {
    let el = generators::rmat(6, 300, generators::RmatParams::skewed(), 3);
    assert_eq!(sorted_edges(&transpose(&transpose(&el))), sorted_edges(&el));
}

#[test]
fn transpose_of_symmetric_graph_is_same_edge_set() {
    let el = generators::star(8);
    assert_eq!(sorted_edges(&transpose(&el)), sorted_edges(&el));
}

// ---- symmetrize ---------------------------------------------------------

#[test]
fn symmetrize_exact_counts_on_known_graph() {
    // (0,1) gains (1,0); (2,3)+(3,2) already paired; (4,4) self-loop stays
    // single; duplicate (0,1) collapses.
    let el = EdgeList::from_edges(5, &[(0, 1), (0, 1), (2, 3), (3, 2), (4, 4)]);
    let s = symmetrize(&el);
    assert_eq!(s.num_vertices(), 5);
    assert_eq!(s.num_edges(), 5); // (0,1) (1,0) (2,3) (3,2) (4,4)
    assert!(GraphStats::compute(&s).symmetric);
}

#[test]
fn symmetrize_balances_degrees() {
    let el = generators::rmat(7, 500, generators::RmatParams::mild(), 8);
    let s = symmetrize(&el);
    // In a symmetric graph every vertex has in-degree == out-degree.
    assert_eq!(s.in_degrees(), s.out_degrees());
}

#[test]
fn symmetrize_is_idempotent() {
    let el = generators::erdos_renyi(50, 400, 12);
    let once = symmetrize(&el);
    let twice = symmetrize(&once);
    assert_eq!(sorted_edges(&twice), sorted_edges(&once));
    assert_eq!(twice.num_edges(), once.num_edges());
}

#[test]
fn symmetrize_contains_original_edges() {
    let el = generators::binary_tree(31);
    let s = symmetrize(&el);
    let sym_edges = sorted_edges(&s);
    for (u, v) in el.iter() {
        assert!(sym_edges.binary_search(&(u, v)).is_ok(), "lost ({u},{v})");
        assert!(
            sym_edges.binary_search(&(v, u)).is_ok(),
            "missing ({v},{u})"
        );
    }
}

// ---- deterministic generators: binary tree ------------------------------

#[test]
fn binary_tree_exact_counts() {
    for n in [1usize, 2, 3, 7, 10, 31, 100] {
        let el = generators::binary_tree(n);
        assert_eq!(el.num_vertices(), n, "n = {n}");
        assert_eq!(el.num_edges(), n.saturating_sub(1), "n = {n}");
    }
}

#[test]
fn binary_tree_degree_invariants() {
    let n = 21usize;
    let el = generators::binary_tree(n);
    let out = el.out_degrees();
    let inn = el.in_degrees();
    // Root has no parent; every other vertex has exactly one.
    assert_eq!(inn[0], 0);
    assert!(inn[1..].iter().all(|&d| d == 1));
    // Vertex v's out-degree counts its in-range children 2v+1, 2v+2.
    for (v, &d) in out.iter().enumerate() {
        let expected = [2 * v + 1, 2 * v + 2].iter().filter(|&&c| c < n).count() as u32;
        assert_eq!(d, expected, "v = {v}");
    }
}

#[test]
fn complete_binary_tree_level_structure() {
    // n = 2^k - 1: every non-leaf has exactly two children.
    let el = generators::binary_tree(15);
    let out = el.out_degrees();
    assert!(out[..7].iter().all(|&d| d == 2), "internal: {out:?}");
    assert!(out[7..].iter().all(|&d| d == 0), "leaves: {out:?}");
}

// ---- deterministic generators: grid -------------------------------------

#[test]
fn grid_exact_counts_without_diagonals() {
    for (rows, cols) in [(1usize, 1usize), (1, 8), (4, 5), (7, 7)] {
        let el = generators::grid_road(rows, cols, 0.0, 0);
        assert_eq!(el.num_vertices(), rows * cols, "{rows}x{cols}");
        // rows*(cols-1) horizontal + (rows-1)*cols vertical undirected
        // edges, stored as directed pairs.
        let undirected = rows * (cols - 1) + (rows - 1) * cols;
        assert_eq!(el.num_edges(), 2 * undirected, "{rows}x{cols}");
    }
}

#[test]
fn grid_degree_invariants() {
    let (rows, cols) = (5usize, 6usize);
    let el = generators::grid_road(rows, cols, 0.0, 0);
    let out = el.out_degrees();
    let inn = el.in_degrees();
    // Symmetric by construction.
    assert_eq!(out, inn);
    let id = |r: usize, c: usize| r * cols + c;
    // Interior cells have 4 neighbours, edges 3, corners 2.
    assert_eq!(out[id(0, 0)], 2);
    assert_eq!(out[id(0, cols - 1)], 2);
    assert_eq!(out[id(rows - 1, 0)], 2);
    assert_eq!(out[id(rows - 1, cols - 1)], 2);
    assert_eq!(out[id(0, 2)], 3);
    assert_eq!(out[id(2, 0)], 3);
    assert_eq!(out[id(2, 2)], 4);
    // Total degree equals edge count.
    assert_eq!(
        out.iter().map(|&d| d as usize).sum::<usize>(),
        el.num_edges()
    );
}

#[test]
fn grid_diagonals_only_add_edges() {
    let plain = generators::grid_road(10, 10, 0.0, 5);
    let diag = generators::grid_road(10, 10, 0.5, 5);
    assert!(diag.num_edges() > plain.num_edges());
    // Still symmetric with shortcuts.
    assert!(GraphStats::compute(&diag).symmetric);
    // Diagonals add at most 2 per cell.
    assert!(GraphStats::compute(&diag).max_out_degree <= 6);
}

// ---- other deterministic generators (used as test oracles) --------------

#[test]
fn path_cycle_star_complete_counts() {
    assert_eq!(generators::path(9).num_edges(), 8);
    assert_eq!(generators::cycle(9).num_edges(), 9);
    assert_eq!(generators::star(9).num_edges(), 16);
    assert_eq!(generators::complete(9).num_edges(), 72);
    assert!(GraphStats::compute(&generators::star(9)).symmetric);
}
