//! Compact versioned binary edge-list format.
//!
//! Layout (all little-endian):
//!
//! ```text
//! magic   8 bytes  b"GGBIN\x00\x00\x01"   (last byte = version)
//! n       8 bytes  u64 vertex count
//! m       8 bytes  u64 edge count
//! flags   1 byte   bit 0 = weighted
//! srcs    4m bytes u32 × m
//! dsts    4m bytes u32 × m
//! weights 4m bytes f32 × m (only when weighted)
//! ```

use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;

use crate::edge_list::EdgeList;

const MAGIC: [u8; 8] = *b"GGBIN\x00\x00\x01";

/// Writes `el` in the binary format.
pub fn write_binary<P: AsRef<Path>>(el: &EdgeList, path: P) -> Result<(), String> {
    let file = std::fs::File::create(path.as_ref())
        .map_err(|e| format!("create {}: {e}", path.as_ref().display()))?;
    let mut out = BufWriter::new(file);
    let err = |e: std::io::Error| e.to_string();
    out.write_all(&MAGIC).map_err(err)?;
    out.write_all(&(el.num_vertices() as u64).to_le_bytes())
        .map_err(err)?;
    out.write_all(&(el.num_edges() as u64).to_le_bytes())
        .map_err(err)?;
    out.write_all(&[u8::from(el.is_weighted())]).map_err(err)?;
    for &u in el.srcs() {
        out.write_all(&u.to_le_bytes()).map_err(err)?;
    }
    for &v in el.dsts() {
        out.write_all(&v.to_le_bytes()).map_err(err)?;
    }
    if let Some(w) = el.weights() {
        for &x in w {
            out.write_all(&x.to_le_bytes()).map_err(err)?;
        }
    }
    out.flush().map_err(err)
}

/// Reads an edge list written by [`write_binary`].
pub fn read_binary<P: AsRef<Path>>(path: P) -> Result<EdgeList, String> {
    let file = std::fs::File::open(path.as_ref())
        .map_err(|e| format!("open {}: {e}", path.as_ref().display()))?;
    let mut inp = BufReader::new(file);
    let err = |e: std::io::Error| e.to_string();

    let mut magic = [0u8; 8];
    inp.read_exact(&mut magic).map_err(err)?;
    if magic != MAGIC {
        return Err("bad magic (not a gg-graph binary edge list?)".into());
    }
    let mut b8 = [0u8; 8];
    inp.read_exact(&mut b8).map_err(err)?;
    let n = u64::from_le_bytes(b8) as usize;
    inp.read_exact(&mut b8).map_err(err)?;
    let m = u64::from_le_bytes(b8) as usize;
    let mut flags = [0u8; 1];
    inp.read_exact(&mut flags).map_err(err)?;
    let weighted = flags[0] & 1 == 1;

    let mut read_u32s = |count: usize| -> Result<Vec<u32>, String> {
        let mut bytes = vec![0u8; count * 4];
        inp.read_exact(&mut bytes).map_err(err)?;
        Ok(bytes
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect())
    };
    let srcs = read_u32s(m)?;
    let dsts = read_u32s(m)?;
    let weights = if weighted {
        Some(
            read_u32s(m)?
                .into_iter()
                .map(f32::from_bits)
                .collect::<Vec<f32>>(),
        )
    } else {
        None
    };

    let el = match &weights {
        Some(w) => {
            let triples: Vec<(u32, u32, f32)> = (0..m).map(|i| (srcs[i], dsts[i], w[i])).collect();
            EdgeList::from_weighted_edges(n, &triples)
        }
        None => {
            let pairs: Vec<(u32, u32)> = (0..m).map(|i| (srcs[i], dsts[i])).collect();
            EdgeList::from_edges(n, &pairs)
        }
    };
    el.validate()?;
    Ok(el)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("gg_graph_bin_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn roundtrip_unweighted() {
        let el = crate::generators::rmat(8, 500, crate::generators::RmatParams::skewed(), 1);
        let path = tmp("u.bin");
        write_binary(&el, &path).unwrap();
        assert_eq!(read_binary(&path).unwrap(), el);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn roundtrip_weighted() {
        let mut el = crate::generators::erdos_renyi(50, 200, 2);
        crate::weights::attach_uniform(&mut el, 0.0, 1.0, 3);
        let path = tmp("w.bin");
        write_binary(&el, &path).unwrap();
        assert_eq!(read_binary(&path).unwrap(), el);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_garbage() {
        let path = tmp("garbage.bin");
        std::fs::write(&path, b"not a graph").unwrap();
        assert!(read_binary(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_graph_roundtrip() {
        let el = EdgeList::new(7);
        let path = tmp("empty.bin");
        write_binary(&el, &path).unwrap();
        let back = read_binary(&path).unwrap();
        assert_eq!(back.num_vertices(), 7);
        assert_eq!(back.num_edges(), 0);
        std::fs::remove_file(&path).ok();
    }
}
