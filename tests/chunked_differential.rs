//! Differential harness for the chunk-granular work-stealing executor.
//!
//! The planner splits every planned partition into edge-balanced chunks
//! (`Config::chunk_edges` / `GG_CHUNK`), and `Pool::run_stealing` executes
//! them with NUMA-domain-affine stealing; the merge in
//! `Frontier::from_partition_outputs` is keyed by `(partition, chunk)`
//! range order, so the promise is that **chunk size, thread count, steal
//! schedule and partition count are all invisible in results**. These
//! tests pin that promise:
//!
//! 1. **Bit-identity across chunk caps**: BFS, PR, CC and Bellman-Ford
//!    with caps {1, 64, unbounded} × 1–4 threads × 1/2/7 partitions all
//!    match the sequential engine (1 partition, 1 thread, unbounded)
//!    byte for byte.
//! 2. **Chunking actually balances**: on the skewed `powerlaw` scenario
//!    (star hubs concentrated in one destination partition) the steal
//!    counter is non-zero while every spawned chunk respects the
//!    `chunk_edges + max_degree` bound.
//! 3. **Degenerate shapes survive**: single-chunk partitions (cap ≥
//!    partition edges) and per-vertex chunks (cap 1) are exercised by the
//!    cap sweep; an all-empty round and an edgeless graph terminate
//!    cleanly.

use graphgrind::algorithms;
use graphgrind::bench::datasets::powerlaw_scenario;
use graphgrind::core::config::{Config, ExecutorKind};
use graphgrind::core::engine::{Engine, GraphGrind2};
use graphgrind::graph::edge_list::EdgeList;
use graphgrind::graph::generators::{self, RmatParams};
use graphgrind::graph::ops::symmetrize;
use graphgrind::runtime::numa::NumaTopology;

const CAPS: [usize; 3] = [1, 64, usize::MAX];
const PARTITIONS: [usize; 3] = [1, 2, 7];
const THREADS: [usize; 3] = [1, 2, 4];

/// Partitioned-executor configuration with exact partition counts (UMA
/// topology: no rounding) and an explicit chunk cap.
fn config(partitions: usize, threads: usize, chunk_edges: usize) -> Config {
    Config {
        threads,
        num_partitions: partitions,
        numa: NumaTopology::new(1),
        executor: ExecutorKind::Partitioned,
        chunk_edges,
        ..Config::default()
    }
}

/// The sequential engine every configuration must match: one partition on
/// one thread, one chunk per partition.
fn sequential(el: &EdgeList) -> GraphGrind2 {
    GraphGrind2::new(el, config(1, 1, usize::MAX))
}

/// Deterministic graphs covering the regimes chunking must not disturb:
/// skewed (dense rounds, uneven chunk counts) and a high-diameter grid
/// (sparse candidate slices).
fn graphs() -> Vec<(&'static str, EdgeList)> {
    vec![
        (
            "rmat-skewed",
            generators::rmat(8, 3000, RmatParams::skewed(), 7),
        ),
        ("grid-road", generators::grid_road(12, 12, 0.1, 9)),
    ]
}

#[test]
fn bfs_bit_identical_across_chunk_caps() {
    for (name, el) in graphs() {
        let seq = algorithms::bfs(&sequential(&el), 0);
        for cap in CAPS {
            for p in PARTITIONS {
                for t in THREADS {
                    let got = algorithms::bfs(&GraphGrind2::new(&el, config(p, t, cap)), 0);
                    assert_eq!(got.level, seq.level, "{name} cap={cap} P={p} T={t}");
                    assert_eq!(got.parent, seq.parent, "{name} cap={cap} P={p} T={t}");
                    assert_eq!(got.rounds, seq.rounds, "{name} cap={cap} P={p} T={t}");
                }
            }
        }
    }
}

#[test]
fn pagerank_bit_identical_across_chunk_caps() {
    for (name, el) in graphs() {
        let seq = algorithms::pagerank(&sequential(&el), 10);
        for cap in CAPS {
            for p in PARTITIONS {
                for t in THREADS {
                    let got = algorithms::pagerank(&GraphGrind2::new(&el, config(p, t, cap)), 10);
                    // f64 accumulation order is fixed (CSC order per
                    // destination, chunks tile the destination space), so
                    // equality is exact, not approximate.
                    assert_eq!(got, seq, "{name} cap={cap} P={p} T={t}");
                }
            }
        }
    }
}

#[test]
fn cc_labels_identical_across_chunk_caps() {
    for (name, el) in graphs() {
        let el = symmetrize(&el);
        let want = algorithms::reference::cc_labels(&el);
        assert_eq!(algorithms::cc(&sequential(&el)).label, want, "{name}/seq");
        for cap in CAPS {
            for p in PARTITIONS {
                for t in THREADS {
                    // CC reads source labels another chunk may be
                    // rewriting, so round counts may vary — the converged
                    // labels are the component minima everywhere.
                    let got = algorithms::cc(&GraphGrind2::new(&el, config(p, t, cap)));
                    assert_eq!(got.label, want, "{name} cap={cap} P={p} T={t}");
                }
            }
        }
    }
}

#[test]
fn bellman_ford_identical_across_chunk_caps() {
    for (name, el) in graphs() {
        let mut el = el;
        graphgrind::graph::weights::attach_integer(&mut el, 12, 0xBF);
        let seq = algorithms::bellman_ford(&sequential(&el), 0);
        for cap in CAPS {
            for p in PARTITIONS {
                for t in THREADS {
                    let got =
                        algorithms::bellman_ford(&GraphGrind2::new(&el, config(p, t, cap)), 0);
                    // f32 distances compare bitwise: every candidate is a
                    // path-prefix sum and the converged minimum is
                    // schedule-independent.
                    assert_eq!(got.dist, seq.dist, "{name} cap={cap} P={p} T={t}");
                }
            }
        }
    }
}

/// Acceptance criterion: on the skewed scale-free scenario, intra-partition
/// chunking spawns many more chunks than partitions, idle workers steal
/// (the counter is non-zero), every chunk respects the
/// `chunk_edges + max_degree` bound — and the results still match the
/// sequential engine exactly.
#[test]
fn skewed_scenario_steals_without_oversized_chunks() {
    let el = powerlaw_scenario(0.05, 2.0, 16, 7);
    let cap = 64usize;
    let seq = algorithms::pagerank(&sequential(&el), 10);

    let cfg = Config {
        threads: 4,
        num_partitions: 4,
        numa: NumaTopology::new(2),
        executor: ExecutorKind::Partitioned,
        chunk_edges: cap,
        ..Config::default()
    };
    let engine = GraphGrind2::new(&el, cfg);
    let got = algorithms::pagerank(&engine, 10);
    assert_eq!(got, seq, "chunked run must match the sequential engine");

    let c = engine.work_counters();
    let partitions = engine.partition_views().len() as u64;
    assert!(
        c.chunks() > 10 * partitions,
        "the hub partitions must split into many chunks: {} chunks over {partitions} partitions",
        c.chunks()
    );
    assert!(
        c.steals() > 0,
        "light-domain workers must steal from the star-shaped partition"
    );
    let max_degree = engine
        .store()
        .in_degrees()
        .iter()
        .copied()
        .max()
        .unwrap_or(0) as u64;
    assert!(
        c.max_chunk_edges() <= cap as u64 + max_degree,
        "chunk bound violated: {} > {cap} + {max_degree}",
        c.max_chunk_edges()
    );
    assert!(c.mean_chunk_edges() > 0.0);
    assert!(c.cross_domain_steals() <= c.steals());
}

/// Degenerate rounds: an edgeless graph plans nothing (no chunks, no
/// steals), and a traversal that dies out mid-run leaves the counters
/// consistent.
#[test]
fn empty_rounds_plan_no_chunks() {
    let el = EdgeList::new(24);
    let engine = GraphGrind2::new(&el, config(4, 2, 1));
    let r = algorithms::bfs(&engine, 0);
    assert_eq!(r.level[0], 0);
    assert_eq!(engine.work_counters().chunks(), 0);
    assert_eq!(engine.work_counters().steals(), 0);
    assert_eq!(engine.work_counters().max_chunk_edges(), 0);

    // A single isolated edge: the traversal runs one real round, then the
    // all-empty round terminates cleanly under per-vertex chunking.
    let el = EdgeList::from_edges(24, &[(0, 1)]);
    let engine = GraphGrind2::new(&el, config(4, 2, 1));
    let r = algorithms::bfs(&engine, 0);
    assert_eq!(r.level[1], 1);
    assert!(engine.work_counters().chunks() > 0);
}
