//! Simulated NUMA topology.
//!
//! §III.D: *"Each graph partition is allocated on one NUMA domain. … Graph
//! partitions are spread over all NUMA domains. As we have 4 NUMA domains
//! on our experimental platform, we consider only multiples of 4 and
//! allocate the same number of partitions on each NUMA domain."*
//!
//! Physical page placement cannot be reproduced portably (and the test
//! machine may not expose NUMA at all), so this module models the
//! *assignment* — which domain owns which partition and which vertex
//! ranges — and the schedule built on it groups a domain's partitions
//! together. The behavioural property the paper's results rely on (each
//! vertex updated by threads of exactly one domain) is preserved and is
//! assertable in tests.

/// A simulated NUMA machine with `domains` memory domains.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NumaTopology {
    domains: usize,
}

impl NumaTopology {
    /// The paper's evaluation platform: 4 sockets.
    pub fn paper_machine() -> Self {
        NumaTopology { domains: 4 }
    }

    /// A topology with `domains` domains (1 = UMA).
    pub fn new(domains: usize) -> Self {
        assert!(domains > 0, "need at least one domain");
        NumaTopology { domains }
    }

    /// Number of domains.
    #[inline]
    pub fn domains(&self) -> usize {
        self.domains
    }

    /// Domain owning partition `p` of `num_partitions`, using block
    /// assignment (partitions `0..P/D` on domain 0, etc.), which matches
    /// allocating equal partition counts per domain.
    #[inline]
    pub fn domain_of_partition(&self, p: usize, num_partitions: usize) -> usize {
        debug_assert!(p < num_partitions);
        if num_partitions <= self.domains {
            // Fewer partitions than domains: one partition per domain.
            p
        } else {
            // Block assignment; remainders distributed like vertex_balanced.
            (p * self.domains) / num_partitions
        }
    }

    /// Rounds a requested partition count up to a multiple of the domain
    /// count (the paper "considers only multiples of 4").
    pub fn round_partitions(&self, requested: usize) -> usize {
        requested.max(1).div_ceil(self.domains) * self.domains
    }

    /// Partitions per domain when `num_partitions` is a multiple of the
    /// domain count.
    pub fn partitions_per_domain(&self, num_partitions: usize) -> usize {
        num_partitions.div_ceil(self.domains)
    }
}

impl Default for NumaTopology {
    fn default() -> Self {
        Self::paper_machine()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_assignment_is_balanced() {
        let numa = NumaTopology::new(4);
        let mut counts = [0usize; 4];
        for p in 0..16 {
            counts[numa.domain_of_partition(p, 16)] += 1;
        }
        assert_eq!(counts, [4, 4, 4, 4]);
    }

    #[test]
    fn assignment_is_monotone() {
        // Blocks: a domain's partitions are contiguous.
        let numa = NumaTopology::new(4);
        let doms: Vec<usize> = (0..20).map(|p| numa.domain_of_partition(p, 20)).collect();
        assert!(doms.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(doms[0], 0);
        assert_eq!(doms[19], 3);
    }

    #[test]
    fn fewer_partitions_than_domains() {
        let numa = NumaTopology::new(8);
        assert_eq!(numa.domain_of_partition(0, 2), 0);
        assert_eq!(numa.domain_of_partition(1, 2), 1);
    }

    #[test]
    fn rounding_to_domain_multiples() {
        let numa = NumaTopology::paper_machine();
        assert_eq!(numa.round_partitions(1), 4);
        assert_eq!(numa.round_partitions(4), 4);
        assert_eq!(numa.round_partitions(5), 8);
        assert_eq!(numa.round_partitions(384), 384);
        assert_eq!(numa.round_partitions(0), 4);
    }

    #[test]
    fn uma_single_domain() {
        let numa = NumaTopology::new(1);
        for p in 0..10 {
            assert_eq!(numa.domain_of_partition(p, 10), 0);
        }
    }
}
