//! Road-network routing scenario: single-source shortest paths on a
//! USAroad-like grid — the workload the paper calls "hard to process for
//! graph analytics frameworks" because frontiers stay narrow for thousands
//! of rounds. Shows why the sparse CSR path matters.
//!
//! ```text
//! cargo run --release --example sssp_road
//! ```

use graphgrind::algorithms;
use graphgrind::core::{Config, GraphGrind2};
use graphgrind::graph::{generators, weights};

fn main() {
    // A 300x300 road grid with sparse diagonal shortcuts and road lengths
    // in [1, 5).
    let (rows, cols) = (300usize, 300usize);
    let mut el = generators::grid_road(rows, cols, 0.05, 3);
    weights::attach_uniform(&mut el, 1.0, 5.0, 4);
    println!(
        "road network: {} junctions, {} road segments",
        el.num_vertices(),
        el.num_edges()
    );

    let engine = GraphGrind2::new(&el, Config::default().with_partitions(64));

    // Route from the north-west corner.
    let source = 0u32;
    let t0 = std::time::Instant::now();
    let result = algorithms::bellman_ford(&engine, source);
    let secs = t0.elapsed().as_secs_f64();

    let reachable = result.dist.iter().filter(|d| d.is_finite()).count();
    let corner = rows * cols - 1; // south-east corner
    println!(
        "\nBellman-Ford: {} rounds in {:.3}s, {} junctions reachable",
        result.rounds, secs, reachable
    );
    println!(
        "distance to opposite corner: {:.1} (straight-line hops ~{})",
        result.dist[corner],
        rows + cols - 2
    );

    // Road networks keep frontiers narrow: the engine should stay in the
    // sparse / medium regimes nearly the whole time.
    let (s, m, d) = engine.kernel_counts().snapshot();
    println!("edge-map decisions: {s} sparse, {m} medium, {d} dense");

    // Distance histogram by grid ring (sanity view of wave propagation).
    println!("\ndistance deciles:");
    let mut finite: Vec<f32> = result
        .dist
        .iter()
        .copied()
        .filter(|d| d.is_finite())
        .collect();
    finite.sort_by(f32::total_cmp);
    for q in [0.1, 0.25, 0.5, 0.75, 0.9, 1.0] {
        let idx = ((finite.len() - 1) as f64 * q) as usize;
        println!("  p{:<3.0} = {:.1}", q * 100.0, finite[idx]);
    }
}
