//! Compressed Sparse Rows: the indexed forward (push) layout.
//!
//! Three variants, matching §II.E of the paper:
//!
//! * [`Csr`] — the whole graph, one offset per vertex. Used unpartitioned
//!   for sparse-frontier traversal (§III.A.1).
//! * [`PrunedCsr`] — a *partition's* CSR that stores only vertices with at
//!   least one edge in the partition, carrying explicit vertex identifiers
//!   ("we store the vertex ID along with the vertex data in order to save
//!   space for zero-degree vertices"). Storage grows with the replication
//!   factor `r(p)`.
//! * [`PartitionedCsr`] — `P` pruned partitions under a
//!   [`PartitionSet`]; partition `p` holds exactly the edges whose home is
//!   `p` (all edges *into* `p`'s vertex range when partitioning by
//!   destination), indexed by **source** vertex for forward traversal.
//!
//! The unpruned per-partition layout Polymer uses (offsets over all `n`
//! vertices in every partition, §II.E) is [`UnprunedPartitionedCsr`].

use crate::edge_list::EdgeList;
use crate::partition::PartitionSet;
use crate::types::{EdgeId, VertexId};

/// Whole-graph CSR: `offsets[v]..offsets[v+1]` indexes `targets` (and
/// `weights` when present) with the out-neighbors of `v`, in input order.
///
/// ```
/// use gg_graph::prelude::*;
///
/// let el = EdgeList::from_edges(3, &[(0, 1), (0, 2), (2, 0)]);
/// let csr = Csr::from_edge_list(&el);
/// assert_eq!(csr.neighbors(0), &[1, 2]);
/// assert_eq!(csr.out_degree(1), 0);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct Csr {
    offsets: Vec<EdgeId>,
    targets: Vec<VertexId>,
    weights: Option<Vec<f32>>,
}

/// Counting-sort edges into adjacency order keyed by `key(edge)`.
///
/// Returns `(offsets, order)` where `order[i]` is the input index of the
/// edge placed at adjacency position `i`. The sort is stable, so neighbors
/// retain input order.
fn bucket_edges<K: Fn(usize) -> usize>(
    num_keys: usize,
    num_edges: usize,
    key: K,
) -> (Vec<EdgeId>, Vec<usize>) {
    let mut counts = vec![0usize; num_keys + 1];
    for e in 0..num_edges {
        counts[key(e) + 1] += 1;
    }
    for i in 0..num_keys {
        counts[i + 1] += counts[i];
    }
    let offsets = counts.clone();
    let mut order = vec![0usize; num_edges];
    for e in 0..num_edges {
        let k = key(e);
        order[counts[k]] = e;
        counts[k] += 1;
    }
    (offsets, order)
}

impl Csr {
    /// Builds a CSR from an edge list (stable counting sort by source).
    pub fn from_edge_list(el: &EdgeList) -> Self {
        let n = el.num_vertices();
        let srcs = el.srcs();
        let (offsets, order) = bucket_edges(n, el.num_edges(), |e| srcs[e] as usize);
        let targets = order.iter().map(|&e| el.dsts()[e]).collect();
        let weights = el.weights().map(|w| order.iter().map(|&e| w[e]).collect());
        Csr {
            offsets,
            targets,
            weights,
        }
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.targets.len()
    }

    /// Out-degree of `v`.
    #[inline]
    pub fn out_degree(&self, v: VertexId) -> usize {
        self.offsets[v as usize + 1] - self.offsets[v as usize]
    }

    /// Out-neighbors of `v` in input order.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        &self.targets[self.offsets[v as usize]..self.offsets[v as usize + 1]]
    }

    /// Adjacency range of `v` as indices into [`targets`](Self::targets).
    #[inline]
    pub fn edge_range(&self, v: VertexId) -> std::ops::Range<EdgeId> {
        self.offsets[v as usize]..self.offsets[v as usize + 1]
    }

    /// Flat targets array.
    #[inline]
    pub fn targets(&self) -> &[VertexId] {
        &self.targets
    }

    /// Offset array of length `n + 1`.
    #[inline]
    pub fn offsets(&self) -> &[EdgeId] {
        &self.offsets
    }

    /// Edge weights aligned with [`targets`](Self::targets), if present.
    #[inline]
    pub fn weights(&self) -> Option<&[f32]> {
        self.weights.as_deref()
    }

    /// Weight of adjacency slot `e` (1.0 when unweighted).
    #[inline]
    pub fn weight_at(&self, e: EdgeId) -> f32 {
        self.weights.as_ref().map_or(1.0, |w| w[e])
    }

    /// Out-degrees of all vertices.
    pub fn out_degrees(&self) -> Vec<u32> {
        (0..self.num_vertices())
            .map(|v| self.out_degree(v as VertexId) as u32)
            .collect()
    }

    /// Heap bytes consumed by this structure (measured, not modeled).
    pub fn heap_bytes(&self) -> usize {
        self.offsets.len() * std::mem::size_of::<EdgeId>()
            + self.targets.len() * std::mem::size_of::<VertexId>()
            + self
                .weights
                .as_ref()
                .map_or(0, |w| w.len() * std::mem::size_of::<f32>())
    }
}

/// A pruned partition CSR: only vertices with at least one edge in the
/// partition are stored, each with an explicit identifier.
#[derive(Clone, Debug, PartialEq)]
pub struct PrunedCsr {
    /// Identifiers of the stored (source) vertices, ascending.
    vertex_ids: Vec<VertexId>,
    /// `offsets[i]..offsets[i+1]` indexes the adjacency of `vertex_ids[i]`.
    offsets: Vec<EdgeId>,
    targets: Vec<VertexId>,
    weights: Option<Vec<f32>>,
}

impl PrunedCsr {
    /// Builds a pruned CSR from a slice of edges (with optional aligned
    /// weights), indexing by **source**.
    pub fn from_edges(edges: &[(VertexId, VertexId)], weights: Option<&[f32]>) -> Self {
        let mut order: Vec<usize> = (0..edges.len()).collect();
        order.sort_unstable_by_key(|&e| edges[e].0);

        let mut vertex_ids = Vec::new();
        let mut offsets = vec![0usize];
        let mut targets = Vec::with_capacity(edges.len());
        let mut out_w = weights.map(|_| Vec::with_capacity(edges.len()));
        for &e in &order {
            let (u, v) = edges[e];
            if vertex_ids.last() != Some(&u) {
                vertex_ids.push(u);
                offsets.push(targets.len());
            }
            targets.push(v);
            if let (Some(out), Some(w)) = (&mut out_w, weights) {
                out.push(w[e]);
            }
            *offsets.last_mut().unwrap() = targets.len();
        }
        PrunedCsr {
            vertex_ids,
            offsets,
            targets,
            weights: out_w,
        }
    }

    /// Number of stored (non-pruned) vertices — the quantity that grows with
    /// the replication factor.
    #[inline]
    pub fn num_stored_vertices(&self) -> usize {
        self.vertex_ids.len()
    }

    /// Number of edges in this partition.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.targets.len()
    }

    /// Stored vertex identifiers (ascending).
    #[inline]
    pub fn vertex_ids(&self) -> &[VertexId] {
        &self.vertex_ids
    }

    /// Adjacency of the `i`-th stored vertex.
    #[inline]
    pub fn neighbors_at(&self, i: usize) -> &[VertexId] {
        &self.targets[self.offsets[i]..self.offsets[i + 1]]
    }

    /// Adjacency range of the `i`-th stored vertex.
    #[inline]
    pub fn edge_range_at(&self, i: usize) -> std::ops::Range<EdgeId> {
        self.offsets[i]..self.offsets[i + 1]
    }

    /// Flat targets array.
    #[inline]
    pub fn targets(&self) -> &[VertexId] {
        &self.targets
    }

    /// Weight of adjacency slot `e` (1.0 when unweighted).
    #[inline]
    pub fn weight_at(&self, e: EdgeId) -> f32 {
        self.weights.as_ref().map_or(1.0, |w| w[e])
    }

    /// Heap bytes consumed (measured).
    pub fn heap_bytes(&self) -> usize {
        self.vertex_ids.len() * std::mem::size_of::<VertexId>()
            + self.offsets.len() * std::mem::size_of::<EdgeId>()
            + self.targets.len() * std::mem::size_of::<VertexId>()
            + self
                .weights
                .as_ref()
                .map_or(0, |w| w.len() * std::mem::size_of::<f32>())
    }
}

/// `P` pruned CSR partitions under a [`PartitionSet`].
///
/// With partitioning by destination, partition `p` contains every edge whose
/// destination lies in `set.range(p)`, indexed by source: a forward traversal
/// of partition `p` touches an arbitrary subset of sources but only writes
/// destinations in `p`'s range.
#[derive(Clone, Debug)]
pub struct PartitionedCsr {
    parts: Vec<PrunedCsr>,
    set: PartitionSet,
}

impl PartitionedCsr {
    /// Partitions `el` under `set` and builds one pruned CSR per partition.
    pub fn new(el: &EdgeList, set: &PartitionSet) -> Self {
        let p = set.num_partitions();
        let srcs = el.srcs();
        let dsts = el.dsts();
        let (offsets, order) =
            super::csr::bucket_edges(p, el.num_edges(), |e| set.edge_home(srcs[e], dsts[e]));

        let parts = (0..p)
            .map(|i| {
                let idx = &order[offsets[i]..offsets[i + 1]];
                let edges: Vec<(VertexId, VertexId)> =
                    idx.iter().map(|&e| (srcs[e], dsts[e])).collect();
                let w: Option<Vec<f32>> = el
                    .weights()
                    .map(|wts| idx.iter().map(|&e| wts[e]).collect());
                PrunedCsr::from_edges(&edges, w.as_deref())
            })
            .collect();
        PartitionedCsr {
            parts,
            set: set.clone(),
        }
    }

    /// Number of partitions.
    #[inline]
    pub fn num_partitions(&self) -> usize {
        self.parts.len()
    }

    /// The pruned CSR of partition `p`.
    #[inline]
    pub fn part(&self, p: usize) -> &PrunedCsr {
        &self.parts[p]
    }

    /// The partition set this layout was built under.
    #[inline]
    pub fn partition_set(&self) -> &PartitionSet {
        &self.set
    }

    /// Total number of edges across partitions.
    pub fn num_edges(&self) -> usize {
        self.parts.iter().map(|p| p.num_edges()).sum()
    }

    /// Total stored vertices across partitions (`r(p) * |V|` in the paper's
    /// §II.D terminology).
    pub fn total_stored_vertices(&self) -> usize {
        self.parts.iter().map(|p| p.num_stored_vertices()).sum()
    }

    /// Heap bytes consumed (measured).
    pub fn heap_bytes(&self) -> usize {
        self.parts.iter().map(|p| p.heap_bytes()).sum()
    }
}

/// Unpruned partitioned CSR (Polymer's layout, §II.E): every partition keeps
/// a full `n + 1` offset array, so storage grows as `p · |V| · be + |E| · bv`.
#[derive(Clone, Debug)]
pub struct UnprunedPartitionedCsr {
    parts: Vec<Csr>,
    set: PartitionSet,
}

impl UnprunedPartitionedCsr {
    /// Partitions `el` under `set`, building a full-width CSR per partition.
    pub fn new(el: &EdgeList, set: &PartitionSet) -> Self {
        let p = set.num_partitions();
        let n = el.num_vertices();
        let srcs = el.srcs();
        let dsts = el.dsts();
        let (offsets, order) = bucket_edges(p, el.num_edges(), |e| set.edge_home(srcs[e], dsts[e]));
        let parts = (0..p)
            .map(|i| {
                let idx = &order[offsets[i]..offsets[i + 1]];
                let mut sub = EdgeList::with_capacity(n, idx.len());
                match el.weights() {
                    None => {
                        for &e in idx {
                            sub.push(srcs[e], dsts[e]);
                        }
                    }
                    Some(w) => {
                        for &e in idx {
                            sub.push_weighted(srcs[e], dsts[e], w[e]);
                        }
                    }
                }
                Csr::from_edge_list(&sub)
            })
            .collect();
        UnprunedPartitionedCsr {
            parts,
            set: set.clone(),
        }
    }

    /// Number of partitions.
    #[inline]
    pub fn num_partitions(&self) -> usize {
        self.parts.len()
    }

    /// The full-width CSR of partition `p`.
    #[inline]
    pub fn part(&self, p: usize) -> &Csr {
        &self.parts[p]
    }

    /// The partition set this layout was built under.
    #[inline]
    pub fn partition_set(&self) -> &PartitionSet {
        &self.set
    }

    /// Heap bytes consumed (measured).
    pub fn heap_bytes(&self) -> usize {
        self.parts.iter().map(|p| p.heap_bytes()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::PartitionBy;

    /// The example graph of Figure 1: 6 vertices, 14 edges, reconstructed
    /// from the CSR offsets `0 5 5 6 8 9 [14]` and destination array shown
    /// in the figure.
    pub(crate) fn figure1_graph() -> EdgeList {
        EdgeList::from_edges(
            6,
            &[
                (0, 1),
                (0, 2),
                (0, 3),
                (0, 4),
                (0, 5),
                (2, 4),
                (3, 4),
                (3, 5),
                (4, 5),
                (5, 0),
                (5, 1),
                (5, 2),
                (5, 3),
                (5, 4),
            ],
        )
    }

    #[test]
    fn csr_matches_figure1() {
        // Figure 1 top-left: CSR indices 0 5 5 6 8 9 [14] for sources 0..5.
        let csr = Csr::from_edge_list(&figure1_graph());
        assert_eq!(csr.offsets(), &[0, 5, 5, 6, 8, 9, 14]);
        assert_eq!(csr.neighbors(0), &[1, 2, 3, 4, 5]);
        assert!(csr.neighbors(1).is_empty());
        assert_eq!(csr.neighbors(3), &[4, 5]);
        assert_eq!(csr.neighbors(5), &[0, 1, 2, 3, 4]);
        assert_eq!(csr.num_edges(), 14);
    }

    #[test]
    fn csr_empty_and_isolated() {
        let el = EdgeList::new(3);
        let csr = Csr::from_edge_list(&el);
        assert_eq!(csr.num_vertices(), 3);
        assert_eq!(csr.num_edges(), 0);
        assert_eq!(csr.out_degree(1), 0);
        assert!(csr.neighbors(2).is_empty());
    }

    #[test]
    fn csr_weighted() {
        let el = EdgeList::from_weighted_edges(3, &[(1, 0, 5.0), (0, 2, 1.5), (0, 1, 2.5)]);
        let csr = Csr::from_edge_list(&el);
        assert_eq!(csr.neighbors(0), &[2, 1]); // stable input order
        assert_eq!(csr.weight_at(csr.edge_range(0).start), 1.5);
        assert_eq!(csr.weight_at(csr.edge_range(1).start), 5.0);
    }

    #[test]
    fn pruned_skips_zero_degree() {
        let pc = PrunedCsr::from_edges(&[(5, 1), (5, 2), (9, 0)], None);
        assert_eq!(pc.num_stored_vertices(), 2);
        assert_eq!(pc.vertex_ids(), &[5, 9]);
        assert_eq!(pc.neighbors_at(0), &[1, 2]);
        assert_eq!(pc.neighbors_at(1), &[0]);
        assert_eq!(pc.num_edges(), 3);
    }

    #[test]
    fn partitioned_csr_conserves_edges() {
        let el = figure1_graph();
        let set = PartitionSet::edge_balanced(&el.in_degrees(), 2, PartitionBy::Destination);
        let pc = PartitionedCsr::new(&el, &set);
        assert_eq!(pc.num_edges(), el.num_edges());
        // Every edge in partition p has its destination in p's range.
        for p in 0..pc.num_partitions() {
            let part = pc.part(p);
            let range = set.range(p);
            for i in 0..part.num_stored_vertices() {
                for &dst in part.neighbors_at(i) {
                    assert!(range.contains(&dst), "dst {dst} outside partition {p}");
                }
            }
        }
    }

    #[test]
    fn figure1_replication_factor() {
        // The paper reports an average replication factor of 7/6 for the
        // 2-way partitioned CSR of Figure 1 — i.e. 7 stored vertices total.
        let el = figure1_graph();
        let set = PartitionSet::edge_balanced(&el.in_degrees(), 2, PartitionBy::Destination);
        let pc = PartitionedCsr::new(&el, &set);
        assert_eq!(pc.num_partitions(), 2);
        assert_eq!(pc.total_stored_vertices(), 7);
    }

    #[test]
    fn unpruned_keeps_full_offsets() {
        let el = figure1_graph();
        let set = PartitionSet::edge_balanced(&el.in_degrees(), 2, PartitionBy::Destination);
        let up = UnprunedPartitionedCsr::new(&el, &set);
        for p in 0..2 {
            assert_eq!(up.part(p).num_vertices(), 6);
        }
        let total: usize = (0..2).map(|p| up.part(p).num_edges()).sum();
        assert_eq!(total, 14);
    }

    #[test]
    fn heap_bytes_positive() {
        let el = figure1_graph();
        let csr = Csr::from_edge_list(&el);
        assert!(csr.heap_bytes() >= 14 * 4 + 7 * 8);
    }
}
