//! Recursive-MATrix (RMAT) generator — the standard stand-in for social
//! networks with heavy-tailed degree distributions (Twitter, Friendster,
//! LiveJournal and the paper's own RMAT27 data set).
//!
//! Each edge picks its endpoints by descending the adjacency matrix's
//! quadtree: at every level one of the four quadrants is selected with
//! probabilities `(a, b, c, d)`. Parameter noise ("smoothing") is applied
//! per level to avoid exactly self-similar artifacts, following the
//! Graph500 reference generator.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::edge_list::EdgeList;

/// RMAT quadrant probabilities. Must sum to 1.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RmatParams {
    /// Top-left quadrant (hub-to-hub edges).
    pub a: f64,
    /// Top-right quadrant.
    pub b: f64,
    /// Bottom-left quadrant.
    pub c: f64,
    /// Fraction of per-level multiplicative noise (0 disables smoothing).
    pub noise: f64,
}

impl RmatParams {
    /// The classic skewed parameterisation (Graph500-like): a=0.57, b=c=0.19.
    /// Produces Twitter-like degree skew.
    pub fn skewed() -> Self {
        RmatParams {
            a: 0.57,
            b: 0.19,
            c: 0.19,
            noise: 0.1,
        }
    }

    /// A milder skew closer to Friendster's flatter distribution.
    pub fn mild() -> Self {
        RmatParams {
            a: 0.45,
            b: 0.22,
            c: 0.22,
            noise: 0.1,
        }
    }

    fn d(&self) -> f64 {
        1.0 - self.a - self.b - self.c
    }
}

/// Generates a directed RMAT graph with `2^scale` vertices and `num_edges`
/// edges (duplicates and self-loops retained, as in most reference
/// generators — callers may `sort_and_dedup` if needed).
pub fn rmat(scale: u32, num_edges: usize, params: RmatParams, seed: u64) -> EdgeList {
    assert!((1..=31).contains(&scale), "scale out of range");
    let total = params.a + params.b + params.c + params.d();
    assert!(
        (total - 1.0).abs() < 1e-9 && params.d() >= 0.0,
        "probabilities must sum to 1"
    );
    let n = 1usize << scale;
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut el = EdgeList::with_capacity(n, num_edges);

    for _ in 0..num_edges {
        let (mut x, mut y) = (0u32, 0u32);
        for level in 0..scale {
            // Per-level smoothed probabilities.
            let jitter = |p: f64, rng: &mut SmallRng| -> f64 {
                if params.noise == 0.0 {
                    p
                } else {
                    p * (1.0 - params.noise / 2.0 + params.noise * rng.gen::<f64>())
                }
            };
            let a = jitter(params.a, &mut rng);
            let b = jitter(params.b, &mut rng);
            let c = jitter(params.c, &mut rng);
            let d = jitter(params.d(), &mut rng);
            let sum = a + b + c + d;
            let r = rng.gen::<f64>() * sum;
            let bit = 1u32 << (scale - 1 - level);
            if r < a {
                // top-left: no bits set
            } else if r < a + b {
                y |= bit;
            } else if r < a + b + c {
                x |= bit;
            } else {
                x |= bit;
                y |= bit;
            }
        }
        el.push(x, y);
    }
    el
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn respects_size() {
        let el = rmat(10, 5000, RmatParams::skewed(), 1);
        assert_eq!(el.num_vertices(), 1024);
        assert_eq!(el.num_edges(), 5000);
        el.validate().unwrap();
    }

    #[test]
    fn deterministic() {
        let a = rmat(8, 1000, RmatParams::skewed(), 7);
        let b = rmat(8, 1000, RmatParams::skewed(), 7);
        assert_eq!(a, b);
        let c = rmat(8, 1000, RmatParams::skewed(), 8);
        assert_ne!(a, c);
    }

    #[test]
    fn skewed_has_heavy_tail() {
        // With a = 0.57 low-id vertices accumulate much higher degree than
        // the mean; check the max out-degree well exceeds 10x the average.
        let el = rmat(12, 40_000, RmatParams::skewed(), 3);
        let deg = el.out_degrees();
        let max = *deg.iter().max().unwrap() as f64;
        let avg = 40_000.0 / 4096.0;
        assert!(max > 10.0 * avg, "max {max} vs avg {avg}");
    }

    #[test]
    fn uniform_params_behave_like_uniform() {
        // a=b=c=d=0.25 spreads degree nearly evenly.
        let p = RmatParams {
            a: 0.25,
            b: 0.25,
            c: 0.25,
            noise: 0.0,
        };
        let el = rmat(10, 50_000, p, 5);
        let deg = el.out_degrees();
        let max = *deg.iter().max().unwrap() as f64;
        let avg = 50_000.0 / 1024.0;
        assert!(max < 4.0 * avg, "max {max} vs avg {avg}");
    }

    #[test]
    #[should_panic(expected = "sum to 1")]
    fn rejects_bad_probabilities() {
        let p = RmatParams {
            a: 0.9,
            b: 0.2,
            c: 0.2,
            noise: 0.0,
        };
        let _ = rmat(4, 10, p, 0);
    }
}
