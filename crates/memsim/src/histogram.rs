//! Log2-bucketed histograms, the presentation format of Figure 2 (both axes
//! of that figure are logarithmic).

/// A histogram over `u64` values with power-of-two buckets: bucket 0 holds
/// the value 0, bucket `k >= 1` holds values in `[2^(k-1), 2^k - 1]`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LogHistogram {
    buckets: Vec<u64>,
    count: u64,
}

impl LogHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    fn bucket_of(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            (64 - value.leading_zeros()) as usize
        }
    }

    /// Adds one observation.
    #[inline]
    pub fn add(&mut self, value: u64) {
        let b = Self::bucket_of(value);
        if self.buckets.len() <= b {
            self.buckets.resize(b + 1, 0);
        }
        self.buckets[b] += 1;
        self.count += 1;
    }

    /// Number of observations.
    #[inline]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Bucket counts (index = bucket number).
    #[inline]
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    /// Inclusive value range of bucket `b`.
    pub fn bucket_range(b: usize) -> (u64, u64) {
        if b == 0 {
            (0, 0)
        } else {
            (1u64 << (b - 1), (1u64 << b) - 1)
        }
    }

    /// Largest observed bucket's upper bound (0 for an empty histogram) —
    /// the "worst-case reuse distance" Figure 2 shows contracting.
    pub fn max_bucket_upper(&self) -> u64 {
        match self.buckets.iter().rposition(|&c| c > 0) {
            Some(b) => Self::bucket_range(b).1,
            None => 0,
        }
    }

    /// Approximate quantile: upper bound of the bucket containing the
    /// `q`-quantile observation (`0.0 <= q <= 1.0`).
    pub fn quantile_upper(&self, q: f64) -> u64 {
        assert!((0.0..=1.0).contains(&q));
        if self.count == 0 {
            return 0;
        }
        let target = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut acc = 0;
        for (b, &c) in self.buckets.iter().enumerate() {
            acc += c;
            if acc >= target {
                return Self::bucket_range(b).1;
            }
        }
        self.max_bucket_upper()
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &LogHistogram) {
        if self.buckets.len() < other.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (b, &c) in other.buckets.iter().enumerate() {
            self.buckets[b] += c;
        }
        self.count += other.count;
    }

    /// Iterator over `(bucket_upper_bound, count)` pairs for plotting, with
    /// empty buckets skipped.
    pub fn series(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(b, &c)| (Self::bucket_range(b).1, c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(LogHistogram::bucket_of(0), 0);
        assert_eq!(LogHistogram::bucket_of(1), 1);
        assert_eq!(LogHistogram::bucket_of(2), 2);
        assert_eq!(LogHistogram::bucket_of(3), 2);
        assert_eq!(LogHistogram::bucket_of(4), 3);
        assert_eq!(LogHistogram::bucket_of(1023), 10);
        assert_eq!(LogHistogram::bucket_of(1024), 11);
        assert_eq!(LogHistogram::bucket_range(2), (2, 3));
        assert_eq!(LogHistogram::bucket_range(0), (0, 0));
    }

    #[test]
    fn add_and_count() {
        let mut h = LogHistogram::new();
        for v in [0u64, 1, 2, 3, 100] {
            h.add(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.buckets()[0], 1);
        assert_eq!(h.buckets()[1], 1);
        assert_eq!(h.buckets()[2], 2);
        assert_eq!(h.max_bucket_upper(), 127); // 100 is in [64, 127]
    }

    #[test]
    fn quantiles() {
        let mut h = LogHistogram::new();
        for _ in 0..90 {
            h.add(1);
        }
        for _ in 0..10 {
            h.add(1000);
        }
        assert_eq!(h.quantile_upper(0.5), 1);
        assert_eq!(h.quantile_upper(0.99), 1023);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = LogHistogram::new();
        a.add(5);
        let mut b = LogHistogram::new();
        b.add(5);
        b.add(1_000_000);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.buckets()[3], 2); // value 5 -> bucket 3 ([4,7])
    }

    #[test]
    fn series_skips_empty() {
        let mut h = LogHistogram::new();
        h.add(1);
        h.add(64);
        let s: Vec<_> = h.series().collect();
        assert_eq!(s, vec![(1, 1), (127, 1)]);
    }
}
