//! Edge traversal kernels and the Algorithm 2 decision procedure.
//!
//! Three production kernels correspond to the three frontier classes, plus
//! two extra kernels used by the Figure 5/6 ablations and the baseline
//! engines:
//!
//! | Kernel | Layout | Direction | Parallel over | Atomics |
//! |---|---|---|---|---|
//! | [`sparse_forward_csr`] | whole CSR | forward | active vertices | yes |
//! | [`medium_backward_csc`] | whole CSC | backward | destination ranges | no |
//! | [`dense_coo`] | partitioned COO | forward | partitions (or edge chunks) | configurable |
//! | [`dense_forward_partitioned_csr`] | partitioned CSR | forward | stored-vertex chunks | yes |
//! | [`dense_forward_csr`] | whole CSR | forward | all vertices | yes |
//!
//! All kernels deduplicate next-frontier insertions through an
//! [`AtomicBitmap`], so edge operators never see duplicate activations in
//! the produced frontier.

use gg_graph::bitmap::{AtomicBitmap, Bitmap};
use gg_graph::coo::PartitionedCoo;
use gg_graph::csc::Csc;
use gg_graph::csr::{Csr, PartitionedCsr, UnprunedPartitionedCsr};
use gg_graph::types::VertexId;
use gg_runtime::counters::{LocalTally, WorkCounters};
use gg_runtime::pool::Pool;

use crate::config::Thresholds;

/// A user-supplied edge operator, the analogue of Ligra's `update` /
/// `updateAtomic` / `cond` triple.
///
/// `update` is the **exclusive** path: the engine guarantees no other
/// thread updates `dst` concurrently (partitioning-by-destination with one
/// thread per partition). `update_atomic` must be safe under concurrent
/// calls targeting the same `dst`. Both return `true` when `dst` should
/// join the next frontier.
pub trait EdgeOp: Sync {
    /// Applies the edge `(src, dst)` with weight `w`; single-writer
    /// guarantee on `dst`.
    fn update(&self, src: VertexId, dst: VertexId, w: f32) -> bool;

    /// Applies the edge under possible write contention on `dst`.
    fn update_atomic(&self, src: VertexId, dst: VertexId, w: f32) -> bool;

    /// Returns `false` once `dst` no longer needs updates (enables early
    /// exit in backward traversal; e.g. BFS stops once a parent is found).
    #[inline]
    fn cond(&self, _dst: VertexId) -> bool {
        true
    }
}

/// Quantum width of the associative pre-reduction (edges per fold unit).
///
/// The reduce path ([`EdgeMapReduce`]) folds each destination's in-edge
/// scan in fixed runs of `REDUCE_QUANTUM` consecutive CSC slots, with run
/// boundaries at absolute multiples of the quantum within the scan —
/// independent of chunk caps, thread counts and steal schedules. Folding
/// per fixed quantum (rather than per sub-chunk) is what makes the reduced
/// result bit-identical across every schedule: the f64 grouping of the
/// accumulation is a property of the destination alone.
pub const REDUCE_QUANTUM: usize = 64;

/// An associative-accumulator extension of [`EdgeOp`] — the analogue of
/// Ligra's `edgeMapReduce`.
///
/// Operators whose per-destination update is a fold over an associative
/// operation (PR, SpMV, Bellman-Ford, BP) implement this so hub sub-chunks
/// can pre-reduce their `(source, weight)` contributions into accumulator
/// values *locally* — the dispatcher-side merge then costs one
/// [`combine`](Self::combine)-sized step per sub-chunk instead of
/// replaying every edge through [`EdgeOp::update`]. Traversal-style
/// operators with exclusive per-destination state machines (BFS, CC, BC)
/// do not implement it and keep the exclusive-update replay path.
///
/// Contract: `combine` must be associative with `identity()` as its unit,
/// and `apply(dst, fold(edges))` must have the same effect as updating
/// `dst` with each edge through the exclusive path (to within the f64
/// grouping fixed by [`REDUCE_QUANTUM`]). `apply` runs under the same
/// single-writer guarantee as [`EdgeOp::update`].
pub trait EdgeMapReduce: EdgeOp {
    /// The unit of [`combine`](Self::combine).
    fn identity(&self) -> f64;

    /// Folds one in-edge `(src, w)` of the destination into `acc`.
    fn accumulate(&self, acc: f64, src: VertexId, w: f32) -> f64;

    /// Associative merge of two accumulators.
    fn combine(&self, a: f64, b: f64) -> f64;

    /// Applies a folded accumulator to `dst` (single-writer guarantee);
    /// returns `true` when `dst` should join the next frontier.
    fn apply(&self, dst: VertexId, acc: f64) -> bool;
}

/// Which traversal class Algorithm 2 selected.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum EdgeKind {
    /// `metric <= |E| / 20`: forward over unpartitioned CSR.
    Sparse,
    /// `|E| / 20 < metric <= |E| / 2`: backward over unpartitioned CSC.
    Medium,
    /// `metric > |E| / 2`: partitioned COO.
    Dense,
}

/// Algorithm 2's classification: compares `metric = |F| + Σ deg_out(F)`
/// against `|E| / 2` and `|E| / 20`.
///
/// Kept as a compatibility alias; the single classifier now lives in the
/// traversal planner ([`crate::plan::classify`]), which both the monolithic
/// and the partitioned dispatch consult.
#[inline]
pub fn decide(metric: u64, num_edges: u64, th: &Thresholds) -> EdgeKind {
    crate::plan::classify(metric, num_edges, th)
}

/// Sparse frontier: forward traversal of the whole CSR over active
/// vertices only. Atomic updates (arbitrary destinations), next frontier
/// deduplicated through `scratch` (which is returned to all-zeros before
/// this function returns).
pub fn sparse_forward_csr<O: EdgeOp>(
    csr: &Csr,
    active: &[VertexId],
    op: &O,
    pool: &Pool,
    scratch: &AtomicBitmap,
    counters: &WorkCounters,
) -> Vec<VertexId> {
    if active.is_empty() {
        return Vec::new();
    }
    let tasks = (pool.threads() * 4).min(active.len());
    let chunks: Vec<Vec<VertexId>> = pool.map_indices(tasks, |t| {
        let lo = active.len() * t / tasks;
        let hi = active.len() * (t + 1) / tasks;
        let mut tally = LocalTally::new(counters);
        let mut out = Vec::new();
        for &u in &active[lo..hi] {
            tally.vertex();
            let range = csr.edge_range(u);
            for e in range {
                tally.edge();
                let v = csr.targets()[e];
                if op.cond(v) && op.update_atomic(u, v, csr.weight_at(e)) && scratch.set(v as usize)
                {
                    out.push(v);
                }
            }
        }
        out
    });
    let mut out: Vec<VertexId> = chunks.into_iter().flatten().collect();
    // Return the scratch bitmap to all-zeros: exactly the claimed bits are
    // listed in `out`.
    for &v in &out {
        scratch.unset(v as usize);
    }
    out.sort_unstable();
    out
}

/// Medium-dense frontier: backward (pull) traversal of the whole CSC with
/// partitioned computation ranges. One task per range; each destination is
/// updated by exactly one thread, so the exclusive `update` path is used
/// and no atomics are needed (§III.C). Early-exits a vertex's in-edge scan
/// once `op.cond` goes false.
pub fn medium_backward_csc<O: EdgeOp>(
    csc: &Csc,
    current: &Bitmap,
    op: &O,
    pool: &Pool,
    ranges: &[std::ops::Range<VertexId>],
    counters: &WorkCounters,
) -> AtomicBitmap {
    let n = csc.num_vertices();
    let next = AtomicBitmap::new(n);
    pool.for_each_index(ranges.len(), |r| {
        let mut tally = LocalTally::new(counters);
        for v in ranges[r].clone() {
            tally.vertex();
            if !op.cond(v) {
                continue;
            }
            let range = csc.edge_range(v);
            for e in range {
                tally.edge();
                let u = csc.sources()[e];
                if current.get(u as usize) {
                    if op.update(u, v, csc.weight_at(e)) {
                        next.set(v as usize);
                    }
                    if !op.cond(v) {
                        break;
                    }
                }
            }
        }
    });
    next
}

/// Dense frontier: traversal of the partitioned COO.
///
/// * `use_atomics == false` ("+na"): one task per partition, submitted in
///   NUMA-domain-major `order`; value updates take the exclusive path.
/// * `use_atomics == true` ("+a"): the flat edge array is chunked across
///   all threads irrespective of partition boundaries; updates take the
///   atomic path. This is the configuration the paper shows losing
///   6.1–23.7 % at ≥48 partitions.
pub fn dense_coo<O: EdgeOp>(
    coo: &PartitionedCoo,
    current: &Bitmap,
    op: &O,
    pool: &Pool,
    order: &[usize],
    use_atomics: bool,
    counters: &WorkCounters,
) -> AtomicBitmap {
    let n = coo.num_vertices();
    let next = AtomicBitmap::new(n);
    if use_atomics {
        let srcs = coo.coo().srcs();
        let dsts = coo.coo().dsts();
        let weights = coo.coo().weights();
        pool.for_each_chunk(coo.num_edges(), pool.threads() * 8, |lo, hi| {
            let mut tally = LocalTally::new(counters);
            tally.edges_n((hi - lo) as u64);
            for e in lo..hi {
                let u = srcs[e];
                if current.get(u as usize) {
                    let v = dsts[e];
                    let w = weights.map_or(1.0, |w| w[e]);
                    if op.cond(v) && op.update_atomic(u, v, w) {
                        next.set(v as usize);
                    }
                }
            }
        });
    } else {
        pool.for_each_in_order(order, |p| {
            let mut tally = LocalTally::new(counters);
            let srcs = coo.part_srcs(p);
            let dsts = coo.part_dsts(p);
            let weights = coo.part_weights(p);
            tally.edges_n(srcs.len() as u64);
            for e in 0..srcs.len() {
                let u = srcs[e];
                if current.get(u as usize) {
                    let v = dsts[e];
                    let w = weights.map_or(1.0, |w| w[e]);
                    if op.cond(v) && op.update(u, v, w) {
                        next.set(v as usize);
                    }
                }
            }
        });
    }
    next
}

/// Figure 5's "CSR + a" configuration: forward traversal of the pruned
/// partitioned CSR. Partitions are processed in parallel *and* a
/// partition's stored sources are chunked across threads, so updates are
/// atomic ("atomics are unavoidable when using CSR due to partitioning by
/// destination", §IV.A). Every stored vertex replica is visited, making
/// the §II.F work increase measurable through `counters`.
pub fn dense_forward_partitioned_csr<O: EdgeOp>(
    pcsr: &PartitionedCsr,
    current: &Bitmap,
    op: &O,
    pool: &Pool,
    counters: &WorkCounters,
) -> AtomicBitmap {
    const CHUNK: usize = 2048;
    let n = current.len();
    let next = AtomicBitmap::new(n);
    // Flatten (partition, stored-vertex chunk) pairs into a task list.
    let mut tasks = Vec::new();
    for p in 0..pcsr.num_partitions() {
        let sv = pcsr.part(p).num_stored_vertices();
        let mut lo = 0;
        while lo < sv {
            tasks.push((p, lo, (lo + CHUNK).min(sv)));
            lo += CHUNK;
        }
    }
    pool.for_each_index(tasks.len(), |t| {
        let (p, lo, hi) = tasks[t];
        let part = pcsr.part(p);
        let mut tally = LocalTally::new(counters);
        for i in lo..hi {
            tally.vertex();
            let u = part.vertex_ids()[i];
            if current.get(u as usize) {
                for e in part.edge_range_at(i) {
                    tally.edge();
                    let v = part.targets()[e];
                    if op.cond(v) && op.update_atomic(u, v, part.weight_at(e)) {
                        next.set(v as usize);
                    }
                }
            }
        }
    });
    next
}

/// Ligra's dense forward configuration: push over the whole CSR, all
/// vertices scanned, atomic updates.
pub fn dense_forward_csr<O: EdgeOp>(
    csr: &Csr,
    current: &Bitmap,
    op: &O,
    pool: &Pool,
    counters: &WorkCounters,
) -> AtomicBitmap {
    let n = csr.num_vertices();
    let next = AtomicBitmap::new(n);
    pool.for_each_chunk(n, pool.threads() * 8, |lo, hi| {
        let mut tally = LocalTally::new(counters);
        for u in lo as VertexId..hi as VertexId {
            tally.vertex();
            if current.get(u as usize) {
                for e in csr.edge_range(u) {
                    tally.edge();
                    let v = csr.targets()[e];
                    if op.cond(v) && op.update_atomic(u, v, csr.weight_at(e)) {
                        next.set(v as usize);
                    }
                }
            }
        }
    });
    next
}

/// Polymer's dense forward configuration: per-partition full-width CSRs
/// (zero-degree vertices *not* pruned, §II.E), so every partition scans all
/// `n` offsets — the storage and work overhead Polymer pays at higher
/// partition counts.
pub fn dense_forward_unpruned_csr<O: EdgeOp>(
    up: &UnprunedPartitionedCsr,
    current: &Bitmap,
    op: &O,
    pool: &Pool,
    counters: &WorkCounters,
) -> AtomicBitmap {
    const CHUNK: usize = 4096;
    let n = current.len();
    let next = AtomicBitmap::new(n);
    let mut tasks = Vec::new();
    for p in 0..up.num_partitions() {
        let mut lo = 0;
        while lo < n {
            tasks.push((p, lo, (lo + CHUNK).min(n)));
            lo += CHUNK;
        }
    }
    pool.for_each_index(tasks.len(), |t| {
        let (p, lo, hi) = tasks[t];
        let part = up.part(p);
        let mut tally = LocalTally::new(counters);
        for u in lo as VertexId..hi as VertexId {
            tally.vertex();
            if part.out_degree(u) > 0 && current.get(u as usize) {
                for e in part.edge_range(u) {
                    tally.edge();
                    let v = part.targets()[e];
                    if op.cond(v) && op.update_atomic(u, v, part.weight_at(e)) {
                        next.set(v as usize);
                    }
                }
            }
        }
    });
    next
}

#[cfg(test)]
mod tests {
    use super::*;
    use gg_graph::edge_list::EdgeList;
    use gg_graph::partition::{PartitionBy, PartitionSet};
    use gg_graph::reorder::EdgeOrder;
    use std::sync::atomic::{AtomicU32, Ordering};

    /// Counts how many times each destination is touched.
    struct TouchCount {
        hits: Vec<AtomicU32>,
    }

    impl TouchCount {
        fn new(n: usize) -> Self {
            TouchCount {
                hits: gg_runtime::atomics::atomic_u32_vec(n, 0),
            }
        }
        fn total(&self) -> u32 {
            self.hits.iter().map(|h| h.load(Ordering::Relaxed)).sum()
        }
    }

    impl EdgeOp for TouchCount {
        fn update(&self, _s: u32, d: u32, _w: f32) -> bool {
            self.hits[d as usize].fetch_add(1, Ordering::Relaxed);
            true
        }
        fn update_atomic(&self, s: u32, d: u32, w: f32) -> bool {
            self.update(s, d, w)
        }
    }

    fn diamond() -> EdgeList {
        // 0 -> {1,2} -> 3, plus 3 -> 0 back edge.
        EdgeList::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3), (3, 0)])
    }

    #[test]
    fn decide_uses_paper_thresholds() {
        let th = Thresholds::default();
        // |E| = 100: sparse <= 5, medium <= 50, dense > 50.
        assert_eq!(decide(5, 100, &th), EdgeKind::Sparse);
        assert_eq!(decide(6, 100, &th), EdgeKind::Medium);
        assert_eq!(decide(50, 100, &th), EdgeKind::Medium);
        assert_eq!(decide(51, 100, &th), EdgeKind::Dense);
    }

    #[test]
    fn sparse_kernel_visits_out_edges_of_active() {
        let el = diamond();
        let csr = Csr::from_edge_list(&el);
        let pool = Pool::new(2);
        let scratch = AtomicBitmap::new(4);
        let counters = WorkCounters::new();
        let op = TouchCount::new(4);
        let out = sparse_forward_csr(&csr, &[0], &op, &pool, &scratch, &counters);
        assert_eq!(out, vec![1, 2]);
        assert_eq!(op.total(), 2);
        assert_eq!(counters.edges(), 2);
        assert_eq!(counters.vertices(), 1);
        // Scratch is restored to zero.
        assert_eq!(scratch.count_ones(), 0);
    }

    #[test]
    fn sparse_kernel_dedups_next_frontier() {
        // Both 1 and 2 push to 3; 3 must appear once.
        let el = diamond();
        let csr = Csr::from_edge_list(&el);
        let pool = Pool::new(2);
        let scratch = AtomicBitmap::new(4);
        let counters = WorkCounters::new();
        let op = TouchCount::new(4);
        let out = sparse_forward_csr(&csr, &[1, 2], &op, &pool, &scratch, &counters);
        assert_eq!(out, vec![3]);
        // ... but the operator saw both updates.
        assert_eq!(op.hits[3].load(Ordering::Relaxed), 2);
    }

    #[test]
    fn medium_kernel_matches_sparse_result() {
        let el = diamond();
        let csr = Csr::from_edge_list(&el);
        let csc = Csc::from_edge_list(&el);
        let pool = Pool::new(2);
        let counters = WorkCounters::new();

        let scratch = AtomicBitmap::new(4);
        let op1 = TouchCount::new(4);
        let sparse_next = sparse_forward_csr(&csr, &[0, 3], &op1, &pool, &scratch, &counters);

        let current = Bitmap::from_indices(4, &[0, 3]);
        let op2 = TouchCount::new(4);
        let ranges = vec![0u32..2u32, 2u32..4u32];
        let medium_next = medium_backward_csc(&csc, &current, &op2, &pool, &ranges, &counters);
        let mut medium_list: Vec<u32> = medium_next
            .into_bitmap()
            .iter_ones()
            .map(|i| i as u32)
            .collect();
        medium_list.sort_unstable();
        assert_eq!(sparse_next, medium_list);
        assert_eq!(op1.total(), op2.total());
    }

    #[test]
    fn dense_coo_exclusive_and_atomic_agree() {
        let el = gg_graph::generators::rmat(7, 800, gg_graph::generators::RmatParams::skewed(), 9);
        let set = PartitionSet::edge_balanced(&el.in_degrees(), 4, PartitionBy::Destination);
        let coo = PartitionedCoo::new(&el, &set, EdgeOrder::Hilbert);
        let pool = Pool::new(4);
        let counters = WorkCounters::new();
        let current = Bitmap::full(el.num_vertices());
        let order: Vec<usize> = (0..4).collect();

        let op_na = TouchCount::new(el.num_vertices());
        let next_na = dense_coo(&coo, &current, &op_na, &pool, &order, false, &counters);
        let op_a = TouchCount::new(el.num_vertices());
        let next_a = dense_coo(&coo, &current, &op_a, &pool, &order, true, &counters);

        assert_eq!(op_na.total(), 800);
        assert_eq!(op_a.total(), 800);
        assert_eq!(next_na.into_bitmap(), next_a.into_bitmap());
    }

    #[test]
    fn dense_coo_respects_current_frontier() {
        let el = diamond();
        let set = PartitionSet::whole(4, PartitionBy::Destination);
        let coo = PartitionedCoo::new(&el, &set, EdgeOrder::Source);
        let pool = Pool::new(2);
        let counters = WorkCounters::new();
        // Only vertex 3 active: its single out-edge goes to 0.
        let current = Bitmap::from_indices(4, &[3]);
        let op = TouchCount::new(4);
        let next = dense_coo(&coo, &current, &op, &pool, &[0], false, &counters);
        assert_eq!(op.total(), 1);
        let ones: Vec<usize> = next.into_bitmap().iter_ones().collect();
        assert_eq!(ones, vec![0]);
        // COO always scans all edges.
        assert_eq!(counters.edges(), 5);
    }

    #[test]
    fn partitioned_csr_kernel_counts_replicas() {
        let el = diamond();
        let set = PartitionSet::vertex_balanced(4, 2, PartitionBy::Destination);
        let pcsr = PartitionedCsr::new(&el, &set);
        let pool = Pool::new(2);
        let counters = WorkCounters::new();
        let current = Bitmap::full(4);
        let op = TouchCount::new(4);
        let next = dense_forward_partitioned_csr(&pcsr, &current, &op, &pool, &counters);
        assert_eq!(op.total(), 5);
        assert_eq!(next.count_ones(), 4);
        // Vertex visits equal total stored (replicated) vertices, > n when
        // replication occurs.
        assert_eq!(counters.vertices() as usize, pcsr.total_stored_vertices());
    }

    #[test]
    fn whole_csr_dense_kernel_equivalent() {
        let el = gg_graph::generators::erdos_renyi(80, 600, 4);
        let csr = Csr::from_edge_list(&el);
        let pool = Pool::new(2);
        let counters = WorkCounters::new();
        let current = Bitmap::full(80);
        let op = TouchCount::new(80);
        let next = dense_forward_csr(&csr, &current, &op, &pool, &counters);
        assert_eq!(op.total(), 600);
        // Every vertex with an in-edge is in the next frontier.
        let expected = el.in_degrees().iter().filter(|&&d| d > 0).count();
        assert_eq!(next.count_ones(), expected);
    }

    #[test]
    fn unpruned_kernel_scans_all_vertices_per_partition() {
        let el = diamond();
        let set = PartitionSet::vertex_balanced(4, 2, PartitionBy::Destination);
        let up = UnprunedPartitionedCsr::new(&el, &set);
        let pool = Pool::new(2);
        let counters = WorkCounters::new();
        let current = Bitmap::full(4);
        let op = TouchCount::new(4);
        let _ = dense_forward_unpruned_csr(&up, &current, &op, &pool, &counters);
        assert_eq!(op.total(), 5);
        // Work increase: 2 partitions x 4 vertices scanned.
        assert_eq!(counters.vertices(), 8);
    }

    /// BFS-style op exercising cond-based early exit.
    struct ClaimOnce {
        parent: Vec<AtomicU32>,
    }

    impl EdgeOp for ClaimOnce {
        fn update(&self, s: u32, d: u32, _w: f32) -> bool {
            // Exclusive path: plain check-then-store.
            if self.parent[d as usize].load(Ordering::Relaxed) == u32::MAX {
                self.parent[d as usize].store(s, Ordering::Relaxed);
                true
            } else {
                false
            }
        }
        fn update_atomic(&self, s: u32, d: u32, _w: f32) -> bool {
            self.parent[d as usize]
                .compare_exchange(u32::MAX, s, Ordering::Relaxed, Ordering::Relaxed)
                .is_ok()
        }
        fn cond(&self, d: u32) -> bool {
            self.parent[d as usize].load(Ordering::Relaxed) == u32::MAX
        }
    }

    #[test]
    fn cond_early_exit_in_pull() {
        // Star pointing at vertex 0 from many sources: pull should claim a
        // single parent and stop scanning.
        let mut el = EdgeList::new(9);
        for s in 1..9 {
            el.push(s, 0);
        }
        let csc = Csc::from_edge_list(&el);
        let pool = Pool::new(1);
        let counters = WorkCounters::new();
        let op = ClaimOnce {
            parent: gg_runtime::atomics::atomic_u32_vec(9, u32::MAX),
        };
        let current = Bitmap::full(9);
        #[allow(clippy::single_range_in_vec_init)]
        let ranges = [0u32..9u32];
        let next = medium_backward_csc(&csc, &current, &op, &pool, &ranges, &counters);
        assert_eq!(next.count_ones(), 1);
        // Early exit: only one in-edge of vertex 0 was examined.
        assert_eq!(counters.edges(), 1);
        assert_ne!(op.parent[0].load(Ordering::Relaxed), u32::MAX);
    }
}
