//! Fundamental scalar types shared across all graph layouts.
//!
//! Vertex identifiers are 32-bit (the paper's storage model, §II.E, assumes
//! `bv = 4` bytes per vertex id); edge-list indices are machine words
//! (`be = 8` bytes), matching the Compressed Sparse Row convention of
//! SPARSKIT-style formats.

/// Identifier of a vertex. Dense in `0..n`.
pub type VertexId = u32;

/// Index into an edge array (offsets in CSR/CSC, positions in COO).
pub type EdgeId = usize;

/// Sentinel for "no vertex" (e.g. an unvisited BFS parent).
pub const INVALID_VERTEX: VertexId = VertexId::MAX;

/// Bytes used to store one vertex identifier (`bv` in the paper's §II.E
/// storage model).
pub const BYTES_PER_VERTEX_ID: usize = std::mem::size_of::<VertexId>();

/// Bytes used to store one edge-list index (`be` in the paper's §II.E
/// storage model).
pub const BYTES_PER_EDGE_INDEX: usize = std::mem::size_of::<EdgeId>();

/// A directed edge `(src, dst)`.
pub type Edge = (VertexId, VertexId);

/// Returns the number of vertices implied by an iterator of edges: one more
/// than the maximum endpoint, or zero for an empty iterator.
pub fn implied_vertex_count<I: IntoIterator<Item = Edge>>(edges: I) -> usize {
    edges
        .into_iter()
        .map(|(u, v)| u.max(v) as usize + 1)
        .max()
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn implied_count_empty() {
        assert_eq!(implied_vertex_count(Vec::new()), 0);
    }

    #[test]
    fn implied_count_max_endpoint() {
        assert_eq!(implied_vertex_count(vec![(0, 3), (2, 1)]), 4);
        assert_eq!(implied_vertex_count(vec![(7, 0)]), 8);
    }

    #[test]
    fn storage_constants_match_paper() {
        // The §II.E model uses bv = 4 and be = 8 on 64-bit targets.
        assert_eq!(BYTES_PER_VERTEX_ID, 4);
        assert_eq!(BYTES_PER_EDGE_INDEX, 8);
    }
}
