//! Edge-weight generation.
//!
//! Bellman–Ford, SPMV and belief propagation need weighted graphs; the
//! synthetic data sets attach weights with these helpers. Deterministic
//! given the seed.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::edge_list::EdgeList;

/// Attaches independent uniform weights in `[lo, hi)` to every edge.
pub fn attach_uniform(el: &mut EdgeList, lo: f32, hi: f32, seed: u64) {
    assert!(lo < hi, "empty weight range");
    let mut rng = SmallRng::seed_from_u64(seed);
    let w: Vec<f32> = (0..el.num_edges()).map(|_| rng.gen_range(lo..hi)).collect();
    el.set_weights(w);
}

/// Attaches unit weights (makes weighted algorithms behave like their
/// unweighted counterparts; useful for validation).
pub fn attach_unit(el: &mut EdgeList) {
    el.set_weights(vec![1.0; el.num_edges()]);
}

/// Attaches integer-valued weights drawn uniformly from `1..=max`, stored
/// as `f32`. Shortest-path tests use integral weights so distances compare
/// exactly.
pub fn attach_integer(el: &mut EdgeList, max: u32, seed: u64) {
    assert!(max >= 1);
    let mut rng = SmallRng::seed_from_u64(seed);
    let w: Vec<f32> = (0..el.num_edges())
        .map(|_| rng.gen_range(1..=max) as f32)
        .collect();
    el.set_weights(w);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_in_range_and_deterministic() {
        let mut a = EdgeList::from_edges(3, &[(0, 1), (1, 2), (2, 0)]);
        let mut b = a.clone();
        attach_uniform(&mut a, 0.5, 2.0, 42);
        attach_uniform(&mut b, 0.5, 2.0, 42);
        assert_eq!(a.weights(), b.weights());
        for w in a.weights().unwrap() {
            assert!((0.5..2.0).contains(w));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = EdgeList::from_edges(2, [(0, 1); 32].to_vec().as_slice());
        let mut b = a.clone();
        attach_uniform(&mut a, 0.0, 1.0, 1);
        attach_uniform(&mut b, 0.0, 1.0, 2);
        assert_ne!(a.weights(), b.weights());
    }

    #[test]
    fn unit_weights() {
        let mut el = EdgeList::from_edges(2, &[(0, 1), (1, 0)]);
        attach_unit(&mut el);
        assert_eq!(el.weights().unwrap(), &[1.0, 1.0]);
    }

    #[test]
    fn integer_weights_are_integral() {
        let mut el = EdgeList::from_edges(2, [(0, 1); 64].to_vec().as_slice());
        attach_integer(&mut el, 10, 7);
        for &w in el.weights().unwrap() {
            assert!((1.0..=10.0).contains(&w));
            assert_eq!(w.fract(), 0.0);
        }
    }
}
