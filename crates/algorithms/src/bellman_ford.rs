//! Bellman-Ford single-source shortest paths (vertex-oriented, forward).
//!
//! Frontier-driven relaxation: a vertex joins the next frontier when its
//! distance decreased this round. Non-negative weights assumed (the
//! evaluation's road networks and random weights satisfy this; negative
//! cycles would require the classic |V|-round cutoff, which is also
//! enforced as a safety net).

use gg_core::edge_map::{EdgeMapReduce, EdgeOp};
use gg_core::engine::Engine;
use gg_graph::types::VertexId;
use gg_runtime::atomics::{atomic_f32_vec, snapshot_f32, AtomicF32};

use crate::Algorithm;

/// Bellman-Ford output.
#[derive(Clone, Debug, PartialEq)]
pub struct BfResult {
    /// Distance from the source (`f32::INFINITY` = unreachable).
    pub dist: Vec<f32>,
    /// Edge-map rounds executed.
    pub rounds: usize,
}

/// One relaxation round. Source distances are read from `prev`, a
/// snapshot frozen at round start. The earlier implementation read
/// `dist` live — despite documenting the sources as "frozen for the
/// round" — so a relaxation could ride an in-round update and cascade
/// several hops wherever the schedule ran the producing edge first; the
/// record/replay harness flagged the round trajectory as
/// thread-count-dependent. With frozen sources the round is a
/// commutative `min` over candidates, bit-identical under every
/// schedule.
struct RelaxRound<'a> {
    prev: &'a [f32],
    dist: &'a [AtomicF32],
}

impl EdgeOp for RelaxRound<'_> {
    #[inline]
    fn update(&self, src: VertexId, dst: VertexId, w: f32) -> bool {
        let cand = self.prev[src as usize] + w;
        self.dist[dst as usize].min_exclusive(cand)
    }

    #[inline]
    fn update_atomic(&self, src: VertexId, dst: VertexId, w: f32) -> bool {
        let cand = self.prev[src as usize] + w;
        self.dist[dst as usize].fetch_min(cand)
    }
}

/// Relaxation is an associative `min` over candidate distances (source
/// distances are frozen for the round), so hub sub-chunks can pre-reduce
/// locally. The f32 candidate widens to f64 exactly, so folding loses no
/// precision.
impl EdgeMapReduce for RelaxRound<'_> {
    #[inline]
    fn identity(&self) -> f64 {
        f64::INFINITY
    }

    #[inline]
    fn accumulate(&self, acc: f64, src: VertexId, w: f32) -> f64 {
        acc.min((self.prev[src as usize] + w) as f64)
    }

    #[inline]
    fn combine(&self, a: f64, b: f64) -> f64 {
        a.min(b)
    }

    #[inline]
    fn apply(&self, dst: VertexId, acc: f64) -> bool {
        self.dist[dst as usize].min_exclusive(acc as f32)
    }
}

/// Runs Bellman-Ford from `source`.
pub fn bellman_ford<E: Engine>(engine: &E, source: VertexId) -> BfResult {
    let n = engine.num_vertices();
    let dist = atomic_f32_vec(n, f32::INFINITY);
    dist[source as usize].store(0.0);
    let mut frontier = engine.frontier_single(source);
    let mut rounds = 0usize;
    let spec = Algorithm::Bf.spec();
    // Safety cutoff: n rounds suffice for non-negative weights.
    while !frontier.is_empty() && rounds <= n {
        let prev = snapshot_f32(&dist);
        let op = RelaxRound {
            prev: &prev,
            dist: &dist,
        };
        frontier = engine.edge_map_reduce(&frontier, &op, spec);
        rounds += 1;
    }
    BfResult {
        dist: snapshot_f32(&dist),
        rounds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;
    use crate::validate::assert_close_f32;
    use gg_core::config::Config;
    use gg_core::engine::GraphGrind2;
    use gg_graph::generators;

    #[test]
    fn matches_dijkstra_on_random_graph() {
        let mut el = generators::erdos_renyi(200, 2400, 12);
        gg_graph::weights::attach_integer(&mut el, 10, 5);
        let engine = GraphGrind2::new(&el, Config::for_tests());
        let got = bellman_ford(&engine, 0);
        assert_close_f32(&got.dist, &reference::dijkstra(&el, 0), 1e-5, 1e-5);
    }

    #[test]
    fn matches_dijkstra_on_road_grid() {
        let mut el = generators::grid_road(12, 12, 0.1, 3);
        gg_graph::weights::attach_uniform(&mut el, 0.5, 2.0, 9);
        let engine = GraphGrind2::new(&el, Config::for_tests());
        let got = bellman_ford(&engine, 0);
        assert_close_f32(&got.dist, &reference::dijkstra(&el, 0), 1e-5, 1e-5);
    }

    #[test]
    fn unweighted_distances_equal_bfs_levels() {
        let el = generators::binary_tree(31);
        let engine = GraphGrind2::new(&el, Config::for_tests());
        let got = bellman_ford(&engine, 0);
        let levels = reference::bfs_levels(&el, 0);
        for (v, &lvl) in levels.iter().enumerate() {
            if lvl == u32::MAX {
                assert!(got.dist[v].is_infinite());
            } else {
                assert_eq!(got.dist[v], lvl as f32);
            }
        }
    }

    #[test]
    fn unreachable_stays_infinite() {
        let el = gg_graph::edge_list::EdgeList::from_edges(4, &[(0, 1), (2, 3)]);
        let engine = GraphGrind2::new(&el, Config::for_tests());
        let got = bellman_ford(&engine, 0);
        assert_eq!(got.dist[1], 1.0);
        assert!(got.dist[2].is_infinite());
        assert!(got.dist[3].is_infinite());
    }
}
