//! Smoke tests for the `repro` binary: run a representative subset of
//! experiments at `--tiny` scale so the reproduction harness cannot
//! silently rot. Numbers are not checked — only that each experiment runs
//! to completion and emits its table.

use std::process::Command;

fn run_repro(args: &[&str]) -> String {
    let out = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(args)
        .output()
        .expect("failed to launch repro");
    assert!(
        out.status.success(),
        "repro {:?} exited with {:?}\nstdout:\n{}\nstderr:\n{}",
        args,
        out.status,
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr),
    );
    String::from_utf8(out.stdout).expect("repro output must be UTF-8")
}

#[test]
fn tab1_tiny_lists_all_datasets() {
    let out = run_repro(&["tab1", "--tiny"]);
    for name in [
        "Twitter",
        "Friendster",
        "Orkut",
        "LiveJournal",
        "Yahoo_mem",
        "USAroad",
        "Powerlaw",
        "RMAT27",
    ] {
        assert!(out.contains(name), "missing dataset {name} in:\n{out}");
    }
}

#[test]
fn tab2_tiny_runs_all_algorithms_on_gg2() {
    // Exercises Workload::prepare + run_algorithm for all 8 algorithms on
    // the adaptive engine, including the kernel-mix reporting.
    let out = run_repro(&["tab2", "--tiny"]);
    for code in ["BC", "CC", "PR", "BFS", "PRDelta", "SPMV", "BF", "BP"] {
        assert!(out.contains(code), "missing algorithm {code} in:\n{out}");
    }
}

#[test]
fn fig3_tiny_reports_replication_factors() {
    let out = run_repro(&["fig3", "--tiny"]);
    assert!(out.contains("replication factor"), "{out}");
    // The 384-partition column of the sweep must be present.
    assert!(out.contains("384"), "{out}");
}

#[test]
fn heuristic_tiny_suggests_a_partition_count() {
    let out = run_repro(&["heuristic", "--tiny"]);
    assert!(out.contains("heuristic suggests P ="), "{out}");
    assert!(out.contains("<- suggested"), "{out}");
}

#[test]
fn smoke_tiny_diffs_both_executors_and_output_representations() {
    // The differential smoke experiment runs every algorithm on both
    // executors and both output representations and exits non-zero on any
    // disagreement — so this suite cannot pass on the sequential path
    // alone.
    let out = run_repro(&["smoke", "--tiny"]);
    assert!(out.contains("SMOKE OK"), "{out}");
    assert!(
        out.contains("2 executors x 2 output representations"),
        "{out}"
    );
    for code in ["BC", "CC", "PR", "BFS", "PRDelta", "SPMV", "BF", "BP"] {
        assert!(out.contains(code), "missing algorithm {code} in:\n{out}");
    }
    assert!(!out.contains("MISMATCH"), "{out}");
    assert!(!out.contains("FAIL"), "{out}");
}

#[test]
fn sparse_output_tiny_writes_the_bench_json() {
    // Run in a scratch directory so BENCH_sparse_output.json lands there.
    let dir = std::env::temp_dir().join(format!("gg-sparse-output-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    let out = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(["sparse_output", "--tiny", "--scenario", "grid"])
        .current_dir(&dir)
        .output()
        .expect("failed to launch repro");
    assert!(
        out.status.success(),
        "sparse_output exited with {:?}\nstderr:\n{}",
        out.status,
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("merge words"), "{stdout}");
    let json = std::fs::read_to_string(dir.join("BENCH_sparse_output.json"))
        .expect("bench JSON must be written");
    for key in [
        "\"bench\": \"sparse_output\"",
        "\"scenario\": \"grid\"",
        "\"algorithm\": \"BFS\"",
        "\"algorithm\": \"BF\"",
        "\"merge_words_sparse\": 0",
        "speedup_sparse_vs_dense",
    ] {
        assert!(json.contains(key), "missing {key} in:\n{json}");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn load_balance_tiny_writes_the_bench_json() {
    // Run in a scratch directory so BENCH_load_balance.json lands there.
    let dir = std::env::temp_dir().join(format!("gg-load-balance-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    let out = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(["load_balance", "--tiny", "--hubs", "8", "--adaptive"])
        .current_dir(&dir)
        .output()
        .expect("failed to launch repro");
    assert!(
        out.status.success(),
        "load_balance exited with {:?}\nstderr:\n{}",
        out.status,
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("steals"), "{stdout}");
    assert!(stdout.contains("powerlaw"), "{stdout}");
    let json = std::fs::read_to_string(dir.join("BENCH_load_balance.json"))
        .expect("bench JSON must be written");
    for key in [
        "\"bench\": \"load_balance\"",
        "\"scenario\": \"powerlaw\"",
        "\"hubs\": 8",
        "\"algorithm\": \"PR\"",
        "\"algorithm\": \"BFS\"",
        "\"mode\": \"partition-granular\"",
        "\"mode\": \"chunked\"",
        "\"mode\": \"adaptive\"",
        "max_chunk_edges",
        "cross_domain_steals",
        "hub_subchunks",
        "top_hub_in_degree",
        "pool_spawns",
        "pool_epochs",
    ] {
        assert!(json.contains(key), "missing {key} in:\n{json}");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn chunk_overhead_tiny_reports_the_break_even_point() {
    let out = run_repro(&["chunk_overhead", "--tiny"]);
    assert!(out.contains("per-edge cost"), "{out}");
    assert!(out.contains("per-chunk cost"), "{out}");
    assert!(out.contains("break-even"), "{out}");
    assert!(out.contains("HUB_SPLIT_OVERHEAD_EDGES"), "{out}");
}

#[test]
fn load_balance_tiny_reports_per_rep_samples() {
    let dir = std::env::temp_dir().join(format!("gg-load-balance-stats-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    let out = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(["load_balance", "--tiny", "--hubs", "8", "--reps", "2"])
        .current_dir(&dir)
        .output()
        .expect("failed to launch repro");
    assert!(out.status.success(), "{:?}", out.status);
    let json = std::fs::read_to_string(dir.join("BENCH_load_balance.json"))
        .expect("bench JSON must be written");
    for key in ["\"time_min_s\"", "\"time_mean_s\"", "\"samples\": ["] {
        assert!(json.contains(key), "missing {key} in:\n{json}");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn unknown_experiment_fails_with_usage() {
    let out = Command::new(env!("CARGO_BIN_EXE_repro"))
        .output()
        .expect("failed to launch repro");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("usage:"), "{err}");
}
