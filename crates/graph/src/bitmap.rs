//! Fixed-size bitmaps used for dense frontier representation.
//!
//! The paper represents dense and medium-dense frontiers as bitmaps (§II.A).
//! Two variants are provided:
//!
//! * [`Bitmap`] — a plain, single-owner bitmap with fast word-level scans;
//! * [`AtomicBitmap`] — a concurrently writable bitmap used as the *next*
//!   frontier while an edge map is in flight. Bits are set with relaxed
//!   `fetch_or`, which is an unconditional read-modify-write: far cheaper
//!   than the compare-and-set loops the paper's "+a" configurations need for
//!   value updates, and safe even when a 64-bit word straddles a partition
//!   boundary.

use std::sync::atomic::{AtomicU64, Ordering};

const WORD_BITS: usize = 64;

#[inline]
fn word_count(len: usize) -> usize {
    len.div_ceil(WORD_BITS)
}

/// A plain fixed-length bitmap over `len` bits.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Bitmap {
    words: Vec<u64>,
    len: usize,
}

impl Bitmap {
    /// Creates an all-zeros bitmap of `len` bits.
    pub fn new(len: usize) -> Self {
        Bitmap {
            words: vec![0; word_count(len)],
            len,
        }
    }

    /// Creates an all-ones bitmap of `len` bits.
    pub fn full(len: usize) -> Self {
        let mut b = Bitmap {
            words: vec![u64::MAX; word_count(len)],
            len,
        };
        b.clear_tail();
        b
    }

    /// Number of bits.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the bitmap has zero bits.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Zeroes any bits beyond `len` in the final word so `count_ones` stays
    /// exact.
    fn clear_tail(&mut self) {
        let tail = self.len % WORD_BITS;
        if tail != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
    }

    /// Reads bit `i`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        (self.words[i / WORD_BITS] >> (i % WORD_BITS)) & 1 == 1
    }

    /// Sets bit `i`.
    #[inline]
    pub fn set(&mut self, i: usize) {
        debug_assert!(i < self.len);
        self.words[i / WORD_BITS] |= 1u64 << (i % WORD_BITS);
    }

    /// Clears bit `i`.
    #[inline]
    pub fn unset(&mut self, i: usize) {
        debug_assert!(i < self.len);
        self.words[i / WORD_BITS] &= !(1u64 << (i % WORD_BITS));
    }

    /// Clears every bit.
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Iterates the indices of set bits in increasing order.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut bits = w;
            std::iter::from_fn(move || {
                if bits == 0 {
                    None
                } else {
                    let b = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    Some(wi * WORD_BITS + b)
                }
            })
        })
    }

    /// Calls `f` for every set bit within `range`, in increasing order.
    /// Word-level scan with boundary-word masking — the shared primitive
    /// behind per-partition frontier statistics and vertex maps.
    pub fn for_each_one_in_range<F: FnMut(usize)>(&self, range: std::ops::Range<usize>, mut f: F) {
        let (start, end) = (range.start, range.end);
        debug_assert!(start <= end && end <= self.len);
        if start >= end {
            return;
        }
        let first = start / WORD_BITS;
        for (off, &word) in self.words[first..end.div_ceil(WORD_BITS)]
            .iter()
            .enumerate()
        {
            let wi = first + off;
            let mut bits = word;
            // Mask off bits outside [start, end) in boundary words.
            if wi == first {
                bits &= u64::MAX << (start % WORD_BITS);
            }
            if wi == end / WORD_BITS && end % WORD_BITS != 0 {
                bits &= (1u64 << (end % WORD_BITS)) - 1;
            }
            while bits != 0 {
                let b = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                f(wi * WORD_BITS + b);
            }
        }
    }

    /// Raw word storage (read-only), for bulk operations.
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Builds a bitmap of `len` bits with the given indices set.
    pub fn from_indices(len: usize, idxs: &[u32]) -> Self {
        let mut b = Bitmap::new(len);
        for &i in idxs {
            b.set(i as usize);
        }
        b
    }
}

/// A bitmap whose bits may be set concurrently from many threads.
///
/// Used as the *next* frontier during parallel edge traversal: partitions own
/// disjoint destination ranges but a 64-bit word may straddle two partitions,
/// so bit sets always use `fetch_or` (relaxed).
#[derive(Debug)]
pub struct AtomicBitmap {
    words: Vec<AtomicU64>,
    len: usize,
}

impl AtomicBitmap {
    /// Creates an all-zeros atomic bitmap of `len` bits.
    pub fn new(len: usize) -> Self {
        let mut words = Vec::with_capacity(word_count(len));
        words.resize_with(word_count(len), || AtomicU64::new(0));
        AtomicBitmap { words, len }
    }

    /// Number of bits.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the bitmap has zero bits.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Reads bit `i` (relaxed).
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        (self.words[i / WORD_BITS].load(Ordering::Relaxed) >> (i % WORD_BITS)) & 1 == 1
    }

    /// Sets bit `i`; returns `true` if this call changed it from 0 to 1.
    ///
    /// The return value lets a sparse traversal claim activation of a vertex
    /// exactly once without a separate duplicate-removal pass.
    #[inline]
    pub fn set(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        let mask = 1u64 << (i % WORD_BITS);
        let prev = self.words[i / WORD_BITS].fetch_or(mask, Ordering::Relaxed);
        prev & mask == 0
    }

    /// Clears bit `i` (atomic `fetch_and`). Used to return a shared scratch
    /// bitmap to all-zeros by unsetting exactly the bits that were claimed.
    #[inline]
    pub fn unset(&self, i: usize) {
        debug_assert!(i < self.len);
        let mask = !(1u64 << (i % WORD_BITS));
        self.words[i / WORD_BITS].fetch_and(mask, Ordering::Relaxed);
    }

    /// Clears every bit (not thread-safe with concurrent setters).
    pub fn clear(&mut self) {
        for w in &mut self.words {
            *w.get_mut() = 0;
        }
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words
            .iter()
            .map(|w| w.load(Ordering::Relaxed).count_ones() as usize)
            .sum()
    }

    /// Converts into a plain [`Bitmap`] without copying word contents
    /// atomically (callers must have quiesced all writers).
    pub fn into_bitmap(self) -> Bitmap {
        let words = self.words.into_iter().map(AtomicU64::into_inner).collect();
        Bitmap {
            words,
            len: self.len,
        }
    }

    /// Copies the current contents into a plain [`Bitmap`].
    pub fn snapshot(&self) -> Bitmap {
        Bitmap {
            words: self
                .words
                .iter()
                .map(|w| w.load(Ordering::Relaxed))
                .collect(),
            len: self.len,
        }
    }
}

impl From<Bitmap> for AtomicBitmap {
    fn from(b: Bitmap) -> Self {
        AtomicBitmap {
            words: b.words.into_iter().map(AtomicU64::new).collect(),
            len: b.len,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_roundtrip() {
        let mut b = Bitmap::new(130);
        assert_eq!(b.count_ones(), 0);
        b.set(0);
        b.set(63);
        b.set(64);
        b.set(129);
        assert!(b.get(0) && b.get(63) && b.get(64) && b.get(129));
        assert!(!b.get(1) && !b.get(128));
        assert_eq!(b.count_ones(), 4);
        b.unset(63);
        assert!(!b.get(63));
        assert_eq!(b.count_ones(), 3);
    }

    #[test]
    fn full_respects_length() {
        let b = Bitmap::full(70);
        assert_eq!(b.count_ones(), 70);
        let b = Bitmap::full(64);
        assert_eq!(b.count_ones(), 64);
        let b = Bitmap::full(0);
        assert_eq!(b.count_ones(), 0);
    }

    #[test]
    fn iter_ones_in_order() {
        let b = Bitmap::from_indices(200, &[5, 64, 65, 199, 0]);
        let ones: Vec<usize> = b.iter_ones().collect();
        assert_eq!(ones, vec![0, 5, 64, 65, 199]);
    }

    #[test]
    fn ranged_iteration_matches_filtered_iter_ones() {
        let idxs: Vec<u32> = (0..300).step_by(7).collect();
        let b = Bitmap::from_indices(300, &idxs);
        for range in [
            0usize..300,
            0..64,
            63..65,
            64..128,
            17..211,
            299..300,
            5..5,
            64..64,
        ] {
            let mut got = Vec::new();
            b.for_each_one_in_range(range.clone(), |i| got.push(i));
            let want: Vec<usize> = b.iter_ones().filter(|i| range.contains(i)).collect();
            assert_eq!(got, want, "range {range:?}");
        }
    }

    #[test]
    fn atomic_set_reports_first_setter() {
        let b = AtomicBitmap::new(100);
        assert!(b.set(42));
        assert!(!b.set(42));
        assert!(b.get(42));
        assert_eq!(b.count_ones(), 1);
    }

    #[test]
    fn atomic_concurrent_sets() {
        use std::sync::Arc;
        let b = Arc::new(AtomicBitmap::new(10_000));
        let mut handles = Vec::new();
        for t in 0..8 {
            let b = Arc::clone(&b);
            handles.push(std::thread::spawn(move || {
                let mut claimed = 0usize;
                for i in (t..10_000).step_by(1) {
                    if b.set(i) {
                        claimed += 1;
                    }
                }
                claimed
            }));
        }
        let total: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
        // Every bit is claimed by exactly one thread.
        assert_eq!(total, 10_000);
        assert_eq!(b.count_ones(), 10_000);
    }

    #[test]
    fn snapshot_matches() {
        let ab = AtomicBitmap::new(77);
        ab.set(3);
        ab.set(76);
        let b = ab.snapshot();
        assert!(b.get(3) && b.get(76));
        assert_eq!(b.count_ones(), 2);
        let owned = ab.into_bitmap();
        assert_eq!(owned, b);
    }
}
