//! The traversal planner: one place that turns frontier statistics into
//! (kernel, output-representation) decisions.
//!
//! Before this module existed, Algorithm 2's `decide` was invoked from
//! three scattered call sites — the kernel table in [`edge_map`], the
//! monolithic dispatch in [`engine`](crate::engine), and the per-partition
//! loop in [`partitioned`](crate::partitioned) — and the *output*
//! representation was hard-coded dense everywhere a bitmap merge was
//! convenient. The planner consolidates both choices:
//!
//! * [`classify`] is the single Algorithm 2 classifier (`|F| + Σ deg_out(F)`
//!   against `|E| / 2` and `|E| / 20`); `edge_map::decide` now delegates
//!   here.
//! * [`plan_edge_map`] is the monolithic planning entry point: one
//!   [`EdgeKind`] per edge map from the global frontier metric.
//! * [`plan_partitions`] is the partitioned planning entry point: for every
//!   non-empty partition, a [`PartStep`] pairing the locally decided kernel
//!   with the locally decided **output representation** — a sorted sparse
//!   vertex list for sparse-kernel partitions, a range-aligned dense bitmap
//!   segment for dense-kernel partitions (overridable by
//!   [`OutputMode`]). A whole round of sparse steps therefore merges in
//!   `O(output)` with no `O(|V| / 64)` dense-bitmap floor.
//!
//! The planner is deterministic and pool-free: decisions depend only on the
//! frontier statistics and the static partition metadata, never on
//! scheduling, so the executor's bit-identity contract extends to the plan
//! itself (the `determinism_stress` suite pins the recorded plans).

use crate::config::{OutputMode, Thresholds};
use crate::edge_map::EdgeKind;
use crate::frontier::Frontier;
use crate::partitioned::{PartKernel, PartitionView};

/// Physical representation a partition's next-frontier output buffer uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum OutputRepr {
    /// Sorted vertex list, merged by partition-order concatenation.
    Sparse,
    /// Range-aligned dense bitmap segment, merged by word-level splicing.
    Dense,
}

/// One partition's planned work for one edge map.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PartStep {
    /// Partition index in the engine's `PartitionSet`.
    pub partition: usize,
    /// Locally selected traversal kernel.
    pub kernel: PartKernel,
    /// Locally selected output representation.
    pub output: OutputRepr,
}

/// The planner's product for one partitioned edge map: per-partition steps
/// in pool submission (NUMA-domain-major) order, plus the selection tallies
/// recorded into `KernelCounts`.
#[derive(Clone, Debug, Default)]
pub struct TraversalPlan {
    /// Steps in submission order (empty partitions never appear).
    pub steps: Vec<PartStep>,
}

impl TraversalPlan {
    /// `(sparse, dense)` kernel selections in this plan.
    pub fn kernel_tally(&self) -> (u64, u64) {
        let sparse = self
            .steps
            .iter()
            .filter(|s| s.kernel == PartKernel::Sparse)
            .count() as u64;
        (sparse, self.steps.len() as u64 - sparse)
    }

    /// `(sparse, dense)` output-representation selections in this plan.
    pub fn output_tally(&self) -> (u64, u64) {
        let sparse = self
            .steps
            .iter()
            .filter(|s| s.output == OutputRepr::Sparse)
            .count() as u64;
        (sparse, self.steps.len() as u64 - sparse)
    }
}

/// Algorithm 2's classification: compares `metric = |F| + Σ deg_out(F)`
/// against `|E| / dense_divisor` and `|E| / sparse_divisor`. The single
/// classifier behind every decision in the engine.
pub fn classify(metric: u64, num_edges: u64, th: &Thresholds) -> EdgeKind {
    if metric > num_edges / th.dense_divisor {
        EdgeKind::Dense
    } else if metric > num_edges / th.sparse_divisor {
        EdgeKind::Medium
    } else {
        EdgeKind::Sparse
    }
}

/// Monolithic planning: one kernel per edge map from the global frontier
/// density (Algorithm 2 as published).
pub fn plan_edge_map(frontier: &Frontier, num_edges: u64, th: &Thresholds) -> EdgeKind {
    classify(frontier.density_metric(), num_edges, th)
}

/// The output representation for a partition that selected `kernel`, under
/// `mode`.
///
/// The `Auto` rule follows the kernel: a sparse-kernel partition's output
/// is bounded by the frontier's footprint in the partition, so a sorted
/// list keeps the merge output-proportional; a dense-kernel partition
/// already scans its whole range, so a range-aligned segment adds only
/// `O(range / 64)` to work that is `O(range)` anyway.
pub fn output_for(kernel: PartKernel, mode: OutputMode) -> OutputRepr {
    match mode {
        OutputMode::ForceSparse => OutputRepr::Sparse,
        OutputMode::ForceDense => OutputRepr::Dense,
        OutputMode::Auto => match kernel {
            PartKernel::Sparse => OutputRepr::Sparse,
            PartKernel::Dense => OutputRepr::Dense,
        },
    }
}

/// Partitioned planning: classify the frontier *locally* per partition
/// (`|F ∩ R_p| + Σ deg_out(F ∩ R_p)` against the partition's own edge
/// count) and pair each kernel with an output representation. `order` is
/// the NUMA-domain-major submission order restricted to non-empty
/// partitions; the returned steps preserve it.
pub fn plan_partitions(
    frontier: &Frontier,
    views: &[PartitionView],
    order: &[usize],
    out_degrees: &[u32],
    th: &Thresholds,
    mode: OutputMode,
) -> TraversalPlan {
    let steps = order
        .iter()
        .map(|&p| {
            let view = &views[p];
            let (count, degree_sum) = frontier.range_stats(view.dst_range.clone(), out_degrees);
            let metric = count as u64 + degree_sum;
            let kernel = match classify(metric, view.num_edges, th) {
                EdgeKind::Sparse => PartKernel::Sparse,
                EdgeKind::Medium | EdgeKind::Dense => PartKernel::Dense,
            };
            PartStep {
                partition: p,
                kernel,
                output: output_for(kernel, mode),
            }
        })
        .collect();
    TraversalPlan { steps }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Config;
    use crate::store::GraphStore;
    use gg_runtime::numa::NumaTopology;
    use gg_runtime::schedule::PartitionSchedule;

    #[test]
    fn classify_uses_paper_thresholds() {
        let th = Thresholds::default();
        assert_eq!(classify(5, 100, &th), EdgeKind::Sparse);
        assert_eq!(classify(6, 100, &th), EdgeKind::Medium);
        assert_eq!(classify(50, 100, &th), EdgeKind::Medium);
        assert_eq!(classify(51, 100, &th), EdgeKind::Dense);
    }

    #[test]
    fn output_follows_kernel_under_auto_and_obeys_forces() {
        for kernel in [PartKernel::Sparse, PartKernel::Dense] {
            assert_eq!(
                output_for(kernel, OutputMode::ForceSparse),
                OutputRepr::Sparse
            );
            assert_eq!(
                output_for(kernel, OutputMode::ForceDense),
                OutputRepr::Dense
            );
        }
        assert_eq!(
            output_for(PartKernel::Sparse, OutputMode::Auto),
            OutputRepr::Sparse
        );
        assert_eq!(
            output_for(PartKernel::Dense, OutputMode::Auto),
            OutputRepr::Dense
        );
    }

    /// A dense block plus a sparse tail: with the block active, the plan
    /// must mix kernels *and* output representations in one edge map.
    #[test]
    fn skewed_frontier_produces_a_mixed_plan() {
        let mut el = gg_graph::edge_list::EdgeList::new(64);
        for i in 0..16u32 {
            for j in 0..16u32 {
                if i != j {
                    el.push(i, j);
                }
            }
        }
        for i in 16..63u32 {
            el.push(i, i + 1);
        }
        let config = Config {
            num_partitions: 4,
            numa: NumaTopology::new(1),
            build_partitioned_csr: true,
            ..Config::for_tests()
        };
        let store = GraphStore::build(&el, &config);
        let schedule = PartitionSchedule::new(store.num_partitions(), config.numa);
        let parts = store.edge_parts();
        let views: Vec<PartitionView> = (0..parts.num_partitions())
            .map(|p| PartitionView {
                index: p,
                dst_range: parts.range(p),
                num_edges: parts.edges_per_partition(store.in_degrees())[p],
                domain: schedule.domain_of(p),
            })
            .collect();
        let order = schedule.order_filtered(|p| views[p].num_edges > 0);
        let frontier = Frontier::from_sparse((0..8).collect(), 64, store.out_degrees());
        let plan = plan_partitions(
            &frontier,
            &views,
            &order,
            store.out_degrees(),
            &config.thresholds,
            OutputMode::Auto,
        );
        let (ks, kd) = plan.kernel_tally();
        let (os, od) = plan.output_tally();
        assert!(ks >= 1 && kd >= 1, "kernels must mix: {ks}/{kd}");
        assert!(os >= 1 && od >= 1, "outputs must mix: {os}/{od}");
        assert_eq!(ks + kd, plan.steps.len() as u64);
        // Deterministic: planning twice yields the same steps.
        let again = plan_partitions(
            &frontier,
            &views,
            &order,
            store.out_degrees(),
            &config.thresholds,
            OutputMode::Auto,
        );
        assert_eq!(plan.steps, again.steps);
    }
}
