//! Degenerate-input hardening: empty graphs, single vertices, self-loops,
//! duplicate edges and all-isolated graphs must flow through every layer
//! (layouts, partitioning, engines, algorithms) without panicking and with
//! sensible results.

use graphgrind::algorithms::{self, BpParams, PrDeltaParams};
use graphgrind::baselines::Ligra;
use graphgrind::core::{Config, Engine, GraphGrind2};
use graphgrind::graph::edge_list::EdgeList;
use graphgrind::graph::generators;
use graphgrind::runtime::numa::NumaTopology;

fn tiny_config() -> Config {
    Config {
        threads: 2,
        num_partitions: 4,
        numa: NumaTopology::new(2),
        ..Config::default()
    }
}

#[test]
fn edgeless_graph_runs_everything() {
    let el = EdgeList::new(10);
    let engine = GraphGrind2::new(&el, tiny_config());
    assert_eq!(engine.num_edges(), 0);

    let bfs = algorithms::bfs(&engine, 3);
    assert_eq!(bfs.level[3], 0);
    assert!(bfs
        .level
        .iter()
        .enumerate()
        .all(|(v, &l)| (v == 3) == (l == 0)));

    let cc = algorithms::cc(&engine);
    assert_eq!(cc.num_components(), 10);

    let pr = algorithms::pagerank(&engine, 3);
    assert!(pr.iter().all(|&r| (r - 0.15 / 10.0).abs() < 1e-12));

    let bf = algorithms::bellman_ford(&engine, 0);
    assert_eq!(bf.dist[0], 0.0);
    assert!(bf.dist[1..].iter().all(|d| d.is_infinite()));

    let spmv = algorithms::spmv(&engine, &[1.0; 10]);
    assert_eq!(spmv, vec![0.0; 10]);
}

#[test]
fn single_vertex_graph() {
    let el = EdgeList::new(1);
    let engine = GraphGrind2::new(&el, tiny_config());
    assert_eq!(algorithms::bfs(&engine, 0).level, vec![0]);
    assert_eq!(algorithms::cc(&engine).label, vec![0]);
    let k = algorithms::kcore(&engine);
    assert_eq!(k.coreness, vec![0]);
}

#[test]
fn self_loops_do_not_break_traversal() {
    // Every vertex has a self-loop plus a cycle edge.
    let mut el = EdgeList::new(6);
    for v in 0..6u32 {
        el.push(v, v);
        el.push(v, (v + 1) % 6);
    }
    let engine = GraphGrind2::new(&el, tiny_config());
    let bfs = algorithms::bfs(&engine, 0);
    assert_eq!(bfs.level, vec![0, 1, 2, 3, 4, 5]);
    let cc = algorithms::cc(&engine);
    assert!(cc.label.iter().all(|&l| l == 0));
}

#[test]
fn duplicate_edges_accumulate_in_weighted_ops() {
    // Two parallel edges 0 -> 1: SPMV must count both.
    let el = EdgeList::from_weighted_edges(2, &[(0, 1, 2.0), (0, 1, 3.0)]);
    let engine = GraphGrind2::new(&el, tiny_config());
    let y = algorithms::spmv(&engine, &[10.0, 0.0]);
    assert_eq!(y, vec![0.0, 50.0]);
}

#[test]
fn all_vertices_isolated_except_two() {
    let mut el = EdgeList::new(1000);
    el.push(0, 999);
    el.push(999, 0);
    let engine = GraphGrind2::new(&el, tiny_config());
    let bfs = algorithms::bfs(&engine, 0);
    assert_eq!(bfs.level[999], 1);
    assert_eq!(bfs.level[500], u32::MAX);
    let cc = algorithms::cc(&engine);
    assert_eq!(cc.num_components(), 999);
}

#[test]
fn source_with_no_out_edges() {
    let el = EdgeList::from_edges(3, &[(0, 1), (1, 2)]);
    let engine = GraphGrind2::new(&el, tiny_config());
    // Vertex 2 has no out-edges: BFS from it reaches only itself.
    let bfs = algorithms::bfs(&engine, 2);
    assert_eq!(bfs.level, vec![u32::MAX, u32::MAX, 0]);
    let bf = algorithms::bellman_ford(&engine, 2);
    assert!(bf.dist[0].is_infinite() && bf.dist[1].is_infinite());
}

#[test]
fn massive_partition_count_on_tiny_graph() {
    // More partitions than vertices: ranges degenerate but must stay valid.
    let el = generators::cycle(5);
    let cfg = Config {
        num_partitions: 64,
        ..tiny_config()
    };
    let engine = GraphGrind2::new(&el, cfg);
    let pr = algorithms::pagerank(&engine, 5);
    let want = algorithms::reference::pagerank(&el, 5);
    algorithms::validate::assert_close_f64(&pr, &want, 1e-12, 1e-15);
}

#[test]
fn prdelta_and_bp_on_degenerate_graphs() {
    let el = EdgeList::new(4);
    let engine = GraphGrind2::new(&el, tiny_config());
    let prd = algorithms::pagerank_delta(&engine, PrDeltaParams::default());
    assert_eq!(prd.rank.len(), 4);
    let bp = algorithms::bp(&engine, &[0.1, -0.1, 0.0, 0.5], BpParams::default());
    assert_eq!(bp, vec![0.1, -0.1, 0.0, 0.5]);
}

#[test]
fn baselines_handle_empty_frontier_chains() {
    let el = EdgeList::from_edges(4, &[(0, 1)]);
    let ligra = Ligra::new(&el, 2);
    let bfs = algorithms::bfs(&ligra, 1);
    assert_eq!(bfs.level, vec![u32::MAX, 0, u32::MAX, u32::MAX]);
}

#[test]
fn weighted_graph_through_all_layouts() {
    use graphgrind::core::ForcedKernel;
    let mut el = generators::erdos_renyi(80, 800, 77);
    graphgrind::graph::weights::attach_integer(&mut el, 5, 3);
    let reference = algorithms::bellman_ford(&GraphGrind2::new(&el, tiny_config()), 0).dist;
    for force in [
        ForcedKernel::CsrAtomic,
        ForcedKernel::CscNoAtomic,
        ForcedKernel::CooAtomic,
        ForcedKernel::CooNoAtomic,
    ] {
        let cfg = tiny_config().with_forced(force);
        let got = algorithms::bellman_ford(&GraphGrind2::new(&el, cfg), 0).dist;
        assert_eq!(got, reference, "{force:?}");
    }
}
