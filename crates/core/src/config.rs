//! Engine configuration.

use gg_graph::reorder::EdgeOrder;
use gg_runtime::numa::NumaTopology;

/// The density thresholds of Algorithm 2, expressed as divisors of `|E|`:
/// a frontier is *dense* when `|F| + Σ deg_out(F) > |E| / dense_divisor`
/// and *sparse* when the metric is `<= |E| / sparse_divisor`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Thresholds {
    /// Divisor for the dense cut-off (paper: 2, i.e. 50 %).
    pub dense_divisor: u64,
    /// Divisor for the sparse cut-off (paper: 20, i.e. 5 %).
    pub sparse_divisor: u64,
}

impl Default for Thresholds {
    fn default() -> Self {
        Thresholds {
            dense_divisor: 2,
            sparse_divisor: 20,
        }
    }
}

/// Overrides the adaptive decision with a fixed kernel — the four
/// configurations of Figures 5 and 6.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ForcedKernel {
    /// Partitioned (pruned) CSR, forward, atomic updates ("CSR + a").
    CsrAtomic,
    /// Whole CSC, backward, partitioned ranges, no atomics ("CSC + na").
    CscNoAtomic,
    /// Partitioned COO, edge-chunk parallel, atomic updates ("COO + a").
    CooAtomic,
    /// Partitioned COO, one thread per partition, no atomics ("COO + na").
    CooNoAtomic,
}

/// How the traversal planner chooses the *output* representation of each
/// partition's next-frontier buffer (see `gg_core::plan`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum OutputMode {
    /// Follow the planner's rule: sparse-kernel partitions emit sorted
    /// vertex lists, dense-kernel partitions emit range-aligned bitmap
    /// segments. The default.
    #[default]
    Auto,
    /// Every partition emits a sorted vertex list (the sparse-output fast
    /// path, forced on — CI uses this to diff against `ForceDense`).
    ForceSparse,
    /// Every partition emits a dense bitmap segment (PR 2's dense-merge
    /// behaviour, forced on).
    ForceDense,
}

impl OutputMode {
    /// Reads the mode from the `GG_OUTPUT` environment variable
    /// (`auto` / `sparse` / `dense`, default `Auto` when unset) — the hook
    /// the CI differential leg uses to run the same suite with the
    /// sparse-output path forced on and forced off.
    ///
    /// # Panics
    /// Panics on an unrecognized value: a typo'd `GG_OUTPUT` must fail
    /// loudly, not let both CI legs silently diff two identical `Auto`
    /// runs.
    pub fn from_env() -> Self {
        match std::env::var("GG_OUTPUT") {
            Ok(v) => match v.as_str() {
                "auto" => OutputMode::Auto,
                "sparse" => OutputMode::ForceSparse,
                "dense" => OutputMode::ForceDense,
                other => panic!("GG_OUTPUT must be auto, sparse or dense, got {other:?}"),
            },
            Err(_) => OutputMode::Auto,
        }
    }
}

/// Reference fixed cap on the planned CSC edge count of one work-stealing
/// chunk (see [`Config::chunk_edges`]). Large enough that per-chunk
/// overhead is noise, small enough that a heavy partition splits into many
/// more chunks than there are threads. The default policy is now
/// [`ChunkCap::Auto`], which derives the cap per planned partition; this
/// constant remains the reference point for fixed-cap ablations
/// (`repro load_balance`'s `fixed` mode).
pub const DEFAULT_CHUNK_EDGES: usize = 16_384;

/// The work-stealing chunk-cap policy: how many planned CSC edges one
/// chunk may carry before the planner closes it.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum ChunkCap {
    /// Derive the cap per planned partition as
    /// `max(MIN_CHUNK_EDGES, |E_partition| / (CHUNK_OVERSUBSCRIPTION ·
    /// threads))`, clamped to the partition's own edge count (see
    /// [`crate::plan::resolve_cap`]): a heavy partition splits into
    /// roughly `CHUNK_OVERSUBSCRIPTION × threads` chunks no matter how
    /// skewed the graph is, while light partitions stay at one chunk.
    /// Hub splitting under this policy is gated by the
    /// [`crate::plan::HubSplit`] cost model. The default.
    #[default]
    Auto,
    /// Fixed cap in planned CSC edges. `Fixed(usize::MAX)` disables
    /// splitting entirely (one chunk per planned partition — the
    /// pre-chunking behaviour).
    Fixed(usize),
}

impl From<usize> for ChunkCap {
    fn from(n: usize) -> Self {
        ChunkCap::Fixed(n)
    }
}

/// Reads the chunk-cap override from the `GG_CHUNK` environment variable:
/// a positive integer, `max` for unbounded (one chunk per partition — the
/// pre-chunking behaviour), or `auto` for the adaptive per-partition cap.
/// Returns `None` when unset — the hook the CI chunk-differential leg uses
/// to run the partitioned suites with per-vertex chunking forced on and
/// chunking forced off.
///
/// # Panics
/// Panics on an unrecognized value: a typo'd `GG_CHUNK` must fail loudly,
/// not let both CI legs silently diff two identical default runs.
pub fn chunk_edges_from_env() -> Option<ChunkCap> {
    match std::env::var("GG_CHUNK") {
        Ok(v) if v == "max" => Some(ChunkCap::Fixed(usize::MAX)),
        Ok(v) if v == "auto" => Some(ChunkCap::Auto),
        Ok(v) => match v.parse::<usize>() {
            Ok(n) if n > 0 => Some(ChunkCap::Fixed(n)),
            _ => panic!("GG_CHUNK must be a positive integer, \"max\" or \"auto\", got {v:?}"),
        },
        Err(_) => None,
    }
}

/// Reads a worker-thread-count override from the `GG_THREADS` environment
/// variable. Returns `None` when unset — the hook the CI
/// thread-differential leg uses to run the chunked and persistent-pool
/// suites at 1 vs 4 threads and diff the outcomes.
///
/// # Panics
/// Panics on an unrecognized value, for the same fail-loudly reason as
/// [`chunk_edges_from_env`].
pub fn threads_from_env() -> Option<usize> {
    match std::env::var("GG_THREADS") {
        Ok(v) => match v.parse::<usize>() {
            Ok(n) if n > 0 => Some(n),
            _ => panic!("GG_THREADS must be a positive integer, got {v:?}"),
        },
        Err(_) => None,
    }
}

/// How each COO partition's edge layout (and the partitioned executor's
/// per-partition destination visit order) is chosen at graph-build time.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum LayoutPolicy {
    /// One [`EdgeOrder`] for every partition (§IV.C's global knob — the
    /// pre-advisor behaviour, default `Fixed(Hilbert)`).
    Fixed(EdgeOrder),
    /// Per-partition argmin of predicted MPKI from a sampled memsim pass
    /// (see [`crate::advisor`]): each partition replays a representative
    /// dense-round address trace for every candidate order through
    /// `gg_memsim` and keeps the cheapest. `sample_rate` is the fraction
    /// of the partition's edges traced (clamped to `(0, 1]`; small
    /// partitions are traced whole).
    Advised {
        /// Fraction of each partition's edges fed to the memsim pass.
        sample_rate: f64,
    },
}

impl Default for LayoutPolicy {
    fn default() -> Self {
        LayoutPolicy::Fixed(EdgeOrder::Hilbert)
    }
}

impl LayoutPolicy {
    /// Stable label for trace headers and benchmark JSON:
    /// `"fixed:Hilbert"` / `"advised:0.25"`. Two headers with equal labels
    /// made their per-partition layout decisions under the same policy, so
    /// `first_divergence` may compare the per-step layouts directly.
    pub fn label(&self) -> String {
        match self {
            LayoutPolicy::Fixed(o) => format!("fixed:{}", o.label()),
            LayoutPolicy::Advised { sample_rate } => format!("advised:{sample_rate}"),
        }
    }
}

/// Which execution path [`GraphGrind2`](crate::engine::GraphGrind2) routes
/// edge maps through.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum ExecutorKind {
    /// One kernel per edge map, chosen globally from the frontier density
    /// (Algorithm 2 as published). The default.
    #[default]
    Monolithic,
    /// The partition-parallel path: per-partition subgraph views fan out
    /// over the pool in NUMA-domain-major order, and *each partition*
    /// selects its own kernel from its local frontier density, so one
    /// iteration can mix sparse (CSR-indexed) and dense (CSC-range)
    /// traversal across partitions. See [`crate::partitioned`].
    Partitioned,
}

/// Configuration of a [`GraphGrind2`](crate::engine::GraphGrind2) engine.
#[derive(Clone, Debug)]
pub struct Config {
    /// Worker threads.
    pub threads: usize,
    /// Requested number of graph partitions for the COO layout and the CSC
    /// computation ranges (rounded up to a multiple of the NUMA domain
    /// count, as in §III.D). The paper's sweet spot is 384.
    pub num_partitions: usize,
    /// Simulated NUMA topology.
    pub numa: NumaTopology,
    /// Layout policy for COO partitions (§IV.C; default
    /// `Fixed(Hilbert)`). `Advised` runs the sampled memsim layout
    /// advisor per partition at graph-build time.
    pub layout: LayoutPolicy,
    /// Use atomic updates on the dense COO path even though partitions are
    /// exclusive (the "+a" ablation). Default `false` ("+na").
    pub use_atomics_dense: bool,
    /// Density thresholds of Algorithm 2.
    pub thresholds: Thresholds,
    /// Force a fixed kernel instead of the adaptive decision (monolithic
    /// path only; the partitioned executor always decides per partition).
    pub force: Option<ForcedKernel>,
    /// Build the partitioned CSR layout (required for
    /// [`ForcedKernel::CsrAtomic`] and implied by
    /// [`ExecutorKind::Partitioned`]; costs `r(p)`-scaled memory, §II.E).
    pub build_partitioned_csr: bool,
    /// Execution path for edge and vertex maps.
    pub executor: ExecutorKind,
    /// Per-partition output-representation policy of the traversal planner
    /// (partitioned executor only; the monolithic path's output
    /// representation is fixed per kernel).
    pub output_mode: OutputMode,
    /// Cap policy for the planned CSC edge count of one work-stealing
    /// chunk (partitioned executor only). The planner splits every planned
    /// partition into edge-balanced chunks; a destination whose in-degree
    /// exceeds the cap is split into **sub-chunks** of its in-edge scan
    /// (mega-hub splitting, reduced deterministically at merge time). The
    /// pool schedules the chunks with NUMA-domain-affine work stealing —
    /// so a star-shaped heavy partition no longer bounds round latency.
    ///
    /// Under a `Fixed` cap splitting is unconditional, so no chunk carries
    /// more than `2 × cap` edges no matter how skewed the degree
    /// distribution is. Under [`ChunkCap::Auto`] (the default, cap derived
    /// per planned partition from `|E_partition|` and the thread count) a
    /// hub-split **cost model** keeps a hub whole while the predicted
    /// imbalance is smaller than the per-chunk scheduling overhead (see
    /// [`crate::plan::HubSplit`]); a marginal hub may then sit alone in a
    /// chunk of up to `cap + HUB_SPLIT_OVERHEAD_EDGES` edges.
    /// `ChunkCap::Fixed(usize::MAX)` disables splitting (one chunk per
    /// partition); the `GG_CHUNK` environment variable (see
    /// [`chunk_edges_from_env`]) is the conventional override.
    pub chunk_edges: ChunkCap,
}

impl Default for Config {
    fn default() -> Self {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        Config {
            threads,
            num_partitions: 384,
            numa: NumaTopology::paper_machine(),
            layout: LayoutPolicy::default(),
            use_atomics_dense: false,
            thresholds: Thresholds::default(),
            force: None,
            build_partitioned_csr: false,
            executor: ExecutorKind::Monolithic,
            output_mode: OutputMode::Auto,
            chunk_edges: ChunkCap::Auto,
        }
    }
}

impl Config {
    /// A small, fast configuration for unit tests and doctests: 2 threads,
    /// 8 partitions, 2 simulated domains.
    pub fn for_tests() -> Self {
        Config {
            threads: 2,
            num_partitions: 8,
            numa: NumaTopology::new(2),
            ..Default::default()
        }
    }

    /// The test configuration routed through the partition-parallel
    /// executor.
    pub fn partitioned_for_tests() -> Self {
        Config {
            executor: ExecutorKind::Partitioned,
            ..Self::for_tests()
        }
    }

    /// Effective partition count after NUMA rounding.
    pub fn effective_partitions(&self) -> usize {
        self.numa.round_partitions(self.num_partitions)
    }

    /// Selects the execution path (builder style).
    pub fn with_executor(mut self, e: ExecutorKind) -> Self {
        self.executor = e;
        self
    }

    /// Selects the output-representation policy (builder style).
    pub fn with_output_mode(mut self, m: OutputMode) -> Self {
        self.output_mode = m;
        self
    }

    /// Sets the work-stealing chunk-cap policy (builder style). Accepts a
    /// plain `usize` for a fixed cap (`usize::MAX` = one chunk per
    /// partition) or a [`ChunkCap`] for the adaptive policy.
    pub fn with_chunk_edges(mut self, c: impl Into<ChunkCap>) -> Self {
        self.chunk_edges = c.into();
        self
    }

    /// Sets the partition count (builder style).
    pub fn with_partitions(mut self, p: usize) -> Self {
        self.num_partitions = p;
        self
    }

    /// Sets the thread count (builder style).
    pub fn with_threads(mut self, t: usize) -> Self {
        self.threads = t;
        self
    }

    /// Fixes one COO edge order for every partition (builder style).
    pub fn with_edge_order(mut self, o: EdgeOrder) -> Self {
        self.layout = LayoutPolicy::Fixed(o);
        self
    }

    /// Sets the full layout policy (builder style); `Advised` turns on the
    /// per-partition memsim layout advisor.
    pub fn with_layout(mut self, l: LayoutPolicy) -> Self {
        self.layout = l;
        self
    }

    /// Forces a fixed kernel (builder style). `CsrAtomic` also enables
    /// building the partitioned CSR.
    pub fn with_forced(mut self, k: ForcedKernel) -> Self {
        if k == ForcedKernel::CsrAtomic {
            self.build_partitioned_csr = true;
        }
        self.force = Some(k);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let t = Thresholds::default();
        assert_eq!(t.dense_divisor, 2);
        assert_eq!(t.sparse_divisor, 20);
        let c = Config::default();
        assert_eq!(c.num_partitions, 384);
        assert!(!c.use_atomics_dense);
        assert!(c.force.is_none());
    }

    #[test]
    fn partition_rounding() {
        let c = Config {
            num_partitions: 5,
            numa: NumaTopology::new(4),
            ..Config::default()
        };
        assert_eq!(c.effective_partitions(), 8);
    }

    #[test]
    fn chunk_knob_defaults_and_builds() {
        let c = Config::default();
        assert_eq!(c.chunk_edges, ChunkCap::Auto);
        let c = Config::for_tests().with_chunk_edges(64);
        assert_eq!(c.chunk_edges, ChunkCap::Fixed(64));
        let c = Config::for_tests().with_chunk_edges(ChunkCap::Auto);
        assert_eq!(c.chunk_edges, ChunkCap::Auto);
        assert_eq!(ChunkCap::from(7), ChunkCap::Fixed(7));
        // Unset env → no override (the suites fall back to the default).
        if std::env::var("GG_CHUNK").is_err() {
            assert_eq!(chunk_edges_from_env(), None);
        }
        if std::env::var("GG_THREADS").is_err() {
            assert_eq!(threads_from_env(), None);
        }
    }

    #[test]
    fn layout_policy_defaults_and_builds() {
        let c = Config::default();
        assert_eq!(c.layout, LayoutPolicy::Fixed(EdgeOrder::Hilbert));
        let c = Config::for_tests().with_edge_order(EdgeOrder::Source);
        assert_eq!(c.layout, LayoutPolicy::Fixed(EdgeOrder::Source));
        let c = Config::for_tests().with_layout(LayoutPolicy::Advised { sample_rate: 0.25 });
        assert_eq!(c.layout, LayoutPolicy::Advised { sample_rate: 0.25 });
        assert_eq!(c.layout.label(), "advised:0.25");
        assert_eq!(LayoutPolicy::default().label(), "fixed:Hilbert");
    }

    #[test]
    fn forcing_csr_enables_build() {
        let c = Config::for_tests().with_forced(ForcedKernel::CsrAtomic);
        assert!(c.build_partitioned_csr);
        let c = Config::for_tests().with_forced(ForcedKernel::CooNoAtomic);
        assert!(!c.build_partitioned_csr);
    }
}
