//! The storage-size model of §II.E (Figure 4).
//!
//! For a directed unweighted graph with `|V|` vertices, `|E|` edges,
//! replication factor `r(p)` at `p` partitions, `bv` bytes per vertex id and
//! `be` bytes per edge-list index:
//!
//! | Layout        | Bytes                          | Grows with `p`?       |
//! |---------------|--------------------------------|------------------------|
//! | CSR (pruned)  | `r(p)·|V|·(be + bv) + |E|·bv` | as `r(p)`             |
//! | CSR (unpruned)| `p·|V|·be + |E|·bv`           | linearly              |
//! | CSC (whole)   | `|V|·be + |E|·bv`             | no                    |
//! | COO           | `2·|E|·bv`                    | no                    |
//!
//! The conclusion driving the paper's composite design: only COO scales to
//! large partition counts; the CSC needs a single unpartitioned copy; CSR is
//! kept unpartitioned for sparse frontiers only.

use crate::edge_list::EdgeList;
use crate::replication;
use crate::types::{BYTES_PER_EDGE_INDEX, BYTES_PER_VERTEX_ID};

/// Modeled bytes for the pruned partitioned CSR at replication factor `r`.
pub fn csr_pruned_bytes(n: usize, m: usize, r: f64) -> f64 {
    r * n as f64 * (BYTES_PER_EDGE_INDEX + BYTES_PER_VERTEX_ID) as f64
        + m as f64 * BYTES_PER_VERTEX_ID as f64
}

/// Modeled bytes for the unpruned partitioned CSR (Polymer's layout) at `p`
/// partitions.
pub fn csr_unpruned_bytes(n: usize, m: usize, p: usize) -> f64 {
    (p * n * BYTES_PER_EDGE_INDEX + m * BYTES_PER_VERTEX_ID) as f64
}

/// Modeled bytes for the whole-graph CSC (independent of `p`).
pub fn csc_bytes(n: usize, m: usize) -> f64 {
    (n * BYTES_PER_EDGE_INDEX + m * BYTES_PER_VERTEX_ID) as f64
}

/// Modeled bytes for the COO layout (independent of `p`).
pub fn coo_bytes(m: usize) -> f64 {
    (2 * m * BYTES_PER_VERTEX_ID) as f64
}

/// One row of the Figure 4 storage sweep.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct StorageRow {
    /// Number of partitions.
    pub partitions: usize,
    /// Replication factor at this partition count.
    pub replication: f64,
    /// Pruned partitioned CSR bytes (curve "CSR pruned").
    pub csr_pruned: f64,
    /// Unpruned partitioned CSR bytes (curve "CSR").
    pub csr_unpruned: f64,
    /// Whole-graph CSC bytes (flat curve).
    pub csc: f64,
    /// COO bytes (flat curve).
    pub coo: f64,
}

/// Computes the Figure 4 storage curves for the given partition counts,
/// using edge-balanced partitioning by destination.
pub fn storage_sweep(el: &EdgeList, partition_counts: &[usize]) -> Vec<StorageRow> {
    let n = el.num_vertices();
    let m = el.num_edges();
    replication::replication_sweep(el, partition_counts)
        .into_iter()
        .map(|(p, r)| StorageRow {
            partitions: p,
            replication: r,
            csr_pruned: csr_pruned_bytes(n, m, r),
            csr_unpruned: csr_unpruned_bytes(n, m, p),
            csc: csc_bytes(n, m),
            coo: coo_bytes(m),
        })
        .collect()
}

/// Bytes → GiB, for printing Figure 4's y-axis.
pub fn to_gib(bytes: f64) -> f64 {
    bytes / (1024.0 * 1024.0 * 1024.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::{PartitionBy, PartitionSet};

    fn figure1_graph() -> EdgeList {
        EdgeList::from_edges(
            6,
            &[
                (0, 1),
                (0, 2),
                (0, 3),
                (0, 4),
                (0, 5),
                (2, 4),
                (3, 4),
                (3, 5),
                (4, 5),
                (5, 0),
                (5, 1),
                (5, 2),
                (5, 3),
                (5, 4),
            ],
        )
    }

    #[test]
    fn flat_layouts_do_not_grow() {
        let el = figure1_graph();
        let rows = storage_sweep(&el, &[1, 2, 4, 6]);
        for w in rows.windows(2) {
            assert_eq!(w[0].coo, w[1].coo);
            assert_eq!(w[0].csc, w[1].csc);
        }
    }

    #[test]
    fn csr_layouts_grow() {
        let el = figure1_graph();
        let rows = storage_sweep(&el, &[1, 2, 6]);
        assert!(rows[2].csr_pruned > rows[0].csr_pruned);
        assert!(rows[2].csr_unpruned > rows[0].csr_unpruned);
        // Unpruned grows strictly linearly in p.
        let n = 6.0 * BYTES_PER_EDGE_INDEX as f64;
        assert!((rows[1].csr_unpruned - rows[0].csr_unpruned - n).abs() < 1e-9);
    }

    #[test]
    fn model_tracks_measured_coo() {
        let el = figure1_graph();
        let coo = crate::coo::Coo::from_edge_list(&el);
        assert_eq!(coo.heap_bytes() as f64, coo_bytes(el.num_edges()));
    }

    #[test]
    fn model_tracks_measured_csc() {
        let el = figure1_graph();
        let csc = crate::csc::Csc::from_edge_list(&el);
        // Measured has one extra offset entry (n+1 vs n in the model).
        let modeled = csc_bytes(el.num_vertices(), el.num_edges());
        let measured = csc.heap_bytes() as f64;
        assert!((measured - modeled - BYTES_PER_EDGE_INDEX as f64).abs() < 1e-9);
    }

    #[test]
    fn pruned_model_tracks_measured_within_offsets() {
        // The model charges (be + bv) per stored vertex; the built structure
        // additionally stores one offset per partition (the +1 entry).
        let el = figure1_graph();
        let set = PartitionSet::edge_balanced(&el.in_degrees(), 2, PartitionBy::Destination);
        let built = crate::csr::PartitionedCsr::new(&el, &set);
        let r = crate::replication::replication_factor(&el, &set);
        let modeled = csr_pruned_bytes(el.num_vertices(), el.num_edges(), r);
        let measured = built.heap_bytes() as f64;
        let slack = (set.num_partitions() * BYTES_PER_EDGE_INDEX) as f64;
        assert!(
            (measured - modeled - slack).abs() < 1e-9,
            "measured {measured}, modeled {modeled}"
        );
    }

    #[test]
    fn gib_conversion() {
        assert_eq!(to_gib(1024.0 * 1024.0 * 1024.0), 1.0);
    }
}
