//! Graph-mining scenario using the extension algorithms: k-core
//! decomposition to find the densest community shell, and 64-way
//! bit-parallel BFS to estimate the network's diameter — both running on
//! the same adaptive engine as the paper's eight benchmarks.
//!
//! ```text
//! cargo run --release --example graph_mining
//! ```

use graphgrind::algorithms;
use graphgrind::core::{suggest_partitions, Config, GraphGrind2, HeuristicInputs};
use graphgrind::graph::generators::{self, RmatParams};
use graphgrind::graph::ops::symmetrize;
use graphgrind::runtime::numa::NumaTopology;

fn main() {
    let el = symmetrize(&generators::rmat(14, 250_000, RmatParams::skewed(), 33));
    println!(
        "network: {} vertices, {} (directed) edges",
        el.num_vertices(),
        el.num_edges()
    );

    // Let the §IV.G heuristic pick the partition count instead of the
    // paper's hand-tuned 384.
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let p = suggest_partitions(&HeuristicInputs::new(
        el.num_vertices(),
        el.num_edges(),
        threads,
        NumaTopology::paper_machine(),
    ));
    println!("heuristic partition count: {p} ({threads} threads)");
    let engine = GraphGrind2::new(&el, Config::default().with_partitions(p));

    // 1. k-core decomposition.
    let t0 = std::time::Instant::now();
    let cores = algorithms::kcore(&engine);
    println!(
        "\nk-core: degeneracy {} in {:.3}s",
        cores.degeneracy,
        t0.elapsed().as_secs_f64()
    );
    let mut shell_sizes = vec![0usize; cores.degeneracy as usize + 1];
    for &c in &cores.coreness {
        shell_sizes[c as usize] += 1;
    }
    println!("shell sizes (coreness -> vertices):");
    for (k, &s) in shell_sizes.iter().enumerate() {
        if s > 0 && (k < 3 || k + 3 > shell_sizes.len() || s > el.num_vertices() / 20) {
            println!("  {k:>3} -> {s}");
        }
    }
    let densest: Vec<u32> = (0..el.num_vertices() as u32)
        .filter(|&v| cores.coreness[v as usize] == cores.degeneracy)
        .collect();
    println!(
        "densest shell ({}-core) has {} members",
        cores.degeneracy,
        densest.len()
    );

    // 2. Diameter estimation from 64 high-degree probes.
    let deg = el.out_degrees();
    let mut probes: Vec<u32> = (0..el.num_vertices() as u32).collect();
    probes.sort_by_key(|&v| std::cmp::Reverse(deg[v as usize]));
    probes.truncate(64);
    let t1 = std::time::Instant::now();
    let r = algorithms::radii(&engine, &probes);
    println!(
        "\nradii (64 hub probes): diameter estimate >= {} in {:.3}s ({} rounds)",
        r.diameter_estimate,
        t1.elapsed().as_secs_f64(),
        r.rounds
    );

    let (s, m, d) = engine.kernel_counts().snapshot();
    println!("\nedge-map decisions across both analyses: {s} sparse, {m} medium, {d} dense");
}
