//! Fork-join thread pool with an explicit thread count.
//!
//! The paper's Figure 10 sweeps 4–48 threads; engines therefore carry their
//! own [`Pool`] instead of using rayon's global pool, so benchmark code can
//! instantiate differently sized pools side by side.

use std::sync::atomic::{AtomicU64, Ordering};

use rayon::prelude::*;

/// A fixed-width work-stealing pool.
pub struct Pool {
    inner: rayon::ThreadPool,
    threads: usize,
    /// Closure invocations executed through the structured loops below;
    /// lets tests assert that work was (or was not) submitted to the pool.
    jobs: AtomicU64,
}

impl std::fmt::Debug for Pool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pool")
            .field("threads", &self.threads)
            .finish()
    }
}

impl Pool {
    /// Creates a pool with exactly `threads` worker threads.
    ///
    /// # Panics
    /// Panics if `threads == 0` or the OS refuses to spawn workers.
    pub fn new(threads: usize) -> Self {
        assert!(threads > 0, "pool needs at least one thread");
        let inner = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .thread_name(|i| format!("gg-worker-{i}"))
            .build()
            .expect("failed to build thread pool");
        Pool {
            inner,
            threads,
            jobs: AtomicU64::new(0),
        }
    }

    /// A pool sized to the machine (rayon's default heuristic).
    pub fn machine_sized() -> Self {
        Self::new(
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        )
    }

    /// Number of worker threads.
    #[inline]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Total closure invocations executed through the structured loops
    /// (`for_each_index`, `for_each_in_order`, `map_indices`,
    /// `for_each_chunk`). Monotonic; used by tests to prove that empty
    /// partitions are skipped without submitting pool work.
    #[inline]
    pub fn jobs_run(&self) -> u64 {
        self.jobs.load(Ordering::Relaxed)
    }

    #[inline]
    fn count_job(&self) {
        self.jobs.fetch_add(1, Ordering::Relaxed);
    }

    /// Runs `f` inside the pool (all rayon parallelism in `f` uses this
    /// pool's workers).
    #[inline]
    pub fn install<R: Send>(&self, f: impl FnOnce() -> R + Send) -> R {
        self.inner.install(f)
    }

    /// Parallel loop over `0..count` with one call per index. Used for
    /// per-partition execution: the closure for partition `p` runs on
    /// exactly one worker, giving the exclusive-update guarantee.
    pub fn for_each_index(&self, count: usize, f: impl Fn(usize) + Sync) {
        self.install(|| {
            (0..count).into_par_iter().for_each(|i| {
                self.count_job();
                f(i);
            });
        });
    }

    /// Parallel loop over `0..count` in `order`: `order[k]` is run with
    /// priority position `k`. Used to schedule partitions grouped by NUMA
    /// domain.
    pub fn for_each_in_order(&self, order: &[usize], f: impl Fn(usize) + Sync) {
        self.install(|| {
            order.par_iter().for_each(|&i| {
                self.count_job();
                f(i);
            });
        });
    }

    /// Parallel map over `0..count` collecting results in index order.
    ///
    /// Also the typed-output fan-out primitive of the partitioned
    /// executor: partition tasks *return* their per-partition buffers
    /// (sparse vertex lists or dense bitmap segments) in submission order
    /// instead of writing a shared bitmap, and the caller merges them
    /// deterministically.
    pub fn map_indices<R: Send>(&self, count: usize, f: impl Fn(usize) -> R + Sync) -> Vec<R> {
        self.install(|| {
            (0..count)
                .into_par_iter()
                .map(|i| {
                    self.count_job();
                    f(i)
                })
                .collect()
        })
    }

    /// Splits `0..len` into roughly `tasks` contiguous chunks and runs `f`
    /// on each `(start, end)` in parallel. Chunk grain for flat loops over
    /// vertices/edges.
    pub fn for_each_chunk(&self, len: usize, tasks: usize, f: impl Fn(usize, usize) + Sync) {
        if len == 0 {
            return;
        }
        let tasks = tasks.max(1).min(len);
        self.install(|| {
            (0..tasks).into_par_iter().for_each(|t| {
                self.count_job();
                let start = len * t / tasks;
                let end = len * (t + 1) / tasks;
                f(start, end);
            });
        });
    }

    /// Parallel sum of `f(i)` over `0..count`.
    pub fn sum_u64(&self, count: usize, f: impl Fn(usize) -> u64 + Sync) -> u64 {
        self.install(|| (0..count).into_par_iter().map(&f).sum())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

    #[test]
    fn respects_thread_count() {
        let pool = Pool::new(3);
        assert_eq!(pool.threads(), 3);
        let seen = AtomicUsize::new(0);
        pool.install(|| {
            seen.store(rayon::current_num_threads(), Ordering::Relaxed);
        });
        assert_eq!(seen.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn for_each_index_covers_all() {
        let pool = Pool::new(4);
        let hits = AtomicU64::new(0);
        pool.for_each_index(100, |i| {
            hits.fetch_add(i as u64 + 1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 100 * 101 / 2);
    }

    #[test]
    fn chunks_partition_the_range() {
        let pool = Pool::new(4);
        let total = AtomicU64::new(0);
        pool.for_each_chunk(1003, 7, |s, e| {
            assert!(s < e);
            total.fetch_add((e - s) as u64, Ordering::Relaxed);
        });
        assert_eq!(total.load(Ordering::Relaxed), 1003);
    }

    #[test]
    fn chunks_handle_degenerate_sizes() {
        let pool = Pool::new(2);
        pool.for_each_chunk(0, 4, |_, _| panic!("no chunks for empty range"));
        let count = AtomicU64::new(0);
        pool.for_each_chunk(2, 100, |s, e| {
            count.fetch_add((e - s) as u64, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn map_preserves_order() {
        let pool = Pool::new(4);
        let v = pool.map_indices(50, |i| i * i);
        assert_eq!(v[7], 49);
        assert_eq!(v.len(), 50);
    }

    #[test]
    fn sum_matches() {
        let pool = Pool::new(2);
        assert_eq!(pool.sum_u64(10, |i| i as u64), 45);
    }

    #[test]
    fn jobs_run_counts_submitted_closures() {
        let pool = Pool::new(2);
        assert_eq!(pool.jobs_run(), 0);
        pool.for_each_index(5, |_| {});
        assert_eq!(pool.jobs_run(), 5);
        pool.for_each_in_order(&[2, 0, 1], |_| {});
        assert_eq!(pool.jobs_run(), 8);
        let _ = pool.map_indices(3, |i| i);
        assert_eq!(pool.jobs_run(), 11);
        pool.for_each_chunk(100, 4, |_, _| {});
        assert_eq!(pool.jobs_run(), 15);
        // Degenerate loops submit nothing.
        pool.for_each_chunk(0, 4, |_, _| {});
        pool.for_each_index(0, |_| {});
        assert_eq!(pool.jobs_run(), 15);
    }

    #[test]
    fn ordered_loop_runs_all() {
        let pool = Pool::new(2);
        let order = vec![3, 1, 0, 2];
        let mask = AtomicU64::new(0);
        pool.for_each_in_order(&order, |i| {
            mask.fetch_or(1 << i, Ordering::Relaxed);
        });
        assert_eq!(mask.load(Ordering::Relaxed), 0b1111);
    }
}
