//! Tiny deterministic graphs with known-by-construction properties. The
//! test suites use these as oracles (exact BFS levels, component counts,
//! PageRank closed forms on symmetric structures, …).

use crate::edge_list::EdgeList;

/// Directed path `0 -> 1 -> … -> n-1`.
pub fn path(n: usize) -> EdgeList {
    let mut el = EdgeList::with_capacity(n, n.saturating_sub(1));
    for v in 1..n {
        el.push(v as u32 - 1, v as u32);
    }
    el
}

/// Directed cycle `0 -> 1 -> … -> n-1 -> 0`.
pub fn cycle(n: usize) -> EdgeList {
    assert!(n >= 1);
    let mut el = EdgeList::with_capacity(n, n);
    for v in 0..n {
        el.push(v as u32, ((v + 1) % n) as u32);
    }
    el
}

/// Star with centre 0: symmetric edges `0 <-> v` for `v` in `1..n`.
pub fn star(n: usize) -> EdgeList {
    assert!(n >= 1);
    let mut el = EdgeList::with_capacity(n, 2 * (n - 1));
    for v in 1..n as u32 {
        el.push(0, v);
        el.push(v, 0);
    }
    el
}

/// Complete directed graph on `n` vertices (no self-loops).
pub fn complete(n: usize) -> EdgeList {
    let mut el = EdgeList::with_capacity(n, n * n.saturating_sub(1));
    for u in 0..n as u32 {
        for v in 0..n as u32 {
            if u != v {
                el.push(u, v);
            }
        }
    }
    el
}

/// Complete binary tree with `n` vertices, edges directed parent -> child.
/// Vertex `v`'s children are `2v+1` and `2v+2`.
pub fn binary_tree(n: usize) -> EdgeList {
    let mut el = EdgeList::with_capacity(n, n.saturating_sub(1));
    for v in 0..n {
        for child in [2 * v + 1, 2 * v + 2] {
            if child < n {
                el.push(v as u32, child as u32);
            }
        }
    }
    el
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::properties::GraphStats;

    #[test]
    fn path_shape() {
        let el = path(5);
        assert_eq!(el.num_edges(), 4);
        assert_eq!(el.out_degrees(), vec![1, 1, 1, 1, 0]);
    }

    #[test]
    fn cycle_shape() {
        let el = cycle(4);
        assert_eq!(el.num_edges(), 4);
        assert_eq!(el.in_degrees(), vec![1; 4]);
        assert_eq!(el.out_degrees(), vec![1; 4]);
    }

    #[test]
    fn star_is_symmetric() {
        let el = star(6);
        assert_eq!(el.num_edges(), 10);
        assert!(GraphStats::compute(&el).symmetric);
        assert_eq!(el.out_degrees()[0], 5);
    }

    #[test]
    fn complete_degree() {
        let el = complete(5);
        assert_eq!(el.num_edges(), 20);
        assert!(el.out_degrees().iter().all(|&d| d == 4));
    }

    #[test]
    fn tree_edges() {
        let el = binary_tree(7);
        assert_eq!(el.num_edges(), 6);
        assert_eq!(el.out_degrees(), vec![2, 2, 2, 0, 0, 0, 0]);
        assert_eq!(el.in_degrees(), vec![0, 1, 1, 1, 1, 1, 1]);
    }
}
