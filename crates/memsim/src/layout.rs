//! Synthetic address-space model.
//!
//! The instrumented traversals in `gg-core` do not read real pointers; they
//! describe accesses logically ("element `i` of the rank array"). This
//! module assigns each logical array a page-aligned base address in a
//! synthetic address space so that logically distinct arrays never share a
//! cache line — mirroring how the real framework allocates its frontier
//! bitmaps, vertex-data arrays and edge arrays separately.

use crate::trace::AccessSink;

const PAGE: u64 = 4096;

/// Handle to a registered array.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ArrayHandle {
    base: u64,
    elem_bytes: u64,
    len: u64,
}

impl ArrayHandle {
    /// Byte address of element `i`.
    #[inline]
    pub fn addr(&self, i: usize) -> u64 {
        debug_assert!((i as u64) < self.len, "index {i} out of bounds");
        self.base + i as u64 * self.elem_bytes
    }

    /// Byte address of bit `i` in a bit-array interpretation (used for
    /// frontier bitmaps: 8 bits per byte).
    #[inline]
    pub fn bit_addr(&self, i: usize) -> u64 {
        debug_assert!((i as u64) < self.len * 8, "bit {i} out of bounds");
        self.base + i as u64 / 8
    }

    /// Records element `i`'s access into `sink`.
    #[inline]
    pub fn touch<S: AccessSink>(&self, sink: &mut S, i: usize) {
        sink.access(self.addr(i));
    }

    /// Records bit `i`'s access into `sink`.
    #[inline]
    pub fn touch_bit<S: AccessSink>(&self, sink: &mut S, i: usize) {
        sink.access(self.bit_addr(i));
    }
}

/// Allocates logical arrays in a synthetic address space.
#[derive(Clone, Debug, Default)]
pub struct MemoryLayout {
    next_base: u64,
}

impl MemoryLayout {
    /// An empty layout starting at a non-zero base.
    pub fn new() -> Self {
        MemoryLayout { next_base: PAGE }
    }

    /// Registers an array of `len` elements of `elem_bytes` each; the base
    /// is page-aligned so arrays never share cache lines.
    pub fn array(&mut self, len: usize, elem_bytes: usize) -> ArrayHandle {
        let h = ArrayHandle {
            base: self.next_base,
            elem_bytes: elem_bytes as u64,
            len: len.max(1) as u64,
        };
        let bytes = h.len * h.elem_bytes;
        self.next_base += bytes.div_ceil(PAGE).max(1) * PAGE;
        h
    }

    /// Registers a bitmap over `bits` bits (1 byte per 8 bits).
    pub fn bitmap(&mut self, bits: usize) -> ArrayHandle {
        self.array(bits.div_ceil(8).max(1), 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{AddressTrace, LINE_BYTES};

    #[test]
    fn arrays_do_not_overlap() {
        let mut l = MemoryLayout::new();
        let a = l.array(1000, 4);
        let b = l.array(1000, 8);
        let a_end = a.addr(999) + 4;
        assert!(b.addr(0) >= a_end);
        // Page alignment implies line alignment.
        assert_eq!(a.addr(0) % LINE_BYTES, 0);
        assert_eq!(b.addr(0) % LINE_BYTES, 0);
    }

    #[test]
    fn element_addresses_are_contiguous() {
        let mut l = MemoryLayout::new();
        let a = l.array(16, 4);
        assert_eq!(a.addr(1) - a.addr(0), 4);
        // 16 consecutive u32s span exactly one cache line.
        assert_eq!(a.addr(0) / LINE_BYTES, a.addr(15) / LINE_BYTES);
    }

    #[test]
    fn bitmap_packs_8_bits_per_byte() {
        let mut l = MemoryLayout::new();
        let b = l.bitmap(1024);
        assert_eq!(b.bit_addr(0), b.bit_addr(7));
        assert_eq!(b.bit_addr(8) - b.bit_addr(0), 1);
        // 512 bits per 64-byte line.
        assert_eq!(b.bit_addr(0) / LINE_BYTES, b.bit_addr(511) / LINE_BYTES);
        assert_ne!(b.bit_addr(0) / LINE_BYTES, b.bit_addr(512) / LINE_BYTES);
    }

    #[test]
    fn touch_records() {
        let mut l = MemoryLayout::new();
        let a = l.array(10, 8);
        let mut t = AddressTrace::new();
        a.touch(&mut t, 0);
        a.touch(&mut t, 9);
        assert_eq!(t.len(), 2);
        assert_eq!(t.lines()[0], a.addr(0) / LINE_BYTES);
    }

    #[test]
    fn zero_length_array_is_safe_to_register() {
        let mut l = MemoryLayout::new();
        let a = l.array(0, 4);
        let b = l.array(4, 4);
        assert!(b.addr(0) > a.addr(0));
    }
}
