//! Instrumented (sequential) traversals feeding `gg-memsim`.
//!
//! These functions replay the framework's traversal orders while emitting
//! every memory reference into an [`AccessSink`] — the portable substitute
//! for the paper's hardware measurements:
//!
//! * [`fig2_reuse_profile`] reproduces Figure 2: the reuse distances of
//!   next-array updates during a PRDelta-style dense push over the
//!   destination-partitioned CSR, for a given partition count;
//! * [`run_traced`] / [`run_traced_parallel`] reproduce the access streams
//!   behind Figure 8: full executions of PR / Bellman-Ford / BFS against
//!   the composite store (with Algorithm 2's decision logic), streamed
//!   into a cache simulator to obtain MPKI.
//!
//! Figure 2's replay is sequential in partition order (reuse distance is
//! defined on a serial reference stream; partitioning shortens the
//! distances regardless of which thread runs which partition). Figure 8's
//! replay interleaves the streams of `threads` concurrent workers, because
//! the paper's MPKI effect comes from the *aggregate* working set of the
//! partitions running at the same time competing for the shared LLC.

use gg_graph::coo::PartitionedCoo;
use gg_graph::csc::Csc;
use gg_graph::csr::{Csr, PartitionedCsr};
use gg_graph::edge_list::EdgeList;
use gg_graph::partition::{PartitionBy, PartitionSet};
use gg_graph::reorder::EdgeOrder;
use gg_memsim::layout::{ArrayHandle, MemoryLayout};
use gg_memsim::reuse::ReuseProfile;
use gg_memsim::trace::{AccessSink, AddressTrace};

use crate::config::Thresholds;
use crate::edge_map::{decide, EdgeKind};

/// Operation counts of a traced execution (for the instruction proxy).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TracedWork {
    /// Edges examined.
    pub edges: u64,
    /// Vertices visited (including replicas / range scans).
    pub vertices: u64,
}

/// Figure 2: reuse-distance profile of the writes to the next-value array
/// during one full dense forward traversal of the `num_partitions`-way
/// destination-partitioned CSR (the PRDelta update stream).
pub fn fig2_reuse_profile(el: &EdgeList, num_partitions: usize) -> ReuseProfile {
    let set =
        PartitionSet::edge_balanced(&el.in_degrees(), num_partitions, PartitionBy::Destination);
    let pcsr = PartitionedCsr::new(el, &set);
    let mut layout = MemoryLayout::new();
    // PRDelta accumulates 8-byte deltas per destination vertex.
    let next_data = layout.array(el.num_vertices(), 8);
    let mut trace = AddressTrace::with_capacity(el.num_edges());
    for p in 0..pcsr.num_partitions() {
        let part = pcsr.part(p);
        for i in 0..part.num_stored_vertices() {
            for &v in part.neighbors_at(i) {
                next_data.touch(&mut trace, v as usize);
            }
        }
    }
    ReuseProfile::from_trace(&trace)
}

/// Algorithms traced for the Figure 8 MPKI sweep.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TracedAlgorithm {
    /// 10 power-method iterations; every iteration dense (edge-oriented).
    PageRank,
    /// Bellman-Ford from vertex 0; frontier-driven, mostly dense on social
    /// graphs (requires edge weights; unit weights are substituted if the
    /// input is unweighted).
    BellmanFord,
    /// BFS from vertex 0; vertex-oriented, mostly sparse/medium — the
    /// paper's example of an algorithm partitioning does *not* help.
    Bfs,
}

/// Synthetic address-space handles for the traced data structures.
struct Arrays {
    coo_srcs: ArrayHandle,
    coo_dsts: ArrayHandle,
    coo_weights: ArrayHandle,
    csr_targets: ArrayHandle,
    csr_weights: ArrayHandle,
    csc_sources: ArrayHandle,
    csc_weights: ArrayHandle,
    cur_bitmap: ArrayHandle,
    /// 8-byte per-vertex value array A (rank / ping).
    data_a: ArrayHandle,
    /// 8-byte per-vertex value array B (next rank / pong).
    data_b: ArrayHandle,
    /// 4-byte per-vertex array (BFS parent / BF distance).
    small_data: ArrayHandle,
}

impl Arrays {
    fn new(n: usize, m: usize) -> Self {
        let mut layout = MemoryLayout::new();
        Arrays {
            coo_srcs: layout.array(m, 4),
            coo_dsts: layout.array(m, 4),
            coo_weights: layout.array(m, 4),
            csr_targets: layout.array(m, 4),
            csr_weights: layout.array(m, 4),
            csc_sources: layout.array(m, 4),
            csc_weights: layout.array(m, 4),
            cur_bitmap: layout.bitmap(n),
            data_a: layout.array(n, 8),
            data_b: layout.array(n, 8),
            small_data: layout.array(n, 4),
        }
    }
}

/// The traced composite store.
struct TracedStore {
    coo: PartitionedCoo,
    csr: Csr,
    csc: Csc,
    out_degrees: Vec<u32>,
    arrays: Arrays,
    thresholds: Thresholds,
}

impl TracedStore {
    fn new(el: &EdgeList, num_partitions: usize, order: EdgeOrder, thresholds: Thresholds) -> Self {
        let set =
            PartitionSet::edge_balanced(&el.in_degrees(), num_partitions, PartitionBy::Destination);
        TracedStore {
            coo: PartitionedCoo::new(el, &set, order),
            csr: Csr::from_edge_list(el),
            csc: Csc::from_edge_list(el),
            out_degrees: el.out_degrees(),
            arrays: Arrays::new(el.num_vertices(), el.num_edges()),
            thresholds,
        }
    }

    fn n(&self) -> usize {
        self.csr.num_vertices()
    }

    fn m(&self) -> usize {
        self.csr.num_edges()
    }

    /// Emits the accesses of one edge of partition `p` at local index `i`.
    #[allow(clippy::too_many_arguments)]
    #[inline]
    fn emit_edge<S, F>(
        &self,
        sink: &mut S,
        p: usize,
        i: usize,
        active: &[bool],
        use_small_data: bool,
        flip: bool,
        work: &mut TracedWork,
        visit: &mut F,
    ) where
        S: AccessSink,
        F: FnMut(u32, u32, f32),
    {
        let a = &self.arrays;
        let (src_arr, dst_arr) = if flip {
            (&a.data_b, &a.data_a)
        } else {
            (&a.data_a, &a.data_b)
        };
        let range = self.coo.part_range(p);
        let srcs = self.coo.part_srcs(p);
        let dsts = self.coo.part_dsts(p);
        let weights = self.coo.part_weights(p);
        let e = range.start + i;
        work.edges += 1;
        a.coo_srcs.touch(sink, e);
        a.coo_dsts.touch(sink, e);
        a.cur_bitmap.touch_bit(sink, srcs[i] as usize);
        if active[srcs[i] as usize] {
            let w = weights.map_or(1.0, |w| w[i]);
            a.coo_weights.touch(sink, e);
            if use_small_data {
                a.small_data.touch(sink, srcs[i] as usize);
                a.small_data.touch(sink, dsts[i] as usize);
            } else {
                src_arr.touch(sink, srcs[i] as usize);
                dst_arr.touch(sink, dsts[i] as usize);
            }
            visit(srcs[i], dsts[i], w);
        }
    }

    /// One dense COO pass over every edge.
    ///
    /// With `threads > 1` the reference stream models the paper's parallel
    /// execution: each worker owns a contiguous block of partitions (the
    /// domain-major schedule) and the workers' streams are interleaved in
    /// small chunks, so the *aggregate* working set of all concurrent
    /// partitions competes for the simulated cache — the effect that makes
    /// MPKI fall as partitions shrink (Figure 8). `threads == 1` is the
    /// plain sequential order.
    #[allow(clippy::too_many_arguments)]
    fn dense_pass<S, F>(
        &self,
        sink: &mut S,
        active: &[bool],
        use_small_data: bool,
        flip: bool,
        threads: usize,
        work: &mut TracedWork,
        mut visit: F,
    ) where
        S: AccessSink,
        F: FnMut(u32, u32, f32),
    {
        const CHUNK: usize = 16;
        let num_parts = self.coo.num_partitions();
        let t = threads.clamp(1, num_parts);
        // Worker w owns partitions [w * P / t, (w+1) * P / t).
        // Cursor per worker: (current partition, edge offset inside it).
        let mut cursor: Vec<(usize, usize)> = (0..t).map(|w| (w * num_parts / t, 0)).collect();
        let limit: Vec<usize> = (0..t).map(|w| (w + 1) * num_parts / t).collect();
        let mut live = t;
        while live > 0 {
            live = 0;
            for w in 0..t {
                let (ref mut p, ref mut off) = cursor[w];
                let mut budget = CHUNK;
                while budget > 0 && *p < limit[w] {
                    let part_len = self.coo.part_range(*p).len();
                    if *off >= part_len {
                        *p += 1;
                        *off = 0;
                        continue;
                    }
                    self.emit_edge(
                        sink,
                        *p,
                        *off,
                        active,
                        use_small_data,
                        flip,
                        work,
                        &mut visit,
                    );
                    *off += 1;
                    budget -= 1;
                }
                if *p < limit[w] {
                    live += 1;
                }
            }
        }
    }

    /// One sparse CSR pass over the active list.
    fn sparse_pass<S, F>(
        &self,
        sink: &mut S,
        active_list: &[u32],
        work: &mut TracedWork,
        mut visit: F,
    ) where
        S: AccessSink,
        F: FnMut(u32, u32, f32),
    {
        let a = &self.arrays;
        for &u in active_list {
            work.vertices += 1;
            a.small_data.touch(sink, u as usize);
            for e in self.csr.edge_range(u) {
                work.edges += 1;
                a.csr_targets.touch(sink, e);
                a.csr_weights.touch(sink, e);
                let v = self.csr.targets()[e];
                a.small_data.touch(sink, v as usize);
                visit(u, v, self.csr.weight_at(e));
            }
        }
    }

    /// One medium CSC (pull) pass with per-destination early exit driven by
    /// `cond`.
    #[allow(clippy::too_many_arguments)]
    fn medium_pass<S, C, F>(
        &self,
        sink: &mut S,
        active: &[bool],
        work: &mut TracedWork,
        cond: C,
        mut visit: F,
    ) where
        S: AccessSink,
        C: Fn(u32) -> bool,
        F: FnMut(u32, u32, f32),
    {
        let a = &self.arrays;
        for v in 0..self.n() as u32 {
            work.vertices += 1;
            if !cond(v) {
                continue;
            }
            a.small_data.touch(sink, v as usize);
            for e in self.csc.edge_range(v) {
                work.edges += 1;
                a.csc_sources.touch(sink, e);
                let u = self.csc.sources()[e];
                a.cur_bitmap.touch_bit(sink, u as usize);
                if active[u as usize] {
                    a.csc_weights.touch(sink, e);
                    a.small_data.touch(sink, u as usize);
                    visit(u, v, self.csc.weight_at(e));
                    if !cond(v) {
                        break;
                    }
                }
            }
        }
    }
}

/// Replays `algo` on the composite store with `num_partitions` partitions,
/// streaming every memory reference into `sink` as a single sequential
/// stream. Returns the op counts for the MPKI instruction proxy.
pub fn run_traced<S: AccessSink>(
    el: &EdgeList,
    num_partitions: usize,
    order: EdgeOrder,
    algo: TracedAlgorithm,
    sink: &mut S,
) -> TracedWork {
    run_traced_parallel(el, num_partitions, order, algo, 1, sink)
}

/// Like [`run_traced`], but models `threads` concurrent workers sharing
/// the cache during dense passes: each worker owns a contiguous block of
/// partitions (the domain-major schedule) and the workers' reference
/// streams are interleaved in small chunks — the configuration behind
/// Figure 8's MPKI-vs-partitions sweep.
pub fn run_traced_parallel<S: AccessSink>(
    el: &EdgeList,
    num_partitions: usize,
    order: EdgeOrder,
    algo: TracedAlgorithm,
    threads: usize,
    sink: &mut S,
) -> TracedWork {
    let store = TracedStore::new(el, num_partitions, order, Thresholds::default());
    match algo {
        TracedAlgorithm::PageRank => trace_pagerank(&store, threads, sink),
        TracedAlgorithm::BellmanFord => trace_bellman_ford(&store, threads, sink),
        TracedAlgorithm::Bfs => trace_bfs(&store, sink),
    }
}

fn trace_pagerank<S: AccessSink>(store: &TracedStore, threads: usize, sink: &mut S) -> TracedWork {
    let n = store.n();
    let mut work = TracedWork::default();
    let mut rank = vec![1.0f64 / n as f64; n];
    let mut next = vec![0.0f64; n];
    let active = vec![true; n];
    let deg = store.out_degrees.clone();
    for iter in 0..10 {
        next.fill(0.0);
        let flip = iter % 2 == 1;
        store.dense_pass(
            sink,
            &active,
            false,
            flip,
            threads,
            &mut work,
            |u, v, _w| {
                let d = deg[u as usize].max(1) as f64;
                next[v as usize] += rank[u as usize] / d;
            },
        );
        for x in next.iter_mut() {
            *x = 0.15 / n as f64 + 0.85 * *x;
        }
        std::mem::swap(&mut rank, &mut next);
    }
    work
}

fn trace_bfs<S: AccessSink>(store: &TracedStore, sink: &mut S) -> TracedWork {
    let n = store.n();
    let m = store.m() as u64;
    let mut work = TracedWork::default();
    let mut parent = vec![u32::MAX; n];
    parent[0] = 0;
    let mut frontier = vec![0u32];
    while !frontier.is_empty() {
        let metric: u64 = frontier.len() as u64
            + frontier
                .iter()
                .map(|&v| store.out_degrees[v as usize] as u64)
                .sum::<u64>();
        let kind = decide(metric, m, &store.thresholds);
        let mut next_frontier: Vec<u32> = Vec::new();
        match kind {
            EdgeKind::Sparse => {
                store.sparse_pass(sink, &frontier, &mut work, |u, v, _w| {
                    if parent[v as usize] == u32::MAX {
                        parent[v as usize] = u;
                        next_frontier.push(v);
                    }
                });
            }
            EdgeKind::Medium | EdgeKind::Dense => {
                // BFS pull (the direction-optimized dense phase).
                let mut active = vec![false; n];
                for &v in &frontier {
                    active[v as usize] = true;
                }
                let parent_snapshot = parent.clone();
                store.medium_pass(
                    sink,
                    &active,
                    &mut work,
                    |v| parent_snapshot[v as usize] == u32::MAX,
                    |u, v, _w| {
                        if parent[v as usize] == u32::MAX {
                            parent[v as usize] = u;
                            next_frontier.push(v);
                        }
                    },
                );
            }
        }
        next_frontier.sort_unstable();
        next_frontier.dedup();
        frontier = next_frontier;
    }
    work
}

fn trace_bellman_ford<S: AccessSink>(
    store: &TracedStore,
    threads: usize,
    sink: &mut S,
) -> TracedWork {
    let n = store.n();
    let m = store.m() as u64;
    let mut work = TracedWork::default();
    let mut dist = vec![f32::INFINITY; n];
    dist[0] = 0.0;
    let mut frontier = vec![0u32];
    let mut rounds = 0usize;
    while !frontier.is_empty() && rounds <= n {
        rounds += 1;
        let metric: u64 = frontier.len() as u64
            + frontier
                .iter()
                .map(|&v| store.out_degrees[v as usize] as u64)
                .sum::<u64>();
        let kind = decide(metric, m, &store.thresholds);
        let mut changed = vec![false; n];
        match kind {
            EdgeKind::Sparse => {
                store.sparse_pass(sink, &frontier, &mut work, |u, v, w| {
                    let cand = dist[u as usize] + w;
                    if cand < dist[v as usize] {
                        dist[v as usize] = cand;
                        changed[v as usize] = true;
                    }
                });
            }
            EdgeKind::Medium | EdgeKind::Dense => {
                let mut active = vec![false; n];
                for &v in &frontier {
                    active[v as usize] = true;
                }
                store.dense_pass(sink, &active, true, false, threads, &mut work, |u, v, w| {
                    let cand = dist[u as usize] + w;
                    if cand < dist[v as usize] {
                        dist[v as usize] = cand;
                        changed[v as usize] = true;
                    }
                });
            }
        }
        frontier = (0..n as u32).filter(|&v| changed[v as usize]).collect();
    }
    work
}

#[cfg(test)]
mod tests {
    use super::*;
    use gg_graph::generators;
    use gg_memsim::cache::{Cache, CacheConfig};
    use gg_memsim::trace::CountingSink;

    fn twitterish() -> EdgeList {
        generators::rmat(10, 12_000, generators::RmatParams::skewed(), 21)
    }

    #[test]
    fn fig2_distances_contract_with_partitions() {
        // The headline claim of §II.C: more partitions => shorter worst-case
        // reuse distance of next-array updates.
        let el = twitterish();
        let p1 = fig2_reuse_profile(&el, 1);
        let p16 = fig2_reuse_profile(&el, 16);
        let p64 = fig2_reuse_profile(&el, 64);
        let q1 = p1.histogram.quantile_upper(0.95);
        let q16 = p16.histogram.quantile_upper(0.95);
        let q64 = p64.histogram.quantile_upper(0.95);
        assert!(q16 <= q1, "p95 must not grow: {q1} -> {q16}");
        assert!(q64 <= q16, "p95 must not grow: {q16} -> {q64}");
        assert!(
            q64 < q1,
            "partitioning must shorten distances: {q1} -> {q64}"
        );
        // Same number of reuses in all cases (the edge count is fixed).
        assert_eq!(
            p1.total_references, p64.total_references,
            "trace length is partition-independent"
        );
    }

    #[test]
    fn traced_pagerank_visits_all_edges_each_iteration() {
        let el = generators::erdos_renyi(200, 2000, 3);
        let mut sink = CountingSink::default();
        let work = run_traced(
            &el,
            4,
            EdgeOrder::Hilbert,
            TracedAlgorithm::PageRank,
            &mut sink,
        );
        assert_eq!(work.edges, 10 * 2000);
        assert!(sink.count >= work.edges);
    }

    #[test]
    fn traced_work_is_partition_independent_for_coo() {
        // §II.F: COO work does not grow with partitioning.
        let el = twitterish();
        let mut s1 = CountingSink::default();
        let w1 = run_traced(
            &el,
            1,
            EdgeOrder::Hilbert,
            TracedAlgorithm::PageRank,
            &mut s1,
        );
        let mut s64 = CountingSink::default();
        let w64 = run_traced(
            &el,
            64,
            EdgeOrder::Hilbert,
            TracedAlgorithm::PageRank,
            &mut s64,
        );
        assert_eq!(w1.edges, w64.edges);
        assert_eq!(s1.count, s64.count);
    }

    #[test]
    fn traced_bfs_reaches_reachable_vertices() {
        // Path graph: BFS walks it end to end, always sparse.
        let el = generators::path(50);
        let mut sink = CountingSink::default();
        let work = run_traced(&el, 2, EdgeOrder::Source, TracedAlgorithm::Bfs, &mut sink);
        assert_eq!(work.edges, 49);
    }

    #[test]
    fn traced_bellman_ford_terminates() {
        let mut el = generators::erdos_renyi(100, 1500, 9);
        gg_graph::weights::attach_integer(&mut el, 8, 4);
        let mut sink = CountingSink::default();
        let work = run_traced(
            &el,
            4,
            EdgeOrder::Hilbert,
            TracedAlgorithm::BellmanFord,
            &mut sink,
        );
        assert!(work.edges > 0);
    }

    #[test]
    fn partitioning_reduces_llc_misses_for_pagerank() {
        // The Figure 8 effect, at test scale: feed the traced PR stream into
        // a small LLC; partitioning confines the destination range so misses
        // drop. Source (CSR) edge order isolates the partitioning effect —
        // Hilbert order already has good locality at P = 1, which is exactly
        // the Figure 7 observation that the two techniques overlap. The
        // vertex-data arrays (8 B x 2^16 = 512 KiB) must dwarf the 64 KiB
        // cache for the destination-confinement effect to be visible.
        let el = generators::rmat(16, 100_000, generators::RmatParams::skewed(), 2);
        let cfg = CacheConfig {
            size_bytes: 64 * 1024,
            ways: 8,
            line_bytes: 64,
        };
        let mut c1 = Cache::new(cfg);
        run_traced(
            &el,
            1,
            EdgeOrder::Source,
            TracedAlgorithm::PageRank,
            &mut c1,
        );
        let mut c64 = Cache::new(cfg);
        run_traced(
            &el,
            64,
            EdgeOrder::Source,
            TracedAlgorithm::PageRank,
            &mut c64,
        );
        let m1 = c1.stats().misses;
        let m64 = c64.stats().misses;
        assert!(
            (m64 as f64) < (m1 as f64) * 0.95,
            "expected >=5% miss reduction: {m1} -> {m64}"
        );
    }

    #[test]
    fn parallel_interleaving_reproduces_fig8_contraction() {
        // With T concurrent workers, the aggregate destination working set
        // is T active partitions wide: at P ~ T it spans the whole vertex
        // array (thrashing); at larger P it shrinks to T·n/P and fits, so
        // misses fall — the Figure 8 shape. Source order isolates the
        // partitioning effect (Hilbert order already localises at P = 1,
        // the Figure 7 overlap); at reproduction scale the optimum sits
        // near P = 48 rather than the paper's 384 because the graphs are
        // three orders of magnitude smaller.
        let el = generators::rmat(14, 500_000, generators::RmatParams::skewed(), 3);
        let footprint = (el.num_vertices() * 16) as u64;
        let cfg = CacheConfig::scaled_llc(footprint, 4);
        let threads = 16;
        let miss = |p: usize| {
            let mut c = Cache::new(cfg);
            run_traced_parallel(
                &el,
                p,
                EdgeOrder::Source,
                TracedAlgorithm::PageRank,
                threads,
                &mut c,
            );
            c.stats().misses
        };
        let m4 = miss(4);
        let m48 = miss(48);
        assert!(
            (m48 as f64) < (m4 as f64) * 0.8,
            "expected >=20% miss reduction: P=4 {m4} -> P=48 {m48}"
        );
    }

    #[test]
    fn interleaved_stream_emits_every_edge_once() {
        let el = generators::erdos_renyi(300, 5000, 8);
        let mut sink = CountingSink::default();
        let work = run_traced_parallel(
            &el,
            32,
            EdgeOrder::Hilbert,
            TracedAlgorithm::PageRank,
            7,
            &mut sink,
        );
        assert_eq!(work.edges, 10 * 5000);
    }

    #[test]
    fn hilbert_order_beats_source_order_unpartitioned() {
        // §IV.C / Figure 7: Hilbert edge order improves locality on its own.
        let el = generators::rmat(16, 100_000, generators::RmatParams::skewed(), 2);
        let cfg = CacheConfig {
            size_bytes: 64 * 1024,
            ways: 8,
            line_bytes: 64,
        };
        let mut c_src = Cache::new(cfg);
        run_traced(
            &el,
            1,
            EdgeOrder::Source,
            TracedAlgorithm::PageRank,
            &mut c_src,
        );
        let mut c_hil = Cache::new(cfg);
        run_traced(
            &el,
            1,
            EdgeOrder::Hilbert,
            TracedAlgorithm::PageRank,
            &mut c_hil,
        );
        assert!(
            c_hil.stats().misses < c_src.stats().misses,
            "hilbert {} vs source {}",
            c_hil.stats().misses,
            c_src.stats().misses
        );
    }
}
