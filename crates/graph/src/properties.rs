//! Whole-graph statistics (Table I characterisation and frontier helpers).

use crate::edge_list::EdgeList;

/// Summary statistics of a graph, as reported in Table I of the paper.
#[derive(Clone, Debug, PartialEq)]
pub struct GraphStats {
    /// Number of vertices.
    pub num_vertices: usize,
    /// Number of (directed) edges.
    pub num_edges: usize,
    /// Maximum out-degree.
    pub max_out_degree: u32,
    /// Maximum in-degree.
    pub max_in_degree: u32,
    /// Mean out-degree `|E| / |V|`.
    pub avg_degree: f64,
    /// Number of vertices with neither in- nor out-edges.
    pub isolated_vertices: usize,
    /// Whether every edge has its reverse present (undirected-as-directed).
    pub symmetric: bool,
}

impl GraphStats {
    /// Computes statistics for `el`.
    pub fn compute(el: &EdgeList) -> Self {
        let out = el.out_degrees();
        let inn = el.in_degrees();
        let n = el.num_vertices();
        let m = el.num_edges();
        let isolated = (0..n).filter(|&v| out[v] == 0 && inn[v] == 0).count();

        // Symmetry check via sorted edge multiset comparison.
        let mut fwd: Vec<(u32, u32)> = el.iter().collect();
        let mut bwd: Vec<(u32, u32)> = el.iter().map(|(u, v)| (v, u)).collect();
        fwd.sort_unstable();
        bwd.sort_unstable();

        GraphStats {
            num_vertices: n,
            num_edges: m,
            max_out_degree: out.iter().copied().max().unwrap_or(0),
            max_in_degree: inn.iter().copied().max().unwrap_or(0),
            avg_degree: if n == 0 { 0.0 } else { m as f64 / n as f64 },
            isolated_vertices: isolated,
            symmetric: fwd == bwd,
        }
    }
}

/// Log2-bucketed out-degree histogram: bucket `k >= 1` counts vertices with
/// out-degree in `[2^(k-1) .. 2^k - 1]`; bucket 0 counts degree-0 vertices.
pub fn degree_histogram(degrees: &[u32]) -> Vec<usize> {
    let mut hist = Vec::new();
    for &d in degrees {
        let bucket = if d == 0 {
            0
        } else {
            (32 - d.leading_zeros()) as usize
        };
        if hist.len() <= bucket {
            hist.resize(bucket + 1, 0);
        }
        hist[bucket] += 1;
    }
    hist
}

/// Sum of `degrees[v]` over the vertices listed in `active` — the
/// `Σ_{v∈F} deg_out(v)` term of the paper's Algorithm 2 density test.
pub fn active_degree_sum(degrees: &[u32], active: &[u32]) -> u64 {
    active.iter().map(|&v| degrees[v as usize] as u64).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_on_small_graph() {
        let el = EdgeList::from_edges(5, &[(0, 1), (0, 2), (1, 2), (2, 0)]);
        let s = GraphStats::compute(&el);
        assert_eq!(s.num_vertices, 5);
        assert_eq!(s.num_edges, 4);
        assert_eq!(s.max_out_degree, 2);
        assert_eq!(s.max_in_degree, 2);
        assert_eq!(s.isolated_vertices, 2); // vertices 3 and 4
        assert!(!s.symmetric);
        assert!((s.avg_degree - 0.8).abs() < 1e-12);
    }

    #[test]
    fn symmetric_detection() {
        let el = EdgeList::from_edges(3, &[(0, 1), (1, 0), (1, 2), (2, 1)]);
        assert!(GraphStats::compute(&el).symmetric);
    }

    #[test]
    fn histogram_buckets() {
        // degrees: 0 -> bucket 0, 1 -> 1, {2,3} -> 2, 4 -> 3, 8 -> 4
        let hist = degree_histogram(&[0, 1, 2, 3, 4, 8]);
        assert_eq!(hist, vec![1, 1, 2, 1, 1]);
    }

    #[test]
    fn degree_sum() {
        let deg = vec![5, 0, 3, 2];
        assert_eq!(active_degree_sum(&deg, &[0, 2]), 8);
        assert_eq!(active_degree_sum(&deg, &[]), 0);
    }
}
