//! Connected components by label propagation (edge-oriented; baselines
//! prefer backward dense traversal).
//!
//! Each vertex starts with its own id as label; edges propagate the
//! minimum. On symmetric (undirected) graphs the fixpoint labels each
//! component with its minimum vertex id. Run on
//! [`symmetrize`](gg_graph::ops::symmetrize)d inputs for undirected
//! semantics, as the evaluation does for the undirected data sets.

use std::sync::atomic::{AtomicU32, Ordering};

use gg_core::edge_map::EdgeOp;
use gg_core::engine::Engine;
use gg_graph::types::VertexId;

use crate::Algorithm;

/// CC output.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CcResult {
    /// Component label per vertex (minimum reachable id at fixpoint).
    pub label: Vec<u32>,
    /// Number of edge-map rounds until convergence.
    pub rounds: usize,
}

impl CcResult {
    /// Number of distinct components.
    pub fn num_components(&self) -> usize {
        let mut labels = self.label.clone();
        labels.sort_unstable();
        labels.dedup();
        labels.len()
    }
}

/// One round of label propagation. Source labels are read from `prev`,
/// a snapshot frozen at round start: reading `label` live would let a
/// label cascade through several hops *within* one round wherever the
/// schedule happens to run the producing edge first, making the round's
/// output frontier depend on thread count and chunk cap. (The record/
/// replay harness caught exactly that: 1-thread chunk-max runs cascaded
/// further per round than 4-thread chunk-1 runs.) With frozen sources the
/// round computes `min(label[dst], min over frontier srcs of prev[src])`
/// — a commutative reduction, bit-identical under every schedule.
struct CcRound<'a> {
    prev: &'a [u32],
    label: &'a [AtomicU32],
}

impl EdgeOp for CcRound<'_> {
    #[inline]
    fn update(&self, src: VertexId, dst: VertexId, _w: f32) -> bool {
        let s = self.prev[src as usize];
        let d = self.label[dst as usize].load(Ordering::Relaxed);
        if s < d {
            self.label[dst as usize].store(s, Ordering::Relaxed);
            true
        } else {
            false
        }
    }

    #[inline]
    fn update_atomic(&self, src: VertexId, dst: VertexId, _w: f32) -> bool {
        let s = self.prev[src as usize];
        gg_runtime::atomics::fetch_min_u32(&self.label[dst as usize], s)
    }
}

/// Runs label-propagation CC to convergence.
pub fn cc<E: Engine>(engine: &E) -> CcResult {
    let n = engine.num_vertices();
    let label: Vec<AtomicU32> = (0..n as u32).map(AtomicU32::new).collect();
    let mut frontier = engine.frontier_all();
    let mut rounds = 0usize;
    let spec = Algorithm::Cc.spec();
    while !frontier.is_empty() {
        let prev = gg_runtime::atomics::snapshot_u32(&label);
        let op = CcRound {
            prev: &prev,
            label: &label,
        };
        frontier = engine.edge_map(&frontier, &op, spec);
        rounds += 1;
    }
    CcResult {
        label: gg_runtime::atomics::snapshot_u32(&label),
        rounds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;
    use gg_core::config::Config;
    use gg_core::engine::GraphGrind2;
    use gg_graph::generators;
    use gg_graph::ops::symmetrize;

    #[test]
    fn matches_union_find_on_symmetric_graphs() {
        for seed in [1u64, 2, 3] {
            let el = symmetrize(&generators::erdos_renyi(150, 200, seed));
            let engine = GraphGrind2::new(&el, Config::for_tests());
            let got = cc(&engine);
            assert_eq!(got.label, reference::cc_labels(&el), "seed {seed}");
        }
    }

    #[test]
    fn isolated_vertices_are_their_own_component() {
        let el = gg_graph::edge_list::EdgeList::from_edges(5, &[(0, 1), (1, 0)]);
        let engine = GraphGrind2::new(&el, Config::for_tests());
        let got = cc(&engine);
        assert_eq!(got.label, vec![0, 0, 2, 3, 4]);
        assert_eq!(got.num_components(), 4);
    }

    #[test]
    fn single_component_on_connected_grid() {
        let el = generators::grid_road(8, 8, 0.0, 0);
        let engine = GraphGrind2::new(&el, Config::for_tests());
        let got = cc(&engine);
        assert!(got.label.iter().all(|&l| l == 0));
        assert_eq!(got.num_components(), 1);
    }
}
