//! Memsim-guided per-partition layout advisor.
//!
//! The paper fixes one COO edge order for the whole graph (§IV.C,
//! Hilbert). This module closes the locality loop instead: at graph-build
//! time, each partition replays a **sampled** representative dense-round
//! address trace — the edge-array scan plus frontier-bitmap and
//! vertex-data touches that one dense COO pass performs — once per
//! candidate [`EdgeOrder`], through the `gg_memsim` cache simulator, and
//! keeps the order with the lowest predicted MPKI.
//!
//! The candidates are exactly the orders `gg_graph::reorder` can build:
//! `Destination` models the CSC-style ascending-destination range scan,
//! `Hilbert` the space-filling-curve COO scan, `Source` the CSR-style
//! forward order. Because the sampled edge *set* is identical across
//! candidates (deterministic hash sampling) and the synthetic address of
//! every array element depends only on the element index, the predicted
//! costs differ only by *visit order* — which is the quantity the advisor
//! is ranking.
//!
//! Selection only permutes each partition's edge order, so results remain
//! bit-identical across all choices (see `crate::partitioned`'s
//! determinism contract); the advisor is purely a performance decision.

use gg_graph::edge_list::EdgeList;
use gg_graph::partition::PartitionSet;
use gg_graph::reorder::{self, EdgeOrder};
use gg_memsim::{
    AddressTrace, Cache, CacheConfig, InstructionModel, MemoryLayout, MpkiReport, ReuseProfile,
    LINE_BYTES,
};

/// Partitions whose hash sample comes out smaller than this are traced
/// whole: below a few hundred edges the sampling noise would dominate the
/// locality signal the advisor is trying to read.
pub const MIN_SAMPLED_EDGES: usize = 256;

/// Predicted cost of one `(partition, candidate-order)` pair.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CandidateScore {
    /// The candidate edge order.
    pub order: EdgeOrder,
    /// Predicted LLC misses per kilo-instruction over the sampled trace.
    pub mpki: f64,
    /// Predicted fully-associative LRU hit ratio at the simulated
    /// capacity (from the reuse-distance profile of the same trace).
    pub hit_ratio: f64,
}

/// The advisor's verdict for one partition.
#[derive(Clone, Debug)]
pub struct PartitionAdvice {
    /// Partition index.
    pub partition: usize,
    /// Argmin-MPKI order (ties break in [`EdgeOrder::all`] order).
    pub chosen: EdgeOrder,
    /// Edges actually traced.
    pub sampled_edges: usize,
    /// Edges homed to this partition.
    pub total_edges: usize,
    /// Simulated cache capacity in lines (scaled to the sampled
    /// footprint so locality differences register at any graph size).
    pub cache_lines: u64,
    /// Per-candidate predictions, in [`EdgeOrder::all`] order. Empty for
    /// partitions with no edges.
    pub candidates: Vec<CandidateScore>,
}

/// The advisor's verdict for every partition of a graph.
#[derive(Clone, Debug)]
pub struct LayoutAdvice {
    /// The effective sample rate after clamping to `(0, 1]`.
    pub sample_rate: f64,
    /// One advice record per partition, in partition order.
    pub partitions: Vec<PartitionAdvice>,
}

impl LayoutAdvice {
    /// The chosen per-partition orders, ready for
    /// `PartitionedCoo::with_orders`.
    pub fn orders(&self) -> Vec<EdgeOrder> {
        self.partitions.iter().map(|a| a.chosen).collect()
    }
}

/// SplitMix64 over the packed endpoints: a deterministic per-edge coin
/// that is independent of edge-list position, so every candidate order
/// scores the exact same sampled edge set.
#[inline]
fn edge_hash(u: u32, v: u32) -> u64 {
    let mut z = (((u as u64) << 32) | v as u64).wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Runs the sampled memsim pass for every partition of `set` and returns
/// per-partition argmin-MPKI orders. Deterministic for a given
/// `(el, set, sample_rate)`.
pub fn advise(el: &EdgeList, set: &PartitionSet, sample_rate: f64) -> LayoutAdvice {
    let rate = if sample_rate.is_finite() && sample_rate > 0.0 {
        sample_rate.min(1.0)
    } else {
        1.0
    };
    let p = set.num_partitions();
    let n = el.num_vertices();
    let srcs = el.srcs();
    let dsts = el.dsts();

    // Bucket every edge by home partition, marking the hash-sampled ones.
    let threshold = (rate * u64::MAX as f64) as u64;
    let mut all: Vec<Vec<(u32, u32)>> = vec![Vec::new(); p];
    let mut sampled: Vec<Vec<(u32, u32)>> = vec![Vec::new(); p];
    for e in 0..el.num_edges() {
        let (u, v) = (srcs[e], dsts[e]);
        let home = set.edge_home(u, v);
        all[home].push((u, v));
        if edge_hash(u, v) <= threshold {
            sampled[home].push((u, v));
        }
    }

    let partitions = (0..p)
        .map(|part| {
            let edges = if sampled[part].len() < MIN_SAMPLED_EDGES {
                &all[part]
            } else {
                &sampled[part]
            };
            advise_partition(part, edges, all[part].len(), n)
        })
        .collect();
    LayoutAdvice {
        sample_rate: rate,
        partitions,
    }
}

/// Scores every candidate order on one partition's sampled edges.
fn advise_partition(
    part: usize,
    edges: &[(u32, u32)],
    total_edges: usize,
    n: usize,
) -> PartitionAdvice {
    if edges.is_empty() {
        return PartitionAdvice {
            partition: part,
            chosen: EdgeOrder::default(),
            sampled_edges: 0,
            total_edges,
            cache_lines: 0,
            candidates: Vec::new(),
        };
    }
    let k = edges.len();
    let e_srcs: Vec<u32> = edges.iter().map(|&(u, _)| u).collect();
    let e_dsts: Vec<u32> = edges.iter().map(|&(_, v)| v).collect();
    let mut distinct: Vec<u32> = e_dsts.clone();
    distinct.sort_unstable();
    distinct.dedup();
    let distinct_dsts = distinct.len() as u64;

    // The dense-round working set: the two 4-byte endpoint arrays (read
    // sequentially in storage order), the source-frontier bitmap, and the
    // 8-byte source/destination vertex-data arrays — the same shape as
    // `crate::trace`'s instrumented dense COO pass.
    let mut layout = MemoryLayout::new();
    let a_srcs = layout.array(k, 4);
    let a_dsts = layout.array(k, 4);
    let a_frontier = layout.bitmap(n);
    let a_src_data = layout.array(n, 8);
    let a_dst_data = layout.array(n, 8);

    let mut idx: Vec<usize> = (0..k).collect();
    let mut cache_cfg: Option<CacheConfig> = None;
    let mut cache_lines = 0u64;
    let mut candidates = Vec::with_capacity(EdgeOrder::all().len());
    for order in EdgeOrder::all() {
        reorder::sort_indices(&mut idx, &e_srcs, &e_dsts, n, order);
        let mut trace = AddressTrace::new();
        for (slot, &e) in idx.iter().enumerate() {
            let (u, v) = (e_srcs[e] as usize, e_dsts[e] as usize);
            // In the real layout the edge arrays are *stored* in this
            // order, so the endpoint reads walk slots sequentially.
            a_srcs.touch(&mut trace, slot);
            a_dsts.touch(&mut trace, slot);
            a_frontier.touch_bit(&mut trace, u);
            a_src_data.touch(&mut trace, u);
            a_dst_data.touch(&mut trace, v);
        }
        // Size the cache once, from the (order-independent) sampled
        // footprint: small enough that the working set does not trivially
        // fit, so visit order actually differentiates the candidates.
        let cfg = *cache_cfg.get_or_insert_with(|| {
            let lines = (trace.footprint_lines() as u64 / 4)
                .next_power_of_two()
                .max(64);
            cache_lines = lines;
            CacheConfig {
                size_bytes: lines * LINE_BYTES,
                ways: 8,
                line_bytes: LINE_BYTES,
            }
        });
        let mut cache = Cache::new(cfg);
        let stats = cache.replay(&trace);
        let mpki =
            MpkiReport::new(stats, InstructionModel::default(), k as u64, distinct_dsts).mpki();
        let hit_ratio = ReuseProfile::from_trace(&trace).hit_ratio(cache_lines);
        candidates.push(CandidateScore {
            order,
            mpki,
            hit_ratio,
        });
    }

    let chosen = candidates
        .iter()
        .fold(None::<CandidateScore>, |best, &c| match best {
            Some(b) if b.mpki <= c.mpki => Some(b),
            _ => Some(c),
        })
        .map(|c| c.order)
        .unwrap_or_default();
    PartitionAdvice {
        partition: part,
        chosen,
        sampled_edges: k,
        total_edges,
        cache_lines,
        candidates,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gg_graph::generators;
    use gg_graph::partition::PartitionBy;

    fn setup(p: usize) -> (EdgeList, PartitionSet) {
        let el = generators::rmat(9, 6000, generators::RmatParams::skewed(), 11);
        let set = PartitionSet::edge_balanced(&el.in_degrees(), p, PartitionBy::Destination);
        (el, set)
    }

    #[test]
    fn advice_covers_every_partition_and_is_deterministic() {
        let (el, set) = setup(8);
        let a = advise(&el, &set, 0.5);
        let b = advise(&el, &set, 0.5);
        assert_eq!(a.partitions.len(), 8);
        for (part, adv) in a.partitions.iter().enumerate() {
            assert_eq!(adv.partition, part);
            if adv.total_edges > 0 {
                assert_eq!(adv.candidates.len(), 3);
                assert!(adv.sampled_edges > 0);
                assert!(adv.candidates.iter().all(|c| c.mpki.is_finite()));
                // The pick is the argmin of the predictions.
                let min = adv
                    .candidates
                    .iter()
                    .map(|c| c.mpki)
                    .fold(f64::INFINITY, f64::min);
                let picked = adv
                    .candidates
                    .iter()
                    .find(|c| c.order == adv.chosen)
                    .unwrap();
                assert_eq!(picked.mpki, min);
            }
        }
        assert_eq!(a.orders(), b.orders());
        for (x, y) in a.partitions.iter().zip(&b.partitions) {
            assert_eq!(x.candidates, y.candidates);
        }
    }

    #[test]
    fn sample_rate_bounds_traced_edges() {
        let (el, set) = setup(2);
        let full = advise(&el, &set, 1.0);
        let half = advise(&el, &set, 0.5);
        for (f, h) in full.partitions.iter().zip(&half.partitions) {
            assert_eq!(f.sampled_edges, f.total_edges);
            assert!(h.sampled_edges <= f.sampled_edges);
            // Sampling keeps enough edges to matter.
            assert!(h.sampled_edges >= MIN_SAMPLED_EDGES.min(h.total_edges));
        }
        // Nonsense rates clamp to full tracing rather than panicking.
        let clamped = advise(&el, &set, -3.0);
        assert_eq!(clamped.sample_rate, 1.0);
    }

    #[test]
    fn small_partitions_are_traced_whole() {
        let (el, set) = setup(64);
        let a = advise(&el, &set, 0.01);
        for adv in &a.partitions {
            if adv.total_edges < MIN_SAMPLED_EDGES {
                assert_eq!(adv.sampled_edges, adv.total_edges);
            }
        }
    }

    #[test]
    fn empty_graph_is_fine() {
        let el = EdgeList::from_edges(4, &[]);
        let set = PartitionSet::vertex_balanced(4, 2, PartitionBy::Destination);
        let a = advise(&el, &set, 0.5);
        assert_eq!(a.partitions.len(), 2);
        for adv in &a.partitions {
            assert_eq!(adv.chosen, EdgeOrder::Hilbert);
            assert!(adv.candidates.is_empty());
        }
    }
}
