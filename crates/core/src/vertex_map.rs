//! Vertex-parallel operators (Ligra's `vertexMap` / `vertexFilter`).

use gg_graph::bitmap::Bitmap;
use gg_graph::types::VertexId;
use gg_runtime::pool::Pool;

use crate::frontier::{Frontier, FrontierData};

/// Applies `f` to every active vertex of `frontier`, in parallel.
pub fn vertex_map<F: Fn(VertexId) + Sync>(frontier: &Frontier, pool: &Pool, f: F) {
    match frontier.data() {
        FrontierData::Sparse(list) => {
            if list.is_empty() {
                return;
            }
            let tasks = (pool.threads() * 4).min(list.len());
            pool.for_each_index(tasks, |t| {
                let lo = list.len() * t / tasks;
                let hi = list.len() * (t + 1) / tasks;
                for &v in &list[lo..hi] {
                    f(v);
                }
            });
        }
        FrontierData::Dense(bitmap) => {
            let words = bitmap.words();
            if words.is_empty() {
                return;
            }
            let tasks = (pool.threads() * 4).min(words.len());
            pool.for_each_index(tasks, |t| {
                let lo = words.len() * t / tasks;
                let hi = words.len() * (t + 1) / tasks;
                for (wi, &w) in words[lo..hi].iter().enumerate() {
                    let mut bits = w;
                    while bits != 0 {
                        let b = bits.trailing_zeros() as usize;
                        bits &= bits - 1;
                        f(((lo + wi) * 64 + b) as VertexId);
                    }
                }
            });
        }
    }
}

/// Applies `f` to every vertex `0..n`, in parallel.
pub fn vertex_map_all<F: Fn(VertexId) + Sync>(n: usize, pool: &Pool, f: F) {
    pool.for_each_chunk(n, pool.threads() * 4, |lo, hi| {
        for v in lo as VertexId..hi as VertexId {
            f(v);
        }
    });
}

/// Keeps the active vertices satisfying `pred`, producing a new frontier.
pub fn vertex_filter<F: Fn(VertexId) -> bool + Sync>(
    frontier: &Frontier,
    pool: &Pool,
    out_degrees: &[u32],
    pred: F,
) -> Frontier {
    let n = frontier.universe();
    match frontier.data() {
        FrontierData::Sparse(list) => {
            let kept: Vec<VertexId> = list.iter().copied().filter(|&v| pred(v)).collect();
            Frontier::from_sparse(kept, n, out_degrees)
        }
        FrontierData::Dense(bitmap) => {
            let words = bitmap.words();
            let tasks = (pool.threads() * 4).min(words.len().max(1));
            let new_words: Vec<Vec<u64>> = pool.map_indices(tasks, |t| {
                let lo = words.len() * t / tasks;
                let hi = words.len() * (t + 1) / tasks;
                words[lo..hi]
                    .iter()
                    .enumerate()
                    .map(|(wi, &w)| {
                        let mut out = 0u64;
                        let mut bits = w;
                        while bits != 0 {
                            let b = bits.trailing_zeros() as usize;
                            bits &= bits - 1;
                            if pred(((lo + wi) * 64 + b) as VertexId) {
                                out |= 1 << b;
                            }
                        }
                        out
                    })
                    .collect()
            });
            let mut bm = Bitmap::new(n);
            let flat: Vec<u64> = new_words.into_iter().flatten().collect();
            for (wi, w) in flat.into_iter().enumerate() {
                let mut bits = w;
                while bits != 0 {
                    let b = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    bm.set(wi * 64 + b);
                }
            }
            Frontier::from_dense(bm, out_degrees, pool)
        }
    }
}

/// Builds a dense frontier of all vertices in `0..n` satisfying `pred`
/// (used by PRDelta to select vertices whose accumulated delta exceeds the
/// propagation threshold).
pub fn frontier_from_predicate<F: Fn(VertexId) -> bool + Sync>(
    n: usize,
    pool: &Pool,
    out_degrees: &[u32],
    pred: F,
) -> Frontier {
    let num_words = n.div_ceil(64);
    let tasks = (pool.threads() * 4).min(num_words.max(1));
    let word_chunks: Vec<Vec<u64>> = pool.map_indices(tasks, |t| {
        let lo = num_words * t / tasks;
        let hi = num_words * (t + 1) / tasks;
        (lo..hi)
            .map(|wi| {
                let mut w = 0u64;
                for b in 0..64 {
                    let v = wi * 64 + b;
                    if v < n && pred(v as VertexId) {
                        w |= 1 << b;
                    }
                }
                w
            })
            .collect()
    });
    let mut bm = Bitmap::new(n);
    for (wi, w) in word_chunks.into_iter().flatten().enumerate() {
        let mut bits = w;
        while bits != 0 {
            let b = bits.trailing_zeros() as usize;
            bits &= bits - 1;
            bm.set(wi * 64 + b);
        }
    }
    Frontier::from_dense(bm, out_degrees, pool)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn pool() -> Pool {
        Pool::new(2)
    }

    #[test]
    fn vertex_map_visits_each_active_once() {
        let deg = vec![1u32; 300];
        let actives: Vec<u32> = (0..300).step_by(7).collect();
        let hits = AtomicU64::new(0);

        let sparse = Frontier::from_sparse(actives.clone(), 300, &deg);
        vertex_map(&sparse, &pool(), |v| {
            hits.fetch_add(v as u64 + 1, Ordering::Relaxed);
        });
        let expected: u64 = actives.iter().map(|&v| v as u64 + 1).sum();
        assert_eq!(hits.load(Ordering::Relaxed), expected);

        hits.store(0, Ordering::Relaxed);
        let dense = Frontier::from_dense(Bitmap::from_indices(300, &actives), &deg, &pool());
        vertex_map(&dense, &pool(), |v| {
            hits.fetch_add(v as u64 + 1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), expected);
    }

    #[test]
    fn vertex_map_all_covers_range() {
        let hits = AtomicU64::new(0);
        vertex_map_all(100, &pool(), |_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn filter_keeps_matching() {
        let deg = vec![2u32; 100];
        let f = Frontier::from_sparse((0..100).collect(), 100, &deg);
        let kept = vertex_filter(&f, &pool(), &deg, |v| v % 10 == 0);
        assert_eq!(kept.len(), 10);
        assert_eq!(kept.degree_sum(), 20);

        let dense = Frontier::from_dense(Bitmap::full(100), &deg, &pool());
        let kept = vertex_filter(&dense, &pool(), &deg, |v| v < 5);
        assert_eq!(kept.to_vertex_list(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn predicate_frontier() {
        let deg = vec![1u32; 130];
        let f = frontier_from_predicate(130, &pool(), &deg, |v| (64..70).contains(&v));
        assert_eq!(f.to_vertex_list(), vec![64, 65, 66, 67, 68, 69]);
        assert_eq!(f.degree_sum(), 6);
    }

    #[test]
    fn empty_cases() {
        let deg: Vec<u32> = vec![];
        let f = Frontier::empty(0);
        vertex_map(&f, &pool(), |_| panic!("must not be called"));
        let kept = vertex_filter(&f, &pool(), &deg, |_| true);
        assert!(kept.is_empty());
    }
}
