//! Road-network stand-in: a 2-D lattice with sparse random diagonals.
//!
//! The paper's USAroad graph is hard for frontier-based frameworks because
//! of its huge diameter and uniformly tiny degrees. A `rows × cols` grid
//! where each cell connects to its right and down neighbours (plus the
//! symmetric reverse edges) reproduces both properties; a small fraction of
//! random diagonal "shortcut" roads adds the mild irregularity of real road
//! networks.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::edge_list::EdgeList;

/// Generates a symmetric grid road network with `rows * cols` vertices.
/// `diagonal_fraction` in `[0, 1]` adds that fraction of cells a diagonal
/// edge to the down-right neighbour.
pub fn grid_road(rows: usize, cols: usize, diagonal_fraction: f64, seed: u64) -> EdgeList {
    assert!(rows > 0 && cols > 0, "grid must be non-empty");
    assert!((0.0..=1.0).contains(&diagonal_fraction));
    let n = rows * cols;
    let id = |r: usize, c: usize| (r * cols + c) as u32;
    let mut rng = SmallRng::seed_from_u64(seed);
    // ~2 undirected edges per cell -> ~4 directed.
    let mut el = EdgeList::with_capacity(n, 4 * n);
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                el.push(id(r, c), id(r, c + 1));
                el.push(id(r, c + 1), id(r, c));
            }
            if r + 1 < rows {
                el.push(id(r, c), id(r + 1, c));
                el.push(id(r + 1, c), id(r, c));
            }
            if r + 1 < rows && c + 1 < cols && rng.gen::<f64>() < diagonal_fraction {
                el.push(id(r, c), id(r + 1, c + 1));
                el.push(id(r + 1, c + 1), id(r, c));
            }
        }
    }
    el
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::properties::GraphStats;

    #[test]
    fn pure_grid_edge_count() {
        // rows*(cols-1) + (rows-1)*cols undirected edges, doubled.
        let el = grid_road(4, 5, 0.0, 0);
        assert_eq!(el.num_vertices(), 20);
        assert_eq!(el.num_edges(), 2 * (4 * 4 + 3 * 5));
    }

    #[test]
    fn is_symmetric() {
        let el = grid_road(6, 6, 0.3, 5);
        assert!(GraphStats::compute(&el).symmetric);
    }

    #[test]
    fn degrees_are_tiny() {
        let el = grid_road(30, 30, 0.1, 1);
        let stats = GraphStats::compute(&el);
        // Max degree 4 neighbours + up to 2 diagonals.
        assert!(stats.max_out_degree <= 6);
        assert_eq!(stats.isolated_vertices, 0);
    }

    #[test]
    fn deterministic() {
        assert_eq!(grid_road(10, 10, 0.2, 9), grid_road(10, 10, 0.2, 9));
    }
}
