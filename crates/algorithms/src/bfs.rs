//! Breadth-first search (vertex-oriented; baselines prefer backward dense
//! traversal — the direction-optimizing BFS of Beamer et al.).

use std::sync::atomic::{AtomicU32, Ordering};

use gg_core::edge_map::EdgeOp;
use gg_core::engine::Engine;
use gg_graph::types::{VertexId, INVALID_VERTEX};

use crate::Algorithm;

/// BFS output.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BfsResult {
    /// BFS tree parent per vertex (`INVALID_VERTEX` = unreached; the
    /// source is its own parent).
    pub parent: Vec<VertexId>,
    /// BFS level per vertex (`u32::MAX` = unreached).
    pub level: Vec<u32>,
    /// Number of edge-map rounds executed.
    pub rounds: usize,
}

struct BfsOp {
    parent: Vec<AtomicU32>,
}

impl EdgeOp for BfsOp {
    #[inline]
    fn update(&self, src: VertexId, dst: VertexId, _w: f32) -> bool {
        // Exclusive path: no concurrent writer for dst.
        if self.parent[dst as usize].load(Ordering::Relaxed) == INVALID_VERTEX {
            self.parent[dst as usize].store(src, Ordering::Relaxed);
            true
        } else {
            false
        }
    }

    #[inline]
    fn update_atomic(&self, src: VertexId, dst: VertexId, _w: f32) -> bool {
        self.parent[dst as usize]
            .compare_exchange(INVALID_VERTEX, src, Ordering::Relaxed, Ordering::Relaxed)
            .is_ok()
    }

    #[inline]
    fn cond(&self, dst: VertexId) -> bool {
        self.parent[dst as usize].load(Ordering::Relaxed) == INVALID_VERTEX
    }
}

/// Runs BFS from `source` on any engine.
pub fn bfs<E: Engine>(engine: &E, source: VertexId) -> BfsResult {
    let n = engine.num_vertices();
    let op = BfsOp {
        parent: gg_runtime::atomics::atomic_u32_vec(n, INVALID_VERTEX),
    };
    op.parent[source as usize].store(source, Ordering::Relaxed);

    let mut level = vec![u32::MAX; n];
    level[source as usize] = 0;
    let mut frontier = engine.frontier_single(source);
    let mut depth = 0u32;
    let mut rounds = 0usize;
    let spec = Algorithm::Bfs.spec();
    while !frontier.is_empty() {
        frontier = engine.edge_map(&frontier, &op, spec);
        depth += 1;
        rounds += 1;
        for v in frontier.iter() {
            level[v as usize] = depth;
        }
    }
    BfsResult {
        parent: gg_runtime::atomics::snapshot_u32(&op.parent),
        level,
        rounds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;
    use gg_core::config::Config;
    use gg_core::engine::GraphGrind2;
    use gg_graph::generators;

    fn check_against_reference(el: &gg_graph::edge_list::EdgeList, src: u32) {
        let engine = GraphGrind2::new(el, Config::for_tests());
        let got = bfs(&engine, src);
        let want = reference::bfs_levels(el, src);
        assert_eq!(got.level, want);
        // Parent consistency: parent is one level above, and reached <=>
        // parent set.
        for v in 0..el.num_vertices() {
            if got.level[v] == u32::MAX {
                assert_eq!(got.parent[v], INVALID_VERTEX);
            } else if v as u32 != src {
                let p = got.parent[v] as usize;
                assert_eq!(got.level[p] + 1, got.level[v], "vertex {v}");
            }
        }
    }

    #[test]
    fn bfs_on_path_and_tree() {
        check_against_reference(&generators::path(40), 0);
        check_against_reference(&generators::binary_tree(63), 0);
    }

    #[test]
    fn bfs_on_rmat() {
        check_against_reference(
            &generators::rmat(9, 4000, generators::RmatParams::skewed(), 8),
            0,
        );
    }

    #[test]
    fn bfs_on_disconnected() {
        let el = gg_graph::edge_list::EdgeList::from_edges(6, &[(0, 1), (1, 2), (4, 5)]);
        check_against_reference(&el, 0);
    }

    #[test]
    fn bfs_rounds_equal_eccentricity() {
        let el = generators::path(10);
        let engine = GraphGrind2::new(&el, Config::for_tests());
        let r = bfs(&engine, 0);
        // 9 productive rounds plus the final empty-producing round.
        assert_eq!(r.rounds, 10);
    }
}
