//! Stress suite for the persistent worker pool.
//!
//! `Pool` spawns its workers once, parks them on a condvar, and runs every
//! parallel operation as an epoch (publish job → wake → join via a
//! completion latch). These tests pin the lifecycle guarantees the
//! executor builds on:
//!
//! 1. **No stale state across epochs**: one `Pool` reused across 50
//!    consecutive edge maps produces the same frontiers and values as 50
//!    fresh single-use runs — no deque, latch or result-slot state leaks
//!    from one epoch into the next.
//! 2. **Shutdown from parked**: dropping a pool whose workers are parked
//!    (or were never spawned) joins cleanly, without a dispatch in flight.
//! 3. **StealTally invariant**: `executed` sums to exactly the task count
//!    on every epoch, no matter the task/domain shape.
//! 4. **Spawn accounting**: `spawns()` rises to the thread count once and
//!    never again, while `epochs()` tracks dispatches — the observable
//!    difference from the scoped-thread executor this replaced.
//!
//! The thread count honours `GG_THREADS` (CI diffs a 1-thread against a
//! 4-thread run of this suite, mirroring the `GG_CHUNK` legs).

use std::sync::atomic::{AtomicU64, Ordering};

use graphgrind::algorithms;
use graphgrind::core::config::{threads_from_env, Config, ExecutorKind};
use graphgrind::core::engine::{Engine, GraphGrind2};
use graphgrind::graph::generators::{self, RmatParams};
use graphgrind::runtime::numa::NumaTopology;
use graphgrind::runtime::pool::{Pool, StealTally};

/// Thread count under test: the CI override, or 4.
fn threads() -> usize {
    threads_from_env().unwrap_or(4)
}

fn engine(threads: usize) -> GraphGrind2 {
    let el = generators::rmat(8, 4000, RmatParams::skewed(), 17);
    let cfg = Config {
        threads,
        num_partitions: 8,
        numa: NumaTopology::new(2),
        executor: ExecutorKind::Partitioned,
        chunk_edges: graphgrind::core::config::ChunkCap::Fixed(64),
        ..Config::default()
    };
    GraphGrind2::new(&el, cfg)
}

/// 50 consecutive edge maps through one engine (one pool) reproduce the
/// run of a fresh engine every time: reused deques/latches carry no stale
/// state between epochs.
#[test]
fn fifty_edge_maps_reuse_one_pool_deterministically() {
    let t = threads();
    let shared = engine(t);
    let reference = algorithms::bfs(&engine(t), 0);
    for run in 0..50 {
        let got = algorithms::bfs(&shared, 0);
        assert_eq!(got.level, reference.level, "levels diverged, run {run}");
        assert_eq!(got.parent, reference.parent, "parents diverged, run {run}");
        assert_eq!(got.rounds, reference.rounds, "rounds diverged, run {run}");
    }
    if t > 1 {
        assert_eq!(
            shared.pool().spawns(),
            t as u64,
            "50 runs must reuse one spawned crew"
        );
        assert!(
            shared.pool().epochs() > 50,
            "each run dispatches several epochs: {}",
            shared.pool().epochs()
        );
    } else {
        assert_eq!(shared.pool().spawns(), 0, "1-thread pools run inline");
    }
}

/// Raw `run_stealing` reuse: 50 epochs with varying task shapes on one
/// pool return exact results each time, and the tally invariant
/// (`executed == task count`) holds on every epoch.
#[test]
fn fifty_stealing_epochs_hold_the_tally_invariant() {
    let t = threads();
    let pool = Pool::new(t);
    for epoch in 0..50usize {
        // Vary the task count and domain shape per epoch so stale deque
        // entries (were any to survive) would immediately corrupt counts.
        let tasks = 1 + (epoch * 7) % 97;
        let domains = 1 + epoch % 4;
        let task_domain: Vec<usize> = (0..tasks).map(|i| i % domains).collect();
        let (results, tally) = pool.run_stealing(domains, &task_domain, |i| i * i);
        assert_eq!(
            results,
            (0..tasks).map(|i| i * i).collect::<Vec<_>>(),
            "epoch {epoch}"
        );
        assert_eq!(
            tally.executed, tasks as u64,
            "tasks_run must sum to the task count, epoch {epoch}"
        );
        assert!(tally.cross_domain_steals <= tally.steals, "epoch {epoch}");
    }
    if t > 1 {
        assert_eq!(pool.spawns(), t as u64);
    }
}

/// Dropping a pool whose workers are parked (between epochs) joins
/// cleanly; so does dropping one that never spawned.
#[test]
fn drop_while_parked_shuts_down_cleanly() {
    // Never used.
    drop(Pool::new(threads()));

    // Used, then left parked: workers are waiting on the condvar when the
    // shutdown flag arrives.
    let pool = Pool::new(threads());
    let hits = AtomicU64::new(0);
    pool.for_each_index(100, |_| {
        hits.fetch_add(1, Ordering::Relaxed);
    });
    assert_eq!(hits.load(Ordering::Relaxed), 100);
    // Give the workers a moment to actually park (they decrement the
    // latch before re-waiting, so they may still be mid-transition).
    std::thread::sleep(std::time::Duration::from_millis(5));
    drop(pool);

    // Used via the stealing path, then dropped.
    let pool = Pool::new(threads());
    let (r, tally) = pool.run_stealing(2, &[0, 1, 0, 1, 0], |i| i + 1);
    assert_eq!(r, vec![1, 2, 3, 4, 5]);
    assert_eq!(tally.executed, 5);
    drop(pool);
}

/// The zero-task epoch: no dispatch, no tally, and the pool stays usable.
#[test]
fn empty_epochs_are_free() {
    let pool = Pool::new(threads());
    let (r, tally) = pool.run_stealing(4, &[], |_: usize| -> usize { unreachable!() });
    assert!(r.is_empty());
    assert_eq!(tally, StealTally::default());
    assert_eq!(pool.epochs(), 0, "an empty task list must not dispatch");
    let v = pool.map_indices(3, |i| i);
    assert_eq!(v, vec![0, 1, 2]);
}

/// Spawn accounting across both execution styles: the crew is spawned by
/// whichever parallel call comes first, exactly once.
#[test]
fn spawns_count_rises_once_and_only_once() {
    let t = threads();
    let pool = Pool::new(t);
    assert_eq!(pool.spawns(), 0);
    let domains: Vec<usize> = (0..64).map(|i| i % 2).collect();
    let (_, tally) = pool.run_stealing(2, &domains, |i| i);
    assert_eq!(tally.executed, 64);
    let after_first = pool.spawns();
    if t > 1 {
        assert_eq!(after_first, t as u64);
    } else {
        assert_eq!(after_first, 0, "single-thread pools never spawn");
    }
    for _ in 0..10 {
        pool.for_each_index(32, |_| {});
        let _ = pool.run_stealing(2, &domains, |i| i);
    }
    assert_eq!(pool.spawns(), after_first, "no re-spawns, ever");
}
