//! Cross-engine agreement: every algorithm must produce the same answer on
//! Ligra, Polymer, GraphGrind-v1 and GraphGrind-v2 — and match the
//! sequential oracles — on a variety of graph shapes.
//!
//! This is the central safety claim of the paper's design: removing
//! atomics, changing layouts, changing directions and changing partition
//! counts are pure *performance* choices and never change results.

use graphgrind::algorithms::{self, reference, validate, Algorithm, BpParams, PrDeltaParams};
use graphgrind::baselines::{GraphGrind1, Ligra, Polymer};
use graphgrind::core::{Config, GraphGrind2};
use graphgrind::graph::edge_list::EdgeList;
use graphgrind::graph::generators::{self, RmatParams};
use graphgrind::graph::ops::{symmetrize, transpose};
use graphgrind::graph::weights;
use graphgrind::runtime::numa::NumaTopology;

fn test_graphs() -> Vec<(&'static str, EdgeList)> {
    vec![
        (
            "rmat-skewed",
            generators::rmat(9, 5000, RmatParams::skewed(), 101),
        ),
        ("erdos-renyi", generators::erdos_renyi(400, 4000, 102)),
        ("road-grid", generators::grid_road(18, 18, 0.1, 103)),
        ("binary-tree", generators::binary_tree(255)),
    ]
}

#[test]
fn bfs_agrees_everywhere() {
    for (name, el) in test_graphs() {
        let want = reference::bfs_levels(&el, 0);
        let l = Ligra::new(&el, 2);
        let p = Polymer::new(&el, 2, NumaTopology::new(2));
        let g1 = GraphGrind1::new(&el, 2, NumaTopology::new(2));
        let g2 = GraphGrind2::new(&el, Config::for_tests());
        assert_eq!(algorithms::bfs(&l, 0).level, want, "{name}/Ligra");
        assert_eq!(algorithms::bfs(&p, 0).level, want, "{name}/Polymer");
        assert_eq!(algorithms::bfs(&g1, 0).level, want, "{name}/GG-v1");
        assert_eq!(algorithms::bfs(&g2, 0).level, want, "{name}/GG-v2");
    }
}

#[test]
fn cc_agrees_everywhere() {
    for (name, el) in test_graphs() {
        let el = symmetrize(&el);
        let want = reference::cc_labels(&el);
        let l = Ligra::new(&el, 2);
        let p = Polymer::new(&el, 2, NumaTopology::new(2));
        let g1 = GraphGrind1::new(&el, 2, NumaTopology::new(2));
        let g2 = GraphGrind2::new(&el, Config::for_tests());
        assert_eq!(algorithms::cc(&l).label, want, "{name}/Ligra");
        assert_eq!(algorithms::cc(&p).label, want, "{name}/Polymer");
        assert_eq!(algorithms::cc(&g1).label, want, "{name}/GG-v1");
        assert_eq!(algorithms::cc(&g2).label, want, "{name}/GG-v2");
    }
}

#[test]
fn pagerank_agrees_everywhere() {
    for (name, el) in test_graphs() {
        let want = reference::pagerank(&el, 10);
        let l = Ligra::new(&el, 2);
        let p = Polymer::new(&el, 2, NumaTopology::new(2));
        let g1 = GraphGrind1::new(&el, 2, NumaTopology::new(2));
        let g2 = GraphGrind2::new(&el, Config::for_tests());
        for (ename, got) in [
            ("Ligra", algorithms::pagerank(&l, 10)),
            ("Polymer", algorithms::pagerank(&p, 10)),
            ("GG-v1", algorithms::pagerank(&g1, 10)),
            ("GG-v2", algorithms::pagerank(&g2, 10)),
        ] {
            validate::assert_close_f64(&got, &want, 1e-9, 1e-14);
            let _ = (name, ename);
        }
    }
}

#[test]
fn bellman_ford_agrees_everywhere() {
    for (name, mut el) in test_graphs() {
        weights::attach_integer(&mut el, 9, 55);
        let want = reference::dijkstra(&el, 0);
        let l = Ligra::new(&el, 2);
        let p = Polymer::new(&el, 2, NumaTopology::new(2));
        let g1 = GraphGrind1::new(&el, 2, NumaTopology::new(2));
        let g2 = GraphGrind2::new(&el, Config::for_tests());
        for (ename, got) in [
            ("Ligra", algorithms::bellman_ford(&l, 0)),
            ("Polymer", algorithms::bellman_ford(&p, 0)),
            ("GG-v1", algorithms::bellman_ford(&g1, 0)),
            ("GG-v2", algorithms::bellman_ford(&g2, 0)),
        ] {
            validate::assert_close_f32(&got.dist, &want, 1e-4, 1e-4);
            let _ = (name, ename);
        }
    }
}

#[test]
fn spmv_agrees_everywhere() {
    for (name, mut el) in test_graphs() {
        weights::attach_uniform(&mut el, 0.1, 2.0, 56);
        let x: Vec<f64> = (0..el.num_vertices())
            .map(|i| ((i % 13) + 1) as f64)
            .collect();
        let want = reference::spmv(&el, &x);
        let l = Ligra::new(&el, 2);
        let p = Polymer::new(&el, 2, NumaTopology::new(2));
        let g1 = GraphGrind1::new(&el, 2, NumaTopology::new(2));
        let g2 = GraphGrind2::new(&el, Config::for_tests());
        for (ename, got) in [
            ("Ligra", algorithms::spmv(&l, &x)),
            ("Polymer", algorithms::spmv(&p, &x)),
            ("GG-v1", algorithms::spmv(&g1, &x)),
            ("GG-v2", algorithms::spmv(&g2, &x)),
        ] {
            validate::assert_close_f64(&got, &want, 1e-9, 1e-10);
            let _ = (name, ename);
        }
    }
}

#[test]
fn bp_agrees_everywhere() {
    for (name, el) in test_graphs() {
        let priors = algorithms::bp::random_priors(el.num_vertices(), 57);
        let want = reference::bp(&el, &priors, 0.05, 10);
        let l = Ligra::new(&el, 2);
        let p = Polymer::new(&el, 2, NumaTopology::new(2));
        let g1 = GraphGrind1::new(&el, 2, NumaTopology::new(2));
        let g2 = GraphGrind2::new(&el, Config::for_tests());
        for (ename, got) in [
            ("Ligra", algorithms::bp(&l, &priors, BpParams::default())),
            ("Polymer", algorithms::bp(&p, &priors, BpParams::default())),
            ("GG-v1", algorithms::bp(&g1, &priors, BpParams::default())),
            ("GG-v2", algorithms::bp(&g2, &priors, BpParams::default())),
        ] {
            validate::assert_close_f64(&got, &want, 1e-9, 1e-12);
            let _ = (name, ename);
        }
    }
}

#[test]
fn bc_agrees_everywhere() {
    for (name, el) in test_graphs() {
        let elt = transpose(&el);
        let want = reference::bc_single_source(&el, 0);
        let got_pairs = [
            (
                "Ligra",
                algorithms::bc(&Ligra::new(&el, 2), &Ligra::new(&elt, 2), 0),
            ),
            (
                "Polymer",
                algorithms::bc(
                    &Polymer::new(&el, 2, NumaTopology::new(2)),
                    &Polymer::new(&elt, 2, NumaTopology::new(2)),
                    0,
                ),
            ),
            (
                "GG-v1",
                algorithms::bc(
                    &GraphGrind1::new(&el, 2, NumaTopology::new(2)),
                    &GraphGrind1::new(&elt, 2, NumaTopology::new(2)),
                    0,
                ),
            ),
            (
                "GG-v2",
                algorithms::bc(
                    &GraphGrind2::new(&el, Config::for_tests()),
                    &GraphGrind2::new(&elt, Config::for_tests()),
                    0,
                ),
            ),
        ];
        for (ename, got) in got_pairs {
            validate::assert_close_f64(&got.dependency, &want, 1e-9, 1e-10);
            let _ = (name, ename);
        }
    }
}

#[test]
fn prdelta_exact_mode_agrees_everywhere() {
    let el = generators::rmat(9, 5000, RmatParams::skewed(), 104);
    let want = reference::pagerank(&el, 10);
    let params = PrDeltaParams {
        epsilon: 0.0,
        max_rounds: 10,
    };
    let l = Ligra::new(&el, 2);
    let g2 = GraphGrind2::new(&el, Config::for_tests());
    validate::assert_close_f64(
        &algorithms::pagerank_delta(&l, params).rank,
        &want,
        1e-9,
        1e-14,
    );
    validate::assert_close_f64(
        &algorithms::pagerank_delta(&g2, params).rank,
        &want,
        1e-9,
        1e-14,
    );
}

#[test]
fn orientation_metadata_consistent() {
    // Table II invariants used by the harness.
    for algo in Algorithm::all() {
        let spec = algo.spec();
        assert_eq!(
            algo.vertex_oriented(),
            spec.orientation == graphgrind::core::Orientation::Vertex
        );
    }
}
