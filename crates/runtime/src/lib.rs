//! # gg-runtime — parallel execution substrate
//!
//! The paper runs on a 4-socket NUMA machine with a Cilk-based runtime
//! extended for NUMA-aware loop scheduling. This crate provides the
//! portable equivalent used throughout the reproduction:
//!
//! * [`pool::Pool`] — a **persistent** fork-join pool with an explicit
//!   thread count (Figure 10 sweeps 4–48 threads): workers are spawned
//!   once, park on a condvar between rounds, and every parallel operation
//!   is an epoch (publish job → wake → join via a completion latch), so
//!   per-round cost is a wake instead of `T` thread spawns. It provides
//!   helpers for per-partition parallel loops and a deque-based
//!   work-stealing scheduler ([`Pool::run_stealing`]) with
//!   NUMA-domain-affine victim order for chunk-granular execution;
//!   [`Pool::spawns`] / [`Pool::epochs`] make the reuse observable;
//! * [`buffer::BufferPool`] — recycles the word buffers behind dense
//!   frontier merges, clearing only the touched words;
//! * [`numa::NumaTopology`] — a *simulated* NUMA topology: partitions are
//!   assigned to domains exactly as the paper assigns them to sockets
//!   (equal counts per domain, §III.D), and the schedule groups partitions
//!   of one domain together. The physical page placement the paper gets
//!   from libnuma is not reproducible portably; what this preserves is the
//!   *exclusive update* structure (one partition → one thread) that the
//!   atomics-removal claim depends on;
//! * [`atomics`] — atomic `f32`/`f64`/min/CAS cells with both an **atomic**
//!   path (compare-exchange loops; the paper's "+a" configurations) and an
//!   **exclusive** path (plain relaxed load/store, valid when
//!   partitioning-by-destination guarantees a single writer; the "+na"
//!   configurations);
//! * [`counters::WorkCounters`] — cheap aggregate counters for edges and
//!   vertices visited, feeding the instruction-count proxy of `gg-memsim`.

pub mod atomics;
pub mod buffer;
pub mod counters;
pub mod numa;
pub mod pool;
pub mod schedule;

pub use atomics::{AtomicF32, AtomicF64};
pub use buffer::BufferPool;
pub use counters::WorkCounters;
pub use numa::NumaTopology;
pub use pool::Pool;
pub use schedule::PartitionSchedule;
