//! Tolerant floating-point comparison helpers for cross-engine validation.
//!
//! Different traversal orders (push vs pull, partitioned vs whole) sum
//! floating-point contributions in different orders, so engines agree only
//! up to rounding. These helpers make the tolerance explicit.

/// Maximum elementwise discrepancy `|a - b| / (atol + rtol * |b|)`.
/// A result `<= 1.0` means "within tolerance".
pub fn max_scaled_diff_f64(a: &[f64], b: &[f64], rtol: f64, atol: f64) -> f64 {
    assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b)
        .map(|(&x, &y)| (x - y).abs() / (atol + rtol * y.abs()))
        .fold(0.0, f64::max)
}

/// Asserts elementwise closeness of two `f64` vectors.
///
/// # Panics
/// Panics with the index and values of the worst mismatch.
pub fn assert_close_f64(a: &[f64], b: &[f64], rtol: f64, atol: f64) {
    assert_eq!(a.len(), b.len(), "length mismatch");
    for (i, (&x, &y)) in a.iter().zip(b).enumerate() {
        let tol = atol + rtol * y.abs();
        assert!(
            (x - y).abs() <= tol,
            "index {i}: {x} vs {y} (diff {}, tol {tol})",
            (x - y).abs()
        );
    }
}

/// Asserts elementwise closeness of two `f32` vectors, treating equal
/// infinities as close.
pub fn assert_close_f32(a: &[f32], b: &[f32], rtol: f32, atol: f32) {
    assert_eq!(a.len(), b.len(), "length mismatch");
    for (i, (&x, &y)) in a.iter().zip(b).enumerate() {
        if x.is_infinite() || y.is_infinite() {
            assert_eq!(x, y, "index {i}: {x} vs {y}");
            continue;
        }
        let tol = atol + rtol * y.abs();
        assert!(
            (x - y).abs() <= tol,
            "index {i}: {x} vs {y} (diff {}, tol {tol})",
            (x - y).abs()
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn close_vectors_pass() {
        assert_close_f64(&[1.0, 2.0], &[1.0 + 1e-12, 2.0 - 1e-12], 1e-9, 1e-12);
        assert_close_f32(
            &[f32::INFINITY, 1.0],
            &[f32::INFINITY, 1.0 + 1e-7],
            1e-5,
            1e-7,
        );
    }

    #[test]
    #[should_panic(expected = "index 1")]
    fn distant_vectors_fail() {
        assert_close_f64(&[1.0, 2.0], &[1.0, 2.5], 1e-9, 1e-12);
    }

    #[test]
    fn scaled_diff_reports_worst() {
        let d = max_scaled_diff_f64(&[1.0, 2.0], &[1.0, 2.0 + 2e-9], 1e-9, 0.0);
        assert!(d > 0.9 && d < 1.1, "{d}");
    }
}
