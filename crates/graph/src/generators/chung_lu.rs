//! Chung–Lu power-law generator (the paper's "Powerlaw (α = 2.0)" data set).
//!
//! Vertices receive expected degrees `w_v ∝ (v + v0)^(-1/(α-1))`, the
//! discrete power-law weight sequence; each edge samples both endpoints
//! independently with probability proportional to the weights. Sampling
//! uses Walker's alias method, so generating `m` edges is O(n + m).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::edge_list::EdgeList;

/// O(1)-per-sample discrete distribution (Walker's alias method).
pub struct AliasTable {
    prob: Vec<f64>,
    alias: Vec<u32>,
}

impl AliasTable {
    /// Builds the table from non-negative weights (not necessarily
    /// normalised).
    ///
    /// # Panics
    /// Panics if `weights` is empty or sums to zero.
    pub fn new(weights: &[f64]) -> Self {
        let n = weights.len();
        assert!(n > 0, "empty weight vector");
        let sum: f64 = weights.iter().sum();
        assert!(sum > 0.0, "weights sum to zero");
        let scale = n as f64 / sum;

        let mut prob: Vec<f64> = weights.iter().map(|&w| w * scale).collect();
        let mut alias = vec![0u32; n];
        let mut small: Vec<u32> = Vec::new();
        let mut large: Vec<u32> = Vec::new();
        for (i, &p) in prob.iter().enumerate() {
            if p < 1.0 {
                small.push(i as u32);
            } else {
                large.push(i as u32);
            }
        }
        while let (Some(s), Some(l)) = (small.pop(), large.pop()) {
            alias[s as usize] = l;
            prob[l as usize] = (prob[l as usize] + prob[s as usize]) - 1.0;
            if prob[l as usize] < 1.0 {
                small.push(l);
            } else {
                large.push(l);
            }
        }
        // Numerical leftovers are certain events.
        for i in large {
            prob[i as usize] = 1.0;
        }
        for i in small {
            prob[i as usize] = 1.0;
        }
        AliasTable { prob, alias }
    }

    /// Draws one index distributed proportionally to the weights.
    #[inline]
    pub fn sample(&self, rng: &mut SmallRng) -> u32 {
        let n = self.prob.len();
        let i = rng.gen_range(0..n);
        if rng.gen::<f64>() < self.prob[i] {
            i as u32
        } else {
            self.alias[i]
        }
    }
}

/// Generates a directed Chung–Lu graph with `n` vertices, `m` edges and
/// power-law exponent `alpha` (> 1). Both endpoints are drawn from the same
/// weight sequence. Duplicates/self-loops retained.
pub fn chung_lu(n: usize, m: usize, alpha: f64, seed: u64) -> EdgeList {
    assert!(n > 0, "need at least one vertex");
    assert!(alpha > 1.0, "power-law exponent must exceed 1");
    // Weight sequence w_v = (v + v0)^(-1/(alpha-1)); the offset keeps the
    // largest expected degree bounded relative to n.
    let gamma = 1.0 / (alpha - 1.0);
    let v0 = 1.0;
    let weights: Vec<f64> = (0..n).map(|v| (v as f64 + v0).powf(-gamma)).collect();
    let table = AliasTable::new(&weights);
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut el = EdgeList::with_capacity(n, m);
    for _ in 0..m {
        let u = table.sample(&mut rng);
        let v = table.sample(&mut rng);
        el.push(u, v);
    }
    el
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alias_table_matches_weights() {
        // Sampling frequencies should approximate the weight ratios.
        let table = AliasTable::new(&[1.0, 2.0, 7.0]);
        let mut rng = SmallRng::seed_from_u64(99);
        let mut counts = [0usize; 3];
        let trials = 200_000;
        for _ in 0..trials {
            counts[table.sample(&mut rng) as usize] += 1;
        }
        let f: Vec<f64> = counts.iter().map(|&c| c as f64 / trials as f64).collect();
        assert!((f[0] - 0.1).abs() < 0.01, "{f:?}");
        assert!((f[1] - 0.2).abs() < 0.01, "{f:?}");
        assert!((f[2] - 0.7).abs() < 0.01, "{f:?}");
    }

    #[test]
    fn alias_table_single_element() {
        let table = AliasTable::new(&[3.5]);
        let mut rng = SmallRng::seed_from_u64(0);
        assert_eq!(table.sample(&mut rng), 0);
    }

    #[test]
    fn generates_requested_size() {
        let el = chung_lu(500, 3000, 2.0, 11);
        assert_eq!(el.num_vertices(), 500);
        assert_eq!(el.num_edges(), 3000);
        el.validate().unwrap();
    }

    #[test]
    fn low_ids_get_high_degree() {
        let el = chung_lu(1000, 50_000, 2.0, 4);
        let deg = el.out_degrees();
        let head: u32 = deg[..10].iter().sum();
        let tail: u32 = deg[990..].iter().sum();
        assert!(
            head > 10 * tail.max(1),
            "head {head} should dwarf tail {tail}"
        );
    }

    #[test]
    fn deterministic() {
        assert_eq!(chung_lu(100, 500, 2.0, 5), chung_lu(100, 500, 2.0, 5));
    }
}
