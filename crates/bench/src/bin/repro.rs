//! Regenerates every table and figure of the paper's evaluation.
//!
//! ```text
//! repro <experiment> [--scale F] [--threads N] [--reps N] [--tiny]
//!                    [--partitions N] [--executor monolithic|partitioned]
//!                    [--output auto|sparse|dense] [--chunk N|max|auto]
//!                    [--adaptive] [--scenario grid|smallworld|powerlaw]
//!                    [--alpha F] [--hubs N]
//!
//! experiments: tab1 tab2 fig2 fig3 fig4 fig5 fig6 fig7 fig8 fig9 fig10
//!              atomics heuristic reorder smoke sparse_output load_balance
//!              chunk_overhead query_fusion serve layout_advisor record
//!              replay all
//! ```
//!
//! `--scale` multiplies the default graph sizes (DESIGN.md §2); the
//! default 1.0 targets a multi-core workstation. Timings are medians over
//! `--reps` runs (default 3). `--tiny` is the CI smoke configuration
//! (scale 0.01, 1 rep, ≤4 threads): numbers are meaningless, but every
//! experiment's code path runs in seconds.
//!
//! `--partitions` overrides the GG-v2 partition count wherever an
//! experiment would otherwise use the §IV.G heuristic or a fixed default
//! (tab2, fig9, fig10); sweep experiments keep their own sweeps.
//! `--executor partitioned` routes GG-v2 edge maps through the
//! partition-parallel executor (per-partition kernel selection,
//! NUMA-ordered fan-out) instead of the monolithic Algorithm 2 path.
//! `--output` forces the partitioned executor's per-partition output
//! representation (sorted vertex lists vs dense bitmap segments).
//!
//! `smoke` is the differential smoke experiment: every algorithm runs on
//! **both** executors and **both** output representations and the results
//! must agree, so the smoke suite cannot pass on one path alone. It exits
//! non-zero on any disagreement.
//!
//! `sparse_output` is the high-diameter scenario (`--scenario grid` — a
//! USA-road-style grid — or `--scenario smallworld`) comparing dense-merge
//! vs sparse-output BFS / Bellman-Ford; it writes
//! `BENCH_sparse_output.json` with the timing and merge-work trajectory.
//!
//! `record` / `replay` are the determinism-debugging pair (not part of
//! `all`, since `replay` needs `record`'s files): `record` runs BFS, PR,
//! CC and BF once each with the engine's round recorder armed and writes
//! `TRACE_<ALGO>.jsonl`; `replay` re-executes the same deterministic
//! workload — the `GG_THREADS` / `GG_CHUNK` environment overrides and the
//! `--partitions` flag may differ from the recording — and reports the
//! **first diverging round** (round index, partition, field, expected vs
//! got), exiting non-zero on any divergence. `--algo BFS|PR|CC|BF`
//! restricts the pair to one algorithm; `--fault` swaps in the test-only
//! thread-dependent fault op to prove the diagnosis localizes a real
//! divergence. `--scale` and `--scenario` must match between the two runs
//! (the scenario is recorded in the trace header and checked).
//!
//! `query_fusion` is the multi-source fusion bench: for K ∈ {1, 4, 16,
//! 64} it runs one fused K-lane BFS against K sequential single-source
//! runs on the powerlaw and smallworld scenarios (or just `--scenario`),
//! reporting edges traversed and min-of-reps wall-clock for both, checks
//! every lane's distances against its single-source oracle (exiting
//! non-zero on any mismatch), and writes `BENCH_query_fusion.json`.
//!
//! `serve` is the query-serving bench over the fused engine: a
//! deterministic open-loop arrival trace (`--queries N` BFS-distance /
//! reachability / PPR point queries) runs through per-algorithm admission
//! queues dispatching ≤ 64-lane fused batches (age-vs-occupancy policy),
//! compared against a one-traversal-per-query baseline and a
//! `--round-cap` time-sliced variant. It probes the baseline's saturation
//! throughput, serves at {0.5, 1, 2, 4}× that capacity, reports qps and
//! p50/p99 latency per rate and mode plus the batching counters, writes
//! `BENCH_serve.json`, oracle-checks the fused saturation run against
//! standalone runs, and applies the `GG_BENCH_GUARD`
//! fused-beats-baseline throughput guard. `--virtual` switches to a
//! deterministic virtual clock and prints per-query `VQ` lines for the
//! CI thread-count differential.
//!
//! `load_balance` is the skewed scenario (`--scenario powerlaw`, with
//! `--alpha` / `--hubs` shaping the skew): one destination partition is
//! star-shaped heavy, and the experiment compares partition-granular
//! execution (`--chunk max`) against intra-partition chunking with
//! NUMA-affine work stealing — plus, with `--adaptive`, the
//! `ChunkCap::Auto` policy deriving the cap per partition — reporting
//! chunk/steal/hub-split statistics, the top hub's in-degree vs the
//! observed `max_chunk_edges` (hub splitting pushes the latter below the
//! former), and the persistent pool's spawn/epoch counters, then writing
//! `BENCH_load_balance.json`.
//!
//! `layout_advisor` is the memsim-guided layout bench: for each scenario
//! it runs the sampled layout advisor (predicted per-partition MPKI per
//! candidate edge order), then measures wall-clock PR under each *forced*
//! uniform layout plus the advised per-partition mix, checks the advisor's
//! pick is never the measured-worst layout (tolerance `GG_BENCH_GUARD`, a
//! fraction; `off`/`0` disables; exits non-zero on violation), reports the
//! Spearman rank agreement between predicted MPKI and measured time, and
//! writes `BENCH_layout_advisor.json`.
//!
//! `--order source|dest|hilbert` forces one uniform COO edge layout on
//! every experiment that builds engines from the global flags
//! (equivalently `Config::with_edge_order`); without it engines keep the
//! default policy (Hilbert).

use gg_algorithms::Algorithm;
use gg_bench::datasets::Dataset;
use gg_bench::runner::{measure, EngineKind, RunConfig, Workload};
use gg_bench::{fmt_secs, Table};
use gg_core::config::{ForcedKernel, LayoutPolicy};
use gg_core::heuristic::{suggest_partitions, HeuristicInputs};
use gg_core::trace::{fig2_reuse_profile, run_traced_parallel, TracedAlgorithm};
use gg_graph::reorder::EdgeOrder;
use gg_graph::storage;
use gg_memsim::cache::{Cache, CacheConfig};
use gg_memsim::mpki::{InstructionModel, MpkiReport};
use gg_runtime::numa::NumaTopology;

struct Args {
    experiment: String,
    scale: f64,
    threads: usize,
    reps: usize,
    /// Overrides the GG-v2 partition count where experiments pick one.
    partitions: Option<usize>,
    executor: gg_core::config::ExecutorKind,
    /// Output-representation policy for the partitioned executor.
    output: gg_core::config::OutputMode,
    /// Scenario for `sparse_output` / `load_balance`
    /// (grid | smallworld | powerlaw).
    scenario: String,
    /// Work-stealing chunk-cap override (`--chunk N|max|auto`).
    chunk: Option<gg_core::config::ChunkCap>,
    /// Include the adaptive-cap mode in `load_balance`.
    adaptive: bool,
    /// Power-law exponent of the `powerlaw` scenario.
    alpha: f64,
    /// Star-hub count of the `powerlaw` scenario.
    hubs: usize,
    /// Restrict `record` / `replay` to one algorithm code
    /// (BFS|PR|CC|BF|FUSED).
    algo: Option<String>,
    /// Use the thread-dependent fault op in `record` / `replay`.
    fault: bool,
    /// Force one uniform COO edge layout (`--order source|dest|hilbert`);
    /// `None` keeps the engine default.
    order: Option<EdgeOrder>,
    /// Trace length for `serve` (`--queries N`); `None` scales with
    /// `--scale`.
    queries: Option<usize>,
    /// Round cap of `serve`'s capped mode (`--round-cap N`).
    round_cap: Option<usize>,
    /// Run `serve` on the virtual (deterministic) clock and print
    /// per-query `VQ` lines — the CI differential mode.
    virtual_cost: bool,
}

impl Args {
    /// The partition count for non-sweep experiments: the `--partitions`
    /// override when given, otherwise `fallback`.
    fn partitions_or(&self, fallback: usize) -> usize {
        self.partitions.unwrap_or(fallback)
    }

    /// The `--scenario` value, or the experiment's own default when the
    /// flag was not given.
    fn scenario_or(&self, fallback: &str) -> String {
        if self.scenario.is_empty() {
            fallback.to_string()
        } else {
            self.scenario.clone()
        }
    }

    /// A [`RunConfig`] carrying the global `--threads` / `--executor` /
    /// `--output` / `--chunk` / `--order` flags and the given partition
    /// count.
    fn run_config(&self, partitions: usize) -> RunConfig {
        RunConfig {
            partitions,
            executor: self.executor,
            output: self.output,
            chunk_edges: self.chunk.unwrap_or(gg_core::config::ChunkCap::Auto),
            layout: self.layout_policy(),
            ..RunConfig::new(self.threads)
        }
    }

    /// The layout policy from `--order`: a forced uniform layout when the
    /// flag was given, otherwise the engine default.
    fn layout_policy(&self) -> LayoutPolicy {
        match self.order {
            Some(order) => LayoutPolicy::Fixed(order),
            None => LayoutPolicy::default(),
        }
    }
}

/// The value following flag `argv[*i]`, or a usage-style error on a
/// trailing flag. All value-taking flags go through this so `repro
/// --scale` prints one line to stderr and exits 2 instead of panicking
/// with an index-out-of-bounds backtrace.
fn flag_value<'a>(argv: &'a [String], i: &mut usize, flag: &str) -> &'a str {
    *i += 1;
    match argv.get(*i) {
        Some(v) => v,
        None => {
            eprintln!("{flag} needs a value");
            std::process::exit(2);
        }
    }
}

/// Parses a numeric flag value, printing `"{flag} needs {what}"` to
/// stderr and exiting 2 on garbage — a malformed invocation is a usage
/// error, not an engine panic with a backtrace.
fn parse_flag<T: std::str::FromStr>(value: &str, flag: &str, what: &str) -> T {
    value.parse().unwrap_or_else(|_| {
        eprintln!("{flag} needs {what}, got '{value}'");
        std::process::exit(2);
    })
}

/// Rejects out-of-range flag values that parse fine but would only blow
/// up deep inside an experiment (`--reps 0` ran forever on a division,
/// `--threads 0` asserted in the pool).
fn require_flag(ok: bool, flag: &str, what: &str, value: &str) {
    if !ok {
        eprintln!("{flag} needs {what}, got '{value}'");
        std::process::exit(2);
    }
}

fn parse_args() -> Args {
    let mut args = Args {
        experiment: String::new(),
        scale: 1.0,
        threads: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4),
        reps: 3,
        partitions: None,
        executor: gg_core::config::ExecutorKind::Monolithic,
        output: gg_core::config::OutputMode::Auto,
        scenario: String::new(),
        chunk: None,
        adaptive: false,
        alpha: 2.0,
        hubs: 16,
        algo: None,
        fault: false,
        order: None,
        queries: None,
        round_cap: None,
        virtual_cost: false,
    };
    let mut tiny = false;
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--scale" => {
                let v = flag_value(&argv, &mut i, "--scale");
                args.scale = parse_flag(v, "--scale", "a positive float");
                require_flag(
                    args.scale > 0.0 && args.scale.is_finite(),
                    "--scale",
                    "a positive float",
                    v,
                );
            }
            "--threads" => {
                let v = flag_value(&argv, &mut i, "--threads");
                args.threads = parse_flag(v, "--threads", "a positive integer");
                require_flag(args.threads > 0, "--threads", "a positive integer", v);
            }
            "--reps" => {
                let v = flag_value(&argv, &mut i, "--reps");
                args.reps = parse_flag(v, "--reps", "a positive integer");
                require_flag(args.reps > 0, "--reps", "a positive integer", v);
            }
            "--partitions" => {
                let v = flag_value(&argv, &mut i, "--partitions");
                let n: usize = parse_flag(v, "--partitions", "a positive integer");
                require_flag(n > 0, "--partitions", "a positive integer", v);
                args.partitions = Some(n);
            }
            "--executor" => {
                args.executor = match flag_value(&argv, &mut i, "--executor") {
                    "monolithic" => gg_core::config::ExecutorKind::Monolithic,
                    "partitioned" => gg_core::config::ExecutorKind::Partitioned,
                    other => {
                        eprintln!("--executor must be monolithic or partitioned, got {other}");
                        std::process::exit(2);
                    }
                };
            }
            "--output" => {
                args.output = match flag_value(&argv, &mut i, "--output") {
                    "auto" => gg_core::config::OutputMode::Auto,
                    "sparse" => gg_core::config::OutputMode::ForceSparse,
                    "dense" => gg_core::config::OutputMode::ForceDense,
                    other => {
                        eprintln!("--output must be auto, sparse or dense, got {other}");
                        std::process::exit(2);
                    }
                };
            }
            "--scenario" => match flag_value(&argv, &mut i, "--scenario") {
                s @ ("grid" | "smallworld" | "powerlaw") => args.scenario = s.to_string(),
                other => {
                    eprintln!("--scenario must be grid, smallworld or powerlaw, got {other}");
                    std::process::exit(2);
                }
            },
            "--chunk" => {
                args.chunk = Some(match flag_value(&argv, &mut i, "--chunk") {
                    "max" => gg_core::config::ChunkCap::Fixed(usize::MAX),
                    "auto" => gg_core::config::ChunkCap::Auto,
                    v => match v.parse::<usize>() {
                        Ok(n) if n > 0 => gg_core::config::ChunkCap::Fixed(n),
                        _ => {
                            eprintln!("--chunk needs a positive integer, max or auto, got {v}");
                            std::process::exit(2);
                        }
                    },
                });
            }
            "--adaptive" => args.adaptive = true,
            "--order" => {
                let v = flag_value(&argv, &mut i, "--order");
                args.order = match EdgeOrder::from_label(v) {
                    Some(order) => Some(order),
                    None => {
                        eprintln!("--order must be source, dest or hilbert, got {v}");
                        std::process::exit(2);
                    }
                };
            }
            "--algo" => {
                args.algo = Some(flag_value(&argv, &mut i, "--algo").to_uppercase());
            }
            "--fault" => args.fault = true,
            "--alpha" => {
                let v = flag_value(&argv, &mut i, "--alpha");
                args.alpha = parse_flag(v, "--alpha", "a float > 1");
                require_flag(args.alpha > 1.0, "--alpha", "a float > 1", v);
            }
            "--hubs" => {
                let v = flag_value(&argv, &mut i, "--hubs");
                args.hubs = parse_flag(v, "--hubs", "an integer");
            }
            "--queries" => {
                let v = flag_value(&argv, &mut i, "--queries");
                let n: usize = parse_flag(v, "--queries", "a positive integer");
                require_flag(n > 0, "--queries", "a positive integer", v);
                args.queries = Some(n);
            }
            "--round-cap" => {
                let v = flag_value(&argv, &mut i, "--round-cap");
                let n: usize = parse_flag(v, "--round-cap", "a positive integer");
                require_flag(n > 0, "--round-cap", "a positive integer", v);
                args.round_cap = Some(n);
            }
            "--virtual" => args.virtual_cost = true,
            "--tiny" => tiny = true,
            other if args.experiment.is_empty() && !other.starts_with("--") => {
                args.experiment = other.to_string();
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    // Applied after the loop so the smoke contract holds regardless of
    // where --tiny appears relative to the other flags.
    if tiny {
        args.scale = 0.01;
        args.reps = 1;
        args.threads = args.threads.min(4);
    }
    if args.experiment.is_empty() {
        eprintln!(
            "usage: repro <tab1|tab2|fig2|fig3|fig4|fig5|fig6|fig7|fig8|fig9|fig10|atomics|\
             heuristic|reorder|smoke|sparse_output|load_balance|chunk_overhead|query_fusion|\
             serve|layout_advisor|record|replay|all>\
             [--scale F] [--threads N]\
             [--reps N] [--tiny] [--partitions N] [--executor monolithic|partitioned]\
             [--output auto|sparse|dense] [--scenario grid|smallworld|powerlaw]\
             [--chunk N|max|auto] [--adaptive] [--alpha F] [--hubs N]\
             [--order source|dest|hilbert] [--algo BFS|PR|CC|BF] [--fault]\
             [--queries N] [--round-cap N] [--virtual]"
        );
        std::process::exit(2);
    }
    args
}

fn main() {
    let args = parse_args();
    let run = |name: &str| args.experiment == name || args.experiment == "all";
    println!(
        "# GraphGrind-rs reproduction — scale {}, {} threads, {} reps\n",
        args.scale, args.threads, args.reps
    );
    if run("tab1") {
        tab1(&args);
    }
    if run("tab2") {
        tab2(&args);
    }
    if run("fig2") {
        fig2(&args);
    }
    if run("fig3") {
        fig3(&args);
    }
    if run("fig4") {
        fig4(&args);
    }
    if run("fig5") {
        fig5(&args);
    }
    if run("fig6") {
        fig6(&args);
    }
    if run("fig7") {
        fig7(&args);
    }
    if run("fig8") {
        fig8(&args);
    }
    if run("fig9") {
        fig9(&args);
    }
    if run("fig10") {
        fig10(&args);
    }
    if run("atomics") {
        atomics(&args);
    }
    if run("heuristic") {
        heuristic(&args);
    }
    if run("reorder") {
        reorder(&args);
    }
    if run("smoke") {
        smoke(&args);
    }
    if run("sparse_output") {
        sparse_output(&args);
    }
    if run("load_balance") {
        load_balance(&args);
    }
    if run("chunk_overhead") {
        chunk_overhead(&args);
    }
    if run("query_fusion") {
        query_fusion(&args);
    }
    if run("serve") {
        serve_bench(&args);
    }
    if run("layout_advisor") {
        layout_advisor(&args);
    }
    // Deliberately not part of `all`: `record` writes trace files and
    // `replay` requires them, so running both blindly inside `all` would
    // either clobber a user's traces or fail on their absence.
    if args.experiment == "record" {
        record(&args);
    }
    if args.experiment == "replay" {
        replay(&args);
    }
}

/// Table I: data-set characterisation.
fn tab1(args: &Args) {
    println!("## Table I — graph data sets (synthetic stand-ins)\n");
    let mut t = Table::new(&["Graph", "Vertices", "Edges", "Type", "MaxOutDeg", "AvgDeg"]);
    for d in Dataset::all() {
        let (name, s) = d.stats_row(args.scale);
        t.row(vec![
            name,
            s.num_vertices.to_string(),
            s.num_edges.to_string(),
            if d.undirected() {
                "undirected"
            } else {
                "directed"
            }
            .into(),
            s.max_out_degree.to_string(),
            format!("{:.1}", s.avg_degree),
        ]);
    }
    t.print();
    println!();
}

/// Table II: algorithm characterisation + observed kernel mix on GG-v2.
fn tab2(args: &Args) {
    println!("## Table II — algorithms and the traversal mix GG-v2 chose\n");
    let base = Dataset::Twitter.build(args.scale * 0.25);
    let mut t = Table::new(&[
        "Code",
        "V/E",
        "Declared dir",
        "Sparse rounds",
        "Medium rounds",
        "Dense rounds",
    ]);
    for algo in Algorithm::all() {
        let w = Workload::prepare(&base, algo);
        let cfg = gg_core::config::Config {
            threads: args.threads,
            num_partitions: args.partitions_or(64),
            executor: args.executor,
            ..gg_core::config::Config::default()
        };
        let fwd = gg_core::engine::GraphGrind2::new(&w.el, cfg.clone());
        let bwd = w
            .el_t
            .as_ref()
            .map(|tr| gg_core::engine::GraphGrind2::new(tr, cfg.clone()));
        gg_bench::runner::run_algorithm(&fwd, bwd.as_ref(), &w);
        // The monolithic path counts one kernel per edge map; the
        // partitioned executor counts one selection per partition (the
        // medium class folds into the dense pull there).
        let (s, m, d) = match args.executor {
            gg_core::config::ExecutorKind::Monolithic => fwd.kernel_counts().snapshot(),
            gg_core::config::ExecutorKind::Partitioned => {
                let (ps, pd, _) = fwd.kernel_counts().partition_snapshot();
                (ps, 0, pd)
            }
        };
        t.row(vec![
            algo.code().into(),
            if algo.vertex_oriented() { "V" } else { "E" }.into(),
            format!("{:?}", algo.preferred_direction()),
            s.to_string(),
            m.to_string(),
            d.to_string(),
        ]);
    }
    t.print();
    println!();
}

/// Figure 2: reuse-distance distribution vs partition count.
fn fig2(args: &Args) {
    println!(
        "## Figure 2 — reuse distances of next-array updates (PRDelta push, partitioned CSR)\n"
    );
    let el = Dataset::Twitter.build(args.scale * 0.25);
    let parts = [1usize, 4, 8, 24, 192, 384];
    let profiles: Vec<_> = parts.iter().map(|&p| fig2_reuse_profile(&el, p)).collect();
    let max_buckets = profiles
        .iter()
        .map(|p| p.histogram.buckets().len())
        .max()
        .unwrap_or(0);
    let mut headers: Vec<String> = vec!["dist<=".into()];
    headers.extend(parts.iter().map(|p| format!("P={p}")));
    let hdr_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    let mut t = Table::new(&hdr_refs);
    for b in 0..max_buckets {
        let upper = gg_memsim::histogram::LogHistogram::bucket_range(b).1;
        let mut row = vec![upper.to_string()];
        for p in &profiles {
            row.push(
                p.histogram
                    .buckets()
                    .get(b)
                    .copied()
                    .unwrap_or(0)
                    .to_string(),
            );
        }
        t.row(row);
    }
    t.print();
    let mut s = Table::new(&["partitions", "p50", "p95", "max"]);
    for (i, p) in profiles.iter().enumerate() {
        s.row(vec![
            parts[i].to_string(),
            p.histogram.quantile_upper(0.5).to_string(),
            p.histogram.quantile_upper(0.95).to_string(),
            p.histogram.max_bucket_upper().to_string(),
        ]);
    }
    println!("\nSummary (distance quantile upper bounds):");
    s.print();
    println!();
}

/// Figure 3: replication factor vs partition count.
fn fig3(args: &Args) {
    println!("## Figure 3 — replication factor (partitioning by destination)\n");
    let parts = [4usize, 8, 16, 32, 64, 128, 192, 256, 320, 384];
    let graphs = [
        Dataset::Twitter,
        Dataset::Friendster,
        Dataset::Orkut,
        Dataset::UsaRoad,
        Dataset::LiveJournal,
        Dataset::Powerlaw,
    ];
    let mut headers: Vec<String> = vec!["partitions".into()];
    headers.extend(graphs.iter().map(|g| g.name().to_string()));
    let hdr_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    let mut t = Table::new(&hdr_refs);
    let sweeps: Vec<Vec<(usize, f64)>> = graphs
        .iter()
        .map(|g| {
            let el = g.build(args.scale);
            gg_graph::replication::replication_sweep(&el, &parts)
        })
        .collect();
    for (i, &p) in parts.iter().enumerate() {
        let mut row = vec![p.to_string()];
        for sweep in &sweeps {
            row.push(format!("{:.2}", sweep[i].1));
        }
        t.row(row);
    }
    t.print();
    println!();
}

/// Figure 4: storage size vs partition count.
fn fig4(args: &Args) {
    println!("## Figure 4 — graph storage size [GiB] vs partitions\n");
    let parts = [4usize, 16, 48, 96, 192, 384];
    for d in [Dataset::Twitter, Dataset::Friendster] {
        println!("### {}", d.name());
        let el = d.build(args.scale);
        let rows = storage::storage_sweep(&el, &parts);
        let mut t = Table::new(&["partitions", "r(p)", "CSR", "CSR pruned", "COO", "CSC"]);
        for r in rows {
            t.row(vec![
                r.partitions.to_string(),
                format!("{:.2}", r.replication),
                format!("{:.4}", storage::to_gib(r.csr_unpruned)),
                format!("{:.4}", storage::to_gib(r.csr_pruned)),
                format!("{:.4}", storage::to_gib(r.coo)),
                format!("{:.4}", storage::to_gib(r.csc)),
            ]);
        }
        t.print();
        println!();
    }
}

fn forced_configs() -> [(&'static str, ForcedKernel, bool); 4] {
    [
        ("CSR+a", ForcedKernel::CsrAtomic, true),
        ("CSC+na", ForcedKernel::CscNoAtomic, false),
        ("COO+na", ForcedKernel::CooNoAtomic, false),
        ("COO+a", ForcedKernel::CooAtomic, true),
    ]
}

fn layout_sweep(
    args: &Args,
    dataset: Dataset,
    algos: &[Algorithm],
    parts: &[usize],
    csr_cap: usize,
) {
    let base = dataset.build(args.scale * 0.5);
    for &algo in algos {
        println!("### {} on {}", algo.code(), dataset.name());
        let w = Workload::prepare(&base, algo);
        let mut headers: Vec<String> = vec!["partitions".into()];
        headers.extend(forced_configs().iter().map(|(n, _, _)| n.to_string()));
        let hdr_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
        let mut t = Table::new(&hdr_refs);
        for &p in parts {
            let mut row = vec![p.to_string()];
            for (_, force, _) in forced_configs() {
                // The paper runs out of memory for partitioned CSR beyond
                // 48 partitions on Twitter (§IV.A); mirror the cap.
                if force == ForcedKernel::CsrAtomic && p > csr_cap {
                    row.push("-".into());
                    continue;
                }
                let rc = RunConfig {
                    partitions: p,
                    force: Some(force),
                    ..RunConfig::new(args.threads)
                };
                row.push(fmt_secs(measure(EngineKind::Gg2, &w, &rc, args.reps)));
            }
            t.row(row);
        }
        t.print();
        println!();
    }
}

/// Figure 5: execution time vs partitions per layout, 8 algorithms.
fn fig5(args: &Args) {
    println!("## Figure 5 — execution time vs partitions and layout (Twitter stand-in)\n");
    let parts = [4usize, 16, 48, 192, 384, 480];
    layout_sweep(args, Dataset::Twitter, &Algorithm::all(), &parts, 48);
}

/// Figure 6: unrestricted-memory emulation on small graphs.
fn fig6(args: &Args) {
    println!("## Figure 6 — small graphs, partitioned CSR unrestricted (BFS, BP)\n");
    let parts = [4usize, 16, 48, 192, 384];
    for d in [Dataset::LiveJournal, Dataset::YahooMem] {
        layout_sweep(
            args,
            d,
            &[Algorithm::Bfs, Algorithm::Bp],
            &parts,
            usize::MAX,
        );
    }
}

/// Figure 7: COO edge sort order.
fn fig7(args: &Args) {
    println!("## Figure 7 — COO edge sort order, normalised to Source order (384 partitions)\n");
    let algos = [
        Algorithm::Cc,
        Algorithm::Pr,
        Algorithm::PrDelta,
        Algorithm::Spmv,
        Algorithm::Bp,
    ];
    for d in [Dataset::Twitter, Dataset::Friendster] {
        println!("### {}", d.name());
        let base = d.build(args.scale * 0.5);
        let mut t = Table::new(&["Algorithm", "Source", "Hilbert", "Destination"]);
        for algo in algos {
            let w = Workload::prepare(&base, algo);
            let mut times = Vec::new();
            for order in [
                EdgeOrder::Source,
                EdgeOrder::Hilbert,
                EdgeOrder::Destination,
            ] {
                let rc = RunConfig {
                    layout: LayoutPolicy::Fixed(order),
                    force: Some(ForcedKernel::CooNoAtomic),
                    ..RunConfig::new(args.threads)
                };
                times.push(measure(EngineKind::Gg2, &w, &rc, args.reps));
            }
            let base_t = times[0];
            t.row(vec![
                algo.code().into(),
                "1.000".into(),
                format!("{:.3}", times[1] / base_t),
                format!("{:.3}", times[2] / base_t),
            ]);
        }
        t.print();
        println!();
    }
}

/// Figure 8: simulated LLC MPKI vs partitions, with the cache scaled to
/// preserve the paper's data-footprint:LLC ratio (their Twitter working
/// set is ~10x the 30 MiB LLC; reproduction graphs are far smaller).
/// The trace interleaves `threads` concurrent workers' streams — it is
/// the *aggregate* working set of the running partitions that must fit.
fn fig8(args: &Args) {
    println!("## Figure 8 — simulated LLC MPKI vs partitions (parallel interleaved trace)\n");
    println!(
        "Source-ordered COO isolates the partitioning effect; a Hilbert\n\
         companion table shows that at reproduction scale Hilbert order\n\
         already captures most locality by itself (the Figure 7 overlap).\n"
    );
    let parts = [4usize, 16, 48, 96, 192, 384];
    let algos = [
        ("PR", TracedAlgorithm::PageRank),
        ("BF", TracedAlgorithm::BellmanFord),
        ("BFS", TracedAlgorithm::Bfs),
    ];
    let threads = args.threads.min(48);
    for d in [Dataset::Twitter, Dataset::Friendster] {
        let mut el = d.build(args.scale * 0.25);
        gg_graph::weights::attach_integer(&mut el, 16, 0xF16);
        let footprint = (el.num_vertices() * 16) as u64;
        let llc = CacheConfig::scaled_llc(footprint, 4);
        println!(
            "### {} ({} workers, LLC model {} KiB)",
            d.name(),
            threads,
            llc.size_bytes / 1024
        );
        for order in [EdgeOrder::Source, EdgeOrder::Hilbert] {
            println!("edge order: {}", order.label());
            let mut headers: Vec<String> = vec!["partitions".into()];
            headers.extend(algos.iter().map(|(n, _)| n.to_string()));
            let hdr_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
            let mut t = Table::new(&hdr_refs);
            for &p in &parts {
                let mut row = vec![p.to_string()];
                for &(_, algo) in &algos {
                    let mut cache = Cache::new(llc);
                    let work = run_traced_parallel(&el, p, order, algo, threads, &mut cache);
                    let report = MpkiReport::new(
                        cache.stats(),
                        InstructionModel::default(),
                        work.edges,
                        work.vertices,
                    );
                    row.push(format!("{:.2}", report.mpki()));
                }
                t.row(row);
            }
            t.print();
            println!();
        }
    }
}

/// Figure 9: four engines, eight algorithms, eight graphs.
fn fig9(args: &Args) {
    println!("## Figure 9 — execution time (s): Ligra / Polymer / GG-v1 / GG-v2\n");
    for d in Dataset::all() {
        println!("### {}", d.name());
        let base = d.build(args.scale * 0.5);
        // GG-v2's partition count comes from the §IV.G heuristic (the
        // paper hand-tunes 384 for billion-edge graphs).
        let p = suggest_partitions(&HeuristicInputs::new(
            base.num_vertices(),
            base.num_edges(),
            args.threads,
            NumaTopology::paper_machine(),
        ));
        let mut t = Table::new(&[
            "Algorithm",
            "L",
            "P",
            "GG-v1",
            "GG-v2",
            "GG-v2 speedup vs L",
        ]);
        for algo in Algorithm::all() {
            let w = Workload::prepare(&base, algo);
            let rc = args.run_config(args.partitions_or(p));
            let times: Vec<f64> = EngineKind::all()
                .iter()
                .map(|&k| measure(k, &w, &rc, args.reps))
                .collect();
            t.row(vec![
                algo.code().into(),
                fmt_secs(times[0]),
                fmt_secs(times[1]),
                fmt_secs(times[2]),
                fmt_secs(times[3]),
                format!("{:.2}x", times[0] / times[3].max(1e-9)),
            ]);
        }
        t.print();
        println!();
    }
}

/// Figure 10: thread scalability of PRDelta.
fn fig10(args: &Args) {
    println!("## Figure 10 — PRDelta scalability vs threads\n");
    let max_threads = args.threads;
    let mut threads = vec![4usize, 8, 16, 24, 48];
    threads.retain(|&t| t <= max_threads);
    if threads.is_empty() {
        threads.push(max_threads);
    }
    for d in [Dataset::Twitter, Dataset::Friendster] {
        println!("### {}", d.name());
        let base = d.build(args.scale * 0.5);
        let w = Workload::prepare(&base, Algorithm::PrDelta);
        let mut t = Table::new(&["threads", "L", "P", "GG-v1", "GG-v2"]);
        for &th in &threads {
            let p = suggest_partitions(&HeuristicInputs::new(
                base.num_vertices(),
                base.num_edges(),
                th,
                NumaTopology::paper_machine(),
            ));
            let rc = RunConfig {
                partitions: args.partitions_or(p),
                executor: args.executor,
                ..RunConfig::new(th)
            };
            let mut row = vec![th.to_string()];
            for k in EngineKind::all() {
                row.push(fmt_secs(measure(k, &w, &rc, args.reps)));
            }
            t.row(row);
        }
        t.print();
        println!();
    }
}

/// Extension ablation (§IV.G): does the automatic partition-count
/// heuristic land near the empirical optimum of a full sweep?
fn heuristic(args: &Args) {
    println!("## Heuristic ablation — suggested partition count vs sweep (PR, GG-v2)\n");
    for d in [Dataset::Twitter, Dataset::UsaRoad] {
        let base = d.build(args.scale * 0.5);
        let w = Workload::prepare(&base, Algorithm::Pr);
        let suggested = suggest_partitions(&HeuristicInputs::new(
            base.num_vertices(),
            base.num_edges(),
            args.threads,
            NumaTopology::paper_machine(),
        ));
        println!(
            "### {} (n = {}, m = {}; heuristic suggests P = {})",
            d.name(),
            base.num_vertices(),
            base.num_edges(),
            suggested
        );
        let mut t = Table::new(&["partitions", "time (s)", ""]);
        let mut best = (0usize, f64::INFINITY);
        let mut sweep: Vec<(usize, f64)> = Vec::new();
        for p in [4usize, 16, 48, 96, 192, 384, suggested] {
            if sweep.iter().any(|&(q, _)| q == p) {
                continue;
            }
            let rc = RunConfig {
                partitions: p,
                ..RunConfig::new(args.threads)
            };
            let time = measure(EngineKind::Gg2, &w, &rc, args.reps);
            if time < best.1 {
                best = (p, time);
            }
            sweep.push((p, time));
        }
        sweep.sort_unstable_by_key(|&(p, _)| p);
        for (p, time) in sweep {
            let mark = if p == suggested && p == best.0 {
                "<- suggested & best"
            } else if p == suggested {
                "<- suggested"
            } else if p == best.0 {
                "<- best"
            } else {
                ""
            };
            t.row(vec![p.to_string(), fmt_secs(time), mark.into()]);
        }
        t.print();
        println!();
    }
}

/// Extension ablation (related work): degree-ordered relabeling vs
/// partitioning as locality mechanisms, and their combination.
fn reorder(args: &Args) {
    println!("## Reordering ablation — degree relabeling vs partitioning (PR, GG-v2)\n");
    let base = Dataset::Twitter.build(args.scale * 0.5);
    let perm = gg_graph::ops::degree_order_permutation(&base);
    let relabeled = gg_graph::ops::relabel(&base, &perm);
    let mut t = Table::new(&["configuration", "time (s)"]);
    for (label, el, p) in [
        ("original labels, P=4", &base, 4usize),
        ("original labels, P=192", &base, 192),
        ("degree-relabeled, P=4", &relabeled, 4),
        ("degree-relabeled, P=192", &relabeled, 192),
    ] {
        let w = Workload::prepare(el, Algorithm::Pr);
        let rc = RunConfig {
            partitions: p,
            ..RunConfig::new(args.threads)
        };
        t.row(vec![
            label.into(),
            fmt_secs(measure(EngineKind::Gg2, &w, &rc, args.reps)),
        ]);
    }
    t.print();
    println!();
}

/// Differential smoke: every algorithm runs on **both** executors and
/// **both** output representations, and the results must agree — the
/// smoke suite cannot pass on the monolithic/sequential path alone.
/// Exits non-zero on any disagreement.
///
/// Comparison contract: integer outputs (BFS/BC levels, CC labels) agree
/// exactly everywhere; float outputs agree **bitwise** between output
/// representations on the partitioned executor (same kernels, same
/// accumulation order) and to tolerance across executors (the monolithic
/// kernels accumulate in COO/CSR order, the partitioned ones in CSC
/// order).
fn smoke(args: &Args) {
    use gg_bench::runner::gg2_output;
    use gg_core::config::{ExecutorKind, OutputMode};

    println!("## Smoke — executor × output-representation differential\n");
    let base = Dataset::Twitter.build(args.scale * 0.25);
    let partitions = args.partitions_or(8);
    let part_rc = |output: OutputMode| RunConfig {
        partitions,
        executor: ExecutorKind::Partitioned,
        output,
        layout: args.layout_policy(),
        ..RunConfig::new(args.threads)
    };
    let mut t = Table::new(&[
        "Algorithm",
        "sparse vs dense out",
        "mono vs partitioned",
        "status",
    ]);
    let mut failures = 0usize;
    for algo in Algorithm::all() {
        let w = Workload::prepare(&base, algo);
        let mono = gg2_output(
            &w,
            &RunConfig {
                partitions,
                layout: args.layout_policy(),
                ..RunConfig::new(args.threads)
            },
        );
        let sparse_out = gg2_output(&w, &part_rc(OutputMode::ForceSparse));
        let dense_out = gg2_output(&w, &part_rc(OutputMode::ForceDense));

        // Representation differential: bitwise.
        let repr_ok = sparse_out.ints == dense_out.ints
            && sparse_out.floats.len() == dense_out.floats.len()
            && sparse_out
                .floats
                .iter()
                .zip(&dense_out.floats)
                .all(|(a, b)| a.to_bits() == b.to_bits());
        // Executor differential: ints exact, floats to tolerance.
        let exec_err = mono.max_rel_error(&sparse_out);
        let exec_ok = mono.ints == sparse_out.ints && exec_err <= 1e-6;
        if !repr_ok || !exec_ok {
            failures += 1;
        }
        t.row(vec![
            algo.code().into(),
            if repr_ok { "bit-identical" } else { "MISMATCH" }.into(),
            format!("max rel err {exec_err:.2e}"),
            if repr_ok && exec_ok { "OK" } else { "FAIL" }.into(),
        ]);
    }
    t.print();
    if failures > 0 {
        eprintln!("\nSMOKE FAILED: {failures} algorithm(s) disagreed across configurations");
        std::process::exit(1);
    }
    println!(
        "\nSMOKE OK: {} algorithms x 2 executors x 2 output representations agree\n",
        Algorithm::all().len()
    );
}

/// The high-diameter scenario: BFS and Bellman-Ford on a road-style grid
/// (or small-world ring) where frontiers stay tiny for hundreds of
/// rounds — exactly the regime where PR 2's dense-bitmap merge paid an
/// `O(|V| / 64)` floor per round. Compares the partitioned executor with
/// the dense merge forced on vs the sparse-output fast path, prints the
/// trajectory and writes `BENCH_sparse_output.json`.
fn sparse_output(args: &Args) {
    use gg_core::config::{Config, ExecutorKind, OutputMode};
    use gg_core::engine::{Engine, GraphGrind2};

    let scenario = args.scenario_or("grid");
    println!("## Sparse-output bench — dense merge vs sparse emission ({scenario} scenario)\n");
    let el = match scenario.as_str() {
        "smallworld" => {
            let n = ((200_000.0 * args.scale) as usize).max(1_000);
            gg_graph::generators::small_world(n, 6, 0.05, 11)
        }
        "powerlaw" => gg_bench::datasets::powerlaw_scenario(args.scale, args.alpha, args.hubs, 11),
        _ => {
            let side = ((250_000.0 * args.scale).sqrt() as usize).max(24);
            gg_graph::generators::grid_road(side, side, 0.05, 11)
        }
    };
    let n = el.num_vertices();
    let partitions = args.partitions_or(16);
    println!(
        "graph: {} vertices, {} edges, {} partitions, {} threads\n",
        n,
        el.num_edges(),
        partitions,
        args.threads
    );

    let modes: [(&str, OutputMode); 3] = [
        ("dense", OutputMode::ForceDense),
        ("sparse", OutputMode::ForceSparse),
        ("auto", OutputMode::Auto),
    ];
    let mut t = Table::new(&["Algorithm", "output", "time (s)", "rounds", "merge words"]);
    let mut json_rows: Vec<String> = Vec::new();
    for algo in [Algorithm::Bfs, Algorithm::Bf] {
        let w = Workload::prepare(&el, algo);
        let mut per_mode: Vec<(String, f64, usize, u64)> = Vec::new();
        for (label, mode) in modes {
            let cfg = Config {
                threads: args.threads,
                num_partitions: partitions,
                numa: NumaTopology::paper_machine(),
                executor: ExecutorKind::Partitioned,
                output_mode: mode,
                ..Config::default()
            };
            let engine = GraphGrind2::new(&w.el, cfg);
            let run = || match algo {
                Algorithm::Bfs => gg_algorithms::bfs(&engine, w.source).rounds,
                _ => gg_algorithms::bellman_ford(&engine, w.source).rounds,
            };
            let time = gg_bench::time_median(args.reps, || {
                run();
            });
            engine.work_counters().reset();
            let rounds = run();
            let merge_words = engine.work_counters().merge_words();
            t.row(vec![
                algo.code().into(),
                label.into(),
                fmt_secs(time),
                rounds.to_string(),
                merge_words.to_string(),
            ]);
            per_mode.push((label.to_string(), time, rounds, merge_words));
        }
        let dense = &per_mode[0];
        let sparse = &per_mode[1];
        json_rows.push(format!(
            "    {{\"algorithm\": \"{}\", \"rounds\": {}, \"dense_merge_s\": {:.6}, \
             \"sparse_output_s\": {:.6}, \"auto_s\": {:.6}, \"speedup_sparse_vs_dense\": {:.4}, \
             \"merge_words_dense\": {}, \"merge_words_sparse\": {}, \"merge_words_auto\": {}}}",
            algo.code(),
            dense.2,
            dense.1,
            sparse.1,
            per_mode[2].1,
            dense.1 / sparse.1.max(1e-12),
            dense.3,
            sparse.3,
            per_mode[2].3,
        ));
    }
    t.print();
    let json = format!(
        "{{\n  \"bench\": \"sparse_output\",\n  \"scenario\": \"{}\",\n  \"vertices\": {},\n  \
         \"edges\": {},\n  \"partitions\": {},\n  \"threads\": {},\n  \"reps\": {},\n  \
         \"results\": [\n{}\n  ]\n}}\n",
        scenario,
        n,
        el.num_edges(),
        partitions,
        args.threads,
        args.reps,
        json_rows.join(",\n")
    );
    let path = "BENCH_sparse_output.json";
    match std::fs::write(path, &json) {
        Ok(()) => println!("\nwrote {path}\n"),
        Err(e) => eprintln!("\nfailed to write {path}: {e}\n"),
    }
}

/// The load-balance bench: PR and BFS on a skewed scale-free scenario
/// whose star hubs make one destination partition carry a large multiple
/// of the average partition's edges — the imbalance regime where one
/// heavy partition used to bound every round of the partition-granular
/// executor. Compares partition-granular tasks (`--chunk max`) against
/// intra-partition chunking + work stealing (`--chunk`, default
/// `DEFAULT_CHUNK_EDGES`), prints the chunk/steal statistics and writes
/// `BENCH_load_balance.json`. Each mode runs one untimed warmup rep plus
/// `--reps` timed reps; the table and speedup lines report min-of-reps
/// (mean alongside), and the JSON carries every per-rep sample.
fn load_balance(args: &Args) {
    use gg_core::config::{ChunkCap, Config, ExecutorKind};
    use gg_core::engine::{Engine, GraphGrind2};

    let scenario = args.scenario_or("powerlaw");
    println!(
        "## Load-balance bench — partition-granular vs chunked work stealing ({scenario} scenario)\n"
    );
    let el = match scenario.as_str() {
        "smallworld" => {
            let n = ((200_000.0 * args.scale) as usize).max(1_000);
            gg_graph::generators::small_world(n, 6, 0.05, 13)
        }
        "grid" => {
            let side = ((250_000.0 * args.scale).sqrt() as usize).max(24);
            gg_graph::generators::grid_road(side, side, 0.05, 13)
        }
        _ => gg_bench::datasets::powerlaw_scenario(args.scale, args.alpha, args.hubs, 13),
    };
    let n = el.num_vertices();
    let partitions = args.partitions_or(16);
    // The top in-degree: hub splitting's acceptance criterion is that the
    // observed max_chunk_edges drops *below* this.
    let top_hub_in_degree = {
        let mut indeg = vec![0u64; n];
        for (_, d) in el.iter() {
            indeg[d as usize] += 1;
        }
        indeg.iter().copied().max().unwrap_or(0)
    };
    // An explicit fixed --chunk is honoured verbatim (`--chunk max`
    // makes the "chunked" mode deliberately identical to
    // partition-granular); without one, the default fixed cap is scaled
    // down (mirroring the adaptive rule's oversubscription) so tiny
    // graphs still split into more chunks than threads.
    let fixed_cap = match args.chunk {
        Some(ChunkCap::Fixed(c)) => c,
        _ => gg_core::config::DEFAULT_CHUNK_EDGES.min(
            (el.num_edges() / (gg_core::plan::CHUNK_OVERSUBSCRIPTION * args.threads).max(1))
                .max(gg_core::plan::MIN_CHUNK_EDGES),
        ),
    };
    println!(
        "graph: {} vertices, {} edges, {} partitions, {} threads, fixed chunk cap {}, \
         top hub in-degree {}\n",
        n,
        el.num_edges(),
        partitions,
        args.threads,
        fixed_cap,
        top_hub_in_degree
    );

    let mut modes: Vec<(&str, ChunkCap)> = vec![
        ("partition-granular", ChunkCap::Fixed(usize::MAX)),
        ("chunked", ChunkCap::Fixed(fixed_cap)),
    ];
    if args.adaptive {
        modes.push(("adaptive", ChunkCap::Auto));
    }
    let mut t = Table::new(&[
        "Algorithm",
        "mode",
        "min (s)",
        "mean (s)",
        "chunks",
        "hub subchunks",
        "steals",
        "x-domain",
        "max chunk",
        "mean chunk",
        "spawns/epochs",
    ]);
    let mut json_rows: Vec<String> = Vec::new();
    let mut layout_meta: Option<(String, f64)> = None;
    for algo in [Algorithm::Pr, Algorithm::Bfs] {
        let w = Workload::prepare(&el, algo);
        let mut per_mode: Vec<(String, f64)> = Vec::new();
        // One engine per mode, timed with the reps round-robin interleaved:
        // per-mode blocks hand host-side slow periods (CPU throttling,
        // frequency drift) to whichever mode runs last — on this harness
        // that bias dwarfed the per-chunk costs being measured. The warmup
        // rep per mode still absorbs the lazy pool spawn and cold caches;
        // the min over interleaved reps is the headline number.
        let engines: Vec<_> = modes
            .iter()
            .map(|&(_, cap)| {
                let cfg = Config {
                    threads: args.threads,
                    num_partitions: partitions,
                    numa: NumaTopology::paper_machine(),
                    executor: ExecutorKind::Partitioned,
                    chunk_edges: cap,
                    layout: args.layout_policy(),
                    ..Config::default()
                };
                GraphGrind2::new(&w.el, cfg)
            })
            .collect();
        // The effective layout + partition metadata for the JSON envelope,
        // read off the first store built (identical across modes/algos).
        if layout_meta.is_none() {
            let store = engines[0].store();
            let orders = part_layout_json(store.part_layouts());
            let rf = gg_graph::replication::replication_factor(&w.el, store.edge_parts());
            layout_meta = Some((orders, rf));
        }
        let mut runners: Vec<_> = engines
            .iter()
            .map(|engine| {
                move || match algo {
                    Algorithm::Bfs => {
                        let _ = gg_algorithms::bfs(engine, w.source);
                    }
                    _ => {
                        let _ = gg_algorithms::pagerank(engine, 10);
                    }
                }
            })
            .collect();
        let all_stats = gg_bench::time_stats_interleaved(args.reps, &mut runners);
        drop(runners);
        for ((&(label, _), engine), stats) in modes.iter().zip(&engines).zip(&all_stats) {
            // Counters: one extra counted run per mode after timing, so the
            // table reports a single run's chunk/steal totals.
            engine.work_counters().reset();
            match algo {
                Algorithm::Bfs => {
                    let _ = gg_algorithms::bfs(engine, w.source);
                }
                _ => {
                    let _ = gg_algorithms::pagerank(engine, 10);
                }
            }
            let c = engine.work_counters();
            // The persistent pool: spawns stays at the thread count no
            // matter how many rounds (epochs) ran.
            let (spawns, epochs) = (engine.pool().spawns(), engine.pool().epochs());
            t.row(vec![
                algo.code().into(),
                label.into(),
                fmt_secs(stats.min),
                fmt_secs(stats.mean),
                c.chunks().to_string(),
                c.hub_subchunks().to_string(),
                c.steals().to_string(),
                c.cross_domain_steals().to_string(),
                c.max_chunk_edges().to_string(),
                format!("{:.1}", c.mean_chunk_edges()),
                format!("{spawns}/{epochs}"),
            ]);
            let samples = stats
                .samples
                .iter()
                .map(|s| format!("{s:.6}"))
                .collect::<Vec<_>>()
                .join(", ");
            json_rows.push(format!(
                "    {{\"algorithm\": \"{}\", \"mode\": \"{}\", \"time_s\": {:.6}, \
                 \"time_min_s\": {:.6}, \"time_mean_s\": {:.6}, \"samples\": [{}], \
                 \"chunks\": {}, \"hub_subchunks\": {}, \"steals\": {}, \
                 \"cross_domain_steals\": {}, \"max_chunk_edges\": {}, \
                 \"mean_chunk_edges\": {:.1}, \"fused_lanes\": {}, \
                 \"lane_union_words\": {}, \"pool_spawns\": {}, \"pool_epochs\": {}}}",
                algo.code(),
                label,
                stats.median,
                stats.min,
                stats.mean,
                samples,
                c.chunks(),
                c.hub_subchunks(),
                c.steals(),
                c.cross_domain_steals(),
                c.max_chunk_edges(),
                c.mean_chunk_edges(),
                c.fused_lanes(),
                c.lane_union_words(),
                spawns,
                epochs,
            ));
            per_mode.push((label.to_string(), stats.min));
        }
        println!(
            "{}: chunked vs partition-granular speedup {:.3}x (min-of-reps)",
            algo.code(),
            per_mode[0].1 / per_mode[1].1.max(1e-12)
        );
        if per_mode.len() > 2 {
            println!(
                "{}: adaptive vs partition-granular speedup {:.3}x (min-of-reps)",
                algo.code(),
                per_mode[0].1 / per_mode[2].1.max(1e-12)
            );
        }
    }
    t.print();
    let (part_layouts, replication) = layout_meta.unwrap_or_default();
    let json = format!(
        "{{\n  \"bench\": \"load_balance\",\n  \"scenario\": \"{}\",\n  \"alpha\": {},\n  \
         \"hubs\": {},\n  \"vertices\": {},\n  \"edges\": {},\n  \"partitions\": {},\n  \
         \"threads\": {},\n  \"reps\": {},\n  \"fixed_chunk_edges\": {},\n  \
         \"top_hub_in_degree\": {},\n  \"layout_policy\": \"{}\",\n  \
         \"part_layouts\": [{}],\n  \"replication_factor\": {:.4},\n  \
         \"results\": [\n{}\n  ]\n}}\n",
        scenario,
        args.alpha,
        args.hubs,
        n,
        el.num_edges(),
        partitions,
        args.threads,
        args.reps,
        fixed_cap,
        top_hub_in_degree,
        args.layout_policy().label(),
        part_layouts,
        replication,
        json_rows.join(",\n")
    );
    let path = "BENCH_load_balance.json";
    match std::fs::write(path, &json) {
        Ok(()) => println!("\nwrote {path}\n"),
        Err(e) => eprintln!("\nfailed to write {path}: {e}\n"),
    }
}

/// The query-fusion bench: K point queries (BFS from K spread sources) as
/// one fused K-lane traversal vs K sequential single-source runs. The
/// fused traversal scans each edge once per *union*-frontier round instead
/// of once per query, so edges traversed — and with them wall-clock —
/// drop by up to K× on overlapping queries. Every fused lane's distance
/// vector is checked against its single-source oracle (exit non-zero on
/// any mismatch); each K runs one untimed warmup plus `--reps` interleaved
/// timed reps per mode, with min-of-reps the headline, plus one counted
/// run per mode for the edge/lane tallies. Writes
/// `BENCH_query_fusion.json` covering the powerlaw and smallworld
/// scenarios (or just `--scenario` when given).
fn query_fusion(args: &Args) {
    use gg_core::config::{Config, ExecutorKind};
    use gg_core::engine::{Engine, GraphGrind2};

    println!("## Query-fusion bench — fused K-lane BFS vs K sequential runs\n");
    let scenarios: Vec<String> = if args.scenario.is_empty() {
        vec!["powerlaw".to_string(), "smallworld".to_string()]
    } else {
        vec![args.scenario.clone()]
    };
    let lane_counts = [1usize, 4, 16, 64];
    let partitions = args.partitions_or(16);
    let mut scenario_blocks: Vec<String> = Vec::new();
    let mut oracle_failures = 0usize;
    for scenario in &scenarios {
        let el = gg_bench::replay::scenario_graph(scenario, args.scale);
        println!(
            "### {scenario}: {} vertices, {} edges, {} partitions, {} threads",
            el.num_vertices(),
            el.num_edges(),
            partitions,
            args.threads
        );
        let mut t = Table::new(&[
            "K",
            "fused min (s)",
            "seq min (s)",
            "speedup",
            "fused edges",
            "seq edges",
            "edge ratio",
            "fused lanes",
            "lane words",
            "oracle",
        ]);
        let mut json_rows: Vec<String> = Vec::new();
        let mut layout_meta: Option<(String, f64)> = None;
        for &k in &lane_counts {
            let sources = gg_bench::replay::fused_sources(&el, k);
            let cfg = Config {
                threads: args.threads,
                num_partitions: partitions,
                numa: NumaTopology::paper_machine(),
                executor: ExecutorKind::Partitioned,
                chunk_edges: args.chunk.unwrap_or(gg_core::config::ChunkCap::Auto),
                layout: args.layout_policy(),
                ..Config::default()
            };
            let fused_engine = GraphGrind2::new(&el, cfg.clone());
            let seq_engine = GraphGrind2::new(&el, cfg);
            // Effective layout + partition metadata for this scenario's
            // JSON block (identical across K).
            if layout_meta.is_none() {
                let store = fused_engine.store();
                let orders = part_layout_json(store.part_layouts());
                let rf = gg_graph::replication::replication_factor(&el, store.edge_parts());
                layout_meta = Some((orders, rf));
            }
            let mut runners: Vec<Box<dyn FnMut()>> = vec![
                Box::new(|| {
                    let _ = gg_algorithms::fused_bfs(&fused_engine, &sources);
                }),
                Box::new(|| {
                    for &s in &sources {
                        let _ = gg_algorithms::bfs(&seq_engine, s);
                    }
                }),
            ];
            let stats = gg_bench::time_stats_interleaved(args.reps, &mut runners);
            drop(runners);
            let (fused_stats, seq_stats) = (&stats[0], &stats[1]);

            // One counted run per mode for the edge tallies, doubling as
            // the per-lane oracle check.
            fused_engine.work_counters().reset();
            let fused_res = gg_algorithms::fused_bfs(&fused_engine, &sources);
            let fc = fused_engine.work_counters();
            let (fused_edges, fused_lanes, lane_words) =
                (fc.edges(), fc.fused_lanes(), fc.lane_union_words());
            seq_engine.work_counters().reset();
            let mut lanes_ok = true;
            for (lane, &s) in sources.iter().enumerate() {
                let solo = gg_algorithms::bfs(&seq_engine, s);
                if solo.level != fused_res.dist[lane] {
                    lanes_ok = false;
                    eprintln!(
                        "ORACLE MISMATCH: {scenario} K={k} lane {lane} (source {s}) \
                         disagrees with its single-source BFS"
                    );
                }
            }
            let seq_edges = seq_engine.work_counters().edges();
            if !lanes_ok {
                oracle_failures += 1;
            }
            let edge_ratio = seq_edges as f64 / fused_edges.max(1) as f64;
            let speedup = seq_stats.min / fused_stats.min.max(1e-12);
            t.row(vec![
                k.to_string(),
                fmt_secs(fused_stats.min),
                fmt_secs(seq_stats.min),
                format!("{speedup:.3}x"),
                fused_edges.to_string(),
                seq_edges.to_string(),
                format!("{edge_ratio:.2}x"),
                fused_lanes.to_string(),
                lane_words.to_string(),
                if lanes_ok { "ok" } else { "MISMATCH" }.into(),
            ]);
            let fused_samples = fused_stats
                .samples
                .iter()
                .map(|s| format!("{s:.6}"))
                .collect::<Vec<_>>()
                .join(", ");
            let seq_samples = seq_stats
                .samples
                .iter()
                .map(|s| format!("{s:.6}"))
                .collect::<Vec<_>>()
                .join(", ");
            json_rows.push(format!(
                "      {{\"k\": {k}, \"fused_min_s\": {:.6}, \"fused_mean_s\": {:.6}, \
                 \"fused_samples\": [{fused_samples}], \"seq_min_s\": {:.6}, \
                 \"seq_mean_s\": {:.6}, \"seq_samples\": [{seq_samples}], \
                 \"speedup\": {speedup:.4}, \"fused_edges\": {fused_edges}, \
                 \"seq_edges\": {seq_edges}, \"edge_ratio\": {edge_ratio:.4}, \
                 \"fused_lanes\": {fused_lanes}, \"lane_union_words\": {lane_words}, \
                 \"lanes_match_oracle\": {lanes_ok}}}",
                fused_stats.min, fused_stats.mean, seq_stats.min, seq_stats.mean,
            ));
        }
        t.print();
        println!();
        let (part_layouts, replication) = layout_meta.unwrap_or_default();
        scenario_blocks.push(format!(
            "    {{\"scenario\": \"{}\", \"vertices\": {}, \"edges\": {}, \
             \"layout_policy\": \"{}\", \"part_layouts\": [{}], \
             \"replication_factor\": {:.4}, \"results\": [\n{}\n    ]}}",
            scenario,
            el.num_vertices(),
            el.num_edges(),
            args.layout_policy().label(),
            part_layouts,
            replication,
            json_rows.join(",\n")
        ));
    }
    let json = format!(
        "{{\n  \"bench\": \"query_fusion\",\n  \"partitions\": {},\n  \"threads\": {},\n  \
         \"reps\": {},\n  \"scale\": {},\n  \"scenarios\": [\n{}\n  ]\n}}\n",
        partitions,
        args.threads,
        args.reps,
        args.scale,
        scenario_blocks.join(",\n")
    );
    let path = "BENCH_query_fusion.json";
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}\n"),
        Err(e) => eprintln!("failed to write {path}: {e}\n"),
    }
    if oracle_failures > 0 {
        eprintln!("QUERY_FUSION FAILED: {oracle_failures} K-batch(es) diverged from the oracle");
        std::process::exit(1);
    }
}

/// The query-serving bench: open-loop arrival traces against the
/// admission-controlled fused engine (`gg_bench::serve`), one-per-query
/// baseline vs 64-lane fused batching vs fused with a round cap.
///
/// Measured mode probes the baseline's saturation throughput on an
/// all-at-once burst, then serves the same query trace at {0.5, 1, 2, 4}×
/// that capacity under every mode, reporting queries/sec, p50/p99
/// latency, and the batching counters, and writing `BENCH_serve.json`.
/// At the saturation rate the fused run is oracle-checked lane-for-lane
/// against standalone K = 1 runs, and `GG_BENCH_GUARD` enforces that
/// fused batching beats the baseline on queries/sec (fractional slack as
/// in `layout_advisor`). Modes must also agree digest-for-digest at every
/// rate — both failure kinds exit non-zero.
///
/// `--virtual` switches to the deterministic virtual clock and prints one
/// `VQ` line per (mode, query) — digest, retirement round, batch id,
/// completion-clock bits — which CI diffs across `GG_THREADS` settings.
fn serve_bench(args: &Args) {
    use gg_bench::serve::{
        arrival_trace, serve, AdmissionPolicy, CostModel, PprParams, QueryKind, ServeConfig,
        ServeOutcome,
    };
    use gg_core::config::{Config, ExecutorKind};
    use gg_core::engine::{Engine, GraphGrind2};

    println!("## Query serving — admission control over the fused engine\n");
    let scenario = args.scenario_or("powerlaw");
    let el = gg_bench::replay::scenario_graph(&scenario, args.scale);
    let partitions = args.partitions_or(16);
    let cfg = Config {
        threads: args.threads,
        num_partitions: partitions,
        numa: NumaTopology::paper_machine(),
        executor: ExecutorKind::Partitioned,
        chunk_edges: args.chunk.unwrap_or(gg_core::config::ChunkCap::Auto),
        layout: args.layout_policy(),
        ..Config::default()
    };
    let engine = GraphGrind2::new(&el, cfg);
    let num_queries = args
        .queries
        .unwrap_or_else(|| ((256.0 * args.scale.sqrt()) as usize).clamp(32, 4096));
    let round_cap = args.round_cap.unwrap_or(6);
    let ppr = PprParams::default();
    let seed = 0x5E27E_u64;
    println!(
        "### {scenario}: {} vertices, {} edges, {} partitions, {} threads, {} queries",
        el.num_vertices(),
        el.num_edges(),
        partitions,
        args.threads,
        num_queries
    );
    let policies = |max_batch_age: f64| -> [(&'static str, AdmissionPolicy); 3] {
        [
            ("baseline", AdmissionPolicy::baseline()),
            ("fused", AdmissionPolicy::fused(max_batch_age)),
            (
                "fused-capped",
                AdmissionPolicy {
                    max_lanes: 64,
                    max_batch_age,
                    round_cap: Some(round_cap),
                },
            ),
        ]
    };

    if args.virtual_cost {
        // Deterministic smoke: virtual clock, one saturating rate, one
        // `VQ` line per (mode, query). Every field is a pure function of
        // the trace and the engine's deterministic round results, so the
        // full output diffs clean across GG_THREADS / chunk caps.
        let cost = CostModel::Virtual {
            round_base: 1e-4,
            per_edge: 1e-7,
        };
        let trace = arrival_trace(
            num_queries,
            engine.num_vertices(),
            2000.0,
            seed,
            &QueryKind::ALL,
        );
        let mut oracle_failures = 0usize;
        for (mode, policy) in policies(16.0 / 2000.0) {
            let out = serve(
                &engine,
                &trace,
                &ServeConfig {
                    policy,
                    cost,
                    ppr,
                    check_oracle: true,
                },
            );
            oracle_failures += out.oracle_failures;
            for c in &out.completions {
                println!(
                    "VQ {mode} id={} kind={} src={} digest={:016x} round={} batch={} t={:016x}",
                    c.id,
                    c.kind.label(),
                    c.source,
                    c.digest,
                    c.retire_round,
                    c.batch,
                    c.completed.to_bits()
                );
            }
            println!(
                "VQ-SUMMARY {mode} qps={:.3} p50={:.6} p99={:.6} batches={} occupancy={:.3} \
                 retired_early={} rounds={}",
                out.qps(),
                out.latency_percentile(50.0),
                out.latency_percentile(99.0),
                out.batches,
                out.mean_lane_occupancy,
                out.lanes_retired_early,
                out.batch_rounds
            );
        }
        if oracle_failures > 0 {
            eprintln!(
                "SERVE FAILED: {oracle_failures} quer(ies) diverged from the standalone oracle"
            );
            std::process::exit(1);
        }
        println!();
        return;
    }

    // Capacity probe: the baseline's saturation throughput on an
    // all-at-once burst fixes the rate grid, so "2× capacity" means the
    // same thing on any machine.
    let burst = arrival_trace(
        num_queries,
        engine.num_vertices(),
        1e9,
        seed,
        &QueryKind::ALL,
    );
    let probe = serve(
        &engine,
        &burst,
        &ServeConfig {
            policy: AdmissionPolicy::baseline(),
            cost: CostModel::Measured,
            ppr,
            check_oracle: false,
        },
    );
    let capacity = probe.qps().max(1e-6);
    println!("baseline capacity ≈ {capacity:.1} q/s (burst probe)\n");

    let mut t = Table::new(&[
        "rate (q/s)",
        "mode",
        "qps",
        "p50 (s)",
        "p99 (s)",
        "batches",
        "occupancy",
        "early",
        "rounds",
    ]);
    let rate_multipliers = [0.5, 1.0, 2.0, 4.0];
    let mut rate_blocks: Vec<String> = Vec::new();
    let mut digest_mismatches = 0usize;
    let mut oracle_failures = 0usize;
    let mut saturation_qps: Vec<(String, f64)> = Vec::new();
    for (ri, mult) in rate_multipliers.iter().enumerate() {
        let rate = capacity * mult;
        let max_batch_age = 32.0 / rate;
        let trace = arrival_trace(
            num_queries,
            engine.num_vertices(),
            rate,
            seed,
            &QueryKind::ALL,
        );
        let saturation = ri == rate_multipliers.len() - 1;
        let mut mode_rows: Vec<String> = Vec::new();
        let mut fused_digests: Vec<u64> = Vec::new();
        for (mode, policy) in policies(max_batch_age) {
            // Oracle-check the fused run once, at the saturation rate —
            // the regime with the widest batches and the most early
            // retirement; cross-mode digest equality covers the rest.
            let check_oracle = saturation && mode == "fused";
            let out: ServeOutcome = serve(
                &engine,
                &trace,
                &ServeConfig {
                    policy,
                    cost: CostModel::Measured,
                    ppr,
                    check_oracle,
                },
            );
            oracle_failures += out.oracle_failures;
            if mode == "fused" {
                fused_digests = out.completions.iter().map(|c| c.digest).collect();
            } else {
                for (c, &want) in out.completions.iter().zip(&fused_digests) {
                    if !fused_digests.is_empty() && c.digest != want {
                        digest_mismatches += 1;
                        eprintln!(
                            "DIGEST MISMATCH: rate {rate:.1} mode {mode} query {} \
                             disagrees with the fused run",
                            c.id
                        );
                    }
                }
            }
            if saturation {
                saturation_qps.push((mode.to_string(), out.qps()));
            }
            t.row(vec![
                format!("{rate:.1} ({mult}x)"),
                mode.to_string(),
                format!("{:.1}", out.qps()),
                fmt_secs(out.latency_percentile(50.0)),
                fmt_secs(out.latency_percentile(99.0)),
                out.batches.to_string(),
                format!("{:.2}", out.mean_lane_occupancy),
                out.lanes_retired_early.to_string(),
                out.batch_rounds.to_string(),
            ]);
            mode_rows.push(format!(
                "        {{\"mode\": \"{mode}\", \"qps\": {:.4}, \"p50_s\": {:.6}, \
                 \"p99_s\": {:.6}, \"makespan_s\": {:.6}, \"batches\": {}, \
                 \"mean_lane_occupancy\": {:.4}, \"batch_rounds\": {}, \
                 \"lanes_retired_early\": {}, \"oracle_checked\": {check_oracle}, \
                 \"oracle_ok\": {}}}",
                out.qps(),
                out.latency_percentile(50.0),
                out.latency_percentile(99.0),
                out.makespan,
                out.batches,
                out.mean_lane_occupancy,
                out.batch_rounds,
                out.lanes_retired_early,
                out.oracle_failures == 0,
            ));
        }
        rate_blocks.push(format!(
            "    {{\"rate_qps\": {rate:.4}, \"rate_multiplier\": {mult}, \
             \"max_batch_age_s\": {max_batch_age:.6}, \"modes\": [\n{}\n    ]}}",
            mode_rows.join(",\n")
        ));
    }
    t.print();
    println!();

    let base_sat = saturation_qps
        .iter()
        .find(|(m, _)| m == "baseline")
        .map(|&(_, q)| q)
        .unwrap_or(0.0);
    let fused_sat = saturation_qps
        .iter()
        .filter(|(m, _)| m != "baseline")
        .map(|&(_, q)| q)
        .fold(0.0f64, f64::max);
    let winner = if fused_sat >= base_sat {
        "fused"
    } else {
        "baseline"
    };
    println!(
        "at saturation (4x): fused {fused_sat:.1} q/s vs baseline {base_sat:.1} q/s \
         ({:.2}x) — winner: {winner}\n",
        fused_sat / base_sat.max(1e-12)
    );

    let json = format!(
        "{{\n  \"bench\": \"serve\",\n  \"scenario\": \"{scenario}\",\n  \"vertices\": {},\n  \
         \"edges\": {},\n  \"partitions\": {partitions},\n  \"threads\": {},\n  \
         \"scale\": {},\n  \"queries\": {num_queries},\n  \"round_cap\": {round_cap},\n  \
         \"baseline_capacity_qps\": {capacity:.4},\n  \"rates\": [\n{}\n  ],\n  \
         \"fused_qps_at_saturation\": {fused_sat:.4},\n  \
         \"baseline_qps_at_saturation\": {base_sat:.4},\n  \
         \"winner_at_saturation\": \"{winner}\",\n  \"oracle_ok\": {},\n  \
         \"digest_mismatches\": {digest_mismatches}\n}}\n",
        el.num_vertices(),
        el.num_edges(),
        args.threads,
        args.scale,
        rate_blocks.join(",\n"),
        oracle_failures == 0,
    );
    let path = "BENCH_serve.json";
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}\n"),
        Err(e) => eprintln!("failed to write {path}: {e}\n"),
    }

    let mut failed = false;
    if oracle_failures > 0 {
        eprintln!("SERVE FAILED: {oracle_failures} quer(ies) diverged from the standalone oracle");
        failed = true;
    }
    if digest_mismatches > 0 {
        eprintln!("SERVE FAILED: {digest_mismatches} cross-mode digest mismatch(es)");
        failed = true;
    }
    if let Some(tol) = bench_guard_tolerance() {
        if fused_sat < base_sat * (1.0 - tol) {
            eprintln!(
                "SERVE GUARD FAILED: fused {fused_sat:.1} q/s at saturation is more than \
                 {:.0}% below baseline {base_sat:.1} q/s (set GG_BENCH_GUARD=off to disable)",
                tol * 100.0
            );
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
}

/// The guard tolerance of `layout_advisor`'s never-worst check and
/// `serve`'s fused-beats-baseline check, from `GG_BENCH_GUARD`: a
/// fractional slack on the measured times (default 0.10 = 10%); `off` /
/// `0` disables the check entirely (the CI smoke setting — `--tiny`
/// timings are pure noise).
fn bench_guard_tolerance() -> Option<f64> {
    match std::env::var("GG_BENCH_GUARD") {
        Err(_) => Some(0.10),
        Ok(v) => match v.trim() {
            "off" | "0" => None,
            t => Some(t.parse::<f64>().unwrap_or(0.10)),
        },
    }
}

/// Rank positions of `values` ascending: `ranks[i]` is the rank of
/// `values[i]` (0 = smallest). Ties resolve by index, which is fine for
/// the measured-float inputs this serves.
fn rank_positions(values: &[f64]) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..values.len()).collect();
    idx.sort_by(|&a, &b| values[a].total_cmp(&values[b]));
    let mut ranks = vec![0usize; values.len()];
    for (rank, &i) in idx.iter().enumerate() {
        ranks[i] = rank;
    }
    ranks
}

/// The layout-advisor bench — the tentpole deliverable closing the
/// memsim loop. Per scenario (powerlaw / grid / smallworld, or just
/// `--scenario`):
///
/// * the **predicted** side runs the sampled advisor
///   (`LayoutPolicy::Advised`) and reports per-partition MPKI for every
///   candidate [`EdgeOrder`] plus the edge-weighted aggregate;
/// * the **measured** side times monolithic PR forced onto the COO+na
///   kernel (the kernel whose scan order the layout controls, Figure 7's
///   setup) under each forced uniform layout *and* the advised
///   per-partition mix, interleaved min-of-reps;
/// * the guard asserts the advisor's aggregate pick is never the
///   measured-worst layout and the advised mix never loses to the worst
///   uniform layout, both within the `GG_BENCH_GUARD` tolerance
///   (exit non-zero on violation);
/// * the Spearman rank correlation between predicted aggregate MPKI and
///   measured time over the candidates lands in the JSON.
///
/// Writes `BENCH_layout_advisor.json`.
fn layout_advisor(args: &Args) {
    use gg_core::config::Config;
    use gg_core::engine::GraphGrind2;

    /// The advisor's trace sampling rate: cheap (≈ a quarter of the
    /// edges simulated once per candidate) yet far above the
    /// `MIN_SAMPLED_EDGES` floor at bench scales.
    const SAMPLE_RATE: f64 = 0.25;
    const PR_ITERS: usize = 10;

    let tolerance = bench_guard_tolerance();
    println!("## Layout advisor — predicted per-partition MPKI vs measured wall-clock\n");
    match tolerance {
        Some(t) => println!(
            "never-worst guard armed: {:.0}% tolerance (override via GG_BENCH_GUARD, off/0 disables)\n",
            t * 100.0
        ),
        None => println!("never-worst guard disabled via GG_BENCH_GUARD\n"),
    }
    let scenarios: Vec<String> = if args.scenario.is_empty() {
        vec!["powerlaw".into(), "grid".into(), "smallworld".into()]
    } else {
        vec![args.scenario.clone()]
    };
    let partitions = args.partitions_or(8);
    let candidates = EdgeOrder::all();
    let mut scenario_blocks: Vec<String> = Vec::new();
    let mut violations = 0usize;
    for scenario in &scenarios {
        let el = gg_bench::replay::scenario_graph(scenario, args.scale);
        println!(
            "### {scenario}: {} vertices, {} edges, {} partitions, {} threads",
            el.num_vertices(),
            el.num_edges(),
            partitions,
            args.threads
        );
        let w = Workload::prepare(&el, Algorithm::Pr);
        let base = Config {
            threads: args.threads,
            num_partitions: partitions,
            numa: NumaTopology::paper_machine(),
            ..Config::default()
        }
        .with_forced(ForcedKernel::CooNoAtomic);

        // One engine per forced uniform layout plus the advised build;
        // the advised engine's store keeps the advisor's full verdict.
        let mut engines: Vec<(String, GraphGrind2)> = candidates
            .iter()
            .map(|&order| {
                let cfg = base.clone().with_layout(LayoutPolicy::Fixed(order));
                (order.label().to_string(), GraphGrind2::new(&w.el, cfg))
            })
            .collect();
        let advised_cfg = base.clone().with_layout(LayoutPolicy::Advised {
            sample_rate: SAMPLE_RATE,
        });
        engines.push(("advised".to_string(), GraphGrind2::new(&w.el, advised_cfg)));
        let advice = engines
            .last()
            .unwrap()
            .1
            .store()
            .layout_advice()
            .expect("advised build keeps its verdict")
            .clone();

        // Predicted side: per-partition candidate MPKIs and the
        // edge-weighted aggregate per candidate.
        let mut pt = Table::new(&[
            "partition",
            "edges",
            "sampled",
            "cache lines",
            "Source MPKI",
            "Hilbert MPKI",
            "Destination MPKI",
            "chosen",
        ]);
        let mut advice_rows: Vec<String> = Vec::new();
        let mut agg = vec![0.0f64; candidates.len()];
        let mut agg_edges = 0u64;
        for adv in &advice.partitions {
            let mut cells = vec![
                adv.partition.to_string(),
                adv.total_edges.to_string(),
                adv.sampled_edges.to_string(),
                adv.cache_lines.to_string(),
            ];
            if adv.candidates.is_empty() {
                cells.extend(["-".into(), "-".into(), "-".into(), "-".into()]);
            } else {
                for c in &adv.candidates {
                    cells.push(format!("{:.3}", c.mpki));
                }
                cells.push(adv.chosen.label().into());
                for (slot, c) in adv.candidates.iter().enumerate() {
                    agg[slot] += c.mpki * adv.total_edges as f64;
                }
                agg_edges += adv.total_edges as u64;
            }
            pt.row(cells);
            let cand_json = adv
                .candidates
                .iter()
                .map(|c| {
                    format!(
                        "{{\"order\": \"{}\", \"mpki\": {:.4}, \"hit_ratio\": {:.4}}}",
                        c.order.label(),
                        c.mpki,
                        c.hit_ratio
                    )
                })
                .collect::<Vec<_>>()
                .join(", ");
            advice_rows.push(format!(
                "        {{\"partition\": {}, \"total_edges\": {}, \"sampled_edges\": {}, \
                 \"cache_lines\": {}, \"chosen\": \"{}\", \"candidates\": [{}]}}",
                adv.partition,
                adv.total_edges,
                adv.sampled_edges,
                adv.cache_lines,
                adv.chosen.label(),
                cand_json
            ));
        }
        pt.print();
        for slot_mpki in agg.iter_mut() {
            *slot_mpki /= (agg_edges as f64).max(1.0);
        }
        let pick_idx = (0..candidates.len())
            .min_by(|&a, &b| agg[a].total_cmp(&agg[b]))
            .unwrap();
        let pick = candidates[pick_idx];
        println!(
            "edge-weighted predicted MPKI: {} → advisor pick {}",
            candidates
                .iter()
                .zip(&agg)
                .map(|(o, m)| format!("{} {:.3}", o.label(), m))
                .collect::<Vec<_>>()
                .join(", "),
            pick.label()
        );

        // Measured side: interleaved min-of-reps PR per engine.
        let mut runners: Vec<Box<dyn FnMut()>> = engines
            .iter()
            .map(|(_, engine)| {
                Box::new(move || {
                    let _ = gg_algorithms::pagerank(engine, PR_ITERS);
                }) as Box<dyn FnMut()>
            })
            .collect();
        let stats = gg_bench::time_stats_interleaved(args.reps, &mut runners);
        drop(runners);
        let mut mt = Table::new(&["layout", "min (s)", "mean (s)"]);
        let mut measured_rows: Vec<String> = Vec::new();
        for ((label, _), s) in engines.iter().zip(&stats) {
            mt.row(vec![label.clone(), fmt_secs(s.min), fmt_secs(s.mean)]);
            let samples = s
                .samples
                .iter()
                .map(|x| format!("{x:.6}"))
                .collect::<Vec<_>>()
                .join(", ");
            measured_rows.push(format!(
                "        {{\"layout\": \"{label}\", \"min_s\": {:.6}, \"mean_s\": {:.6}, \
                 \"samples\": [{samples}]}}",
                s.min, s.mean
            ));
        }
        mt.print();

        let forced_times: Vec<f64> = stats[..candidates.len()].iter().map(|s| s.min).collect();
        let advised_time = stats[candidates.len()].min;
        let worst_idx = (0..candidates.len())
            .max_by(|&a, &b| forced_times[a].total_cmp(&forced_times[b]))
            .unwrap();
        // The pick is *robustly* the measured-worst only if it loses to
        // every other forced layout by more than the tolerance.
        let other_max = forced_times
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != pick_idx)
            .map(|(_, &t)| t)
            .fold(0.0f64, f64::max);
        let tol = tolerance.unwrap_or(f64::INFINITY);
        let pick_is_worst = tolerance.is_some() && forced_times[pick_idx] > (1.0 + tol) * other_max;
        let advised_over_worst =
            tolerance.is_some() && advised_time > (1.0 + tol) * forced_times[worst_idx];
        if pick_is_worst {
            violations += 1;
            eprintln!(
                "LAYOUT_ADVISOR GUARD: {scenario}: pick {} is the measured-worst layout \
                 ({} vs next-worst {})",
                pick.label(),
                fmt_secs(forced_times[pick_idx]),
                fmt_secs(other_max)
            );
        }
        if advised_over_worst {
            violations += 1;
            eprintln!(
                "LAYOUT_ADVISOR GUARD: {scenario}: advised mix {} lost to the worst uniform \
                 layout {} ({})",
                fmt_secs(advised_time),
                candidates[worst_idx].label(),
                fmt_secs(forced_times[worst_idx])
            );
        }

        // Rank agreement: Spearman over the candidate set between
        // predicted aggregate MPKI and measured time.
        let pr = rank_positions(&agg);
        let mr = rank_positions(&forced_times);
        let n = candidates.len() as f64;
        let d2: f64 = pr
            .iter()
            .zip(&mr)
            .map(|(&a, &b)| {
                let d = a as f64 - b as f64;
                d * d
            })
            .sum();
        let rho = 1.0 - 6.0 * d2 / (n * (n * n - 1.0));
        println!(
            "advisor pick {} | measured worst {} | advised {} | Spearman rho {:.2}\n",
            pick.label(),
            candidates[worst_idx].label(),
            fmt_secs(advised_time),
            rho
        );

        let agg_json = candidates
            .iter()
            .zip(&agg)
            .map(|(o, m)| format!("{{\"order\": \"{}\", \"mpki\": {m:.4}}}", o.label()))
            .collect::<Vec<_>>()
            .join(", ");
        scenario_blocks.push(format!(
            "    {{\"scenario\": \"{}\", \"vertices\": {}, \"edges\": {}, \"partitions\": {}, \
             \"sample_rate\": {}, \"advice\": [\n{}\n      ], \
             \"aggregate_predicted_mpki\": [{}], \"advisor_pick\": \"{}\", \
             \"measured\": [\n{}\n      ], \"measured_worst\": \"{}\", \
             \"pick_is_measured_worst\": {}, \"advised_beats_worst\": {}, \
             \"spearman_rho\": {:.4}}}",
            scenario,
            el.num_vertices(),
            el.num_edges(),
            advice.partitions.len(),
            advice.sample_rate,
            advice_rows.join(",\n"),
            agg_json,
            pick.label(),
            measured_rows.join(",\n"),
            candidates[worst_idx].label(),
            pick_is_worst,
            !advised_over_worst,
            rho
        ));
    }
    let json = format!(
        "{{\n  \"bench\": \"layout_advisor\",\n  \"scale\": {},\n  \"threads\": {},\n  \
         \"reps\": {},\n  \"partitions\": {},\n  \"pr_iters\": {},\n  \"guard\": \"{}\",\n  \
         \"violations\": {},\n  \"scenarios\": [\n{}\n  ]\n}}\n",
        args.scale,
        args.threads,
        args.reps,
        partitions,
        PR_ITERS,
        tolerance.map_or("off".to_string(), |t| format!("{t}")),
        violations,
        scenario_blocks.join(",\n")
    );
    let path = "BENCH_layout_advisor.json";
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}\n"),
        Err(e) => eprintln!("failed to write {path}: {e}\n"),
    }
    if violations > 0 {
        eprintln!("LAYOUT_ADVISOR FAILED: {violations} never-worst guard violation(s)");
        std::process::exit(1);
    }
}

/// The per-chunk overhead micro-bench calibrating
/// `plan::HUB_SPLIT_OVERHEAD_EDGES`: how many sequential CSC edge visits
/// cost as much as scheduling one extra work-stealing chunk? The hub-split
/// cost model should only split a hub when the predicted imbalance
/// (`in_degree - cap` edges) exceeds this break-even point, otherwise the
/// split's dispatch cost outweighs the balance it buys.
///
/// Two measurements, both min-of-reps over `--reps` runs with a warmup:
/// * **per-edge cost** — a PR-style indexed fold (`acc += contrib[src[e]]`)
///   over a shuffled index array, the inner loop a chunk actually runs;
/// * **per-chunk cost** — a `run_stealing` epoch of no-op tasks on a
///   `--threads`-wide pool, divided by the task count.
fn chunk_overhead(args: &Args) {
    use gg_runtime::pool::Pool;

    println!("## Chunk-overhead micro-bench — calibrates plan::HUB_SPLIT_OVERHEAD_EDGES\n");
    let edges = ((1_000_000.0 * args.scale) as usize).clamp(10_000, 8_000_000);
    let tasks = 2048usize;
    // A shuffled source-index array reproduces the irregular gather of a
    // real CSC scan (sequential src would let the prefetcher flatter the
    // per-edge cost).
    let contrib: Vec<f64> = (0..edges).map(|i| 1.0 / (i + 1) as f64).collect();
    let src: Vec<u32> = {
        let mut v: Vec<u32> = (0..edges as u32).collect();
        let mut state = 0x9e3779b97f4a7c15u64;
        for i in (1..v.len()).rev() {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            v.swap(i, (state % (i as u64 + 1)) as usize);
        }
        v
    };
    let sink = std::sync::atomic::AtomicU64::new(0);
    let edge_stats = gg_bench::time_stats(args.reps, || {
        let mut acc = 0.0f64;
        for &s in &src {
            acc += contrib[s as usize];
        }
        sink.fetch_add(acc.to_bits(), std::sync::atomic::Ordering::Relaxed);
    });
    let per_edge_s = edge_stats.min / edges as f64;

    let pool = Pool::new(args.threads);
    let task_domain = vec![0usize; tasks];
    let chunk_stats = gg_bench::time_stats(args.reps, || {
        let (r, _) = pool.run_stealing(1, &task_domain, |t| t as u64);
        sink.fetch_add(r.len() as u64, std::sync::atomic::Ordering::Relaxed);
    });
    let per_chunk_s = chunk_stats.min / tasks as f64;

    let break_even = if per_edge_s > 0.0 {
        per_chunk_s / per_edge_s
    } else {
        0.0
    };
    let mut t = Table::new(&["quantity", "value"]);
    t.row(vec![
        "per-edge cost (ns)".into(),
        format!("{:.3}", per_edge_s * 1e9),
    ]);
    t.row(vec![
        "per-chunk cost (ns)".into(),
        format!("{:.1}", per_chunk_s * 1e9),
    ]);
    t.row(vec![
        "break-even (edges/chunk)".into(),
        format!("{break_even:.0}"),
    ]);
    t.row(vec![
        "HUB_SPLIT_OVERHEAD_EDGES".into(),
        gg_core::plan::HUB_SPLIT_OVERHEAD_EDGES.to_string(),
    ]);
    t.print();
    println!(
        "\ncost model splits a hub only when in_degree - cap > {} \
         (compiled constant; re-calibrate from the break-even row)\n",
        gg_core::plan::HUB_SPLIT_OVERHEAD_EDGES
    );
}

/// §III.C / §IV.A: speedup from removing atomics (COO+a vs COO+na).
fn atomics(args: &Args) {
    println!("## Atomics ablation — COO+a vs COO+na at 48+ partitions (paper: 6.1-23.7%)\n");
    let base = Dataset::Twitter.build(args.scale * 0.5);
    let mut t = Table::new(&["Algorithm", "COO+a", "COO+na", "speedup"]);
    for algo in Algorithm::all() {
        let w = Workload::prepare(&base, algo);
        let mut times = Vec::new();
        for force in [ForcedKernel::CooAtomic, ForcedKernel::CooNoAtomic] {
            let rc = RunConfig {
                partitions: 96,
                force: Some(force),
                ..RunConfig::new(args.threads)
            };
            times.push(measure(EngineKind::Gg2, &w, &rc, args.reps));
        }
        t.row(vec![
            algo.code().into(),
            fmt_secs(times[0]),
            fmt_secs(times[1]),
            format!("{:+.1}%", (times[0] / times[1] - 1.0) * 100.0),
        ]);
    }
    t.print();
    println!();
}

/// The engine configuration for `record` / `replay`: the CLI flags, with
/// the `GG_THREADS` / `GG_CHUNK` environment overrides taking precedence
/// so one recorded binary invocation can be replayed under several
/// schedules from a shell loop (the CI differential leg's shape).
fn replay_config(args: &Args) -> gg_core::config::Config {
    gg_core::config::Config {
        threads: gg_core::config::threads_from_env().unwrap_or(args.threads),
        num_partitions: args.partitions_or(16),
        numa: NumaTopology::paper_machine(),
        executor: args.executor,
        output_mode: args.output,
        chunk_edges: gg_core::config::chunk_edges_from_env()
            .or(args.chunk)
            .unwrap_or(gg_core::config::ChunkCap::Auto),
        layout: args.layout_policy(),
        ..gg_core::config::Config::default()
    }
}

/// Renders per-partition effective layouts as a JSON string array body.
fn part_layout_json(orders: &[EdgeOrder]) -> String {
    orders
        .iter()
        .map(|o| format!("\"{}\"", o.label()))
        .collect::<Vec<_>>()
        .join(", ")
}

/// The algorithm set for `record` / `replay` after the `--algo` filter.
fn replay_selection(args: &Args) -> Vec<Algorithm> {
    let all = gg_bench::replay::replay_algorithms();
    match &args.algo {
        None => all.to_vec(),
        Some(code) => {
            let picked: Vec<Algorithm> = all.iter().copied().filter(|a| a.code() == code).collect();
            if picked.is_empty() {
                eprintln!("--algo must be one of BFS, PR, CC, BF, FUSED; got {code}");
                std::process::exit(2);
            }
            picked
        }
    }
}

fn trace_path(code: &str) -> String {
    format!("TRACE_{code}.jsonl")
}

/// `repro record`: run each selected algorithm once with the round
/// recorder armed and write `TRACE_<ALGO>.jsonl` (or `TRACE_fault.jsonl`
/// with `--fault`).
fn record(args: &Args) {
    let scenario = args.scenario_or("powerlaw");
    let config = replay_config(args);
    println!(
        "## Record — {scenario} scenario, {} threads, {} partitions, {:?} chunk cap\n",
        config.threads, config.num_partitions, config.chunk_edges
    );
    let el = gg_bench::replay::scenario_graph(&scenario, args.scale);
    if args.fault {
        let trace = gg_bench::replay::record_fault(&el, &config, &scenario);
        let path = trace_path("fault");
        std::fs::write(&path, trace.to_jsonl()).expect("writing trace file");
        println!("fault_minlabel: {} rounds -> {path}", trace.rounds.len());
        return;
    }
    if args.algo.as_deref() == Some("FUSED") {
        let trace = gg_bench::replay::record_fused(&el, &config, &scenario);
        let path = trace_path("FUSED");
        std::fs::write(&path, trace.to_jsonl()).expect("writing trace file");
        println!(
            "fused_bfs ({} lanes): {} rounds -> {path}",
            gg_bench::replay::FUSED_RECORD_LANES,
            trace.rounds.len()
        );
        return;
    }
    for algo in replay_selection(args) {
        let w = Workload::prepare(&el, algo);
        let trace = gg_bench::replay::record_algorithm(&w, &config, &scenario);
        let path = trace_path(algo.code());
        std::fs::write(&path, trace.to_jsonl()).expect("writing trace file");
        println!("{}: {} rounds -> {path}", algo.code(), trace.rounds.len());
    }
}

/// `repro replay`: re-execute each selected algorithm under the *current*
/// configuration and diff the trace against the recorded file. Exits
/// non-zero on the first divergence (after reporting it).
fn replay(args: &Args) {
    use gg_core::trace::{first_divergence, RoundTrace};
    let config = replay_config(args);
    println!(
        "## Replay — {} threads, {} partitions, {:?} chunk cap\n",
        config.threads, config.num_partitions, config.chunk_edges
    );
    let load = |code: &str| -> RoundTrace {
        let path = trace_path(code);
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("reading {path} (run `repro record` first): {e}"));
        RoundTrace::from_jsonl(&text).unwrap_or_else(|e| panic!("parsing {path}: {e}"))
    };
    if args.fault {
        // The fault op's divergence is schedule-dependent: a multi-thread
        // replay *could* (rarely) execute every update on one worker and
        // reproduce the honest trace, so retry a few times and report the
        // first divergence found.
        let recorded = load("fault");
        let el = gg_bench::replay::scenario_graph(&recorded.header.scenario, args.scale);
        for attempt in 1..=5 {
            let replayed = gg_bench::replay::record_fault(&el, &config, &recorded.header.scenario);
            if let Some(d) = first_divergence(&recorded, &replayed) {
                println!("fault_minlabel: DIVERGED (attempt {attempt}): {d}");
                std::process::exit(1);
            }
        }
        println!("fault_minlabel: no divergence in 5 attempts");
        return;
    }
    if args.algo.as_deref() == Some("FUSED") {
        let recorded = load("FUSED");
        let el = gg_bench::replay::scenario_graph(&recorded.header.scenario, args.scale);
        let replayed = gg_bench::replay::record_fused(&el, &config, &recorded.header.scenario);
        match first_divergence(&recorded, &replayed) {
            Some(d) => {
                println!("fused_bfs: DIVERGED: {d}");
                std::process::exit(1);
            }
            None => println!(
                "fused_bfs: ok ({} rounds bit-identical, per-lane digests compared)",
                recorded.rounds.len()
            ),
        }
        return;
    }
    let mut diverged = false;
    for algo in replay_selection(args) {
        let recorded = load(algo.code());
        let el = gg_bench::replay::scenario_graph(&recorded.header.scenario, args.scale);
        let w = Workload::prepare(&el, algo);
        let replayed = gg_bench::replay::record_algorithm(&w, &config, &recorded.header.scenario);
        match first_divergence(&recorded, &replayed) {
            Some(d) => {
                println!("{}: DIVERGED: {d}", algo.code());
                diverged = true;
            }
            None => println!(
                "{}: ok ({} rounds bit-identical)",
                algo.code(),
                recorded.rounds.len()
            ),
        }
    }
    if diverged {
        std::process::exit(1);
    }
}
