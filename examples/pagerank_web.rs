//! Web-scale ranking scenario: PageRank-with-deltas on a power-law "web
//! crawl", comparing the exact power method against the delta-propagating
//! variant, and showing the frontier-density trajectory that motivates the
//! paper's three-way traversal classification.
//!
//! ```text
//! cargo run --release --example pagerank_web
//! ```

use graphgrind::algorithms::{self, PrDeltaParams};
use graphgrind::core::{Config, GraphGrind2};
use graphgrind::graph::generators;

fn main() {
    // A power-law "web graph" (the paper's Powerlaw alpha=2.0 synthetic).
    let el = generators::chung_lu(100_000, 1_000_000, 2.0, 11);
    println!(
        "web graph: {} pages, {} links",
        el.num_vertices(),
        el.num_edges()
    );

    let engine = GraphGrind2::new(&el, Config::default().with_partitions(256));

    // Exact power method (10 iterations, all-dense).
    let t0 = std::time::Instant::now();
    let exact = algorithms::pagerank(&engine, 10);
    let t_exact = t0.elapsed().as_secs_f64();

    // Delta variant: vertices drop out of the frontier once their rank
    // stabilises, so later rounds do far less work.
    let t1 = std::time::Instant::now();
    let approx = algorithms::pagerank_delta(&engine, PrDeltaParams::default());
    let t_delta = t1.elapsed().as_secs_f64();

    println!("\npower method : {t_exact:.3}s (10 dense iterations)");
    println!(
        "PRDelta      : {t_delta:.3}s ({} adaptive rounds)",
        approx.rounds
    );
    println!("\nfrontier sizes per PRDelta round (density trajectory):");
    for (i, sz) in approx.frontier_sizes.iter().enumerate() {
        let pct = 100.0 * *sz as f64 / el.num_vertices() as f64;
        println!("  round {i:>2}: {sz:>8} active ({pct:5.1}%)");
    }

    // Ranking agreement on the top of the distribution.
    let top = |ranks: &[f64], k: usize| -> Vec<usize> {
        let mut idx: Vec<usize> = (0..ranks.len()).collect();
        idx.sort_by(|&a, &b| ranks[b].total_cmp(&ranks[a]));
        idx.truncate(k);
        idx
    };
    let (te, ta) = (top(&exact, 20), top(&approx.rank, 20));
    let overlap = te.iter().filter(|v| ta.contains(v)).count();
    println!("\ntop-20 overlap between exact and delta ranking: {overlap}/20");

    let (s, m, d) = engine.kernel_counts().snapshot();
    println!("edge-map decisions: {s} sparse, {m} medium, {d} dense");
}
