//! Configuration invariance: GraphGrind-v2's tuning knobs — partition
//! count, edge order, thread count, atomics, forced kernels — are pure
//! performance knobs and must never change algorithm output.

use graphgrind::algorithms::{self, validate};
use graphgrind::core::{Config, ForcedKernel, GraphGrind2};
use graphgrind::graph::edge_list::EdgeList;
use graphgrind::graph::generators::{self, RmatParams};
use graphgrind::graph::ops::symmetrize;
use graphgrind::graph::reorder::EdgeOrder;
use graphgrind::graph::weights;
use graphgrind::runtime::numa::NumaTopology;

fn graph() -> EdgeList {
    generators::rmat(10, 9000, RmatParams::skewed(), 2024)
}

fn base_config() -> Config {
    Config {
        threads: 2,
        num_partitions: 8,
        numa: NumaTopology::new(2),
        ..Config::default()
    }
}

#[test]
fn partition_count_invariance() {
    let el = graph();
    let reference = algorithms::pagerank(&GraphGrind2::new(&el, base_config()), 10);
    for p in [2usize, 4, 32, 128, 512] {
        let cfg = Config {
            num_partitions: p,
            ..base_config()
        };
        let got = algorithms::pagerank(&GraphGrind2::new(&el, cfg), 10);
        validate::assert_close_f64(&got, &reference, 1e-12, 1e-16);
    }
}

#[test]
fn edge_order_invariance() {
    let el = graph();
    let reference = algorithms::pagerank(&GraphGrind2::new(&el, base_config()), 10);
    for order in [
        EdgeOrder::Source,
        EdgeOrder::Destination,
        EdgeOrder::Hilbert,
    ] {
        let cfg = base_config().with_edge_order(order);
        let got = algorithms::pagerank(&GraphGrind2::new(&el, cfg), 10);
        // Within a partition, addition order changes -> tiny fp wiggle.
        validate::assert_close_f64(&got, &reference, 1e-9, 1e-14);
    }
}

#[test]
fn thread_count_invariance() {
    let mut el = graph();
    weights::attach_integer(&mut el, 12, 9);
    let reference = algorithms::bellman_ford(&GraphGrind2::new(&el, base_config()), 0).dist;
    for threads in [1usize, 3, 8] {
        let cfg = Config {
            threads,
            ..base_config()
        };
        let got = algorithms::bellman_ford(&GraphGrind2::new(&el, cfg), 0).dist;
        assert_eq!(got, reference, "threads = {threads}");
    }
}

#[test]
fn atomics_invariance() {
    // The paper's §III.C claim in its strongest form: identical output
    // with and without hardware atomics on the dense path.
    let el = graph();
    let no_atomics = algorithms::pagerank(&GraphGrind2::new(&el, base_config()), 10);
    let cfg = Config {
        use_atomics_dense: true,
        ..base_config()
    };
    let with_atomics = algorithms::pagerank(&GraphGrind2::new(&el, cfg), 10);
    validate::assert_close_f64(&with_atomics, &no_atomics, 1e-9, 1e-14);
}

#[test]
fn forced_kernel_invariance_for_bfs() {
    let el = graph();
    let reference = algorithms::bfs(&GraphGrind2::new(&el, base_config()), 0).level;
    for force in [
        ForcedKernel::CsrAtomic,
        ForcedKernel::CscNoAtomic,
        ForcedKernel::CooAtomic,
        ForcedKernel::CooNoAtomic,
    ] {
        let cfg = base_config().with_forced(force);
        let got = algorithms::bfs(&GraphGrind2::new(&el, cfg), 0).level;
        assert_eq!(got, reference, "forced = {force:?}");
    }
}

#[test]
fn forced_kernel_invariance_for_cc() {
    let el = symmetrize(&graph());
    let reference = algorithms::cc(&GraphGrind2::new(&el, base_config())).label;
    for force in [
        ForcedKernel::CsrAtomic,
        ForcedKernel::CscNoAtomic,
        ForcedKernel::CooAtomic,
        ForcedKernel::CooNoAtomic,
    ] {
        let cfg = base_config().with_forced(force);
        let got = algorithms::cc(&GraphGrind2::new(&el, cfg)).label;
        assert_eq!(got, reference, "forced = {force:?}");
    }
}

#[test]
fn thresholds_change_decisions_not_results() {
    let el = graph();
    let reference = algorithms::bfs(&GraphGrind2::new(&el, base_config()), 0).level;
    // Degenerate thresholds force everything to one class.
    for (dense_div, sparse_div) in [(1u64, 1u64), (u64::MAX, u64::MAX), (2, 2)] {
        let cfg = Config {
            thresholds: graphgrind::core::Thresholds {
                dense_divisor: dense_div,
                sparse_divisor: sparse_div,
            },
            ..base_config()
        };
        let engine = GraphGrind2::new(&el, cfg);
        let got = algorithms::bfs(&engine, 0).level;
        assert_eq!(got, reference, "divisors = ({dense_div},{sparse_div})");
    }
}
