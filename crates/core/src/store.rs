//! The composite graph store (§III.A / §III.B).
//!
//! GraphGrind-v2 trades memory for speed by keeping **three** copies of the
//! graph, each tuned to one frontier class:
//!
//! * an unpartitioned [`Csr`] for sparse frontiers (§III.A.1);
//! * an unpartitioned [`Csc`] for medium-dense frontiers — partitioning by
//!   destination leaves CSC edge order unchanged, so only the *computation
//!   ranges* are partitioned (§II.C);
//! * a heavily partitioned [`PartitionedCoo`] for dense frontiers, whose
//!   storage is independent of the partition count (§II.E).
//!
//! Because neither the CSC nor the COO copies replicate vertices, total
//! memory stays below twice Ligra's CSR+CSC pair regardless of the
//! partition count. The optional partitioned CSR (for the "CSR + a"
//! ablation of Figure 5) is the one layout whose footprint grows with
//! `r(p)`.

use gg_graph::coo::PartitionedCoo;
use gg_graph::csc::Csc;
use gg_graph::csr::{Csr, PartitionedCsr};
use gg_graph::edge_list::EdgeList;
use gg_graph::partition::{PartitionBy, PartitionSet};
use gg_graph::reorder::EdgeOrder;

use crate::advisor::{self, LayoutAdvice};
use crate::config::{Config, LayoutPolicy};

/// The composite 3-layout store plus partition metadata.
#[derive(Debug)]
pub struct GraphStore {
    n: usize,
    m: usize,
    csr: Csr,
    csc: Csc,
    coo: PartitionedCoo,
    /// Edge-balanced destination ranges (COO partitions; CSC ranges for
    /// edge-oriented algorithms).
    edge_parts: PartitionSet,
    /// Vertex-balanced destination ranges (CSC ranges for vertex-oriented
    /// algorithms, §III.D).
    vertex_parts: PartitionSet,
    /// Optional partitioned CSR for the Figure 5 "CSR + a" configuration.
    pcsr: Option<PartitionedCsr>,
    out_degrees: Vec<u32>,
    in_degrees: Vec<u32>,
    /// The memsim layout advisor's full verdict, kept when the build ran
    /// under [`LayoutPolicy::Advised`].
    layout_advice: Option<LayoutAdvice>,
}

impl GraphStore {
    /// Builds every layout required by `config` from an edge list.
    pub fn build(el: &EdgeList, config: &Config) -> Self {
        let n = el.num_vertices();
        let m = el.num_edges();
        let p = config.effective_partitions();
        let out_degrees = el.out_degrees();
        let in_degrees = el.in_degrees();

        let edge_parts = PartitionSet::edge_balanced(&in_degrees, p, PartitionBy::Destination);
        let vertex_parts = PartitionSet::vertex_balanced(n, p, PartitionBy::Destination);

        let csr = Csr::from_edge_list(el);
        let csc = Csc::from_edge_list(el);
        let (coo, layout_advice) = match config.layout {
            LayoutPolicy::Fixed(order) => (PartitionedCoo::new(el, &edge_parts, order), None),
            LayoutPolicy::Advised { sample_rate } => {
                let advice = advisor::advise(el, &edge_parts, sample_rate);
                let coo = PartitionedCoo::with_orders(el, &edge_parts, &advice.orders());
                (coo, Some(advice))
            }
        };
        let pcsr = config
            .build_partitioned_csr
            .then(|| PartitionedCsr::new(el, &edge_parts));

        GraphStore {
            n,
            m,
            csr,
            csc,
            coo,
            edge_parts,
            vertex_parts,
            pcsr,
            out_degrees,
            in_degrees,
            layout_advice,
        }
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// Number of edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.m
    }

    /// Number of partitions of the COO layout / computation ranges.
    #[inline]
    pub fn num_partitions(&self) -> usize {
        self.edge_parts.num_partitions()
    }

    /// The whole-graph CSR (sparse traversal).
    #[inline]
    pub fn csr(&self) -> &Csr {
        &self.csr
    }

    /// The whole-graph CSC (medium-dense traversal).
    #[inline]
    pub fn csc(&self) -> &Csc {
        &self.csc
    }

    /// The partitioned COO (dense traversal).
    #[inline]
    pub fn coo(&self) -> &PartitionedCoo {
        &self.coo
    }

    /// The partitioned CSR, if built (`Config::build_partitioned_csr`).
    #[inline]
    pub fn partitioned_csr(&self) -> Option<&PartitionedCsr> {
        self.pcsr.as_ref()
    }

    /// Edge-balanced destination ranges.
    #[inline]
    pub fn edge_parts(&self) -> &PartitionSet {
        &self.edge_parts
    }

    /// Vertex-balanced destination ranges.
    #[inline]
    pub fn vertex_parts(&self) -> &PartitionSet {
        &self.vertex_parts
    }

    /// Out-degree array (drives the frontier density metric).
    #[inline]
    pub fn out_degrees(&self) -> &[u32] {
        &self.out_degrees
    }

    /// In-degree array.
    #[inline]
    pub fn in_degrees(&self) -> &[u32] {
        &self.in_degrees
    }

    /// The effective per-partition edge layouts of the COO.
    #[inline]
    pub fn part_layouts(&self) -> &[EdgeOrder] {
        self.coo.part_orders()
    }

    /// The layout advisor's full verdict, when the store was built under
    /// [`LayoutPolicy::Advised`].
    #[inline]
    pub fn layout_advice(&self) -> Option<&LayoutAdvice> {
        self.layout_advice.as_ref()
    }

    /// Measured heap bytes of all resident layouts.
    pub fn heap_bytes(&self) -> usize {
        self.csr.heap_bytes()
            + self.csc.heap_bytes()
            + self.coo.heap_bytes()
            + self.pcsr.as_ref().map_or(0, |p| p.heap_bytes())
            + (self.out_degrees.len() + self.in_degrees.len()) * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gg_graph::generators;

    fn small_config(p: usize) -> Config {
        Config {
            num_partitions: p,
            numa: gg_runtime::numa::NumaTopology::new(2),
            threads: 2,
            ..Config::default()
        }
    }

    #[test]
    fn builds_all_layouts_consistently() {
        let el = generators::rmat(8, 3000, generators::RmatParams::skewed(), 2);
        let store = GraphStore::build(&el, &small_config(8));
        assert_eq!(store.num_vertices(), 256);
        assert_eq!(store.num_edges(), 3000);
        assert_eq!(store.csr().num_edges(), 3000);
        assert_eq!(store.csc().num_edges(), 3000);
        assert_eq!(store.coo().num_edges(), 3000);
        assert_eq!(store.num_partitions(), 8);
        store.coo().validate().unwrap();
        assert!(store.partitioned_csr().is_none());
    }

    #[test]
    fn partitioned_csr_on_demand() {
        let el = generators::erdos_renyi(64, 500, 3);
        let mut cfg = small_config(4);
        cfg.build_partitioned_csr = true;
        let store = GraphStore::build(&el, &cfg);
        let pcsr = store.partitioned_csr().unwrap();
        assert_eq!(pcsr.num_edges(), 500);
    }

    #[test]
    fn partition_rounding_applied() {
        let el = generators::erdos_renyi(64, 500, 3);
        let store = GraphStore::build(&el, &small_config(5));
        // 5 rounded up to a multiple of 2 domains.
        assert_eq!(store.num_partitions(), 6);
    }

    #[test]
    fn degrees_match_edge_list() {
        let el = generators::erdos_renyi(100, 1000, 7);
        let store = GraphStore::build(&el, &small_config(4));
        assert_eq!(store.out_degrees(), el.out_degrees().as_slice());
        assert_eq!(store.in_degrees(), el.in_degrees().as_slice());
        let total: u64 = store.out_degrees().iter().map(|&d| d as u64).sum();
        assert_eq!(total, 1000);
    }

    #[test]
    fn advised_layout_builds_per_partition_orders() {
        let el = generators::rmat(9, 8000, generators::RmatParams::skewed(), 3);
        let mut cfg = small_config(8);
        cfg.layout = LayoutPolicy::Advised { sample_rate: 0.5 };
        let store = GraphStore::build(&el, &cfg);
        store.coo().validate().unwrap();
        let advice = store.layout_advice().expect("advice kept");
        assert_eq!(advice.partitions.len(), store.num_partitions());
        assert_eq!(store.part_layouts(), advice.orders().as_slice());
        // A fixed build reports its uniform order and keeps no advice.
        let fixed = GraphStore::build(&el, &small_config(8));
        assert!(fixed.layout_advice().is_none());
        assert!(fixed
            .part_layouts()
            .iter()
            .all(|&o| o == gg_graph::reorder::EdgeOrder::Hilbert));
    }

    #[test]
    fn memory_less_than_double_ligra_when_unweighted() {
        // §III.B: "the memory requirement of our system is less than double
        // the memory of Ligra" (Ligra = CSR + CSC).
        let el = generators::rmat(10, 20_000, generators::RmatParams::skewed(), 5);
        let store = GraphStore::build(&el, &small_config(64));
        let ligra = store.csr().heap_bytes() + store.csc().heap_bytes();
        assert!(store.heap_bytes() < 2 * ligra);
    }
}
