//! Quickstart: build a graph, create a GraphGrind-v2 engine, run PageRank
//! and BFS, and inspect what the engine decided.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use graphgrind::algorithms;
use graphgrind::core::{Config, Engine, GraphGrind2};
use graphgrind::graph::generators::{self, RmatParams};

fn main() {
    // 1. A Twitter-shaped synthetic graph: 2^14 vertices, 300k edges.
    let el = generators::rmat(14, 300_000, RmatParams::skewed(), 7);
    println!(
        "graph: {} vertices, {} edges",
        el.num_vertices(),
        el.num_edges()
    );

    // 2. The engine builds the composite store: whole CSR (sparse
    //    frontiers) + whole CSC (medium-dense) + partitioned COO (dense).
    let config = Config::default().with_partitions(128);
    let engine = GraphGrind2::new(&el, config);
    println!(
        "engine: {} partitions, {} threads, store = {:.1} MiB",
        engine.store().num_partitions(),
        engine.pool().threads(),
        engine.store().heap_bytes() as f64 / (1024.0 * 1024.0)
    );

    // 3. PageRank: every iteration is dense, so every iteration takes the
    //    no-atomics partitioned-COO path.
    let ranks = algorithms::pagerank(&engine, 10);
    let mut top: Vec<(usize, f64)> = ranks.iter().copied().enumerate().collect();
    top.sort_by(|a, b| b.1.total_cmp(&a.1));
    println!("\ntop-5 PageRank vertices:");
    for (v, r) in top.iter().take(5) {
        println!("  vertex {v:>6}  rank {r:.6}");
    }

    // 4. BFS from the highest-ranked vertex: the frontier starts sparse,
    //    densifies, then sparsifies — the engine switches layouts on its
    //    own (Algorithm 2); no forward/backward annotation needed.
    let bfs = algorithms::bfs(&engine, top[0].0 as u32);
    let reached = bfs.level.iter().filter(|&&l| l != u32::MAX).count();
    println!(
        "\nBFS from vertex {}: reached {} vertices in {} rounds",
        top[0].0, reached, bfs.rounds
    );

    // 5. The decision mix the engine used across both algorithms.
    let (sparse, medium, dense) = engine.kernel_counts().snapshot();
    println!(
        "\nedge-map decisions: {sparse} sparse (CSR), {medium} medium (CSC), {dense} dense (COO)"
    );
}
