//! K-lane visited/frontier state for fused multi-source traversals.
//!
//! A fused traversal co-runs up to 64 point queries ("lanes") over one
//! graph: per-vertex state is a single `u64` **lane word** whose bit `k`
//! says "query `k` has this vertex active/visited". One edge scan then
//! advances every lane at once — the batching lever that amortises the
//! CSR/CSC walk across concurrent queries.
//!
//! Two variants mirror the [`bitmap`](crate::bitmap) machinery:
//!
//! * [`LaneBitmap`] — one lane word per vertex over the whole graph, the
//!   dense representation of a fused frontier and the visited state of a
//!   fused traversal;
//! * [`LaneSegment`] — a range-aligned view-sized lane array covering one
//!   partition's destination range, the partitioned executor's dense fused
//!   output buffer. Because every vertex owns a whole word, a segment
//!   splices back into a [`LaneBitmap`] with straight word-indexed ORs —
//!   no bit shifting, and a word never straddles two partitions.

use crate::bitmap::Bitmap;

/// One 64-bit lane word per vertex: bit `k` of word `v` means vertex `v`
/// is set in lane `k`.
///
/// ```
/// use gg_graph::lanes::LaneBitmap;
///
/// let mut lanes = LaneBitmap::new(4);
/// assert_eq!(lanes.or(2, 0b101), 0b101); // newly set bits
/// assert_eq!(lanes.or(2, 0b111), 0b010); // bit 0 and 2 already set
/// assert_eq!(lanes.get(2), 0b111);
/// assert_eq!(lanes.get(0), 0);
/// assert_eq!(lanes.lane_bits(), 3);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LaneBitmap {
    words: Vec<u64>,
    len: usize,
}

impl LaneBitmap {
    /// All-zeros lane state over `len` vertices.
    pub fn new(len: usize) -> Self {
        LaneBitmap {
            words: vec![0; len],
            len,
        }
    }

    /// Number of vertices covered.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the bitmap covers zero vertices.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The lane word of vertex `v`.
    #[inline]
    pub fn get(&self, v: usize) -> u64 {
        self.words[v]
    }

    /// ORs `mask` into vertex `v`'s lane word, returning the bits that
    /// were newly set (`mask & !previous`) — the fused analogue of the
    /// first-setter return of [`AtomicBitmap::set`](crate::bitmap::AtomicBitmap::set).
    #[inline]
    pub fn or(&mut self, v: usize, mask: u64) -> u64 {
        let prev = self.words[v];
        self.words[v] = prev | mask;
        mask & !prev
    }

    /// Overwrites vertex `v`'s lane word.
    #[inline]
    pub fn set(&mut self, v: usize, mask: u64) {
        self.words[v] = mask;
    }

    /// Clears every lane word.
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// Total set lane bits (Σ popcount) — the fused work volume.
    pub fn lane_bits(&self) -> u64 {
        self.words.iter().map(|w| w.count_ones() as u64).sum()
    }

    /// Number of vertices with at least one lane set (the union count).
    pub fn count_nonzero(&self) -> usize {
        self.words.iter().filter(|&&w| w != 0).count()
    }

    /// Calls `f(v, mask)` for every vertex with a non-zero lane word, in
    /// ascending vertex order.
    pub fn for_each_nonzero<F: FnMut(usize, u64)>(&self, mut f: F) {
        for (v, &w) in self.words.iter().enumerate() {
            if w != 0 {
                f(v, w);
            }
        }
    }

    /// The union frontier as a plain [`Bitmap`]: bit `v` set iff any lane
    /// has `v` set. This is what the planner's density decision sees.
    pub fn union_bitmap(&self) -> Bitmap {
        let mut b = Bitmap::new(self.len);
        for (v, &w) in self.words.iter().enumerate() {
            if w != 0 {
                b.set(v);
            }
        }
        b
    }

    /// OR of every lane word: bit `k` set iff lane `k` still has at least
    /// one vertex set anywhere. The serving layer's quiescence probe — a
    /// lane absent from this mask has an empty frontier and can retire.
    pub fn live_lanes(&self) -> u64 {
        self.words.iter().fold(0, |acc, &w| acc | w)
    }

    /// ANDs every lane word with `keep`, dropping all bits of retired
    /// lanes in one pass. Returns the number of lane bits cleared.
    pub fn retain_lanes(&mut self, keep: u64) -> u64 {
        let mut cleared = 0u64;
        for w in &mut self.words {
            let dropped = *w & !keep;
            if dropped != 0 {
                cleared += dropped.count_ones() as u64;
                *w &= keep;
            }
        }
        cleared
    }

    /// Raw lane words (read-only), indexed by vertex.
    pub fn words(&self) -> &[u64] {
        &self.words
    }
}

/// A range-aligned lane array covering one contiguous vertex sub-range:
/// entry `i` holds the lane word of *global* vertex `start + i`.
///
/// The partitioned executor's dense fused output buffer: sized to the
/// partition's destination range, owned by exactly one chunk task (plain
/// stores, no atomics), spliced back into a whole-graph [`LaneBitmap`]
/// with word-indexed ORs.
///
/// ```
/// use gg_graph::lanes::{LaneBitmap, LaneSegment};
///
/// let mut seg = LaneSegment::new(70..200);
/// seg.or(70, 0b1);
/// seg.or(130, 0b10);
/// assert_eq!(seg.get(130), 0b10);
///
/// let mut whole = LaneBitmap::new(256);
/// seg.splice_into(&mut whole);
/// assert_eq!(whole.get(70), 0b1);
/// assert_eq!(whole.get(130), 0b10);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LaneSegment {
    start: usize,
    words: Vec<u64>,
}

impl LaneSegment {
    /// An all-zeros segment covering the global vertex range `range`.
    pub fn new(range: std::ops::Range<usize>) -> Self {
        let len = range.end.saturating_sub(range.start);
        LaneSegment {
            start: range.start,
            words: vec![0; len],
        }
    }

    /// The global vertex range this segment covers.
    #[inline]
    pub fn range(&self) -> std::ops::Range<usize> {
        self.start..self.start + self.words.len()
    }

    /// Number of vertices covered.
    #[inline]
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// True when the segment covers zero vertices.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// The lane word of *global* vertex `v`.
    #[inline]
    pub fn get(&self, v: usize) -> u64 {
        debug_assert!(self.range().contains(&v), "vertex {v} outside segment");
        self.words[v - self.start]
    }

    /// ORs `mask` into *global* vertex `v`'s lane word, returning the
    /// newly set bits.
    #[inline]
    pub fn or(&mut self, v: usize, mask: u64) -> u64 {
        debug_assert!(self.range().contains(&v), "vertex {v} outside segment");
        let w = &mut self.words[v - self.start];
        let new = mask & !*w;
        *w |= mask;
        new
    }

    /// Number of vertices with at least one lane set.
    pub fn count_nonzero(&self) -> usize {
        self.words.iter().filter(|&&w| w != 0).count()
    }

    /// Total set lane bits (Σ popcount).
    pub fn lane_bits(&self) -> u64 {
        self.words.iter().map(|w| w.count_ones() as u64).sum()
    }

    /// The merge-work cost of splicing this segment: its word count
    /// (`O(range)`, never `O(|V|)`).
    #[inline]
    pub fn num_words(&self) -> usize {
        self.words.len()
    }

    /// Calls `f(v, mask)` for every non-zero lane word, passing *global*
    /// vertex ids in ascending order.
    pub fn for_each_nonzero<F: FnMut(usize, u64)>(&self, mut f: F) {
        for (i, &w) in self.words.iter().enumerate() {
            if w != 0 {
                f(self.start + i, w);
            }
        }
    }

    /// ORs this segment into `target` at its global position — one OR per
    /// covered vertex, no bit shifting (a vertex owns a whole word).
    ///
    /// # Panics
    /// Panics if the segment's range extends beyond `target`.
    pub fn splice_into(&self, target: &mut LaneBitmap) {
        assert!(
            self.start + self.words.len() <= target.len(),
            "segment {:?} exceeds lane bitmap of {} vertices",
            self.range(),
            target.len()
        );
        for (i, &w) in self.words.iter().enumerate() {
            if w != 0 {
                target.words[self.start + i] |= w;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn or_reports_newly_set_bits() {
        let mut l = LaneBitmap::new(10);
        assert_eq!(l.or(3, 0b1011), 0b1011);
        assert_eq!(l.or(3, 0b1110), 0b0100);
        assert_eq!(l.or(3, 0b1111), 0);
        assert_eq!(l.get(3), 0b1111);
        assert_eq!(l.lane_bits(), 4);
        assert_eq!(l.count_nonzero(), 1);
    }

    #[test]
    fn lane_64_round_trips() {
        let mut l = LaneBitmap::new(2);
        let top = 1u64 << 63;
        assert_eq!(l.or(1, top), top);
        assert_eq!(l.or(1, top), 0);
        assert_eq!(l.get(1), top);
        assert_eq!(l.lane_bits(), 1);
    }

    #[test]
    fn union_bitmap_and_iteration_agree() {
        let mut l = LaneBitmap::new(100);
        l.or(5, 0b1);
        l.or(64, 0b100);
        l.or(99, u64::MAX);
        let union = l.union_bitmap();
        assert_eq!(union.iter_ones().collect::<Vec<_>>(), vec![5, 64, 99]);
        let mut seen = Vec::new();
        l.for_each_nonzero(|v, m| seen.push((v, m)));
        assert_eq!(seen, vec![(5, 0b1), (64, 0b100), (99, u64::MAX)]);
        assert_eq!(l.count_nonzero(), 3);
        assert_eq!(l.lane_bits(), 1 + 1 + 64);
        l.clear();
        assert_eq!(l.count_nonzero(), 0);
    }

    #[test]
    fn segment_splices_like_direct_sets() {
        let mut want = LaneBitmap::new(300);
        let mut got = LaneBitmap::new(300);
        for range in [0usize..100, 100..163, 163..300] {
            let mut seg = LaneSegment::new(range.clone());
            for v in range.clone().step_by(7) {
                let mask = 1u64 << (v % 64) | 1;
                seg.or(v, mask);
                want.or(v, mask);
            }
            assert_eq!(seg.range(), range);
            seg.splice_into(&mut got);
        }
        assert_eq!(got, want);
        assert_eq!(got.lane_bits(), want.lane_bits());
    }

    #[test]
    fn segment_or_reports_new_bits_and_iterates_globally() {
        let mut seg = LaneSegment::new(50..80);
        assert_eq!(seg.or(51, 0b11), 0b11);
        assert_eq!(seg.or(51, 0b10), 0);
        assert_eq!(seg.or(79, 0b100), 0b100);
        assert_eq!(seg.count_nonzero(), 2);
        assert_eq!(seg.lane_bits(), 3);
        assert_eq!(seg.num_words(), 30);
        let mut seen = Vec::new();
        seg.for_each_nonzero(|v, m| seen.push((v, m)));
        assert_eq!(seen, vec![(51, 0b11), (79, 0b100)]);
    }

    #[test]
    fn live_lanes_is_or_of_words_and_retain_masks_them() {
        let mut l = LaneBitmap::new(8);
        assert_eq!(l.live_lanes(), 0);
        l.or(0, 0b0011);
        l.or(3, 0b0110);
        l.or(7, 1 << 63);
        assert_eq!(l.live_lanes(), 0b0111 | 1 << 63);

        // Retire lanes 1 and 63; lanes 0 and 2 survive untouched.
        let cleared = l.retain_lanes(0b0101);
        assert_eq!(cleared, 3); // bit1@v0, bit1@v3, bit63@v7
        assert_eq!(l.get(0), 0b0001);
        assert_eq!(l.get(3), 0b0100);
        assert_eq!(l.get(7), 0);
        assert_eq!(l.live_lanes(), 0b0101);
        // Retaining everything still live is a no-op.
        assert_eq!(l.retain_lanes(u64::MAX), 0);
    }

    #[test]
    #[should_panic(expected = "exceeds lane bitmap")]
    fn segment_splice_rejects_small_target() {
        let seg = LaneSegment::new(100..200);
        let mut small = LaneBitmap::new(150);
        seg.splice_into(&mut small);
    }
}
