//! End-to-end record/replay differentials: an honest run recorded under
//! one schedule must replay bit-identically under every other
//! thread-count / chunk-cap / partition-count configuration, and the
//! thread-dependent fault op must be caught and localized to its first
//! diverging round.

use gg_bench::replay::{record_algorithm, record_fault, replay_algorithms, scenario_graph};
use gg_bench::runner::Workload;
use gg_core::config::{ChunkCap, Config, ExecutorKind};
use gg_core::trace::{first_divergence, RoundTrace};

/// Test scale: ~600 vertices, a few thousand edges — enough rounds for
/// the trajectory to be interesting, small enough for the matrix of
/// configurations below.
const SCALE: f64 = 0.005;

fn config(threads: usize, partitions: usize, chunk: ChunkCap) -> Config {
    Config {
        threads,
        num_partitions: partitions,
        executor: ExecutorKind::Partitioned,
        chunk_edges: chunk,
        ..Config::default()
    }
}

#[test]
fn honest_runs_replay_bit_identically_across_schedules() {
    let el = scenario_graph("powerlaw", SCALE);
    // The recording schedule is maximally sequential; the replay
    // schedules vary every knob the bit-identity contract quantifies
    // over (threads, chunk cap, partition count).
    let recorded_at = config(1, 16, ChunkCap::Fixed(usize::MAX));
    let replay_at = [
        config(4, 16, ChunkCap::Fixed(1)),
        config(4, 16, ChunkCap::Auto),
        config(3, 7, ChunkCap::Auto),
    ];
    for algo in replay_algorithms() {
        let w = Workload::prepare(&el, algo);
        let recorded = record_algorithm(&w, &recorded_at, "powerlaw");
        assert!(
            recorded.rounds.len() > 1,
            "{}: trace too short to be meaningful",
            algo.code()
        );
        // The serialized form must survive a round trip before it is
        // worth diffing anything against it.
        let parsed = RoundTrace::from_jsonl(&recorded.to_jsonl()).expect("round trip");
        assert_eq!(
            first_divergence(&recorded, &parsed),
            None,
            "{}",
            algo.code()
        );
        for cfg in &replay_at {
            let replayed = record_algorithm(&w, cfg, "powerlaw");
            assert_eq!(
                first_divergence(&recorded, &replayed),
                None,
                "{} diverged replaying at {} threads / {:?} chunk / {} partitions",
                algo.code(),
                cfg.threads,
                cfg.chunk_edges,
                cfg.num_partitions
            );
        }
    }
}

#[test]
fn fault_injection_is_caught_and_localized() {
    let el = scenario_graph("powerlaw", SCALE);
    // One thread: every update runs on the honest lane, so the recording
    // is the honest trace no matter the schedule.
    let recorded = record_fault(&el, &config(1, 16, ChunkCap::Fixed(usize::MAX)), "powerlaw");
    // Four threads: the first update a non-primary worker wins perturbs
    // a label, and the trajectory forks. The fork is schedule-dependent
    // (a replay could in principle land every update on one worker), so
    // allow a few attempts before declaring the harness blind.
    let cfg = config(4, 16, ChunkCap::Fixed(1));
    let divergence = (0..5).find_map(|_| {
        let replayed = record_fault(&el, &cfg, "powerlaw");
        first_divergence(&recorded, &replayed)
    });
    let d = divergence.expect("thread-dependent fault was never detected in 5 replays");
    // The diagnosis must localize: a concrete round and a contract field,
    // not just "traces differ".
    assert!(
        (d.round as usize) < recorded.rounds.len(),
        "diverging round {} out of range",
        d.round
    );
    assert!(
        [
            "frontier_len",
            "frontier_hash",
            "kernel",
            "output",
            "steps",
            "edge_kind",
            "rounds"
        ]
        .contains(&d.field.as_str()),
        "unexpected field {}",
        d.field
    );
    assert_ne!(d.expected, d.got);
}
