//! Single-source betweenness centrality (Brandes; vertex-oriented,
//! backward-preferring — Table II).
//!
//! Two phases, as in Ligra's BC:
//!
//! 1. **Forward**: a BFS that accumulates shortest-path counts `sigma`
//!    along the level structure, storing each level's frontier;
//! 2. **Backward**: levels are replayed deepest-first over the *transposed*
//!    graph, accumulating dependencies
//!    `delta[u] += sigma[u]/sigma[v] · (1 + delta[v])` for tree-DAG edges
//!    (`level[v] == level[u] + 1`).
//!
//! The backward phase needs an engine built on the transposed edge list
//! (the analogue of the CSC copy every compared system stores); pass it as
//! `bwd`.

use std::sync::atomic::{AtomicU32, Ordering};

use gg_core::edge_map::EdgeOp;
use gg_core::engine::Engine;
use gg_core::frontier::Frontier;
use gg_graph::bitmap::AtomicBitmap;
use gg_graph::types::VertexId;
use gg_runtime::atomics::{atomic_f64_vec, snapshot_f64, AtomicF64};

use crate::Algorithm;

/// BC output.
#[derive(Clone, Debug, PartialEq)]
pub struct BcResult {
    /// Dependency (betweenness contribution) per vertex for this source.
    pub dependency: Vec<f64>,
    /// Shortest-path counts per vertex.
    pub sigma: Vec<f64>,
    /// BFS level per vertex (`u32::MAX` = unreached).
    pub level: Vec<u32>,
    /// Forward-phase rounds.
    pub rounds: usize,
}

/// Forward phase: accumulate path counts into unvisited vertices.
struct PathsOp<'a> {
    sigma: &'a [AtomicF64],
    visited: &'a AtomicBitmap,
}

impl EdgeOp for PathsOp<'_> {
    #[inline]
    fn update(&self, src: VertexId, dst: VertexId, _w: f32) -> bool {
        if self.visited.get(dst as usize) {
            return false;
        }
        self.sigma[dst as usize].add_exclusive(self.sigma[src as usize].load());
        true
    }

    #[inline]
    fn update_atomic(&self, src: VertexId, dst: VertexId, _w: f32) -> bool {
        if self.visited.get(dst as usize) {
            return false;
        }
        self.sigma[dst as usize].fetch_add(self.sigma[src as usize].load());
        true
    }

    #[inline]
    fn cond(&self, dst: VertexId) -> bool {
        !self.visited.get(dst as usize)
    }
}

/// Backward phase over the transpose: `src` here is the *deeper* vertex
/// `v`, `dst` its predecessor `u` in the original graph.
struct DepOp<'a> {
    sigma: &'a [AtomicF64],
    delta: &'a [AtomicF64],
    level: &'a [AtomicU32],
}

impl DepOp<'_> {
    #[inline]
    fn contribution(&self, v: VertexId, u: VertexId) -> Option<f64> {
        let lu = self.level[u as usize].load(Ordering::Relaxed);
        let lv = self.level[v as usize].load(Ordering::Relaxed);
        if lu != u32::MAX && lv != u32::MAX && lv == lu + 1 {
            Some(
                self.sigma[u as usize].load() / self.sigma[v as usize].load()
                    * (1.0 + self.delta[v as usize].load()),
            )
        } else {
            None
        }
    }
}

impl EdgeOp for DepOp<'_> {
    #[inline]
    fn update(&self, v: VertexId, u: VertexId, _w: f32) -> bool {
        match self.contribution(v, u) {
            Some(c) => {
                self.delta[u as usize].add_exclusive(c);
                true
            }
            None => false,
        }
    }

    #[inline]
    fn update_atomic(&self, v: VertexId, u: VertexId, _w: f32) -> bool {
        match self.contribution(v, u) {
            Some(c) => {
                self.delta[u as usize].fetch_add(c);
                true
            }
            None => false,
        }
    }
}

/// Runs single-source BC. `fwd` is an engine over the graph, `bwd` over
/// its transpose ([`gg_graph::ops::transpose`]).
///
/// # Panics
/// Panics if the two engines disagree on vertex or edge counts.
pub fn bc<EF: Engine, EB: Engine>(fwd: &EF, bwd: &EB, source: VertexId) -> BcResult {
    let n = fwd.num_vertices();
    assert_eq!(n, bwd.num_vertices(), "engines must cover the same graph");
    assert_eq!(
        fwd.num_edges(),
        bwd.num_edges(),
        "bwd must be the transpose of fwd"
    );

    // Forward phase.
    let sigma = atomic_f64_vec(n, 0.0);
    let visited = AtomicBitmap::new(n);
    let level: Vec<AtomicU32> = gg_runtime::atomics::atomic_u32_vec(n, u32::MAX);
    sigma[source as usize].store(1.0);
    visited.set(source as usize);
    level[source as usize].store(0, Ordering::Relaxed);

    let spec = Algorithm::Bc.spec();
    let mut levels: Vec<Frontier> = vec![fwd.frontier_single(source)];
    let mut depth = 0u32;
    loop {
        let op = PathsOp {
            sigma: &sigma,
            visited: &visited,
        };
        let next = fwd.edge_map(levels.last().unwrap(), &op, spec);
        if next.is_empty() {
            break;
        }
        depth += 1;
        for v in next.iter() {
            visited.set(v as usize);
            level[v as usize].store(depth, Ordering::Relaxed);
        }
        levels.push(next);
    }

    // Backward phase: replay levels deepest-first on the transpose.
    let delta = atomic_f64_vec(n, 0.0);
    let spec_back = spec; // same orientation; direction hint unused here
    for lvl in (1..levels.len()).rev() {
        let op = DepOp {
            sigma: &sigma,
            delta: &delta,
            level: &level,
        };
        let _ = bwd.edge_map(&levels[lvl], &op, spec_back);
    }

    BcResult {
        dependency: snapshot_f64(&delta),
        sigma: snapshot_f64(&sigma),
        level: gg_runtime::atomics::snapshot_u32(&level),
        rounds: levels.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;
    use crate::validate::assert_close_f64;
    use gg_core::config::Config;
    use gg_core::engine::GraphGrind2;
    use gg_graph::generators;
    use gg_graph::ops::transpose;

    fn engines(el: &gg_graph::edge_list::EdgeList) -> (GraphGrind2, GraphGrind2) {
        (
            GraphGrind2::new(el, Config::for_tests()),
            GraphGrind2::new(&transpose(el), Config::for_tests()),
        )
    }

    #[test]
    fn matches_brandes_on_star() {
        let el = generators::star(8);
        let (f, b) = engines(&el);
        let got = bc(&f, &b, 1);
        assert_close_f64(
            &got.dependency,
            &reference::bc_single_source(&el, 1),
            1e-9,
            1e-12,
        );
    }

    #[test]
    fn matches_brandes_on_rmat() {
        let el = generators::rmat(8, 2500, generators::RmatParams::skewed(), 19);
        let (f, b) = engines(&el);
        let got = bc(&f, &b, 0);
        assert_close_f64(
            &got.dependency,
            &reference::bc_single_source(&el, 0),
            1e-9,
            1e-12,
        );
    }

    #[test]
    fn matches_brandes_on_grid() {
        let el = generators::grid_road(6, 6, 0.0, 0);
        let (f, b) = engines(&el);
        let got = bc(&f, &b, 0);
        assert_close_f64(
            &got.dependency,
            &reference::bc_single_source(&el, 0),
            1e-9,
            1e-12,
        );
    }

    #[test]
    fn sigma_counts_shortest_paths() {
        // Diamond: two shortest paths 0->3.
        let el = gg_graph::edge_list::EdgeList::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        let (f, b) = engines(&el);
        let got = bc(&f, &b, 0);
        assert_eq!(got.sigma, vec![1.0, 1.0, 1.0, 2.0]);
        assert_eq!(got.level, vec![0, 1, 1, 2]);
        // delta[1] = delta[2] = (1/2)(1+0); delta[0] = 1.5 + 1.5 = 3.
        assert_close_f64(&got.dependency, &[3.0, 0.5, 0.5, 0.0], 1e-12, 1e-12);
    }
}
