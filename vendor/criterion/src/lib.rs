//! Offline stand-in for `criterion`.
//!
//! The build environment has no crates.io access, so this shim provides the
//! subset of criterion's API the workspace's benches use — [`Criterion`],
//! [`BenchmarkGroup`], [`BenchmarkId`], [`Bencher::iter`] and the
//! [`criterion_group!`] / [`criterion_main!`] macros. It measures wall-clock
//! means over a small, time-bounded number of iterations and prints one line
//! per benchmark; it performs no statistical analysis, HTML reporting or
//! outlier rejection.

use std::fmt::Display;
use std::marker::PhantomData;
use std::time::{Duration, Instant};

/// Measurement markers (only wall time is provided).
pub mod measurement {
    /// Wall-clock time measurement marker.
    pub struct WallTime;
}

/// Identifier for one benchmark within a group.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{function_name}/{parameter}"),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

/// Timing driver handed to benchmark closures.
pub struct Bencher {
    samples: usize,
    budget: Duration,
    last_mean: Duration,
}

impl Bencher {
    /// Runs `f` repeatedly (one warm-up, then up to the configured sample
    /// count or time budget) and records the mean duration.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        std::hint::black_box(f());
        let start = Instant::now();
        let mut iters = 0u32;
        while iters < self.samples as u32 && start.elapsed() < self.budget {
            std::hint::black_box(f());
            iters += 1;
        }
        self.last_mean = start.elapsed() / iters.max(1);
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'c, M = measurement::WallTime> {
    criterion: &'c mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    _marker: PhantomData<M>,
}

impl<'c, M> BenchmarkGroup<'c, M> {
    /// Sets the target number of timed iterations.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Sets the time budget for one benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Accepted for compatibility; the single warm-up call is not budgeted.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted for compatibility; throughput is not reported.
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    fn run_one(&mut self, label: &str, run: impl FnOnce(&mut Bencher)) {
        let mut b = Bencher {
            samples: self.sample_size,
            budget: self.measurement_time,
            last_mean: Duration::ZERO,
        };
        run(&mut b);
        println!(
            "bench {}/{}: {:>12.3?} per iter",
            self.name, label, b.last_mean
        );
        self.criterion.benchmarks_run += 1;
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Display,
        mut f: F,
    ) -> &mut Self {
        self.run_one(&id.to_string(), |b| f(b));
        self
    }

    /// Benchmarks `f` under `id` with an explicit input.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.run_one(&id.to_string(), |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Throughput annotation (accepted, not reported).
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// The benchmark manager.
#[derive(Default)]
pub struct Criterion {
    benchmarks_run: usize,
}

impl Criterion {
    /// Mirrors `Criterion::default().configure_from_args()`; CLI filtering
    /// is not implemented, all benchmarks run.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a benchmark group.
    pub fn benchmark_group(
        &mut self,
        name: impl Into<String>,
    ) -> BenchmarkGroup<'_, measurement::WallTime> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
            measurement_time: Duration::from_secs(2),
            _marker: PhantomData,
        }
    }

    /// Benchmarks `f` outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Display,
        mut f: F,
    ) -> &mut Self {
        let mut g = self.benchmark_group("top");
        g.bench_function(id, &mut f);
        g.finish();
        self
    }
}

/// Prevents the optimiser from deleting a value or the work producing it.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a benchmark group function running each target in order.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default().configure_from_args();
            $( $target(&mut c); )+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $config;
            $( $target(&mut c); )+
        }
    };
}

/// Declares the bench `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
