//! # gg-algorithms — the eight evaluated graph algorithms (Table II)
//!
//! Every algorithm is generic over [`Engine`](gg_core::Engine), so the same
//! code runs on GraphGrind-v2 and on the Ligra / Polymer / GraphGrind-v1
//! baselines — the comparison of Figure 9 is a comparison of traversal
//! policies, not of separate implementations.
//!
//! | Code | Algorithm | Orientation | Dense direction (Table II) |
//! |---|---|---|---|
//! | BC | betweenness centrality (Brandes, single source) | vertex | backward |
//! | CC | connected components (label propagation) | edge | backward |
//! | PR | PageRank, power method, 10 iterations | edge | backward |
//! | BFS | breadth-first search | vertex | backward |
//! | PRDelta | PageRank forwarding delta updates | edge | forward |
//! | SPMV | sparse matrix-vector product, 1 iteration | edge | forward |
//! | BF | Bellman-Ford single-source shortest paths | vertex | forward |
//! | BP | belief propagation, 10 iterations | edge | forward |
//!
//! The *direction* column is what the baselines use for dense frontiers;
//! GraphGrind-v2 ignores it (§III.B: the density decision subsumes the
//! direction choice).
//!
//! The `reference` module contains deliberately simple sequential oracles;
//! every engine × algorithm pair is validated against them in the test
//! suite.

pub mod bc;
pub mod bellman_ford;
pub mod bfs;
pub mod bp;
pub mod cc;
pub mod fused;
pub mod kcore;
pub mod pr;
pub mod prdelta;
pub mod radii;
pub mod reference;
pub mod spmv;
pub mod validate;

pub use bc::bc;
pub use bellman_ford::bellman_ford;
pub use bfs::bfs;
pub use bp::{bp, BpParams};
pub use cc::cc;
pub use fused::{
    fused_bfs, fused_ppr, fused_reachability, FusedBfsResult, FusedBfsRun, FusedPprResult,
    FusedPprRun,
};
pub use kcore::kcore;
pub use pr::pagerank;
pub use prdelta::{pagerank_delta, PrDeltaParams};
pub use radii::radii;
pub use spmv::spmv;

/// Identifiers for the eight algorithms, in the paper's presentation order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// Betweenness centrality.
    Bc,
    /// Connected components.
    Cc,
    /// PageRank (power method).
    Pr,
    /// Breadth-first search.
    Bfs,
    /// PageRank with delta updates.
    PrDelta,
    /// Sparse matrix-vector multiplication.
    Spmv,
    /// Bellman-Ford shortest paths.
    Bf,
    /// Belief propagation.
    Bp,
}

impl Algorithm {
    /// All eight algorithms in Table II order.
    pub fn all() -> [Algorithm; 8] {
        [
            Algorithm::Bc,
            Algorithm::Cc,
            Algorithm::Pr,
            Algorithm::Bfs,
            Algorithm::PrDelta,
            Algorithm::Spmv,
            Algorithm::Bf,
            Algorithm::Bp,
        ]
    }

    /// Short code used in tables and figures ("BC", "CC", ...).
    pub fn code(self) -> &'static str {
        match self {
            Algorithm::Bc => "BC",
            Algorithm::Cc => "CC",
            Algorithm::Pr => "PR",
            Algorithm::Bfs => "BFS",
            Algorithm::PrDelta => "PRDelta",
            Algorithm::Spmv => "SPMV",
            Algorithm::Bf => "BF",
            Algorithm::Bp => "BP",
        }
    }

    /// Whether Table II classifies the algorithm as vertex-oriented (V)
    /// rather than edge-oriented (E).
    pub fn vertex_oriented(self) -> bool {
        matches!(self, Algorithm::Bc | Algorithm::Bfs | Algorithm::Bf)
    }

    /// The dense traversal direction Table II reports for the baselines.
    pub fn preferred_direction(self) -> gg_core::engine::Direction {
        use gg_core::engine::Direction;
        match self {
            Algorithm::Bc | Algorithm::Cc | Algorithm::Pr | Algorithm::Bfs => Direction::Backward,
            Algorithm::PrDelta | Algorithm::Spmv | Algorithm::Bf | Algorithm::Bp => {
                Direction::Forward
            }
        }
    }

    /// The [`EdgeMapSpec`](gg_core::engine::EdgeMapSpec) matching Table II.
    pub fn spec(self) -> gg_core::engine::EdgeMapSpec {
        use gg_core::engine::{EdgeMapSpec, Orientation};
        EdgeMapSpec {
            orientation: if self.vertex_oriented() {
                Orientation::Vertex
            } else {
                Orientation::Edge
            },
            preferred: self.preferred_direction(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gg_core::engine::Direction;

    #[test]
    fn table2_classification() {
        assert_eq!(Algorithm::all().len(), 8);
        assert!(Algorithm::Bfs.vertex_oriented());
        assert!(Algorithm::Bc.vertex_oriented());
        assert!(Algorithm::Bf.vertex_oriented());
        assert!(!Algorithm::Pr.vertex_oriented());
        assert_eq!(Algorithm::Pr.preferred_direction(), Direction::Backward);
        assert_eq!(Algorithm::Spmv.preferred_direction(), Direction::Forward);
        assert_eq!(Algorithm::PrDelta.code(), "PRDelta");
    }
}
