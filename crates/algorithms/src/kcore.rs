//! k-core decomposition by parallel peeling (extension beyond the paper's
//! eight algorithms; part of the Ligra benchmark suite the compared
//! systems ship).
//!
//! Vertices are peeled in rounds of increasing `k`: whenever a vertex's
//! remaining degree drops below `k` it is removed and its neighbours'
//! degrees decrement — an edge map whose *activation* condition is a
//! threshold crossing, exercising a different update pattern
//! (`fetch_sub`-style) than the other algorithms.
//!
//! Expects a symmetric graph (like CC); the coreness of a vertex is the
//! largest `k` such that it belongs to a subgraph of minimum degree `k`.

use std::sync::atomic::{AtomicU32, Ordering};

use gg_core::edge_map::EdgeOp;
use gg_core::engine::{EdgeMapSpec, Engine};
use gg_core::vertex_map::frontier_from_predicate;
use gg_graph::bitmap::AtomicBitmap;
use gg_graph::types::VertexId;

/// k-core output.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct KcoreResult {
    /// Coreness per vertex.
    pub coreness: Vec<u32>,
    /// Maximum coreness (the degeneracy of the graph).
    pub degeneracy: u32,
}

struct PeelOp<'a> {
    /// Remaining degree; decremented as neighbours are peeled.
    degree: &'a [AtomicU32],
    /// Vertices already peeled.
    dead: &'a AtomicBitmap,
    /// Current peeling threshold.
    k: u32,
}

impl EdgeOp for PeelOp<'_> {
    #[inline]
    fn update(&self, _src: VertexId, dst: VertexId, _w: f32) -> bool {
        if self.dead.get(dst as usize) {
            return false;
        }
        let old = self.degree[dst as usize].load(Ordering::Relaxed);
        self.degree[dst as usize].store(old.saturating_sub(1), Ordering::Relaxed);
        // Activate exactly when the degree crosses below k.
        old == self.k
    }

    #[inline]
    fn update_atomic(&self, _src: VertexId, dst: VertexId, _w: f32) -> bool {
        if self.dead.get(dst as usize) {
            return false;
        }
        let old = self.degree[dst as usize].fetch_sub(1, Ordering::Relaxed);
        debug_assert!(old > 0, "degree underflow");
        old == self.k
    }

    #[inline]
    fn cond(&self, dst: VertexId) -> bool {
        !self.dead.get(dst as usize)
    }
}

/// Computes the k-core decomposition of a symmetric graph.
pub fn kcore<E: Engine>(engine: &E) -> KcoreResult {
    let n = engine.num_vertices();
    let degree: Vec<AtomicU32> = engine
        .out_degrees()
        .iter()
        .map(|&d| AtomicU32::new(d))
        .collect();
    let dead = AtomicBitmap::new(n);
    let mut coreness = vec![0u32; n];
    let mut alive = n;
    let mut k = 1u32;
    let spec = EdgeMapSpec::vertex_oriented();

    while alive > 0 {
        // Collect the initial peel set for this k: alive vertices whose
        // remaining degree is below k.
        let mut frontier = frontier_from_predicate(n, engine.pool(), engine.out_degrees(), |v| {
            !dead.get(v as usize) && degree[v as usize].load(Ordering::Relaxed) < k
        });
        while !frontier.is_empty() {
            for v in frontier.iter() {
                coreness[v as usize] = k - 1;
                dead.set(v as usize);
                alive -= 1;
            }
            let op = PeelOp {
                degree: &degree,
                dead: &dead,
                k,
            };
            frontier = engine.edge_map(&frontier, &op, spec);
        }
        k += 1;
    }
    let degeneracy = coreness.iter().copied().max().unwrap_or(0);
    KcoreResult {
        coreness,
        degeneracy,
    }
}

/// Sequential reference: repeated minimum-degree peeling.
pub fn kcore_reference(el: &gg_graph::edge_list::EdgeList) -> Vec<u32> {
    let csr = gg_graph::csr::Csr::from_edge_list(el);
    let n = el.num_vertices();
    let mut degree: Vec<i64> = el.out_degrees().iter().map(|&d| d as i64).collect();
    let mut dead = vec![false; n];
    let mut coreness = vec![0u32; n];
    let mut alive = n;
    let mut k = 1i64;
    while alive > 0 {
        loop {
            let peel: Vec<u32> = (0..n as u32)
                .filter(|&v| !dead[v as usize] && degree[v as usize] < k)
                .collect();
            if peel.is_empty() {
                break;
            }
            for &v in &peel {
                dead[v as usize] = true;
                coreness[v as usize] = (k - 1) as u32;
                alive -= 1;
            }
            for &v in &peel {
                for &u in csr.neighbors(v) {
                    degree[u as usize] -= 1;
                }
            }
        }
        k += 1;
    }
    coreness
}

#[cfg(test)]
mod tests {
    use super::*;
    use gg_core::config::Config;
    use gg_core::engine::GraphGrind2;
    use gg_graph::generators;
    use gg_graph::ops::symmetrize;

    #[test]
    fn complete_graph_core() {
        // K6: every vertex has coreness 5.
        let el = generators::complete(6);
        let engine = GraphGrind2::new(&el, Config::for_tests());
        let got = kcore(&engine);
        assert_eq!(got.coreness, vec![5; 6]);
        assert_eq!(got.degeneracy, 5);
    }

    #[test]
    fn cycle_is_2_core() {
        let el = symmetrize(&generators::cycle(10));
        let engine = GraphGrind2::new(&el, Config::for_tests());
        let got = kcore(&engine);
        assert_eq!(got.coreness, vec![2; 10]);
    }

    #[test]
    fn star_leaves_are_1_core() {
        let el = generators::star(8);
        let engine = GraphGrind2::new(&el, Config::for_tests());
        let got = kcore(&engine);
        assert_eq!(got.coreness, vec![1; 8]);
        assert_eq!(got.degeneracy, 1);
    }

    #[test]
    fn matches_reference_on_random_graphs() {
        for seed in [7u64, 8, 9] {
            let el = symmetrize(&generators::erdos_renyi(120, 800, seed));
            let engine = GraphGrind2::new(&el, Config::for_tests());
            let got = kcore(&engine);
            assert_eq!(got.coreness, kcore_reference(&el), "seed {seed}");
        }
    }

    #[test]
    fn isolated_vertices_have_coreness_zero() {
        let el = gg_graph::edge_list::EdgeList::from_edges(4, &[(0, 1), (1, 0)]);
        let engine = GraphGrind2::new(&el, Config::for_tests());
        let got = kcore(&engine);
        assert_eq!(got.coreness, vec![1, 1, 0, 0]);
    }
}
