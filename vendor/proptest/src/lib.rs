//! Offline stand-in for `proptest`.
//!
//! Provides the subset of the proptest API the workspace's property tests
//! use: the [`Strategy`] trait (with `prop_map` / `prop_flat_map`), range
//! and tuple strategies, [`collection::vec`], [`ProptestConfig`] and the
//! [`proptest!`] / [`prop_assert!`] / [`prop_assert_eq!`] macros.
//!
//! Differences from real proptest, acceptable for this workspace:
//! * cases are generated from a deterministic per-case seed (case index),
//!   so failures are always reproducible without persistence files;
//! * there is **no shrinking** — a failing case reports its inputs via the
//!   panic message and case number instead.

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Test-runner plumbing: configuration and the per-case RNG.
pub mod test_runner {
    use super::*;

    /// Mirror of `proptest::test_runner::Config` (the fields we use).
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }

    /// The RNG handed to strategies.
    pub struct TestRng {
        pub(crate) inner: SmallRng,
    }

    impl TestRng {
        /// Deterministic RNG for one case: every run of the suite sees the
        /// same inputs for the same case index.
        pub fn deterministic(case: u64) -> Self {
            TestRng {
                inner: SmallRng::seed_from_u64(case.wrapping_mul(0x9E3779B97F4A7C15) ^ 0x5EED),
            }
        }
    }
}

/// Generation strategies.
pub mod strategy {
    use super::test_runner::TestRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn new_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { base: self, f }
        }

        /// Generates a value, then generates from the strategy `f` returns.
        fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { base: self, f }
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        base: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn new_value(&self, rng: &mut TestRng) -> U {
            (self.f)(self.base.new_value(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        base: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn new_value(&self, rng: &mut TestRng) -> S2::Value {
            let intermediate = self.base.new_value(rng);
            (self.f)(intermediate).new_value(rng)
        }
    }

    macro_rules! range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    rng.inner.gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    rng.inner.gen_range(self.clone())
                }
            }
        )*};
    }

    range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.new_value(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);

    /// A strategy that always yields a clone of one value
    /// (`proptest::strategy::Just`).
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn new_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }
}

/// Collection strategies.
pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use rand::Rng;
    use std::ops::Range;

    /// Strategy for `Vec`s with length drawn from `size` and elements from
    /// `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Mirror of `proptest::collection::vec`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.size.is_empty() {
                0
            } else {
                rng.inner.gen_range(self.size.clone())
            };
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

/// `use proptest::prelude::*;`
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Asserts a condition inside a property (panics on failure, like a plain
/// `assert!` — this shim has no shrinking phase to feed a `Result` into).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Inequality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Declares property tests. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    (@cfg ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            #[test]
            fn $name() {
                let cfg: $crate::test_runner::Config = $cfg;
                for case in 0..cfg.cases as u64 {
                    let mut rng = $crate::test_runner::TestRng::deterministic(case);
                    $(
                        let $arg = $crate::strategy::Strategy::new_value(&($strat), &mut rng);
                    )+
                    let run = || $body;
                    run();
                }
            }
        )*
    };
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    (
        $($rest:tt)*
    ) => {
        $crate::proptest!(@cfg ($crate::test_runner::Config::default()) $($rest)*);
    };
}
