//! Graph partitioning (Algorithm 1 of the paper).
//!
//! The paper partitions the *edge set* by first partitioning the vertex set
//! into contiguous ranges and then assigning every edge to the **home
//! partition** of one of its endpoints:
//!
//! * **Partitioning by destination** (Equation 1): all in-edges of a vertex
//!   live in the vertex's home partition. This is the scheme the paper
//!   builds on — it confines all *updates* to a vertex to one partition, so
//!   one thread per partition needs no hardware atomics (§III.C).
//! * **Partitioning by source** (Equation 2): all out-edges of a vertex live
//!   in its home partition. Implemented for completeness and ablation; the
//!   paper discards it because backward traversal is most useful on sparse
//!   frontiers where partitioning does not pay (§II.C).
//!
//! Cut points are chosen greedily in a single pass (Algorithm 1): walk the
//! vertices in identifier order accumulating the relevant degree, and close
//! a partition once it reaches `|E| / P` edges. Alternatively a
//! vertex-balanced cut assigns `|V| / P` vertices per partition — the paper
//! uses this for *vertex-oriented* algorithms (§III.D).

use crate::types::VertexId;

/// Which endpoint's home partition an edge is assigned to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PartitionBy {
    /// All in-edges of a vertex are in its home partition (Equation 1).
    Destination,
    /// All out-edges of a vertex are in its home partition (Equation 2).
    Source,
}

/// What quantity the greedy cut balances across partitions.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BalanceMode {
    /// Equal number of edges per partition (Algorithm 1; used for
    /// edge-oriented algorithms and always for the COO layout).
    Edges,
    /// Equal number of vertices per partition (used for vertex-oriented
    /// algorithms, §III.D).
    Vertices,
}

/// A partitioning of the vertex range `0..n` into `P` contiguous,
/// non-overlapping, covering intervals.
///
/// `boundaries` has `P + 1` entries with `boundaries[0] == 0` and
/// `boundaries[P] == n`; partition `p` owns vertices
/// `boundaries[p]..boundaries[p + 1]`.
///
/// ```
/// use gg_graph::prelude::*;
///
/// // In-degrees [3, 1, 0, 4]: Algorithm 1 closes a partition once it has
/// // accumulated |E|/P = 4 edges (after vertices 0 and 1 here).
/// let set = PartitionSet::edge_balanced(&[3, 1, 0, 4], 2, PartitionBy::Destination);
/// assert_eq!(set.range(0), 0..2);
/// assert_eq!(set.range(1), 2..4);
/// // Every in-edge of a vertex shares the vertex's home partition.
/// assert_eq!(set.edge_home(0, 3), set.home(3));
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PartitionSet {
    boundaries: Vec<VertexId>,
    by: PartitionBy,
    balance: BalanceMode,
}

impl PartitionSet {
    /// Runs Algorithm 1: partitions `0..n` into `num_partitions` ranges so
    /// that the per-vertex `degrees` (in-degrees for
    /// [`PartitionBy::Destination`], out-degrees for
    /// [`PartitionBy::Source`]) are balanced.
    ///
    /// The greedy cut is *remaining-aware*: the target for partition `i` is
    /// `ceil(remaining_edges / remaining_partitions)`, recomputed after each
    /// cut. A partition closes at the first vertex whose accumulated degree
    /// reaches the target, so every partition (including the last, which
    /// under a fixed `|E| / P` target used to silently absorb the whole
    /// remainder) holds at most `|E| / P + max(degrees)` edges.
    ///
    /// With more partitions than vertices carrying edges, the trailing
    /// partitions are empty ranges; [`empty_partitions`](Self::empty_partitions)
    /// reports them explicitly so executors can skip them.
    ///
    /// # Panics
    /// Panics if `num_partitions == 0`.
    pub fn edge_balanced(degrees: &[u32], num_partitions: usize, by: PartitionBy) -> Self {
        assert!(num_partitions > 0, "need at least one partition");
        let n = degrees.len();
        let total: u64 = degrees.iter().map(|&d| d as u64).sum();

        let mut boundaries = Vec::with_capacity(num_partitions + 1);
        boundaries.push(0);
        let mut remaining = total;
        // At least 1 so zero-edge graphs still produce valid (possibly
        // empty) ranges instead of one cut per vertex.
        let mut target = remaining.div_ceil(num_partitions as u64).max(1);
        let mut acc = 0u64;
        for (v, &d) in degrees.iter().enumerate() {
            if acc >= target && boundaries.len() < num_partitions {
                boundaries.push(v as VertexId);
                remaining -= acc;
                let parts_left = (num_partitions + 1 - boundaries.len()) as u64;
                target = remaining.div_ceil(parts_left).max(1);
                acc = 0;
            }
            acc += d as u64;
        }
        // Close any partitions that never reached their target (possible for
        // skewed degree distributions) and the final boundary.
        while boundaries.len() < num_partitions {
            boundaries.push(n as VertexId);
        }
        boundaries.push(n as VertexId);

        PartitionSet {
            boundaries,
            by,
            balance: BalanceMode::Edges,
        }
    }

    /// Partitions `0..n` into `num_partitions` ranges of (nearly) equal
    /// vertex count.
    pub fn vertex_balanced(n: usize, num_partitions: usize, by: PartitionBy) -> Self {
        assert!(num_partitions > 0, "need at least one partition");
        let p = num_partitions;
        let mut boundaries = Vec::with_capacity(p + 1);
        for i in 0..=p {
            // Distribute the remainder one vertex at a time so sizes differ
            // by at most one.
            boundaries.push(((n as u64 * i as u64) / p as u64) as VertexId);
        }
        PartitionSet {
            boundaries,
            by,
            balance: BalanceMode::Vertices,
        }
    }

    /// Convenience constructor selecting the balance mode dynamically.
    pub fn new(
        degrees: &[u32],
        num_partitions: usize,
        by: PartitionBy,
        balance: BalanceMode,
    ) -> Self {
        match balance {
            BalanceMode::Edges => Self::edge_balanced(degrees, num_partitions, by),
            BalanceMode::Vertices => Self::vertex_balanced(degrees.len(), num_partitions, by),
        }
    }

    /// The trivial single-partition set over `0..n`.
    pub fn whole(n: usize, by: PartitionBy) -> Self {
        PartitionSet {
            boundaries: vec![0, n as VertexId],
            by,
            balance: BalanceMode::Vertices,
        }
    }

    /// Number of partitions `P`.
    #[inline]
    pub fn num_partitions(&self) -> usize {
        self.boundaries.len() - 1
    }

    /// Number of vertices `n`.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        *self.boundaries.last().unwrap() as usize
    }

    /// Which endpoint decides an edge's home partition.
    #[inline]
    pub fn by(&self) -> PartitionBy {
        self.by
    }

    /// The balance mode the cut points were chosen with.
    #[inline]
    pub fn balance(&self) -> BalanceMode {
        self.balance
    }

    /// The vertex range owned by partition `p`.
    #[inline]
    pub fn range(&self, p: usize) -> std::ops::Range<VertexId> {
        self.boundaries[p]..self.boundaries[p + 1]
    }

    /// All `P + 1` cut points.
    #[inline]
    pub fn boundaries(&self) -> &[VertexId] {
        &self.boundaries
    }

    /// Home partition of vertex `v` (binary search over cut points).
    #[inline]
    pub fn home(&self, v: VertexId) -> usize {
        debug_assert!((v as usize) < self.num_vertices());
        // partition_point returns the first boundary > v; partitions are
        // right-open so the home is that index minus one.
        self.boundaries.partition_point(|&b| b <= v) - 1
    }

    /// Home partition of the edge `(src, dst)` under this set's
    /// [`PartitionBy`] rule.
    #[inline]
    pub fn edge_home(&self, src: VertexId, dst: VertexId) -> usize {
        match self.by {
            PartitionBy::Destination => self.home(dst),
            PartitionBy::Source => self.home(src),
        }
    }

    /// Range-local offset of `v` inside partition `p` — the index used by
    /// range-aligned per-partition output buffers
    /// (`gg_graph::bitmap::BitmapSegment`).
    ///
    /// # Panics
    /// Debug-panics if `v` is not owned by `p`.
    #[inline]
    pub fn local_offset(&self, p: usize, v: VertexId) -> usize {
        debug_assert!(
            self.range(p).contains(&v),
            "vertex {v} not in partition {p}"
        );
        (v - self.boundaries[p]) as usize
    }

    /// Inverse of [`local_offset`](Self::local_offset): the global vertex id
    /// at range-local `offset` of partition `p`.
    #[inline]
    pub fn globalize(&self, p: usize, offset: usize) -> VertexId {
        debug_assert!(
            offset < self.range(p).len(),
            "offset {offset} outside partition {p}"
        );
        self.boundaries[p] + offset as VertexId
    }

    /// Indices of partitions whose vertex range is empty — produced, for
    /// example, by [`edge_balanced`](Self::edge_balanced) when there are
    /// more partitions than vertices. Returned explicitly (rather than
    /// silently owning zero vertices) so executors can assert they skip
    /// them without scheduling work.
    pub fn empty_partitions(&self) -> Vec<usize> {
        (0..self.num_partitions())
            .filter(|&p| self.range(p).is_empty())
            .collect()
    }

    /// Number of edges assigned to each partition given the per-vertex
    /// degree array used at construction time.
    pub fn edges_per_partition(&self, degrees: &[u32]) -> Vec<u64> {
        (0..self.num_partitions())
            .map(|p| {
                let r = self.range(p);
                degrees[r.start as usize..r.end as usize]
                    .iter()
                    .map(|&d| d as u64)
                    .sum()
            })
            .collect()
    }

    /// Checks the partition invariants: sorted boundaries covering `0..n`.
    pub fn validate(&self) -> Result<(), String> {
        if self.boundaries.first() != Some(&0) {
            return Err("first boundary must be 0".into());
        }
        if !self.boundaries.windows(2).all(|w| w[0] <= w[1]) {
            return Err("boundaries must be non-decreasing".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edge_list::EdgeList;

    #[test]
    fn vertex_balanced_sizes_differ_by_at_most_one() {
        let ps = PartitionSet::vertex_balanced(10, 3, PartitionBy::Destination);
        let sizes: Vec<usize> = (0..3).map(|p| ps.range(p).len()).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 10);
        assert!(sizes.iter().all(|&s| s == 3 || s == 4));
        ps.validate().unwrap();
    }

    #[test]
    fn edge_balanced_respects_target() {
        // 8 vertices with in-degrees summing to 16; target 16/4 = 4.
        let deg = vec![4, 0, 4, 0, 4, 0, 4, 0];
        let ps = PartitionSet::edge_balanced(&deg, 4, PartitionBy::Destination);
        assert_eq!(ps.num_partitions(), 4);
        let per = ps.edges_per_partition(&deg);
        assert_eq!(per.iter().sum::<u64>(), 16);
        for &e in &per {
            assert!(e >= 4, "partition underfilled: {per:?}");
        }
        ps.validate().unwrap();
    }

    #[test]
    fn edge_balanced_handles_skew() {
        // One hub vertex with huge in-degree.
        let mut deg = vec![1u32; 100];
        deg[0] = 1000;
        let ps = PartitionSet::edge_balanced(&deg, 8, PartitionBy::Destination);
        assert_eq!(ps.num_partitions(), 8);
        ps.validate().unwrap();
        // All vertices are covered exactly once.
        let covered: usize = (0..8).map(|p| ps.range(p).len()).sum();
        assert_eq!(covered, 100);
    }

    #[test]
    fn more_partitions_than_vertices() {
        let deg = vec![1u32; 3];
        let ps = PartitionSet::edge_balanced(&deg, 10, PartitionBy::Destination);
        assert_eq!(ps.num_partitions(), 10);
        ps.validate().unwrap();
        let covered: usize = (0..10).map(|p| ps.range(p).len()).sum();
        assert_eq!(covered, 3);
        // The vacuous trailing partitions are reported explicitly.
        assert_eq!(ps.empty_partitions(), (3..10).collect::<Vec<_>>());
        for &p in &ps.empty_partitions() {
            assert!(ps.range(p).is_empty());
        }
    }

    #[test]
    fn edge_balanced_bounded_by_avg_plus_max_degree() {
        // The remaining-aware cut keeps *every* partition — including the
        // last — within |E|/P + max(degree). Uniform degrees with p ∤ n is
        // exactly the case the old fixed-target walk overfilled: 10
        // vertices of degree 1 over 4 partitions left 4 edges in the last
        // partition (bound: 10/4 + 1 < 4).
        let deg = vec![1u32; 10];
        let ps = PartitionSet::edge_balanced(&deg, 4, PartitionBy::Destination);
        let bound = 10u64 / 4 + 1;
        for e in ps.edges_per_partition(&deg) {
            assert!(e <= bound, "partition overfilled: {e} > {bound}");
        }
    }

    #[test]
    fn no_empty_partitions_when_vertices_suffice() {
        let deg = vec![2u32; 64];
        let ps = PartitionSet::edge_balanced(&deg, 8, PartitionBy::Destination);
        assert!(ps.empty_partitions().is_empty());
    }

    #[test]
    fn home_lookup_matches_ranges() {
        let ps = PartitionSet::vertex_balanced(100, 7, PartitionBy::Destination);
        for p in 0..7 {
            for v in ps.range(p) {
                assert_eq!(ps.home(v), p, "vertex {v}");
            }
        }
    }

    #[test]
    fn local_offsets_roundtrip() {
        let ps = PartitionSet::vertex_balanced(100, 7, PartitionBy::Destination);
        for p in 0..7 {
            for v in ps.range(p) {
                let off = ps.local_offset(p, v);
                assert!(off < ps.range(p).len());
                assert_eq!(ps.globalize(p, off), v);
            }
        }
    }

    #[test]
    fn edge_home_follows_rule() {
        let ps_d = PartitionSet::vertex_balanced(10, 2, PartitionBy::Destination);
        let ps_s = PartitionSet::vertex_balanced(10, 2, PartitionBy::Source);
        assert_eq!(ps_d.edge_home(1, 9), 1); // dst 9 lives in partition 1
        assert_eq!(ps_s.edge_home(1, 9), 0); // src 1 lives in partition 0
    }

    #[test]
    fn destination_rule_groups_in_edges() {
        // The defining property (Equation 1): every in-edge of a vertex maps
        // to that vertex's home partition.
        let el = EdgeList::from_edges(6, &[(0, 5), (1, 5), (2, 5), (3, 0), (4, 0), (5, 2), (0, 2)]);
        let ps = PartitionSet::edge_balanced(&el.in_degrees(), 3, PartitionBy::Destination);
        for (u, v) in el.iter() {
            assert_eq!(ps.edge_home(u, v), ps.home(v));
        }
    }

    #[test]
    fn whole_is_one_partition() {
        let ps = PartitionSet::whole(42, PartitionBy::Destination);
        assert_eq!(ps.num_partitions(), 1);
        assert_eq!(ps.range(0), 0..42);
        assert_eq!(ps.home(41), 0);
    }
}
