//! PageRank with delta updates (edge-oriented, forward) — the paper's
//! showcase algorithm: its frontier density decays from all-active to
//! nearly empty, so a single run exercises all three traversal classes
//! (on Twitter the paper observes 8 dense, 3 medium-dense and 22 sparse
//! frontiers).
//!
//! The formulation follows Ligra's PageRankDelta: vertices propagate only
//! the *change* of their rank, and a vertex stays active while its delta
//! exceeds `epsilon` relative to its accumulated rank. With
//! `epsilon == 0` the algorithm is exactly the power method (used by the
//! validation tests); positive `epsilon` trades accuracy for rapidly
//! shrinking frontiers.

use gg_core::edge_map::EdgeOp;
use gg_core::engine::Engine;
use gg_core::vertex_map::frontier_from_predicate;
use gg_graph::types::VertexId;
use gg_runtime::atomics::{atomic_f64_vec, snapshot_f64, AtomicF64};

use crate::pr::DAMPING;
use crate::Algorithm;

/// PRDelta parameters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PrDeltaParams {
    /// Relative activity threshold: vertex stays active while
    /// `|delta[v]| > epsilon * p[v]` (Ligra's `epsilon2`, default 0.01).
    pub epsilon: f64,
    /// Maximum rounds (safety net; convergence usually ends earlier).
    pub max_rounds: usize,
}

impl Default for PrDeltaParams {
    fn default() -> Self {
        PrDeltaParams {
            epsilon: 0.01,
            max_rounds: 50,
        }
    }
}

/// PRDelta output.
#[derive(Clone, Debug, PartialEq)]
pub struct PrDeltaResult {
    /// Accumulated rank per vertex.
    pub rank: Vec<f64>,
    /// Rounds executed.
    pub rounds: usize,
    /// Active-vertex count per round (the density trajectory behind the
    /// three-way classification).
    pub frontier_sizes: Vec<usize>,
}

struct DeltaOp<'a> {
    /// Per-source `delta[s] / deg_out(s)`, precomputed per round.
    outgoing: &'a [AtomicF64],
    acc: &'a [AtomicF64],
}

impl EdgeOp for DeltaOp<'_> {
    #[inline]
    fn update(&self, src: VertexId, dst: VertexId, _w: f32) -> bool {
        self.acc[dst as usize].add_exclusive(self.outgoing[src as usize].load());
        true
    }

    #[inline]
    fn update_atomic(&self, src: VertexId, dst: VertexId, _w: f32) -> bool {
        self.acc[dst as usize].fetch_add(self.outgoing[src as usize].load());
        true
    }
}

/// Runs PRDelta; returns accumulated ranks and the frontier trajectory.
pub fn pagerank_delta<E: Engine>(engine: &E, params: PrDeltaParams) -> PrDeltaResult {
    let n = engine.num_vertices();
    if n == 0 {
        return PrDeltaResult {
            rank: Vec::new(),
            rounds: 0,
            frontier_sizes: Vec::new(),
        };
    }
    let inv_n = 1.0 / n as f64;
    let degrees = engine.out_degrees();
    // p_0 = uniform; delta_0 = p_0 (what round 1 propagates).
    let p = atomic_f64_vec(n, inv_n);
    let delta = atomic_f64_vec(n, inv_n);
    let outgoing = atomic_f64_vec(n, 0.0);
    let acc = atomic_f64_vec(n, 0.0);
    let spec = Algorithm::PrDelta.spec();

    let mut frontier = engine.frontier_all();
    let mut rounds = 0usize;
    let mut frontier_sizes = Vec::new();
    while !frontier.is_empty() && rounds < params.max_rounds {
        frontier_sizes.push(frontier.len());
        engine.vertex_map_all(|v| {
            let d = degrees[v as usize].max(1) as f64;
            outgoing[v as usize].store(delta[v as usize].load() / d);
            acc[v as usize].store(0.0);
        });
        let op = DeltaOp {
            outgoing: &outgoing,
            acc: &acc,
        };
        let _ = engine.edge_map(&frontier, &op, spec);
        rounds += 1;
        let first_round = rounds == 1;
        engine.vertex_map_all(|v| {
            let i = v as usize;
            let nd = if first_round {
                // Delta_1 = p_1 - p_0 with p_1 = (1-d)/n + d * nghSum.
                DAMPING * acc[i].load() + (1.0 - DAMPING) * inv_n - p[i].load()
            } else {
                DAMPING * acc[i].load()
            };
            delta[i].store(nd);
            p[i].store(p[i].load() + nd);
        });
        frontier = frontier_from_predicate(n, engine.pool(), degrees, |v| {
            let i = v as usize;
            delta[i].load().abs() > params.epsilon * p[i].load()
        });
    }
    PrDeltaResult {
        rank: snapshot_f64(&p),
        rounds,
        frontier_sizes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;
    use crate::validate::assert_close_f64;
    use gg_core::config::Config;
    use gg_core::engine::GraphGrind2;
    use gg_graph::generators;

    #[test]
    fn epsilon_zero_is_exact_power_method() {
        let el = generators::rmat(8, 3000, generators::RmatParams::skewed(), 13);
        let engine = GraphGrind2::new(&el, Config::for_tests());
        let got = pagerank_delta(
            &engine,
            PrDeltaParams {
                epsilon: 0.0,
                max_rounds: 10,
            },
        );
        // PRDelta's p after k rounds equals power-method rank after k
        // iterations (dropped deltas are exactly zero when epsilon = 0).
        let want = reference::pagerank(&el, 10);
        assert_close_f64(&got.rank, &want, 1e-9, 1e-15);
    }

    #[test]
    fn positive_epsilon_approximates_pagerank() {
        let el = generators::rmat(9, 6000, generators::RmatParams::skewed(), 14);
        let engine = GraphGrind2::new(&el, Config::for_tests());
        let got = pagerank_delta(&engine, PrDeltaParams::default());
        let want = reference::pagerank(&el, 50);
        // L1 distance bounded by the truncation threshold regime.
        let l1: f64 = got.rank.iter().zip(&want).map(|(a, b)| (a - b).abs()).sum();
        assert!(l1 < 0.05, "L1 distance {l1}");
    }

    #[test]
    fn frontier_density_decays() {
        // The paper's motivation: frontier sizes shrink over rounds.
        let el = generators::rmat(9, 6000, generators::RmatParams::skewed(), 15);
        let engine = GraphGrind2::new(&el, Config::for_tests());
        let got = pagerank_delta(&engine, PrDeltaParams::default());
        assert!(got.frontier_sizes.len() >= 3);
        let first = got.frontier_sizes[0];
        let last = *got.frontier_sizes.last().unwrap();
        assert_eq!(first, el.num_vertices());
        assert!(last < first / 2, "{:?}", got.frontier_sizes);
    }

    #[test]
    fn exercises_multiple_kernel_classes() {
        // A single PRDelta run should hit at least two of the three
        // traversal classes on a skewed graph (the Algorithm 2 showcase).
        let el = generators::rmat(10, 20_000, generators::RmatParams::skewed(), 16);
        let engine = GraphGrind2::new(&el, Config::for_tests());
        let _ = pagerank_delta(&engine, PrDeltaParams::default());
        let (s, m, d) = engine.kernel_counts().snapshot();
        let classes_used = [s, m, d].iter().filter(|&&c| c > 0).count();
        assert!(classes_used >= 2, "sparse={s} medium={m} dense={d}");
    }
}
