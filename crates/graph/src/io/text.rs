//! Plain-text edge lists in the SNAP style: one `src dst [weight]` per
//! line, `#`-prefixed comment lines ignored, whitespace-separated.

use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

use crate::edge_list::EdgeList;

/// Parses an edge list from text. The vertex count is the maximum endpoint
/// plus one unless a larger `min_vertices` is given (to keep trailing
/// isolated vertices).
pub fn parse_text(input: &str, min_vertices: usize) -> Result<EdgeList, String> {
    let mut edges: Vec<(u32, u32)> = Vec::new();
    let mut weights: Vec<f32> = Vec::new();
    let mut any_weight = false;
    for (lineno, line) in input.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut it = line.split_whitespace();
        let u: u32 = it
            .next()
            .ok_or_else(|| format!("line {}: missing src", lineno + 1))?
            .parse()
            .map_err(|e| format!("line {}: bad src ({e})", lineno + 1))?;
        let v: u32 = it
            .next()
            .ok_or_else(|| format!("line {}: missing dst", lineno + 1))?
            .parse()
            .map_err(|e| format!("line {}: bad dst ({e})", lineno + 1))?;
        let w = match it.next() {
            Some(tok) => {
                any_weight = true;
                tok.parse::<f32>()
                    .map_err(|e| format!("line {}: bad weight ({e})", lineno + 1))?
            }
            None => 1.0,
        };
        if it.next().is_some() {
            return Err(format!("line {}: trailing tokens", lineno + 1));
        }
        edges.push((u, v));
        weights.push(w);
    }
    let n = crate::types::implied_vertex_count(edges.iter().copied()).max(min_vertices);
    let el = if any_weight {
        let triples: Vec<(u32, u32, f32)> = edges
            .iter()
            .zip(&weights)
            .map(|(&(u, v), &w)| (u, v, w))
            .collect();
        EdgeList::from_weighted_edges(n, &triples)
    } else {
        EdgeList::from_edges(n, &edges)
    };
    el.validate()?;
    Ok(el)
}

/// Reads a text edge list from a file.
pub fn read_text<P: AsRef<Path>>(path: P, min_vertices: usize) -> Result<EdgeList, String> {
    let file = std::fs::File::open(path.as_ref())
        .map_err(|e| format!("open {}: {e}", path.as_ref().display()))?;
    let mut buf = String::new();
    BufReader::new(file)
        .read_to_string(&mut buf)
        .map_err(|e| format!("read: {e}"))?;
    parse_text(&buf, min_vertices)
}

/// Writes a text edge list (with weights when present).
pub fn write_text<P: AsRef<Path>>(el: &EdgeList, path: P) -> Result<(), String> {
    let file = std::fs::File::create(path.as_ref())
        .map_err(|e| format!("create {}: {e}", path.as_ref().display()))?;
    let mut out = BufWriter::new(file);
    writeln!(out, "# gg-graph edge list: {} vertices", el.num_vertices())
        .map_err(|e| e.to_string())?;
    for i in 0..el.num_edges() {
        let (u, v) = el.edge(i);
        if el.is_weighted() {
            writeln!(out, "{u} {v} {}", el.weight(i)).map_err(|e| e.to_string())?;
        } else {
            writeln!(out, "{u} {v}").map_err(|e| e.to_string())?;
        }
    }
    out.flush().map_err(|e| e.to_string())
}

#[allow(dead_code)]
fn _assert_bufread_usable<R: BufRead>(_: R) {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_basic() {
        let el = parse_text("# comment\n0 1\n1 2\n\n2 0\n", 0).unwrap();
        assert_eq!(el.num_vertices(), 3);
        assert_eq!(el.num_edges(), 3);
        assert!(!el.is_weighted());
    }

    #[test]
    fn parse_weighted() {
        let el = parse_text("0 1 2.5\n1 0 0.5\n", 0).unwrap();
        assert!(el.is_weighted());
        assert_eq!(el.weight(0), 2.5);
    }

    #[test]
    fn mixed_weights_default_to_one() {
        let el = parse_text("0 1 2.5\n1 0\n", 0).unwrap();
        assert_eq!(el.weight(1), 1.0);
    }

    #[test]
    fn min_vertices_respected() {
        let el = parse_text("0 1\n", 10).unwrap();
        assert_eq!(el.num_vertices(), 10);
    }

    #[test]
    fn errors_are_reported_with_line() {
        let err = parse_text("0 1\nx 2\n", 0).unwrap_err();
        assert!(err.contains("line 2"), "{err}");
        let err = parse_text("0\n", 0).unwrap_err();
        assert!(err.contains("missing dst"), "{err}");
        let err = parse_text("0 1 2 3\n", 0).unwrap_err();
        assert!(err.contains("trailing"), "{err}");
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("gg_graph_text_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.txt");
        let el = crate::generators::erdos_renyi(20, 50, 1);
        write_text(&el, &path).unwrap();
        let back = read_text(&path, el.num_vertices()).unwrap();
        assert_eq!(el, back);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn weighted_file_roundtrip() {
        let dir = std::env::temp_dir().join("gg_graph_text_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("gw.txt");
        let mut el = crate::generators::erdos_renyi(10, 30, 2);
        crate::weights::attach_integer(&mut el, 5, 3);
        write_text(&el, &path).unwrap();
        let back = read_text(&path, el.num_vertices()).unwrap();
        assert_eq!(el, back);
        std::fs::remove_file(&path).ok();
    }
}
