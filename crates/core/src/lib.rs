//! # gg-core — the GraphGrind-v2 graph-analytics engine
//!
//! This crate implements the primary contribution of the ICPP 2017 paper:
//! a Ligra-style shared-memory graph framework whose edge traversal
//! *autonomously* selects among three graph layouts based on frontier
//! density (Algorithm 2), using partitioning-by-destination to improve
//! temporal locality and to remove hardware atomics.
//!
//! ## The three-way classification
//!
//! For a frontier `F` over a graph with `|E|` edges, with
//! `metric = |F| + Σ_{v∈F} deg_out(v)`:
//!
//! * `metric > |E| / 2` — **dense**: traverse the partitioned COO layout,
//!   one thread per partition, no atomics;
//! * `metric > |E| / 20` — **medium-dense**: backward traversal of the
//!   *unpartitioned* CSC with partitioned computation ranges (partitioning
//!   by destination does not change CSC edge order, §II.C), no atomics;
//! * otherwise — **sparse**: forward traversal of the unpartitioned CSR
//!   over the active vertices only, with atomic updates.
//!
//! The forward/backward choice the Ligra API forces on programmers folds
//! into this decision and disappears from the public API.
//!
//! ## The partition-parallel execution path
//!
//! With [`config::ExecutorKind::Partitioned`], the [traversal
//! planner](plan) runs the classification above **per partition** instead
//! of once per edge map, and additionally chooses each partition's
//! **output representation**. `Engine::new` materialises one subgraph view
//! per edge-balanced destination partition; each edge map fans the
//! non-empty partitions out over the engine's
//! [`Pool`](gg_runtime::pool::Pool) in NUMA-domain-major order, every pool
//! task returns a typed output buffer, and the buffers merge in partition
//! order:
//!
//! ```text
//! frontier ──▶ TraversalPlan ────────▶ typed tasks ─────────▶ merge
//!              per partition:           sparse kernel →        partition-order
//!              |F∩R_p| + Σdeg(F∩R_p)    sorted vertex list     concatenation;
//!              → (kernel, output-repr)  dense kernel →         all-sparse rounds
//!              (empty partitions         range-aligned         do O(Σ outputs),
//!               skipped, no pool work)   bitmap segment        no O(|V|/64) floor
//! ```
//!
//! Both kernels apply updates destination-major in CSC adjacency order, so
//! results are **bit-identical across partition counts, thread counts,
//! kernel choices and output representations** for operators that do not
//! read concurrently-updated source state. See [`partitioned`] for the
//! full contract and [`plan`] for the decision rules.
//!
//! ## Crate layout
//!
//! * [`store::GraphStore`] — the composite 3-layout store (whole CSR +
//!   whole CSC + partitioned COO, §III.B);
//! * [`frontier::Frontier`] — sparse (vertex list) and dense (bitmap)
//!   frontier representations with cached density metrics;
//! * [`edge_map`] — the traversal kernels and the [`EdgeOp`] trait;
//! * [`engine`] — the [`Engine`] trait shared with the baseline systems and
//!   [`GraphGrind2`], this paper's engine;
//! * [`plan`] — the traversal planner: the single Algorithm 2 classifier
//!   plus per-partition (kernel, output-representation) planning;
//! * [`partitioned`] — the partition-parallel executor: per-partition
//!   views, planned typed output buffers, NUMA-ordered fan-out and the
//!   deterministic partition-order merge;
//! * [`fused`] — multi-source frontier fusion: K-lane batched traversals
//!   ([`fused::FusedFrontier`], [`fused::MultiSourceOp`]) that advance up
//!   to 64 concurrent queries per edge scan on the same partitioned
//!   executor;
//! * [`vertex_map`] — vertex-parallel operators;
//! * [`trace`] — instrumented (sequential) traversals that feed
//!   `gg-memsim` for the Figure 2 / Figure 8 locality measurements.
//!
//! ## Quick example
//!
//! ```
//! use gg_core::prelude::*;
//! use gg_graph::generators;
//!
//! let el = generators::rmat(8, 2000, generators::RmatParams::skewed(), 1);
//! let engine = GraphGrind2::new(&el, Config::for_tests());
//! // Count edges by an edge map that activates every destination.
//! struct Activate;
//! impl EdgeOp for Activate {
//!     fn update(&self, _s: u32, _d: u32, _w: f32) -> bool { true }
//!     fn update_atomic(&self, _s: u32, _d: u32, _w: f32) -> bool { true }
//! }
//! let next = engine.edge_map(&engine.frontier_all(), &Activate, EdgeMapSpec::edge_oriented());
//! assert!(next.len() > 0);
//! ```

pub mod advisor;
pub mod config;
pub mod edge_map;
pub mod engine;
pub mod frontier;
pub mod fused;
pub mod heuristic;
pub mod partitioned;
pub mod plan;
pub mod store;
pub mod trace;
pub mod vertex_map;

/// Commonly used items, re-exported for convenience.
pub mod prelude {
    pub use crate::advisor::LayoutAdvice;
    pub use crate::config::{
        Config, ExecutorKind, ForcedKernel, LayoutPolicy, OutputMode, Thresholds,
    };
    pub use crate::edge_map::{EdgeKind, EdgeOp};
    pub use crate::engine::{Direction, EdgeMapSpec, Engine, GraphGrind2, Orientation};
    pub use crate::frontier::{Frontier, FrontierIter, FrontierView, PartitionOutput};
    pub use crate::fused::{FusedFrontier, FusedView, MultiSourceOp, MultiSourceReduce};
    pub use crate::heuristic::{suggest_partitions, HeuristicInputs};
    pub use crate::partitioned::{PartKernel, PartitionView};
    pub use crate::plan::{OutputRepr, PartStep, TraversalPlan};
    pub use crate::store::GraphStore;
}

pub use prelude::*;
