//! The GraphGrind-v1 traversal policy (Sun, Vandierendonck & Nikolopoulos,
//! ICS 2017 — "GraphGrind: Addressing Load Imbalance of Graph
//! Partitioning").
//!
//! The authors' previous system and the direct ancestor of GraphGrind-v2:
//! 4 partitions (one per NUMA domain) of **pruned** partitioned CSR (the
//! §II.E layout with explicit vertex ids), a whole-graph CSC whose
//! computation ranges are balanced per the algorithm's vertex- or
//! edge-orientation (the v1 contribution), but still:
//!
//! * a two-way sparse/dense classification (no medium class),
//! * a programmer-declared dense direction,
//! * no COO layout, so partitioning cannot scale beyond a few partitions.

use gg_core::edge_map::{self, EdgeOp};
use gg_core::engine::{Direction, EdgeMapSpec, Engine, Orientation};
use gg_core::frontier::Frontier;
use gg_graph::csc::Csc;
use gg_graph::csr::{Csr, PartitionedCsr};
use gg_graph::edge_list::EdgeList;
use gg_graph::partition::{PartitionBy, PartitionSet};
use gg_graph::types::VertexId;
use gg_runtime::counters::WorkCounters;
use gg_runtime::numa::NumaTopology;
use gg_runtime::pool::Pool;

use crate::common::EngineBase;

/// Ligra-compatible sparse threshold divisor.
const SPARSE_DIVISOR: u64 = 20;

/// The GraphGrind-v1 baseline engine.
#[derive(Debug)]
pub struct GraphGrind1 {
    base: EngineBase,
    csr: Csr,
    csc: Csc,
    /// Pruned per-domain CSR partitions for dense forward traversal.
    pcsr: PartitionedCsr,
    /// Edge-balanced destination ranges (edge-oriented algorithms).
    edge_ranges: Vec<std::ops::Range<VertexId>>,
    /// Vertex-balanced destination ranges (vertex-oriented algorithms).
    vertex_ranges: Vec<std::ops::Range<VertexId>>,
}

impl GraphGrind1 {
    /// Builds the engine: one CSR partition per domain of `numa`, and
    /// per-thread balanced CSC ranges.
    pub fn new(el: &EdgeList, threads: usize, numa: NumaTopology) -> Self {
        let base = EngineBase::new(el.out_degrees(), el.num_edges(), threads);
        let n = el.num_vertices();
        let in_deg = el.in_degrees();
        let parts = PartitionSet::edge_balanced(&in_deg, numa.domains(), PartitionBy::Destination);
        let csr = Csr::from_edge_list(el);
        let csc = Csc::from_edge_list(el);
        let pcsr = PartitionedCsr::new(el, &parts);
        let chunks = (threads * 4).max(numa.domains());
        let e_set = PartitionSet::edge_balanced(&in_deg, chunks, PartitionBy::Destination);
        let v_set = PartitionSet::vertex_balanced(n, chunks, PartitionBy::Destination);
        GraphGrind1 {
            base,
            csr,
            csc,
            pcsr,
            edge_ranges: (0..e_set.num_partitions())
                .map(|p| e_set.range(p))
                .collect(),
            vertex_ranges: (0..v_set.num_partitions())
                .map(|p| v_set.range(p))
                .collect(),
        }
    }

    /// Builds with the paper's 4-domain topology.
    pub fn paper_default(el: &EdgeList, threads: usize) -> Self {
        Self::new(el, threads, NumaTopology::paper_machine())
    }

    /// The pruned partitioned CSR (exposed for storage accounting).
    pub fn partitioned_csr(&self) -> &PartitionedCsr {
        &self.pcsr
    }
}

impl Engine for GraphGrind1 {
    fn num_vertices(&self) -> usize {
        self.base.n
    }

    fn num_edges(&self) -> usize {
        self.base.m
    }

    fn out_degrees(&self) -> &[u32] {
        &self.base.out_degrees
    }

    fn pool(&self) -> &Pool {
        &self.base.pool
    }

    fn work_counters(&self) -> &WorkCounters {
        &self.base.counters
    }

    fn name(&self) -> &'static str {
        "GG-v1"
    }

    fn edge_map<O: EdgeOp>(&self, frontier: &Frontier, op: &O, spec: EdgeMapSpec) -> Frontier {
        if frontier.is_empty() {
            return Frontier::empty(self.base.n);
        }
        let sparse = frontier.density_metric() <= self.base.m as u64 / SPARSE_DIVISOR;
        if sparse {
            let active = frontier.to_vertex_list();
            let out = edge_map::sparse_forward_csr(
                &self.csr,
                &active,
                op,
                &self.base.pool,
                &self.base.scratch,
                &self.base.counters,
            );
            return Frontier::from_sparse(out, self.base.n, &self.base.out_degrees);
        }
        let current = frontier.to_bitmap();
        let next = match spec.preferred {
            Direction::Forward => edge_map::dense_forward_partitioned_csr(
                &self.pcsr,
                &current,
                op,
                &self.base.pool,
                &self.base.counters,
            ),
            Direction::Backward => {
                let ranges = match spec.orientation {
                    Orientation::Edge => &self.edge_ranges,
                    Orientation::Vertex => &self.vertex_ranges,
                };
                edge_map::medium_backward_csc(
                    &self.csc,
                    &current,
                    op,
                    &self.base.pool,
                    ranges,
                    &self.base.counters,
                )
            }
        };
        Frontier::from_atomic(next, &self.base.out_degrees, &self.base.pool)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gg_core::config::Config;
    use gg_core::engine::GraphGrind2;
    use gg_graph::generators;
    use std::sync::atomic::{AtomicU32, Ordering};

    struct MinLabel {
        labels: Vec<AtomicU32>,
    }

    impl MinLabel {
        fn new(n: usize) -> Self {
            MinLabel {
                labels: (0..n as u32).map(AtomicU32::new).collect(),
            }
        }
        fn snapshot(&self) -> Vec<u32> {
            self.labels
                .iter()
                .map(|l| l.load(Ordering::Relaxed))
                .collect()
        }
    }

    impl EdgeOp for MinLabel {
        fn update(&self, s: u32, d: u32, _w: f32) -> bool {
            let sl = self.labels[s as usize].load(Ordering::Relaxed);
            let dl = self.labels[d as usize].load(Ordering::Relaxed);
            if sl < dl {
                self.labels[d as usize].store(sl, Ordering::Relaxed);
                true
            } else {
                false
            }
        }
        fn update_atomic(&self, s: u32, d: u32, _w: f32) -> bool {
            let sl = self.labels[s as usize].load(Ordering::Relaxed);
            gg_runtime::atomics::fetch_min_u32(&self.labels[d as usize], sl)
        }
    }

    fn run_cc<E: Engine>(engine: &E, dir: Direction) -> Vec<u32> {
        let op = MinLabel::new(engine.num_vertices());
        let mut f = engine.frontier_all();
        let spec = EdgeMapSpec::edge_oriented().with_direction(dir);
        while !f.is_empty() {
            f = engine.edge_map(&f, &op, spec);
        }
        op.snapshot()
    }

    #[test]
    fn all_four_engines_agree_on_cc() {
        let el = gg_graph::ops::symmetrize(&generators::rmat(
            8,
            1800,
            generators::RmatParams::skewed(),
            23,
        ));
        let gg1 = GraphGrind1::new(&el, 2, NumaTopology::new(2));
        let ligra = crate::ligra::Ligra::new(&el, 2);
        let polymer = crate::polymer::Polymer::new(&el, 2, NumaTopology::new(2));
        let gg2 = GraphGrind2::new(&el, Config::for_tests());

        let reference = run_cc(&gg2, Direction::Forward);
        assert_eq!(run_cc(&gg1, Direction::Forward), reference);
        assert_eq!(run_cc(&gg1, Direction::Backward), reference);
        assert_eq!(run_cc(&ligra, Direction::Backward), reference);
        assert_eq!(run_cc(&polymer, Direction::Forward), reference);
    }

    #[test]
    fn pruned_visits_fewer_vertices_than_unpruned() {
        // GG-v1's pruning advantage over Polymer, measurable via counters.
        let el = generators::rmat(9, 800, generators::RmatParams::skewed(), 3);
        let n = el.num_vertices();
        let gg1 = GraphGrind1::new(&el, 2, NumaTopology::new(4));
        let polymer = crate::polymer::Polymer::new(&el, 2, NumaTopology::new(4));
        let spec = EdgeMapSpec::edge_oriented().with_direction(Direction::Forward);

        let op1 = MinLabel::new(n);
        let _ = gg1.edge_map(&gg1.frontier_all(), &op1, spec);
        let op2 = MinLabel::new(n);
        let _ = polymer.edge_map(&polymer.frontier_all(), &op2, spec);

        assert!(
            gg1.work_counters().vertices() < polymer.work_counters().vertices(),
            "pruned {} vs unpruned {}",
            gg1.work_counters().vertices(),
            polymer.work_counters().vertices()
        );
    }

    #[test]
    fn reports_identity() {
        let el = generators::erdos_renyi(10, 30, 2);
        let engine = GraphGrind1::paper_default(&el, 2);
        assert_eq!(engine.name(), "GG-v1");
        assert_eq!(engine.partitioned_csr().num_partitions(), 4);
    }
}
