//! Differential harness for the chunk-granular work-stealing executor.
//!
//! The planner splits every planned partition into edge-balanced chunks
//! (`Config::chunk_edges` / `GG_CHUNK`), and `Pool::run_stealing` executes
//! them with NUMA-domain-affine stealing; the merge in
//! `Frontier::from_partition_outputs` is keyed by `(partition, chunk)`
//! range order, so the promise is that **chunk size, thread count, steal
//! schedule and partition count are all invisible in results**. These
//! tests pin that promise:
//!
//! 1. **Bit-identity across chunk caps**: BFS, PR, CC and Bellman-Ford
//!    with caps {1, 64, unbounded, Auto} × 1–4 threads × 1/2/7 partitions
//!    all match the sequential engine (1 partition, 1 thread, unbounded)
//!    byte for byte — including caps small enough that mega-hub
//!    destinations split into sub-chunks reduced at merge time, and the
//!    adaptive cap derived per partition from `|E_p| / (k · threads)`.
//! 2. **Chunking actually balances**: on the skewed `powerlaw` scenario
//!    (star hubs concentrated in one destination partition) the steal
//!    counter is non-zero, every spawned chunk respects the hub-split
//!    `2 × cap` bound, and the observed `max_chunk_edges` drops below the
//!    top hub's in-degree (one vertex's scan no longer bounds a chunk).
//! 3. **Degenerate shapes survive**: single-chunk partitions (cap ≥
//!    partition edges) and per-vertex chunks (cap 1) are exercised by the
//!    cap sweep; an all-empty round and an edgeless graph terminate
//!    cleanly.
//!
//! The thread list honours `GG_THREADS` (CI diffs a 1-thread against a
//! 4-thread run of this suite, mirroring the `GG_CHUNK` legs).

use graphgrind::algorithms;
use graphgrind::bench::datasets::powerlaw_scenario;
use graphgrind::core::config::{threads_from_env, ChunkCap, Config, ExecutorKind};
use graphgrind::core::engine::{Engine, GraphGrind2};
use graphgrind::graph::edge_list::EdgeList;
use graphgrind::graph::generators::{self, RmatParams};
use graphgrind::graph::ops::symmetrize;
use graphgrind::runtime::numa::NumaTopology;

const CAPS: [ChunkCap; 4] = [
    ChunkCap::Fixed(1),
    ChunkCap::Fixed(64),
    ChunkCap::Fixed(usize::MAX),
    ChunkCap::Auto,
];
const PARTITIONS: [usize; 3] = [1, 2, 7];

/// The thread sweep: `GG_THREADS` (the CI thread-differential leg) pins a
/// single count, otherwise 1, 2 and 4.
fn thread_counts() -> Vec<usize> {
    match threads_from_env() {
        Some(t) => vec![t],
        None => vec![1, 2, 4],
    }
}

/// Partitioned-executor configuration with exact partition counts (UMA
/// topology: no rounding) and an explicit chunk-cap policy.
fn config(partitions: usize, threads: usize, chunk_edges: impl Into<ChunkCap>) -> Config {
    Config {
        threads,
        num_partitions: partitions,
        numa: NumaTopology::new(1),
        executor: ExecutorKind::Partitioned,
        chunk_edges: chunk_edges.into(),
        ..Config::default()
    }
}

/// The sequential engine every configuration must match: one partition on
/// one thread, one chunk per partition.
fn sequential(el: &EdgeList) -> GraphGrind2 {
    GraphGrind2::new(el, config(1, 1, usize::MAX))
}

/// Deterministic graphs covering the regimes chunking must not disturb:
/// skewed (dense rounds, uneven chunk counts) and a high-diameter grid
/// (sparse candidate slices).
fn graphs() -> Vec<(&'static str, EdgeList)> {
    vec![
        (
            "rmat-skewed",
            generators::rmat(8, 3000, RmatParams::skewed(), 7),
        ),
        ("grid-road", generators::grid_road(12, 12, 0.1, 9)),
    ]
}

#[test]
fn bfs_bit_identical_across_chunk_caps() {
    for (name, el) in graphs() {
        let seq = algorithms::bfs(&sequential(&el), 0);
        for cap in CAPS {
            for p in PARTITIONS {
                for t in thread_counts() {
                    let got = algorithms::bfs(&GraphGrind2::new(&el, config(p, t, cap)), 0);
                    assert_eq!(got.level, seq.level, "{name} cap={cap:?} P={p} T={t}");
                    assert_eq!(got.parent, seq.parent, "{name} cap={cap:?} P={p} T={t}");
                    assert_eq!(got.rounds, seq.rounds, "{name} cap={cap:?} P={p} T={t}");
                }
            }
        }
    }
}

#[test]
fn pagerank_bit_identical_across_chunk_caps() {
    for (name, el) in graphs() {
        let seq = algorithms::pagerank(&sequential(&el), 10);
        for cap in CAPS {
            for p in PARTITIONS {
                for t in thread_counts() {
                    let got = algorithms::pagerank(&GraphGrind2::new(&el, config(p, t, cap)), 10);
                    // f64 accumulation order is fixed (CSC order per
                    // destination, chunks tile the destination space), so
                    // equality is exact, not approximate.
                    assert_eq!(got, seq, "{name} cap={cap:?} P={p} T={t}");
                }
            }
        }
    }
}

#[test]
fn cc_labels_identical_across_chunk_caps() {
    for (name, el) in graphs() {
        let el = symmetrize(&el);
        let want = algorithms::reference::cc_labels(&el);
        assert_eq!(algorithms::cc(&sequential(&el)).label, want, "{name}/seq");
        for cap in CAPS {
            for p in PARTITIONS {
                for t in thread_counts() {
                    // CC reads source labels another chunk may be
                    // rewriting, so round counts may vary — the converged
                    // labels are the component minima everywhere.
                    let got = algorithms::cc(&GraphGrind2::new(&el, config(p, t, cap)));
                    assert_eq!(got.label, want, "{name} cap={cap:?} P={p} T={t}");
                }
            }
        }
    }
}

#[test]
fn bellman_ford_identical_across_chunk_caps() {
    for (name, el) in graphs() {
        let mut el = el;
        graphgrind::graph::weights::attach_integer(&mut el, 12, 0xBF);
        let seq = algorithms::bellman_ford(&sequential(&el), 0);
        for cap in CAPS {
            for p in PARTITIONS {
                for t in thread_counts() {
                    let got =
                        algorithms::bellman_ford(&GraphGrind2::new(&el, config(p, t, cap)), 0);
                    // f32 distances compare bitwise: every candidate is a
                    // path-prefix sum and the converged minimum is
                    // schedule-independent.
                    assert_eq!(got.dist, seq.dist, "{name} cap={cap:?} P={p} T={t}");
                }
            }
        }
    }
}

/// Acceptance criterion: on the skewed scale-free scenario, intra-partition
/// chunking spawns many more chunks than partitions, idle workers steal
/// (the counter is non-zero), mega-hub splitting engages (sub-chunks are
/// spawned and the observed `max_chunk_edges` drops **below the top hub's
/// in-degree**, which without splitting would be its floor) — and the
/// results still match the sequential engine exactly.
#[test]
fn skewed_scenario_steals_and_splits_hubs_without_oversized_chunks() {
    let el = powerlaw_scenario(0.05, 2.0, 16, 7);
    let cap = 64usize;
    let seq = algorithms::pagerank(&sequential(&el), 10);

    let cfg = Config {
        threads: 4,
        num_partitions: 4,
        numa: NumaTopology::new(2),
        executor: ExecutorKind::Partitioned,
        chunk_edges: ChunkCap::Fixed(cap),
        ..Config::default()
    };
    let engine = GraphGrind2::new(&el, cfg);
    let got = algorithms::pagerank(&engine, 10);
    assert_eq!(got, seq, "chunked run must match the sequential engine");

    let c = engine.work_counters();
    let partitions = engine.partition_views().len() as u64;
    assert!(
        c.chunks() > 10 * partitions,
        "the hub partitions must split into many chunks: {} chunks over {partitions} partitions",
        c.chunks()
    );
    assert!(
        c.steals() > 0,
        "light-domain workers must steal from the star-shaped partition"
    );
    let top_hub = engine
        .store()
        .in_degrees()
        .iter()
        .copied()
        .max()
        .unwrap_or(0) as u64;
    assert!(
        top_hub > 2 * cap as u64,
        "scenario sanity: the top hub ({top_hub}) must dwarf the cap"
    );
    assert!(
        c.hub_subchunks() > 0,
        "the star hubs must have been split into sub-chunks"
    );
    assert!(
        c.max_chunk_edges() < 2 * cap as u64,
        "hub-split chunk bound violated: {} >= 2 x {cap}",
        c.max_chunk_edges()
    );
    assert!(
        c.max_chunk_edges() < top_hub,
        "max chunk ({}) must drop below the top hub's in-degree ({top_hub})",
        c.max_chunk_edges()
    );
    assert!(c.mean_chunk_edges() > 0.0);
    assert!(c.cross_domain_steals() <= c.steals());
}

/// The hub-split cost model under the adaptive cap: the balanced grid
/// scenario (every in-degree a handful of edges) must run without a single
/// hub sub-chunk. Unconditional splitting would shred any destination
/// whose in-degree marginally exceeds the derived cap into sub-chunks
/// whose dispatch cost outweighs the imbalance they remove; the cost model
/// only splits when the excess exceeds `HUB_SPLIT_OVERHEAD_EDGES`.
#[test]
fn adaptive_cap_leaves_balanced_grid_unsplit() {
    let side = (250_000.0f64 * 0.05).sqrt() as usize;
    let el = generators::grid_road(side, side, 0.05, 13);
    let seq = algorithms::pagerank(&sequential(&el), 10);
    let engine = GraphGrind2::new(&el, config(4, 4, ChunkCap::Auto));
    let got = algorithms::pagerank(&engine, 10);
    assert_eq!(got, seq, "adaptive run must match the sequential engine");
    let c = engine.work_counters();
    assert!(c.chunks() > 0, "the traversal must have planned chunks");
    assert_eq!(
        c.hub_subchunks(),
        0,
        "the balanced grid must not hub-split under the cost model"
    );
}

/// The persistent pool under the same skewed run: hundreds of epochs, one
/// crew. `spawns()` stays at the thread count while `epochs()` grows with
/// the rounds executed.
#[test]
fn skewed_scenario_reuses_one_worker_crew() {
    let el = powerlaw_scenario(0.02, 2.0, 8, 7);
    let engine = GraphGrind2::new(&el, config(4, 4, 64usize));
    for _ in 0..5 {
        let _ = algorithms::pagerank(&engine, 10);
    }
    let pool = engine.pool();
    assert_eq!(
        pool.spawns(),
        4,
        "5 PageRank runs must reuse the same 4 workers"
    );
    assert!(
        pool.epochs() > pool.spawns(),
        "epochs ({}) must outnumber spawned threads ({}) — the pre-pool \
         executor spawned threads per round",
        pool.epochs(),
        pool.spawns()
    );
}

/// Degenerate rounds: an edgeless graph plans nothing (no chunks, no
/// steals), and a traversal that dies out mid-run leaves the counters
/// consistent.
#[test]
fn empty_rounds_plan_no_chunks() {
    let el = EdgeList::new(24);
    let engine = GraphGrind2::new(&el, config(4, 2, 1));
    let r = algorithms::bfs(&engine, 0);
    assert_eq!(r.level[0], 0);
    assert_eq!(engine.work_counters().chunks(), 0);
    assert_eq!(engine.work_counters().steals(), 0);
    assert_eq!(engine.work_counters().max_chunk_edges(), 0);

    // A single isolated edge: the traversal runs one real round, then the
    // all-empty round terminates cleanly under per-vertex chunking.
    let el = EdgeList::from_edges(24, &[(0, 1)]);
    let engine = GraphGrind2::new(&el, config(4, 2, 1));
    let r = algorithms::bfs(&engine, 0);
    assert_eq!(r.level[1], 1);
    assert!(engine.work_counters().chunks() > 0);
}
