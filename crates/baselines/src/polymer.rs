//! The Polymer traversal policy (Zhang, Chen & Chen, PPoPP 2015).
//!
//! NUMA-aware Ligra derivative: the graph is partitioned by destination
//! into one partition per NUMA domain (4 on the paper's machine). Each
//! partition stores a **full-width** CSR — §II.E: "Polymer does not prune
//! zero-degree vertices from the representation", so its storage grows as
//! `p·|V|·be + |E|·bv` and every dense forward traversal scans all `n`
//! offsets per partition. Backward traversal uses destination ranges that
//! are edge-balanced (Polymer's static work division), which handles skew
//! better than Ligra's vertex-count chunks.
//!
//! Physical page placement is simulated only (see crate docs).

use gg_core::edge_map::{self, EdgeOp};
use gg_core::engine::{Direction, EdgeMapSpec, Engine};
use gg_core::frontier::Frontier;
use gg_graph::csc::Csc;
use gg_graph::csr::{Csr, UnprunedPartitionedCsr};
use gg_graph::edge_list::EdgeList;
use gg_graph::partition::{PartitionBy, PartitionSet};
use gg_graph::types::VertexId;
use gg_runtime::counters::WorkCounters;
use gg_runtime::numa::NumaTopology;
use gg_runtime::pool::Pool;

use crate::common::EngineBase;

/// Ligra-compatible sparse threshold divisor.
const SPARSE_DIVISOR: u64 = 20;

/// The Polymer baseline engine.
#[derive(Debug)]
pub struct Polymer {
    base: EngineBase,
    /// Whole CSR for sparse traversal.
    csr: Csr,
    /// Whole CSC for backward traversal (destination ranges partition it).
    csc: Csc,
    /// Per-NUMA-domain unpruned CSR partitions for dense forward.
    pcsr: UnprunedPartitionedCsr,
    /// Edge-balanced destination ranges for backward traversal.
    dense_ranges: Vec<std::ops::Range<VertexId>>,
}

impl Polymer {
    /// Builds the engine: one partition per domain of `numa`.
    pub fn new(el: &EdgeList, threads: usize, numa: NumaTopology) -> Self {
        let base = EngineBase::new(el.out_degrees(), el.num_edges(), threads);
        let in_deg = el.in_degrees();
        let parts = PartitionSet::edge_balanced(&in_deg, numa.domains(), PartitionBy::Destination);
        let csr = Csr::from_edge_list(el);
        let csc = Csc::from_edge_list(el);
        let pcsr = UnprunedPartitionedCsr::new(el, &parts);
        // Backward work division: edge-balanced ranges, several per thread.
        let range_set = PartitionSet::edge_balanced(
            &in_deg,
            (threads * 4).max(numa.domains()),
            PartitionBy::Destination,
        );
        let dense_ranges = (0..range_set.num_partitions())
            .map(|p| range_set.range(p))
            .collect();
        Polymer {
            base,
            csr,
            csc,
            pcsr,
            dense_ranges,
        }
    }

    /// Builds with the paper's 4-domain topology.
    pub fn paper_default(el: &EdgeList, threads: usize) -> Self {
        Self::new(el, threads, NumaTopology::paper_machine())
    }

    /// The unpruned partitioned CSR (exposed for storage accounting).
    pub fn partitioned_csr(&self) -> &UnprunedPartitionedCsr {
        &self.pcsr
    }
}

impl Engine for Polymer {
    fn num_vertices(&self) -> usize {
        self.base.n
    }

    fn num_edges(&self) -> usize {
        self.base.m
    }

    fn out_degrees(&self) -> &[u32] {
        &self.base.out_degrees
    }

    fn pool(&self) -> &Pool {
        &self.base.pool
    }

    fn work_counters(&self) -> &WorkCounters {
        &self.base.counters
    }

    fn name(&self) -> &'static str {
        "Polymer"
    }

    fn edge_map<O: EdgeOp>(&self, frontier: &Frontier, op: &O, spec: EdgeMapSpec) -> Frontier {
        if frontier.is_empty() {
            return Frontier::empty(self.base.n);
        }
        let sparse = frontier.density_metric() <= self.base.m as u64 / SPARSE_DIVISOR;
        if sparse {
            let active = frontier.to_vertex_list();
            let out = edge_map::sparse_forward_csr(
                &self.csr,
                &active,
                op,
                &self.base.pool,
                &self.base.scratch,
                &self.base.counters,
            );
            return Frontier::from_sparse(out, self.base.n, &self.base.out_degrees);
        }
        let current = frontier.to_bitmap();
        let next = match spec.preferred {
            Direction::Forward => edge_map::dense_forward_unpruned_csr(
                &self.pcsr,
                &current,
                op,
                &self.base.pool,
                &self.base.counters,
            ),
            Direction::Backward => edge_map::medium_backward_csc(
                &self.csc,
                &current,
                op,
                &self.base.pool,
                &self.dense_ranges,
                &self.base.counters,
            ),
        };
        Frontier::from_atomic(next, &self.base.out_degrees, &self.base.pool)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gg_graph::generators;
    use std::sync::atomic::{AtomicU32, Ordering};

    struct Claim {
        parent: Vec<AtomicU32>,
    }

    impl EdgeOp for Claim {
        fn update(&self, s: u32, d: u32, _w: f32) -> bool {
            if self.parent[d as usize].load(Ordering::Relaxed) == u32::MAX {
                self.parent[d as usize].store(s, Ordering::Relaxed);
                true
            } else {
                false
            }
        }
        fn update_atomic(&self, s: u32, d: u32, _w: f32) -> bool {
            self.parent[d as usize]
                .compare_exchange(u32::MAX, s, Ordering::Relaxed, Ordering::Relaxed)
                .is_ok()
        }
        fn cond(&self, d: u32) -> bool {
            self.parent[d as usize].load(Ordering::Relaxed) == u32::MAX
        }
    }

    fn bfs_levels<E: Engine>(engine: &E, src: u32) -> Vec<u32> {
        let n = engine.num_vertices();
        let op = Claim {
            parent: gg_runtime::atomics::atomic_u32_vec(n, u32::MAX),
        };
        op.parent[src as usize].store(src, Ordering::Relaxed);
        let mut f = engine.frontier_single(src);
        let mut level = vec![u32::MAX; n];
        level[src as usize] = 0;
        let mut depth = 0;
        while !f.is_empty() {
            f = engine.edge_map(&f, &op, EdgeMapSpec::vertex_oriented());
            depth += 1;
            for v in f.iter() {
                level[v as usize] = depth;
            }
        }
        level
    }

    #[test]
    fn bfs_levels_match_ligra() {
        let el = generators::rmat(8, 2500, generators::RmatParams::skewed(), 17);
        let polymer = Polymer::new(&el, 2, NumaTopology::new(2));
        let ligra = crate::ligra::Ligra::new(&el, 2);
        assert_eq!(bfs_levels(&polymer, 0), bfs_levels(&ligra, 0));
    }

    #[test]
    fn unpruned_partitions_scan_more_vertices() {
        // Polymer's dense forward scans all n vertices per partition; the
        // counters expose the §II.F work increase.
        let el = generators::erdos_renyi(100, 4000, 5);
        let polymer = Polymer::new(&el, 2, NumaTopology::new(4));
        let op = Claim {
            parent: gg_runtime::atomics::atomic_u32_vec(100, u32::MAX),
        };
        let spec = EdgeMapSpec::vertex_oriented().with_direction(Direction::Forward);
        let _ = polymer.edge_map(&polymer.frontier_all(), &op, spec);
        // 4 partitions x 100 vertices scanned.
        assert_eq!(polymer.work_counters().vertices(), 400);
    }

    #[test]
    fn reports_identity() {
        let el = generators::erdos_renyi(10, 20, 1);
        let engine = Polymer::paper_default(&el, 2);
        assert_eq!(engine.name(), "Polymer");
        assert_eq!(engine.partitioned_csr().num_partitions(), 4);
    }
}
