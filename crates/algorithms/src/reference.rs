//! Deliberately simple sequential oracles used to validate every engine.
//!
//! These prioritise obviousness over speed: textbook queue BFS, binary-heap
//! Dijkstra, union-find components, dense-array PageRank and Brandes BC.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use gg_graph::csr::Csr;
use gg_graph::edge_list::EdgeList;

/// BFS levels from `src` (`u32::MAX` = unreachable).
pub fn bfs_levels(el: &EdgeList, src: u32) -> Vec<u32> {
    let csr = Csr::from_edge_list(el);
    let n = el.num_vertices();
    let mut level = vec![u32::MAX; n];
    level[src as usize] = 0;
    let mut queue = std::collections::VecDeque::from([src]);
    while let Some(u) = queue.pop_front() {
        for &v in csr.neighbors(u) {
            if level[v as usize] == u32::MAX {
                level[v as usize] = level[u as usize] + 1;
                queue.push_back(v);
            }
        }
    }
    level
}

/// Dijkstra distances from `src` for non-negative weights
/// (`f32::INFINITY` = unreachable). Distances are accumulated in `f32` to
/// match the parallel implementation exactly.
pub fn dijkstra(el: &EdgeList, src: u32) -> Vec<f32> {
    let csr = Csr::from_edge_list(el);
    let n = el.num_vertices();
    let mut dist = vec![f32::INFINITY; n];
    dist[src as usize] = 0.0;
    // (distance bits, vertex) — f32 bit patterns of non-negative floats
    // order correctly as u32.
    let mut heap: BinaryHeap<Reverse<(u32, u32)>> = BinaryHeap::new();
    heap.push(Reverse((0f32.to_bits(), src)));
    while let Some(Reverse((dbits, u))) = heap.pop() {
        let d = f32::from_bits(dbits);
        if d > dist[u as usize] {
            continue;
        }
        for e in csr.edge_range(u) {
            let v = csr.targets()[e];
            let cand = d + csr.weight_at(e);
            if cand < dist[v as usize] {
                dist[v as usize] = cand;
                heap.push(Reverse((cand.to_bits(), v)));
            }
        }
    }
    dist
}

/// Connected-component labels as the minimum vertex id per component.
/// Treats edges as undirected (matching label propagation on symmetrized
/// graphs).
pub fn cc_labels(el: &EdgeList) -> Vec<u32> {
    let n = el.num_vertices();
    let mut parent: Vec<u32> = (0..n as u32).collect();
    fn find(parent: &mut [u32], v: u32) -> u32 {
        let mut root = v;
        while parent[root as usize] != root {
            root = parent[root as usize];
        }
        let mut cur = v;
        while parent[cur as usize] != root {
            let next = parent[cur as usize];
            parent[cur as usize] = root;
            cur = next;
        }
        root
    }
    for (u, v) in el.iter() {
        let (ru, rv) = (find(&mut parent, u), find(&mut parent, v));
        if ru != rv {
            // Union by smaller id so the root is the component minimum.
            if ru < rv {
                parent[rv as usize] = ru;
            } else {
                parent[ru as usize] = rv;
            }
        }
    }
    (0..n as u32).map(|v| find(&mut parent, v)).collect()
}

/// PageRank by the power method (`iters` iterations, damping 0.85),
/// pull-ordered `f64` accumulation. Vertices with zero out-degree leak
/// rank (no sink redistribution), matching the parallel implementation
/// and Ligra's simple PageRank.
pub fn pagerank(el: &EdgeList, iters: usize) -> Vec<f64> {
    let n = el.num_vertices();
    let deg = el.out_degrees();
    let mut rank = vec![1.0 / n as f64; n];
    let mut next = vec![0.0f64; n];
    for _ in 0..iters {
        next.fill(0.0);
        for (u, v) in el.iter() {
            next[v as usize] += rank[u as usize] / deg[u as usize].max(1) as f64;
        }
        for x in next.iter_mut() {
            *x = 0.15 / n as f64 + 0.85 * *x;
        }
        std::mem::swap(&mut rank, &mut next);
    }
    rank
}

/// One sparse matrix-vector product `y[v] = Σ_{(u,v) ∈ E} w(u,v) · x[u]`.
pub fn spmv(el: &EdgeList, x: &[f64]) -> Vec<f64> {
    let n = el.num_vertices();
    assert_eq!(x.len(), n);
    let mut y = vec![0.0f64; n];
    for i in 0..el.num_edges() {
        let (u, v) = el.edge(i);
        y[v as usize] += el.weight(i) as f64 * x[u as usize];
    }
    y
}

/// Single-source betweenness dependency scores (Brandes' inner loop for
/// one source): `delta[u] = Σ_{v : u precedes v} σ_su/σ_sv · (1 + delta[v])`.
pub fn bc_single_source(el: &EdgeList, src: u32) -> Vec<f64> {
    let csr = Csr::from_edge_list(el);
    let n = el.num_vertices();
    let mut sigma = vec![0.0f64; n];
    let mut level = vec![u32::MAX; n];
    sigma[src as usize] = 1.0;
    level[src as usize] = 0;
    let mut order: Vec<u32> = vec![src];
    let mut queue = std::collections::VecDeque::from([src]);
    while let Some(u) = queue.pop_front() {
        for &v in csr.neighbors(u) {
            if level[v as usize] == u32::MAX {
                level[v as usize] = level[u as usize] + 1;
                queue.push_back(v);
                order.push(v);
            }
            if level[v as usize] == level[u as usize] + 1 {
                sigma[v as usize] += sigma[u as usize];
            }
        }
    }
    let mut delta = vec![0.0f64; n];
    for &u in order.iter().rev() {
        for &v in csr.neighbors(u) {
            if level[v as usize] == level[u as usize] + 1 {
                delta[u as usize] +=
                    sigma[u as usize] / sigma[v as usize] * (1.0 + delta[v as usize]);
            }
        }
    }
    delta
}

/// Simplified loopy belief propagation (see `crate::bp` for the model):
/// `iters` rounds of `b'[v] = phi[v] + λ Σ_{(u,v) ∈ E} tanh(b[u])`.
pub fn bp(el: &EdgeList, priors: &[f64], lambda: f64, iters: usize) -> Vec<f64> {
    let n = el.num_vertices();
    assert_eq!(priors.len(), n);
    let mut belief = priors.to_vec();
    let mut next = vec![0.0f64; n];
    for _ in 0..iters {
        let msg: Vec<f64> = belief.iter().map(|&b| lambda * b.tanh()).collect();
        next.copy_from_slice(priors);
        for (u, v) in el.iter() {
            next[v as usize] += msg[u as usize];
        }
        std::mem::swap(&mut belief, &mut next);
    }
    belief
}

#[cfg(test)]
mod tests {
    use super::*;
    use gg_graph::generators;

    #[test]
    fn bfs_on_path() {
        let el = generators::path(5);
        assert_eq!(bfs_levels(&el, 0), vec![0, 1, 2, 3, 4]);
        assert_eq!(bfs_levels(&el, 2), vec![u32::MAX, u32::MAX, 0, 1, 2]);
    }

    #[test]
    fn dijkstra_simple() {
        // 0 -> 1 (1.0), 1 -> 2 (1.0), 0 -> 2 (3.0): shortest 0->2 is 2.0.
        let el = EdgeList::from_weighted_edges(3, &[(0, 1, 1.0), (1, 2, 1.0), (0, 2, 3.0)]);
        let d = dijkstra(&el, 0);
        assert_eq!(d, vec![0.0, 1.0, 2.0]);
    }

    #[test]
    fn dijkstra_unweighted_equals_bfs() {
        let el = generators::rmat(7, 600, generators::RmatParams::skewed(), 5);
        let d = dijkstra(&el, 0);
        let l = bfs_levels(&el, 0);
        for v in 0..el.num_vertices() {
            if l[v] == u32::MAX {
                assert!(d[v].is_infinite());
            } else {
                assert_eq!(d[v], l[v] as f32);
            }
        }
    }

    #[test]
    fn cc_two_components() {
        let el = EdgeList::from_edges(6, &[(0, 1), (1, 2), (4, 5)]);
        assert_eq!(cc_labels(&el), vec![0, 0, 0, 3, 4, 4]);
    }

    #[test]
    fn pagerank_sums_below_one_with_leak() {
        let el = generators::cycle(8);
        let pr = pagerank(&el, 10);
        // A cycle has no sinks: ranks sum to 1 and are uniform.
        let sum: f64 = pr.iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
        for &r in &pr {
            assert!((r - 0.125).abs() < 1e-12);
        }
    }

    #[test]
    fn spmv_identity_like() {
        let el = EdgeList::from_weighted_edges(3, &[(0, 1, 2.0), (2, 1, 3.0)]);
        let y = spmv(&el, &[1.0, 10.0, 100.0]);
        assert_eq!(y, vec![0.0, 2.0 + 300.0, 0.0]);
    }

    #[test]
    fn bc_star_center() {
        // Symmetric star: all shortest paths between leaves go through 0.
        let el = generators::star(5);
        let delta = bc_single_source(&el, 1);
        // From leaf 1: 0 lies on paths to leaves 2,3,4.
        assert!(delta[0] > delta[2]);
        assert_eq!(delta[2], 0.0);
    }

    #[test]
    fn bp_no_edges_keeps_priors() {
        let el = EdgeList::new(3);
        let b = bp(&el, &[0.5, -0.5, 0.0], 0.3, 10);
        assert_eq!(b, vec![0.5, -0.5, 0.0]);
    }
}
