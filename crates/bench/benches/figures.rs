//! Criterion micro-benchmarks mirroring each figure of the paper at a
//! reduced, CI-friendly scale. The `repro` binary runs the full-scale
//! versions; these track regressions in the underlying kernels.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

use gg_algorithms::{Algorithm, PrDeltaParams};
use gg_bench::runner::{run_algorithm, Workload};
use gg_core::config::{Config, ForcedKernel};
use gg_core::engine::GraphGrind2;
use gg_core::trace::{fig2_reuse_profile, run_traced, TracedAlgorithm};
use gg_graph::edge_list::EdgeList;
use gg_graph::generators::{self, RmatParams};
use gg_graph::reorder::EdgeOrder;
use gg_memsim::cache::{Cache, CacheConfig};

/// Small Twitter-like RMAT used by all kernel benches.
fn bench_graph() -> EdgeList {
    generators::rmat(14, 200_000, RmatParams::skewed(), 42)
}

fn quick<'c>(
    c: &'c mut Criterion,
    name: &str,
) -> criterion::BenchmarkGroup<'c, criterion::measurement::WallTime> {
    let mut g = c.benchmark_group(name);
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(2));
    g.warm_up_time(Duration::from_millis(500));
    g
}

/// Figure 2: reuse-distance profiling cost / behaviour per partition count.
fn fig2_reuse(c: &mut Criterion) {
    let el = generators::rmat(12, 50_000, RmatParams::skewed(), 1);
    let mut g = quick(c, "fig2_reuse");
    for p in [1usize, 16, 64] {
        g.bench_with_input(BenchmarkId::from_parameter(p), &p, |b, &p| {
            b.iter(|| fig2_reuse_profile(&el, p));
        });
    }
    g.finish();
}

/// Figure 3: replication-factor computation.
fn fig3_replication(c: &mut Criterion) {
    let el = bench_graph();
    let mut g = quick(c, "fig3_replication");
    g.bench_function("sweep", |b| {
        b.iter(|| gg_graph::replication::replication_sweep(&el, &[4, 64, 384]));
    });
    g.finish();
}

/// Figure 4: storage model sweep.
fn fig4_storage(c: &mut Criterion) {
    let el = bench_graph();
    let mut g = quick(c, "fig4_storage");
    g.bench_function("sweep", |b| {
        b.iter(|| gg_graph::storage::storage_sweep(&el, &[4, 64, 384]));
    });
    g.finish();
}

/// Figure 5: PR under the four forced layouts.
fn fig5_layouts(c: &mut Criterion) {
    let el = bench_graph();
    let w = Workload::prepare(&el, Algorithm::Pr);
    let mut g = quick(c, "fig5_layouts_pr");
    for (label, force) in [
        ("csr_a", ForcedKernel::CsrAtomic),
        ("csc_na", ForcedKernel::CscNoAtomic),
        ("coo_na", ForcedKernel::CooNoAtomic),
        ("coo_a", ForcedKernel::CooAtomic),
    ] {
        let cfg = Config {
            threads: 4,
            num_partitions: 64,
            ..Config::default()
        }
        .with_forced(force);
        let engine = GraphGrind2::new(&w.el, cfg);
        g.bench_function(label, |b| {
            b.iter(|| run_algorithm(&engine, None, &w));
        });
    }
    g.finish();
}

/// Figure 7: COO edge sort order, PR.
fn fig7_sort_order(c: &mut Criterion) {
    let el = bench_graph();
    let w = Workload::prepare(&el, Algorithm::Pr);
    let mut g = quick(c, "fig7_sort_order_pr");
    for order in EdgeOrder::all() {
        let cfg = Config {
            threads: 4,
            num_partitions: 64,
            ..Config::default()
        }
        .with_edge_order(order)
        .with_forced(ForcedKernel::CooNoAtomic);
        let engine = GraphGrind2::new(&w.el, cfg);
        g.bench_function(order.label(), |b| {
            b.iter(|| run_algorithm(&engine, None, &w));
        });
    }
    g.finish();
}

/// Figure 8: traced PR into the LLC model.
fn fig8_mpki(c: &mut Criterion) {
    let el = generators::rmat(12, 50_000, RmatParams::skewed(), 2);
    let mut g = quick(c, "fig8_mpki_pr");
    for p in [4usize, 64] {
        g.bench_with_input(BenchmarkId::from_parameter(p), &p, |b, &p| {
            b.iter(|| {
                let mut cache = Cache::new(CacheConfig::l2_256k());
                run_traced(
                    &el,
                    p,
                    EdgeOrder::Hilbert,
                    TracedAlgorithm::PageRank,
                    &mut cache,
                );
                cache.stats().misses
            });
        });
    }
    g.finish();
}

/// Figure 9: the four engines on PR (engines prebuilt; only the algorithm
/// run is timed, matching the paper's methodology).
fn fig9_engines(c: &mut Criterion) {
    use gg_baselines::{GraphGrind1, Ligra, Polymer};
    use gg_runtime::numa::NumaTopology;

    let el = bench_graph();
    let w = Workload::prepare(&el, Algorithm::Pr);
    let threads = 4;
    let mut g = quick(c, "fig9_engines_pr");
    let ligra = Ligra::new(&w.el, threads);
    g.bench_function("L", |b| b.iter(|| run_algorithm(&ligra, None, &w)));
    let polymer = Polymer::new(&w.el, threads, NumaTopology::paper_machine());
    g.bench_function("P", |b| b.iter(|| run_algorithm(&polymer, None, &w)));
    let gg1 = GraphGrind1::new(&w.el, threads, NumaTopology::paper_machine());
    g.bench_function("GG-v1", |b| b.iter(|| run_algorithm(&gg1, None, &w)));
    let gg2 = GraphGrind2::new(
        &w.el,
        Config {
            threads,
            num_partitions: 64,
            ..Config::default()
        },
    );
    g.bench_function("GG-v2", |b| b.iter(|| run_algorithm(&gg2, None, &w)));
    g.finish();
}

/// Figure 10: PRDelta thread scaling on GG-v2.
fn fig10_scaling(c: &mut Criterion) {
    let el = bench_graph();
    let w = Workload::prepare(&el, Algorithm::PrDelta);
    let mut g = quick(c, "fig10_scaling_prdelta");
    for threads in [1usize, 2, 4] {
        let cfg = Config {
            threads,
            num_partitions: 64,
            ..Config::default()
        };
        let engine = GraphGrind2::new(&w.el, cfg);
        g.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, _| {
            b.iter(|| gg_algorithms::pagerank_delta(&engine, PrDeltaParams::default()));
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    fig2_reuse,
    fig3_replication,
    fig4_storage,
    fig5_layouts,
    fig7_sort_order,
    fig8_mpki,
    fig9_engines,
    fig10_scaling
);
criterion_main!(benches);
