//! Eccentricity (radii) estimation via 64-way bit-parallel BFS — another
//! Ligra-suite extension. Up to 64 sources run simultaneous BFS, each
//! owning one bit of a 64-bit visited mask; a vertex's radius estimate is
//! the last round in which its mask grew (its maximum distance to any
//! source). With `k >= n` sources on a connected symmetric graph this is
//! the exact eccentricity.
//!
//! Exercises yet another update pattern: idempotent bitwise OR with a
//! grew-or-not activation.

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

use gg_core::edge_map::EdgeOp;
use gg_core::engine::{EdgeMapSpec, Engine};
use gg_graph::types::VertexId;

/// Radii-estimation output.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RadiiResult {
    /// Estimated eccentricity per vertex (`0` for vertices no source
    /// reaches, including the sources' own round-0 visit).
    pub radii: Vec<u32>,
    /// The largest estimate — a lower bound on the graph diameter.
    pub diameter_estimate: u32,
    /// Rounds executed.
    pub rounds: usize,
}

struct RadiiOp<'a> {
    visited: &'a [AtomicU64],
    next_visited: &'a [AtomicU64],
    radii: &'a [AtomicU32],
    round: u32,
}

impl RadiiOp<'_> {
    #[inline]
    fn new_bits(&self, src: VertexId, dst: VertexId) -> u64 {
        let s = self.visited[src as usize].load(Ordering::Relaxed);
        let d = self.visited[dst as usize].load(Ordering::Relaxed);
        s & !d
    }
}

impl EdgeOp for RadiiOp<'_> {
    #[inline]
    fn update(&self, src: VertexId, dst: VertexId, _w: f32) -> bool {
        let bits = self.new_bits(src, dst);
        if bits == 0 {
            return false;
        }
        let prev = self.next_visited[dst as usize].load(Ordering::Relaxed);
        self.next_visited[dst as usize].store(prev | bits, Ordering::Relaxed);
        self.radii[dst as usize].store(self.round, Ordering::Relaxed);
        true
    }

    #[inline]
    fn update_atomic(&self, src: VertexId, dst: VertexId, _w: f32) -> bool {
        let bits = self.new_bits(src, dst);
        if bits == 0 {
            return false;
        }
        self.next_visited[dst as usize].fetch_or(bits, Ordering::Relaxed);
        self.radii[dst as usize].store(self.round, Ordering::Relaxed);
        true
    }
}

/// Runs bit-parallel BFS from up to 64 `sources`.
///
/// # Panics
/// Panics if more than 64 sources are given.
pub fn radii<E: Engine>(engine: &E, sources: &[VertexId]) -> RadiiResult {
    assert!(sources.len() <= 64, "at most 64 simultaneous sources");
    let n = engine.num_vertices();
    let visited: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
    let next_visited: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
    let radii_arr: Vec<AtomicU32> = gg_runtime::atomics::atomic_u32_vec(n, 0);
    for (i, &s) in sources.iter().enumerate() {
        visited[s as usize].fetch_or(1 << i, Ordering::Relaxed);
        next_visited[s as usize].fetch_or(1 << i, Ordering::Relaxed);
    }

    let mut frontier = engine.frontier_sparse(sources.to_vec());
    let mut round = 0u32;
    let spec = EdgeMapSpec::vertex_oriented();
    while !frontier.is_empty() {
        round += 1;
        let op = RadiiOp {
            visited: &visited,
            next_visited: &next_visited,
            radii: &radii_arr,
            round,
        };
        frontier = engine.edge_map(&frontier, &op, spec);
        // Fold the round's discoveries into the visited masks.
        engine.vertex_map(&frontier, |v| {
            let nv = next_visited[v as usize].load(Ordering::Relaxed);
            visited[v as usize].fetch_or(nv, Ordering::Relaxed);
        });
    }
    let radii_out = gg_runtime::atomics::snapshot_u32(&radii_arr);
    RadiiResult {
        diameter_estimate: radii_out.iter().copied().max().unwrap_or(0),
        radii: radii_out,
        rounds: round as usize,
    }
}

/// Sequential reference: per-source BFS, eccentricity = max distance from
/// any listed source to the vertex.
pub fn radii_reference(el: &gg_graph::edge_list::EdgeList, sources: &[VertexId]) -> Vec<u32> {
    let n = el.num_vertices();
    let mut out = vec![0u32; n];
    for &s in sources {
        let levels = crate::reference::bfs_levels(el, s);
        for v in 0..n {
            if levels[v] != u32::MAX && levels[v] > out[v] {
                out[v] = levels[v];
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use gg_core::config::Config;
    use gg_core::engine::GraphGrind2;
    use gg_graph::generators;
    use gg_graph::ops::symmetrize;

    #[test]
    fn exact_on_small_symmetric_graph() {
        // All vertices as sources (n <= 64): radii = exact eccentricities.
        let el = symmetrize(&generators::cycle(12));
        let sources: Vec<u32> = (0..12).collect();
        let engine = GraphGrind2::new(&el, Config::for_tests());
        let got = radii(&engine, &sources);
        assert_eq!(got.radii, radii_reference(&el, &sources));
        // A 12-cycle has eccentricity 6 everywhere.
        assert_eq!(got.radii, vec![6; 12]);
        assert_eq!(got.diameter_estimate, 6);
    }

    #[test]
    fn matches_reference_on_random_graph() {
        let el = symmetrize(&generators::erdos_renyi(60, 150, 3));
        let sources: Vec<u32> = (0..60).collect();
        let engine = GraphGrind2::new(&el, Config::for_tests());
        let got = radii(&engine, &sources);
        assert_eq!(got.radii, radii_reference(&el, &sources));
    }

    #[test]
    fn subset_of_sources_lower_bounds() {
        let el = symmetrize(&generators::grid_road(6, 6, 0.0, 0));
        let engine = GraphGrind2::new(&el, Config::for_tests());
        let all: Vec<u32> = (0..36).collect();
        let some = vec![0u32, 35];
        let full = radii(&engine, &all);
        let partial = radii(&engine, &some);
        assert_eq!(partial.radii, radii_reference(&el, &some));
        for v in 0..36 {
            assert!(partial.radii[v] <= full.radii[v]);
        }
    }

    #[test]
    #[should_panic(expected = "at most 64")]
    fn rejects_too_many_sources() {
        let el = generators::cycle(100);
        let engine = GraphGrind2::new(&el, Config::for_tests());
        let sources: Vec<u32> = (0..65).collect();
        let _ = radii(&engine, &sources);
    }
}
