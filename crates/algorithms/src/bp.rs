//! Simplified loopy belief propagation (edge-oriented, forward; 10
//! iterations as in Table II).
//!
//! **Substitution note (see DESIGN.md):** Polymer's BP benchmark keeps a
//! message per edge. This implementation uses a vertex-state formulation
//! with binary states in log-odds space: each round,
//!
//! ```text
//! b'[v] = phi[v] + λ · Σ_{(u,v) ∈ E} tanh(b[u])
//! ```
//!
//! where `phi` are prior logits and `λ` the coupling strength. The
//! traversal profile — 10 dense, forward, floating-point-heavy,
//! edge-oriented rounds — matches the paper's BP workload, which is what
//! the evaluation exercises; per-edge message storage would only change
//! constants.

use gg_core::edge_map::{EdgeMapReduce, EdgeOp};
use gg_core::engine::Engine;
use gg_graph::types::VertexId;
use gg_runtime::atomics::{atomic_f64_vec, snapshot_f64, AtomicF64};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::Algorithm;

/// BP hyper-parameters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BpParams {
    /// Coupling strength λ (keep `|λ| · max_in_degree` modest for
    /// stability).
    pub lambda: f64,
    /// Number of rounds (Table II: 10).
    pub iterations: usize,
}

impl Default for BpParams {
    fn default() -> Self {
        BpParams {
            lambda: 0.05,
            iterations: 10,
        }
    }
}

/// Deterministic prior logits in `[-1, 1]`, as used by the benchmarks.
pub fn random_priors(n: usize, seed: u64) -> Vec<f64> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect()
}

struct BpOp<'a> {
    msg: &'a [AtomicF64],
    acc: &'a [AtomicF64],
}

impl EdgeOp for BpOp<'_> {
    #[inline]
    fn update(&self, src: VertexId, dst: VertexId, _w: f32) -> bool {
        self.acc[dst as usize].add_exclusive(self.msg[src as usize].load());
        true
    }

    #[inline]
    fn update_atomic(&self, src: VertexId, dst: VertexId, _w: f32) -> bool {
        self.acc[dst as usize].fetch_add(self.msg[src as usize].load());
        true
    }
}

/// The belief accumulation is an associative sum of frozen per-source
/// messages, so hub sub-chunks can pre-reduce locally.
impl EdgeMapReduce for BpOp<'_> {
    #[inline]
    fn identity(&self) -> f64 {
        0.0
    }

    #[inline]
    fn accumulate(&self, acc: f64, src: VertexId, _w: f32) -> f64 {
        acc + self.msg[src as usize].load()
    }

    #[inline]
    fn combine(&self, a: f64, b: f64) -> f64 {
        a + b
    }

    #[inline]
    fn apply(&self, dst: VertexId, acc: f64) -> bool {
        self.acc[dst as usize].add_exclusive(acc);
        true
    }
}

/// Runs BP and returns the final belief logits.
///
/// # Panics
/// Panics if `priors.len() != engine.num_vertices()`.
pub fn bp<E: Engine>(engine: &E, priors: &[f64], params: BpParams) -> Vec<f64> {
    let n = engine.num_vertices();
    assert_eq!(priors.len(), n, "prior length mismatch");
    let belief = atomic_f64_vec(n, 0.0);
    let msg = atomic_f64_vec(n, 0.0);
    let acc = atomic_f64_vec(n, 0.0);
    engine.vertex_map_all(|v| {
        belief[v as usize].store(priors[v as usize]);
    });
    let spec = Algorithm::Bp.spec();

    for _ in 0..params.iterations {
        engine.vertex_map_all(|v| {
            msg[v as usize].store(params.lambda * belief[v as usize].load().tanh());
            acc[v as usize].store(priors[v as usize]);
        });
        let op = BpOp {
            msg: &msg,
            acc: &acc,
        };
        let frontier = engine.frontier_all();
        let _ = engine.edge_map_reduce(&frontier, &op, spec);
        engine.vertex_map_all(|v| {
            belief[v as usize].store(acc[v as usize].load());
        });
    }
    snapshot_f64(&belief)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;
    use crate::validate::assert_close_f64;
    use gg_core::config::Config;
    use gg_core::engine::GraphGrind2;
    use gg_graph::generators;

    #[test]
    fn matches_reference() {
        let el = generators::rmat(8, 2000, generators::RmatParams::mild(), 44);
        let priors = random_priors(el.num_vertices(), 1);
        let engine = GraphGrind2::new(&el, Config::for_tests());
        let got = bp(&engine, &priors, BpParams::default());
        let want = reference::bp(&el, &priors, 0.05, 10);
        assert_close_f64(&got, &want, 1e-9, 1e-12);
    }

    #[test]
    fn no_edges_keeps_priors() {
        let el = gg_graph::edge_list::EdgeList::new(5);
        let priors = vec![0.3, -0.7, 0.0, 1.0, -1.0];
        let engine = GraphGrind2::new(&el, Config::for_tests());
        let got = bp(&engine, &priors, BpParams::default());
        assert_eq!(got, priors);
    }

    #[test]
    fn positive_coupling_pulls_neighbors_together() {
        // Two vertices with opposite weak priors, strongly coupled both
        // ways: beliefs move toward each other relative to priors alone.
        let el = gg_graph::edge_list::EdgeList::from_edges(2, &[(0, 1), (1, 0)]);
        let priors = vec![0.8, -0.2];
        let engine = GraphGrind2::new(&el, Config::for_tests());
        let got = bp(
            &engine,
            &priors,
            BpParams {
                lambda: 0.4,
                iterations: 20,
            },
        );
        // Vertex 1 is dragged upward by its positive neighbour.
        assert!(got[1] > -0.2, "{got:?}");
    }
}
