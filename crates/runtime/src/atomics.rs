//! Atomic cells with dual update paths.
//!
//! The paper's central performance lever (§III.C): when every partition is
//! processed by exactly one thread and partitions have non-overlapping
//! update sets, value updates need **no hardware atomics** — they observed
//! 6.1–23.7 % speedup from removing them. In Rust we keep the arrays typed
//! as atomics for safety, but the *exclusive* path uses plain relaxed
//! load/store (compiling to ordinary `mov`s on x86), while the *atomic*
//! path uses `compare_exchange` loops / RMW instructions. The two paths
//! therefore reproduce exactly the "+na" vs "+a" cost difference.

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

/// An `f32` stored in an `AtomicU32`.
#[derive(Debug, Default)]
pub struct AtomicF32(AtomicU32);

impl AtomicF32 {
    /// Creates a cell holding `v`.
    pub fn new(v: f32) -> Self {
        AtomicF32(AtomicU32::new(v.to_bits()))
    }

    /// Relaxed load.
    #[inline]
    pub fn load(&self) -> f32 {
        f32::from_bits(self.0.load(Ordering::Relaxed))
    }

    /// Relaxed store (the exclusive / "+na" write path).
    #[inline]
    pub fn store(&self, v: f32) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Exclusive add: plain read-modify-write without atomicity. Sound only
    /// when the caller guarantees a single writer (partition exclusivity).
    #[inline]
    pub fn add_exclusive(&self, v: f32) {
        self.store(self.load() + v);
    }

    /// Atomic add via compare-exchange loop (the "+a" path).
    #[inline]
    pub fn fetch_add(&self, v: f32) -> f32 {
        let mut cur = self.0.load(Ordering::Relaxed);
        loop {
            let new = (f32::from_bits(cur) + v).to_bits();
            match self
                .0
                .compare_exchange_weak(cur, new, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return f32::from_bits(cur),
                Err(actual) => cur = actual,
            }
        }
    }

    /// Atomic minimum; returns `true` if the stored value decreased.
    /// NaN-free inputs assumed (graph weights are finite).
    #[inline]
    pub fn fetch_min(&self, v: f32) -> bool {
        let mut cur = self.0.load(Ordering::Relaxed);
        loop {
            if f32::from_bits(cur) <= v {
                return false;
            }
            match self.0.compare_exchange_weak(
                cur,
                v.to_bits(),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return true,
                Err(actual) => cur = actual,
            }
        }
    }

    /// Exclusive minimum; returns `true` if the stored value decreased.
    #[inline]
    pub fn min_exclusive(&self, v: f32) -> bool {
        if v < self.load() {
            self.store(v);
            true
        } else {
            false
        }
    }
}

/// An `f64` stored in an `AtomicU64`.
#[derive(Debug, Default)]
pub struct AtomicF64(AtomicU64);

impl AtomicF64 {
    /// Creates a cell holding `v`.
    pub fn new(v: f64) -> Self {
        AtomicF64(AtomicU64::new(v.to_bits()))
    }

    /// Relaxed load.
    #[inline]
    pub fn load(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }

    /// Relaxed store (the exclusive / "+na" write path).
    #[inline]
    pub fn store(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Exclusive add (single-writer contexts only).
    #[inline]
    pub fn add_exclusive(&self, v: f64) {
        self.store(self.load() + v);
    }

    /// Atomic add via compare-exchange loop.
    #[inline]
    pub fn fetch_add(&self, v: f64) -> f64 {
        let mut cur = self.0.load(Ordering::Relaxed);
        loop {
            let new = (f64::from_bits(cur) + v).to_bits();
            match self
                .0
                .compare_exchange_weak(cur, new, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return f64::from_bits(cur),
                Err(actual) => cur = actual,
            }
        }
    }
}

/// Allocates a vector of `n` atomic `f32` cells initialised to `v`.
pub fn atomic_f32_vec(n: usize, v: f32) -> Vec<AtomicF32> {
    let mut out = Vec::with_capacity(n);
    out.resize_with(n, || AtomicF32::new(v));
    out
}

/// Allocates a vector of `n` atomic `f64` cells initialised to `v`.
pub fn atomic_f64_vec(n: usize, v: f64) -> Vec<AtomicF64> {
    let mut out = Vec::with_capacity(n);
    out.resize_with(n, || AtomicF64::new(v));
    out
}

/// Allocates a vector of `n` `AtomicU32` cells initialised to `v`.
pub fn atomic_u32_vec(n: usize, v: u32) -> Vec<AtomicU32> {
    let mut out = Vec::with_capacity(n);
    out.resize_with(n, || AtomicU32::new(v));
    out
}

/// Atomic minimum on an `AtomicU32`; returns `true` if the value decreased.
#[inline]
pub fn fetch_min_u32(cell: &AtomicU32, v: u32) -> bool {
    cell.fetch_min(v, Ordering::Relaxed) > v
}

/// Copies atomic `f64` values into a plain vector (quiesced readers only).
pub fn snapshot_f64(cells: &[AtomicF64]) -> Vec<f64> {
    cells.iter().map(|c| c.load()).collect()
}

/// Copies atomic `f32` values into a plain vector.
pub fn snapshot_f32(cells: &[AtomicF32]) -> Vec<f32> {
    cells.iter().map(|c| c.load()).collect()
}

/// Copies atomic `u32` values into a plain vector.
pub fn snapshot_u32(cells: &[AtomicU32]) -> Vec<u32> {
    cells.iter().map(|c| c.load(Ordering::Relaxed)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn f32_roundtrip() {
        let c = AtomicF32::new(1.5);
        assert_eq!(c.load(), 1.5);
        c.store(-2.25);
        assert_eq!(c.load(), -2.25);
        c.add_exclusive(0.25);
        assert_eq!(c.load(), -2.0);
    }

    #[test]
    fn f32_fetch_add_concurrent() {
        let c = Arc::new(AtomicF32::new(0.0));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        c.fetch_add(1.0);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.load(), 8000.0);
    }

    #[test]
    fn f64_fetch_add_concurrent() {
        let c = Arc::new(AtomicF64::new(0.0));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        c.fetch_add(0.5);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.load(), 4000.0);
    }

    #[test]
    fn f32_fetch_min() {
        let c = AtomicF32::new(10.0);
        assert!(c.fetch_min(5.0));
        assert!(!c.fetch_min(7.0));
        assert_eq!(c.load(), 5.0);
        assert!(c.min_exclusive(1.0));
        assert!(!c.min_exclusive(1.0));
        assert_eq!(c.load(), 1.0);
    }

    #[test]
    fn u32_min_reports_decrease() {
        let c = AtomicU32::new(100);
        assert!(fetch_min_u32(&c, 50));
        assert!(!fetch_min_u32(&c, 50));
        assert!(!fetch_min_u32(&c, 60));
        assert_eq!(c.load(Ordering::Relaxed), 50);
    }

    #[test]
    fn concurrent_min_settles_to_global_min() {
        let c = Arc::new(AtomicU32::new(u32::MAX));
        let handles: Vec<_> = (0..8u32)
            .map(|t| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for i in 0..1000u32 {
                        fetch_min_u32(&c, (t * 1000 + i) ^ 0x5a5a);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let expect = (0..8u32)
            .flat_map(|t| (0..1000u32).map(move |i| (t * 1000 + i) ^ 0x5a5a))
            .min()
            .unwrap();
        assert_eq!(c.load(Ordering::Relaxed), expect);
    }

    #[test]
    fn vec_constructors() {
        let v = atomic_f64_vec(5, 3.0);
        assert_eq!(snapshot_f64(&v), vec![3.0; 5]);
        let v = atomic_f32_vec(4, -1.0);
        assert_eq!(snapshot_f32(&v), vec![-1.0; 4]);
        let v = atomic_u32_vec(3, 9);
        assert_eq!(snapshot_u32(&v), vec![9; 3]);
    }
}
