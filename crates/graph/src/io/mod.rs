//! Edge-list I/O: plain-text (SNAP-compatible) and a compact binary format.

mod binary;
mod text;

pub use binary::{read_binary, write_binary};
pub use text::{parse_text, read_text, write_text};
