//! The [`Engine`] abstraction and [`GraphGrind2`], the paper's engine.
//!
//! Algorithms in `gg-algorithms` are generic over [`Engine`], so the same
//! algorithm source runs on GraphGrind-v2 and on the baseline engines
//! (Ligra / Polymer / GraphGrind-v1 in `gg-baselines`) — exactly how the
//! paper's Figure 9 compares *traversal policies* rather than unrelated
//! codebases.
//!
//! [`EdgeMapSpec`] carries the per-algorithm metadata from Table II:
//! vertex- vs edge-orientation (selects the load-balancing ranges, §III.D)
//! and the traversal direction the *baselines* would prefer for dense
//! frontiers. GraphGrind-v2 deliberately ignores the direction hint — the
//! paper's point is that the frontier-density decision subsumes it.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use gg_graph::edge_list::EdgeList;
use gg_graph::types::VertexId;
use gg_runtime::buffer::BufferPool;
use gg_runtime::counters::{CounterSnapshot, WorkCounters};
use gg_runtime::pool::Pool;
use gg_runtime::schedule::PartitionSchedule;

use crate::config::{Config, ExecutorKind, ForcedKernel};
use crate::edge_map::{self, EdgeKind, EdgeMapReduce, EdgeOp};
use crate::frontier::Frontier;
use crate::fused::{self, FusedFrontier, MultiSourceOp, MultiSourceReduce};
use crate::partitioned::{PartitionView, PartitionedExec};
use crate::store::GraphStore;
use crate::trace::{RoundKernel, RoundRecord, RoundRecorder, StepRecord};

/// Dense-traversal direction preferred by an algorithm (Table II). Only
/// baseline engines honour it.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Push along out-edges (CSR-ordered).
    Forward,
    /// Pull along in-edges (CSC-ordered).
    Backward,
}

/// Whether the algorithm does near-constant work per vertex or per edge
/// (§III.D); selects vertex- vs edge-balanced computation ranges.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Orientation {
    /// Near-constant work per vertex (BFS, BC, Bellman-Ford).
    Vertex,
    /// Near-constant work per edge (CC, PR, PRDelta, SPMV, BP).
    Edge,
}

/// Per-edge-map metadata supplied by the algorithm.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct EdgeMapSpec {
    /// Vertex- or edge-oriented load balancing.
    pub orientation: Orientation,
    /// Direction a direction-choosing baseline would use on dense
    /// frontiers.
    pub preferred: Direction,
}

impl EdgeMapSpec {
    /// Vertex-oriented, backward-preferring (BFS/BC-style).
    pub fn vertex_oriented() -> Self {
        EdgeMapSpec {
            orientation: Orientation::Vertex,
            preferred: Direction::Backward,
        }
    }

    /// Edge-oriented, forward-preferring (PRDelta/SPMV-style).
    pub fn edge_oriented() -> Self {
        EdgeMapSpec {
            orientation: Orientation::Edge,
            preferred: Direction::Forward,
        }
    }

    /// Overrides the preferred dense direction (builder style).
    pub fn with_direction(mut self, d: Direction) -> Self {
        self.preferred = d;
        self
    }
}

/// Counts of edge-map invocations per traversal class — the per-algorithm
/// mix reported alongside Table II.
///
/// The monolithic path records one count per edge map
/// ([`snapshot`](Self::snapshot)); the partitioned executor records one
/// count per *partition* per edge map plus the number of iterations that
/// mixed kernels ([`partition_snapshot`](Self::partition_snapshot)).
#[derive(Debug, Default)]
pub struct KernelCounts {
    sparse: AtomicU64,
    medium: AtomicU64,
    dense: AtomicU64,
    /// Partitions that selected the sparse kernel (partitioned executor).
    part_sparse: AtomicU64,
    /// Partitions that selected the dense kernel (partitioned executor).
    part_dense: AtomicU64,
    /// Edge maps in which different partitions selected different kernels.
    mixed_iterations: AtomicU64,
    /// Partitions whose planned output buffer was a sorted vertex list.
    out_sparse: AtomicU64,
    /// Partitions whose planned output buffer was a dense bitmap segment.
    out_dense: AtomicU64,
    /// Edge maps in which different partitions planned different output
    /// representations.
    mixed_output_iterations: AtomicU64,
}

impl KernelCounts {
    fn bump(&self, kind: EdgeKind) {
        match kind {
            EdgeKind::Sparse => self.sparse.fetch_add(1, Ordering::Relaxed),
            EdgeKind::Medium => self.medium.fetch_add(1, Ordering::Relaxed),
            EdgeKind::Dense => self.dense.fetch_add(1, Ordering::Relaxed),
        };
    }

    /// Records one partitioned edge map's per-partition kernel selections.
    pub(crate) fn record_partitioned(&self, sparse_parts: u64, dense_parts: u64) {
        self.part_sparse.fetch_add(sparse_parts, Ordering::Relaxed);
        self.part_dense.fetch_add(dense_parts, Ordering::Relaxed);
        if sparse_parts > 0 && dense_parts > 0 {
            self.mixed_iterations.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records one partitioned edge map's planned output representations.
    pub(crate) fn record_outputs(&self, sparse_outputs: u64, dense_outputs: u64) {
        self.out_sparse.fetch_add(sparse_outputs, Ordering::Relaxed);
        self.out_dense.fetch_add(dense_outputs, Ordering::Relaxed);
        if sparse_outputs > 0 && dense_outputs > 0 {
            self.mixed_output_iterations.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// `(sparse, medium, dense)` invocation counts (monolithic path).
    pub fn snapshot(&self) -> (u64, u64, u64) {
        (
            self.sparse.load(Ordering::Relaxed),
            self.medium.load(Ordering::Relaxed),
            self.dense.load(Ordering::Relaxed),
        )
    }

    /// `(sparse partitions, dense partitions, mixed iterations)` recorded
    /// by the partitioned executor: the first two count per-partition
    /// kernel selections summed over edge maps; the third counts edge maps
    /// in which at least two partitions disagreed on the kernel.
    pub fn partition_snapshot(&self) -> (u64, u64, u64) {
        (
            self.part_sparse.load(Ordering::Relaxed),
            self.part_dense.load(Ordering::Relaxed),
            self.mixed_iterations.load(Ordering::Relaxed),
        )
    }

    /// `(sparse outputs, dense outputs, mixed-output iterations)` recorded
    /// by the partitioned executor's planner: how many partitions emitted a
    /// sorted vertex list vs a dense bitmap segment, and how many edge maps
    /// mixed the two representations. Lets tests pin
    /// mixed-representation iterations the same way
    /// [`partition_snapshot`](Self::partition_snapshot) pins mixed-kernel
    /// iterations.
    pub fn output_snapshot(&self) -> (u64, u64, u64) {
        (
            self.out_sparse.load(Ordering::Relaxed),
            self.out_dense.load(Ordering::Relaxed),
            self.mixed_output_iterations.load(Ordering::Relaxed),
        )
    }

    /// Resets all counts.
    pub fn reset(&self) {
        self.sparse.store(0, Ordering::Relaxed);
        self.medium.store(0, Ordering::Relaxed);
        self.dense.store(0, Ordering::Relaxed);
        self.part_sparse.store(0, Ordering::Relaxed);
        self.part_dense.store(0, Ordering::Relaxed);
        self.mixed_iterations.store(0, Ordering::Relaxed);
        self.out_sparse.store(0, Ordering::Relaxed);
        self.out_dense.store(0, Ordering::Relaxed);
        self.mixed_output_iterations.store(0, Ordering::Relaxed);
    }
}

/// A graph-analytics engine: a graph bound to a traversal policy.
pub trait Engine: Sync {
    /// Number of vertices.
    fn num_vertices(&self) -> usize;

    /// Number of edges.
    fn num_edges(&self) -> usize;

    /// Out-degree array (drives frontier statistics).
    fn out_degrees(&self) -> &[u32];

    /// The engine's thread pool.
    fn pool(&self) -> &Pool;

    /// Work counters accumulated across edge maps.
    fn work_counters(&self) -> &WorkCounters;

    /// Short display name ("Ligra", "Polymer", "GG-v1", "GG-v2").
    fn name(&self) -> &'static str;

    /// Applies `op` to the out-edges of the active vertices of `frontier`,
    /// returning the next frontier (the set of destinations for which an
    /// update returned `true`, deduplicated).
    ///
    /// Edge maps parallelise internally; the engine itself is **not
    /// reentrant** — issue one `edge_map` at a time per engine (the sparse
    /// path shares a deduplication scratch bitmap across calls).
    fn edge_map<O: EdgeOp>(&self, frontier: &Frontier, op: &O, spec: EdgeMapSpec) -> Frontier;

    /// Like [`edge_map`](Self::edge_map), for operators whose
    /// per-destination update is an associative fold
    /// ([`EdgeMapReduce`]: PR, SpMV, BF, BP). Engines that can exploit
    /// the associativity — pre-reducing hub sub-chunk contributions
    /// instead of replaying them — override this; the default simply runs
    /// the exclusive-update `edge_map` path, which every correct
    /// `EdgeMapReduce` implementation must agree with.
    fn edge_map_reduce<O: EdgeMapReduce>(
        &self,
        frontier: &Frontier,
        op: &O,
        spec: EdgeMapSpec,
    ) -> Frontier {
        self.edge_map(frontier, op, spec)
    }

    /// The all-active frontier.
    fn frontier_all(&self) -> Frontier {
        Frontier::all(self.num_vertices(), self.num_edges() as u64)
    }

    /// A single-vertex frontier.
    fn frontier_single(&self, v: VertexId) -> Frontier {
        Frontier::single(v, self.num_vertices(), self.out_degrees())
    }

    /// A frontier from an explicit vertex list.
    fn frontier_sparse(&self, vertices: Vec<VertexId>) -> Frontier {
        Frontier::from_sparse(vertices, self.num_vertices(), self.out_degrees())
    }

    /// Applies `f` to every vertex `0..n` in parallel. Engines with a
    /// partition schedule may override to fan partitions out NUMA-locally.
    fn vertex_map_all<F: Fn(VertexId) + Sync>(&self, f: F) {
        crate::vertex_map::vertex_map_all(self.num_vertices(), self.pool(), f);
    }

    /// Applies `f` to every active vertex of `frontier` in parallel.
    /// Engines with a partition schedule may override to fan partitions
    /// out NUMA-locally.
    fn vertex_map<F: Fn(VertexId) + Sync>(&self, frontier: &Frontier, f: F) {
        crate::vertex_map::vertex_map(frontier, self.pool(), f);
    }
}

/// The paper's engine: composite 3-layout store + Algorithm 2.
#[derive(Debug)]
pub struct GraphGrind2 {
    store: GraphStore,
    config: Config,
    pool: Pool,
    schedule: PartitionSchedule,
    counters: WorkCounters,
    kernel_counts: KernelCounts,
    scratch: gg_graph::bitmap::AtomicBitmap,
    /// Recycles the word buffers behind dense frontier merges
    /// (partitioned executor only).
    merge_scratch: Arc<BufferPool>,
    /// Destination ranges per orientation, precomputed from the store.
    edge_ranges: Vec<std::ops::Range<VertexId>>,
    vertex_ranges: Vec<std::ops::Range<VertexId>>,
    /// Per-partition subgraph views + fan-out order
    /// ([`ExecutorKind::Partitioned`] only).
    partitioned: Option<PartitionedExec>,
    /// Optional per-round trace recorder (record/replay harness). Behind
    /// a mutex because edge maps take `&self`; locked twice per round
    /// while recording, never contended (recording runs are
    /// single-algorithm), and checked-then-dropped once per round when
    /// idle.
    recorder: Mutex<Option<RoundRecorder>>,
}

impl GraphGrind2 {
    /// Builds the engine (all layouts, partition sets, schedule, and — for
    /// [`ExecutorKind::Partitioned`] — the per-partition subgraph views)
    /// from an edge list.
    pub fn new(el: &EdgeList, config: Config) -> Self {
        let mut config = config;
        // The partitioned executor's sparse kernel indexes active sources
        // through the partitioned CSR.
        if config.executor == ExecutorKind::Partitioned {
            config.build_partitioned_csr = true;
        }
        let store = GraphStore::build(el, &config);
        let pool = Pool::new(config.threads);
        let p = store.num_partitions();
        let schedule = PartitionSchedule::new(p, config.numa);
        let scratch = gg_graph::bitmap::AtomicBitmap::new(store.num_vertices());
        let edge_ranges = (0..p).map(|i| store.edge_parts().range(i)).collect();
        let vertex_ranges = (0..p).map(|i| store.vertex_parts().range(i)).collect();
        let partitioned = (config.executor == ExecutorKind::Partitioned)
            .then(|| PartitionedExec::new(&store, &schedule));
        GraphGrind2 {
            store,
            config,
            pool,
            schedule,
            counters: WorkCounters::new(),
            kernel_counts: KernelCounts::default(),
            scratch,
            merge_scratch: Arc::new(BufferPool::new()),
            edge_ranges,
            vertex_ranges,
            partitioned,
            recorder: Mutex::new(None),
        }
    }

    /// Starts per-round trace recording: every subsequent non-empty edge
    /// map appends one [`RoundRecord`] (plan for its input frontier, digest
    /// of its output frontier, counter deltas) until
    /// [`take_recording`](Self::take_recording). Restarting discards any
    /// rounds recorded since the last take.
    pub fn start_recording(&self) {
        *self.recorder.lock().unwrap() = Some(RoundRecorder::new());
    }

    /// Stops recording and returns the rounds recorded since
    /// [`start_recording`](Self::start_recording) (empty if recording was
    /// never started).
    pub fn take_recording(&self) -> Vec<RoundRecord> {
        self.recorder
            .lock()
            .unwrap()
            .take()
            .map(RoundRecorder::into_rounds)
            .unwrap_or_default()
    }

    /// The contract half of a round record: the planned kernel choice(s)
    /// for `frontier` as this round's input. For the partitioned executor
    /// the plan is *recomputed* via [`PartitionedExec::round_plan`] — the
    /// planner is deterministic and pool-free, so this is exactly the plan
    /// the executor derives internally, without threading recording state
    /// through the execution path.
    fn round_kernel_for(&self, frontier: &Frontier) -> RoundKernel {
        if let Some(exec) = &self.partitioned {
            let plan = exec.round_plan(&self.store, &self.config, frontier);
            RoundKernel::Partitioned(
                plan.steps
                    .iter()
                    .map(|s| StepRecord {
                        partition: s.partition as u64,
                        kernel: s.kernel,
                        output: s.output,
                        layout: s.layout,
                    })
                    .collect(),
            )
        } else if self.config.force.is_some() {
            RoundKernel::Forced
        } else {
            RoundKernel::Monolithic(crate::plan::plan_edge_map(
                frontier,
                self.store.num_edges() as u64,
                &self.config.thresholds,
            ))
        }
    }

    /// If recording, captures the round's plan and the counter baseline
    /// before execution. The matching [`finish_round`](Self::finish_round)
    /// call digests the output.
    fn begin_round(&self, frontier: &Frontier) -> Option<(RoundKernel, CounterSnapshot)> {
        if self.recorder.lock().unwrap().is_none() {
            return None;
        }
        Some((self.round_kernel_for(frontier), self.counters.snapshot()))
    }

    /// Completes a round begun by [`begin_round`](Self::begin_round) with
    /// the merged output frontier.
    fn finish_round(&self, begun: Option<(RoundKernel, CounterSnapshot)>, output: &Frontier) {
        if let Some((kernel, pre)) = begun {
            let sched = self.counters.snapshot().delta_since(&pre);
            if let Some(rec) = self.recorder.lock().unwrap().as_mut() {
                rec.record(kernel, output, sched);
            }
        }
    }

    /// The fused counterpart of [`finish_round`](Self::finish_round):
    /// digests the output's union frontier *and* each lane separately, so
    /// replay localises divergence to a single query of the batch.
    fn finish_fused_round(
        &self,
        begun: Option<(RoundKernel, CounterSnapshot)>,
        output: &FusedFrontier,
    ) {
        if let Some((kernel, pre)) = begun {
            let sched = self.counters.snapshot().delta_since(&pre);
            if let Some(rec) = self.recorder.lock().unwrap().as_mut() {
                rec.record_fused(kernel, output, sched);
            }
        }
    }

    /// The initial fused frontier of a K-query batch: lane `i` holds
    /// `seeds[i]` (K ≤ 64).
    pub fn fused_frontier(&self, seeds: &[VertexId]) -> FusedFrontier {
        FusedFrontier::from_seeds(seeds, self.store.num_vertices())
    }

    /// One fused edge map: advance all K lanes of `frontier` in a single
    /// edge pass. Planning (sparse/dense kernel and output representation
    /// per partition) runs on the **union** frontier through the scalar
    /// planner; chunking, hub splitting and work stealing are the scalar
    /// paths unchanged, so fused rounds are bit-identical across partition
    /// counts, thread counts and chunk caps. Without the partitioned
    /// executor a deterministic (unplanned) monolithic pull runs instead.
    pub fn fused_edge_map<O: MultiSourceOp>(
        &self,
        frontier: &FusedFrontier,
        op: &O,
    ) -> FusedFrontier {
        if frontier.is_empty() {
            return FusedFrontier::empty(self.store.num_vertices(), frontier.num_lanes());
        }
        let union = frontier.union_frontier(self.store.out_degrees(), &self.pool);
        let begun = self.begin_round(&union);
        let next = match &self.partitioned {
            Some(exec) => exec.fused_edge_map(
                &self.store,
                &self.pool,
                &self.config,
                &self.counters,
                &self.kernel_counts,
                &union,
                frontier,
                op,
            ),
            None => fused::monolithic_fused_edge_map(
                self.store.csc(),
                self.store.csr(),
                frontier,
                op,
                &self.edge_ranges,
                &self.pool,
                &self.counters,
                self.store.num_vertices(),
                frontier.num_lanes(),
            ),
        };
        self.finish_fused_round(begun, &next);
        next
    }

    /// The fused associative edge map ([`MultiSourceReduce`]): identical
    /// planning and scheduling to [`fused_edge_map`](Self::fused_edge_map),
    /// with per-destination scans folded in fixed quantum-width runs so
    /// per-lane f64 results stay bit-identical across configurations.
    pub fn fused_edge_map_reduce<O: MultiSourceReduce>(
        &self,
        frontier: &FusedFrontier,
        op: &O,
    ) -> FusedFrontier {
        if frontier.is_empty() {
            return FusedFrontier::empty(self.store.num_vertices(), frontier.num_lanes());
        }
        let union = frontier.union_frontier(self.store.out_degrees(), &self.pool);
        let begun = self.begin_round(&union);
        let next = match &self.partitioned {
            Some(exec) => exec.fused_edge_map_reduce(
                &self.store,
                &self.pool,
                &self.config,
                &self.counters,
                &self.kernel_counts,
                &union,
                frontier,
                op,
            ),
            None => fused::monolithic_fused_edge_map_reduce(
                self.store.csc(),
                self.store.csr(),
                frontier,
                op,
                &self.edge_ranges,
                &self.pool,
                &self.counters,
                self.store.num_vertices(),
                frontier.num_lanes(),
            ),
        };
        self.finish_fused_round(begun, &next);
        next
    }

    /// The composite store.
    pub fn store(&self) -> &GraphStore {
        &self.store
    }

    /// The engine configuration.
    pub fn config(&self) -> &Config {
        &self.config
    }

    /// Per-class edge-map invocation counts.
    pub fn kernel_counts(&self) -> &KernelCounts {
        &self.kernel_counts
    }

    /// The NUMA-domain-major partition schedule.
    pub fn schedule(&self) -> &PartitionSchedule {
        &self.schedule
    }

    /// The buffer pool recycling dense-merge scratch bitmaps (partitioned
    /// executor only) — exposed so tests and benches can observe recycling.
    pub fn merge_scratch(&self) -> &Arc<BufferPool> {
        &self.merge_scratch
    }

    /// The materialised per-partition subgraph views, indexed by
    /// partition. Empty unless the engine was built with
    /// [`ExecutorKind::Partitioned`].
    pub fn partition_views(&self) -> &[PartitionView] {
        self.partitioned.as_ref().map_or(&[], |e| e.views())
    }

    fn run_kind<O: EdgeOp>(
        &self,
        kind: EdgeKind,
        frontier: &Frontier,
        op: &O,
        spec: EdgeMapSpec,
    ) -> Frontier {
        let n = self.store.num_vertices();
        self.kernel_counts.bump(kind);
        match kind {
            EdgeKind::Sparse => {
                let active = frontier.to_vertex_list();
                let out = edge_map::sparse_forward_csr(
                    self.store.csr(),
                    &active,
                    op,
                    &self.pool,
                    &self.scratch,
                    &self.counters,
                );
                Frontier::from_sparse(out, n, self.store.out_degrees())
            }
            EdgeKind::Medium => {
                let current = frontier.to_bitmap();
                let ranges = match spec.orientation {
                    Orientation::Edge => &self.edge_ranges,
                    Orientation::Vertex => &self.vertex_ranges,
                };
                let next = edge_map::medium_backward_csc(
                    self.store.csc(),
                    &current,
                    op,
                    &self.pool,
                    ranges,
                    &self.counters,
                );
                Frontier::from_atomic(next, self.store.out_degrees(), &self.pool)
            }
            EdgeKind::Dense => {
                let current = frontier.to_bitmap();
                let next = edge_map::dense_coo(
                    self.store.coo(),
                    &current,
                    op,
                    &self.pool,
                    self.schedule.order(),
                    self.config.use_atomics_dense,
                    &self.counters,
                );
                Frontier::from_atomic(next, self.store.out_degrees(), &self.pool)
            }
        }
    }

    fn run_forced<O: EdgeOp>(
        &self,
        forced: ForcedKernel,
        frontier: &Frontier,
        op: &O,
        spec: EdgeMapSpec,
    ) -> Frontier {
        match forced {
            ForcedKernel::CsrAtomic => {
                self.kernel_counts.bump(EdgeKind::Dense);
                let current = frontier.to_bitmap();
                let pcsr = self
                    .store
                    .partitioned_csr()
                    .expect("CsrAtomic requires build_partitioned_csr");
                let next = edge_map::dense_forward_partitioned_csr(
                    pcsr,
                    &current,
                    op,
                    &self.pool,
                    &self.counters,
                );
                Frontier::from_atomic(next, self.store.out_degrees(), &self.pool)
            }
            ForcedKernel::CscNoAtomic => self.run_kind(EdgeKind::Medium, frontier, op, spec),
            ForcedKernel::CooAtomic => {
                self.kernel_counts.bump(EdgeKind::Dense);
                let current = frontier.to_bitmap();
                let next = edge_map::dense_coo(
                    self.store.coo(),
                    &current,
                    op,
                    &self.pool,
                    self.schedule.order(),
                    true,
                    &self.counters,
                );
                Frontier::from_atomic(next, self.store.out_degrees(), &self.pool)
            }
            ForcedKernel::CooNoAtomic => {
                self.kernel_counts.bump(EdgeKind::Dense);
                let current = frontier.to_bitmap();
                let next = edge_map::dense_coo(
                    self.store.coo(),
                    &current,
                    op,
                    &self.pool,
                    self.schedule.order(),
                    false,
                    &self.counters,
                );
                Frontier::from_atomic(next, self.store.out_degrees(), &self.pool)
            }
        }
    }
}

impl Engine for GraphGrind2 {
    fn num_vertices(&self) -> usize {
        self.store.num_vertices()
    }

    fn num_edges(&self) -> usize {
        self.store.num_edges()
    }

    fn out_degrees(&self) -> &[u32] {
        self.store.out_degrees()
    }

    fn pool(&self) -> &Pool {
        &self.pool
    }

    fn work_counters(&self) -> &WorkCounters {
        &self.counters
    }

    fn name(&self) -> &'static str {
        "GG-v2"
    }

    fn edge_map<O: EdgeOp>(&self, frontier: &Frontier, op: &O, spec: EdgeMapSpec) -> Frontier {
        if frontier.is_empty() {
            return Frontier::empty(self.num_vertices());
        }
        let begun = self.begin_round(frontier);
        let next = if let Some(exec) = &self.partitioned {
            exec.edge_map(
                &self.store,
                &self.pool,
                &self.config,
                &self.counters,
                &self.kernel_counts,
                &self.merge_scratch,
                frontier,
                op,
            )
        } else {
            match self.config.force {
                Some(forced) => self.run_forced(forced, frontier, op, spec),
                None => {
                    // The monolithic planning entry point: one kernel per
                    // edge map from the global frontier metric.
                    let kind = crate::plan::plan_edge_map(
                        frontier,
                        self.num_edges() as u64,
                        &self.config.thresholds,
                    );
                    self.run_kind(kind, frontier, op, spec)
                }
            }
        };
        self.finish_round(begun, &next);
        next
    }

    /// The partitioned executor routes reduce-capable operators through
    /// the associative pre-reduction path; monolithic configurations fall
    /// back to the exclusive-update kernels.
    fn edge_map_reduce<O: EdgeMapReduce>(
        &self,
        frontier: &Frontier,
        op: &O,
        spec: EdgeMapSpec,
    ) -> Frontier {
        if frontier.is_empty() {
            return Frontier::empty(self.num_vertices());
        }
        if let Some(exec) = &self.partitioned {
            // Recording wraps the partitioned branch only; the monolithic
            // fallback below delegates to `edge_map`, which records.
            let begun = self.begin_round(frontier);
            let next = exec.edge_map_reduce(
                &self.store,
                &self.pool,
                &self.config,
                &self.counters,
                &self.kernel_counts,
                &self.merge_scratch,
                frontier,
                op,
            );
            self.finish_round(begun, &next);
            return next;
        }
        self.edge_map(frontier, op, spec)
    }

    fn vertex_map_all<F: Fn(VertexId) + Sync>(&self, f: F) {
        match &self.partitioned {
            Some(exec) => exec.vertex_map_all(&self.pool, f),
            None => crate::vertex_map::vertex_map_all(self.num_vertices(), &self.pool, f),
        }
    }

    fn vertex_map<F: Fn(VertexId) + Sync>(&self, frontier: &Frontier, f: F) {
        match &self.partitioned {
            Some(exec) => exec.vertex_map(&self.pool, frontier, f),
            None => crate::vertex_map::vertex_map(frontier, &self.pool, f),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gg_graph::generators;
    use std::sync::atomic::AtomicU32;

    /// CC-style operator: propagate minimum label.
    struct MinLabel {
        labels: Vec<AtomicU32>,
    }

    impl MinLabel {
        fn new(n: usize) -> Self {
            MinLabel {
                labels: (0..n as u32).map(AtomicU32::new).collect(),
            }
        }
        fn snapshot(&self) -> Vec<u32> {
            self.labels
                .iter()
                .map(|l| l.load(Ordering::Relaxed))
                .collect()
        }
    }

    impl EdgeOp for MinLabel {
        fn update(&self, s: u32, d: u32, _w: f32) -> bool {
            let sl = self.labels[s as usize].load(Ordering::Relaxed);
            let dl = self.labels[d as usize].load(Ordering::Relaxed);
            if sl < dl {
                self.labels[d as usize].store(sl, Ordering::Relaxed);
                true
            } else {
                false
            }
        }
        fn update_atomic(&self, s: u32, d: u32, _w: f32) -> bool {
            let sl = self.labels[s as usize].load(Ordering::Relaxed);
            gg_runtime::atomics::fetch_min_u32(&self.labels[d as usize], sl)
        }
    }

    fn engine_with(el: &gg_graph::edge_list::EdgeList, cfg: Config) -> GraphGrind2 {
        GraphGrind2::new(el, cfg)
    }

    fn run_cc<E: Engine>(engine: &E) -> Vec<u32> {
        let op = MinLabel::new(engine.num_vertices());
        let mut frontier = engine.frontier_all();
        let mut rounds = 0;
        while !frontier.is_empty() && rounds < 100 {
            frontier = engine.edge_map(&frontier, &op, EdgeMapSpec::edge_oriented());
            rounds += 1;
        }
        op.snapshot()
    }

    #[test]
    fn label_propagation_converges_identically_across_layouts() {
        let el = gg_graph::ops::symmetrize(&generators::rmat(
            8,
            1500,
            generators::RmatParams::skewed(),
            11,
        ));
        let reference = run_cc(&engine_with(&el, Config::for_tests()));

        for forced in [
            ForcedKernel::CscNoAtomic,
            ForcedKernel::CooAtomic,
            ForcedKernel::CooNoAtomic,
            ForcedKernel::CsrAtomic,
        ] {
            let cfg = Config::for_tests().with_forced(forced);
            let got = run_cc(&engine_with(&el, cfg));
            assert_eq!(got, reference, "forced = {forced:?}");
        }
    }

    #[test]
    fn partition_count_does_not_change_results() {
        let el = gg_graph::ops::symmetrize(&generators::erdos_renyi(120, 700, 3));
        let reference = run_cc(&engine_with(&el, Config::for_tests().with_partitions(2)));
        for p in [4usize, 16, 64] {
            let got = run_cc(&engine_with(&el, Config::for_tests().with_partitions(p)));
            assert_eq!(got, reference, "P = {p}");
        }
    }

    #[test]
    fn empty_frontier_short_circuits() {
        let el = generators::erdos_renyi(50, 200, 1);
        let engine = engine_with(&el, Config::for_tests());
        let op = MinLabel::new(50);
        let empty = Frontier::empty(50);
        let next = engine.edge_map(&empty, &op, EdgeMapSpec::edge_oriented());
        assert!(next.is_empty());
        let (s, m, d) = engine.kernel_counts().snapshot();
        assert_eq!((s, m, d), (0, 0, 0));
    }

    #[test]
    fn decision_records_kernel_mix() {
        let el = generators::rmat(8, 4000, generators::RmatParams::skewed(), 5);
        let engine = engine_with(&el, Config::for_tests());
        let op = MinLabel::new(engine.num_vertices());

        // Dense call.
        engine.edge_map(&engine.frontier_all(), &op, EdgeMapSpec::edge_oriented());
        // Sparse call: one low-degree vertex.
        let v = (0..engine.num_vertices() as u32)
            .min_by_key(|&v| engine.out_degrees()[v as usize])
            .unwrap();
        engine.edge_map(
            &engine.frontier_single(v),
            &op,
            EdgeMapSpec::edge_oriented(),
        );

        let (s, _m, d) = engine.kernel_counts().snapshot();
        assert_eq!(d, 1);
        assert_eq!(s, 1);
    }

    #[test]
    fn partitioned_executor_matches_monolithic_cc() {
        let el = gg_graph::ops::symmetrize(&generators::rmat(
            8,
            1800,
            generators::RmatParams::skewed(),
            21,
        ));
        let reference = run_cc(&engine_with(&el, Config::for_tests()));
        for p in [2usize, 8, 32] {
            let cfg = Config::partitioned_for_tests().with_partitions(p);
            let engine = engine_with(&el, cfg);
            assert!(!engine.partition_views().is_empty());
            assert_eq!(run_cc(&engine), reference, "P = {p}");
        }
    }

    /// A dense block on low ids plus a sparse path tail: with the block
    /// fully active, block partitions go dense while tail partitions go
    /// sparse — one edge map, mixed kernels.
    fn density_skewed_graph() -> gg_graph::edge_list::EdgeList {
        let mut el = gg_graph::edge_list::EdgeList::new(64);
        for i in 0..16u32 {
            for j in 0..16u32 {
                if i != j {
                    el.push(i, j);
                }
            }
        }
        for i in 16..63u32 {
            el.push(i, i + 1);
        }
        el
    }

    #[test]
    fn partitioned_executor_mixes_kernels_within_one_iteration() {
        let el = density_skewed_graph();
        let engine = engine_with(&el, Config::partitioned_for_tests().with_partitions(4));
        let op = MinLabel::new(engine.num_vertices());
        // Activate the lower half of the dense block: block partitions see
        // a locally dense frontier, tail partitions see zero local actives.
        let block: Vec<u32> = (0..8).collect();
        let frontier = engine.frontier_sparse(block);
        let _ = engine.edge_map(&frontier, &op, EdgeMapSpec::edge_oriented());
        let (s, d, mixed) = engine.kernel_counts().partition_snapshot();
        assert!(s >= 1, "no partition selected the sparse kernel: {s}/{d}");
        assert!(d >= 1, "no partition selected the dense kernel: {s}/{d}");
        assert_eq!(mixed, 1, "the iteration must be recorded as mixed");
        // The monolithic counters stay untouched on the partitioned path.
        assert_eq!(engine.kernel_counts().snapshot(), (0, 0, 0));
    }

    #[test]
    fn partitioned_executor_skips_empty_partitions() {
        // 3 vertices over 16 requested partitions: most views are empty.
        let el = gg_graph::edge_list::EdgeList::from_edges(3, &[(0, 1), (1, 2), (2, 0)]);
        let engine = engine_with(&el, Config::partitioned_for_tests().with_partitions(16));
        let nonempty = engine
            .partition_views()
            .iter()
            .filter(|v| v.num_edges > 0)
            .count() as u64;
        assert!(nonempty <= 3);
        let op = MinLabel::new(3);
        let _ = engine.edge_map(&engine.frontier_all(), &op, EdgeMapSpec::edge_oriented());
        let (s, d, _) = engine.kernel_counts().partition_snapshot();
        assert_eq!(s + d, nonempty, "only non-empty partitions get a kernel");
    }

    #[test]
    fn partitioned_executor_with_no_edges_never_touches_the_pool() {
        let el = gg_graph::edge_list::EdgeList::new(8);
        let engine = engine_with(&el, Config::partitioned_for_tests().with_partitions(4));
        let before = engine.pool().jobs_run();
        let op = MinLabel::new(8);
        let next = engine.edge_map(&engine.frontier_all(), &op, EdgeMapSpec::edge_oriented());
        assert!(next.is_empty());
        assert_eq!(
            engine.pool().jobs_run(),
            before,
            "edgeless graph: no pool work"
        );
        assert_eq!(engine.kernel_counts().partition_snapshot(), (0, 0, 0));
    }

    #[test]
    fn partitioned_vertex_maps_cover_actives_numa_locally() {
        use std::sync::atomic::AtomicU64;
        let el = density_skewed_graph();
        let engine = engine_with(&el, Config::partitioned_for_tests().with_partitions(4));
        let sum = AtomicU64::new(0);
        engine.vertex_map_all(|v| {
            sum.fetch_add(v as u64 + 1, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 64 * 65 / 2);

        sum.store(0, Ordering::Relaxed);
        let actives: Vec<u32> = (0..64).step_by(3).collect();
        let expected: u64 = actives.iter().map(|&v| v as u64 + 1).sum();
        engine.vertex_map(&engine.frontier_sparse(actives.clone()), |v| {
            sum.fetch_add(v as u64 + 1, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), expected);

        // Dense representation too.
        sum.store(0, Ordering::Relaxed);
        let dense = Frontier::from_dense(
            gg_graph::bitmap::Bitmap::from_indices(64, &actives),
            engine.out_degrees(),
            engine.pool(),
        );
        engine.vertex_map(&dense, |v| {
            sum.fetch_add(v as u64 + 1, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), expected);
    }

    /// Intra-partition chunking is invisible in results: a tiny chunk cap
    /// splits partitions into many more work-stealing chunks, with every
    /// chunk within the `cap + max_degree` bound, and converges to the
    /// same labels as unbounded (one chunk per partition) execution.
    #[test]
    fn chunk_cap_changes_scheduling_but_not_results() {
        let el = gg_graph::ops::symmetrize(&generators::rmat(
            8,
            1800,
            generators::RmatParams::skewed(),
            21,
        ));
        let unbounded = engine_with(
            &el,
            Config::partitioned_for_tests()
                .with_partitions(4)
                .with_chunk_edges(usize::MAX),
        );
        let reference = run_cc(&unbounded);
        let baseline_chunks = unbounded.work_counters().chunks();
        assert!(baseline_chunks > 0);

        let cap = 8usize;
        let chunked = engine_with(
            &el,
            Config::partitioned_for_tests()
                .with_partitions(4)
                .with_chunk_edges(cap),
        );
        assert_eq!(run_cc(&chunked), reference);
        let counters = chunked.work_counters();
        assert!(
            counters.chunks() > baseline_chunks,
            "cap {cap} must split partitions: {} vs {baseline_chunks}",
            counters.chunks()
        );
        let max_in_degree = chunked
            .store()
            .in_degrees()
            .iter()
            .copied()
            .max()
            .unwrap_or(0) as u64;
        assert!(
            counters.max_chunk_edges() <= cap as u64 + max_in_degree,
            "chunk bound violated: {} > {cap} + {max_in_degree}",
            counters.max_chunk_edges()
        );
        assert!(counters.mean_chunk_edges() <= counters.max_chunk_edges() as f64);
    }

    /// The dense-merge scratch bitmap is recycled through the engine's
    /// buffer pool: steady-state rounds reuse a dead frontier's words
    /// instead of allocating, and at most two buffers (the in-flight input
    /// and output frontiers) ever exist.
    #[test]
    fn dense_merge_scratch_is_recycled_across_rounds() {
        // PR-style usage: every round is a dense edge map over the full
        // frontier whose output frontier dies before the next round — the
        // exact pattern the pooled scratch bitmap exists for.
        struct AlwaysActivate;
        impl EdgeOp for AlwaysActivate {
            fn update(&self, _s: u32, _d: u32, _w: f32) -> bool {
                true
            }
            fn update_atomic(&self, _s: u32, _d: u32, _w: f32) -> bool {
                true
            }
        }
        let el = generators::rmat(8, 1800, generators::RmatParams::skewed(), 21);
        let cfg = Config {
            output_mode: crate::config::OutputMode::ForceDense,
            ..Config::partitioned_for_tests().with_partitions(4)
        };
        let engine = engine_with(&el, cfg);
        for _ in 0..6 {
            let next = engine.edge_map(
                &engine.frontier_all(),
                &AlwaysActivate,
                EdgeMapSpec::edge_oriented(),
            );
            assert!(!next.is_empty());
        }
        let pool = engine.merge_scratch();
        assert_eq!(
            pool.recycled(),
            5,
            "every round after the first must recycle the scratch bitmap"
        );
        assert_eq!(
            pool.allocated(),
            1,
            "only the first round may allocate fresh"
        );
    }

    /// The engine's persistent pool: a full CC run dispatches many epochs
    /// but spawns the worker crew exactly once, and a star hub under a
    /// tiny fixed cap splits into sub-chunks without changing the labels.
    #[test]
    fn engine_reuses_one_crew_and_splits_star_hubs() {
        // A star into vertex 0 plus a connecting ring.
        let mut el = gg_graph::edge_list::EdgeList::new(64);
        for s in 1..64u32 {
            el.push(s, 0);
            el.push(s - 1, s);
        }
        el.push(63, 0);
        let reference = run_cc(&engine_with(&el, Config::for_tests()));

        let cfg = Config::partitioned_for_tests()
            .with_partitions(4)
            .with_chunk_edges(4);
        let engine = engine_with(&el, cfg);
        assert_eq!(engine.pool().spawns(), 0, "no crew before the first map");
        assert_eq!(run_cc(&engine), reference);
        assert_eq!(run_cc(&engine), reference, "reused crew, same labels");
        assert_eq!(
            engine.pool().spawns(),
            2,
            "two runs must spawn the 2-thread crew exactly once"
        );
        assert!(
            engine.pool().epochs() > engine.pool().spawns(),
            "epochs ({}) must outnumber spawns ({})",
            engine.pool().epochs(),
            engine.pool().spawns()
        );
        let c = engine.work_counters();
        assert!(
            c.hub_subchunks() > 0,
            "the 64-in-degree star centre must split under cap 4"
        );
        assert!(
            c.max_chunk_edges() < 64,
            "max chunk ({}) must drop below the hub's in-degree",
            c.max_chunk_edges()
        );
    }

    #[test]
    fn engine_reports_metadata() {
        let el = generators::erdos_renyi(64, 256, 9);
        let engine = engine_with(&el, Config::for_tests());
        assert_eq!(engine.num_vertices(), 64);
        assert_eq!(engine.num_edges(), 256);
        assert_eq!(engine.name(), "GG-v2");
        assert_eq!(engine.pool().threads(), 2);
        assert_eq!(engine.frontier_all().len(), 64);
        assert_eq!(engine.frontier_single(3).to_vertex_list(), vec![3]);
    }
}
