//! Coordinate-list (COO) layout: the scalable dense-traversal format.
//!
//! §II.E's central storage observation: COO stores `2 |E| bv` bytes
//! **independent of the number of partitions**, because an edge carries both
//! endpoints explicitly and vertex replication adds no storage. This is the
//! only layout that scales to the paper's preferred ~384 partitions, and
//! §II.F notes its work is likewise independent of replication (each edge is
//! visited exactly once).
//!
//! [`PartitionedCoo`] stores all edges contiguously, grouped by home
//! partition (per a [`PartitionSet`], normally edge-balanced
//! partitioning-by-destination), with a per-partition offset table. Within a
//! partition edges are sorted by a configurable [`EdgeOrder`] — source
//! order, destination order or Hilbert order (§IV.C).

use crate::edge_list::EdgeList;
use crate::partition::{PartitionBy, PartitionSet};
use crate::reorder::{self, EdgeOrder};
use crate::types::{EdgeId, VertexId};

/// Unpartitioned COO: parallel `srcs`/`dsts` (and optional weight) arrays.
#[derive(Clone, Debug, PartialEq)]
pub struct Coo {
    srcs: Vec<VertexId>,
    dsts: Vec<VertexId>,
    weights: Option<Vec<f32>>,
    num_vertices: usize,
}

impl Coo {
    /// Builds a COO in the edge list's order.
    pub fn from_edge_list(el: &EdgeList) -> Self {
        Coo {
            srcs: el.srcs().to_vec(),
            dsts: el.dsts().to_vec(),
            weights: el.weights().map(|w| w.to_vec()),
            num_vertices: el.num_vertices(),
        }
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Number of edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.srcs.len()
    }

    /// Source endpoints.
    #[inline]
    pub fn srcs(&self) -> &[VertexId] {
        &self.srcs
    }

    /// Destination endpoints.
    #[inline]
    pub fn dsts(&self) -> &[VertexId] {
        &self.dsts
    }

    /// Weights, if present.
    #[inline]
    pub fn weights(&self) -> Option<&[f32]> {
        self.weights.as_deref()
    }

    /// Weight of edge slot `e` (1.0 when unweighted).
    #[inline]
    pub fn weight_at(&self, e: EdgeId) -> f32 {
        self.weights.as_ref().map_or(1.0, |w| w[e])
    }

    /// Heap bytes consumed (measured). Matches the paper's `2 |E| bv` for
    /// unweighted graphs.
    pub fn heap_bytes(&self) -> usize {
        (self.srcs.len() + self.dsts.len()) * std::mem::size_of::<VertexId>()
            + self
                .weights
                .as_ref()
                .map_or(0, |w| w.len() * std::mem::size_of::<f32>())
    }
}

/// COO grouped by home partition with per-partition offsets.
///
/// Partition `p` owns edge slots `part_offsets[p]..part_offsets[p+1]`.
/// Under partitioning-by-destination each partition's destination set is
/// confined to `partition_set().range(p)`, so one thread per partition can
/// update destination data without atomics (§III.C).
#[derive(Clone, Debug)]
pub struct PartitionedCoo {
    coo: Coo,
    part_offsets: Vec<EdgeId>,
    set: PartitionSet,
    orders: Vec<EdgeOrder>,
}

impl PartitionedCoo {
    /// Buckets `el`'s edges by home partition under `set`, sorting each
    /// partition's edges by `order`.
    pub fn new(el: &EdgeList, set: &PartitionSet, order: EdgeOrder) -> Self {
        let orders = vec![order; set.num_partitions()];
        Self::with_orders(el, set, &orders)
    }

    /// Buckets `el`'s edges by home partition under `set`, sorting each
    /// partition's edges by **its own** order — the layout-advisor entry
    /// point, where `orders[p]` is the advisor's per-partition pick.
    ///
    /// # Panics
    /// Panics when `orders.len() != set.num_partitions()`.
    pub fn with_orders(el: &EdgeList, set: &PartitionSet, orders: &[EdgeOrder]) -> Self {
        let p = set.num_partitions();
        assert_eq!(orders.len(), p, "one edge order per partition");
        let n = el.num_vertices();
        let srcs = el.srcs();
        let dsts = el.dsts();
        let m = el.num_edges();

        // Stable bucket by home partition.
        let mut counts = vec![0usize; p + 1];
        for e in 0..m {
            counts[set.edge_home(srcs[e], dsts[e]) + 1] += 1;
        }
        for i in 0..p {
            counts[i + 1] += counts[i];
        }
        let part_offsets = counts.clone();
        let mut idx = vec![0usize; m];
        for e in 0..m {
            let h = set.edge_home(srcs[e], dsts[e]);
            idx[counts[h]] = e;
            counts[h] += 1;
        }

        // Sort within each partition.
        for part in 0..p {
            let range = part_offsets[part]..part_offsets[part + 1];
            reorder::sort_indices(&mut idx[range], srcs, dsts, n, orders[part]);
        }

        let coo = Coo {
            srcs: idx.iter().map(|&e| srcs[e]).collect(),
            dsts: idx.iter().map(|&e| dsts[e]).collect(),
            weights: el.weights().map(|w| idx.iter().map(|&e| w[e]).collect()),
            num_vertices: n,
        };
        PartitionedCoo {
            coo,
            part_offsets,
            set: set.clone(),
            orders: orders.to_vec(),
        }
    }

    /// Convenience: single-partition COO over the whole graph.
    pub fn whole(el: &EdgeList, order: EdgeOrder) -> Self {
        let set = PartitionSet::whole(el.num_vertices(), PartitionBy::Destination);
        Self::new(el, &set, order)
    }

    /// Number of partitions.
    #[inline]
    pub fn num_partitions(&self) -> usize {
        self.part_offsets.len() - 1
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.coo.num_vertices
    }

    /// Number of edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.coo.num_edges()
    }

    /// The edge-slot range owned by partition `p`.
    #[inline]
    pub fn part_range(&self, p: usize) -> std::ops::Range<EdgeId> {
        self.part_offsets[p]..self.part_offsets[p + 1]
    }

    /// Sources of partition `p`'s edges.
    #[inline]
    pub fn part_srcs(&self, p: usize) -> &[VertexId] {
        &self.coo.srcs[self.part_range(p)]
    }

    /// Destinations of partition `p`'s edges.
    #[inline]
    pub fn part_dsts(&self, p: usize) -> &[VertexId] {
        &self.coo.dsts[self.part_range(p)]
    }

    /// Weights of partition `p`'s edges, if present.
    #[inline]
    pub fn part_weights(&self, p: usize) -> Option<&[f32]> {
        self.coo.weights.as_ref().map(|w| &w[self.part_range(p)])
    }

    /// The full underlying COO (all partitions concatenated).
    #[inline]
    pub fn coo(&self) -> &Coo {
        &self.coo
    }

    /// The partition set this layout was built under.
    #[inline]
    pub fn partition_set(&self) -> &PartitionSet {
        &self.set
    }

    /// The edge order of partition `p` (uniform under [`Self::new`],
    /// per-partition under [`Self::with_orders`]).
    #[inline]
    pub fn part_order(&self, p: usize) -> EdgeOrder {
        self.orders[p]
    }

    /// All per-partition edge orders.
    #[inline]
    pub fn part_orders(&self) -> &[EdgeOrder] {
        &self.orders
    }

    /// Heap bytes consumed (measured). The per-partition offset table adds
    /// only `(P + 1) * 8` bytes to the flat `2 |E| bv` cost.
    pub fn heap_bytes(&self) -> usize {
        self.coo.heap_bytes() + self.part_offsets.len() * std::mem::size_of::<EdgeId>()
    }

    /// Validates the partition invariants: every edge's home matches the
    /// slot range it is stored in, and edge count is conserved.
    pub fn validate(&self) -> Result<(), String> {
        if self.num_edges() != *self.part_offsets.last().unwrap() {
            return Err("offset table does not cover all edges".into());
        }
        for p in 0..self.num_partitions() {
            for e in self.part_range(p) {
                let (u, v) = (self.coo.srcs[e], self.coo.dsts[e]);
                if self.set.edge_home(u, v) != p {
                    return Err(format!("edge ({u},{v}) misplaced in partition {p}"));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn figure1_graph() -> EdgeList {
        EdgeList::from_edges(
            6,
            &[
                (0, 1),
                (0, 2),
                (0, 3),
                (0, 4),
                (0, 5),
                (2, 4),
                (3, 4),
                (3, 5),
                (4, 5),
                (5, 0),
                (5, 1),
                (5, 2),
                (5, 3),
                (5, 4),
            ],
        )
    }

    #[test]
    fn whole_coo_roundtrip() {
        let el = figure1_graph();
        let coo = Coo::from_edge_list(&el);
        assert_eq!(coo.num_edges(), 14);
        assert_eq!(coo.num_vertices(), 6);
        assert_eq!(coo.srcs()[0], 0);
        assert_eq!(coo.dsts()[13], 4);
        // 2 |E| bv bytes for an unweighted graph, as modeled in §II.E.
        assert_eq!(coo.heap_bytes(), 2 * 14 * 4);
    }

    #[test]
    fn partitioned_groups_by_destination() {
        let el = figure1_graph();
        let set = PartitionSet::edge_balanced(&el.in_degrees(), 2, PartitionBy::Destination);
        let pcoo = PartitionedCoo::new(&el, &set, EdgeOrder::Source);
        pcoo.validate().unwrap();
        assert_eq!(pcoo.num_edges(), 14);
        // Figure 1 splits the 14 edges 7 / 7.
        assert_eq!(pcoo.part_range(0).len(), 7);
        assert_eq!(pcoo.part_range(1).len(), 7);
        for p in 0..2 {
            let range = set.range(p);
            for &d in pcoo.part_dsts(p) {
                assert!(range.contains(&d));
            }
        }
    }

    #[test]
    fn storage_independent_of_partition_count() {
        // The paper's flat COO line in Figure 4.
        let el = figure1_graph();
        let sizes: Vec<usize> = [1usize, 2, 3, 6]
            .iter()
            .map(|&p| {
                let set =
                    PartitionSet::edge_balanced(&el.in_degrees(), p, PartitionBy::Destination);
                PartitionedCoo::new(&el, &set, EdgeOrder::Hilbert)
                    .coo()
                    .heap_bytes()
            })
            .collect();
        assert!(sizes.windows(2).all(|w| w[0] == w[1]), "{sizes:?}");
    }

    #[test]
    fn within_partition_order_respected() {
        let el = figure1_graph();
        let set = PartitionSet::edge_balanced(&el.in_degrees(), 2, PartitionBy::Destination);
        let by_src = PartitionedCoo::new(&el, &set, EdgeOrder::Source);
        for p in 0..2 {
            let s = by_src.part_srcs(p);
            assert!(s.windows(2).all(|w| w[0] <= w[1]), "partition {p}: {s:?}");
        }
        let by_dst = PartitionedCoo::new(&el, &set, EdgeOrder::Destination);
        for p in 0..2 {
            let d = by_dst.part_dsts(p);
            assert!(d.windows(2).all(|w| w[0] <= w[1]), "partition {p}: {d:?}");
        }
    }

    #[test]
    fn weights_follow_edges() {
        let el =
            EdgeList::from_weighted_edges(4, &[(0, 3, 3.0), (0, 0, 0.0), (1, 2, 2.0), (2, 1, 1.0)]);
        let set = PartitionSet::vertex_balanced(4, 2, PartitionBy::Destination);
        let pcoo = PartitionedCoo::new(&el, &set, EdgeOrder::Source);
        pcoo.validate().unwrap();
        for p in 0..2 {
            let dsts = pcoo.part_dsts(p);
            let w = pcoo.part_weights(p).unwrap();
            for i in 0..dsts.len() {
                // Weight equals destination id by construction.
                assert_eq!(w[i], dsts[i] as f32);
            }
        }
    }

    #[test]
    fn per_partition_orders_respected() {
        let el = figure1_graph();
        let set = PartitionSet::edge_balanced(&el.in_degrees(), 2, PartitionBy::Destination);
        let mixed =
            PartitionedCoo::with_orders(&el, &set, &[EdgeOrder::Source, EdgeOrder::Destination]);
        mixed.validate().unwrap();
        assert_eq!(mixed.part_order(0), EdgeOrder::Source);
        assert_eq!(mixed.part_order(1), EdgeOrder::Destination);
        let s = mixed.part_srcs(0);
        assert!(s.windows(2).all(|w| w[0] <= w[1]), "{s:?}");
        let d = mixed.part_dsts(1);
        assert!(d.windows(2).all(|w| w[0] <= w[1]), "{d:?}");
        // Same edge multiset per partition as a uniform build.
        let uniform = PartitionedCoo::new(&el, &set, EdgeOrder::Hilbert);
        for p in 0..2 {
            let mut a: Vec<(u32, u32)> = mixed
                .part_srcs(p)
                .iter()
                .zip(mixed.part_dsts(p))
                .map(|(&u, &v)| (u, v))
                .collect();
            let mut b: Vec<(u32, u32)> = uniform
                .part_srcs(p)
                .iter()
                .zip(uniform.part_dsts(p))
                .map(|(&u, &v)| (u, v))
                .collect();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "partition {p}");
        }
    }

    #[test]
    fn single_partition_equals_whole() {
        let el = figure1_graph();
        let whole = PartitionedCoo::whole(&el, EdgeOrder::Hilbert);
        assert_eq!(whole.num_partitions(), 1);
        assert_eq!(whole.part_range(0), 0..14);
        whole.validate().unwrap();
    }
}
