//! Differential harness for the partition-parallel executor.
//!
//! The executor's contract (see `gg_core::partitioned`): both per-partition
//! kernels apply updates destination-major in CSC adjacency order, each
//! destination has exactly one writer, and the frontier merge is over
//! disjoint ranges — so for operators that do not read concurrently-updated
//! source state, results are **bit-identical** across partition counts,
//! thread counts and kernel selections. These tests pin that contract:
//! every partitioned configuration (1, 2, 7 partitions × 1, 2, 4 threads)
//! must match the sequential engine (1 partition on 1 thread) byte for
//! byte, and everything must agree with the sequential oracles in
//! `gg_algorithms::reference` (exactly for integer outputs, to float
//! tolerance for the differently-ordered oracle summations).
//!
//! The topology is a single NUMA domain so the requested partition counts
//! (including the deliberately odd 7) are used verbatim, without the
//! multiple-of-domains rounding.
//!
//! The output-representation policy is read from the `GG_OUTPUT`
//! environment variable (`auto` / `sparse` / `dense`): CI runs this suite
//! once with the sparse-output fast path forced on and once forced off and
//! diffs the outcomes, so a representation-dependent result cannot land.
//! The work-stealing chunk cap is likewise read from `GG_CHUNK`
//! (`1` / `max` in CI), so a chunk-granularity-dependent result cannot
//! land either.

use graphgrind::algorithms::{self, reference, validate};
use graphgrind::core::config::{chunk_edges_from_env, ChunkCap, Config, ExecutorKind, OutputMode};
use graphgrind::core::engine::GraphGrind2;
use graphgrind::graph::edge_list::EdgeList;
use graphgrind::graph::generators::{self, RmatParams};
use graphgrind::graph::ops::{symmetrize, transpose};
use graphgrind::runtime::numa::NumaTopology;

const PARTITIONS: [usize; 3] = [1, 2, 7];
const THREADS: [usize; 3] = [1, 2, 4];

/// Partitioned-executor configuration with exact partition counts (UMA
/// topology: no rounding) and the CI-controlled output policy.
fn pconfig(partitions: usize, threads: usize) -> Config {
    Config {
        threads,
        num_partitions: partitions,
        numa: NumaTopology::new(1),
        executor: ExecutorKind::Partitioned,
        output_mode: OutputMode::from_env(),
        chunk_edges: chunk_edges_from_env().unwrap_or(ChunkCap::Auto),
        ..Config::default()
    }
}

/// The sequential engine the differential tests compare against: the same
/// executor reduced to one partition on one thread.
fn sequential(el: &EdgeList) -> GraphGrind2 {
    GraphGrind2::new(el, pconfig(1, 1))
}

/// A graph with a dense fully-connected block on the low vertex ids and a
/// sparse path tail, bridged so traversals reach both. Frontiers
/// concentrated in the block make block partitions classify dense while
/// tail partitions classify sparse — the mixed-kernel iterations the
/// executor exists to exploit.
fn density_skewed(n: usize) -> EdgeList {
    assert!(n >= 8);
    let block = (n / 4) as u32;
    let mut el = EdgeList::new(n);
    for i in 0..block {
        for j in 0..block {
            if i != j {
                el.push(i, j);
            }
        }
    }
    // Bridge into the tail, then a path to the end.
    el.push(block / 2, block);
    for i in block..(n as u32 - 1) {
        el.push(i, i + 1);
    }
    el
}

/// Deterministic graphs: seeded generators plus the crafted skewed shape.
fn graphs() -> Vec<(&'static str, EdgeList)> {
    vec![
        (
            "rmat-skewed",
            generators::rmat(8, 3000, RmatParams::skewed(), 7),
        ),
        ("grid-road", generators::grid_road(12, 12, 0.1, 9)),
        ("binary-tree", generators::binary_tree(127)),
        ("density-skewed", density_skewed(64)),
    ]
}

#[test]
fn bfs_bit_identical_across_partitioned_configs() {
    for (name, el) in graphs() {
        let seq = algorithms::bfs(&sequential(&el), 0);
        // Oracle and monolithic-engine agreement on the order-independent
        // output (levels).
        assert_eq!(seq.level, reference::bfs_levels(&el, 0), "{name}/oracle");
        let mono = algorithms::bfs(&GraphGrind2::new(&el, Config::for_tests()), 0);
        assert_eq!(seq.level, mono.level, "{name}/monolithic");
        for p in PARTITIONS {
            for t in THREADS {
                let got = algorithms::bfs(&GraphGrind2::new(&el, pconfig(p, t)), 0);
                assert_eq!(got.level, seq.level, "{name} P={p} T={t}");
                // Parents are order-sensitive; the executor pins the order.
                assert_eq!(got.parent, seq.parent, "{name} P={p} T={t}");
                assert_eq!(got.rounds, seq.rounds, "{name} P={p} T={t}");
            }
        }
    }
}

#[test]
fn pagerank_bit_identical_across_partitioned_configs() {
    for (name, el) in graphs() {
        let seq = algorithms::pagerank(&sequential(&el), 10);
        // The oracle sums in input-edge order; agreement is to tolerance.
        validate::assert_close_f64(&seq, &reference::pagerank(&el, 10), 1e-9, 1e-14);
        for p in PARTITIONS {
            for t in THREADS {
                let got = algorithms::pagerank(&GraphGrind2::new(&el, pconfig(p, t)), 10);
                // f64 accumulation order is fixed (CSC order per
                // destination), so equality is exact, not approximate.
                assert_eq!(got, seq, "{name} P={p} T={t}");
            }
        }
    }
}

#[test]
fn cc_bit_identical_across_partitioned_configs() {
    for (name, el) in graphs() {
        let el = symmetrize(&el);
        let want = reference::cc_labels(&el);
        let seq = algorithms::cc(&sequential(&el));
        assert_eq!(seq.label, want, "{name}/oracle");
        for p in PARTITIONS {
            for t in THREADS {
                // CC's update reads source labels that another partition
                // may be rewriting, so the *round count* may vary with
                // concurrency — but the converged labels are the
                // component minima, bit-identical everywhere.
                let got = algorithms::cc(&GraphGrind2::new(&el, pconfig(p, t)));
                assert_eq!(got.label, want, "{name} P={p} T={t}");
            }
        }
    }
}

#[test]
fn bc_bit_identical_across_partitioned_configs() {
    for (name, el) in graphs() {
        let elt = transpose(&el);
        let seq = algorithms::bc(&sequential(&el), &sequential(&elt), 0);
        validate::assert_close_f64(
            &seq.dependency,
            &reference::bc_single_source(&el, 0),
            1e-9,
            1e-12,
        );
        for p in PARTITIONS {
            for t in THREADS {
                let fwd = GraphGrind2::new(&el, pconfig(p, t));
                let bwd = GraphGrind2::new(&elt, pconfig(p, t));
                let got = algorithms::bc(&fwd, &bwd, 0);
                assert_eq!(got.level, seq.level, "{name} P={p} T={t}");
                assert_eq!(got.sigma, seq.sigma, "{name} P={p} T={t}");
                assert_eq!(got.dependency, seq.dependency, "{name} P={p} T={t}");
            }
        }
    }
}

/// Acceptance check: with ≥2 partitions on a pool of ≥2 threads, at least
/// one iteration of a real traversal mixes kernels across partitions on
/// the density-skewed graph — and the result still matches the sequential
/// engine bit for bit.
#[test]
fn skewed_graph_mixes_kernels_and_stays_bit_identical() {
    let el = density_skewed(64);
    let seq = algorithms::bfs(&sequential(&el), 0);

    let engine = GraphGrind2::new(&el, pconfig(7, 2));
    let got = algorithms::bfs(&engine, 0);
    assert_eq!(got.level, seq.level);
    assert_eq!(got.parent, seq.parent);

    let (sparse_parts, dense_parts, mixed) = engine.kernel_counts().partition_snapshot();
    assert!(
        sparse_parts > 0 && dense_parts > 0,
        "expected both kernels over the run: sparse={sparse_parts} dense={dense_parts}"
    );
    assert!(
        mixed >= 1,
        "expected at least one mixed-kernel iteration, got {mixed}"
    );
}

/// The per-partition views the executor materialises are consistent with
/// the engine's partition set, and empty partitions are explicit.
#[test]
fn partition_views_expose_the_schedule() {
    let el = density_skewed(64);
    let engine = GraphGrind2::new(&el, pconfig(7, 2));
    let views = engine.partition_views();
    assert_eq!(views.len(), 7);
    assert_eq!(views[0].dst_range.start, 0);
    assert_eq!(views.last().unwrap().dst_range.end, 64);
    let total_edges: u64 = views.iter().map(|v| v.num_edges).sum();
    assert_eq!(total_edges, el.num_edges() as u64);
    for w in views.windows(2) {
        assert_eq!(w[0].dst_range.end, w[1].dst_range.start, "contiguous");
        assert!(w[0].domain <= w[1].domain, "domain-major");
    }
}
