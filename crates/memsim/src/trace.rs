//! Cache-line-granular address traces.
//!
//! A trace records the sequence of cache lines a traversal touches. It is
//! the common input to both the reuse-distance profiler and the cache
//! simulator, so an experiment captures one trace and analyses it twice.

/// Cache-line size in bytes (64 B on every x86 server the paper targets).
pub const LINE_BYTES: u64 = 64;

/// Anything that can consume a stream of memory references.
///
/// Instrumented traversals are generic over the sink, so the same traversal
/// code can fill an [`AddressTrace`] (for offline reuse-distance analysis)
/// or drive a cache simulator directly (avoiding materialising multi-
/// gigabyte traces for the Figure 8 MPKI sweeps).
pub trait AccessSink {
    /// Consumes a reference to one cache line.
    fn access_line(&mut self, line: u64);

    /// Consumes a byte-address reference.
    #[inline]
    fn access(&mut self, byte_addr: u64) {
        self.access_line(byte_addr / LINE_BYTES);
    }
}

impl AccessSink for AddressTrace {
    #[inline]
    fn access_line(&mut self, line: u64) {
        self.record_line(line);
    }
}

/// A sink that discards references but counts them.
#[derive(Debug, Default)]
pub struct CountingSink {
    /// Number of references consumed.
    pub count: u64,
}

impl AccessSink for CountingSink {
    #[inline]
    fn access_line(&mut self, _line: u64) {
        self.count += 1;
    }
}

/// An ordered sequence of cache-line references.
#[derive(Clone, Debug, Default)]
pub struct AddressTrace {
    lines: Vec<u64>,
}

impl AddressTrace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty trace with capacity for `cap` references.
    pub fn with_capacity(cap: usize) -> Self {
        AddressTrace {
            lines: Vec::with_capacity(cap),
        }
    }

    /// Records a byte-address reference (translated to its cache line).
    #[inline]
    pub fn record(&mut self, byte_addr: u64) {
        self.lines.push(byte_addr / LINE_BYTES);
    }

    /// Records a reference that is already a cache-line number.
    #[inline]
    pub fn record_line(&mut self, line: u64) {
        self.lines.push(line);
    }

    /// The recorded cache-line sequence.
    #[inline]
    pub fn lines(&self) -> &[u64] {
        &self.lines
    }

    /// Number of references.
    #[inline]
    pub fn len(&self) -> usize {
        self.lines.len()
    }

    /// True when no references were recorded.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.lines.is_empty()
    }

    /// Number of *distinct* cache lines touched (the trace's footprint).
    pub fn footprint_lines(&self) -> usize {
        let mut sorted = self.lines.clone();
        sorted.sort_unstable();
        sorted.dedup();
        sorted.len()
    }

    /// Appends another trace (e.g. concatenating per-partition traces in
    /// partition execution order).
    pub fn extend_from(&mut self, other: &AddressTrace) {
        self.lines.extend_from_slice(&other.lines);
    }

    /// Clears the trace, retaining capacity.
    pub fn clear(&mut self) {
        self.lines.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_translates_to_lines() {
        let mut t = AddressTrace::new();
        t.record(0);
        t.record(63);
        t.record(64);
        t.record(128);
        assert_eq!(t.lines(), &[0, 0, 1, 2]);
        assert_eq!(t.len(), 4);
    }

    #[test]
    fn footprint_counts_distinct() {
        let mut t = AddressTrace::new();
        for addr in [0u64, 64, 0, 64, 128] {
            t.record(addr);
        }
        assert_eq!(t.footprint_lines(), 3);
    }

    #[test]
    fn extend_concatenates() {
        let mut a = AddressTrace::new();
        a.record_line(1);
        let mut b = AddressTrace::new();
        b.record_line(2);
        a.extend_from(&b);
        assert_eq!(a.lines(), &[1, 2]);
    }
}
