//! Compressed Sparse Columns: the indexed backward (pull) layout.
//!
//! A key observation of §II.C: *partitioning by destination does not change
//! the edge visit order of a CSC (backward) traversal at all* — edges are
//! already grouped by destination. The paper therefore stores **one whole
//! (unpartitioned) CSC** and partitions only the *computation range*: thread
//! `p` scans destinations `set.range(p)`, which needs no per-partition copy
//! and no replication. This module provides that single whole-graph CSC.

use crate::edge_list::EdgeList;
use crate::types::{EdgeId, VertexId};

/// Whole-graph CSC: `offsets[v]..offsets[v+1]` indexes `sources` (and
/// `weights` when present) with the in-neighbors of `v`, in input order.
#[derive(Clone, Debug, PartialEq)]
pub struct Csc {
    offsets: Vec<EdgeId>,
    sources: Vec<VertexId>,
    weights: Option<Vec<f32>>,
}

impl Csc {
    /// Builds a CSC from an edge list (stable counting sort by destination).
    pub fn from_edge_list(el: &EdgeList) -> Self {
        let n = el.num_vertices();
        let m = el.num_edges();
        let dsts = el.dsts();
        let mut counts = vec![0usize; n + 1];
        for &v in dsts {
            counts[v as usize + 1] += 1;
        }
        for i in 0..n {
            counts[i + 1] += counts[i];
        }
        let offsets = counts.clone();
        let mut sources = vec![0 as VertexId; m];
        let mut weights = el.weights().map(|_| vec![0f32; m]);
        for e in 0..m {
            let v = dsts[e] as usize;
            sources[counts[v]] = el.srcs()[e];
            if let (Some(w_out), Some(w_in)) = (&mut weights, el.weights()) {
                w_out[counts[v]] = w_in[e];
            }
            counts[v] += 1;
        }
        Csc {
            offsets,
            sources,
            weights,
        }
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.sources.len()
    }

    /// In-degree of `v`.
    #[inline]
    pub fn in_degree(&self, v: VertexId) -> usize {
        self.offsets[v as usize + 1] - self.offsets[v as usize]
    }

    /// In-neighbors of `v` in input order.
    #[inline]
    pub fn in_neighbors(&self, v: VertexId) -> &[VertexId] {
        &self.sources[self.offsets[v as usize]..self.offsets[v as usize + 1]]
    }

    /// Adjacency range of `v` as indices into [`sources`](Self::sources).
    #[inline]
    pub fn edge_range(&self, v: VertexId) -> std::ops::Range<EdgeId> {
        self.offsets[v as usize]..self.offsets[v as usize + 1]
    }

    /// Flat sources array.
    #[inline]
    pub fn sources(&self) -> &[VertexId] {
        &self.sources
    }

    /// Offset array of length `n + 1`.
    #[inline]
    pub fn offsets(&self) -> &[EdgeId] {
        &self.offsets
    }

    /// Edge weights aligned with [`sources`](Self::sources), if present.
    #[inline]
    pub fn weights(&self) -> Option<&[f32]> {
        self.weights.as_deref()
    }

    /// Weight of adjacency slot `e` (1.0 when unweighted).
    #[inline]
    pub fn weight_at(&self, e: EdgeId) -> f32 {
        self.weights.as_ref().map_or(1.0, |w| w[e])
    }

    /// In-degrees of all vertices.
    pub fn in_degrees(&self) -> Vec<u32> {
        (0..self.num_vertices())
            .map(|v| self.in_degree(v as VertexId) as u32)
            .collect()
    }

    /// Heap bytes consumed (measured).
    pub fn heap_bytes(&self) -> usize {
        self.offsets.len() * std::mem::size_of::<EdgeId>()
            + self.sources.len() * std::mem::size_of::<VertexId>()
            + self
                .weights
                .as_ref()
                .map_or(0, |w| w.len() * std::mem::size_of::<f32>())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::Csr;

    fn figure1_graph() -> EdgeList {
        EdgeList::from_edges(
            6,
            &[
                (0, 1),
                (0, 2),
                (0, 3),
                (0, 4),
                (0, 5),
                (2, 4),
                (3, 4),
                (3, 5),
                (4, 5),
                (5, 0),
                (5, 1),
                (5, 2),
                (5, 3),
                (5, 4),
            ],
        )
    }

    #[test]
    fn csc_matches_figure1() {
        // Figure 1 top-right: CSC indices 0 1 3 5 7 11 [14].
        let csc = Csc::from_edge_list(&figure1_graph());
        assert_eq!(csc.offsets(), &[0, 1, 3, 5, 7, 11, 14]);
        assert_eq!(csc.in_neighbors(0), &[5]);
        assert_eq!(csc.in_neighbors(1), &[0, 5]);
        assert_eq!(csc.in_neighbors(4), &[0, 2, 3, 5]);
        assert_eq!(csc.in_neighbors(5), &[0, 3, 4]);
    }

    #[test]
    fn csc_is_transpose_of_csr() {
        let el = figure1_graph();
        let csr = Csr::from_edge_list(&el);
        let csc = Csc::from_edge_list(&el);
        // (u, v) is a CSR edge iff it is a CSC edge.
        let mut fwd: Vec<(u32, u32)> = Vec::new();
        for u in 0..el.num_vertices() as u32 {
            for &v in csr.neighbors(u) {
                fwd.push((u, v));
            }
        }
        let mut bwd: Vec<(u32, u32)> = Vec::new();
        for v in 0..el.num_vertices() as u32 {
            for &u in csc.in_neighbors(v) {
                bwd.push((u, v));
            }
        }
        fwd.sort_unstable();
        bwd.sort_unstable();
        assert_eq!(fwd, bwd);
    }

    #[test]
    fn csc_weighted_alignment() {
        let el = EdgeList::from_weighted_edges(3, &[(0, 2, 1.0), (1, 2, 2.0), (2, 0, 3.0)]);
        let csc = Csc::from_edge_list(&el);
        assert_eq!(csc.in_neighbors(2), &[0, 1]);
        let r = csc.edge_range(2);
        assert_eq!(csc.weight_at(r.start), 1.0);
        assert_eq!(csc.weight_at(r.start + 1), 2.0);
        assert_eq!(csc.weight_at(csc.edge_range(0).start), 3.0);
    }

    #[test]
    fn csc_empty() {
        let csc = Csc::from_edge_list(&EdgeList::new(4));
        assert_eq!(csc.num_vertices(), 4);
        assert_eq!(csc.num_edges(), 0);
        assert_eq!(csc.in_degree(3), 0);
    }
}
