//! # gg-memsim — memory-hierarchy instrumentation substrate
//!
//! The paper's locality evidence rests on two measurements that normally
//! require hardware access:
//!
//! * **Figure 2** — the reuse-distance distribution of updates to the next
//!   frontier, shown to contract as the partition count grows;
//! * **Figure 8** — last-level-cache misses per kilo-instruction (MPKI),
//!   measured with performance counters on a Xeon E7-4860 v2.
//!
//! This crate substitutes portable, exact simulation for both:
//!
//! * [`reuse::ReuseProfile`] implements Olken's exact LRU stack-distance
//!   algorithm (hash map of last accesses + a Fenwick tree), producing the
//!   same log-bucketed histograms as Figure 2;
//! * [`cache::Cache`] is a set-associative LRU cache simulator (defaults
//!   sized like the paper's 30 MiB LLC) fed by the traversal's address
//!   trace, and [`mpki`] converts miss counts into MPKI using a documented
//!   instruction-count proxy.
//!
//! Traces are captured at cache-line granularity by [`trace::AddressTrace`],
//! with [`layout::MemoryLayout`] mapping logical arrays (frontier bitmaps,
//! per-vertex data, edge arrays) onto a synthetic address space.

pub mod cache;
pub mod histogram;
pub mod layout;
pub mod mpki;
pub mod reuse;
pub mod trace;

pub use cache::{Cache, CacheConfig, CacheStats};
pub use histogram::LogHistogram;
pub use layout::{ArrayHandle, MemoryLayout};
pub use mpki::{InstructionModel, MpkiReport};
pub use reuse::ReuseProfile;
pub use trace::{AccessSink, AddressTrace, CountingSink, LINE_BYTES};
