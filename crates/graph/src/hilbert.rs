//! Hilbert space-filling curve over the adjacency matrix.
//!
//! §IV.C of the paper sorts COO edge lists by the Hilbert index of the
//! `(src, dst)` coordinate, following Murray et al. (Naiad) and McSherry et
//! al. (COST). Traversing edges along the curve keeps both the source and
//! the destination coordinate within a small window at every scale, which
//! improves temporal locality on *both* the current and the next arrays —
//! the paper measures it as up to 16.2 % faster than source- or
//! destination-sorted orders once enough partitions remove atomics.
//!
//! The implementation is the classic iterative rotate-and-flip algorithm on
//! a `2^order × 2^order` grid; `order` ≤ 32 so the distance fits in `u64`.

/// Maximum supported curve order (bits per coordinate).
pub const MAX_ORDER: u32 = 32;

#[inline]
fn rotate(s: u64, x: &mut u64, y: &mut u64, rx: u64, ry: u64) {
    if ry == 0 {
        if rx == 1 {
            *x = s.wrapping_sub(1).wrapping_sub(*x);
            *y = s.wrapping_sub(1).wrapping_sub(*y);
        }
        std::mem::swap(x, y);
    }
}

/// Maps a cell `(x, y)` on the `2^order`-sided grid to its distance along
/// the Hilbert curve.
///
/// # Panics
/// Panics (debug) if a coordinate does not fit in `order` bits or
/// `order > 32`.
pub fn xy_to_d(order: u32, mut x: u64, mut y: u64) -> u64 {
    debug_assert!((1..=MAX_ORDER).contains(&order));
    debug_assert!(x >> order == 0 && y >> order == 0);
    let side = 1u64 << order;
    let mut d: u64 = 0;
    let mut s: u64 = side >> 1;
    while s > 0 {
        let rx = u64::from(x & s > 0);
        let ry = u64::from(y & s > 0);
        // s*s*3 <= 3 * 2^62 < 2^64 for order <= 32; the running sum is a
        // valid curve distance and therefore never exceeds side^2 - 1.
        d += s * s * ((3 * rx) ^ ry);
        // The encode direction rotates about the full grid.
        rotate(side, &mut x, &mut y, rx, ry);
        s >>= 1;
    }
    d
}

/// Maps a distance `d` along the Hilbert curve back to its `(x, y)` cell.
pub fn d_to_xy(order: u32, d: u64) -> (u64, u64) {
    debug_assert!((1..=MAX_ORDER).contains(&order));
    let side = 1u64 << order;
    let (mut x, mut y) = (0u64, 0u64);
    let mut t = d;
    let mut s: u64 = 1;
    while s < side {
        let rx = 1 & (t / 2);
        let ry = 1 & (t ^ rx);
        // The decode direction rotates about the current sub-grid.
        rotate(s, &mut x, &mut y, rx, ry);
        x += s * rx;
        y += s * ry;
        t /= 4;
        s <<= 1;
    }
    (x, y)
}

/// The smallest curve order whose grid covers `0..n` on both axes.
pub fn order_for(n: usize) -> u32 {
    if n <= 1 {
        1
    } else {
        (usize::BITS - (n - 1).leading_zeros()).max(1)
    }
}

/// Hilbert distance of an edge `(src, dst)` treated as a point of the
/// adjacency matrix of an `n`-vertex graph.
#[inline]
pub fn edge_key(order: u32, src: u32, dst: u32) -> u64 {
    xy_to_d(order, src as u64, dst as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn order2_matches_reference() {
        // The canonical order-2 Hilbert curve visits the 4x4 grid as:
        //  0  1 14 15
        //  3  2 13 12
        //  4  7  8 11
        //  5  6  9 10
        // with x = column, y = row.
        let expected: [[u64; 4]; 4] =
            [[0, 1, 14, 15], [3, 2, 13, 12], [4, 7, 8, 11], [5, 6, 9, 10]];
        for (y, row) in expected.iter().enumerate() {
            for (x, &d) in row.iter().enumerate() {
                assert_eq!(xy_to_d(2, x as u64, y as u64), d, "({x},{y})");
            }
        }
    }

    #[test]
    fn bijective_small_orders() {
        for order in 1..=4u32 {
            let side = 1u64 << order;
            let mut seen = vec![false; (side * side) as usize];
            for x in 0..side {
                for y in 0..side {
                    let d = xy_to_d(order, x, y);
                    assert!(!seen[d as usize], "duplicate d={d}");
                    seen[d as usize] = true;
                    assert_eq!(d_to_xy(order, d), (x, y));
                }
            }
            assert!(seen.iter().all(|&s| s));
        }
    }

    #[test]
    fn consecutive_cells_are_adjacent() {
        // The defining locality property: successive curve positions are
        // Manhattan-distance-1 apart.
        let order = 5;
        let side = 1u64 << order;
        for d in 0..(side * side - 1) {
            let (x0, y0) = d_to_xy(order, d);
            let (x1, y1) = d_to_xy(order, d + 1);
            let dist = x0.abs_diff(x1) + y0.abs_diff(y1);
            assert_eq!(dist, 1, "d={d}: ({x0},{y0}) -> ({x1},{y1})");
        }
    }

    #[test]
    fn order_for_covers() {
        assert_eq!(order_for(0), 1);
        assert_eq!(order_for(1), 1);
        assert_eq!(order_for(2), 1);
        assert_eq!(order_for(3), 2);
        assert_eq!(order_for(4), 2);
        assert_eq!(order_for(5), 3);
        assert_eq!(order_for(1 << 20), 20);
        assert_eq!(order_for((1 << 20) + 1), 21);
    }

    #[test]
    fn max_order_roundtrip() {
        // Spot-check the 32-bit order used for real vertex ids.
        for &(x, y) in &[
            (0u64, 0u64),
            (u32::MAX as u64, 0),
            (0, u32::MAX as u64),
            (u32::MAX as u64, u32::MAX as u64),
            (123_456_789, 987_654_321),
        ] {
            let d = xy_to_d(32, x, y);
            assert_eq!(d_to_xy(32, d), (x, y));
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use proptest::strategy::Just;

    /// Curve-visit index of the top-level quadrant holding `(x, y)`: the
    /// first term the encoder adds is `(side/2)² · ((3·rx) ^ ry)`, so the
    /// quadrant index in visit order is `(3·rx) ^ ry`.
    fn top_quadrant(order: u32, x: u64, y: u64) -> u64 {
        let half = 1u64 << (order - 1);
        let rx = u64::from(x & half > 0);
        let ry = u64::from(y & half > 0);
        (3 * rx) ^ ry
    }

    /// Strategy: a random curve order and a point on its grid.
    fn arb_point(min_order: u32) -> impl Strategy<Value = (u32, u64, u64)> {
        (min_order..=12u32).prop_flat_map(|o| {
            let side = 1u64 << o;
            (Just(o), 0..side, 0..side)
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        #[test]
        fn roundtrip_random_orders(p in arb_point(1)) {
            let (order, x, y) = p;
            let d = xy_to_d(order, x, y);
            prop_assert!(d < (1u64 << order) * (1u64 << order));
            prop_assert_eq!(d_to_xy(order, d), (x, y));
        }

        #[test]
        fn roundtrip_max_order(x in 0u64..=u32::MAX as u64, y in 0u64..=u32::MAX as u64) {
            let d = xy_to_d(MAX_ORDER, x, y);
            prop_assert_eq!(d_to_xy(MAX_ORDER, d), (x, y));
        }

        #[test]
        fn distance_roundtrip(
            od in (1u32..=12).prop_flat_map(|o| (Just(o), 0..(1u64 << o) * (1u64 << o))),
        ) {
            let (order, d) = od;
            let (x, y) = d_to_xy(order, d);
            prop_assert_eq!(xy_to_d(order, x, y), d);
        }

        /// Every point of top-level quadrant q (in curve-visit order) keys
        /// into the contiguous quarter [q·side²/4, (q+1)·side²/4):
        /// edge_key is monotone in quadrant visit order, which is what
        /// makes a Hilbert-sorted edge slice recursively clustered.
        #[test]
        fn quadrants_are_contiguous_key_ranges(p in arb_point(2)) {
            let (order, x, y) = p;
            let quarter = (1u64 << order) * (1u64 << order) / 4;
            let q = top_quadrant(order, x, y);
            let key = edge_key(order, x as u32, y as u32);
            prop_assert!(q * quarter <= key && key < (q + 1) * quarter);
        }

        /// Any point of an earlier-visited quadrant precedes every point of
        /// a later-visited one.
        #[test]
        fn keys_ordered_across_quadrants(
            pq in (2u32..=12).prop_flat_map(|o| {
                let side = 1u64 << o;
                ((Just(o), 0..side, 0..side), (0..side, 0..side))
            }),
        ) {
            let ((order, x0, y0), (x1, y1)) = pq;
            let qa = top_quadrant(order, x0, y0);
            let qb = top_quadrant(order, x1, y1);
            if qa < qb {
                prop_assert!(
                    edge_key(order, x0 as u32, y0 as u32) < edge_key(order, x1 as u32, y1 as u32)
                );
            }
        }
    }
}
