//! # gg-graph — graph representation substrate
//!
//! This crate implements every graph data structure the ICPP 2017 paper
//! *"Accelerating Graph Analytics by Utilising the Memory Locality of Graph
//! Partitioning"* (Sun, Vandierendonck, Nikolopoulos) depends on:
//!
//! * the three storage layouts — [`Csr`], [`Csc`] and [`Coo`] (coordinate
//!   list) — including the *pruned*
//!   partitioned CSR variant of §II.E that stores vertex identifiers
//!   explicitly so that zero-degree vertices need not be materialised;
//! * *partitioning by destination* (Algorithm 1 of the paper) and its dual,
//!   partitioning by source, with either edge-balanced or vertex-balanced
//!   cut points ([`partition`]);
//! * the replication-factor analysis of §II.D ([`replication`]) and the
//!   storage-size model of §II.E ([`storage`]);
//! * Hilbert space-filling-curve edge ordering (§IV.C, [`hilbert`] and
//!   [`reorder`]);
//! * synthetic graph generators used as stand-ins for the paper's data sets
//!   ([`generators`]): RMAT, Chung–Lu power-law, Erdős–Rényi, 2-D road
//!   grids and small-world graphs;
//! * plain-text and binary edge-list I/O ([`io`]).
//!
//! The crate is deliberately framework-agnostic: it knows nothing about
//! frontiers, traversal directions or scheduling. Those live in `gg-core`.
//!
//! ## Quick example
//!
//! ```
//! use gg_graph::prelude::*;
//!
//! // A tiny directed graph: 0 -> 1 -> 2, 0 -> 2.
//! let mut el = EdgeList::new(3);
//! el.push(0, 1);
//! el.push(1, 2);
//! el.push(0, 2);
//! let csr = Csr::from_edge_list(&el);
//! assert_eq!(csr.out_degree(0), 2);
//! assert_eq!(csr.neighbors(0), &[1, 2]);
//! ```

pub mod bitmap;
pub mod coo;
pub mod csc;
pub mod csr;
pub mod edge_list;
pub mod generators;
pub mod hilbert;
pub mod io;
pub mod lanes;
pub mod ops;
pub mod partition;
pub mod properties;
pub mod reorder;
pub mod replication;
pub mod storage;
pub mod types;
pub mod weights;

/// Commonly used items, re-exported for convenience.
pub mod prelude {
    pub use crate::bitmap::{AtomicBitmap, Bitmap};
    pub use crate::coo::{Coo, PartitionedCoo};
    pub use crate::csc::Csc;
    pub use crate::csr::{Csr, PartitionedCsr, PrunedCsr};
    pub use crate::edge_list::EdgeList;
    pub use crate::lanes::{LaneBitmap, LaneSegment};
    pub use crate::partition::{BalanceMode, PartitionBy, PartitionSet};
    pub use crate::reorder::EdgeOrder;
    pub use crate::types::{EdgeId, VertexId, INVALID_VERTEX};
}

pub use prelude::*;
