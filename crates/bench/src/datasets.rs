//! Synthetic stand-ins for the paper's Table I data sets.
//!
//! The real graphs (Twitter, Friendster, …) are multi-billion-edge
//! downloads that cannot ship with a reproduction; each stand-in matches
//! the *shape* that drives the paper's phenomena — degree skew, diameter,
//! density and directedness — at a size a laptop sweeps in minutes. All
//! generation is deterministic.

use gg_graph::edge_list::EdgeList;
use gg_graph::generators::{self, RmatParams};
use gg_graph::ops::symmetrize;
use gg_graph::properties::GraphStats;

/// The eight data sets of Table I.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Dataset {
    /// Twitter stand-in: heavily skewed RMAT, directed.
    Twitter,
    /// Friendster stand-in: milder RMAT, more vertices, directed.
    Friendster,
    /// Orkut stand-in: power-law, symmetrized (undirected).
    Orkut,
    /// LiveJournal stand-in: skewed RMAT, directed.
    LiveJournal,
    /// Yahoo_mem stand-in: Erdős–Rényi, symmetrized (undirected).
    YahooMem,
    /// USAroad stand-in: 2-D grid with diagonals, undirected.
    UsaRoad,
    /// The paper's own synthetic power-law (α = 2.0), directed.
    Powerlaw,
    /// The paper's RMAT27 synthetic, directed.
    Rmat27,
}

impl Dataset {
    /// All data sets in Table I order.
    pub fn all() -> [Dataset; 8] {
        [
            Dataset::Twitter,
            Dataset::Friendster,
            Dataset::Orkut,
            Dataset::LiveJournal,
            Dataset::YahooMem,
            Dataset::UsaRoad,
            Dataset::Powerlaw,
            Dataset::Rmat27,
        ]
    }

    /// Display name matching the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            Dataset::Twitter => "Twitter",
            Dataset::Friendster => "Friendster",
            Dataset::Orkut => "Orkut",
            Dataset::LiveJournal => "LiveJournal",
            Dataset::YahooMem => "Yahoo_mem",
            Dataset::UsaRoad => "USAroad",
            Dataset::Powerlaw => "Powerlaw",
            Dataset::Rmat27 => "RMAT27",
        }
    }

    /// Whether Table I lists the graph as undirected.
    pub fn undirected(self) -> bool {
        matches!(self, Dataset::Orkut | Dataset::YahooMem | Dataset::UsaRoad)
    }

    /// Builds the stand-in at `scale` (1.0 = default bench size; tests use
    /// much smaller values). Deterministic.
    pub fn build(self, scale: f64) -> EdgeList {
        assert!(scale > 0.0, "scale must be positive");
        // log2 adjustment for vertex-count scales.
        let s = |base: u32| -> u32 {
            let adj = scale.log2().round() as i32;
            (base as i32 + adj).clamp(6, 28) as u32
        };
        let m = |base: usize| -> usize { ((base as f64 * scale) as usize).max(1000) };
        match self {
            Dataset::Twitter => generators::rmat(s(18), m(4_000_000), RmatParams::skewed(), 42),
            Dataset::Friendster => generators::rmat(s(19), m(4_000_000), RmatParams::mild(), 43),
            Dataset::Orkut => symmetrize(&generators::chung_lu(m(120_000), m(2_000_000), 2.3, 44)),
            Dataset::LiveJournal => generators::rmat(s(17), m(1_500_000), RmatParams::skewed(), 45),
            Dataset::YahooMem => symmetrize(&generators::erdos_renyi(m(80_000), m(800_000), 46)),
            Dataset::UsaRoad => {
                let side = ((500_000.0 * scale).sqrt() as usize).max(32);
                generators::grid_road(side, side, 0.05, 47)
            }
            Dataset::Powerlaw => generators::chung_lu(m(400_000), m(3_000_000), 2.0, 48),
            Dataset::Rmat27 => generators::rmat(s(18), m(3_000_000), RmatParams::skewed(), 49),
        }
    }

    /// Builds and prints a Table I-style characterisation row.
    pub fn stats_row(self, scale: f64) -> (String, GraphStats) {
        let el = self.build(scale);
        (self.name().to_string(), GraphStats::compute(&el))
    }
}

/// The skewed `powerlaw` scenario: a Chung–Lu power-law base (configurable
/// exponent) plus `hubs` star hubs on the lowest vertex ids, each pulling
/// in-edges from sources spread across the whole id space.
///
/// Partitioning by destination homes all the hub in-edges into the
/// partitions owning the low id range, so one partition is star-shaped
/// heavy while the tail partitions stay light — the imbalance regime the
/// work-stealing chunked executor exists to beat (`repro load_balance`,
/// `tests/chunked_differential.rs`). Deterministic for a given
/// `(scale, alpha, hubs, seed)`.
///
/// Each hub receives `max(n / 8, 32)` spokes; with the default 16 hubs
/// that concentrates ~2n extra edges on the lowest ids.
pub fn powerlaw_scenario(scale: f64, alpha: f64, hubs: usize, seed: u64) -> EdgeList {
    assert!(scale > 0.0, "scale must be positive");
    let n = ((50_000.0 * scale) as usize).max(600);
    let m = ((300_000.0 * scale) as usize).max(3_000);
    let mut el = generators::chung_lu(n, m, alpha, seed);
    let spokes = (n / 8).max(32);
    for h in 0..hubs.min(n) {
        // Sources strided over the id space, offset per hub so spoke sets
        // differ between hubs; self-loops skipped.
        let stride = (n / spokes).max(1);
        for s in 0..spokes {
            let src = ((h + 1) * 7 + s * stride) % n;
            if src != h {
                el.push(src as u32, h as u32);
            }
        }
    }
    el
}

#[cfg(test)]
mod tests {
    use super::*;

    const TEST_SCALE: f64 = 0.01;

    #[test]
    fn all_datasets_build_at_test_scale() {
        for d in Dataset::all() {
            let el = d.build(TEST_SCALE);
            assert!(el.num_vertices() > 0, "{d:?}");
            assert!(el.num_edges() >= 1000, "{d:?}");
            el.validate().unwrap();
        }
    }

    #[test]
    fn undirected_datasets_are_symmetric() {
        for d in [Dataset::Orkut, Dataset::YahooMem, Dataset::UsaRoad] {
            let el = d.build(TEST_SCALE);
            assert!(
                GraphStats::compute(&el).symmetric,
                "{d:?} should be symmetric"
            );
        }
    }

    #[test]
    fn twitter_like_is_skewed() {
        let el = Dataset::Twitter.build(TEST_SCALE);
        let stats = GraphStats::compute(&el);
        assert!(
            stats.max_out_degree as f64 > 20.0 * stats.avg_degree,
            "skew too weak: max {} avg {}",
            stats.max_out_degree,
            stats.avg_degree
        );
    }

    #[test]
    fn road_like_has_low_degree() {
        let el = Dataset::UsaRoad.build(TEST_SCALE);
        let stats = GraphStats::compute(&el);
        assert!(stats.max_out_degree <= 6);
    }

    #[test]
    fn deterministic_across_builds() {
        let a = Dataset::LiveJournal.build(TEST_SCALE);
        let b = Dataset::LiveJournal.build(TEST_SCALE);
        assert_eq!(a, b);
    }

    #[test]
    fn powerlaw_scenario_concentrates_in_degree_on_the_hubs() {
        let hubs = 8;
        let el = powerlaw_scenario(0.02, 2.0, hubs, 7);
        el.validate().unwrap();
        let n = el.num_vertices();
        let in_deg = el.in_degrees();
        let spokes = (n / 8).max(32) as u32;
        // Every hub's in-degree is dominated by its spokes.
        for (h, &d) in in_deg.iter().take(hubs).enumerate() {
            assert!(d >= spokes / 2, "hub {h} in-degree {d} too small");
        }
        // The hub block holds a large multiple of the per-vertex average.
        let hub_edges: u64 = in_deg[..hubs].iter().map(|&d| d as u64).sum();
        let avg = el.num_edges() as u64 / n as u64;
        assert!(hub_edges > 20 * avg * hubs as u64 / 2);
        // Deterministic and parameter-sensitive.
        assert_eq!(el, powerlaw_scenario(0.02, 2.0, hubs, 7));
        assert_ne!(el, powerlaw_scenario(0.02, 2.0, hubs + 1, 7));
        assert_ne!(el, powerlaw_scenario(0.02, 2.3, hubs, 7));
    }
}
