//! Exact LRU reuse-distance (stack-distance) profiling — Olken's algorithm.
//!
//! The **reuse distance** of a reference is the number of *distinct* cache
//! lines referenced since the previous reference to the same line
//! (exclusive). A fully associative LRU cache of capacity `C` lines hits
//! exactly the references whose reuse distance is `< C`, which is why
//! Figure 2's contraction of the distance distribution translates directly
//! into the MPKI reductions of Figure 8.
//!
//! Olken's algorithm processes a trace in `O(m log m)`: a hash map tracks
//! each line's previous access time, and a Fenwick tree marks which time
//! positions are the *last* access of some line, so the number of distinct
//! intervening lines is a prefix-sum query.

use std::collections::HashMap;

use crate::histogram::LogHistogram;
use crate::trace::AddressTrace;

/// Fenwick (binary indexed) tree over time positions with +1/-1 updates.
struct Fenwick {
    tree: Vec<u32>,
}

impl Fenwick {
    fn new(len: usize) -> Self {
        Fenwick {
            tree: vec![0; len + 1],
        }
    }

    /// Adds `delta` at position `i` (0-based).
    fn add(&mut self, i: usize, delta: i32) {
        let mut i = i + 1;
        while i < self.tree.len() {
            self.tree[i] = self.tree[i].wrapping_add(delta as u32);
            i += i & i.wrapping_neg();
        }
    }

    /// Sum of positions `0..=i` (0-based inclusive).
    fn prefix(&self, i: usize) -> u32 {
        let mut i = i + 1;
        let mut s = 0u32;
        while i > 0 {
            s = s.wrapping_add(self.tree[i]);
            i -= i & i.wrapping_neg();
        }
        s
    }

    /// Sum of the half-open range `lo..hi` (0-based).
    fn range(&self, lo: usize, hi: usize) -> u32 {
        if hi <= lo {
            return 0;
        }
        let upper = self.prefix(hi - 1);
        if lo == 0 {
            upper
        } else {
            upper.wrapping_sub(self.prefix(lo - 1))
        }
    }
}

/// The result of profiling one trace.
///
/// ```
/// use gg_memsim::{AddressTrace, ReuseProfile};
///
/// let mut t = AddressTrace::new();
/// for line in [1u64, 2, 3, 1, 2, 3] {
///     t.record_line(line);
/// }
/// let p = ReuseProfile::from_trace(&t);
/// assert_eq!(p.cold_references, 3);
/// // Each reuse skipped 2 distinct other lines: a 4-line LRU cache hits.
/// assert!(p.hit_ratio(4) > 0.49);
/// assert_eq!(p.hit_ratio(2), 0.0);
/// ```
#[derive(Clone, Debug, Default)]
pub struct ReuseProfile {
    /// Histogram of finite reuse distances (log2 buckets).
    pub histogram: LogHistogram,
    /// References with no previous access (cold / compulsory).
    pub cold_references: u64,
    /// Total references profiled.
    pub total_references: u64,
}

impl ReuseProfile {
    /// Profiles a trace with Olken's algorithm.
    pub fn from_trace(trace: &AddressTrace) -> Self {
        let lines = trace.lines();
        let m = lines.len();
        let mut last: HashMap<u64, usize> = HashMap::with_capacity(m / 4 + 16);
        let mut fen = Fenwick::new(m);
        let mut profile = ReuseProfile {
            total_references: m as u64,
            ..Default::default()
        };
        for (t, &line) in lines.iter().enumerate() {
            match last.insert(line, t) {
                None => profile.cold_references += 1,
                Some(prev) => {
                    // Distinct lines whose last access falls strictly
                    // between prev and t.
                    let d = fen.range(prev + 1, t);
                    profile.histogram.add(d as u64);
                    fen.add(prev, -1);
                }
            }
            fen.add(t, 1);
        }
        profile
    }

    /// Fraction of non-cold references with reuse distance `< capacity` —
    /// the hit ratio of a fully associative LRU cache with that many lines.
    pub fn hit_ratio(&self, capacity_lines: u64) -> f64 {
        if self.total_references == 0 {
            return 0.0;
        }
        let mut hits = 0u64;
        for (upper, count) in self.histogram.series() {
            // A bucket is counted as hits when its entire range fits.
            if upper < capacity_lines {
                hits += count;
            }
        }
        hits as f64 / self.total_references as f64
    }

    /// Miss-ratio curve: `(capacity_lines, miss_ratio)` for each requested
    /// capacity. This analytically links Figure 2 (reuse distances) to
    /// Figure 8 (cache misses): an LRU cache of capacity `C` misses exactly
    /// the references whose distance is `>= C`, plus the cold misses.
    pub fn miss_ratio_curve(&self, capacities: &[u64]) -> Vec<(u64, f64)> {
        capacities
            .iter()
            .map(|&c| (c, 1.0 - self.hit_ratio(c)))
            .collect()
    }
}

/// A deliberately naive O(m·u) reference implementation (LRU stack walk),
/// used by the test-suite to validate Olken's algorithm.
pub fn naive_reuse_distances(trace: &AddressTrace) -> Vec<Option<u64>> {
    let mut stack: Vec<u64> = Vec::new(); // most recent first
    let mut out = Vec::with_capacity(trace.len());
    for &line in trace.lines() {
        match stack.iter().position(|&l| l == line) {
            Some(depth) => {
                out.push(Some(depth as u64));
                stack.remove(depth);
            }
            None => out.push(None),
        }
        stack.insert(0, line);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn trace_of(lines: &[u64]) -> AddressTrace {
        let mut t = AddressTrace::new();
        for &l in lines {
            t.record_line(l);
        }
        t
    }

    #[test]
    fn immediate_reuse_is_distance_zero() {
        let p = ReuseProfile::from_trace(&trace_of(&[7, 7, 7]));
        assert_eq!(p.cold_references, 1);
        assert_eq!(p.histogram.count(), 2);
        assert_eq!(p.histogram.buckets()[0], 2); // two distance-0 reuses
    }

    #[test]
    fn distinct_scan_is_all_cold() {
        let p = ReuseProfile::from_trace(&trace_of(&[1, 2, 3, 4, 5]));
        assert_eq!(p.cold_references, 5);
        assert_eq!(p.histogram.count(), 0);
    }

    #[test]
    fn cyclic_scan_distance_equals_working_set() {
        // a b c a b c: each reuse skips over 2 distinct other lines.
        let p = ReuseProfile::from_trace(&trace_of(&[1, 2, 3, 1, 2, 3]));
        assert_eq!(p.cold_references, 3);
        assert_eq!(p.histogram.count(), 3);
        assert_eq!(p.histogram.buckets()[2], 3); // distance 2 -> bucket [2,3]
    }

    #[test]
    fn matches_naive_on_random_traces() {
        let mut rng = SmallRng::seed_from_u64(1234);
        for _ in 0..20 {
            let len = rng.gen_range(1..200);
            let universe = rng.gen_range(1..30u64);
            let lines: Vec<u64> = (0..len).map(|_| rng.gen_range(0..universe)).collect();
            let t = trace_of(&lines);
            let naive = naive_reuse_distances(&t);
            let olken = ReuseProfile::from_trace(&t);

            let naive_cold = naive.iter().filter(|d| d.is_none()).count() as u64;
            assert_eq!(olken.cold_references, naive_cold);

            let mut naive_hist = LogHistogram::new();
            for d in naive.into_iter().flatten() {
                naive_hist.add(d);
            }
            assert_eq!(olken.histogram, naive_hist);
        }
    }

    #[test]
    fn hit_ratio_reflects_capacity() {
        // Working set of 3 distinct lines cycled 100 times: distance 2.
        let mut lines = Vec::new();
        for _ in 0..100 {
            lines.extend_from_slice(&[1, 2, 3]);
        }
        let p = ReuseProfile::from_trace(&trace_of(&lines));
        // Capacity 4 lines holds the whole working set.
        assert!(p.hit_ratio(4) > 0.95);
        // Capacity 1 line cannot hold it (distance 2 >= 1).
        assert_eq!(p.hit_ratio(1), 0.0);
    }

    #[test]
    fn miss_ratio_curve_is_monotone_nonincreasing() {
        let mut rng = SmallRng::seed_from_u64(9);
        let lines: Vec<u64> = (0..2000).map(|_| rng.gen_range(0..64u64)).collect();
        let p = ReuseProfile::from_trace(&trace_of(&lines));
        let curve = p.miss_ratio_curve(&[1, 2, 4, 8, 16, 32, 64, 128]);
        for w in curve.windows(2) {
            assert!(w[1].1 <= w[0].1 + 1e-12, "{curve:?}");
        }
        // At capacity >= universe, only cold misses remain.
        let expect_cold = p.cold_references as f64 / p.total_references as f64;
        assert!((curve.last().unwrap().1 - expect_cold).abs() < 1e-12);
    }

    mod proptests {
        use super::*;
        use proptest::prelude::*;

        /// Independent restatement of the log2 bucket upper bound: distance
        /// 0 sits alone in bucket 0; a distance in `[2^(k-1), 2^k - 1]`
        /// reports upper bound `2^k - 1`.
        fn bucket_upper(d: u64) -> u64 {
            if d == 0 {
                0
            } else {
                (1u64 << (64 - d.leading_zeros())) - 1
            }
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(128))]

            /// `hit_ratio` (histogram fast path) must equal the oracle
            /// computed from `naive_reuse_distances` (LRU stack walk):
            /// exactly the non-cold references whose bucket upper bound
            /// fits below the capacity, never a reference whose *true*
            /// distance does not fit.
            #[test]
            fn hit_ratio_matches_naive_oracle(
                tc in (1u64..40).prop_flat_map(|u| {
                    (proptest::collection::vec(0..u, 0..300), 0u64..80)
                }),
            ) {
                let (lines, capacity) = tc;
                let t = trace_of(&lines);
                let naive = naive_reuse_distances(&t);
                let p = ReuseProfile::from_trace(&t);

                let finite: Vec<u64> = naive.iter().copied().flatten().collect();
                let oracle_hits = finite.iter().filter(|&&d| bucket_upper(d) < capacity).count();
                let expect = if lines.is_empty() {
                    0.0
                } else {
                    oracle_hits as f64 / lines.len() as f64
                };
                let got = p.hit_ratio(capacity);
                prop_assert!((got - expect).abs() < 1e-12, "got {got}, expected {expect}");

                // The bucketed ratio is conservative: it never counts a
                // reference an LRU cache of this capacity would miss.
                let true_hits = finite.iter().filter(|&&d| d < capacity).count();
                prop_assert!(oracle_hits <= true_hits);
                prop_assert_eq!(
                    p.cold_references,
                    naive.iter().filter(|d| d.is_none()).count() as u64
                );
            }
        }
    }

    #[test]
    fn fenwick_range_queries() {
        let mut f = Fenwick::new(10);
        f.add(2, 1);
        f.add(5, 1);
        f.add(9, 1);
        assert_eq!(f.range(0, 10), 3);
        assert_eq!(f.range(3, 9), 1);
        assert_eq!(f.range(3, 10), 2);
        assert_eq!(f.range(5, 5), 0);
        f.add(5, -1);
        assert_eq!(f.range(0, 10), 2);
    }
}
