//! Query serving: admission control and lane-batched execution over the
//! fused engine.
//!
//! The fused engine (PR 8) answers K ≤ 64 point queries in one K-lane
//! traversal; this module is the front-end that feeds it. Queries (BFS
//! distance, reachability, PPR-from-seed) arrive open-loop on a
//! deterministic synthetic trace ([`arrival_trace`], SplitMix64-driven
//! exponential interarrivals), wait in **per-algorithm admission queues**
//! (lanes of one batch must share an operator), and are dispatched as
//! ≤ 64-lane batches onto the shared immutable graph and persistent crew
//! under an age-vs-occupancy policy ([`AdmissionPolicy`]): a queue
//! dispatches when its oldest query has waited `max_batch_age`, or as
//! soon as a full `max_lanes` batch is waiting.
//!
//! Batches run on the stepping runners
//! ([`FusedBfsRun`] / [`FusedPprRun`]), so a lane whose frontier empties
//! **retires early** — its result is final and its completion is stamped
//! at that round's clock, while sibling lanes keep running. The optional
//! `round_cap` is the long-tail escape: a batch runs at most that many
//! rounds per dispatch, then re-enters the dispatch loop as a
//! *continuation* (same runner state, never restarted), letting younger
//! batches interleave. Both policies are result-invisible: per-query
//! results stay bit-identical to standalone K = 1 runs, which
//! [`serve`] can verify in-line (`check_oracle`).
//!
//! Service time is pluggable ([`CostModel`]): `Measured` wall-clocks each
//! fused round (the benchmark mode), `Virtual` charges
//! `round_base + per_edge · edges(round)` from the deterministic work
//! counters — a schedule-independent clock, so a virtual-time serve run
//! is byte-identical across `GG_THREADS` and chunk caps (the CI smoke
//! leg diffs exactly that).

use std::collections::VecDeque;
use std::time::Instant;

use gg_algorithms::{FusedBfsRun, FusedPprRun};
use gg_core::engine::{Engine, GraphGrind2};
use gg_graph::types::VertexId;

/// SplitMix64: the 64-bit finalizer-based PRNG (public domain, Steele et
/// al.) — tiny, seedable, and identical everywhere, which is all a
/// deterministic arrival trace needs.
#[derive(Clone, Debug)]
pub struct SplitMix64(u64);

impl SplitMix64 {
    /// A generator seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        SplitMix64(seed)
    }

    /// The next 64 pseudo-random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// A uniform draw in `(0, 1]` — never zero, so `-ln(u)` is finite.
    pub fn next_unit(&mut self) -> f64 {
        ((self.next_u64() >> 11) + 1) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// The query algorithms the server batches (per-algorithm queues: lanes
/// of one fused batch must share an operator).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum QueryKind {
    /// Full BFS distance vector from the source.
    BfsDist,
    /// Reachable-vertex set of the source.
    Reach,
    /// Personalized PageRank from the seed.
    Ppr,
}

impl QueryKind {
    /// All kinds, in queue-priority order (ties in the dispatch policy
    /// resolve this way).
    pub const ALL: [QueryKind; 3] = [QueryKind::BfsDist, QueryKind::Reach, QueryKind::Ppr];

    /// Short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            QueryKind::BfsDist => "bfs",
            QueryKind::Reach => "reach",
            QueryKind::Ppr => "ppr",
        }
    }
}

/// One point query of the arrival trace.
#[derive(Clone, Copy, Debug)]
pub struct Query {
    /// Trace position (stable identifier).
    pub id: usize,
    /// Which algorithm answers it.
    pub kind: QueryKind,
    /// Source / seed vertex.
    pub source: VertexId,
    /// Open-loop arrival time (seconds from trace start).
    pub arrival: f64,
}

/// A deterministic open-loop arrival trace: `num_queries` queries with
/// exponential interarrivals at `rate_qps`, kinds and sources drawn
/// uniformly (SplitMix64 from `seed`). Same inputs ⇒ same trace, on any
/// machine.
pub fn arrival_trace(
    num_queries: usize,
    num_vertices: usize,
    rate_qps: f64,
    seed: u64,
    kinds: &[QueryKind],
) -> Vec<Query> {
    assert!(num_vertices > 0, "arrival trace needs a non-empty graph");
    assert!(!kinds.is_empty(), "arrival trace needs at least one kind");
    assert!(rate_qps > 0.0, "arrival rate must be positive");
    let mut rng = SplitMix64::new(seed);
    let mut t = 0.0f64;
    (0..num_queries)
        .map(|id| {
            t += -rng.next_unit().ln() / rate_qps;
            let kind = kinds[(rng.next_u64() % kinds.len() as u64) as usize];
            let source = (rng.next_u64() % num_vertices as u64) as VertexId;
            Query {
                id,
                kind,
                source,
                arrival: t,
            }
        })
        .collect()
}

/// When a per-algorithm queue dispatches, and how long a dispatch may
/// hold the engine.
#[derive(Clone, Copy, Debug)]
pub struct AdmissionPolicy {
    /// Batch width cap (1..=64). 1 is the one-traversal-per-query
    /// baseline.
    pub max_lanes: usize,
    /// A queue becomes ripe once its oldest query has waited this long
    /// (seconds) — the latency end of the age-vs-occupancy trade.
    pub max_batch_age: f64,
    /// Rounds one dispatch may run before the batch is suspended into a
    /// continuation (`None` = run to quiescence). The capped-rounds
    /// escape: one long-tail lane cannot hold later arrivals hostage.
    pub round_cap: Option<usize>,
}

impl AdmissionPolicy {
    /// Fused batching at full width, no round cap.
    pub fn fused(max_batch_age: f64) -> Self {
        AdmissionPolicy {
            max_lanes: 64,
            max_batch_age,
            round_cap: None,
        }
    }

    /// The one-traversal-per-query baseline: every dispatch is a single
    /// lane, admission order.
    pub fn baseline() -> Self {
        AdmissionPolicy {
            max_lanes: 1,
            max_batch_age: 0.0,
            round_cap: None,
        }
    }
}

/// How a fused round is charged against the simulated clock.
#[derive(Clone, Copy, Debug)]
pub enum CostModel {
    /// Wall-clock each round (the benchmark mode; arrivals are still
    /// simulated, so latency = queueing + measured service).
    Measured,
    /// `round_base + per_edge · edges(round)` from the deterministic
    /// work counters — a schedule-independent clock for differential CI
    /// runs (edge visits are a pure function of the frontier; see the
    /// fused differential suite).
    Virtual {
        /// Fixed per-round cost (planning + merge floor), seconds.
        round_base: f64,
        /// Per traversed edge, seconds.
        per_edge: f64,
    },
}

/// PPR query parameters (shared by every PPR lane the server runs).
#[derive(Clone, Copy, Debug)]
pub struct PprParams {
    /// Teleport probability.
    pub alpha: f64,
    /// Residual push threshold.
    pub eps: f64,
    /// Sweep budget per batch.
    pub max_rounds: usize,
}

impl Default for PprParams {
    fn default() -> Self {
        PprParams {
            alpha: 0.15,
            eps: 1e-4,
            max_rounds: 30,
        }
    }
}

/// Full serving configuration.
#[derive(Clone, Copy, Debug)]
pub struct ServeConfig {
    /// Admission policy.
    pub policy: AdmissionPolicy,
    /// Clock model.
    pub cost: CostModel,
    /// PPR parameters.
    pub ppr: PprParams,
    /// Re-run every distinct `(kind, source)` standalone (K = 1) after
    /// the trace drains and compare digests — the bit-identity oracle.
    pub check_oracle: bool,
}

/// One served query's outcome.
#[derive(Clone, Copy, Debug)]
pub struct QueryCompletion {
    /// Trace position.
    pub id: usize,
    /// Algorithm.
    pub kind: QueryKind,
    /// Source / seed vertex.
    pub source: VertexId,
    /// Arrival time.
    pub arrival: f64,
    /// First dispatch time of the query's batch.
    pub dispatched: f64,
    /// Completion time: the clock at the end of the round in which the
    /// query's lane retired.
    pub completed: f64,
    /// The batch's round at which the lane retired (absolute across
    /// continuation slices).
    pub retire_round: u32,
    /// Sequence number of the batch that served it.
    pub batch: usize,
    /// FNV-1a digest of the query's full result (distance vector /
    /// reachable set / mass vector) — the bit-identity witness.
    pub digest: u64,
}

impl QueryCompletion {
    /// Queueing plus service latency.
    pub fn latency(&self) -> f64 {
        self.completed - self.arrival
    }
}

/// What a serve run produced.
#[derive(Clone, Debug, Default)]
pub struct ServeOutcome {
    /// Every query's completion, in trace order.
    pub completions: Vec<QueryCompletion>,
    /// Clock at which the last batch finished.
    pub makespan: f64,
    /// Batches dispatched (a continuation slice counts as a dispatch).
    pub batches: u64,
    /// Mean lanes per dispatch.
    pub mean_lane_occupancy: f64,
    /// Fused rounds executed across all dispatches.
    pub batch_rounds: u64,
    /// Lanes that retired strictly before their batch's last round.
    pub lanes_retired_early: u64,
    /// Queries whose digest diverged from the standalone oracle (only
    /// populated when `check_oracle` is set).
    pub oracle_failures: usize,
}

impl ServeOutcome {
    /// Served queries per second of makespan.
    pub fn qps(&self) -> f64 {
        if self.makespan <= 0.0 {
            return 0.0;
        }
        self.completions.len() as f64 / self.makespan
    }

    /// Nearest-rank latency percentile (`p` in 0..=100).
    pub fn latency_percentile(&self, p: f64) -> f64 {
        if self.completions.is_empty() {
            return 0.0;
        }
        let mut lat: Vec<f64> = self.completions.iter().map(|c| c.latency()).collect();
        lat.sort_by(f64::total_cmp);
        let n = lat.len();
        let rank = ((p / 100.0) * n as f64).ceil() as usize;
        lat[rank.clamp(1, n) - 1]
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv_fold(h: &mut u64, word: u64) {
    for b in word.to_le_bytes() {
        *h ^= b as u64;
        *h = h.wrapping_mul(FNV_PRIME);
    }
}

/// FNV-1a over a `u32` sequence (BFS distance vectors).
fn digest_u32s(vals: &[u32]) -> u64 {
    let mut h = FNV_OFFSET;
    for &v in vals {
        fnv_fold(&mut h, v as u64);
    }
    h
}

/// FNV-1a over an `f64` sequence, by bit pattern (PPR mass vectors).
fn digest_f64s(vals: &[f64]) -> u64 {
    let mut h = FNV_OFFSET;
    for &v in vals {
        fnv_fold(&mut h, v.to_bits());
    }
    h
}

/// FNV-1a over lane `k`'s reachable-vertex set, ascending.
fn digest_reach(masks: &[u64], k: u32) -> u64 {
    let mut h = FNV_OFFSET;
    let bit = 1u64 << k;
    for (v, &m) in masks.iter().enumerate() {
        if m & bit != 0 {
            fnv_fold(&mut h, v as u64);
        }
    }
    h
}

/// A dispatched batch: the resumable runner plus its lane → query map.
enum Runner<'a> {
    Bfs(FusedBfsRun<'a>),
    Reach(FusedBfsRun<'a>),
    Ppr(FusedPprRun<'a>),
}

impl Runner<'_> {
    fn step(&mut self) -> u64 {
        match self {
            Runner::Bfs(r) | Runner::Reach(r) => r.step(),
            Runner::Ppr(r) => r.step(),
        }
    }

    fn is_done(&self) -> bool {
        match self {
            Runner::Bfs(r) | Runner::Reach(r) => r.is_done(),
            Runner::Ppr(r) => r.is_done(),
        }
    }

    fn active_lanes(&self) -> u64 {
        match self {
            Runner::Bfs(r) | Runner::Reach(r) => r.active_lanes(),
            Runner::Ppr(r) => r.active_lanes(),
        }
    }

    fn rounds(&self) -> usize {
        match self {
            Runner::Bfs(r) | Runner::Reach(r) => r.rounds(),
            Runner::Ppr(r) => r.rounds(),
        }
    }

    /// Lane `k`'s result digest (final once the lane has retired).
    fn digest(&self, k: u32) -> u64 {
        match self {
            Runner::Bfs(r) => digest_u32s(r.dist(k)),
            Runner::Reach(r) => digest_reach(&r.reach_masks(), k),
            Runner::Ppr(r) => digest_f64s(r.mass(k)),
        }
    }
}

struct Batch<'a> {
    runner: Runner<'a>,
    /// Lane `k` serves `queries[k]`.
    queries: Vec<Query>,
    /// Completion clock per lane, stamped at retirement.
    done_at: Vec<f64>,
    /// Retirement round per lane.
    done_round: Vec<u32>,
    /// First dispatch time.
    dispatched: f64,
    batch_id: usize,
}

impl Batch<'_> {
    /// The oldest still-running query's arrival — the batch's priority
    /// key in the dispatch loop.
    fn head_arrival(&self) -> f64 {
        let active = self.runner.active_lanes();
        self.queries
            .iter()
            .enumerate()
            .filter(|(k, _)| active & (1u64 << k) != 0)
            .map(|(_, q)| q.arrival)
            .fold(f64::INFINITY, f64::min)
    }
}

/// The standalone (K = 1) digest of one query — what a batch lane must
/// reproduce bit-for-bit.
pub fn standalone_digest(
    engine: &GraphGrind2,
    kind: QueryKind,
    source: VertexId,
    ppr: &PprParams,
) -> u64 {
    match kind {
        QueryKind::BfsDist => {
            let res = gg_algorithms::fused_bfs(engine, &[source]);
            digest_u32s(&res.dist[0])
        }
        QueryKind::Reach => {
            let masks = gg_algorithms::fused_reachability(engine, &[source]);
            digest_reach(&masks, 0)
        }
        QueryKind::Ppr => {
            let res =
                gg_algorithms::fused_ppr(engine, &[source], ppr.alpha, ppr.eps, ppr.max_rounds);
            digest_f64s(&res.p[0])
        }
    }
}

/// Serves `trace` (must be arrival-sorted) on `engine` under `cfg`.
///
/// Single-server discipline: the engine runs one batch dispatch at a
/// time (parallelism lives *inside* the fused rounds, on the persistent
/// crew), and the clock interleaves simulated open-loop arrivals with
/// per-round service costs from the [`CostModel`]. Resets and then
/// populates the engine's [`WorkCounters`] serving counters (batches,
/// lane occupancy, rounds, early retirements).
///
/// [`WorkCounters`]: gg_runtime::counters::WorkCounters
pub fn serve(engine: &GraphGrind2, trace: &[Query], cfg: &ServeConfig) -> ServeOutcome {
    assert!(
        (1..=64).contains(&cfg.policy.max_lanes),
        "max_lanes must be 1..=64"
    );
    debug_assert!(
        trace.windows(2).all(|w| w[0].arrival <= w[1].arrival),
        "trace must be arrival-sorted"
    );
    let counters = engine.work_counters();
    counters.reset();

    let mut queues: Vec<VecDeque<Query>> = QueryKind::ALL.iter().map(|_| VecDeque::new()).collect();
    let queue_of = |kind: QueryKind| QueryKind::ALL.iter().position(|&k| k == kind).unwrap();
    let mut continuations: Vec<Batch<'_>> = Vec::new();
    let mut completions: Vec<QueryCompletion> = Vec::new();
    let mut clock = 0.0f64;
    let mut next_arrival = 0usize;
    let mut next_batch_id = 0usize;

    while completions.len() < trace.len() {
        // Admit everything that has arrived by now.
        while next_arrival < trace.len() && trace[next_arrival].arrival <= clock {
            let q = trace[next_arrival];
            queues[queue_of(q.kind)].push_back(q);
            next_arrival += 1;
        }
        let draining = next_arrival == trace.len();

        // Pick the ripe candidate with the oldest head. Continuations are
        // always ripe (their queries already waited a full admission
        // cycle); a queue is ripe on age, on a full batch, or once the
        // trace has drained.
        let cont_pick = continuations
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| a.head_arrival().total_cmp(&b.head_arrival()))
            .map(|(i, b)| (i, b.head_arrival()));
        let queue_pick = queues
            .iter()
            .enumerate()
            .filter_map(|(qi, q)| {
                let head = q.front()?;
                // NB: same expression as the idle-branch `expiry` below —
                // `clock - arrival >= age` can round the other way and
                // livelock the idle jump.
                let ripe = clock >= head.arrival + cfg.policy.max_batch_age
                    || q.len() >= cfg.policy.max_lanes
                    || draining;
                ripe.then_some((qi, head.arrival))
            })
            .min_by(|(_, a), (_, b)| a.total_cmp(b));

        let mut batch = match (cont_pick, queue_pick) {
            (Some((ci, ca)), Some((_, qa))) if ca <= qa => continuations.swap_remove(ci),
            (Some((ci, _)), None) => continuations.swap_remove(ci),
            (_, Some((qi, _))) => {
                let queue = &mut queues[qi];
                let take = queue.len().min(cfg.policy.max_lanes);
                let queries: Vec<Query> = queue.drain(..take).collect();
                let sources: Vec<VertexId> = queries.iter().map(|q| q.source).collect();
                let runner = match QueryKind::ALL[qi] {
                    QueryKind::BfsDist => Runner::Bfs(FusedBfsRun::new(engine, &sources)),
                    QueryKind::Reach => Runner::Reach(FusedBfsRun::reach_only(engine, &sources)),
                    QueryKind::Ppr => Runner::Ppr(FusedPprRun::new(
                        engine,
                        &sources,
                        cfg.ppr.alpha,
                        cfg.ppr.eps,
                        cfg.ppr.max_rounds,
                    )),
                };
                let lanes = queries.len();
                let b = Batch {
                    runner,
                    queries,
                    done_at: vec![0.0; lanes],
                    done_round: vec![0; lanes],
                    dispatched: clock,
                    batch_id: next_batch_id,
                };
                next_batch_id += 1;
                b
            }
            (None, None) => {
                // Nothing ripe: jump to the next arrival or the earliest
                // age expiry, whichever comes first.
                let next_t = if next_arrival < trace.len() {
                    trace[next_arrival].arrival
                } else {
                    f64::INFINITY
                };
                let expiry = queues
                    .iter()
                    .filter_map(|q| q.front())
                    .map(|h| h.arrival + cfg.policy.max_batch_age)
                    .fold(f64::INFINITY, f64::min);
                clock = next_t.min(expiry).max(clock);
                debug_assert!(clock.is_finite(), "idle with nothing pending");
                continue;
            }
        };

        // Run one dispatch slice: up to round_cap rounds, or to
        // quiescence.
        let occupancy = batch.runner.active_lanes().count_ones() as u64;
        let cap = cfg.policy.round_cap.unwrap_or(usize::MAX).max(1);
        let mut slice_rounds = 0u64;
        let done = loop {
            let newly = match cfg.cost {
                CostModel::Measured => {
                    let t = Instant::now();
                    let newly = batch.runner.step();
                    clock += t.elapsed().as_secs_f64();
                    newly
                }
                CostModel::Virtual {
                    round_base,
                    per_edge,
                } => {
                    let e0 = counters.edges();
                    let newly = batch.runner.step();
                    clock += round_base + per_edge * (counters.edges() - e0) as f64;
                    newly
                }
            };
            slice_rounds += 1;
            let round = batch.runner.rounds() as u32;
            let mut m = newly;
            while m != 0 {
                let k = m.trailing_zeros() as usize;
                m &= m - 1;
                batch.done_at[k] = clock;
                batch.done_round[k] = round;
            }
            if batch.runner.is_done() {
                break true;
            }
            if slice_rounds as usize >= cap {
                break false;
            }
        };
        counters.add_batch(occupancy, slice_rounds);

        if done {
            let final_round = batch.runner.rounds() as u32;
            let early = batch
                .done_round
                .iter()
                .filter(|&&r| r < final_round)
                .count() as u64;
            counters.add_lanes_retired_early(early);
            for (k, q) in batch.queries.iter().enumerate() {
                completions.push(QueryCompletion {
                    id: q.id,
                    kind: q.kind,
                    source: q.source,
                    arrival: q.arrival,
                    dispatched: batch.dispatched,
                    completed: batch.done_at[k],
                    retire_round: batch.done_round[k],
                    batch: batch.batch_id,
                    digest: batch.runner.digest(k as u32),
                });
            }
        } else {
            continuations.push(batch);
        }
    }

    completions.sort_by_key(|c| c.id);
    let mut outcome = ServeOutcome {
        makespan: clock,
        batches: counters.batches(),
        mean_lane_occupancy: counters.mean_lane_occupancy(),
        batch_rounds: counters.batch_rounds(),
        lanes_retired_early: counters.lanes_retired_early(),
        oracle_failures: 0,
        completions,
    };

    if cfg.check_oracle {
        // Every distinct (kind, source) standalone, once — the serving
        // stats above are already captured, so the extra traversals only
        // pollute the raw visit counters.
        let mut expected: std::collections::HashMap<(QueryKind, VertexId), u64> =
            std::collections::HashMap::new();
        for c in &outcome.completions {
            let key = (c.kind, c.source);
            let want = *expected
                .entry(key)
                .or_insert_with(|| standalone_digest(engine, c.kind, c.source, &cfg.ppr));
            if want != c.digest {
                outcome.oracle_failures += 1;
            }
        }
    }
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use gg_core::config::Config;
    use gg_graph::generators;

    fn engine() -> GraphGrind2 {
        let el = generators::rmat(8, 2200, generators::RmatParams::skewed(), 11);
        GraphGrind2::new(&el, Config::partitioned_for_tests())
    }

    #[test]
    fn splitmix_is_deterministic_and_unit_draws_are_in_range() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
            let u = a.next_unit();
            assert!(u > 0.0 && u <= 1.0, "unit draw {u}");
            b.next_unit();
        }
        assert_ne!(SplitMix64::new(1).next_u64(), SplitMix64::new(2).next_u64());
    }

    #[test]
    fn arrival_traces_are_deterministic_sorted_and_rate_scaled() {
        let t1 = arrival_trace(200, 1000, 50.0, 7, &QueryKind::ALL);
        let t2 = arrival_trace(200, 1000, 50.0, 7, &QueryKind::ALL);
        assert_eq!(t1.len(), 200);
        for (a, b) in t1.iter().zip(&t2) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.kind, b.kind);
            assert_eq!(a.source, b.source);
            assert_eq!(a.arrival.to_bits(), b.arrival.to_bits());
        }
        assert!(t1.windows(2).all(|w| w[0].arrival <= w[1].arrival));
        assert!(t1.iter().all(|q| (q.source as usize) < 1000));
        // Double the rate ⇒ roughly half the span (same exponential draws).
        let fast = arrival_trace(200, 1000, 100.0, 7, &QueryKind::ALL);
        let ratio = t1.last().unwrap().arrival / fast.last().unwrap().arrival;
        assert!((ratio - 2.0).abs() < 1e-9, "rate scaling ratio {ratio}");
    }

    #[test]
    fn percentiles_use_nearest_rank() {
        let mut o = ServeOutcome::default();
        for (i, lat) in [0.1, 0.2, 0.3, 0.4].iter().enumerate() {
            o.completions.push(QueryCompletion {
                id: i,
                kind: QueryKind::BfsDist,
                source: 0,
                arrival: 0.0,
                dispatched: 0.0,
                completed: *lat,
                retire_round: 1,
                batch: 0,
                digest: 0,
            });
        }
        assert_eq!(o.latency_percentile(50.0), 0.2);
        assert_eq!(o.latency_percentile(99.0), 0.4);
        assert_eq!(o.latency_percentile(0.0), 0.1);
    }

    /// The acceptance-criterion invariant: fused batches (with early
    /// retirement), capped-round continuations, and the one-per-query
    /// baseline all produce bit-identical per-query results — and they
    /// match the standalone oracle.
    #[test]
    fn fused_capped_and_baseline_serving_agree_query_for_query() {
        let engine = engine();
        let trace = arrival_trace(40, engine.num_vertices(), 500.0, 3, &QueryKind::ALL);
        let cost = CostModel::Virtual {
            round_base: 1e-4,
            per_edge: 1e-7,
        };
        let ppr = PprParams::default();
        let fused = serve(
            &engine,
            &trace,
            &ServeConfig {
                policy: AdmissionPolicy {
                    max_lanes: 64,
                    max_batch_age: 0.02,
                    round_cap: None,
                },
                cost,
                ppr,
                check_oracle: true,
            },
        );
        assert_eq!(fused.oracle_failures, 0);
        assert_eq!(fused.completions.len(), trace.len());
        assert!(fused.batches > 0);
        assert!(fused.mean_lane_occupancy >= 1.0);

        let capped = serve(
            &engine,
            &trace,
            &ServeConfig {
                policy: AdmissionPolicy {
                    max_lanes: 64,
                    max_batch_age: 0.02,
                    round_cap: Some(2),
                },
                cost,
                ppr,
                check_oracle: false,
            },
        );
        let baseline = serve(
            &engine,
            &trace,
            &ServeConfig {
                policy: AdmissionPolicy::baseline(),
                cost,
                ppr,
                check_oracle: false,
            },
        );
        for ((f, c), b) in fused
            .completions
            .iter()
            .zip(&capped.completions)
            .zip(&baseline.completions)
        {
            assert_eq!(f.id, c.id);
            assert_eq!(f.digest, c.digest, "round cap changed query {}", f.id);
            assert_eq!(f.digest, b.digest, "batching changed query {}", f.id);
        }
        // The capped run sliced at least one batch into continuations.
        assert!(capped.batches >= fused.batches);
        // Baseline batches are all single-lane.
        assert!((baseline.mean_lane_occupancy - 1.0).abs() < 1e-12);
    }

    /// Batches mixing duplicate sources must serve each duplicate the
    /// same (and correct) result.
    #[test]
    fn duplicate_sources_in_one_batch_serve_identical_results() {
        let engine = engine();
        // Hand-build a burst: six queries, three of them the same source,
        // all arriving at once so they land in one batch per kind.
        let mk = |id, kind, source| Query {
            id,
            kind,
            source,
            arrival: 0.0,
        };
        let trace = vec![
            mk(0, QueryKind::BfsDist, 5),
            mk(1, QueryKind::BfsDist, 5),
            mk(2, QueryKind::BfsDist, 9),
            mk(3, QueryKind::Ppr, 7),
            mk(4, QueryKind::Ppr, 7),
            mk(5, QueryKind::Reach, 5),
        ];
        let out = serve(
            &engine,
            &trace,
            &ServeConfig {
                policy: AdmissionPolicy::fused(0.0),
                cost: CostModel::Virtual {
                    round_base: 1e-4,
                    per_edge: 1e-7,
                },
                ppr: PprParams::default(),
                check_oracle: true,
            },
        );
        assert_eq!(out.oracle_failures, 0);
        assert_eq!(out.completions[0].digest, out.completions[1].digest);
        assert_eq!(out.completions[3].digest, out.completions[4].digest);
        assert_ne!(out.completions[0].digest, out.completions[2].digest);
    }

    /// Virtual-time serving is deterministic: two runs produce
    /// bit-identical clocks and digests (the CI smoke leg additionally
    /// diffs across thread counts).
    #[test]
    fn virtual_time_serving_is_bit_deterministic() {
        let engine = engine();
        let trace = arrival_trace(30, engine.num_vertices(), 300.0, 9, &QueryKind::ALL);
        let cfg = ServeConfig {
            policy: AdmissionPolicy {
                max_lanes: 16,
                max_batch_age: 0.01,
                round_cap: Some(3),
            },
            cost: CostModel::Virtual {
                round_base: 1e-4,
                per_edge: 1e-7,
            },
            ppr: PprParams::default(),
            check_oracle: false,
        };
        let a = serve(&engine, &trace, &cfg);
        let b = serve(&engine, &trace, &cfg);
        assert_eq!(a.completions.len(), b.completions.len());
        for (x, y) in a.completions.iter().zip(&b.completions) {
            assert_eq!(x.completed.to_bits(), y.completed.to_bits());
            assert_eq!(x.digest, y.digest);
            assert_eq!(x.retire_round, y.retire_round);
            assert_eq!(x.batch, y.batch);
        }
        assert_eq!(a.makespan.to_bits(), b.makespan.to_bits());
    }
}
