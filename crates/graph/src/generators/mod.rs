//! Synthetic graph generators.
//!
//! The paper evaluates on real social networks (Twitter, Friendster, Orkut,
//! LiveJournal), a web-crawl-derived graph (Yahoo_mem), a road network
//! (USAroad) and two synthetics (Powerlaw α=2.0, RMAT27). The real data
//! sets are not redistributable, so this reproduction generates stand-ins
//! whose *shape* matches: degree skew (RMAT / Chung–Lu), uniform density
//! (Erdős–Rényi) and high-diameter low-degree lattices (road grids). All
//! generators are deterministic given their seed.

mod chung_lu;
mod deterministic;
mod erdos_renyi;
mod grid;
mod rmat;
mod small_world;

pub use chung_lu::chung_lu;
pub use deterministic::{binary_tree, complete, cycle, path, star};
pub use erdos_renyi::erdos_renyi;
pub use grid::grid_road;
pub use rmat::{rmat, RmatParams};
pub use small_world::small_world;
