//! # gg-bench — the experiment harness
//!
//! Regenerates every table and figure of the paper's evaluation (§IV).
//! The `repro` binary prints paper-style rows:
//!
//! ```text
//! cargo run --release -p gg-bench --bin repro -- all
//! cargo run --release -p gg-bench --bin repro -- fig5 --scale 0.5
//! ```
//!
//! Criterion micro-benchmarks (`cargo bench -p gg-bench`) cover the same
//! experiments at reduced scale for regression tracking.
//!
//! Graph sizes default to laptop-scale stand-ins (DESIGN.md §2); `--scale`
//! multiplies them. Timings are wall-clock medians over `--reps` runs.

pub mod datasets;
pub mod runner;

use std::time::Instant;

/// Times `f` once, returning seconds.
pub fn time_once<F: FnOnce()>(f: F) -> f64 {
    let start = Instant::now();
    f();
    start.elapsed().as_secs_f64()
}

/// Runs `f` `reps` times and returns the median duration in seconds.
/// (The paper reports averages over 20 executions; the median is more
/// robust at the small rep counts used here.)
pub fn time_median<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    assert!(reps > 0);
    let mut samples: Vec<f64> = (0..reps).map(|_| time_once(&mut f)).collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

/// A minimal fixed-width table printer for paper-style output.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header count).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "column count mismatch");
        self.rows.push(cells);
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for i in 0..cols {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:<width$}", cells[i], width = widths[i]));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Prints the table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Formats seconds with 4 significant digits.
pub fn fmt_secs(s: f64) -> String {
    format!("{s:.4}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_of_odd_reps() {
        let mut calls = 0;
        let t = time_median(3, || {
            calls += 1;
        });
        assert_eq!(calls, 3);
        assert!(t >= 0.0);
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["name", "value"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["long-name".into(), "2.5".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[2].starts_with("a"));
        assert!(lines[3].starts_with("long-name"));
    }

    #[test]
    #[should_panic(expected = "column count mismatch")]
    fn table_rejects_ragged_rows() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["only-one".into()]);
    }
}
