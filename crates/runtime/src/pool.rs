//! Persistent fork-join thread pool with an explicit thread count, plus the
//! deque-based work-stealing scheduler behind chunk-granular execution.
//!
//! The paper's Figure 10 sweeps 4–48 threads; engines therefore carry their
//! own [`Pool`] instead of a process-global pool, so benchmark code can
//! instantiate differently sized pools side by side.
//!
//! # Worker lifecycle: spawn once, park, epoch, join
//!
//! Workers are spawned **once**, lazily on the first parallel call that
//! needs them, and then persist for the pool's lifetime:
//!
//! ```text
//!  Pool::new(T)            first parallel call         Drop
//!     │                          │                       │
//!     │   (no threads yet)       ▼                       ▼
//!     │                   spawn T workers ──▶ park on condvar
//!     │                          │         ◀── epoch: publish job,
//!     │                          │             wake all, run, arrive
//!     │                          │             at completion latch,
//!     │                          │             park again
//!     │                          └───────────▶ shutdown flag + wake:
//!     │                                        workers exit, Drop joins
//! ```
//!
//! Every parallel operation is one **epoch**: the caller publishes a job
//! under the state mutex, bumps the epoch counter, wakes the parked
//! workers, and blocks on a completion latch until all of them have run
//! the job and arrived. Per-round cost is therefore a wake + a join, not
//! `T` thread spawns — the difference shows at high round rates, where
//! traversals run hundreds of tiny edge maps back to back.
//! [`Pool::spawns`] counts worker threads ever spawned and
//! [`Pool::epochs`] counts dispatches, so tests (and `repro load_balance`)
//! can observe that a thousand rounds reuse the same `T` threads.
//!
//! Two execution styles share the crew:
//!
//! * the structured loops (`for_each_index`, `map_indices`, …) hand
//!   workers contiguous index blocks claimed from a shared atomic cursor
//!   (one `fetch_add` per block) — right for homogeneous work, and robust
//!   to a worker being descheduled mid-epoch, which under a fixed
//!   per-worker split would strand that worker's whole range behind the
//!   completion latch;
//! * [`run_stealing`](Pool::run_stealing) schedules a *heterogeneous* task
//!   list (the partitioned executor's edge-balanced chunks) over per-worker
//!   deques with NUMA-domain-affine stealing: tasks are seeded onto a
//!   worker of their owning domain, idle workers first raid deques of their
//!   own domain and only then cross domains. Results are returned **keyed
//!   by task index**, so callers merge deterministically no matter which
//!   worker ran what.
//!
//! The pool is not reentrant: a job closure must not invoke parallel
//! operations on the pool that is running it (the workers it would need
//! are the ones executing it). Concurrent dispatches from *different*
//! threads serialize on an internal lock.

use std::collections::VecDeque;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock, PoisonError};

/// One worker's contribution to a [`Pool::run_stealing`] call: the
/// `(task index, result)` pairs it produced plus its local tally.
type WorkerResults<R> = Mutex<(Vec<(usize, R)>, StealTally)>;

/// Raw pointer into [`Pool::map_indices`]'s pre-sized result vector,
/// shared across workers. Sound because the cursor-claimed blocks
/// partition the index space: no slot is ever written by two workers.
struct RawSlots<R>(*mut std::mem::MaybeUninit<R>);

// SAFETY: workers only `write` disjoint slots (see `Pool::map_indices`),
// so sharing the base pointer across threads cannot race.
unsafe impl<R: Send> Sync for RawSlots<R> {}

impl<R> RawSlots<R> {
    /// Writes slot `i`.
    ///
    /// # Safety
    /// `i` must be in bounds and written by exactly one thread per epoch.
    unsafe fn write(&self, i: usize, v: R) {
        (*self.0.add(i)).write(v);
    }
}

/// Most tasks one claim from the worker's *own* deque transfers into its
/// private run buffer. Claimed tasks are no longer stealable, so the batch
/// size bounds how much work a slow worker can hold back from rebalancing
/// (`CLAIM_BATCH × cap` edges). Steals are *not* capped by this: a thief
/// takes half the victim's remaining deque in one lock, because on a crew
/// timesharing fewer cores than workers the victim is usually descheduled
/// and the thief would otherwise come straight back, paying a lock trip
/// per `CLAIM_BATCH` tasks and fragmenting the victim's contiguous run.
/// Batching matters most on such crews, where every contended deque
/// handoff costs a scheduler trip.
const CLAIM_BATCH: usize = 4;

/// Average atomic-cursor claims per worker in the structured loops
/// ([`Pool::for_each_index`] / [`Pool::map_indices`]): the claim grain is
/// `count / (threads × CLAIM_OVERSUBSCRIPTION)`, so a straggler strands at
/// most `1 / (threads × 4)` of the loop instead of its whole fixed share,
/// at a cost of ~4 `fetch_add`s per worker per epoch.
const CLAIM_OVERSUBSCRIPTION: usize = 4;

/// What one [`Pool::run_stealing`] call observed: how many tasks executed
/// and how work migrated between workers. Steal counts are *diagnostics* —
/// they depend on timing — while the returned results never do. The
/// invariant `executed == task count` holds on return of every epoch (the
/// unclaimed-task latch guarantees each task is claimed exactly once).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StealTally {
    /// Tasks executed (always the full task count on return).
    pub executed: u64,
    /// Tasks a worker claimed from another worker's deque.
    pub steals: u64,
    /// Steals in which the thief and victim workers sit in different
    /// *physical host* NUMA domains (probed from
    /// `/sys/devices/system/node`). The simulated topology steers seeding
    /// and victim order, but locality diagnostics describe the machine the
    /// epoch actually ran on — on a single-domain host no steal crosses a
    /// domain, however many domains are simulated.
    pub cross_domain_steals: u64,
}

/// The per-epoch job workers execute: a borrowed closure transmuted to
/// `'static`. Safety rests on the dispatch protocol — `dispatch` does not
/// return until every worker has arrived at the completion latch, so the
/// borrow outlives every use.
type ErasedJob = &'static (dyn Fn(usize) + Sync);

/// Shared state between the dispatcher and the parked workers.
struct CrewShared {
    state: Mutex<EpochState>,
    /// Workers park here between epochs.
    work_cv: Condvar,
    /// The dispatcher parks here until the completion latch drains.
    done_cv: Condvar,
}

struct EpochState {
    /// Monotonic epoch counter; a worker runs each epoch at most once.
    epoch: u64,
    /// The published job of the current epoch (`None` between epochs).
    job: Option<ErasedJob>,
    /// Completion latch: slots yet to finish the current epoch.
    remaining: usize,
    /// Width hint: how many workers this epoch needs. A narrow epoch
    /// (`width < threads`) wakes only `width` parked workers; a crew
    /// worker that finds all slots claimed re-parks without running.
    width: usize,
    /// Slots claimed so far this epoch; the claimant's job argument.
    claims: usize,
    /// The first panic payload a worker's job raised this epoch;
    /// re-raised verbatim by the dispatcher (as joining a scoped thread
    /// would), so assertion messages and locations survive the crew.
    panic_payload: Option<Box<dyn std::any::Any + Send>>,
    /// Set once, by `Drop`: workers exit instead of waiting for work.
    shutdown: bool,
}

/// The persistent worker crew: spawned once, joined on pool drop.
struct Crew {
    shared: Arc<CrewShared>,
    handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

/// Locks `m`, tolerating poison. Every mutex in this module guards
/// plain-old-data whose invariants the epoch protocol re-establishes on
/// each dispatch, so a panic that poisoned a lock (e.g. the job
/// `expect` below, or an assertion raised while a guard was held) must
/// not cascade: an `unwrap()` here would panic again in the next worker,
/// in `dispatch`, or — fatally — inside `Drop`, turning one caught job
/// panic into an abort.
fn lock_pod<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

fn worker_loop(shared: &CrewShared) {
    let mut seen = 0u64;
    loop {
        let claimed = {
            let mut st = lock_pod(&shared.state);
            loop {
                if st.shutdown {
                    return;
                }
                if st.epoch > seen {
                    seen = st.epoch;
                    if st.claims < st.width {
                        let slot = st.claims;
                        st.claims += 1;
                        break Some((slot, st.job.expect("epoch published without a job")));
                    }
                    // Narrow epoch, all slots taken: re-park without
                    // running (a spurious or surplus wake-up).
                    break None;
                }
                st = shared
                    .work_cv
                    .wait(st)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };
        let Some((slot, job)) = claimed else { continue };
        let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| job(slot)));
        let mut st = lock_pod(&shared.state);
        if let Err(payload) = outcome {
            st.panic_payload.get_or_insert(payload);
        }
        st.remaining -= 1;
        if st.remaining == 0 {
            shared.done_cv.notify_all();
        }
    }
}

/// A fixed-width work-stealing pool with persistent workers.
pub struct Pool {
    threads: usize,
    /// Physical NUMA domains of the host this pool runs on (probed from
    /// `/sys/devices/system/node`, 1 when unreadable). Used only to
    /// attribute cross-domain steals to the real machine topology.
    host_domains: usize,
    /// Closure invocations executed through the structured loops below;
    /// lets tests assert that work was (or was not) submitted to the pool.
    jobs: AtomicU64,
    /// The worker crew, spawned lazily on the first multi-threaded call.
    crew: OnceLock<Crew>,
    /// Serializes dispatches from different caller threads.
    dispatch_lock: Mutex<()>,
    /// Worker threads ever spawned by this pool (0 until the first
    /// multi-threaded parallel call, then exactly `threads` forever).
    spawns: AtomicU64,
    /// Parallel operations dispatched to the crew so far.
    epochs: AtomicU64,
    /// Worker wake-ups requested across all epochs: `width` per narrow
    /// epoch, `threads` per full-width epoch.
    wakes: AtomicU64,
}

/// Counts `/sys/devices/system/node/node<N>` entries; 1 when the sysfs
/// tree is absent (non-Linux, containers with masked sysfs).
fn probe_host_domains() -> usize {
    static PROBED: OnceLock<usize> = OnceLock::new();
    *PROBED.get_or_init(|| {
        std::fs::read_dir("/sys/devices/system/node")
            .map(|entries| {
                entries
                    .filter_map(|e| e.ok())
                    .filter(|e| {
                        e.file_name().to_str().is_some_and(|n| {
                            n.strip_prefix("node").is_some_and(|s| {
                                !s.is_empty() && s.bytes().all(|b| b.is_ascii_digit())
                            })
                        })
                    })
                    .count()
            })
            .unwrap_or(0)
            .max(1)
    })
}

impl std::fmt::Debug for Pool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pool")
            .field("threads", &self.threads)
            .field("spawns", &self.spawns())
            .field("epochs", &self.epochs())
            .finish()
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        // Poison-tolerant: dropping a pool after a caught worker panic
        // must shut the crew down, not panic-in-drop and abort.
        if let Some(crew) = self.crew.get() {
            {
                let mut st = lock_pod(&crew.shared.state);
                st.shutdown = true;
                crew.shared.work_cv.notify_all();
            }
            for h in lock_pod(&crew.handles).drain(..) {
                let _ = h.join();
            }
        }
    }
}

impl Pool {
    /// Creates a pool with exactly `threads` worker threads. The workers
    /// are spawned lazily, on the first parallel call that needs them.
    ///
    /// # Panics
    /// Panics if `threads == 0`.
    pub fn new(threads: usize) -> Self {
        Self::with_host_domains(threads, probe_host_domains())
    }

    /// Like [`new`](Self::new) but with an explicit physical-domain count
    /// instead of the sysfs probe. Lets tests and benchmarks pin the
    /// steal-attribution topology regardless of the machine they run on.
    ///
    /// # Panics
    /// Panics if `threads == 0`.
    pub fn with_host_domains(threads: usize, host_domains: usize) -> Self {
        assert!(threads > 0, "pool needs at least one thread");
        Pool {
            threads,
            host_domains: host_domains.max(1),
            jobs: AtomicU64::new(0),
            crew: OnceLock::new(),
            dispatch_lock: Mutex::new(()),
            spawns: AtomicU64::new(0),
            epochs: AtomicU64::new(0),
            wakes: AtomicU64::new(0),
        }
    }

    /// A pool sized to the machine.
    pub fn machine_sized() -> Self {
        Self::new(
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        )
    }

    /// Number of worker threads.
    #[inline]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Worker threads spawned by this pool so far: 0 until the first
    /// multi-threaded parallel call, then exactly [`threads`](Self::threads)
    /// for the rest of the pool's life — the observable proof that epochs
    /// reuse parked workers instead of re-spawning.
    #[inline]
    pub fn spawns(&self) -> u64 {
        self.spawns.load(Ordering::Relaxed)
    }

    /// Parallel operations dispatched to the worker crew so far (inline
    /// single-threaded fast paths are not epochs).
    #[inline]
    pub fn epochs(&self) -> u64 {
        self.epochs.load(Ordering::Relaxed)
    }

    /// Worker wake-ups requested across all epochs. A full-width epoch
    /// wakes the whole crew (`threads`); an epoch whose width hint is
    /// smaller wakes only that many workers — the observable proof that
    /// narrow task lists no longer stampede the whole crew.
    #[inline]
    pub fn wakes(&self) -> u64 {
        self.wakes.load(Ordering::Relaxed)
    }

    /// Total closure invocations executed through the structured loops
    /// (`for_each_index`, `for_each_in_order`, `map_indices`,
    /// `for_each_chunk`) and [`run_stealing`](Self::run_stealing) tasks.
    /// Monotonic; used by tests to prove that empty partitions are skipped
    /// without submitting pool work.
    #[inline]
    pub fn jobs_run(&self) -> u64 {
        self.jobs.load(Ordering::Relaxed)
    }

    /// Credits `n` closure invocations to the `jobs_run` counter with one
    /// `fetch_add` — the structured loops call this once per worker block
    /// instead of once per index, keeping the counter off the hot path
    /// (`run_stealing` batches the same way via `StealTally::executed`).
    #[inline]
    fn count_jobs(&self, n: usize) {
        self.jobs.fetch_add(n as u64, Ordering::Relaxed);
    }

    /// The crew, spawning it on first use.
    fn crew(&self) -> &Crew {
        self.crew.get_or_init(|| {
            let shared = Arc::new(CrewShared {
                state: Mutex::new(EpochState {
                    epoch: 0,
                    job: None,
                    remaining: 0,
                    width: 0,
                    claims: 0,
                    panic_payload: None,
                    shutdown: false,
                }),
                work_cv: Condvar::new(),
                done_cv: Condvar::new(),
            });
            let handles = (0..self.threads)
                .map(|w| {
                    let shared = Arc::clone(&shared);
                    std::thread::Builder::new()
                        .name(format!("gg-worker-{w}"))
                        .spawn(move || worker_loop(&shared))
                        .expect("failed to spawn pool worker")
                })
                .collect();
            self.spawns
                .fetch_add(self.threads as u64, Ordering::Relaxed);
            Crew {
                shared,
                handles: Mutex::new(handles),
            }
        })
    }

    /// Runs one epoch: publishes `job`, wakes `width` parked workers, and
    /// blocks until `width` slots have run it and arrived at the
    /// completion latch. Each slot index `0..width` is claimed by exactly
    /// one worker and invoked exactly once; a narrow epoch
    /// (`width < threads`) leaves the surplus workers parked. Lost
    /// wake-ups cannot wedge the latch: a worker that is between epochs
    /// (not yet parked) re-checks the epoch counter under the lock before
    /// waiting, so it claims a slot on its own even if its notification
    /// raced past it.
    fn dispatch(&self, width: usize, job: &(dyn Fn(usize) + Sync)) {
        debug_assert!(width >= 1 && width <= self.threads);
        // Poison-tolerant: a panicked previous epoch (re-raised below while
        // this lock was held) must not wedge every later dispatch.
        let _serial = self
            .dispatch_lock
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        let crew = self.crew();
        self.epochs.fetch_add(1, Ordering::Relaxed);
        // SAFETY: the borrow is erased to 'static only while this frame is
        // alive — we do not return until `remaining` drains to zero, i.e.
        // until every claimed slot has finished calling `job`, and the job
        // slot is cleared before the latch opens the next epoch.
        let erased: ErasedJob = unsafe {
            std::mem::transmute::<&(dyn Fn(usize) + Sync), &'static (dyn Fn(usize) + Sync)>(job)
        };
        let mut st = lock_pod(&crew.shared.state);
        debug_assert_eq!(st.remaining, 0, "previous epoch still in flight");
        st.job = Some(erased);
        st.remaining = width;
        st.width = width;
        st.claims = 0;
        st.epoch += 1;
        if width < self.threads {
            self.wakes.fetch_add(width as u64, Ordering::Relaxed);
            for _ in 0..width {
                crew.shared.work_cv.notify_one();
            }
        } else {
            self.wakes.fetch_add(self.threads as u64, Ordering::Relaxed);
            crew.shared.work_cv.notify_all();
        }
        while st.remaining > 0 {
            st = crew
                .shared
                .done_cv
                .wait(st)
                .unwrap_or_else(PoisonError::into_inner);
        }
        st.job = None;
        if let Some(payload) = st.panic_payload.take() {
            drop(st);
            std::panic::resume_unwind(payload);
        }
    }

    /// The contiguous block of `0..len` worker `w` owns in a block-wise
    /// loop.
    #[inline]
    fn block(&self, len: usize, w: usize) -> std::ops::Range<usize> {
        len * w / self.threads..len * (w + 1) / self.threads
    }

    /// The block size workers claim per `fetch_add` in a cursor-claimed
    /// loop: `CLAIM_OVERSUBSCRIPTION` claims per worker on average, so a
    /// straggler strands at most one block instead of a whole fixed
    /// per-worker split, while short loops still claim in one or two
    /// `fetch_add`s per worker.
    #[inline]
    fn claim_grain(&self, count: usize) -> usize {
        (count / (self.threads * CLAIM_OVERSUBSCRIPTION)).max(1)
    }

    /// Parallel loop over `0..count` with one call per index. Used for
    /// per-partition execution: the closure for partition `p` runs on
    /// exactly one worker, giving the exclusive-update guarantee.
    ///
    /// Indices are claimed from a shared atomic cursor in blocks of
    /// [`claim_grain`](Self::claim_grain) indices (one `fetch_add` per
    /// block), not pre-split per worker: a worker descheduled by the host
    /// OS strands at most one unclaimed block, so stragglers on a
    /// timesharing crew no longer serialise the epoch tail. Each worker's
    /// claimed indices are strictly ascending (the cursor is monotonic and
    /// blocks run front-to-back).
    pub fn for_each_index(&self, count: usize, f: impl Fn(usize) + Sync) {
        if count == 0 {
            return;
        }
        if self.threads == 1 || count == 1 {
            self.count_jobs(count);
            for i in 0..count {
                f(i);
            }
            return;
        }
        let grain = self.claim_grain(count);
        let cursor = AtomicUsize::new(0);
        self.dispatch(self.threads, &|_w| loop {
            let lo = cursor.fetch_add(grain, Ordering::Relaxed);
            if lo >= count {
                break;
            }
            let hi = (lo + grain).min(count);
            self.count_jobs(hi - lo);
            for i in lo..hi {
                f(i);
            }
        });
    }

    /// Parallel loop over the entries of `order`: every `order[k]` runs
    /// exactly once, and adjacent positions land in the same
    /// cursor-claimed contiguous block (hence usually on the same worker).
    /// Position is *not* an execution priority: blocks run concurrently,
    /// so a late position in one block can execute before an early
    /// position in another. What is guaranteed — and pinned by
    /// `in_order_runs_each_entry_once_ascending_per_worker` — is that
    /// each entry runs exactly once and every worker executes the
    /// positions it claims in ascending order. Used to schedule
    /// partitions grouped by NUMA domain: a domain's partitions occupy
    /// adjacent positions, so they tend to land in one worker's block.
    pub fn for_each_in_order(&self, order: &[usize], f: impl Fn(usize) + Sync) {
        self.for_each_index(order.len(), |k| f(order[k]));
    }

    /// Parallel map over `0..count` collecting results in index order.
    ///
    /// Also the typed-output fan-out primitive of the partitioned
    /// executor: partition tasks *return* their per-partition buffers
    /// (sparse vertex lists or dense bitmap segments) in submission order
    /// instead of writing a shared bitmap, and the caller merges them
    /// deterministically.
    pub fn map_indices<R: Send>(&self, count: usize, f: impl Fn(usize) -> R + Sync) -> Vec<R> {
        if count == 0 {
            return Vec::new();
        }
        if self.threads == 1 || count == 1 {
            self.count_jobs(count);
            return (0..count).map(&f).collect();
        }
        // Workers claim contiguous ascending blocks of *disjoint* slots in
        // one pre-sized output vector: no per-worker buffers, no mutex
        // handoff, no post-epoch append pass — the filled vector already
        // is the result in index order.
        let mut results: Vec<std::mem::MaybeUninit<R>> = Vec::with_capacity(count);
        // SAFETY: uninitialised is a valid state for `MaybeUninit` slots.
        unsafe { results.set_len(count) };
        let slots = RawSlots(results.as_mut_ptr());
        let grain = self.claim_grain(count);
        let cursor = AtomicUsize::new(0);
        self.dispatch(self.threads, &|_w| loop {
            let lo = cursor.fetch_add(grain, Ordering::Relaxed);
            if lo >= count {
                break;
            }
            let hi = (lo + grain).min(count);
            self.count_jobs(hi - lo);
            for i in lo..hi {
                let v = f(i);
                // SAFETY: the atomic cursor hands out disjoint blocks of
                // `0..count`, so each index is written by exactly one
                // worker exactly once; the vector outlives the dispatch
                // because `dispatch` blocks until every worker finished
                // claiming and running its blocks.
                unsafe { slots.write(i, v) };
            }
        });
        // SAFETY: the claimed blocks tile `0..count` exactly, so every
        // slot is initialised once `dispatch` returns. (If `f` panicked,
        // `dispatch` resumed the unwind above and the written elements
        // leak without their destructors — safe, merely unclean.)
        let (ptr, len, cap) = (
            results.as_mut_ptr() as *mut R,
            results.len(),
            results.capacity(),
        );
        std::mem::forget(results);
        unsafe { Vec::from_raw_parts(ptr, len, cap) }
    }

    /// Splits `0..len` into roughly `tasks` contiguous chunks and runs `f`
    /// on each `(start, end)` in parallel. Chunk grain for flat loops over
    /// vertices/edges.
    pub fn for_each_chunk(&self, len: usize, tasks: usize, f: impl Fn(usize, usize) + Sync) {
        if len == 0 {
            return;
        }
        let tasks = tasks.max(1).min(len);
        self.for_each_index(tasks, |t| {
            let start = len * t / tasks;
            let end = len * (t + 1) / tasks;
            f(start, end);
        });
    }

    /// Parallel sum of `f(i)` over `0..count`.
    pub fn sum_u64(&self, count: usize, f: impl Fn(usize) -> u64 + Sync) -> u64 {
        if count == 0 {
            return 0;
        }
        if self.threads == 1 || count == 1 {
            return (0..count).map(&f).sum();
        }
        let total = AtomicU64::new(0);
        self.dispatch(self.threads, &|w| {
            let partial: u64 = self.block(count, w).map(&f).sum();
            total.fetch_add(partial, Ordering::Relaxed);
        });
        total.into_inner()
    }

    /// Executes `task_domain.len()` heterogeneous tasks over per-worker
    /// deques with NUMA-domain-affine work stealing, returning results **in
    /// task-index order** plus a [`StealTally`].
    ///
    /// `task_domain[t]` names the (simulated) domain that owns task `t`
    /// under a topology of `domains` domains. Workers are block-assigned to
    /// domains the same way partitions are; each task is seeded onto a
    /// deque of a worker of its owning domain (contiguous blocks within
    /// the domain). A worker drains its own deque front-to-back (seeded
    /// order), and when dry steals from the front of a victim's deque —
    /// taking the victim's next seeded tasks, which keeps the global
    /// execution order close to ascending task index and therefore keeps
    /// memory walks sequential — visiting same-domain victims first, then
    /// the remaining domains in ascending wrap-around order, so work
    /// leaves its domain only when the whole domain has run dry.
    ///
    /// One call is one **epoch** of the persistent crew: the deques are
    /// seeded, the parked workers wake, and the call returns when the
    /// completion latch confirms every task ran exactly once (which is why
    /// the returned tally always satisfies `executed == task count`). No
    /// deque or latch state survives into the next epoch.
    ///
    /// The schedule (who ran what, who stole what) is timing-dependent;
    /// the *output* is not: slot `t` of the returned vector is `f(t)`, so a
    /// caller that merges results in index order is deterministic across
    /// thread counts, chunk sizes and steal schedules.
    pub fn run_stealing<R: Send>(
        &self,
        domains: usize,
        task_domain: &[usize],
        f: impl Fn(usize) -> R + Sync,
    ) -> (Vec<R>, StealTally) {
        let tasks = task_domain.len();
        if tasks == 0 {
            return (Vec::new(), StealTally::default());
        }
        let domains = domains.max(1);
        // Inline fast path: one worker (or one task) steals from no one.
        let workers = self.threads.min(tasks);
        if workers == 1 {
            self.count_jobs(tasks);
            let results = (0..tasks).map(&f).collect();
            return (
                results,
                StealTally {
                    executed: tasks as u64,
                    ..StealTally::default()
                },
            );
        }

        // Block worker→domain assignment, mirroring
        // `NumaTopology::domain_of_partition` so a domain's workers are the
        // ones its partitions' chunks are seeded onto.
        let worker_domain = |w: usize| -> usize {
            if workers <= domains {
                w
            } else {
                (w * domains) / workers
            }
        };
        let mut domain_workers: Vec<Vec<usize>> = vec![Vec::new(); domains];
        for w in 0..workers {
            let d = worker_domain(w).min(domains - 1);
            domain_workers[d].push(w);
        }

        // Seed the deques: task t goes to a worker of its domain, in
        // contiguous ascending blocks — the domain's k-th worker owns the
        // k-th run of its task list, so a worker draining its own deque
        // front-to-back executes consecutive task indices. Consecutive
        // chunks scan adjacent destination ranges, so block seeding keeps
        // every worker's walk sequential through the CSC and the operator
        // state (a round-robin deal would hand each worker every n-th
        // chunk: equally balanced, but stride-n through memory). Domains
        // with no worker of their own (more domains than workers) fall
        // back to the block-inverse worker.
        let mut domain_tasks: Vec<Vec<usize>> = vec![Vec::new(); domains];
        for (t, &d) in task_domain.iter().enumerate() {
            domain_tasks[d.min(domains - 1)].push(t);
        }
        let mut seeded: Vec<VecDeque<usize>> = vec![VecDeque::new(); workers];
        for (d, ts) in domain_tasks.into_iter().enumerate() {
            let owners = &domain_workers[d];
            if owners.is_empty() {
                let w = (d * workers / domains).min(workers - 1);
                seeded[w].extend(ts);
                continue;
            }
            let n = ts.len();
            for (i, t) in ts.into_iter().enumerate() {
                seeded[owners[i * owners.len() / n.max(1)]].push_back(t);
            }
        }
        let deques: Vec<Mutex<VecDeque<usize>>> = seeded.into_iter().map(Mutex::new).collect();

        // Victim orders: same-domain workers first (index order, skipping
        // self), then the other domains in ascending wrap-around order.
        let victim_order: Vec<Vec<usize>> = (0..workers)
            .map(|w| {
                let my_domain = worker_domain(w).min(domains - 1);
                let mut order: Vec<usize> = Vec::with_capacity(workers - 1);
                for dd in 0..domains {
                    let d = (my_domain + dd) % domains;
                    order.extend(domain_workers[d].iter().copied().filter(|&v| v != w));
                }
                order
            })
            .collect();

        // Physical host domain of an active worker slot, block-assigned
        // like the simulated domains. Steal-locality diagnostics reflect
        // the machine the epoch actually ran on: attributing by the
        // *simulated* task domain would count every steal on a
        // single-domain host as cross-domain.
        let hd = self.host_domains;
        let phys_domain = |w: usize| -> usize {
            if workers <= hd {
                w
            } else {
                (w * hd) / workers
            }
        };

        // Unclaimed-task count: a worker exits once every task is claimed
        // (the claimant finishes it before the epoch's latch drains).
        let remaining = AtomicUsize::new(tasks);
        let worker_out: Vec<WorkerResults<R>> = (0..workers)
            .map(|_| Mutex::new((Vec::new(), StealTally::default())))
            .collect();

        // Width hint: an epoch with fewer tasks than crew workers wakes
        // only the workers that have a deque.
        self.dispatch(workers, &|w| {
            debug_assert!(w < workers, "slot index exceeds the epoch width");
            let victim_order = &victim_order[w];
            // Sized for an even share plus stolen overflow: growing this
            // mid-epoch memmoves every produced buffer.
            let mut results: Vec<(usize, R)> = Vec::with_capacity(2 * tasks.div_ceil(workers));
            let mut tally = StealTally::default();
            let mut dry_scans = 0u32;
            // Claimed-but-not-yet-run tasks, executed back-to-front so the
            // seeded (front-first) order is preserved. Claiming in batches
            // bounds the deque lock traffic by the batch count, not the
            // chunk count — on a crew timesharing fewer cores than workers
            // every contended unlock is a scheduler trip, and per-chunk
            // locking was the measurable difference between fine-chunked
            // and partition-granular plans.
            let mut claimed: Vec<usize> = Vec::with_capacity(CLAIM_BATCH);
            loop {
                if let Some(t) = claimed.pop() {
                    dry_scans = 0;
                    tally.executed += 1;
                    results.push((t, f(t)));
                    continue;
                }
                if remaining.load(Ordering::Acquire) == 0 {
                    break;
                }
                // Refill: own deque first, seeded order.
                {
                    let mut dq = deques[w].lock().unwrap();
                    while claimed.len() < CLAIM_BATCH {
                        match dq.pop_front() {
                            Some(t) => claimed.push(t),
                            None => break,
                        }
                    }
                }
                if claimed.is_empty() {
                    // Every seeded task of ours is claimed: steal a run —
                    // the victim's next seeded tasks, half of what remains,
                    // so the victim keeps work. Stealing from the FRONT
                    // (not the classic back-steal) keeps the global
                    // execution order close to seeded order: chunks of one
                    // partition scan contiguous CSC/state ranges, and on
                    // hosts where workers share cache a thief that runs the
                    // victim's *next* chunk extends a warm sequential scan
                    // instead of cold-starting the partition's tail.
                    // Mutex-guarded deques have no lock-free owner/thief
                    // asymmetry, so nothing is lost by taking the same end
                    // the owner pops. The half-run is deliberately NOT
                    // capped at CLAIM_BATCH: on a timesharing crew the
                    // victim is usually descheduled, and a capped thief
                    // would come straight back — one lock trip per batch —
                    // while chopping the victim's block into stride-sized
                    // fragments.
                    for &v in victim_order {
                        let mut dq = deques[v].lock().unwrap();
                        let Some(first) = dq.pop_front() else {
                            continue;
                        };
                        claimed.push(first);
                        let take = dq.len() / 2;
                        claimed.extend((0..take).filter_map(|_| dq.pop_front()));
                        drop(dq);
                        let stolen = claimed.len() as u64;
                        tally.steals += stolen;
                        if phys_domain(v) != phys_domain(w) {
                            tally.cross_domain_steals += stolen;
                        }
                        break;
                    }
                }
                match claimed.len() {
                    0 => {
                        // Every deque was dry but tasks are still in
                        // flight: back off instead of hammering the busy
                        // workers' deque mutexes until the last chunk
                        // finishes.
                        dry_scans += 1;
                        if dry_scans < 16 {
                            std::thread::yield_now();
                        } else {
                            std::thread::sleep(std::time::Duration::from_micros(20));
                        }
                    }
                    k => {
                        remaining.fetch_sub(k, Ordering::AcqRel);
                        // Back-to-front execution order: reverse so the
                        // batch runs oldest-first.
                        claimed.reverse();
                    }
                }
            }
            debug_assert!(claimed.is_empty(), "claimed tasks must all have run");
            // One jobs-counter update per worker per epoch, not one RMW on
            // the shared counter per chunk.
            self.jobs.fetch_add(tally.executed, Ordering::Relaxed);
            *worker_out[w].lock().unwrap() = (results, tally);
        });

        // Scatter worker results back into task-index order.
        let mut slots: Vec<Option<R>> = (0..tasks).map(|_| None).collect();
        let mut total = StealTally::default();
        for cell in worker_out {
            let (results, tally) = cell.into_inner().unwrap();
            total.executed += tally.executed;
            total.steals += tally.steals;
            total.cross_domain_steals += tally.cross_domain_steals;
            for (t, r) in results {
                debug_assert!(slots[t].is_none(), "task {t} ran twice");
                slots[t] = Some(r);
            }
        }
        let results = slots
            .into_iter()
            .map(|s| s.expect("every task must have run exactly once"))
            .collect();
        debug_assert_eq!(total.executed, tasks as u64);
        (results, total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

    #[test]
    fn respects_thread_count_and_spawns_lazily() {
        let pool = Pool::new(3);
        assert_eq!(pool.threads(), 3);
        assert_eq!(pool.spawns(), 0, "workers spawn on first use, not new()");
        let seen = AtomicUsize::new(0);
        pool.for_each_index(100, |_| {
            seen.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(seen.load(Ordering::Relaxed), 100);
        assert_eq!(pool.spawns(), 3, "first epoch spawns exactly the crew");
        assert_eq!(pool.epochs(), 1);
    }

    #[test]
    fn workers_persist_across_epochs() {
        let pool = Pool::new(4);
        for _ in 0..50 {
            let hits = AtomicU64::new(0);
            pool.for_each_index(64, |_| {
                hits.fetch_add(1, Ordering::Relaxed);
            });
            assert_eq!(hits.load(Ordering::Relaxed), 64);
        }
        assert_eq!(pool.spawns(), 4, "50 epochs must reuse the same 4 workers");
        assert_eq!(pool.epochs(), 50);
    }

    #[test]
    fn single_thread_pool_never_spawns() {
        let pool = Pool::new(1);
        let total = AtomicU64::new(0);
        pool.for_each_index(10, |i| {
            total.fetch_add(i as u64, Ordering::Relaxed);
        });
        assert_eq!(total.load(Ordering::Relaxed), 45);
        let (r, _) = pool.run_stealing(2, &[0, 1], |t| t);
        assert_eq!(r, vec![0, 1]);
        assert_eq!(pool.spawns(), 0);
        assert_eq!(pool.epochs(), 0);
    }

    #[test]
    fn dropping_a_parked_pool_joins_cleanly() {
        // Never used: no workers to join.
        drop(Pool::new(4));
        // Used once, then dropped while the crew is parked.
        let pool = Pool::new(4);
        pool.for_each_index(16, |_| {});
        assert_eq!(pool.spawns(), 4);
        drop(pool);
    }

    #[test]
    fn for_each_index_covers_all() {
        let pool = Pool::new(4);
        let hits = AtomicU64::new(0);
        pool.for_each_index(100, |i| {
            hits.fetch_add(i as u64 + 1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 100 * 101 / 2);
    }

    #[test]
    fn chunks_partition_the_range() {
        let pool = Pool::new(4);
        let total = AtomicU64::new(0);
        pool.for_each_chunk(1003, 7, |s, e| {
            assert!(s < e);
            total.fetch_add((e - s) as u64, Ordering::Relaxed);
        });
        assert_eq!(total.load(Ordering::Relaxed), 1003);
    }

    #[test]
    fn chunks_handle_degenerate_sizes() {
        let pool = Pool::new(2);
        pool.for_each_chunk(0, 4, |_, _| panic!("no chunks for empty range"));
        let count = AtomicU64::new(0);
        pool.for_each_chunk(2, 100, |s, e| {
            count.fetch_add((e - s) as u64, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn map_preserves_order() {
        let pool = Pool::new(4);
        let v = pool.map_indices(50, |i| i * i);
        assert_eq!(v[7], 49);
        assert_eq!(v.len(), 50);
        assert_eq!(v, (0..50).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn sum_matches() {
        let pool = Pool::new(2);
        assert_eq!(pool.sum_u64(10, |i| i as u64), 45);
        assert_eq!(pool.sum_u64(0, |_| unreachable!()), 0);
    }

    #[test]
    fn jobs_run_counts_submitted_closures() {
        let pool = Pool::new(2);
        assert_eq!(pool.jobs_run(), 0);
        pool.for_each_index(5, |_| {});
        assert_eq!(pool.jobs_run(), 5);
        pool.for_each_in_order(&[2, 0, 1], |_| {});
        assert_eq!(pool.jobs_run(), 8);
        let _ = pool.map_indices(3, |i| i);
        assert_eq!(pool.jobs_run(), 11);
        pool.for_each_chunk(100, 4, |_, _| {});
        assert_eq!(pool.jobs_run(), 15);
        // Degenerate loops submit nothing.
        pool.for_each_chunk(0, 4, |_, _| {});
        pool.for_each_index(0, |_| {});
        assert_eq!(pool.jobs_run(), 15);
    }

    /// Pins what `for_each_in_order` actually guarantees: every entry runs
    /// exactly once, and each worker thread executes the positions it
    /// claims in ascending order. Position is *not* a cross-worker
    /// execution priority — the blocks run concurrently — so the test
    /// asserts per-thread monotonicity, never a global order.
    #[test]
    fn in_order_runs_each_entry_once_ascending_per_worker() {
        let pool = Pool::new(4);
        let len = 64;
        // A non-trivial permutation (17 is coprime with 64) so entry value
        // and position differ; `pos_of[v]` inverts it.
        let order: Vec<usize> = (0..len).map(|k| (k * 17 + 3) % len).collect();
        let mut pos_of = vec![0usize; len];
        for (k, &v) in order.iter().enumerate() {
            pos_of[v] = k;
        }
        let log: Mutex<Vec<(std::thread::ThreadId, usize)>> = Mutex::new(Vec::new());
        pool.for_each_in_order(&order, |v| {
            log.lock().unwrap().push((std::thread::current().id(), v));
        });
        let log = log.into_inner().unwrap();
        assert_eq!(log.len(), len, "every entry ran");
        let mut seen: Vec<usize> = log.iter().map(|&(_, v)| v).collect();
        seen.sort_unstable();
        assert_eq!(
            seen,
            (0..len).collect::<Vec<_>>(),
            "each entry exactly once"
        );
        // Per-thread position sequences are strictly ascending: a worker
        // walks its claimed blocks front to back, and claims blocks in
        // ascending order.
        let mut last: std::collections::HashMap<std::thread::ThreadId, usize> =
            std::collections::HashMap::new();
        for &(tid, v) in &log {
            let k = pos_of[v];
            if let Some(&prev) = last.get(&tid) {
                assert!(prev < k, "worker went backwards: position {prev} then {k}");
            }
            last.insert(tid, k);
        }
    }

    #[test]
    fn stealing_returns_results_in_task_order() {
        let pool = Pool::new(4);
        let domains = [0usize, 1, 0, 1, 0, 1, 0, 1, 0, 1, 0];
        let (results, tally) = pool.run_stealing(2, &domains, |t| t * 10);
        assert_eq!(results, (0..11).map(|t| t * 10).collect::<Vec<_>>());
        assert_eq!(tally.executed, 11);
        assert!(tally.steals >= tally.cross_domain_steals);
    }

    #[test]
    fn stealing_single_thread_runs_inline_without_steals() {
        let pool = Pool::new(1);
        let before = pool.jobs_run();
        let (results, tally) = pool.run_stealing(4, &[0, 1, 2, 3], |t| t + 1);
        assert_eq!(results, vec![1, 2, 3, 4]);
        assert_eq!(tally.steals, 0);
        assert_eq!(tally.cross_domain_steals, 0);
        assert_eq!(pool.jobs_run(), before + 4);
    }

    #[test]
    fn stealing_empty_task_list_is_a_no_op() {
        let pool = Pool::new(2);
        let before = pool.jobs_run();
        let (results, tally) = pool.run_stealing(2, &[], |_| unreachable!("no tasks"));
        assert!(results.is_empty() && tally == StealTally::default());
        assert_eq!(pool.jobs_run(), before);
    }

    /// All tasks homed to domain 0 of a 2-domain, 2-worker pool seed onto
    /// worker 0's deque alone; worker 1 (domain 1) can make progress only
    /// by stealing, and on a 2-domain *host* every such steal crosses
    /// physical domains. The per-task spin keeps worker 0 busy long enough
    /// that worker 1 reliably gets some.
    #[test]
    fn idle_domain_steals_across_domains() {
        let pool = Pool::with_host_domains(2, 2);
        let domains = vec![0usize; 4000];
        let spin = AtomicU64::new(0);
        let (results, tally) = pool.run_stealing(2, &domains, |t| {
            for i in 0..500u64 {
                spin.fetch_add(i, Ordering::Relaxed);
            }
            t
        });
        assert_eq!(results.len(), 4000);
        assert!(results.iter().enumerate().all(|(i, &r)| i == r));
        assert_eq!(tally.executed, 4000);
        assert!(tally.steals > 0, "the idle domain must have stolen");
        assert_eq!(
            tally.steals, tally.cross_domain_steals,
            "every steal from domain 0 by the domain-1 worker crosses domains"
        );
    }

    /// Same seeding skew, but the *host* has a single NUMA domain: the
    /// idle worker still steals, yet no steal is cross-domain, because
    /// both workers share the one physical domain regardless of the
    /// simulated topology. (This pins the attribution bug where every
    /// steal on a 1-domain host was counted as cross-domain.)
    #[test]
    fn single_domain_host_counts_no_cross_domain_steals() {
        let pool = Pool::with_host_domains(2, 1);
        let domains = vec![0usize; 4000];
        let spin = AtomicU64::new(0);
        let (results, tally) = pool.run_stealing(2, &domains, |t| {
            for i in 0..500u64 {
                spin.fetch_add(i, Ordering::Relaxed);
            }
            t
        });
        assert_eq!(results.len(), 4000);
        assert_eq!(tally.executed, 4000);
        assert!(tally.steals > 0, "the idle worker must have stolen");
        assert_eq!(
            tally.cross_domain_steals, 0,
            "a single-domain host has no cross-domain steals"
        );
    }

    /// More domains than workers: every domain still gets a home worker
    /// via the block inverse, and all tasks run exactly once.
    #[test]
    fn stealing_handles_more_domains_than_workers() {
        let pool = Pool::new(2);
        let domains: Vec<usize> = (0..40).map(|t| t % 8).collect();
        let (results, tally) = pool.run_stealing(8, &domains, |t| t as u64);
        assert_eq!(results, (0..40u64).collect::<Vec<_>>());
        assert_eq!(tally.executed, 40);
    }

    /// More crew workers than tasks: the epoch's width hint shrinks to the
    /// task count, so only that many workers are woken and the surplus
    /// stays parked.
    #[test]
    fn stealing_with_fewer_tasks_than_threads() {
        let pool = Pool::new(4);
        let (results, tally) = pool.run_stealing(2, &[0, 1], |t| t * 7);
        assert_eq!(results, vec![0, 7]);
        assert_eq!(tally.executed, 2);
        assert_eq!(pool.wakes(), 2, "a 2-task epoch must wake only 2 workers");
    }

    /// Wake accounting across epoch widths: structured loops use the full
    /// crew, narrow stealing epochs wake `min(tasks, threads)` workers,
    /// and single-task calls run inline without an epoch at all.
    #[test]
    fn narrow_epochs_wake_only_the_needed_workers() {
        let pool = Pool::new(4);
        pool.for_each_index(64, |_| {});
        assert_eq!(pool.wakes(), 4, "full-width epoch wakes the whole crew");
        let (r, _) = pool.run_stealing(2, &[0, 1, 0], |t| t);
        assert_eq!(r, vec![0, 1, 2]);
        assert_eq!(pool.wakes(), 7, "3-task epoch adds 3 wakes");
        let epochs = pool.epochs();
        let (r, _) = pool.run_stealing(2, &[0], |t| t + 9);
        assert_eq!(r, vec![9]);
        assert_eq!(pool.epochs(), epochs, "single-task calls run inline");
        assert_eq!(pool.wakes(), 7, "inline calls wake nobody");
    }

    #[test]
    fn ordered_loop_runs_all() {
        let pool = Pool::new(2);
        let order = vec![3, 1, 0, 2];
        let mask = AtomicU64::new(0);
        pool.for_each_in_order(&order, |i| {
            mask.fetch_or(1 << i, Ordering::Relaxed);
        });
        assert_eq!(mask.load(Ordering::Relaxed), 0b1111);
    }

    /// A panicking job must not wedge the crew: the panic surfaces on the
    /// dispatcher **with its original payload** (as joining a scoped
    /// thread would re-raise it) and the pool keeps working afterwards.
    #[test]
    fn worker_panic_propagates_and_pool_survives() {
        let pool = Pool::new(2);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.for_each_index(8, |i| {
                if i == 3 {
                    panic!("boom");
                }
            });
        }));
        let payload = result.expect_err("the worker panic must propagate");
        assert_eq!(
            payload.downcast_ref::<&str>().copied(),
            Some("boom"),
            "the original payload must survive the crew"
        );
        // The crew is still alive and consistent.
        let hits = AtomicU64::new(0);
        pool.for_each_index(16, |_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 16);
        assert_eq!(pool.spawns(), 2);
    }

    /// Regression: dropping a pool whose crew-state mutex was poisoned
    /// used to `unwrap()` inside `Drop` — a panic-in-drop, which aborts
    /// the process. Poison the state lock directly (a panic raised while
    /// a guard is held, exactly what `job.expect(...)` or a failing
    /// `debug_assert!` under the lock would do), then check the crew
    /// keeps dispatching and the pool still tears down cleanly.
    #[test]
    fn pool_drops_cleanly_after_state_lock_poison() {
        let pool = Pool::new(2);
        // Run something first so the crew exists.
        pool.for_each_index(4, |_| {});
        let crew = pool.crew();
        let shared = Arc::clone(&crew.shared);
        let _ = std::thread::spawn(move || {
            let _guard = shared.state.lock().unwrap();
            panic!("poison the crew state");
        })
        .join();
        assert!(crew.shared.state.is_poisoned());
        // Workers and the dispatcher tolerate the poison.
        let hits = AtomicU64::new(0);
        pool.for_each_index(8, |_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 8);
        drop(pool); // must join the crew, not abort
    }

    /// The full teardown-after-panic path from the issue: a worker job
    /// panics (caught and re-raised by the dispatcher), then the pool is
    /// dropped. With a poisoned lock anywhere on that path the drop would
    /// abort the process and the test runner would die with it.
    #[test]
    fn pool_drops_cleanly_after_worker_panic() {
        let pool = Pool::new(2);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.for_each_index(8, |i| {
                if i == 1 {
                    panic!("teardown boom");
                }
            });
        }));
        assert!(result.is_err());
        drop(pool);
    }
}
