//! Fork-join thread pool with an explicit thread count, plus the
//! deque-based work-stealing scheduler behind chunk-granular execution.
//!
//! The paper's Figure 10 sweeps 4–48 threads; engines therefore carry their
//! own [`Pool`] instead of using rayon's global pool, so benchmark code can
//! instantiate differently sized pools side by side.
//!
//! Two execution styles coexist:
//!
//! * the structured loops (`for_each_index`, `map_indices`, …) fan fixed
//!   index ranges out — right for homogeneous work;
//! * [`run_stealing`](Pool::run_stealing) schedules a *heterogeneous* task
//!   list (the partitioned executor's edge-balanced chunks) over per-worker
//!   deques with NUMA-domain-affine stealing: tasks start on a worker of
//!   their owning domain, idle workers first raid deques of their own
//!   domain and only then cross domains. Results are returned **keyed by
//!   task index**, so callers merge deterministically no matter which
//!   worker ran what.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

use rayon::prelude::*;

/// One worker's contribution to a [`Pool::run_stealing`] call: the
/// `(task index, result)` pairs it produced plus its local tally.
type WorkerResults<R> = Mutex<(Vec<(usize, R)>, StealTally)>;

/// What one [`Pool::run_stealing`] call observed: how many tasks executed
/// and how work migrated between workers. Steal counts are *diagnostics* —
/// they depend on timing — while the returned results never do.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StealTally {
    /// Tasks executed (always the full task count on return).
    pub executed: u64,
    /// Tasks a worker claimed from another worker's deque.
    pub steals: u64,
    /// Steals in which the task's owning domain differed from the thief's.
    pub cross_domain_steals: u64,
}

/// A fixed-width work-stealing pool.
pub struct Pool {
    inner: rayon::ThreadPool,
    threads: usize,
    /// Closure invocations executed through the structured loops below;
    /// lets tests assert that work was (or was not) submitted to the pool.
    jobs: AtomicU64,
}

impl std::fmt::Debug for Pool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pool")
            .field("threads", &self.threads)
            .finish()
    }
}

impl Pool {
    /// Creates a pool with exactly `threads` worker threads.
    ///
    /// # Panics
    /// Panics if `threads == 0` or the OS refuses to spawn workers.
    pub fn new(threads: usize) -> Self {
        assert!(threads > 0, "pool needs at least one thread");
        let inner = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .thread_name(|i| format!("gg-worker-{i}"))
            .build()
            .expect("failed to build thread pool");
        Pool {
            inner,
            threads,
            jobs: AtomicU64::new(0),
        }
    }

    /// A pool sized to the machine (rayon's default heuristic).
    pub fn machine_sized() -> Self {
        Self::new(
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        )
    }

    /// Number of worker threads.
    #[inline]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Total closure invocations executed through the structured loops
    /// (`for_each_index`, `for_each_in_order`, `map_indices`,
    /// `for_each_chunk`). Monotonic; used by tests to prove that empty
    /// partitions are skipped without submitting pool work.
    #[inline]
    pub fn jobs_run(&self) -> u64 {
        self.jobs.load(Ordering::Relaxed)
    }

    #[inline]
    fn count_job(&self) {
        self.jobs.fetch_add(1, Ordering::Relaxed);
    }

    /// Runs `f` inside the pool (all rayon parallelism in `f` uses this
    /// pool's workers).
    #[inline]
    pub fn install<R: Send>(&self, f: impl FnOnce() -> R + Send) -> R {
        self.inner.install(f)
    }

    /// Parallel loop over `0..count` with one call per index. Used for
    /// per-partition execution: the closure for partition `p` runs on
    /// exactly one worker, giving the exclusive-update guarantee.
    pub fn for_each_index(&self, count: usize, f: impl Fn(usize) + Sync) {
        self.install(|| {
            (0..count).into_par_iter().for_each(|i| {
                self.count_job();
                f(i);
            });
        });
    }

    /// Parallel loop over `0..count` in `order`: `order[k]` is run with
    /// priority position `k`. Used to schedule partitions grouped by NUMA
    /// domain.
    pub fn for_each_in_order(&self, order: &[usize], f: impl Fn(usize) + Sync) {
        self.install(|| {
            order.par_iter().for_each(|&i| {
                self.count_job();
                f(i);
            });
        });
    }

    /// Parallel map over `0..count` collecting results in index order.
    ///
    /// Also the typed-output fan-out primitive of the partitioned
    /// executor: partition tasks *return* their per-partition buffers
    /// (sparse vertex lists or dense bitmap segments) in submission order
    /// instead of writing a shared bitmap, and the caller merges them
    /// deterministically.
    pub fn map_indices<R: Send>(&self, count: usize, f: impl Fn(usize) -> R + Sync) -> Vec<R> {
        self.install(|| {
            (0..count)
                .into_par_iter()
                .map(|i| {
                    self.count_job();
                    f(i)
                })
                .collect()
        })
    }

    /// Splits `0..len` into roughly `tasks` contiguous chunks and runs `f`
    /// on each `(start, end)` in parallel. Chunk grain for flat loops over
    /// vertices/edges.
    pub fn for_each_chunk(&self, len: usize, tasks: usize, f: impl Fn(usize, usize) + Sync) {
        if len == 0 {
            return;
        }
        let tasks = tasks.max(1).min(len);
        self.install(|| {
            (0..tasks).into_par_iter().for_each(|t| {
                self.count_job();
                let start = len * t / tasks;
                let end = len * (t + 1) / tasks;
                f(start, end);
            });
        });
    }

    /// Parallel sum of `f(i)` over `0..count`.
    pub fn sum_u64(&self, count: usize, f: impl Fn(usize) -> u64 + Sync) -> u64 {
        self.install(|| (0..count).into_par_iter().map(&f).sum())
    }

    /// Executes `task_domain.len()` heterogeneous tasks over per-worker
    /// deques with NUMA-domain-affine work stealing, returning results **in
    /// task-index order** plus a [`StealTally`].
    ///
    /// `task_domain[t]` names the (simulated) domain that owns task `t`
    /// under a topology of `domains` domains. Workers are block-assigned to
    /// domains the same way partitions are; each task is seeded onto a
    /// deque of a worker of its owning domain (round-robin within the
    /// domain). A worker drains its own deque front-to-back (seeded order),
    /// and when dry steals from the back of a victim's deque — visiting
    /// same-domain victims first, then the remaining domains in ascending
    /// wrap-around order — so work leaves its domain only when the whole
    /// domain has run dry.
    ///
    /// The schedule (who ran what, who stole what) is timing-dependent;
    /// the *output* is not: slot `t` of the returned vector is `f(t)`, so a
    /// caller that merges results in index order is deterministic across
    /// thread counts, chunk sizes and steal schedules.
    pub fn run_stealing<R: Send>(
        &self,
        domains: usize,
        task_domain: &[usize],
        f: impl Fn(usize) -> R + Sync,
    ) -> (Vec<R>, StealTally) {
        let tasks = task_domain.len();
        if tasks == 0 {
            return (Vec::new(), StealTally::default());
        }
        let domains = domains.max(1);
        // Inline fast path: one worker (or one task) steals from no one.
        let workers = self.threads.min(tasks);
        if workers == 1 {
            let results = (0..tasks)
                .map(|t| {
                    self.count_job();
                    f(t)
                })
                .collect();
            return (
                results,
                StealTally {
                    executed: tasks as u64,
                    ..StealTally::default()
                },
            );
        }

        // Block worker→domain assignment, mirroring
        // `NumaTopology::domain_of_partition` so a domain's workers are the
        // ones its partitions' chunks are seeded onto.
        let worker_domain = |w: usize| -> usize {
            if workers <= domains {
                w
            } else {
                (w * domains) / workers
            }
        };
        let mut domain_workers: Vec<Vec<usize>> = vec![Vec::new(); domains];
        for w in 0..workers {
            let d = worker_domain(w).min(domains - 1);
            domain_workers[d].push(w);
        }

        // Seed the deques: task t goes to a worker of its domain,
        // round-robin; domains with no worker of their own (more domains
        // than workers) fall back to the block-inverse worker.
        let mut seeded: Vec<VecDeque<usize>> = vec![VecDeque::new(); workers];
        let mut rr = vec![0usize; domains];
        for (t, &d) in task_domain.iter().enumerate() {
            let d = d.min(domains - 1);
            let owners = &domain_workers[d];
            let w = if owners.is_empty() {
                (d * workers / domains).min(workers - 1)
            } else {
                owners[rr[d] % owners.len()]
            };
            rr[d] += 1;
            seeded[w].push_back(t);
        }
        let deques: Vec<Mutex<VecDeque<usize>>> = seeded.into_iter().map(Mutex::new).collect();

        // Victim orders: same-domain workers first (index order, skipping
        // self), then the other domains in ascending wrap-around order.
        let victim_order: Vec<Vec<usize>> = (0..workers)
            .map(|w| {
                let my_domain = worker_domain(w).min(domains - 1);
                let mut order: Vec<usize> = Vec::with_capacity(workers - 1);
                for dd in 0..domains {
                    let d = (my_domain + dd) % domains;
                    order.extend(domain_workers[d].iter().copied().filter(|&v| v != w));
                }
                order
            })
            .collect();

        // Unclaimed-task count: a worker exits once every task is claimed
        // (the claimant finishes it before the scope joins).
        let remaining = AtomicUsize::new(tasks);
        let worker_out: Vec<WorkerResults<R>> = (0..workers)
            .map(|_| Mutex::new((Vec::new(), StealTally::default())))
            .collect();

        std::thread::scope(|scope| {
            for w in 0..workers {
                let deques = &deques;
                let victim_order = &victim_order[w];
                let remaining = &remaining;
                let out = &worker_out[w];
                let f = &f;
                let my_domain = worker_domain(w).min(domains - 1);
                scope.spawn(move || {
                    let mut results: Vec<(usize, R)> = Vec::new();
                    let mut tally = StealTally::default();
                    let mut dry_scans = 0u32;
                    loop {
                        if remaining.load(Ordering::Acquire) == 0 {
                            break;
                        }
                        // Own deque first, seeded order.
                        let own = deques[w].lock().unwrap().pop_front();
                        let claimed = match own {
                            Some(t) => Some((t, false)),
                            None => victim_order.iter().find_map(|&v| {
                                deques[v].lock().unwrap().pop_back().map(|t| (t, true))
                            }),
                        };
                        match claimed {
                            Some((t, stolen)) => {
                                dry_scans = 0;
                                remaining.fetch_sub(1, Ordering::AcqRel);
                                if stolen {
                                    tally.steals += 1;
                                    if task_domain[t].min(domains - 1) != my_domain {
                                        tally.cross_domain_steals += 1;
                                    }
                                }
                                self.count_job();
                                tally.executed += 1;
                                results.push((t, f(t)));
                            }
                            None => {
                                // Every deque was dry but tasks are still
                                // in flight: back off instead of hammering
                                // the busy workers' deque mutexes until the
                                // last chunk finishes.
                                dry_scans += 1;
                                if dry_scans < 16 {
                                    std::thread::yield_now();
                                } else {
                                    std::thread::sleep(std::time::Duration::from_micros(20));
                                }
                            }
                        }
                    }
                    *out.lock().unwrap() = (results, tally);
                });
            }
        });

        // Scatter worker results back into task-index order.
        let mut slots: Vec<Option<R>> = (0..tasks).map(|_| None).collect();
        let mut total = StealTally::default();
        for cell in worker_out {
            let (results, tally) = cell.into_inner().unwrap();
            total.executed += tally.executed;
            total.steals += tally.steals;
            total.cross_domain_steals += tally.cross_domain_steals;
            for (t, r) in results {
                debug_assert!(slots[t].is_none(), "task {t} ran twice");
                slots[t] = Some(r);
            }
        }
        let results = slots
            .into_iter()
            .map(|s| s.expect("every task must have run exactly once"))
            .collect();
        (results, total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

    #[test]
    fn respects_thread_count() {
        let pool = Pool::new(3);
        assert_eq!(pool.threads(), 3);
        let seen = AtomicUsize::new(0);
        pool.install(|| {
            seen.store(rayon::current_num_threads(), Ordering::Relaxed);
        });
        assert_eq!(seen.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn for_each_index_covers_all() {
        let pool = Pool::new(4);
        let hits = AtomicU64::new(0);
        pool.for_each_index(100, |i| {
            hits.fetch_add(i as u64 + 1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 100 * 101 / 2);
    }

    #[test]
    fn chunks_partition_the_range() {
        let pool = Pool::new(4);
        let total = AtomicU64::new(0);
        pool.for_each_chunk(1003, 7, |s, e| {
            assert!(s < e);
            total.fetch_add((e - s) as u64, Ordering::Relaxed);
        });
        assert_eq!(total.load(Ordering::Relaxed), 1003);
    }

    #[test]
    fn chunks_handle_degenerate_sizes() {
        let pool = Pool::new(2);
        pool.for_each_chunk(0, 4, |_, _| panic!("no chunks for empty range"));
        let count = AtomicU64::new(0);
        pool.for_each_chunk(2, 100, |s, e| {
            count.fetch_add((e - s) as u64, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn map_preserves_order() {
        let pool = Pool::new(4);
        let v = pool.map_indices(50, |i| i * i);
        assert_eq!(v[7], 49);
        assert_eq!(v.len(), 50);
    }

    #[test]
    fn sum_matches() {
        let pool = Pool::new(2);
        assert_eq!(pool.sum_u64(10, |i| i as u64), 45);
    }

    #[test]
    fn jobs_run_counts_submitted_closures() {
        let pool = Pool::new(2);
        assert_eq!(pool.jobs_run(), 0);
        pool.for_each_index(5, |_| {});
        assert_eq!(pool.jobs_run(), 5);
        pool.for_each_in_order(&[2, 0, 1], |_| {});
        assert_eq!(pool.jobs_run(), 8);
        let _ = pool.map_indices(3, |i| i);
        assert_eq!(pool.jobs_run(), 11);
        pool.for_each_chunk(100, 4, |_, _| {});
        assert_eq!(pool.jobs_run(), 15);
        // Degenerate loops submit nothing.
        pool.for_each_chunk(0, 4, |_, _| {});
        pool.for_each_index(0, |_| {});
        assert_eq!(pool.jobs_run(), 15);
    }

    #[test]
    fn stealing_returns_results_in_task_order() {
        let pool = Pool::new(4);
        let domains = [0usize, 1, 0, 1, 0, 1, 0, 1, 0, 1, 0];
        let (results, tally) = pool.run_stealing(2, &domains, |t| t * 10);
        assert_eq!(results, (0..11).map(|t| t * 10).collect::<Vec<_>>());
        assert_eq!(tally.executed, 11);
        assert!(tally.steals >= tally.cross_domain_steals);
    }

    #[test]
    fn stealing_single_thread_runs_inline_without_steals() {
        let pool = Pool::new(1);
        let before = pool.jobs_run();
        let (results, tally) = pool.run_stealing(4, &[0, 1, 2, 3], |t| t + 1);
        assert_eq!(results, vec![1, 2, 3, 4]);
        assert_eq!(tally.steals, 0);
        assert_eq!(tally.cross_domain_steals, 0);
        assert_eq!(pool.jobs_run(), before + 4);
    }

    #[test]
    fn stealing_empty_task_list_is_a_no_op() {
        let pool = Pool::new(2);
        let before = pool.jobs_run();
        let (results, tally) = pool.run_stealing(2, &[], |_| unreachable!("no tasks"));
        assert!(results.is_empty() && tally == StealTally::default());
        assert_eq!(pool.jobs_run(), before);
    }

    /// All tasks homed to domain 0 of a 2-domain, 2-worker pool seed onto
    /// worker 0's deque alone; worker 1 (domain 1) can make progress only
    /// by stealing, and every such steal crosses domains. The per-task spin
    /// keeps worker 0 busy long enough that worker 1 reliably gets some.
    #[test]
    fn idle_domain_steals_across_domains() {
        let pool = Pool::new(2);
        let domains = vec![0usize; 4000];
        let spin = AtomicU64::new(0);
        let (results, tally) = pool.run_stealing(2, &domains, |t| {
            for i in 0..500u64 {
                spin.fetch_add(i, Ordering::Relaxed);
            }
            t
        });
        assert_eq!(results.len(), 4000);
        assert!(results.iter().enumerate().all(|(i, &r)| i == r));
        assert_eq!(tally.executed, 4000);
        assert!(tally.steals > 0, "the idle domain must have stolen");
        assert_eq!(
            tally.steals, tally.cross_domain_steals,
            "every steal from domain 0 by the domain-1 worker crosses domains"
        );
    }

    /// More domains than workers: every domain still gets a home worker
    /// via the block inverse, and all tasks run exactly once.
    #[test]
    fn stealing_handles_more_domains_than_workers() {
        let pool = Pool::new(2);
        let domains: Vec<usize> = (0..40).map(|t| t % 8).collect();
        let (results, tally) = pool.run_stealing(8, &domains, |t| t as u64);
        assert_eq!(results, (0..40u64).collect::<Vec<_>>());
        assert_eq!(tally.executed, 40);
    }

    #[test]
    fn ordered_loop_runs_all() {
        let pool = Pool::new(2);
        let order = vec![3, 1, 0, 2];
        let mask = AtomicU64::new(0);
        pool.for_each_in_order(&order, |i| {
            mask.fetch_or(1 << i, Ordering::Relaxed);
        });
        assert_eq!(mask.load(Ordering::Relaxed), 0b1111);
    }
}
