//! Record/replay driver for the determinism-debugging harness.
//!
//! `repro record` runs each algorithm once with the engine's round
//! recorder armed and serializes the per-round trace (frontier digests,
//! kernel/representation plan, scheduler tallies) to a JSON-lines file.
//! `repro replay` re-executes the same workload — possibly under a
//! different thread count, chunk cap or partition count — and reports the
//! **first diverging round** via [`gg_core::trace::first_divergence`].
//!
//! The graph and workload derivation are fully deterministic (seeded
//! generators, deterministic source selection), so the only legitimate
//! cross-config differences are the schedule fields, which the comparison
//! ignores. Any contract-field divergence is a real bit-identity bug.

use gg_algorithms::Algorithm;
use gg_core::config::Config;
use gg_core::engine::{EdgeMapSpec, Engine, GraphGrind2};
use gg_core::trace::{RoundTrace, ThreadVaryingMinLabel, TraceHeader};
use gg_graph::edge_list::EdgeList;

use crate::datasets;
use crate::runner::{self, Workload};

/// The algorithms covered by the record/replay differential: the
/// integer-output traversals whose results are bit-identical across every
/// configuration, plus PageRank whose *frontier trajectory* (though not
/// its float sums) is likewise schedule-independent.
pub fn replay_algorithms() -> [Algorithm; 4] {
    [Algorithm::Bfs, Algorithm::Pr, Algorithm::Cc, Algorithm::Bf]
}

/// Builds the deterministic input graph for `scenario` at `scale`.
///
/// Mirrors the scenario selection of the load-balance bench so recorded
/// traces and replays agree on the input by construction.
pub fn scenario_graph(scenario: &str, scale: f64) -> EdgeList {
    match scenario {
        "smallworld" => {
            let n = ((200_000.0 * scale) as usize).max(1_000);
            gg_graph::generators::small_world(n, 6, 0.05, 13)
        }
        "grid" => {
            let side = ((250_000.0 * scale).sqrt() as usize).max(24);
            gg_graph::generators::grid_road(side, side, 0.05, 13)
        }
        _ => datasets::powerlaw_scenario(scale, 2.1, 4, 13),
    }
}

/// Runs `w.algo` once on a fresh engine with recording armed and returns
/// the round trace.
pub fn record_algorithm(w: &Workload, config: &Config, scenario: &str) -> RoundTrace {
    let engine = GraphGrind2::new(&w.el, config.clone());
    engine.start_recording();
    runner::run_algorithm(&engine, None, w);
    RoundTrace {
        header: TraceHeader::new(w.algo.code(), scenario, config, false),
        rounds: engine.take_recording(),
    }
}

/// Deterministic K-source selection for the fused benchmarks and the
/// fused record/replay leg: sources spread across the vertex space by a
/// fixed stride, so recordings and replays (and the fused-vs-sequential
/// comparisons) agree on the batch by construction.
pub fn fused_sources(el: &EdgeList, k: usize) -> Vec<u32> {
    let n = el.num_vertices() as u32;
    let stride = (n / k as u32).max(1);
    (0..k as u32).map(|i| (i * stride + 1) % n).collect()
}

/// Number of lanes in the fused record/replay leg.
pub const FUSED_RECORD_LANES: usize = 8;

/// Runs one fused multi-source BFS with recording armed and returns the
/// round trace. Fused rounds carry per-lane frontier digests
/// (`RoundRecord::lanes`), so a replay divergence localizes to the first
/// differing lane of the first differing round.
pub fn record_fused(el: &EdgeList, config: &Config, scenario: &str) -> RoundTrace {
    let engine = GraphGrind2::new(el, config.clone());
    engine.start_recording();
    let _ = gg_algorithms::fused_bfs(&engine, &fused_sources(el, FUSED_RECORD_LANES));
    RoundTrace {
        header: TraceHeader::new("fused_bfs", scenario, config, false),
        rounds: engine.take_recording(),
    }
}

/// Runs the fault-injection min-label loop once with recording armed.
///
/// [`ThreadVaryingMinLabel`] propagates honest min-labels from whichever
/// thread first touches it and perturbed labels from every other thread,
/// so a single-threaded run records the honest trace while a
/// multi-threaded replay diverges at whichever round the second worker
/// first wins a label race. The loop is monotone (labels only decrease),
/// so it terminates within `n` rounds regardless of the perturbation.
pub fn record_fault(el: &EdgeList, config: &Config, scenario: &str) -> RoundTrace {
    let engine = GraphGrind2::new(el, config.clone());
    let op = ThreadVaryingMinLabel::new(el.num_vertices());
    engine.start_recording();
    let mut frontier = engine.frontier_all();
    let mut rounds = 0usize;
    while !frontier.is_empty() && rounds < el.num_vertices() {
        frontier = engine.edge_map(&frontier, &op, EdgeMapSpec::edge_oriented());
        rounds += 1;
    }
    RoundTrace {
        header: TraceHeader::new("fault_minlabel", scenario, config, true),
        rounds: engine.take_recording(),
    }
}
