//! MPKI (misses per kilo-instruction) reporting.
//!
//! Figure 8 normalises LLC misses by instruction count. Without hardware
//! counters we proxy the instruction count with a fixed cost model:
//! a graph traversal executes roughly a constant number of instructions per
//! edge visited and per vertex visited (load endpoints, test frontier bit,
//! arithmetic, store). The constants below are calibrated to typical
//! compiled edge-kernel sizes; their absolute values scale the MPKI axis
//! uniformly and do **not** affect the trend across partition counts, which
//! is the result being reproduced.

use crate::cache::CacheStats;

/// Instruction-count proxy model.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct InstructionModel {
    /// Instructions charged per edge visited.
    pub per_edge: u64,
    /// Instructions charged per vertex visited (including replicas).
    pub per_vertex: u64,
}

impl Default for InstructionModel {
    fn default() -> Self {
        // ~10 instructions per edge update (two loads, frontier test,
        // arithmetic, conditional store) and ~6 per vertex visit (degree
        // check, loop control).
        InstructionModel {
            per_edge: 10,
            per_vertex: 6,
        }
    }
}

impl InstructionModel {
    /// Proxy instruction count for a traversal that visited `edges` edges
    /// and `vertices` vertices.
    pub fn instructions(&self, edges: u64, vertices: u64) -> u64 {
        self.per_edge * edges + self.per_vertex * vertices
    }
}

/// An MPKI measurement for one traversal.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MpkiReport {
    /// Cache statistics of the replayed trace.
    pub cache: CacheStats,
    /// Proxy instruction count.
    pub instructions: u64,
}

impl MpkiReport {
    /// Builds a report from cache stats and traversal op counts.
    pub fn new(cache: CacheStats, model: InstructionModel, edges: u64, vertices: u64) -> Self {
        MpkiReport {
            cache,
            instructions: model.instructions(edges, vertices),
        }
    }

    /// Misses per kilo-instruction.
    pub fn mpki(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.cache.misses as f64 / (self.instructions as f64 / 1000.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instruction_model() {
        let m = InstructionModel::default();
        assert_eq!(m.instructions(100, 10), 100 * 10 + 10 * 6);
    }

    #[test]
    fn mpki_math() {
        let r = MpkiReport {
            cache: CacheStats {
                accesses: 5000,
                misses: 50,
            },
            instructions: 10_000,
        };
        assert!((r.mpki() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn zero_instructions_is_zero_mpki() {
        let r = MpkiReport {
            cache: CacheStats::default(),
            instructions: 0,
        };
        assert_eq!(r.mpki(), 0.0);
    }
}
